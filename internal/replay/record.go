package replay

import (
	"vdom/internal/backend"
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/epk"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// Recorder captures a domain-op trace by tapping the instrumented
// layers. Every layer — the kernel's syscall boundary and every
// registered backend's domain API — feeds the single unified TapEvent
// sink; attach whichever layers the workload uses (AttachSystem wires a
// whole booted Instance in one call), then drive the workload and call
// Finish.
//
// The simulation is cooperatively scheduled — exactly one simulated
// process runs at a time — so taps fire strictly sequentially and the
// Recorder needs no locking.
type Recorder struct {
	hdr    Header
	events []Event
	clock  uint64

	// sys accumulates the attached layers so Finish can compute the end
	// state; it is not necessarily a fully booted system.
	sys System
}

// NewRecorder starts a recording described by hdr (Version is forced to
// FormatVersion).
func NewRecorder(hdr Header) *Recorder {
	hdr.Version = FormatVersion
	// Recordings that attach taps at all tend to collect thousands of
	// events; seeding the buffer skips the first several growth copies.
	return &Recorder{hdr: hdr, events: make([]Event, 0, 1024)}
}

// Len returns the number of events recorded so far.
func (r *Recorder) Len() int { return len(r.events) }

// Clock returns the recording's logical cycle clock: the summed cost of
// every recorded event.
func (r *Recorder) Clock() uint64 { return r.clock }

// add appends one event stamped at the current clock, then advances the
// clock by its cost.
func (r *Recorder) add(e Event) {
	e.Time = r.clock
	r.clock += e.Cost
	r.events = append(r.events, e)
}

// TapEvent is the Recorder's unified tap sink (a tap.Tap): it converts
// one completed operation into its trace event. Zero-cost dispatches are
// skipped — a dispatch costs zero exactly when the task was already
// current with no pending interrupts, i.e. when it mutated nothing.
func (r *Recorder) TapEvent(e tap.Event) {
	if e.Op == tap.OpDispatch && e.Cost == 0 {
		return
	}
	op, ok := opOfTap[e.Op]
	if !ok {
		return
	}
	ev := Event{
		Op:   op,
		TID:  uint64(e.TID),
		Addr: uint64(e.Addr),
		Len:  e.Len,
		Dom:  e.Dom,
		Perm: e.Perm,
		Cost: uint64(e.Cost),
		Err:  CodeOf(e.Err),
	}
	if e.Write {
		ev.Flags |= FlagWrite
	}
	if e.Freq {
		ev.Flags |= FlagFreq
	}
	r.add(ev)
}

// opOfTap maps unified tap ops to their trace encoding.
var opOfTap = map[tap.Op]Op{
	tap.OpMmap:         OpMmap,
	tap.OpMunmap:       OpMunmap,
	tap.OpMprotect:     OpMprotect,
	tap.OpAccess:       OpAccess,
	tap.OpDispatch:     OpDispatch,
	tap.OpVdomAlloc:    OpVdomAlloc,
	tap.OpVdomFree:     OpVdomFree,
	tap.OpVdomMprotect: OpVdomMprotect,
	tap.OpVdrAlloc:     OpVdrAlloc,
	tap.OpVdrFree:      OpVdrFree,
	tap.OpVdrRead:      OpVdrRead,
	tap.OpVdrWrite:     OpVdrWrite,
	tap.OpNewVDS:       OpNewVDS,
	tap.OpPkeyAlloc:    OpPkeyAlloc,
	tap.OpPkeyFree:     OpPkeyFree,
	tap.OpPkeyMprotect: OpPkeyMprotect,
	tap.OpPkeySet:      OpPkeySet,
	tap.OpEpkSwitch:    OpEpkSwitch,
	tap.OpDptiAlloc:    OpDptiAlloc,
	tap.OpDptiFree:     OpDptiFree,
	tap.OpDptiProtect:  OpDptiProtect,
	tap.OpDptiEnter:    OpDptiEnter,
	tap.OpDptiExit:     OpDptiExit,
}

// AttachSystem taps every layer a booted instance carries: the kernel's
// syscall boundary plus the present backend's domain API.
func (r *Recorder) AttachSystem(sys *System) {
	if sys.Kernel != nil {
		r.AttachKernel(sys.Kernel)
	}
	for _, b := range backend.All() {
		if b.Present(sys) {
			b.AttachTap(sys, r.TapEvent)
		}
	}
	r.sys.Manager = sys.Manager
	r.sys.Libmpk = sys.Libmpk
	r.sys.EPK = sys.EPK
	r.sys.DPTI = sys.DPTI
}

// AttachKernel taps the kernel's syscall boundary (mmap/munmap/mprotect,
// accesses, scheduler dispatch).
func (r *Recorder) AttachKernel(k *kernel.Kernel) {
	r.sys.Kernel = k
	k.SetTap(r.TapEvent)
}

// AttachManager taps the VDom core's public API.
func (r *Recorder) AttachManager(m *core.Manager) {
	r.sys.Manager = m
	m.SetTap(r.TapEvent)
}

// AttachLibmpk taps the libmpk baseline's public API.
func (r *Recorder) AttachLibmpk(m *libmpk.Manager) {
	r.sys.Libmpk = m
	m.SetTap(r.TapEvent)
}

// AttachEPK taps the EPK system's domain switches.
func (r *Recorder) AttachEPK(s *epk.System) {
	r.sys.EPK = s
	s.SetTap(r.TapEvent)
}

// AttachDPTI taps the DPTI baseline's public API.
func (r *Recorder) AttachDPTI(m *dpti.Manager) {
	r.sys.DPTI = m
	m.SetTap(r.TapEvent)
}

// Spawn records a task creation. Workloads call it right after NewTask;
// replay re-creates the task and asserts the kernel hands out the same
// tid.
func (r *Recorder) Spawn(t *kernel.Task) {
	r.add(Event{Op: OpSpawn, TID: uint64(t.TID()), Len: uint64(t.CoreID())})
}

// Populate records a demand-paging pre-fault of [addr, addr+length) —
// cost-free address-space setup that replay must repeat to reproduce
// later fault behaviour. vdsTable selects the thread's current VDS table
// over the process shadow table.
func (r *Recorder) Populate(t *kernel.Task, addr pagetable.VAddr, length uint64, vdsTable bool) {
	e := Event{Op: OpPopulate, TID: uint64(t.TID()), Addr: uint64(addr), Len: length}
	if vdsTable {
		e.Flags |= FlagVDSTable
	}
	r.add(e)
}

// Reclaim records a kswapd frame-reclaim call: initiator core, requested
// maximum, frames actually reclaimed, and the charged cycles.
func (r *Recorder) Reclaim(initiatorCore, max, got int, cost cycles.Cost) {
	r.add(Event{Op: OpReclaim, Addr: uint64(initiatorCore), Len: uint64(max), Dom: uint64(got), Cost: uint64(cost)})
}

// Reap records a VDS garbage-collection pass and how many VDSes it freed.
func (r *Recorder) Reap(n int) {
	r.add(Event{Op: OpReap, Dom: uint64(n)})
}

// Finish detaches nothing (taps stay live) but seals the trace: it
// snapshots the end state of every attached layer and returns the
// completed Trace.
func (r *Recorder) Finish() *Trace {
	return &Trace{
		Header: r.hdr,
		Events: r.events,
		End:    EndState(r.clock, &r.sys),
	}
}

// Partial returns the trace recorded so far truncated to the first n
// events, with no end-state section (replay of a partial trace skips the
// end-state check). The chaos layer uses it to dump the minimal prefix
// that reproduces a soak failure.
func (r *Recorder) Partial(n int) *Trace {
	if n < 0 || n > len(r.events) {
		n = len(r.events)
	}
	return &Trace{Header: r.hdr, Events: r.events[:n:n]}
}
