// Package sectest implements the paper's security evaluation (§7.2): the
// penetration tests for in-thread and cross-thread attacks on random
// vdoms, the X86 API-protection attacks (VDR corruption, PKRU hijack via
// controlled eax), and the three sandbox defenses of Table 2.
package sectest

import (
	"errors"
	"fmt"
	"strings"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

// Result is one penetration test's outcome.
type Result struct {
	Name string
	// Blocked reports that the attack was stopped (the expected
	// outcome).
	Blocked bool
	// SetupFailed reports that the scenario could not even be built; the
	// attack verdict is then meaningless and Detail carries the error.
	SetupFailed bool
	Detail      string
}

// setupErr marks a Result whose scenario never ran.
var setupErr = errors.New("sectest: setup failed")

// setup produces the structured failure for a broken scenario.
func setup(stage string, err error) (bool, string) {
	return false, fmt.Sprintf("%v: %s: %v", setupErr, stage, err)
}

// Run executes the full battery on one architecture. Every attack yields
// a Result — setup problems are reported per attack instead of panicking
// the battery.
func Run(arch cycles.Arch) []Result {
	tests := []struct {
		name string
		run  func(arch cycles.Arch) (bool, string)
	}{
		{"in-thread read of AD vdom", inThreadReadAD},
		{"in-thread write of WD vdom", inThreadWriteWD},
		{"cross-thread access to private vdom", crossThread},
		{"thread without VDR touches protected page", noVDR},
		{"random-vdom fuzzing (200 attempts)", fuzzRandom},
		{"evicted-domain stale access", staleEvicted},
		{"vdom reassignment on protected area", reassign},
		{"use-after-free of a vdom's pages", useAfterFree},
		{"VDR page corruption from untrusted code", vdrCorruption},
		{"retag VDR page to attacker vdom", vdrRetag},
		{"PKRU hijack via controlled eax at gate exit", pkruHijack},
		{"sandbox ❶: binary scan finds unsafe wrpkru", binaryScan},
		{"sandbox ❷: call-gate register check", gateCheck},
		{"sandbox ❸: process_vm_readv filter", deputyFilter},
	}
	var out []Result
	for _, t := range tests {
		blocked, detail := t.run(arch)
		out = append(out, Result{
			Name:        t.name,
			Blocked:     blocked,
			SetupFailed: !blocked && strings.HasPrefix(detail, setupErr.Error()),
			Detail:      detail,
		})
	}
	return out
}

type env struct {
	k    *kernel.Kernel
	proc *kernel.Process
	mgr  *core.Manager
	next pagetable.VAddr
}

func newEnv(arch cycles.Arch) *env {
	m := hw.NewMachine(hw.Config{Arch: arch, NumCores: 4, TLBCapacity: 0})
	k := kernel.New(kernel.Config{Machine: m, VDomEnabled: true})
	proc := k.NewProcess()
	return &env{
		k: k, proc: proc,
		mgr:  core.Attach(proc, core.DefaultPolicy()),
		next: 0x50_0000_0000,
	}
}

// region maps a fresh protected area for task and returns its vdom and
// base; errors are returned, not panicked, so attacks can surface them as
// structured setup failures.
func (e *env) region(task *kernel.Task, pages int) (core.VdomID, pagetable.VAddr, error) {
	base := e.next
	e.next += pagetable.VAddr(pages)*pagetable.PageSize + 4*pagetable.PMDSize
	if _, err := task.Mmap(base, uint64(pages)*pagetable.PageSize, true); err != nil {
		return 0, 0, fmt.Errorf("mmap: %w", err)
	}
	d, _ := e.mgr.AllocVdom(false)
	if _, err := e.mgr.Mprotect(task, base, uint64(pages)*pagetable.PageSize, d); err != nil {
		return 0, 0, fmt.Errorf("mprotect: %w", err)
	}
	return d, base, nil
}

func sigsegv(err error) bool { return errors.Is(err, kernel.ErrSigsegv) }

func inThreadReadAD(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	_, base, err := e.region(t, 1) // permission stays AD
	if err != nil {
		return setup("region", err)
	}
	_, err = t.Access(base, false)
	return sigsegv(err), fmt.Sprintf("read with AD: %v", err)
}

func inThreadWriteWD(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	d, base, err := e.region(t, 1)
	if err != nil {
		return setup("region", err)
	}
	if _, err := e.mgr.WrVdr(t, d, core.VPermRead); err != nil {
		return setup("wrvdr", err)
	}
	if _, err := t.Access(base, false); err != nil {
		return false, fmt.Sprintf("legitimate read failed: %v", err)
	}
	_, err = t.Access(base, true)
	return sigsegv(err), fmt.Sprintf("write with WD: %v", err)
}

func crossThread(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	owner := e.proc.NewTask(0)
	attacker := e.proc.NewTask(1)
	for _, t := range []*kernel.Task{owner, attacker} {
		if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
			return setup("vdr_alloc", err)
		}
	}
	d, base, err := e.region(owner, 1)
	if err != nil {
		return setup("region", err)
	}
	if _, err := e.mgr.WrVdr(owner, d, core.VPermReadWrite); err != nil {
		return setup("wrvdr", err)
	}
	if _, err := owner.Access(base, true); err != nil {
		return false, fmt.Sprintf("owner lost access: %v", err)
	}
	_, err = attacker.Access(base, false)
	return sigsegv(err), fmt.Sprintf("attacker read: %v", err)
}

func noVDR(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	owner := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(owner, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	d, base, err := e.region(owner, 1)
	if err != nil {
		return setup("region", err)
	}
	if _, err := e.mgr.WrVdr(owner, d, core.VPermReadWrite); err != nil {
		return setup("wrvdr", err)
	}
	if _, err := owner.Access(base, true); err != nil {
		return setup("owner access", err)
	}
	stranger := e.proc.NewTask(2)
	_, err = stranger.Access(base, false)
	return sigsegv(err), fmt.Sprintf("no-VDR access: %v", err)
}

// fuzzRandom builds several VDSes worth of vdoms across two threads and
// fires random unauthorized reads and writes; every one must be fatal.
func fuzzRandom(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t1 := e.proc.NewTask(0)
	t2 := e.proc.NewTask(1)
	for _, t := range []*kernel.Task{t1, t2} {
		if _, err := e.mgr.VdrAlloc(t, 3); err != nil {
			return setup("vdr_alloc", err)
		}
	}
	const n = 40
	doms := make([]core.VdomID, n)
	bases := make([]pagetable.VAddr, n)
	owners := make([]*kernel.Task, n)
	for i := 0; i < n; i++ {
		owner := t1
		if i%2 == 1 {
			owner = t2
		}
		var err error
		doms[i], bases[i], err = e.region(owner, 1)
		if err != nil {
			return setup("region", err)
		}
		owners[i] = owner
		if _, err := e.mgr.WrVdr(owner, doms[i], core.VPermReadWrite); err != nil {
			return setup("wrvdr open", err)
		}
		if _, err := owner.Access(bases[i], true); err != nil {
			return setup("owner access", err)
		}
		if _, err := e.mgr.WrVdr(owner, doms[i], core.VPermNone); err != nil {
			return setup("wrvdr close", err)
		}
	}
	rng := sim.NewRand(0x5ec)
	for try := 0; try < 200; try++ {
		i := rng.Intn(n)
		attacker := t1
		if owners[i] == t1 {
			attacker = t2
		}
		write := rng.Intn(2) == 1
		if _, err := attacker.Access(bases[i], write); !sigsegv(err) {
			return false, fmt.Sprintf("attempt %d on vdom %d (write=%v) not blocked: %v",
				try, doms[i], write, err)
		}
	}
	return true, "200/200 unauthorized accesses blocked"
}

// staleEvicted verifies that stale permission-register bits cannot reach a
// vdom whose pdom was reassigned by eviction.
func staleEvicted(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 1); err != nil {
		return setup("vdr_alloc", err)
	}
	n := core.UsablePdomsPerVDS + 2
	doms := make([]core.VdomID, n)
	bases := make([]pagetable.VAddr, n)
	for i := 0; i < n; i++ {
		var err error
		doms[i], bases[i], err = e.region(t, 1)
		if err != nil {
			return setup("region", err)
		}
		if _, err := e.mgr.WrVdr(t, doms[i], core.VPermReadWrite); err != nil {
			return setup("wrvdr open", err)
		}
		if _, err := t.Access(bases[i], true); err != nil {
			return setup("access", err)
		}
		if i != 0 {
			if _, err := e.mgr.WrVdr(t, doms[i], core.VPermNone); err != nil {
				return setup("wrvdr close", err)
			}
		}
	}
	// doms[0] stayed "open" in the VDR but was necessarily evicted.
	// Close it now and probe: the pages must not be readable via any
	// stale state.
	if _, err := e.mgr.WrVdr(t, doms[0], core.VPermNone); err != nil {
		return setup("wrvdr close", err)
	}
	_, err := t.Access(bases[0], false)
	return sigsegv(err), fmt.Sprintf("stale access: %v", err)
}

func reassign(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	_, base, err := e.region(t, 4)
	if err != nil {
		return setup("region", err)
	}
	evil, _ := e.mgr.AllocVdom(false)
	_, err = e.mgr.Mprotect(t, base, pagetable.PageSize, evil)
	return errors.Is(err, core.ErrReassign), fmt.Sprintf("reassign: %v", err)
}

// useAfterFree frees a vdom whose pdom is then recycled by a new domain,
// and probes the old pages through stale VDR bits — the page-recycling
// attack the fuzzer uncovered during development.
func useAfterFree(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	dOld, baseOld, err := e.region(t, 2)
	if err != nil {
		return setup("region", err)
	}
	if _, err := e.mgr.WrVdr(t, dOld, core.VPermRead); err != nil {
		return setup("wrvdr", err)
	}
	if _, err := t.Access(baseOld, false); err != nil {
		return false, fmt.Sprintf("setup read failed: %v", err)
	}
	if _, err := e.mgr.FreeVdom(dOld); err != nil {
		return setup("free", err)
	}
	// Recycle the hardware domain with a new trust domain.
	dNew, baseNew, err := e.region(t, 1)
	if err != nil {
		return setup("region", err)
	}
	if _, err := e.mgr.WrVdr(t, dNew, core.VPermReadWrite); err != nil {
		return setup("wrvdr", err)
	}
	if _, err := t.Access(baseNew, true); err != nil {
		return false, fmt.Sprintf("new domain unusable: %v", err)
	}
	// The freed domain's pages must be unreachable despite the stale
	// VDR entry and the recycled pdom.
	if _, err := t.Access(baseOld, false); !sigsegv(err) {
		return false, fmt.Sprintf("freed pages readable: %v", err)
	}
	return true, "freed pages disabled before pdom reuse"
}

func vdrCorruption(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	g, err := core.NewGate(e.mgr)
	if err != nil {
		return setup("gate", err)
	}
	page, err := g.SealVDRPage(t)
	if err != nil {
		return setup("seal", err)
	}
	if _, err := t.Access(page, true); !sigsegv(err) {
		return false, fmt.Sprintf("direct VDR write: %v", err)
	}
	if _, err := t.Access(page, false); !sigsegv(err) {
		return false, fmt.Sprintf("direct VDR read: %v", err)
	}
	return true, "VDR page sealed by pdom1"
}

func vdrRetag(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	g, err := core.NewGate(e.mgr)
	if err != nil {
		return setup("gate", err)
	}
	page, err := g.SealVDRPage(t)
	if err != nil {
		return setup("seal", err)
	}
	evil, _ := e.mgr.AllocVdom(false)
	_, err = e.mgr.Mprotect(t, page, pagetable.PageSize, evil)
	return errors.Is(err, core.ErrReassign), fmt.Sprintf("retag VDR page: %v", err)
}

func pkruHijack(arch cycles.Arch) (bool, string) {
	if arch != cycles.X86 {
		// DACR is kernel-only on ARM; there is no user-space register
		// write to hijack.
		return true, "not applicable on ARM (DACR is privileged)"
	}
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	e.k.Dispatch(t)
	g, err := core.NewGate(e.mgr)
	if err != nil {
		return setup("gate", err)
	}
	g.Enter(t)
	var evil hw.PermRegister // all-access, including pdom1
	_, err = g.Exit(t, evil.Raw())
	return errors.Is(err, core.ErrGateViolation), fmt.Sprintf("gate exit: %v", err)
}

func binaryScan(arch cycles.Arch) (bool, string) {
	code := []core.Instr{
		{Op: core.OpOther}, {Op: core.OpWRPKRU}, {Op: core.OpOther},
		{Op: core.OpXORECX}, {Op: core.OpWRPKRU}, {Op: core.OpCmpEAX}, {Op: core.OpJNE},
		{Op: core.OpXRSTOR},
	}
	fs := core.ScanBinary(code)
	ok := len(fs) == 2 && fs[0].Index == 1 && fs[1].Index == 7
	return ok, fmt.Sprintf("findings: %v", fs)
}

func gateCheck(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	g, err := core.NewGate(e.mgr)
	if err != nil {
		return setup("gate", err)
	}
	d, base, err := e.region(t, 1)
	if err != nil {
		return setup("region", err)
	}
	if _, err := e.mgr.WrVdr(t, d, core.VPermReadWrite); err != nil {
		return setup("wrvdr", err)
	}
	if _, err := t.Access(base, true); err != nil {
		return setup("access", err)
	}
	if !g.ValidateRegister(t, t.SavedPerm()) {
		return false, "legal register rejected"
	}
	if g.ValidateRegister(t, 0) {
		return false, "all-access register accepted"
	}
	return true, "dynamic PKRU check distinguishes legal from hijacked values"
}

func deputyFilter(arch cycles.Arch) (bool, string) {
	e := newEnv(arch)
	t := e.proc.NewTask(0)
	if _, err := e.mgr.VdrAlloc(t, 2); err != nil {
		return setup("vdr_alloc", err)
	}
	_, base, err := e.region(t, 1)
	if err != nil {
		return setup("region", err)
	}
	// Without the filter the kernel deputy leaks the page.
	if _, _, err := t.ProcessVMReadv(base); err != nil {
		return false, fmt.Sprintf("baseline deputy read failed: %v", err)
	}
	e.k.RegisterSyscallFilter(func(_ *kernel.Task, sc kernel.Syscall, args kernel.SyscallArgs) error {
		if sc != kernel.SysProcessVMReadv {
			return nil
		}
		if v := e.proc.AS().FindVMA(args.Addr); v != nil && v.Tag != 0 {
			return errors.New("read of domain-protected memory")
		}
		return nil
	})
	_, _, err = t.ProcessVMReadv(base)
	return errors.Is(err, kernel.ErrBlocked), fmt.Sprintf("filtered deputy read: %v", err)
}
