// Package pagetable implements the 4-level radix page tables of the
// simulated machine, including the per-PTE memory-domain tags that Intel
// MPK and ARM Memory Domain attach to translations, and the PMD-disable
// fast path VDom uses to evict 2 MiB-spanning domains cheaply.
//
// The package is purely structural: operations return *counts* of PTE/PMD
// writes and walk depths; charging cycles for them is the caller's job
// (internal/hw and internal/kernel), keeping the cost model in one place.
package pagetable

import "fmt"

// Virtual address geometry (x86-64-style 4-level, 4 KiB pages). The ARM
// model reuses the same geometry; its 2 MiB domain granularity is enforced
// a level up, in the kernel.
const (
	PageShift = 12
	// PageSize is the size of one page in bytes.
	PageSize = 1 << PageShift
	// EntriesPerTable is the fan-out of every table level.
	EntriesPerTable = 512
	// PMDShift is the shift of one page-middle-directory entry (2 MiB).
	PMDShift = PageShift + 9
	// PMDSize is the bytes covered by one PMD entry.
	PMDSize = 1 << PMDShift
	// Levels is the number of radix levels (pgd, pud, pmd, pt).
	Levels = 4
	// AddrBits is the number of meaningful virtual-address bits.
	AddrBits = PageShift + 9*Levels
)

// VAddr is a virtual address in the simulated machine.
type VAddr uint64

// Frame is a physical frame number.
type Frame uint64

// Pdom is a hardware protection-domain identifier (0..15).
type Pdom uint8

// VPN returns the virtual page number of the address.
func (a VAddr) VPN() uint64 { return uint64(a) >> PageShift }

// PageAlign rounds the address down to a page boundary.
func (a VAddr) PageAlign() VAddr { return a &^ (PageSize - 1) }

// PMDAlign rounds the address down to a 2 MiB boundary.
func (a VAddr) PMDAlign() VAddr { return a &^ (PMDSize - 1) }

// PTE is one page-table entry: a translation plus its domain tag.
type PTE struct {
	Frame    Frame
	Present  bool
	Writable bool
	Pdom     Pdom
}

// indices splits a virtual address into its four radix indices
// (pgd, pud, pmd, pt).
func indices(a VAddr) (i3, i2, i1, i0 int) {
	v := uint64(a)
	i3 = int(v >> 39 & 0x1ff)
	i2 = int(v >> 30 & 0x1ff)
	i1 = int(v >> 21 & 0x1ff)
	i0 = int(v >> 12 & 0x1ff)
	return
}

type ptTable struct {
	ptes    [EntriesPerTable]PTE
	present int
}

type pmdTable struct {
	pts [EntriesPerTable]*ptTable
	// disabled marks PMD entries VDom has made access-never without
	// touching the 512 PTEs underneath (§5.5 page-table optimization).
	disabled [EntriesPerTable]bool
}

type pudTable struct {
	pmds [EntriesPerTable]*pmdTable
}

// Table is one address space's page table, rooted at a pgd.
type Table struct {
	pgd     [EntriesPerTable]*pudTable
	present int

	// PTEWrites and PMDWrites count structural updates since the last
	// ResetCounts. The memory-management layer converts them to cycles.
	PTEWrites uint64
	PMDWrites uint64

	// retiredPTE/retiredPMD accumulate counts cleared by ResetCounts, so
	// cumulative totals survive the per-operation reset protocol.
	retiredPTE uint64
	retiredPMD uint64

	// gen increments on every structural mutation (Map, Unmap, SetPdom,
	// SetWritable, DisablePMD, EnablePMD, and the range operations built
	// on them). Translation caches key their validity on it: a cached
	// Walk result is reusable iff the table's generation is unchanged.
	gen uint64
}

// Gen returns the table's mutation generation. It changes whenever any
// operation that could alter a Walk outcome runs, so callers may reuse a
// cached WalkResult as long as Gen is unchanged.
func (t *Table) Gen() uint64 { return t.gen }

// New returns an empty page table.
func New() *Table {
	return &Table{}
}

// Present returns the number of present PTEs.
func (t *Table) Present() int { return t.present }

// ResetCounts zeroes the PTE/PMD write counters.
func (t *Table) ResetCounts() {
	t.retiredPTE += t.PTEWrites
	t.retiredPMD += t.PMDWrites
	t.PTEWrites = 0
	t.PMDWrites = 0
}

// CumulativePTEWrites returns the table's lifetime PTE write count,
// unaffected by ResetCounts.
func (t *Table) CumulativePTEWrites() uint64 { return t.retiredPTE + t.PTEWrites }

// CumulativePMDWrites returns the table's lifetime PMD write count,
// unaffected by ResetCounts.
func (t *Table) CumulativePMDWrites() uint64 { return t.retiredPMD + t.PMDWrites }

// WalkResult describes the outcome of a page walk.
type WalkResult struct {
	// PTE is the entry found; only meaningful when Present.
	PTE PTE
	// Present reports whether a present translation exists.
	Present bool
	// PMDDisabled reports that the walk hit a PMD entry VDom disabled;
	// the access must fault even though PTEs may exist underneath.
	PMDDisabled bool
	// LevelsVisited is the number of table levels the walker touched
	// (1..4); hardware charges walk cost proportionally.
	LevelsVisited int
}

// Walk performs a page-table walk for the address.
func (t *Table) Walk(a VAddr) WalkResult {
	i3, i2, i1, i0 := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		return WalkResult{LevelsVisited: 1}
	}
	pmd := pud.pmds[i2]
	if pmd == nil {
		return WalkResult{LevelsVisited: 2}
	}
	if pmd.disabled[i1] {
		return WalkResult{LevelsVisited: 3, PMDDisabled: true}
	}
	pt := pmd.pts[i1]
	if pt == nil {
		return WalkResult{LevelsVisited: 3}
	}
	pte := pt.ptes[i0]
	return WalkResult{PTE: pte, Present: pte.Present, LevelsVisited: 4}
}

// ensurePT materializes the path to the page table covering a and returns
// it together with the owning pmd table and the pmd index.
func (t *Table) ensurePT(a VAddr) (*ptTable, *pmdTable, int) {
	i3, i2, i1, _ := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		pud = &pudTable{}
		t.pgd[i3] = pud
		t.PTEWrites++ // directory entry install
	}
	pmd := pud.pmds[i2]
	if pmd == nil {
		pmd = &pmdTable{}
		pud.pmds[i2] = pmd
		t.PTEWrites++
	}
	pt := pmd.pts[i1]
	if pt == nil {
		pt = &ptTable{}
		pmd.pts[i1] = pt
		t.PTEWrites++
	}
	return pt, pmd, i1
}

// Map installs a translation for the page containing a. Mapping a page
// under a disabled PMD re-enables that PMD entry (one PMD write), matching
// the remap path of VDom's HLRU policy.
func (t *Table) Map(a VAddr, f Frame, writable bool, d Pdom) {
	t.gen++
	pt, pmd, i1 := t.ensurePT(a)
	if pmd.disabled[i1] {
		pmd.disabled[i1] = false
		t.PMDWrites++
	}
	_, _, _, i0 := indices(a)
	if !pt.ptes[i0].Present {
		pt.present++
		t.present++
	}
	pt.ptes[i0] = PTE{Frame: f, Present: true, Writable: writable, Pdom: d}
	t.PTEWrites++
}

// Unmap removes the translation for the page containing a. It reports
// whether a present mapping existed.
func (t *Table) Unmap(a VAddr) bool {
	t.gen++
	i3, i2, i1, i0 := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		return false
	}
	pmd := pud.pmds[i2]
	if pmd == nil {
		return false
	}
	pt := pmd.pts[i1]
	if pt == nil {
		return false
	}
	if !pt.ptes[i0].Present {
		return false
	}
	pt.ptes[i0] = PTE{}
	pt.present--
	t.present--
	t.PTEWrites++
	return true
}

// SetPdom retags the page containing a with domain d. It reports whether a
// present mapping existed. Retagging a page under a disabled PMD re-enables
// the PMD entry.
func (t *Table) SetPdom(a VAddr, d Pdom) bool {
	t.gen++
	i3, i2, i1, i0 := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		return false
	}
	pmd := pud.pmds[i2]
	if pmd == nil {
		return false
	}
	pt := pmd.pts[i1]
	if pt == nil || !pt.ptes[i0].Present {
		return false
	}
	if pmd.disabled[i1] {
		pmd.disabled[i1] = false
		t.PMDWrites++
	}
	pt.ptes[i0].Pdom = d
	t.PTEWrites++
	return true
}

// SetWritable flips the writable bit of the page containing a.
func (t *Table) SetWritable(a VAddr, w bool) bool {
	t.gen++
	wr := t.Walk(a)
	if !wr.Present {
		return false
	}
	i3, i2, i1, i0 := indices(a)
	t.pgd[i3].pmds[i2].pts[i1].ptes[i0].Writable = w
	t.PTEWrites++
	return true
}

// DisablePMD marks the 2 MiB PMD entry covering a as access-never without
// touching its PTEs. It reports whether the entry existed and was enabled.
func (t *Table) DisablePMD(a VAddr) bool {
	t.gen++
	i3, i2, i1, _ := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		return false
	}
	pmd := pud.pmds[i2]
	if pmd == nil || pmd.pts[i1] == nil || pmd.disabled[i1] {
		return false
	}
	pmd.disabled[i1] = true
	t.PMDWrites++
	return true
}

// EnablePMD clears the disabled mark on the PMD entry covering a.
func (t *Table) EnablePMD(a VAddr) bool {
	t.gen++
	i3, i2, i1, _ := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		return false
	}
	pmd := pud.pmds[i2]
	if pmd == nil || !pmd.disabled[i1] {
		return false
	}
	pmd.disabled[i1] = false
	t.PMDWrites++
	return true
}

// PMDDisabled reports whether the PMD entry covering a is disabled.
func (t *Table) PMDDisabled(a VAddr) bool {
	i3, i2, i1, _ := indices(a)
	pud := t.pgd[i3]
	if pud == nil {
		return false
	}
	pmd := pud.pmds[i2]
	return pmd != nil && pmd.disabled[i1]
}

// RetagRange retags every present page in [start, start+length) with d and
// returns the number of pages retagged. length must be page-aligned.
func (t *Table) RetagRange(start VAddr, length uint64, d Pdom) int {
	checkAligned(start, length)
	n := 0
	for off := uint64(0); off < length; off += PageSize {
		if t.SetPdom(start+VAddr(off), d) {
			n++
		}
	}
	return n
}

// EvictRange makes [start, start+length) inaccessible for a domain
// eviction. Full 2 MiB-aligned chunks are disabled at the PMD level (one
// PMD write per 2 MiB, the §5.5 optimization); partial chunks fall back to
// per-PTE retagging with the access-never domain. It returns the number of
// PMD entries disabled and PTEs retagged.
func (t *Table) EvictRange(start VAddr, length uint64, accessNever Pdom) (pmds, ptes int) {
	checkAligned(start, length)
	end := start + VAddr(length)
	a := start
	for a < end {
		if a == a.PMDAlign() && uint64(end-a) >= PMDSize {
			if t.DisablePMD(a) {
				pmds++
			} else {
				// No live PT under this PMD (or already
				// disabled): nothing to evict here.
			}
			a += PMDSize
			continue
		}
		if t.SetPdom(a, accessNever) {
			ptes++
		}
		a += PageSize
	}
	return pmds, ptes
}

// RemapRange is the inverse of EvictRange for the HLRU fast-remap path
// (§5.5): full 2 MiB-aligned chunks whose PTEs still carry the target
// domain tag are brought back by re-enabling their PMD entries (one PMD
// write each); partial chunks are retagged per PTE. It returns the number
// of PMD entries enabled and PTEs retagged.
func (t *Table) RemapRange(start VAddr, length uint64, d Pdom) (pmds, ptes int) {
	checkAligned(start, length)
	end := start + VAddr(length)
	a := start
	for a < end {
		if a == a.PMDAlign() && uint64(end-a) >= PMDSize {
			if t.EnablePMD(a) {
				pmds++
			}
			a += PMDSize
			continue
		}
		if t.SetPdom(a, d) {
			ptes++
		}
		a += PageSize
	}
	return pmds, ptes
}

// Pages calls fn for every present PTE, in ascending address order. fn may
// not mutate the table.
func (t *Table) Pages(fn func(a VAddr, pte PTE)) {
	for i3, pud := range t.pgd {
		if pud == nil {
			continue
		}
		for i2, pmd := range pud.pmds {
			if pmd == nil {
				continue
			}
			for i1, pt := range pmd.pts {
				if pt == nil || pt.present == 0 {
					continue
				}
				for i0, pte := range pt.ptes {
					if !pte.Present {
						continue
					}
					a := VAddr(uint64(i3)<<39 | uint64(i2)<<30 |
						uint64(i1)<<21 | uint64(i0)<<12)
					fn(a, pte)
				}
			}
		}
	}
}

func checkAligned(start VAddr, length uint64) {
	if uint64(start)%PageSize != 0 || length%PageSize != 0 {
		panic(fmt.Sprintf("pagetable: unaligned range [%#x, +%#x)", uint64(start), length))
	}
}
