package workload

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/libmpk"
	"vdom/internal/replay"
)

// This file binds the paper workloads to the trace recorder: for each
// workload family it derives a replay.Header that describes exactly the
// platform the run boots (so replay.Run can reconstruct it), and exposes
// the golden-trace corpus the regression tests and `vdom-bench record`
// re-record.

// patternHeader describes a Table 4 cell's platform. Pattern cells are
// single-threaded and seedless; VDom and libmpk cells run on the
// fixed 2-core measurement machine, EPK cells are a standalone cost
// model (Cores == 0 tells replay.boot to skip the machine).
func patternHeader(cfg PatternConfig, name string) replay.Header {
	if cfg.Rounds == 0 {
		cfg.Rounds = 12
	}
	h := replay.Header{
		Arch:     replay.ArchName(cfg.Arch),
		Workload: name,
		ConfigDigest: replay.DigestString(fmt.Sprintf(
			"pattern|arch=%s|sys=%s|pat=%s|n=%d|rounds=%d|noasid=%v|strict=%v|nopmd=%v|flush=%d",
			replay.ArchName(cfg.Arch), cfg.System, cfg.Pattern, cfg.NumVdoms,
			cfg.Rounds, cfg.NoASID, cfg.StrictLRU, cfg.NoPMDOpt, cfg.FlushThresholdPages)),
	}
	switch cfg.System {
	case PatternEPK:
		h.Kernel = replay.KernelEPK
		h.Domains = cfg.NumVdoms
	case PatternLibmpk:
		h.Kernel = replay.KernelLibmpk
		h.Cores = 2
	case PatternDPTI:
		h.Kernel = replay.KernelDPTI
		h.Cores = 2
		if cfg.NoASID {
			h.Flags |= replay.HdrNoASID
		}
	default:
		h.Kernel = replay.KernelVDom
		h.Cores = 2
		pol := core.DefaultPolicy()
		h.Flags |= replay.HdrVDomKernel
		if cfg.System == PatternVDomSecure {
			h.Flags |= replay.HdrSecureGate
		}
		if cfg.NoASID {
			h.Flags |= replay.HdrNoASID
		}
		if cfg.StrictLRU {
			h.Flags |= replay.HdrStrictLRU
		}
		if cfg.NoPMDOpt {
			h.Flags |= replay.HdrNoPMDOpt
		}
		h.FlushThreshold = pol.RangeFlushThresholdPages
		if cfg.FlushThresholdPages != 0 {
			h.FlushThreshold = cfg.FlushThresholdPages
		}
		h.Nas = pol.DefaultNas
	}
	return h
}

// appHeader fills the fields every application workload (httpd, pmo,
// mysql) shares: the newPlatform machine geometry and, for VDom runs,
// the DefaultPolicy knobs.
func appHeader(sys System, arch cycles.Arch, cores int, seed uint64, name, digest string) replay.Header {
	h := replay.Header{
		Arch:         replay.ArchName(arch),
		Cores:        cores,
		Seed:         seed,
		Workload:     name,
		ConfigDigest: replay.DigestString(digest),
	}
	switch sys {
	case Libmpk:
		h.Kernel = replay.KernelLibmpk
	case EPK:
		h.Kernel = replay.KernelEPK
	default:
		h.Kernel = replay.KernelVDom
		pol := core.DefaultPolicy()
		h.Flags |= replay.HdrVDomKernel
		if pol.SecureGate {
			h.Flags |= replay.HdrSecureGate
		}
		h.FlushThreshold = pol.RangeFlushThresholdPages
		h.Nas = pol.DefaultNas
	}
	return h
}

// httpdHeader describes one httpd run's platform.
func httpdHeader(cfg HttpdConfig, name string) replay.Header {
	cfg.defaults()
	h := appHeader(cfg.System, cfg.Arch, cfg.Cores, cfg.Seed, name, fmt.Sprintf(
		"httpd|arch=%s|sys=%d|clients=%d|reqs=%d|file=%d|workers=%d|cores=%d|keys=%d|mode=%d|keepalive=%v|seed=%#x",
		replay.ArchName(cfg.Arch), cfg.System, cfg.Clients, cfg.RequestsPerClient,
		cfg.FileBytes, cfg.Workers, cfg.Cores, cfg.KeysPerRequest, cfg.LibmpkMode, cfg.KeepAlive, cfg.Seed))
	if cfg.System == EPK {
		h.Domains = epk.KeysPerEPT * 5
	}
	if cfg.System == Libmpk && cfg.LibmpkMode == libmpk.Huge2M {
		h.Flags |= replay.HdrHugePages
	}
	return h
}

// pmoHeader describes one String Replace run's platform.
func pmoHeader(cfg PMOConfig, name string) replay.Header {
	cfg.defaults()
	h := appHeader(cfg.System, cfg.Arch, cfg.Cores, cfg.Seed, name, fmt.Sprintf(
		"pmo|arch=%s|sys=%d|threads=%d|ops=%d|pmos=%d|mode=%d|lbmode=%d|cores=%d|seed=%#x",
		replay.ArchName(cfg.Arch), cfg.System, cfg.Threads, cfg.OpsPerThread,
		cfg.NumPMOs, cfg.Mode, cfg.LibmpkMode, cfg.Cores, cfg.Seed))
	if cfg.System == EPK {
		h.Domains = cfg.NumPMOs
	}
	if cfg.System == Libmpk && cfg.LibmpkMode == libmpk.Huge2M {
		h.Flags |= replay.HdrHugePages
	}
	return h
}

// mysqlHeader describes one MySQL run's platform.
func mysqlHeader(cfg MySQLConfig, name string) replay.Header {
	cfg.defaults()
	h := appHeader(cfg.System, cfg.Arch, cfg.Cores, cfg.Seed, name, fmt.Sprintf(
		"mysql|arch=%s|sys=%d|clients=%d|queries=%d|stmts=%d|churn=%d|cores=%d|seed=%#x",
		replay.ArchName(cfg.Arch), cfg.System, cfg.Clients, cfg.QueriesPerClient,
		cfg.StatementsPerQuery, cfg.ChurnEvery, cfg.Cores, cfg.Seed))
	if cfg.System == EPK {
		h.Domains = cfg.Clients + 1
	}
	return h
}

// TraceSpec is one golden-corpus entry: a name (the trace's file stem
// under testdata/traces/) and a recorder that re-runs the workload and
// returns the sealed trace.
type TraceSpec struct {
	Name   string
	Record func() *replay.Trace
}

// TraceCorpus returns the golden-trace corpus: one scaled-down recording
// per paper workload family and kernel kind. Every spec is deterministic
// — recording twice yields byte-identical traces — which is what the
// golden regression test and `vdom-bench record` rely on.
func TraceCorpus() []TraceSpec {
	pattern := func(name string, cfg PatternConfig) TraceSpec {
		return TraceSpec{Name: name, Record: func() *replay.Trace {
			rec := replay.NewRecorder(patternHeader(cfg, name))
			cfg.Record = rec
			RunPattern(cfg)
			return rec.Finish()
		}}
	}
	httpd := func(name string, cfg HttpdConfig) TraceSpec {
		return TraceSpec{Name: name, Record: func() *replay.Trace {
			rec := replay.NewRecorder(httpdHeader(cfg, name))
			cfg.Record = rec
			RunHttpd(cfg)
			return rec.Finish()
		}}
	}
	pmo := func(name string, cfg PMOConfig) TraceSpec {
		return TraceSpec{Name: name, Record: func() *replay.Trace {
			rec := replay.NewRecorder(pmoHeader(cfg, name))
			cfg.Record = rec
			RunPMO(cfg)
			return rec.Finish()
		}}
	}
	mysql := func(name string, cfg MySQLConfig) TraceSpec {
		return TraceSpec{Name: name, Record: func() *replay.Trace {
			rec := replay.NewRecorder(mysqlHeader(cfg, name))
			cfg.Record = rec
			RunMySQL(cfg)
			return rec.Finish()
		}}
	}
	return []TraceSpec{
		pattern("table4-vdom-x86", PatternConfig{
			Arch: cycles.X86, System: PatternVDomSecure, Pattern: SwitchTriggering,
			NumVdoms: 16, Rounds: 2,
		}),
		pattern("table4-vdom-arm", PatternConfig{
			Arch: cycles.ARM, System: PatternVDomSecure, Pattern: Sequential,
			NumVdoms: 8, Rounds: 2,
		}),
		pattern("table4-libmpk-x86", PatternConfig{
			Arch: cycles.X86, System: PatternLibmpk, Pattern: SwitchTriggering,
			NumVdoms: 8, Rounds: 2,
		}),
		pattern("table4-epk-x86", PatternConfig{
			Arch: cycles.X86, System: PatternEPK, Pattern: SwitchTriggering,
			NumVdoms: 32, Rounds: 2,
		}),
		pattern("table4-dpti-x86", PatternConfig{
			Arch: cycles.X86, System: PatternDPTI, Pattern: SwitchTriggering,
			NumVdoms: 8, Rounds: 2,
		}),
		pattern("table4-vdom-riscv", PatternConfig{
			Arch: cycles.RISCV, System: PatternVDomSecure, Pattern: Sequential,
			NumVdoms: 8, Rounds: 2,
		}),
		pattern("table4-dpti-riscv", PatternConfig{
			Arch: cycles.RISCV, System: PatternDPTI, Pattern: Sequential,
			NumVdoms: 8, Rounds: 2,
		}),
		httpd("httpd-vdom-x86", HttpdConfig{
			Arch: cycles.X86, System: VDom,
			Clients: 4, RequestsPerClient: 2, Workers: 4, Cores: 4,
		}),
		httpd("httpd-libmpk-x86", HttpdConfig{
			Arch: cycles.X86, System: Libmpk,
			Clients: 4, RequestsPerClient: 2, Workers: 4, Cores: 4,
		}),
		httpd("httpd-epk-x86", HttpdConfig{
			Arch: cycles.X86, System: EPK,
			Clients: 4, RequestsPerClient: 2, Workers: 4, Cores: 4,
		}),
		pmo("pmo-vdom-x86", PMOConfig{
			Arch: cycles.X86, System: VDom,
			Threads: 2, OpsPerThread: 40, NumPMOs: 8, Cores: 4,
		}),
		pmo("pmo-libmpk-x86", PMOConfig{
			Arch: cycles.X86, System: Libmpk,
			Threads: 2, OpsPerThread: 40, NumPMOs: 8, Cores: 4,
		}),
		mysql("mysql-vdom-x86", MySQLConfig{
			Arch: cycles.X86, System: VDom,
			Clients: 2, QueriesPerClient: 4, StatementsPerQuery: 6, Cores: 2,
		}),
	}
}
