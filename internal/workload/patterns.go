package workload

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
)

// Pattern is a domain access order (Table 4).
type Pattern int

const (
	// Sequential iterates vdom 0..N-1 in order.
	Sequential Pattern = iota
	// SwitchTriggering traverses vdoms with strides so consecutive
	// accesses land in different address-space groups, forcing a VDS
	// (or EPT) switch on nearly every access.
	SwitchTriggering
)

// String names the pattern as Table 4 does.
func (p Pattern) String() string {
	if p == SwitchTriggering {
		return "trig"
	}
	return "seq"
}

// PatternSystem selects the Table 4 row family.
type PatternSystem int

// The Table 4 row families.
const (
	// PatternVDomSecure is VDom with the secure X86 call gate (X86s) or
	// the ARM kernel path.
	PatternVDomSecure PatternSystem = iota
	// PatternVDomFast is VDom with the fast X86 API (X86f).
	PatternVDomFast
	// PatternVDomEvict is VDom restricted to one address space
	// (X86e/ARMe): evictions instead of VDS switches.
	PatternVDomEvict
	// PatternLibmpk is the libmpk baseline.
	PatternLibmpk
	// PatternEPK is the EPK baseline (cycle model).
	PatternEPK
	// PatternDPTI is the per-domain-page-table baseline: activation is a
	// domain Enter (pgd switch), so every switch pays address-space
	// change plus TLB refill instead of a key-register write.
	PatternDPTI
)

// String names the row family.
func (s PatternSystem) String() string {
	switch s {
	case PatternVDomSecure:
		return "VDom-secure"
	case PatternVDomFast:
		return "VDom-fast"
	case PatternVDomEvict:
		return "VDom-evict"
	case PatternLibmpk:
		return "libmpk"
	case PatternEPK:
		return "EPK"
	case PatternDPTI:
		return "DPTI"
	default:
		return fmt.Sprintf("PatternSystem(%d)", int(s))
	}
}

// PatternConfig describes one Table 4 measurement: a single thread
// activating N 2 MiB (512-page) vdoms in a given order and measuring the
// average cycles of each activating wrvdr (or pkey_set / EPT switch).
type PatternConfig struct {
	Arch     cycles.Arch
	System   PatternSystem
	Pattern  Pattern
	NumVdoms int
	// Rounds of measurement after warm-up (default 12 + 3 warm-up).
	Rounds int

	// Ablation knobs (VDom rows only).

	// NoASID disables ASID tagging: every pgd switch flushes the TLB.
	NoASID bool
	// StrictLRU disables the HLRU last-pdom heuristic.
	StrictLRU bool
	// NoPMDOpt disables the PMD-disable eviction fast path.
	NoPMDOpt bool
	// FlushThresholdPages overrides the range-flush/ASID-flush cutoff.
	FlushThresholdPages uint64

	// Observability (both optional; nil costs nothing).

	// Metrics, when non-nil, is attached to every instrumented layer of
	// the cell's system. The runner additionally attributes
	// harness-level costs the layers do not cover (EPK switches) so the
	// registry's cycle attribution sums to exactly the cell's
	// TotalCycles, and harvests each layer's event counters when the
	// cell finishes.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives one Chrome-trace decision span per
	// domain-activation outcome (map/evict/switch/migrate for VDom
	// rows, pkey-set / ept-switch for the baselines), timestamped on
	// the cell's cumulative cycle clock.
	Trace *metrics.Trace
	// Record, when non-nil, captures the cell's domain-op stream
	// (internal/replay); the caller attaches it to a header and seals
	// the trace with Finish.
	Record *replay.Recorder
}

// PatternResult is the measured average.
type PatternResult struct {
	Config PatternConfig
	// AvgCycles is the average cost of one activating wrvdr (the Table 4
	// metric).
	AvgCycles float64
	// AvgTouchCycles is the average cost of the memory accesses that
	// follow each activation (TLB refill effects; used by the ASID
	// ablation).
	AvgTouchCycles float64
	Activations    int
	// TotalCycles is the harness's independent grand total: every cycle
	// cost the runner observed, including setup, warm-up, and
	// deactivations. When PatternConfig.Metrics is set, the registry's
	// per-(layer, op) cycle attribution sums to exactly this value.
	TotalCycles uint64
}

// pmPages is the page count of each 2 MiB benchmark vdom.
const pmPages = pagetable.PMDSize / pagetable.PageSize

// order returns the access order for one round.
func order(p Pattern, n int) []int {
	idx := make([]int, 0, n)
	if p == Sequential {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
		return idx
	}
	// Interleave across address-space groups: position j of group g is
	// visited as (offset j, group g), so consecutive accesses alternate
	// groups whenever more than one group exists.
	group := core.UsablePdomsPerVDS
	groups := (n + group - 1) / group
	for j := 0; j < group; j++ {
		for g := 0; g < groups; g++ {
			d := g*group + j
			if d < n {
				idx = append(idx, d)
			}
		}
	}
	return idx
}

// RunPattern executes one Table 4 cell.
func RunPattern(cfg PatternConfig) PatternResult {
	if cfg.Rounds == 0 {
		cfg.Rounds = 12
	}
	const warmup = 3
	switch cfg.System {
	case PatternEPK:
		return runPatternEPK(cfg, warmup)
	case PatternLibmpk:
		return runPatternLibmpk(cfg, warmup)
	case PatternDPTI:
		return runPatternDPTI(cfg, warmup)
	default:
		return runPatternVDom(cfg, warmup)
	}
}

func runPatternVDom(cfg PatternConfig, warmup int) PatternResult {
	pol := core.DefaultPolicy()
	// The paper's X86f and X86e rows use the fast API; X86s the secure
	// call gate.
	pol.SecureGate = cfg.System == PatternVDomSecure
	pol.StrictLRU = cfg.StrictLRU
	pol.NoPMDOpt = cfg.NoPMDOpt
	if cfg.FlushThresholdPages != 0 {
		pol.RangeFlushThresholdPages = cfg.FlushThresholdPages
	}
	mach := hw.NewMachine(hw.Config{Arch: cfg.Arch, NumCores: 2, TLBCapacity: 0, NoASID: cfg.NoASID})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: true})
	proc := k.NewProcess()
	mgr := core.Attach(proc, pol)
	rec := cfg.Record
	if rec != nil {
		rec.AttachKernel(k)
		rec.AttachManager(mgr)
	}
	task := proc.NewTask(0)
	if rec != nil {
		rec.Spawn(task)
	}
	k.SetMetrics(cfg.Metrics)
	mgr.SetMetrics(cfg.Metrics)

	// grand is the cell's cumulative cycle clock; every observed cost is
	// funnelled through add so PatternResult.TotalCycles and the trace
	// timestamps agree.
	var grand uint64
	add := func(c cycles.Cost) cycles.Cost { grand += uint64(c); return c }
	if cfg.Trace != nil {
		mgr.SetTracer(func(e core.Event) {
			cfg.Trace.Decision(e.Kind.String(), e.TID, grand, uint64(e.Cost), map[string]uint64{
				"vdom": uint64(e.Vdom), "vds": uint64(e.VDS), "pdom": uint64(e.Pdom),
			})
		})
	}

	nas := 0
	if cfg.System == PatternVDomEvict {
		nas = 1
	} else {
		nas = (cfg.NumVdoms+core.UsablePdomsPerVDS-1)/core.UsablePdomsPerVDS + 1
	}
	if c, err := mgr.VdrAlloc(task, nas); err != nil {
		panic(err)
	} else {
		add(c)
	}

	// populate pre-faults a domain's pages; it returns a page count, not
	// a cycle cost, so nothing is charged.
	populate := func(t *pagetable.Table, base pagetable.VAddr) {
		if _, err := proc.AS().Populate(t, base, pagetable.PMDSize); err != nil {
			panic(err)
		}
		if rec != nil {
			rec.Populate(task, base, pagetable.PMDSize, t != proc.AS().Shadow())
		}
	}

	doms := make([]core.VdomID, cfg.NumVdoms)
	bases := make([]pagetable.VAddr, cfg.NumVdoms)
	next := pagetable.VAddr(0x30_0000_0000)
	for i := range doms {
		base := next
		next += pagetable.PMDSize * 4
		if c, err := task.Mmap(base, pagetable.PMDSize, true); err != nil {
			panic(err)
		} else {
			add(c)
		}
		var c cycles.Cost
		doms[i], c = mgr.AllocVdom(false)
		add(c)
		bases[i] = base
		if c, err := mgr.Mprotect(task, base, pagetable.PMDSize, doms[i]); err != nil {
			panic(err)
		} else {
			add(c)
		}
		// Populate the pages in the shadow so evictions work on fully
		// present 512-page domains, as the paper's benchmark does.
		populate(proc.AS().Shadow(), base)
		// Activate once and populate the domain's home VDS so later
		// evictions disable all 512 pages.
		if c, err := mgr.WrVdr(task, doms[i], core.VPermReadWrite); err != nil {
			panic(err)
		} else {
			add(c)
		}
		populate(mgr.VDROf(task).Current().Table(), base)
		if c, err := task.Access(base, true); err != nil {
			panic(err)
		} else {
			add(c)
		}
		if c, err := mgr.WrVdr(task, doms[i], core.VPermNone); err != nil {
			panic(err)
		} else {
			add(c)
		}
	}

	idx := order(cfg.Pattern, cfg.NumVdoms)
	var total, touchTotal cycles.Cost
	activations := 0
	// Each activation is followed by accesses spread across the domain,
	// as the paper's benchmark "accesses" its 2 MiB vdoms.
	const touches = 4
	for r := 0; r < warmup+cfg.Rounds; r++ {
		for _, i := range idx {
			c, err := mgr.WrVdr(task, doms[i], core.VPermReadWrite)
			if err != nil {
				panic(err)
			}
			add(c)
			var tc cycles.Cost
			for k := 0; k < touches; k++ {
				step := pagetable.VAddr(k) * (pagetable.PMDSize / touches)
				a, err := task.Access(bases[i]+step, true)
				if err != nil {
					panic(err)
				}
				add(a)
				tc += a
			}
			if r >= warmup {
				total += c
				touchTotal += tc
				activations++
			}
			if c, err := mgr.WrVdr(task, doms[i], core.VPermNone); err != nil {
				panic(err)
			} else {
				add(c)
			}
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Accumulate(mach, proc.AS(), k)
	}
	return PatternResult{
		Config:         cfg,
		AvgCycles:      float64(total) / float64(activations),
		AvgTouchCycles: float64(touchTotal) / float64(activations),
		Activations:    activations,
		TotalCycles:    grand,
	}
}

func runPatternLibmpk(cfg PatternConfig, warmup int) PatternResult {
	mach := hw.NewMachine(hw.Config{Arch: cfg.Arch, NumCores: 2, TLBCapacity: 0})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: false})
	proc := k.NewProcess()
	m := libmpk.Attach(proc, nil)
	rec := cfg.Record
	if rec != nil {
		rec.AttachKernel(k)
		rec.AttachLibmpk(m)
	}
	task := proc.NewTask(0)
	if rec != nil {
		rec.Spawn(task)
	}
	k.SetMetrics(cfg.Metrics)
	m.SetMetrics(cfg.Metrics)

	var grand uint64
	add := func(c cycles.Cost) cycles.Cost { grand += uint64(c); return c }

	keys := make([]libmpk.Vkey, cfg.NumVdoms)
	next := pagetable.VAddr(0x30_0000_0000)
	for i := range keys {
		base := next
		next += pagetable.PMDSize * 4
		if c, err := task.Mmap(base, pagetable.PMDSize, true); err != nil {
			panic(err)
		} else {
			add(c)
		}
		var c cycles.Cost
		keys[i], c = m.PkeyAlloc()
		add(c)
		if c, err := m.PkeyMprotect(nil, task, base, pagetable.PMDSize, keys[i]); err != nil {
			panic(err)
		} else {
			add(c)
		}
		if _, err := proc.AS().Populate(proc.AS().Shadow(), base, pagetable.PMDSize); err != nil {
			panic(err)
		}
		if rec != nil {
			rec.Populate(task, base, pagetable.PMDSize, false)
		}
	}

	// libmpk's eviction-based design performs identically under both
	// patterns (§7.5), so the order is irrelevant; we honour it anyway.
	idx := order(cfg.Pattern, cfg.NumVdoms)
	var total cycles.Cost
	activations := 0
	for r := 0; r < warmup+cfg.Rounds; r++ {
		for _, i := range idx {
			c, err := m.PkeySet(nil, task, keys[i], hw.PermReadWrite)
			if err != nil {
				panic(err)
			}
			if cfg.Trace != nil {
				cfg.Trace.Decision("pkey-set", 0, grand, uint64(c), map[string]uint64{"vkey": uint64(keys[i])})
			}
			add(c)
			if r >= warmup {
				total += c
				activations++
			}
			if c, err := m.PkeySet(nil, task, keys[i], hw.PermNone); err != nil {
				panic(err)
			} else {
				add(c)
			}
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Accumulate(mach, proc.AS(), k)
		m.Stats.Emit(cfg.Metrics.Add)
	}
	return PatternResult{Config: cfg, AvgCycles: float64(total) / float64(activations), Activations: activations, TotalCycles: grand}
}

func runPatternDPTI(cfg PatternConfig, warmup int) PatternResult {
	mach := hw.NewMachine(hw.Config{Arch: cfg.Arch, NumCores: 2, TLBCapacity: 0, NoASID: cfg.NoASID})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: false})
	proc := k.NewProcess()
	m := dpti.Attach(proc)
	rec := cfg.Record
	if rec != nil {
		rec.AttachKernel(k)
		rec.AttachDPTI(m)
	}
	task := proc.NewTask(0)
	if rec != nil {
		rec.Spawn(task)
	}
	k.SetMetrics(cfg.Metrics)
	m.SetMetrics(cfg.Metrics)

	var grand uint64
	add := func(c cycles.Cost) cycles.Cost { grand += uint64(c); return c }

	doms := make([]dpti.DomainID, cfg.NumVdoms)
	bases := make([]pagetable.VAddr, cfg.NumVdoms)
	next := pagetable.VAddr(0x30_0000_0000)
	for i := range doms {
		base := next
		next += pagetable.PMDSize * 4
		if c, err := task.Mmap(base, pagetable.PMDSize, true); err != nil {
			panic(err)
		} else {
			add(c)
		}
		var c cycles.Cost
		doms[i], c = m.AllocDomain()
		add(c)
		bases[i] = base
		if c, err := m.Protect(task, base, pagetable.PMDSize, doms[i]); err != nil {
			panic(err)
		} else {
			add(c)
		}
		// Pre-fault in the shadow so every domain is fully present there;
		// each domain's own table still demand-fills on first touch after
		// an Enter — the page-walk pressure that defines this baseline.
		if _, err := proc.AS().Populate(proc.AS().Shadow(), base, pagetable.PMDSize); err != nil {
			panic(err)
		}
		if rec != nil {
			rec.Populate(task, base, pagetable.PMDSize, false)
		}
	}

	idx := order(cfg.Pattern, cfg.NumVdoms)
	var total, touchTotal cycles.Cost
	activations := 0
	const touches = 4
	for r := 0; r < warmup+cfg.Rounds; r++ {
		for _, i := range idx {
			c, err := m.Enter(task, doms[i])
			if err != nil {
				panic(err)
			}
			if cfg.Trace != nil {
				cfg.Trace.Decision("dpti-enter", task.TID(), grand, uint64(c), map[string]uint64{"domain": uint64(doms[i])})
			}
			add(c)
			// The accesses after the switch pay the pgd reload and the
			// cold-TLB refill of the fresh address space.
			var tc cycles.Cost
			for j := 0; j < touches; j++ {
				step := pagetable.VAddr(j) * (pagetable.PMDSize / touches)
				a, err := task.Access(bases[i]+step, true)
				if err != nil {
					panic(err)
				}
				add(a)
				tc += a
			}
			if r >= warmup {
				total += c
				touchTotal += tc
				activations++
			}
			if c, err := m.Exit(task); err != nil {
				panic(err)
			} else {
				add(c)
			}
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Accumulate(mach, proc.AS(), k)
		m.Stats.Emit(cfg.Metrics.Add)
	}
	return PatternResult{
		Config:         cfg,
		AvgCycles:      float64(total) / float64(activations),
		AvgTouchCycles: float64(touchTotal) / float64(activations),
		Activations:    activations,
		TotalCycles:    grand,
	}
}

func runPatternEPK(cfg PatternConfig, warmup int) PatternResult {
	sys := epk.New(cfg.NumVdoms, epk.DefaultVMTax())
	if cfg.Record != nil {
		cfg.Record.AttachEPK(sys)
	}
	idx := order(cfg.Pattern, cfg.NumVdoms)
	var grand uint64
	var total cycles.Cost
	activations := 0
	for r := 0; r < warmup+cfg.Rounds; r++ {
		for _, i := range idx {
			c := sys.Switch(0, i)
			if cfg.Trace != nil {
				cfg.Trace.Decision("ept-switch", 0, grand, uint64(c), map[string]uint64{"domain": uint64(i)})
			}
			cfg.Metrics.Attribute("epk", "switch", uint64(c))
			grand += uint64(c)
			if r >= warmup {
				total += c
				activations++
			}
		}
	}
	if cfg.Metrics != nil {
		sys.Stats.Emit(cfg.Metrics.Add)
	}
	return PatternResult{Config: cfg, AvgCycles: float64(total) / float64(activations), Activations: activations, TotalCycles: grand}
}
