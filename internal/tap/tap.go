// Package tap defines the one observation interface every kernel backend
// exports to the trace recorder. It replaces the four per-layer tap types
// that used to exist (kernel.OpTap, core.APITap, libmpk.Tap, epk.Tap):
// each instrumented layer now emits the same Event shape through the same
// function type, so the recorder (internal/replay) has a single attach
// point per layer and a new backend plugs into record/replay by emitting
// Events — no recorder changes required.
//
// The package is a leaf: it imports only the cycle and page-table value
// types, so every layer (the kernel included) can depend on it without
// import cycles. Events carry plain task ids, not *kernel.Task, for the
// same reason.
package tap

import (
	"vdom/internal/cycles"
	"vdom/internal/pagetable"
)

// Op identifies the operation an Event describes. The set is the union of
// every instrumented surface: the kernel syscall boundary, the scheduler,
// and the public API of each domain backend.
type Op int

// The tapped operations, grouped by emitting layer.
const (
	// OpInvalid is the zero Op; no layer emits it.
	OpInvalid Op = iota

	// Kernel syscall boundary (internal/kernel).
	OpMmap
	OpMunmap
	OpMprotect
	// OpAccess is one completed memory access, fault handling included.
	OpAccess
	// OpDispatch is a scheduler burst prologue (pending-interrupt drain
	// plus context switch) with its total cost.
	OpDispatch

	// VDom core API (internal/core).
	OpVdomAlloc
	OpVdomFree
	OpVdomMprotect
	OpVdrAlloc
	OpVdrFree
	OpVdrRead
	OpVdrWrite
	OpNewVDS

	// libmpk baseline API (internal/libmpk).
	OpPkeyAlloc
	OpPkeyFree
	OpPkeyMprotect
	OpPkeySet

	// EPK baseline (internal/epk).
	OpEpkSwitch

	// DPTI baseline API (internal/dpti).
	OpDptiAlloc
	OpDptiFree
	OpDptiProtect
	OpDptiEnter
	OpDptiExit
)

// Event describes one completed operation of an instrumented layer. Only
// the fields meaningful for the Op are set; the rest stay zero.
type Event struct {
	// Op is the operation.
	Op Op
	// TID is the calling task id (0 for nil-task direct-mode calls and
	// task-less operations such as pkey_alloc).
	TID int
	// Addr and Len are the operation's address range. OpVdrAlloc reuses
	// Len for the requested nas count, mirroring the trace encoding.
	Addr pagetable.VAddr
	Len  uint64
	// Dom is the domain / vkey / EPK domain / DPTI domain involved.
	Dom uint64
	// Perm is the raw permission argument (core.VPerm or hw.Perm).
	Perm uint8
	// Write marks a write access or writable mapping.
	Write bool
	// Freq marks a frequently-accessed vdom allocation hint.
	Freq bool
	// Cost is the cycles the operation returned.
	Cost cycles.Cost
	// Err is the operation's error, nil on success.
	Err error
}

// Tap observes completed operations for trace recording; calls arrive in
// execution order. The simulation is cooperatively scheduled, so tap
// invocations are strictly sequential and implementations need no
// locking.
type Tap func(Event)
