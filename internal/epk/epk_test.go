package epk

import "testing"

func TestVMFuncCyclesFitsPaperPoints(t *testing.T) {
	// The paper reports ≈350 cycles with 32 domains (2–3 EPTs) and
	// ≈830 with 64–70 domains (5 EPTs).
	if got := VMFuncCycles(2); got < 315 || got > 385 {
		t.Errorf("VMFuncCycles(2) = %d, want ≈350", got)
	}
	if got := VMFuncCycles(5); got < 750 || got > 915 {
		t.Errorf("VMFuncCycles(5) = %d, want ≈830", got)
	}
	// Never below a bare VMFUNC.
	if got := VMFuncCycles(0); got < vmfuncMin {
		t.Errorf("VMFuncCycles(0) = %d < %d", got, vmfuncMin)
	}
}

func TestEPTCount(t *testing.T) {
	cases := []struct{ domains, epts int }{
		{1, 1}, {15, 1}, {16, 2}, {30, 2}, {31, 3}, {64, 5}, {70, 5},
	}
	for _, c := range cases {
		if got := New(c.domains, DefaultVMTax()).NumEPTs(); got != c.epts {
			t.Errorf("New(%d).NumEPTs = %d, want %d", c.domains, got, c.epts)
		}
	}
}

func TestSwitchWithinGroupUsesMPK(t *testing.T) {
	s := New(64, DefaultVMTax())
	// First touch loads the group.
	s.Switch(1, 0)
	c := s.Switch(1, 5) // same group (0..14)
	if c != MPKSwitchCycles {
		t.Errorf("in-group switch = %d, want %d", c, MPKSwitchCycles)
	}
	if s.Stats.VMFuncSwitches != 1 {
		t.Errorf("VMFuncSwitches = %d after first load, want 1", s.Stats.VMFuncSwitches)
	}
}

func TestSwitchAcrossGroupsUsesVMFUNC(t *testing.T) {
	s := New(64, DefaultVMTax())
	s.Switch(1, 0)
	c := s.Switch(1, 20) // group 1
	if c != VMFuncCycles(s.NumEPTs()) {
		t.Errorf("cross-group switch = %d, want %d", c, VMFuncCycles(s.NumEPTs()))
	}
	if s.Stats.VMFuncSwitches != 2 {
		t.Errorf("VMFuncSwitches = %d, want 2", s.Stats.VMFuncSwitches)
	}
}

func TestSingleEPTNeverVMFuncs(t *testing.T) {
	s := New(15, DefaultVMTax())
	for d := 0; d < 15; d++ {
		if c := s.Switch(1, d); c != MPKSwitchCycles {
			t.Fatalf("switch to %d = %d cycles with one EPT", d, c)
		}
	}
	if s.Stats.VMFuncSwitches != 0 {
		t.Errorf("VMFuncSwitches = %d with one EPT", s.Stats.VMFuncSwitches)
	}
}

func TestPerThreadGroups(t *testing.T) {
	s := New(64, DefaultVMTax())
	s.Switch(1, 0)
	s.Switch(2, 20)
	// Thread 1 stays in group 0; thread 2's group change must not
	// affect it.
	if c := s.Switch(1, 3); c != MPKSwitchCycles {
		t.Errorf("thread 1 in-group switch = %d after thread 2 moved", c)
	}
}

func TestSequentialPatternMatchesTable4(t *testing.T) {
	// Table 4 EPK seq: 64 domains ≈162 cycles average; 16 domains ≈111.
	for _, tc := range []struct {
		domains int
		want    float64
	}{
		{16, 111},
		{64, 162},
	} {
		s := New(tc.domains, DefaultVMTax())
		var total uint64
		const rounds = 100
		for r := 0; r < rounds; r++ {
			for d := 0; d < tc.domains; d++ {
				total += uint64(s.Switch(1, d))
			}
		}
		avg := float64(total) / float64(rounds*tc.domains)
		if avg < tc.want*0.8 || avg > tc.want*1.2 {
			t.Errorf("%d domains: avg seq switch = %.0f, want ≈%.0f", tc.domains, avg, tc.want)
		}
	}
}

func TestVMTaxSplit(t *testing.T) {
	tax := DefaultVMTax()
	pure := tax.Apply(10000, 0)
	if pure < 10100 || pure > 10400 {
		t.Errorf("pure-user tax = %d, want ≈2%%", pure)
	}
	kern := tax.Apply(0, 10000)
	if kern < 12500 || kern > 13500 {
		t.Errorf("kernel tax = %d, want ≈30%%", kern)
	}
}
