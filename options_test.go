package vdom_test

import (
	"errors"
	"testing"

	"vdom"
)

func TestConfigValidate(t *testing.T) {
	valid := []vdom.Config{
		{},
		{Arch: vdom.ARM, Cores: 64},
		{Arch: vdom.Power, TLBEntries: 8},
	}
	for _, cfg := range valid {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	invalid := []vdom.Config{
		{Cores: -1},
		{Cores: 65},
		{TLBEntries: -5},
		{Arch: vdom.Arch(99)},
		{Arch: vdom.Arch(-1)},
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
}

func TestNewSystemPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSystem(Cores: -3) did not panic")
		}
	}()
	vdom.NewSystem(vdom.Config{Cores: -3})
}

func TestNewSystemWith(t *testing.T) {
	sys, err := vdom.NewSystemWith(
		vdom.WithArch(vdom.ARM),
		vdom.WithCores(6),
		vdom.WithTLBEntries(128),
		vdom.WithNoASID(),
		vdom.WithSetAssociativeTLB(),
		vdom.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cores() != 6 {
		t.Errorf("Cores = %d, want 6", sys.Cores())
	}
	if sys.Metrics() == nil {
		t.Error("WithMetrics did not enable the registry")
	}

	if sys, err := vdom.NewSystemWith(); err != nil || sys.Cores() != 4 {
		t.Errorf("no-option system = %v cores, err %v; want default 4", sys.Cores(), err)
	}

	if _, err := vdom.NewSystemWith(vdom.WithCores(65)); err == nil {
		t.Error("WithCores(65) accepted; CPU bitmap supports 64")
	}
}

func TestNewSystemWithChaos(t *testing.T) {
	sys, err := vdom.NewSystemWith(vdom.WithChaos(vdom.ChaosConfig{Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Injector() == nil {
		t.Error("WithChaos did not attach the injector")
	}
}

func TestNewThreadOn(t *testing.T) {
	sys := vdom.NewSystem(vdom.Config{Cores: 2})
	p := sys.NewProcess(vdom.DefaultPolicy())

	if _, err := p.NewThreadOn(1); err != nil {
		t.Errorf("NewThreadOn(1) on a 2-core system: %v", err)
	}
	for _, core := range []int{-1, 2, 100} {
		_, err := p.NewThreadOn(core)
		var cre *vdom.CoreRangeError
		if !errors.As(err, &cre) {
			t.Errorf("NewThreadOn(%d) = %v, want *CoreRangeError", core, err)
			continue
		}
		if cre.Core != core || cre.Cores != 2 {
			t.Errorf("CoreRangeError = %+v, want {Core: %d, Cores: 2}", cre, core)
		}
	}
}

func TestNewThreadPanicsOutOfRange(t *testing.T) {
	sys := vdom.NewSystem(vdom.Config{Cores: 2})
	p := sys.NewProcess(vdom.DefaultPolicy())
	defer func() {
		if recover() == nil {
			t.Error("NewThread(9) did not panic")
		}
	}()
	p.NewThread(9)
}
