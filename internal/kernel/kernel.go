// Package kernel implements the simulated operating system layer: tasks
// (threads), processes, ASID management, context switches, the page-fault
// dispatch path, and a syscall surface with the filter hooks that memory
// domain sandboxes rely on.
//
// The kernel comes in two flavours, selected by Config.VDomEnabled:
// "vanilla" (baseline Linux 5.17 analog) and "VDom-modified", whose context
// switch carries the extra metadata maintenance the paper measures in §7.5.
package kernel

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/metrics"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
	"vdom/internal/tlb"
)

// ErrSigsegv reports a fatal memory access violation delivered to the
// faulting task.
var ErrSigsegv = errors.New("kernel: SIGSEGV")

// Config describes a kernel to boot.
type Config struct {
	// Machine is the hardware to run on.
	Machine *hw.Machine
	// VDomEnabled builds the kernel with the VDom patches (HAS_VDOM).
	// It slightly slows context switches (§7.5) and enables VDS-aware
	// fault dispatch.
	VDomEnabled bool
}

// Chaos lets a fault-injection layer (internal/chaos) perturb kernel-level
// resource management and observe the recovery paths. All hooks are
// consulted only when a hook is attached, keeping the fault paths
// zero-cost when chaos is off.
type Chaos interface {
	// InjectASIDExhaustion reports whether the next ASID allocation
	// should behave as if the generation's ASID space were exhausted,
	// forcing an early rollover.
	InjectASIDExhaustion() bool
	// NoteASIDRollover records a completed generation rollover.
	NoteASIDRollover(gen uint64)
	// NoteSpuriousFaultRepaired records that the kernel detected a domain
	// fault that disagreed with the live PTE and permission register, and
	// repaired it by flushing the stale translation.
	NoteSpuriousFaultRepaired(core int)
}

// The kernel's syscall boundary, access path, and scheduler emit
// tap.Event values (OpMmap/OpMunmap/OpMprotect, OpAccess, OpDispatch)
// through one attached tap.Tap. Like Chaos, the tap is consulted only
// when attached, so the hot paths pay one nil check when recording is
// off. Taps fire after the operation completes, in execution order — the
// simulation is cooperatively scheduled, so tap invocations are strictly
// sequential.

// ASIDLister is implemented by fault handlers (the VDom core) that maintain
// additional address spaces under their own ASIDs; kernel revocation paths
// (munmap, frame reclaim) include these ASIDs in their shootdowns so no
// stale translation survives in a currently-dormant address space.
type ASIDLister interface {
	LiveASIDs() []tlb.ASID
}

// maxASIDDefault is the architectural ASID space (16-bit PCID/ASID); the
// zero ASID is reserved.
const maxASIDDefault = tlb.ASID(0xFFFF)

// Kernel is the simulated OS instance.
type Kernel struct {
	machine *hw.Machine
	params  *cycles.Params
	vdom    bool
	chaos   Chaos
	opTap   tap.Tap
	metrics *metrics.Registry

	nextASID  tlb.ASID
	maxASID   tlb.ASID
	asidGen   uint64
	rollovers uint64
	liveASIDs map[tlb.ASID]bool
	nextPID   int

	// lastTask tracks, per core, which task's state is loaded.
	lastTask []*Task

	// pendingIRQ accumulates, per core, interrupt-servicing cycles
	// (shootdown IPIs) that the next burst scheduled on that core must
	// absorb.
	pendingIRQ []cycles.Cost

	syscallFilters []SyscallFilter
}

// AddPendingInterrupt charges c interrupt-handling cycles to core id; the
// scheduler folds them into the next burst that runs there. Initiators of
// TLB shootdowns use this to model the disruption of remote cores.
func (k *Kernel) AddPendingInterrupt(id int, c cycles.Cost) {
	k.pendingIRQ[id] += c
}

// TakePendingInterrupts drains the interrupt debt of core id.
func (k *Kernel) TakePendingInterrupts(id int) cycles.Cost {
	c := k.pendingIRQ[id]
	k.pendingIRQ[id] = 0
	return c
}

// New boots a kernel on the machine.
func New(cfg Config) *Kernel {
	if cfg.Machine == nil {
		panic("kernel: nil machine")
	}
	return &Kernel{
		machine:    cfg.Machine,
		params:     cfg.Machine.Params(),
		vdom:       cfg.VDomEnabled,
		nextASID:   1,
		maxASID:    maxASIDDefault,
		liveASIDs:  make(map[tlb.ASID]bool),
		lastTask:   make([]*Task, cfg.Machine.NumCores()),
		pendingIRQ: make([]cycles.Cost, cfg.Machine.NumCores()),
	}
}

// SetChaos attaches a fault-injection layer. Pass nil to detach.
func (k *Kernel) SetChaos(c Chaos) { k.chaos = c }

// SetTap attaches a trace recorder to the syscall boundary. Pass nil
// (the default) to detach.
func (k *Kernel) SetTap(t tap.Tap) { k.opTap = t }

// SetMetrics attaches a metrics registry; the kernel then attributes the
// cycles of its dispatch, fault, and syscall paths by (layer, operation).
// Pass nil (the default) to detach; a nil registry costs one branch per
// attribution site.
func (k *Kernel) SetMetrics(r *metrics.Registry) { k.metrics = r }

// Metrics returns the attached registry, or nil.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// EmitMetrics publishes kernel-level counters under the kernel/ prefix
// (see OBSERVABILITY.md for the catalogue).
func (k *Kernel) EmitMetrics(emit func(name string, v uint64)) {
	emit("kernel/asid-rollovers", k.rollovers)
	emit("kernel/asid-generation", k.asidGen)
	emit("kernel/live-asids", uint64(len(k.liveASIDs)))
	emit("kernel/processes", uint64(k.nextPID))
}

// Machine returns the underlying hardware.
func (k *Kernel) Machine() *hw.Machine { return k.machine }

// Params returns the cycle cost table.
func (k *Kernel) Params() *cycles.Params { return k.params }

// VDomEnabled reports whether the kernel carries the VDom patches.
func (k *Kernel) VDomEnabled() bool { return k.vdom }

// AllocASID hands out a fresh address-space identifier, rolling the
// generation over (with a machine-wide TLB flush) when the space is
// exhausted. It panics only if the live set itself fills the entire ASID
// space, which no realistic workload reaches.
func (k *Kernel) AllocASID() tlb.ASID {
	a, ok := k.TryAllocASID()
	if !ok {
		panic(fmt.Sprintf("kernel: all %d ASIDs live", k.maxASID))
	}
	return a
}

// TryAllocASID hands out a fresh address-space identifier. The cursor is
// monotonic within a generation — freed ASIDs are not reused until a
// rollover has flushed every TLB, so a stale entry under a freed ASID can
// never alias a new address space. Exhaustion triggers the rollover
// degradation path (generation bump + machine-wide flush) rather than
// wrapping silently; false is returned only when every ASID is live.
func (k *Kernel) TryAllocASID() (tlb.ASID, bool) {
	if k.chaos != nil && k.chaos.InjectASIDExhaustion() {
		k.rolloverASIDs()
	}
	for rolled := false; ; rolled = true {
		for k.nextASID != 0 && k.nextASID <= k.maxASID {
			a := k.nextASID
			k.nextASID++
			if !k.liveASIDs[a] {
				k.liveASIDs[a] = true
				return a, true
			}
		}
		if rolled {
			return 0, false
		}
		k.rolloverASIDs()
	}
}

// rolloverASIDs starts a new ASID generation: every core's TLB is flushed
// (and charged as pending interrupt work), making translations under any
// retired ASID unreachable before the cursor restarts.
func (k *Kernel) rolloverASIDs() {
	k.asidGen++
	k.rollovers++
	k.nextASID = 1
	for id := 0; id < k.machine.NumCores(); id++ {
		k.machine.Core(id).TLB().FlushAll()
		k.AddPendingInterrupt(id, k.params.TLBFlushLocalAll+k.params.IPI)
	}
	if k.chaos != nil {
		k.chaos.NoteASIDRollover(k.asidGen)
	}
}

// FreeASID retires an ASID. The identifier stays unreusable until the next
// generation rollover flushes the TLBs.
func (k *Kernel) FreeASID(a tlb.ASID) { delete(k.liveASIDs, a) }

// SetASIDLimit shrinks (or restores) the usable ASID space — chiefly for
// exhaustion tests and chaos runs; real hardware fixes it at 16 bits.
func (k *Kernel) SetASIDLimit(max tlb.ASID) {
	if max == 0 {
		panic("kernel: ASID limit must be positive")
	}
	k.maxASID = max
}

// ASIDGeneration returns the current ASID generation (0 until the first
// rollover).
func (k *Kernel) ASIDGeneration() uint64 { return k.asidGen }

// ASIDRollovers returns how many generation rollovers have occurred.
func (k *Kernel) ASIDRollovers() uint64 { return k.rollovers }

// LiveASIDCount returns the number of ASIDs currently handed out.
func (k *Kernel) LiveASIDCount() int { return len(k.liveASIDs) }

// ASIDLive reports whether a is currently handed out. Auditors use it to
// distinguish zombie TLB entries (retired ASID, unreachable until reuse,
// harmless) from live-ASID incoherence.
func (k *Kernel) ASIDLive(a tlb.ASID) bool { return k.liveASIDs[a] }

// FaultHandler lets a subsystem (the VDom core, libmpk) intercept domain
// and PMD-disabled faults before the kernel's default SIGSEGV. Handled
// reports the fault was repaired and the access should retry; Cost is
// charged to the faulting task on top of the trap costs.
type FaultHandler interface {
	HandleDomainFault(t *Task, addr pagetable.VAddr, write bool, kind hw.FaultKind) (cost cycles.Cost, handled bool, err error)
}

// Process is a group of tasks sharing one address space.
type Process struct {
	kernel *Kernel
	pid    int
	as     *mm.AddressSpace
	tasks  []*Task

	// handler receives domain faults (protection-key / domain faults and
	// PMD-disabled faults) for all tasks of the process.
	handler FaultHandler

	// asidScratch backs flushASIDs so the shootdown-heavy sync paths do
	// not allocate per call. Its contents are only valid until the next
	// flushASIDs call.
	asidScratch []tlb.ASID
}

// NewProcess creates a process with an empty address space.
func (k *Kernel) NewProcess() *Process {
	k.nextPID++
	return &Process{
		kernel: k,
		pid:    k.nextPID,
		as:     mm.NewAddressSpace(k.machine),
	}
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// AS returns the process address space.
func (p *Process) AS() *mm.AddressSpace { return p.as }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kernel }

// SetFaultHandler installs the process's domain-fault handler.
func (p *Process) SetFaultHandler(h FaultHandler) { p.handler = h }

// Tasks returns the live tasks of the process.
func (p *Process) Tasks() []*Task { return p.tasks }

// Task is one schedulable thread (task_struct analog). VDom extends it
// with a pointer to the VDS the thread runs in and its VDR; those live in
// the core package and hook in through Table/ASID/perm state here.
type Task struct {
	proc *Process
	tid  int
	core int // assigned core id

	// table and asid are the address space the task runs in: the
	// process shadow table by default, or a VDS table under VDom.
	table *pagetable.Table
	asid  tlb.ASID

	// baseASID is the ASID allocated at task creation for the shadow
	// table; restored when the task leaves VDom mode so the shadow table
	// never shares an ASID with a VDS.
	baseASID tlb.ASID

	// savedPerm is the task's domain permission register image, restored
	// on context switch.
	savedPerm uint64

	// vds reports whether table belongs to a VDS (affects context-switch
	// cost on the VDom kernel).
	vds bool

	// Counter attributes this task's cycles.
	Counter *cycles.Counter
}

// NewTask creates a task pinned to the given core, running on the process
// shadow page table.
func (p *Process) NewTask(core int) *Task {
	if core < 0 || core >= p.kernel.machine.NumCores() {
		panic(fmt.Sprintf("kernel: bad core %d", core))
	}
	asid := p.kernel.AllocASID()
	t := &Task{
		proc:     p,
		tid:      len(p.tasks) + 1,
		core:     core,
		table:    p.as.Shadow(),
		asid:     asid,
		baseASID: asid,
		// Like Linux's init_pkru, threads start with access to the
		// default domain only.
		savedPerm: hw.DenyAll(),
		Counter:   cycles.NewCounter(),
	}
	p.tasks = append(p.tasks, t)
	return t
}

// TID returns the task id (unique within the process).
func (t *Task) TID() int { return t.tid }

// Process returns the owning process.
func (t *Task) Process() *Process { return t.proc }

// CoreID returns the core the task is pinned to.
func (t *Task) CoreID() int { return t.core }

// Core returns the hardware core the task is pinned to.
func (t *Task) Core() *hw.Core { return t.proc.kernel.machine.Core(t.core) }

// ASID returns the task's current address-space identifier.
func (t *Task) ASID() tlb.ASID { return t.asid }

// BaseASID returns the ASID allocated for the task's shadow-table address
// space at creation time.
func (t *Task) BaseASID() tlb.ASID { return t.baseASID }

// Table returns the page table the task currently runs on.
func (t *Task) Table() *pagetable.Table { return t.table }

// SetAddressSpace points the task at a (table, asid) pair — the VDom core
// calls this on VDS switches and migrations. isVDS marks the table as a
// VDS for context-switch accounting.
func (t *Task) SetAddressSpace(table *pagetable.Table, asid tlb.ASID, isVDS bool) {
	t.table = table
	t.asid = asid
	t.vds = isVDS
}

// SavedPerm returns the saved permission-register image.
func (t *Task) SavedPerm() uint64 { return t.savedPerm }

// SetSavedPerm updates the saved permission-register image. If the task is
// currently loaded on its core the live register is updated too.
func (t *Task) SetSavedPerm(v uint64) {
	t.savedPerm = v
	k := t.proc.kernel
	if k.lastTask[t.core] == t {
		k.machine.Core(t.core).Perm().SetRaw(v)
	}
}

// SwitchMMCost returns the cost of a context switch to this task's address
// space, reproducing §7.5: the vanilla kernel pays ContextSwitchBase; the
// VDom kernel pays ~6%/7.63% more for non-VDom processes, plus the VDS
// metadata maintenance when the target runs in a VDS.
func (k *Kernel) SwitchMMCost(target *Task) cycles.Cost {
	base := k.params.ContextSwitchBase
	if !k.vdom {
		return base
	}
	// The VDom kernel's switch_mm carries extra branches and
	// per-ASID bookkeeping even for processes not using VDom.
	slowed := base + base*6/100
	if k.params.Arch == cycles.ARM {
		slowed = base + base*763/10000
	}
	if target != nil && target.vds {
		slowed += k.params.VDSMetadataSwitch
	}
	return slowed
}

// Dispatch loads the task's state onto its core if another task (or
// nothing) was running there, returning the context-switch cost (zero when
// the task is already current). The hardware pgd switch preserves the TLB
// under ASIDs.
func (k *Kernel) Dispatch(t *Task) cycles.Cost {
	core := k.machine.Core(t.core)
	var cost cycles.Cost
	if k.lastTask[t.core] != t {
		mmCost := k.SwitchMMCost(t)
		pgd := core.SwitchPgd(t.table, t.asid)
		core.Perm().SetRaw(t.savedPerm)
		k.lastTask[t.core] = t
		k.metrics.Attribute("kernel", "ctx-switch", uint64(mmCost))
		k.metrics.Attribute("hw", "pgd-switch", uint64(pgd))
		cost = mmCost + pgd
	} else if core.Table() != t.table || core.ASID() != t.asid {
		// Same task, new address space (VDS switch already charged by
		// the core layer): just reload the pgd.
		cost = core.SwitchPgd(t.table, t.asid)
		k.metrics.Attribute("hw", "pgd-switch", uint64(cost))
	}
	return cost
}

// CurrentOn returns the task whose state is loaded on core id.
func (k *Kernel) CurrentOn(core int) *Task { return k.lastTask[core] }

// maxFaultRetries bounds fault-repair loops; a well-formed system never
// needs more than a handful (demand-page then domain-map, for instance).
const maxFaultRetries = 8

// Access performs one memory access on behalf of the task, dispatching
// page faults to the memory manager and domain faults to the process's
// fault handler, exactly as the modified page-fault path of §6.2 does. It
// returns the total cycle cost including fault handling, and ErrSigsegv
// (possibly wrapped) for violations.
func (t *Task) Access(addr pagetable.VAddr, write bool) (cycles.Cost, error) {
	cost, err := t.access(addr, write)
	if ot := t.proc.kernel.opTap; ot != nil {
		ot(tap.Event{Op: tap.OpAccess, TID: t.tid, Addr: addr, Write: write, Cost: cost, Err: err})
	}
	return cost, err
}

// access is the untapped body of Access.
func (t *Task) access(addr pagetable.VAddr, write bool) (cycles.Cost, error) {
	k := t.proc.kernel
	// Attribution invariant: every component added to total is charged to
	// exactly one (layer, op) account — Dispatch and the fault handler
	// attribute their own returns, everything else is attributed here — so
	// with a registry attached the returned cost decomposes without
	// residue.
	total := k.Dispatch(t)
	core := k.machine.Core(t.core)
	for try := 0; try < maxFaultRetries; try++ {
		res := core.Access(addr, write)
		total += res.Cost
		k.metrics.Attribute("hw", "access", uint64(res.Cost))
		switch res.Kind {
		case hw.AccessOK:
			return total, nil
		case hw.FaultNotPresent:
			total += k.params.FaultEntry
			k.metrics.Attribute("kernel", "fault", uint64(k.params.FaultEntry))
			fix, err := t.proc.as.HandleFault(t.table, addr, write)
			if err != nil {
				return total, fmt.Errorf("%w: %w at %#x", ErrSigsegv, err, uint64(addr))
			}
			total += cycles.Cost(fix.PTEWrites)*k.params.PTEWrite + k.params.FaultExit
			k.metrics.Attribute("pagetable", "pte-write", uint64(cycles.Cost(fix.PTEWrites)*k.params.PTEWrite))
			k.metrics.Attribute("kernel", "fault", uint64(k.params.FaultExit))
		case hw.FaultWriteProtect:
			total += k.params.FaultEntry
			k.metrics.Attribute("kernel", "fault", uint64(k.params.FaultEntry))
			fix, err := t.proc.as.HandleFault(t.table, addr, write)
			if err != nil || fix.PTEWrites == 0 {
				return total, fmt.Errorf("%w: write to read-only page %#x", ErrSigsegv, uint64(addr))
			}
			// The stale translation must leave the TLB before retry.
			core.TLB().FlushPage(t.asid, addr.VPN())
			total += cycles.Cost(fix.PTEWrites)*k.params.PTEWrite +
				k.params.TLBFlushLocalPage + k.params.FaultExit
			k.metrics.Attribute("pagetable", "pte-write", uint64(cycles.Cost(fix.PTEWrites)*k.params.PTEWrite))
			k.metrics.Attribute("tlb", "flush", uint64(k.params.TLBFlushLocalPage))
			k.metrics.Attribute("kernel", "fault", uint64(k.params.FaultExit))
		case hw.FaultDomainPerm, hw.FaultPMDDisabled:
			total += k.params.FaultEntry
			k.metrics.Attribute("kernel", "fault", uint64(k.params.FaultEntry))
			if t.proc.handler == nil {
				if c, ok := t.repairSpuriousFault(core, addr, write, res.Kind); ok {
					total += c + k.params.FaultExit
					k.metrics.Attribute("kernel", "fault", uint64(c+k.params.FaultExit))
					continue
				}
				return total, fmt.Errorf("%w: domain fault at %#x", ErrSigsegv, uint64(addr))
			}
			// The handler attributes its own cost (the VDom core charges
			// its activation machinery per layer), so c is not
			// re-attributed here.
			c, handled, err := t.proc.handler.HandleDomainFault(t, addr, write, res.Kind)
			total += c
			if err != nil {
				return total, err
			}
			if !handled {
				if c, ok := t.repairSpuriousFault(core, addr, write, res.Kind); ok {
					total += c + k.params.FaultExit
					k.metrics.Attribute("kernel", "fault", uint64(c+k.params.FaultExit))
					continue
				}
				return total, fmt.Errorf("%w: domain fault at %#x", ErrSigsegv, uint64(addr))
			}
			total += k.params.FaultExit
			k.metrics.Attribute("kernel", "fault", uint64(k.params.FaultExit))
			// The handler may have switched the task's address space;
			// reload core state before retrying.
			total += k.Dispatch(t)
		default:
			return total, fmt.Errorf("kernel: unexpected fault kind %v", res.Kind)
		}
	}
	return total, fmt.Errorf("%w: fault loop at %#x", ErrSigsegv, uint64(addr))
}

// repairSpuriousFault is the last resort of the domain-fault path: before
// delivering SIGSEGV for a fault nobody claimed, the kernel re-walks the
// live PTE and compares it with the live permission register. If both
// agree the access is legal, the fault was spurious — stale TLB
// micro-state, exactly what the chaos layer injects — and flushing the
// translation and retrying recovers it. Genuine violations (or any
// disagreement) return false so the SIGSEGV stands.
func (t *Task) repairSpuriousFault(core *hw.Core, addr pagetable.VAddr, write bool, kind hw.FaultKind) (cycles.Cost, bool) {
	if kind != hw.FaultDomainPerm {
		return 0, false
	}
	k := t.proc.kernel
	cost := k.params.PageWalk
	wr := t.table.Walk(addr)
	if !wr.Present || wr.PMDDisabled {
		return cost, false
	}
	if write && !wr.PTE.Writable {
		return cost, false
	}
	if !core.Perm().Allows(uint8(wr.PTE.Pdom), write) {
		return cost, false
	}
	core.TLB().FlushPage(t.asid, addr.VPN())
	cost += k.params.TLBFlushLocalPage
	if k.chaos != nil {
		k.chaos.NoteSpuriousFaultRepaired(t.core)
	}
	return cost, true
}
