// Package chaos is the deterministic fault-injection and consistency-audit
// layer for the simulated machine. One seeded Injector implements the
// chaos hooks of every layer — hw.Injector (IPI loss/delay, spurious
// domain faults), kernel.Chaos (ASID-generation exhaustion), core.Chaos
// (transient VDS-allocation failure, pdom exhaustion) — plus a TLB
// interposer that models stale-entry retention after targeted
// invalidation. All randomness comes from the sim package's xoshiro256**
// generator, so every run is replayable from its seed: the same seed
// reproduces the identical fault/recovery event sequence.
//
// The cross-layer auditor (Audit) walks every core's TLB against the live
// page tables and every manager's private metadata, reporting any
// incoherence the degradation paths failed to contain.
package chaos

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/sim"
	"vdom/internal/tlb"
)

// Config enables individual fault classes with per-fault probabilities in
// [0, 1]. The zero value injects nothing (but still exercises the hook
// plumbing).
type Config struct {
	// Seed drives the PRNG; the same seed replays the same faults.
	Seed uint64

	// DropIPI is the probability that a shootdown IPI is lost.
	DropIPI float64
	// DelayIPI is the probability that a shootdown IPI is serviced late,
	// stalling the initiator for extra cycles.
	DelayIPI float64
	// StaleTLB is the probability that a targeted invalidation (page,
	// range or ASID flush) leaves its entries behind; the machine detects
	// the retention and repairs it with a full flush of that TLB.
	StaleTLB float64
	// ASIDExhaustion is the probability that an ASID allocation behaves
	// as if the generation were exhausted, forcing an early rollover.
	ASIDExhaustion float64
	// ASIDLimit, when non-zero, shrinks the usable ASID space so organic
	// exhaustion (and rollover) happens quickly.
	ASIDLimit tlb.ASID
	// VDSAllocFail is the probability that a VDS allocation fails
	// transiently.
	VDSAllocFail float64
	// PdomExhaustion is the probability that a vdom activation pretends
	// its VDS has no free pdom, forcing the slow paths.
	PdomExhaustion float64
	// SpuriousFault is the probability that a successful memory access
	// raises a spurious domain fault instead.
	SpuriousFault float64
}

// Event is one entry of the deterministic fault/recovery log.
type Event struct {
	// Seq is the global sequence number (from 1).
	Seq uint64
	// Kind is "inject:<fault>" or "recover:<path>".
	Kind string
	// Detail carries the site-specific context (core ids, attempt counts).
	Detail string
}

// maxEvents bounds the in-memory event log; counters keep exact totals
// beyond it.
const maxEvents = 16384

// Injector is the seeded fault source. It implements hw.Injector,
// kernel.Chaos and core.Chaos; InterposeTLBs adds the stale-TLB model.
// Injector is not safe for concurrent use — the simulation is
// single-threaded by design.
type Injector struct {
	cfg Config
	rng *sim.Rand

	seq       uint64
	injected  map[string]uint64
	recovered map[string]uint64
	events    []Event
}

var (
	_ hw.Injector  = (*Injector)(nil)
	_ kernel.Chaos = (*Injector)(nil)
	_ core.Chaos   = (*Injector)(nil)
)

// New builds an injector from the config.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:       cfg,
		rng:       sim.NewRand(cfg.Seed),
		injected:  make(map[string]uint64),
		recovered: make(map[string]uint64),
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// hit draws the PRNG against probability p. A non-positive p never draws,
// keeping disabled faults out of the random stream.
func (in *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

func (in *Injector) log(kind, detail string) {
	in.seq++
	if len(in.events) < maxEvents {
		in.events = append(in.events, Event{Seq: in.seq, Kind: kind, Detail: detail})
	}
}

func (in *Injector) inject(fault, detail string) {
	in.injected["inject:"+fault]++
	in.log("inject:"+fault, detail)
}

func (in *Injector) recover(path, detail string) {
	in.recovered["recover:"+path]++
	in.log("recover:"+path, detail)
}

// Events returns the event log (capped at maxEvents entries).
func (in *Injector) Events() []Event { return in.events }

// Injected returns the per-fault injection counters.
func (in *Injector) Injected() map[string]uint64 { return in.injected }

// Recovered returns the per-path recovery counters.
func (in *Injector) Recovered() map[string]uint64 { return in.recovered }

// TotalInjected sums every injection counter.
func (in *Injector) TotalInjected() uint64 { return sum(in.injected) }

// TotalRecovered sums every recovery counter.
func (in *Injector) TotalRecovered() uint64 { return sum(in.recovered) }

// EmitMetrics publishes the injector's counters under the chaos/ prefix:
// totals plus one counter per fault kind and recovery path (see
// OBSERVABILITY.md for the catalogue).
func (in *Injector) EmitMetrics(emit func(name string, v uint64)) {
	emit("chaos/injected", in.TotalInjected())
	emit("chaos/recovered", in.TotalRecovered())
	emit("chaos/events", uint64(len(in.events)))
	for kind, n := range in.injected {
		emit("chaos/"+kind, n)
	}
	for path, n := range in.recovered {
		emit("chaos/"+path, n)
	}
}

func sum(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

// --- hw.Injector ---

// IPIFate decides whether the IPI from initiator to target is delivered,
// dropped, or delayed.
func (in *Injector) IPIFate(initiator, target int) (hw.IPIFate, cycles.Cost) {
	if in.hit(in.cfg.DropIPI) {
		in.inject("ipi-drop", fmt.Sprintf("core %d -> core %d", initiator, target))
		return hw.IPIDropped, 0
	}
	if in.hit(in.cfg.DelayIPI) {
		delay := cycles.Cost(50 + in.rng.Intn(451))
		in.inject("ipi-delay", fmt.Sprintf("core %d -> core %d (+%d cycles)", initiator, target, delay))
		return hw.IPIDelayed, delay
	}
	return hw.IPIDelivered, 0
}

// SpuriousDomainFault decides whether a successful access on core faults
// spuriously.
func (in *Injector) SpuriousDomainFault(coreID int) bool {
	if in.hit(in.cfg.SpuriousFault) {
		in.inject("spurious-fault", fmt.Sprintf("core %d", coreID))
		return true
	}
	return false
}

// NoteIPIRetry records an IPI retransmission.
func (in *Injector) NoteIPIRetry(target, attempt int) {
	in.recover("ipi-retry", fmt.Sprintf("core %d attempt %d", target, attempt))
}

// NoteIPIFallback records a full-flush recovery of an unresponsive target.
func (in *Injector) NoteIPIFallback(target int) {
	in.recover("ipi-full-flush", fmt.Sprintf("core %d", target))
}

// --- kernel.Chaos ---

// InjectASIDExhaustion decides whether the next ASID allocation rolls the
// generation over early.
func (in *Injector) InjectASIDExhaustion() bool {
	if in.hit(in.cfg.ASIDExhaustion) {
		in.inject("asid-exhaustion", "forced generation rollover")
		return true
	}
	return false
}

// NoteASIDRollover records a completed generation rollover.
func (in *Injector) NoteASIDRollover(gen uint64) {
	in.recover("asid-rollover", fmt.Sprintf("generation %d", gen))
}

// NoteSpuriousFaultRepaired records a kernel-side spurious-fault repair.
func (in *Injector) NoteSpuriousFaultRepaired(coreID int) {
	in.recover("spurious-repair", fmt.Sprintf("core %d", coreID))
}

// --- core.Chaos ---

// InjectVDSAllocFailure decides whether the next VDS allocation fails.
func (in *Injector) InjectVDSAllocFailure() bool {
	if in.hit(in.cfg.VDSAllocFail) {
		in.inject("vds-alloc-fail", "transient allocation failure")
		return true
	}
	return false
}

// InjectPdomExhaustion decides whether the next activation pretends its
// VDS is out of pdoms.
func (in *Injector) InjectPdomExhaustion() bool {
	if in.hit(in.cfg.PdomExhaustion) {
		in.inject("pdom-exhaustion", "activation forced onto slow path")
		return true
	}
	return false
}

// NoteDegradedFallback records a core-layer degradation path running.
func (in *Injector) NoteDegradedFallback(what string) {
	in.recover("degraded", what)
}

// --- stale-TLB interposer ---

// staleCache wraps a core's TLB: with probability StaleTLB a targeted
// invalidation (page, range or ASID) "loses" its precise flush — modelling
// stale-entry retention — and the machine immediately detects and repairs
// it with a full flush of that TLB, the guaranteed fallback. Coherence is
// therefore preserved while the expensive recovery path is exercised.
type staleCache struct {
	tlb.Cache
	in     *Injector
	coreID int
}

func (s *staleCache) retained(op string) bool {
	if s.in.hit(s.in.cfg.StaleTLB) {
		s.in.inject("stale-tlb", fmt.Sprintf("core %d %s flush lost", s.coreID, op))
		s.in.recover("stale-full-flush", fmt.Sprintf("core %d", s.coreID))
		s.Cache.FlushAll()
		return true
	}
	return false
}

// FlushPage drops the precise flush (repairing with a full flush) when the
// stale-TLB fault fires.
func (s *staleCache) FlushPage(asid tlb.ASID, vpn uint64) {
	if s.retained("page") {
		return
	}
	s.Cache.FlushPage(asid, vpn)
}

// FlushRange drops the precise flush when the stale-TLB fault fires.
func (s *staleCache) FlushRange(asid tlb.ASID, startVPN, pages uint64) {
	if s.retained("range") {
		return
	}
	s.Cache.FlushRange(asid, startVPN, pages)
}

// FlushASID drops the precise flush when the stale-TLB fault fires.
func (s *staleCache) FlushASID(asid tlb.ASID) {
	if s.retained("asid") {
		return
	}
	s.Cache.FlushASID(asid)
}

// --- wiring ---

// AttachMachine wires the injector into the hardware: the IPI/spurious
// hooks and, when StaleTLB is enabled, the per-core TLB interposer.
func (in *Injector) AttachMachine(m *hw.Machine) {
	m.SetInjector(in)
	if in.cfg.StaleTLB > 0 {
		for i := 0; i < m.NumCores(); i++ {
			id := i
			m.Core(i).InterposeTLB(func(c tlb.Cache) tlb.Cache {
				return &staleCache{Cache: c, in: in, coreID: id}
			})
		}
	}
}

// AttachKernel wires the injector into the kernel (ASID exhaustion and the
// optional shrunken ASID space).
func (in *Injector) AttachKernel(k *kernel.Kernel) {
	k.SetChaos(in)
	if in.cfg.ASIDLimit > 0 {
		k.SetASIDLimit(in.cfg.ASIDLimit)
	}
}

// AttachManager wires the injector into one process's VDom manager.
func (in *Injector) AttachManager(m *core.Manager) {
	m.SetChaos(in)
}
