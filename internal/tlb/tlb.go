// Package tlb models a per-core, ASID-tagged translation lookaside buffer.
//
// ASID tagging is what lets VDom switch page global directories without
// flushing: entries of the previous address space stay resident under their
// own tag and become live again when the core switches back. The model is a
// capacity-bounded cache with clock (second-chance) replacement — enough to
// reproduce the miss behaviour that separates VDom from VM-based and
// shootdown-based approaches, while staying deterministic.
package tlb

import "vdom/internal/pagetable"

// ASID is an address-space identifier (PCID on x86).
type ASID uint16

// Entry is one cached translation.
type Entry struct {
	ASID  ASID
	VPN   uint64
	Frame pagetable.Frame
	// Pdom is the memory-domain tag cached with the translation; the
	// permission-register check happens on every access, even on hits.
	Pdom     pagetable.Pdom
	Writable bool
}

type slot struct {
	entry      Entry
	valid      bool
	referenced bool
}

type key struct {
	asid ASID
	vpn  uint64
}

// Stats counts TLB events since the last ResetStats.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Inserts      uint64
	PageFlushes  uint64
	ASIDFlushes  uint64
	FullFlushes  uint64
	RangeFlushes uint64
	Invalidated  uint64 // entries removed by any flush
}

// Add accumulates another core's stats into s, for machine-wide totals.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.PageFlushes += o.PageFlushes
	s.ASIDFlushes += o.ASIDFlushes
	s.FullFlushes += o.FullFlushes
	s.RangeFlushes += o.RangeFlushes
	s.Invalidated += o.Invalidated
}

// Emit publishes the stats as named metrics counters under the tlb/
// prefix (see OBSERVABILITY.md for the catalogue).
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("tlb/hits", s.Hits)
	emit("tlb/misses", s.Misses)
	emit("tlb/inserts", s.Inserts)
	emit("tlb/flush-page", s.PageFlushes)
	emit("tlb/flush-asid", s.ASIDFlushes)
	emit("tlb/flush-full", s.FullFlushes)
	emit("tlb/flush-range", s.RangeFlushes)
	emit("tlb/invalidated", s.Invalidated)
}

// TLB is one core's translation cache.
type TLB struct {
	// slots and index materialize lazily: the index map on the first
	// insert, and the slot array only as far as the clock hand has
	// reached (see victim). A machine's worth of cold TLBs then costs
	// nothing to construct, and a lightly used one stays small — which
	// the short-lived systems replay and the perf harness build in bulk
	// rely on. Lookups and flushes on the nil index behave as on an
	// empty one.
	slots    []slot
	capacity int
	index    map[key]int
	hand     int
	stats    Stats

	// lastIdx memoizes the slot of the most recent hit (-1 when unset), a
	// host-side fast path that skips the map hash when the same page is hit
	// repeatedly. The memo self-validates against the slot's live content —
	// flushes invalidate the slot and evictions overwrite it, so a stale
	// memo simply fails the content check — and its hit path performs the
	// exact side effects of an indexed hit (reference bit, Hits counter),
	// keeping clock replacement and stats bit-identical.
	lastIdx int

	// counts tracks resident entries per ASID (dense, grown on demand).
	// It lets FlushASID return immediately for the common dormant-ASID
	// case instead of scanning; it changes no observable behavior.
	counts []uint32
}

// DefaultCapacity approximates a unified second-level TLB.
const DefaultCapacity = 1536

// New returns a TLB with the given entry capacity.
func New(capacity int) *TLB {
	if capacity <= 0 {
		panic("tlb: capacity must be positive")
	}
	return &TLB{
		capacity: capacity,
		lastIdx:  -1,
	}
}

// Capacity returns the number of entry slots.
func (t *TLB) Capacity() int { return t.capacity }

// Len returns the number of valid entries.
func (t *TLB) Len() int { return len(t.index) }

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the event counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Lookup searches for (asid, vpn). A hit refreshes the entry's reference
// bit.
func (t *TLB) Lookup(asid ASID, vpn uint64) (Entry, bool) {
	if i := t.lastIdx; i >= 0 {
		if s := &t.slots[i]; s.valid && s.entry.ASID == asid && s.entry.VPN == vpn {
			s.referenced = true
			t.stats.Hits++
			return s.entry, true
		}
	}
	if i, ok := t.index[key{asid, vpn}]; ok {
		t.slots[i].referenced = true
		t.stats.Hits++
		t.lastIdx = i
		return t.slots[i].entry, true
	}
	t.stats.Misses++
	return Entry{}, false
}

// Insert caches a translation, evicting by clock replacement if full. An
// existing entry for the same (asid, vpn) is overwritten in place.
func (t *TLB) Insert(e Entry) {
	t.stats.Inserts++
	if t.index == nil {
		// A modest initial size: most short-lived systems (replay, the
		// perf harness) touch a few dozen pages per TLB, and a map
		// pre-sized for full capacity would dominate their boot cost.
		// TLBs that do fill pay a handful of amortized rehashes.
		t.index = make(map[key]int, 64)
	}
	k := key{e.ASID, e.VPN}
	if i, ok := t.index[k]; ok {
		t.slots[i].entry = e
		t.slots[i].referenced = true
		return
	}
	i := t.victim()
	if t.slots[i].valid {
		delete(t.index, key{t.slots[i].entry.ASID, t.slots[i].entry.VPN})
		t.bump(t.slots[i].entry.ASID, -1)
	}
	t.slots[i] = slot{entry: e, valid: true, referenced: true}
	t.index[k] = i
	t.bump(e.ASID, 1)
}

// bump adjusts the resident-entry count of an ASID by ±1.
func (t *TLB) bump(a ASID, d int) {
	for int(a) >= len(t.counts) {
		t.counts = append(t.counts, 0)
	}
	t.counts[a] = uint32(int(t.counts[a]) + d)
}

// victim finds a free slot or evicts via the clock algorithm. The hand
// walks the full configured capacity; a position beyond the materialized
// slot array is by definition an invalid (never-used) slot, so the array
// grows only as far as the clock has actually reached — bit-identical to
// walking a fully allocated array of zero slots, at a fraction of the
// boot cost for the mostly-empty TLBs replay and the perf harness build
// in bulk.
func (t *TLB) victim() int {
	for {
		i := t.hand
		t.hand++
		if t.hand == t.capacity {
			t.hand = 0
		}
		if i >= len(t.slots) {
			for len(t.slots) <= i {
				t.slots = append(t.slots, slot{})
			}
			return i
		}
		s := &t.slots[i]
		if !s.valid {
			return i
		}
		if !s.referenced {
			return i
		}
		s.referenced = false
	}
}

// FlushPage invalidates one page of one address space (invlpg/TLBIMVA).
func (t *TLB) FlushPage(asid ASID, vpn uint64) {
	t.stats.PageFlushes++
	if i, ok := t.index[key{asid, vpn}]; ok {
		t.slots[i] = slot{}
		delete(t.index, key{asid, vpn})
		t.bump(asid, -1)
		t.stats.Invalidated++
	}
}

// FlushRange invalidates [startVPN, startVPN+pages) of one address space,
// modelling the range-flush instructions §5.5 leans on.
func (t *TLB) FlushRange(asid ASID, startVPN, pages uint64) {
	t.stats.RangeFlushes++
	if int(asid) >= len(t.counts) || t.counts[asid] == 0 {
		return
	}
	for vpn := startVPN; vpn < startVPN+pages; vpn++ {
		if i, ok := t.index[key{asid, vpn}]; ok {
			t.slots[i] = slot{}
			delete(t.index, key{asid, vpn})
			t.bump(asid, -1)
			t.stats.Invalidated++
		}
	}
}

// FlushASID invalidates every entry of one address space. It scans the
// slot array rather than the index map: the set of entries removed (and
// so every counter) is identical, and a linear pass over the
// pointer-free slots is far cheaper than a map iteration.
func (t *TLB) FlushASID(asid ASID) {
	t.stats.ASIDFlushes++
	if int(asid) >= len(t.counts) || t.counts[asid] == 0 {
		return // nothing resident under this ASID
	}
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.entry.ASID == asid {
			delete(t.index, key{asid, s.entry.VPN})
			t.slots[i] = slot{}
			t.stats.Invalidated++
		}
	}
	t.counts[asid] = 0
}

// FlushAll invalidates the whole TLB.
func (t *TLB) FlushAll() {
	t.stats.FullFlushes++
	t.stats.Invalidated += uint64(len(t.index))
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	t.index = nil // rebuilt by the next Insert
	t.hand = 0
	clear(t.counts)
}

// Each calls fn for every valid entry, in slot order. It is an
// introspection helper for consistency auditors and tests, not a hardware
// operation.
func (t *TLB) Each(fn func(Entry)) {
	for i := range t.slots {
		if t.slots[i].valid {
			fn(t.slots[i].entry)
		}
	}
}

// CountASID returns the number of resident entries tagged with asid.
// It is an introspection helper for tests and experiments, not a hardware
// operation.
func (t *TLB) CountASID(asid ASID) int {
	n := 0
	for k := range t.index {
		if k.asid == asid {
			n++
		}
	}
	return n
}

// Cache is the operation set common to the TLB organizations (fully
// associative with global clock, or set-associative). Hardware cores and
// kernel flush paths operate through it.
type Cache interface {
	Lookup(asid ASID, vpn uint64) (Entry, bool)
	Insert(e Entry)
	FlushPage(asid ASID, vpn uint64)
	FlushRange(asid ASID, startVPN, pages uint64)
	FlushASID(asid ASID)
	FlushAll()
	Len() int
	Capacity() int
	Stats() Stats
	ResetStats()
	CountASID(asid ASID) int
	Each(fn func(Entry))
	// State and LoadState capture and restore the cache image for the
	// checkpoint subsystem (see internal/snapshot). Interposers that
	// embed a Cache inherit them, so snapshots see through wrappers to
	// the underlying hardware state.
	State() CacheState
	LoadState(st CacheState)
}

var (
	_ Cache = (*TLB)(nil)
	_ Cache = (*SetAssoc)(nil)
)
