package backend_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"vdom/internal/backend"
	"vdom/internal/chaos"
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/snapshot"
	"vdom/internal/tlb"
)

// The backend-conformance suite: every registered kernel backend, on
// every cost architecture, must survive the full battery — a recorded
// run replays bit-identically, a mid-run snapshot round-trips to the
// same bytes, the cross-layer audit is clean after the drive, and the
// backend's failure sentinels match with errors.Is and carry a typed
// replay fault code. A newly registered backend gets all of this with
// no test changes.

// confArches is the architecture axis: every cost table, including the
// projected POWER and sealable-PKS RISC-V parameters.
var confArches = []cycles.Arch{cycles.X86, cycles.ARM, cycles.Power, cycles.RISCV}

const (
	confDomains     = 4
	confRegionPages = 4
	confRounds      = 3
)

// confRegion is the base address of domain d's private region.
func confRegion(d int) pagetable.VAddr {
	return pagetable.VAddr(0x4000_0000 + uint64(d)*0x10_0000)
}

// confSpec is the boot configuration the suite drives each backend
// with. EPK runs in its standalone cost-model form (Cores 0), the form
// its recorded corpus uses; everything else rides a 2-core substrate.
func confSpec(name string, arch cycles.Arch) backend.Spec {
	spec := backend.Spec{Arch: arch, Cores: 2, FlushThreshold: 64, Nas: 4}
	switch name {
	case "vdom":
		spec.VDomKernel = true
		spec.SecureGate = true
	case "epk":
		spec.Cores = 0
		spec.Domains = 32
	}
	return spec
}

// confHeader forges the trace header describing a confSpec boot, the
// same translation replay.SpecFromHeader inverts.
func confHeader(name string, spec backend.Spec) replay.Header {
	h := replay.Header{
		Version:        replay.FormatVersion,
		Kernel:         name,
		Arch:           replay.ArchName(spec.Arch),
		Cores:          spec.Cores,
		TLBCap:         spec.TLBCap,
		Workload:       "backend-conformance",
		FlushThreshold: spec.FlushThreshold,
		Nas:            spec.Nas,
		Domains:        spec.Domains,
	}
	if spec.VDomKernel {
		h.Flags |= replay.HdrVDomKernel
	}
	if spec.SecureGate {
		h.Flags |= replay.HdrSecureGate
	}
	if spec.NoASID {
		h.Flags |= replay.HdrNoASID
	}
	return h
}

// confBoot boots a backend exactly the way replay would: through the
// registry, from the forged header.
func confBoot(tb testing.TB, name string, spec backend.Spec) *replay.System {
	tb.Helper()
	sys, err := replay.Boot(confHeader(name, spec))
	if err != nil {
		tb.Fatalf("boot %s: %v", name, err)
	}
	return sys
}

// confDrive runs the deterministic conformance workload through the
// backend's DomainOps adapter: per-thread setup, domain allocation,
// region assignment, activate/access/deactivate rounds across two
// threads, and a free/realloc churn step. Standalone backends (no
// process) run the same schedule with nil tasks and no memory traffic.
func confDrive(tb testing.TB, sys *replay.System, b backend.Backend, rec *replay.Recorder) {
	tb.Helper()
	ops := b.Ops(sys)
	fatal := func(step string, err error) {
		if err != nil {
			tb.Fatalf("%s conformance drive: %s: %v", b.Name(), step, err)
		}
	}

	var tasks []*kernel.Task
	if sys.Proc != nil {
		for i := 0; i < 2; i++ {
			tk := sys.Proc.NewTask(i)
			if rec != nil {
				rec.Spawn(tk)
			}
			tasks = append(tasks, tk)
		}
		for d := 0; d < confDomains; d++ {
			_, err := tasks[0].Mmap(confRegion(d), confRegionPages*pagetable.PageSize, true)
			fatal("mmap", err)
		}
		for _, tk := range tasks {
			_, err := ops.PrepareThread(tk, confDomains)
			fatal("prepare-thread", err)
		}
	}
	var task0 *kernel.Task
	if len(tasks) > 0 {
		task0 = tasks[0]
	}

	ids := make([]uint64, confDomains)
	for d := range ids {
		id, _, err := ops.Alloc(task0)
		fatal("alloc", err)
		ids[d] = id
		_, err = ops.Protect(task0, confRegion(d), confRegionPages*pagetable.PageSize, id)
		fatal("protect", err)
	}

	for round := 0; round < confRounds; round++ {
		for d, id := range ids {
			tk := task0
			if len(tasks) > 0 {
				tk = tasks[(round+d)%len(tasks)]
			}
			_, err := ops.Activate(tk, id)
			fatal("activate", err)
			if tk != nil {
				addr := confRegion(d) + pagetable.VAddr(uint64(round%confRegionPages)*pagetable.PageSize)
				_, err := tk.Access(addr, round%2 == 1)
				fatal("access", err)
			}
			_, err = ops.Deactivate(tk, id)
			fatal("deactivate", err)
		}
	}

	// Churn: release a domain and reallocate into the hole.
	_, err := ops.Free(task0, ids[0])
	fatal("free", err)
	id, _, err := ops.Alloc(task0)
	fatal("realloc", err)
	_, err = ops.Protect(task0, confRegion(0), confRegionPages*pagetable.PageSize, id)
	fatal("reprotect", err)
}

// confRecord boots, taps, and drives one backend, returning the sealed
// trace.
func confRecord(tb testing.TB, b backend.Backend, spec backend.Spec) *replay.Trace {
	tb.Helper()
	sys := confBoot(tb, b.Name(), spec)
	rec := replay.NewRecorder(confHeader(b.Name(), spec))
	rec.AttachSystem(sys)
	confDrive(tb, sys, b, rec)
	return rec.Finish()
}

// TestConformanceRecordReplay checks record→replay bit-identity for
// every backend on every arch: the replayed run must reproduce every
// event, cost, and end-state counter, and recording twice must yield
// byte-identical traces.
func TestConformanceRecordReplay(t *testing.T) {
	for _, b := range backend.All() {
		for _, arch := range confArches {
			t.Run(fmt.Sprintf("%s/%s", b.Name(), replay.ArchName(arch)), func(t *testing.T) {
				spec := confSpec(b.Name(), arch)
				tr := confRecord(t, b, spec)
				if len(tr.Events) == 0 {
					t.Fatal("conformance drive recorded no events")
				}
				res, err := replay.Run(tr, replay.Options{})
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if res.Divergence != nil {
					t.Fatalf("replay diverged: %v", res.Divergence)
				}
				again := confRecord(t, b, spec)
				if !bytes.Equal(replay.Encode(tr), replay.Encode(again)) {
					t.Fatal("recording the same drive twice produced different traces")
				}
			})
		}
	}
}

// TestConformanceSnapshotRoundTrip checks the checkpoint surface: after
// the drive, Capture → Encode → Decode → Restore → Capture must
// reproduce the snapshot byte-for-byte through the backend's own
// section codec.
func TestConformanceSnapshotRoundTrip(t *testing.T) {
	for _, b := range backend.All() {
		for _, arch := range confArches {
			t.Run(fmt.Sprintf("%s/%s", b.Name(), replay.ArchName(arch)), func(t *testing.T) {
				spec := confSpec(b.Name(), arch)
				hdr := confHeader(b.Name(), spec)
				sys := confBoot(t, b.Name(), spec)
				confDrive(t, sys, b, nil)

				st, err := snapshot.Capture(sys, hdr, 0, 0)
				if err != nil {
					t.Fatalf("capture: %v", err)
				}
				first := snapshot.Encode(st)
				decoded, err := snapshot.Decode(first)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				restored, _, err := snapshot.Restore(decoded)
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				st2, err := snapshot.Capture(restored, hdr, 0, 0)
				if err != nil {
					t.Fatalf("recapture: %v", err)
				}
				if !bytes.Equal(first, snapshot.Encode(st2)) {
					t.Fatal("snapshot changed across a restore round-trip")
				}
			})
		}
	}
}

// TestConformanceAuditClean checks cross-layer coherence: after the
// drive, every TLB entry under a live ASID must agree with the page
// table that ASID tags, for every backend that boots a machine.
func TestConformanceAuditClean(t *testing.T) {
	for _, b := range backend.All() {
		for _, arch := range confArches {
			t.Run(fmt.Sprintf("%s/%s", b.Name(), replay.ArchName(arch)), func(t *testing.T) {
				spec := confSpec(b.Name(), arch)
				sys := confBoot(t, b.Name(), spec)
				confDrive(t, sys, b, nil)
				if sys.Machine == nil {
					t.Skip("standalone cost model: no machine to audit")
				}

				owners := map[tlb.ASID]*pagetable.Table{}
				shadow := sys.Proc.AS().Shadow()
				for _, tk := range sys.Proc.Tasks() {
					owners[tk.BaseASID()] = shadow
				}
				var mgrs []*core.Manager
				if sys.Manager != nil {
					mgrs = append(mgrs, sys.Manager)
				}
				if sys.DPTI != nil {
					sys.DPTI.OwnedASIDs(func(a tlb.ASID, tbl *pagetable.Table) {
						owners[a] = tbl
					})
				}
				if v := chaos.AuditOwners(sys.Machine, sys.Kernel, owners, mgrs...); len(v) != 0 {
					t.Fatalf("audit found %d violations, first: %v", len(v), v[0])
				}
			})
		}
	}
}

// TestConformanceSentinels checks failure-path conformance: each
// backend's characteristic failure must match its exported sentinel via
// errors.Is and map to a typed, non-OK replay fault code, so replayed
// failure traces stay comparable across kernels.
func TestConformanceSentinels(t *testing.T) {
	for _, b := range backend.All() {
		t.Run(b.Name(), func(t *testing.T) {
			spec := confSpec(b.Name(), cycles.X86)
			sys := confBoot(t, b.Name(), spec)
			ops := b.Ops(sys)
			var task0 *kernel.Task
			if sys.Proc != nil {
				task0 = sys.Proc.NewTask(0)
				if _, err := ops.PrepareThread(task0, confDomains); err != nil {
					t.Fatalf("prepare-thread: %v", err)
				}
			}

			var err error
			var sentinel error
			switch b.Name() {
			case "vdom":
				_, err = ops.Free(task0, 9999)
				sentinel = core.ErrFreedVdom
			case "libmpk":
				_, err = ops.Free(task0, 9999)
				sentinel = libmpk.ErrUnknownKey
			case "dpti":
				_, err = ops.Activate(task0, 9999)
				sentinel = dpti.ErrUnknownDomain
			case "epk":
				for i := 0; err == nil && i <= spec.Domains; i++ {
					_, _, err = ops.Alloc(task0)
				}
				sentinel = backend.ErrDomainCapacity
			default:
				t.Fatalf("backend %q has no sentinel case — add one to the conformance suite", b.Name())
			}
			if err == nil {
				t.Fatalf("%s failure path returned nil error", b.Name())
			}
			if !errors.Is(err, sentinel) {
				t.Fatalf("error %v does not match sentinel %v", err, sentinel)
			}
			if code := replay.CodeOf(err); code == replay.CodeOK {
				t.Fatalf("sentinel %v maps to CodeOK — replayed failure traces cannot classify it", sentinel)
			}
		})
	}
}
