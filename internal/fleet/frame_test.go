package fleet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hello := Hello{Version: ProtocolVersion, Worker: 3}
	assign := Assign{ID: 42, Spec: CellSpec{
		Grid: "fig5:X86:65536", Index: 7, Seed: 0xfeedface,
		Kernel: "dpti", Arch: "RISCV", Flags: FlagQuick | FlagTrace, Spec: "x",
	}}
	result := Result{ID: 42, Cell: CellResult{
		Text: "row\n", Total: 123456,
		Metrics: []byte(`{"a":1}`), Trace: []byte(`{"traceEvents":[]}`),
		Aux: []byte{0, 1, 2, 255}, Err: "",
	}}
	beat := Heartbeat{Worker: 3, Cell: 42, Beat: 9}

	for _, w := range []struct {
		t FrameType
		p []byte
	}{
		{FrameHello, EncodeHello(hello)},
		{FrameAssign, EncodeAssign(assign)},
		{FrameResult, EncodeResult(result)},
		{FrameHeartbeat, EncodeHeartbeat(beat)},
		{FrameShutdown, nil},
	} {
		if err := WriteFrame(&buf, w.t, w.p); err != nil {
			t.Fatalf("WriteFrame(%d): %v", w.t, err)
		}
	}

	br := bufio.NewReader(&buf)
	readOne := func(want FrameType) []byte {
		t.Helper()
		ft, payload, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if ft != want {
			t.Fatalf("frame type = %d, want %d", ft, want)
		}
		return payload
	}

	if got, err := DecodeHello(readOne(FrameHello)); err != nil || got != hello {
		t.Fatalf("hello round-trip = %+v, %v; want %+v", got, err, hello)
	}
	if got, err := DecodeAssign(readOne(FrameAssign)); err != nil || !reflect.DeepEqual(got, assign) {
		t.Fatalf("assign round-trip = %+v, %v; want %+v", got, err, assign)
	}
	if got, err := DecodeResult(readOne(FrameResult)); err != nil || !reflect.DeepEqual(got, result) {
		t.Fatalf("result round-trip = %+v, %v; want %+v", got, err, result)
	}
	if got, err := DecodeHeartbeat(readOne(FrameHeartbeat)); err != nil || got != beat {
		t.Fatalf("heartbeat round-trip = %+v, %v; want %+v", got, err, beat)
	}
	readOne(FrameShutdown)
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

func TestReadFrameSentinels(t *testing.T) {
	frame := func(t FrameType, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, t, payload); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	good := frame(FrameHeartbeat, EncodeHeartbeat(Heartbeat{Worker: 1, Cell: 2, Beat: 3}))

	oversize := append([]byte{}, frameMagic[:]...)
	oversize = append(oversize, byte(FrameResult))
	oversize = binary.AppendUvarint(oversize, maxFramePayload+1)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", append([]byte("XXXX"), good[4:]...), ErrBadMagic},
		{"unknown type", frame(FrameType(99), nil), ErrBadRecord},
		{"truncated header", good[:2], ErrTruncated},
		{"truncated payload", good[:len(good)-1], ErrTruncated},
		{"oversize payload length", oversize, ErrBadRecord},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(tc.data)))
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeSentinels(t *testing.T) {
	if _, err := DecodeHello(EncodeHello(Hello{Version: 99, Worker: 0})); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version skew = %v, want ErrBadVersion", err)
	}
	if _, err := DecodeHello(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty hello = %v, want ErrTruncated", err)
	}
	good := EncodeHello(Hello{Version: ProtocolVersion, Worker: 1})
	if _, err := DecodeHello(append(good, 0)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("trailing bytes = %v, want ErrBadRecord", err)
	}

	a := EncodeAssign(Assign{ID: 1, Spec: CellSpec{Grid: "table4", Index: 2}})
	if _, err := DecodeAssign(a[:len(a)-1]); err == nil {
		t.Fatal("truncated assign decoded without error")
	}

	// A forged string length larger than the remaining input must be
	// rejected, not allocated.
	forged := binary.AppendUvarint(nil, 1) // ID
	forged = binary.AppendUvarint(forged, 1<<40)
	if _, err := DecodeAssign(forged); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("forged length = %v, want ErrBadRecord", err)
	}
}

func TestResultDigestRejectsCorruption(t *testing.T) {
	r := Result{ID: 7, Cell: CellResult{Text: "hello fleet", Total: 99, Aux: []byte{1, 2, 3}}}
	payload := EncodeResult(r)
	if _, err := DecodeResult(payload); err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	// Flip one content byte: the frame still parses structurally, but
	// the digest must catch it.
	corrupt := append([]byte{}, payload...)
	corrupt[3] ^= 0x01
	if _, err := DecodeResult(corrupt); !errors.Is(err, ErrBadDigest) && !errors.Is(err, ErrBadRecord) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("corrupt decode = %v, want a typed sentinel", err)
	}
}

func TestBackoffDeterministic(t *testing.T) {
	base, cap := 10*time.Millisecond, 2*time.Second
	want := []time.Duration{
		0,
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
	}
	for failures, w := range want {
		if got := Backoff(base, cap, failures); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", failures, got, w)
		}
	}
	if got := Backoff(base, cap, 60); got != cap {
		t.Fatalf("Backoff(60) = %v, want cap %v", got, cap)
	}
	// Jitter-free: the schedule is a pure function of the attempt.
	for i := 0; i < 3; i++ {
		if Backoff(base, cap, 3) != 40*time.Millisecond {
			t.Fatal("Backoff is not deterministic")
		}
	}
}
