package mm

import (
	"errors"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/pagetable"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	m := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: 2, TLBCapacity: 64})
	return NewAddressSpace(m)
}

func TestMmapAndFault(t *testing.T) {
	as := newAS(t)
	_, err := as.Mmap(0x10000, 4*pg, true)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := as.HandleFault(as.Shadow(), 0x10000, true)
	if err != nil {
		t.Fatal(err)
	}
	if !fix.FreshFrame {
		t.Error("first touch did not allocate a frame")
	}
	if !as.Shadow().Walk(0x10000).Present {
		t.Error("fault did not map the page in the shadow")
	}
	// Second fault on same page in shadow is a no-op allocation-wise.
	fix, err = as.HandleFault(as.Shadow(), 0x10000, false)
	if err != nil {
		t.Fatal(err)
	}
	if fix.FreshFrame {
		t.Error("second touch allocated again")
	}
}

func TestMmapRejectsOverlapAndBadRange(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Mmap(0x11000, pg, true); !errors.Is(err, ErrOverlap) {
		t.Errorf("overlapping mmap err = %v, want ErrOverlap", err)
	}
	if _, err := as.Mmap(0x10001, pg, true); err == nil {
		t.Error("unaligned mmap succeeded")
	}
	if _, err := as.Mmap(0x20000, 0, true); err == nil {
		t.Error("empty mmap succeeded")
	}
}

func TestFaultOutsideVMASegfaults(t *testing.T) {
	as := newAS(t)
	if _, err := as.HandleFault(as.Shadow(), 0xdead000, false); !errors.Is(err, ErrSegfault) {
		t.Errorf("err = %v, want ErrSegfault", err)
	}
}

func TestWriteFaultOnReadOnlyVMASegfaults(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, pg, false); err != nil {
		t.Fatal(err)
	}
	if _, err := as.HandleFault(as.Shadow(), 0x10000, true); !errors.Is(err, ErrSegfault) {
		t.Errorf("write fault err = %v, want ErrSegfault", err)
	}
	if _, err := as.HandleFault(as.Shadow(), 0x10000, false); err != nil {
		t.Errorf("read fault err = %v", err)
	}
}

func TestDemandPagingFillsVDSTableFromShadow(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	vds := pagetable.New()
	as.RegisterTable(vds)

	// Touch in the shadow first; the VDS table stays empty (lazy).
	if _, err := as.HandleFault(as.Shadow(), 0x10000, true); err != nil {
		t.Fatal(err)
	}
	if vds.Present() != 0 {
		t.Error("VDS table filled eagerly")
	}
	fix, err := as.HandleFault(vds, 0x10000, true)
	if err != nil {
		t.Fatal(err)
	}
	if fix.FreshFrame {
		t.Error("VDS fill re-allocated the frame")
	}
	sf := as.Shadow().Walk(0x10000).PTE.Frame
	vf := vds.Walk(0x10000).PTE.Frame
	if sf != vf {
		t.Errorf("frames diverge: shadow %d vs VDS %d", sf, vf)
	}
}

func TestMunmapEagerlyClearsAllTables(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	vds := pagetable.New()
	as.RegisterTable(vds)
	for i := 0; i < 4; i++ {
		addr := pagetable.VAddr(0x10000 + i*pg)
		if _, err := as.HandleFault(vds, addr, true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := as.Munmap(0x10000, 4*pg)
	if err != nil {
		t.Fatal(err)
	}
	if as.Shadow().Present() != 0 || vds.Present() != 0 {
		t.Errorf("pages survive munmap: shadow %d, vds %d",
			as.Shadow().Present(), vds.Present())
	}
	if rep.PagesTouched != 8 { // 4 pages × 2 tables
		t.Errorf("PagesTouched = %d, want 8", rep.PagesTouched)
	}
	if rep.TablesTouched != 2 {
		t.Errorf("TablesTouched = %d, want 2", rep.TablesTouched)
	}
	if as.FindVMA(0x10000) != nil {
		t.Error("VMA survives munmap")
	}
}

func TestMunmapPartialSplits(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, 10*pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Munmap(0x10000+2*pg, 3*pg); err != nil {
		t.Fatal(err)
	}
	head := as.FindVMA(0x10000)
	if head == nil || head.Pages() != 2 {
		t.Fatalf("head after split = %v", head)
	}
	if as.FindVMA(0x10000+3*pg) != nil {
		t.Error("hole still mapped")
	}
	tail := as.FindVMA(0x10000 + 5*pg)
	if tail == nil || tail.Pages() != 5 || tail.Start != 0x10000+5*pg {
		t.Fatalf("tail after split = %v", tail)
	}
	if as.NumVMAs() != 2 {
		t.Errorf("NumVMAs = %d, want 2", as.NumVMAs())
	}
}

func TestMprotectDowngradeEager(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, 2*pg, true); err != nil {
		t.Fatal(err)
	}
	vds := pagetable.New()
	as.RegisterTable(vds)
	if _, err := as.HandleFault(vds, 0x10000, true); err != nil {
		t.Fatal(err)
	}
	rep, err := as.Mprotect(0x10000, 2*pg, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesTouched == 0 {
		t.Error("downgrade touched no pages")
	}
	if as.Shadow().Walk(0x10000).PTE.Writable || vds.Walk(0x10000).PTE.Writable {
		t.Error("present PTEs still writable after revocation")
	}
	// A write fault now segfaults.
	if _, err := as.HandleFault(vds, 0x10000, true); !errors.Is(err, ErrSegfault) {
		t.Errorf("write after revoke err = %v, want ErrSegfault", err)
	}
}

func TestMprotectUpgradeLazy(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, pg, false); err != nil {
		t.Fatal(err)
	}
	rep, err := as.Mprotect(0x10000, pg, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesTouched != 0 {
		t.Errorf("upgrade touched %d pages, want 0 (lazy)", rep.PagesTouched)
	}
	if !as.FindVMA(0x10000).Writable {
		t.Error("VMA not upgraded")
	}
}

func TestSetTagSplitsAndRetags(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, 8*pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Populate(as.Shadow(), 0x10000, 8*pg); err != nil {
		t.Fatal(err)
	}
	// Tag an unaligned byte range inside pages 2..3; it must expand to
	// page boundaries.
	_, err := as.SetTag(0x10000+2*pg+100, pg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if tag := as.FindVMA(0x10000 + 2*pg).Tag; tag != 42 {
		t.Errorf("tagged VMA tag = %d, want 42", tag)
	}
	if tag := as.FindVMA(0x10000).Tag; tag != 0 {
		t.Errorf("head VMA tag = %d, want 0", tag)
	}
	if tag := as.FindVMA(0x10000 + 4*pg).Tag; tag != 0 {
		t.Errorf("tail VMA tag = %d, want 0", tag)
	}
	if as.NumVMAs() != 3 {
		t.Errorf("NumVMAs = %d, want 3", as.NumVMAs())
	}
}

func TestSetTagUnmappedFails(t *testing.T) {
	as := newAS(t)
	if _, err := as.SetTag(0xf000000, pg, 1); !errors.Is(err, ErrNoMapping) {
		t.Errorf("err = %v, want ErrNoMapping", err)
	}
}

// resolver that maps tag 42 to pdom 9 in one specific table only.
type testResolver struct {
	special *pagetable.Table
}

func (r testResolver) PdomFor(t *pagetable.Table, tag Tag) (pagetable.Pdom, bool) {
	if tag == 0 {
		return 0, true
	}
	if t == r.special && tag == 42 {
		return 9, true
	}
	return 0, false
}
func (r testResolver) AccessNever() pagetable.Pdom { return 1 }

func TestResolverControlsPdoms(t *testing.T) {
	as := newAS(t)
	vds := pagetable.New()
	as.RegisterTable(vds)
	as.SetResolver(testResolver{special: vds})

	if _, err := as.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.SetTag(0x10000, pg, 42); err != nil {
		t.Fatal(err)
	}
	// Fault into both tables: vds gets pdom 9, shadow gets access-never.
	fix, err := as.HandleFault(vds, 0x10000, false)
	if err != nil {
		t.Fatal(err)
	}
	if fix.Pdom != 9 {
		t.Errorf("vds pdom = %d, want 9", fix.Pdom)
	}
	if got := as.Shadow().Walk(0x10000).PTE.Pdom; got != 1 {
		t.Errorf("shadow pdom = %d, want access-never 1", got)
	}
}

func TestPopulateCountsFreshFrames(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	n, err := as.Populate(as.Shadow(), 0x10000, 4*pg)
	if err != nil || n != 4 {
		t.Fatalf("Populate = (%d, %v), want (4, nil)", n, err)
	}
	n, err = as.Populate(as.Shadow(), 0x10000, 4*pg)
	if err != nil || n != 0 {
		t.Errorf("second Populate = (%d, %v), want (0, nil)", n, err)
	}
}

func TestUnregisterTableStopsSync(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	vds := pagetable.New()
	as.RegisterTable(vds)
	if _, err := as.HandleFault(vds, 0x10000, true); err != nil {
		t.Fatal(err)
	}
	as.UnregisterTable(vds)
	if _, err := as.Munmap(0x10000, pg); err != nil {
		t.Fatal(err)
	}
	// The unregistered table keeps its stale entry; shadow is clean.
	if vds.Present() != 1 {
		t.Errorf("unregistered table Present = %d, want 1", vds.Present())
	}
	if as.Shadow().Present() != 0 {
		t.Error("shadow not cleaned")
	}
}

func TestSyncReportCountsTables(t *testing.T) {
	as := newAS(t)
	if _, err := as.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vt := pagetable.New()
		as.RegisterTable(vt)
		if _, err := as.HandleFault(vt, 0x10000, true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := as.Munmap(0x10000, pg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesTouched != 4 { // shadow + 3 VDS tables
		t.Errorf("TablesTouched = %d, want 4", rep.TablesTouched)
	}
	if rep.PagesTouched != 4 {
		t.Errorf("PagesTouched = %d, want 4", rep.PagesTouched)
	}
	if rep.PTEWrites < 4 {
		t.Errorf("PTEWrites = %d, want >= 4", rep.PTEWrites)
	}
}
