package core

import (
	"errors"
	"testing"

	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

func TestVdrAllocTwiceFails(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.VdrAlloc(task, 2); err == nil {
		t.Error("second VdrAlloc succeeded")
	}
}

func TestMprotectUnmappedRegionFails(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	d, _ := f.m.AllocVdom(false)
	if _, err := f.m.Mprotect(task, 0xdead0000, pg, d); err == nil {
		t.Error("Mprotect on unmapped memory succeeded")
	}
}

func TestMprotectDeadVdomFails(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Mmap(0x100000000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Mprotect(task, 0x100000000, pg, 9999); !errors.Is(err, ErrFreedVdom) {
		t.Errorf("Mprotect with unallocated vdom = %v, want ErrFreedVdom", err)
	}
}

func TestAPIsWithoutVDR(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	d, _ := f.m.AllocVdom(false)
	if _, err := f.m.WrVdr(task, d, VPermRead); !errors.Is(err, ErrNoVDR) {
		t.Errorf("WrVdr without VDR = %v", err)
	}
	if _, _, err := f.m.RdVdr(task, d); !errors.Is(err, ErrNoVDR) {
		t.Errorf("RdVdr without VDR = %v", err)
	}
	if _, err := f.m.VdrFree(task); !errors.Is(err, ErrNoVDR) {
		t.Errorf("VdrFree without VDR = %v", err)
	}
	if _, err := f.m.PlaceInNewVDS(task); !errors.Is(err, ErrNoVDR) {
		t.Errorf("PlaceInNewVDS without VDR = %v", err)
	}
}

func TestVDROfUnknownTaskNil(t *testing.T) {
	f := x86Fixture(t)
	if f.m.VDROf(f.proc.NewTask(0)) != nil {
		t.Error("VDROf unknown task non-nil")
	}
}

func TestFaultOnForeignNonVdomMemoryUnhandled(t *testing.T) {
	// A domain fault on memory with no vdom tag is not VDom's to handle:
	// the kernel delivers SIGSEGV.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Mmap(0x100000000, pg, true); err != nil {
		t.Fatal(err)
	}
	// Manually poison the PTE with a denied pdom, no VMA tag.
	if _, err := task.Access(0x100000000, true); err != nil {
		t.Fatal(err)
	}
	tbl := f.m.VDROf(task).Current().Table()
	tbl.SetPdom(0x100000000, 9)
	task.Core().TLB().FlushASID(task.ASID())
	var r regImage
	r.set(1, false, true)
	r.set(9, false, true)
	task.SetSavedPerm(r.bits)
	_, err := task.Access(pagetable.VAddr(0x100000000), false)
	if err == nil {
		t.Error("poisoned access succeeded")
	}
}

// stubChaos is a deterministic in-package fault source for error-path
// tests.
type stubChaos struct {
	failAlloc    bool
	exhaustPdoms bool
	degraded     []string
}

func (s *stubChaos) InjectVDSAllocFailure() bool   { return s.failAlloc }
func (s *stubChaos) InjectPdomExhaustion() bool    { return s.exhaustPdoms }
func (s *stubChaos) NoteDegradedFallback(w string) { s.degraded = append(s.degraded, w) }

// TestActivationEvictsAccessibleLastResort fills a nas=1 VDS with open
// vdoms and demands one more: HLRU's last resort evicts an accessible
// vdom (whose permission survives in the VDR, so it refaults back in)
// rather than failing — graceful degradation, not ErrNoResources.
func TestActivationEvictsAccessibleLastResort(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	var firstBase pagetable.VAddr
	for i := 0; i < UsablePdomsPerVDS; i++ {
		d, base := f.newVdomRegion(t, task, 1, false)
		if i == 0 {
			firstBase = base
		}
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(base, true); err != nil {
			t.Fatalf("vdom %d access: %v", d, err)
		}
	}
	evictionsBefore := f.m.Stats.Evictions
	extra, extraBase := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, extra, VPermReadWrite)
	if _, err := task.Access(extraBase, true); err != nil {
		t.Fatalf("activated vdom unusable: %v", err)
	}
	if f.m.Stats.Evictions == evictionsBefore {
		t.Error("full VDS activation did not evict")
	}
	// The evicted (still-open) vdom transparently refaults back in.
	if _, err := task.Access(firstBase, true); err != nil {
		t.Fatalf("evicted vdom did not refault back: %v", err)
	}
	if got := f.m.AuditInvariants(); len(got) != 0 {
		t.Fatalf("invariants violated after eviction cycle: %v", got)
	}
}

// TestTransientAllocFailureTyped injects a VDS allocation failure:
// PlaceInNewVDS has no fallback space, so the transient typed failure
// surfaces as ErrNoResources.
func TestTransientAllocFailureTyped(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	f.m.SetChaos(&stubChaos{failAlloc: true})
	defer f.m.SetChaos(nil)
	if _, err := f.m.PlaceInNewVDS(task); !errors.Is(err, ErrNoResources) {
		t.Fatalf("place_in_new_vds under alloc failure returned %v, want ErrNoResources", err)
	}
}

// TestVdrAllocDegradedTyped makes every VDS allocation fail before the
// first vdr_alloc: the retry-once degradation path runs, then the call
// fails with both ErrDegraded and the causal ErrNoResources visible to
// errors.Is.
func TestVdrAllocDegradedTyped(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	stub := &stubChaos{failAlloc: true}
	f.m.SetChaos(stub)
	_, err := f.m.VdrAlloc(task, 2)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("vdr_alloc after failed retry returned %v, want ErrDegraded", err)
	}
	if !errors.Is(err, ErrNoResources) {
		t.Fatalf("degraded error %v does not expose the ErrNoResources cause", err)
	}
	if len(stub.degraded) == 0 || stub.degraded[0] != "vdr_alloc:vds-retry" {
		t.Fatalf("retry path did not report itself: %v", stub.degraded)
	}
	// With the fault cleared the same call succeeds — transient means
	// transient.
	f.m.SetChaos(nil)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatalf("vdr_alloc still failing after fault cleared: %v", err)
	}
}

// TestASIDExhaustionTyped shrinks the ASID space to exactly the live set:
// a new VDS cannot get an ASID even after a generation rollover, and the
// terminal sentinel ErrExhausted surfaces.
func TestASIDExhaustionTyped(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	k := f.proc.Kernel()
	k.SetASIDLimit(tlb.ASID(k.LiveASIDCount()))
	if _, err := f.m.PlaceInNewVDS(task); !errors.Is(err, ErrExhausted) {
		t.Fatalf("place_in_new_vds with full ASID space returned %v, want ErrExhausted", err)
	}
}

// TestFreedVdomTyped checks the use-after-free sentinels.
func TestFreedVdomTyped(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	d, _ := f.newVdomRegion(t, task, 1, false)
	if _, err := f.m.FreeVdom(d); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.WrVdr(task, d, VPermRead); !errors.Is(err, ErrFreedVdom) {
		t.Fatalf("wrvdr on freed vdom returned %v, want ErrFreedVdom", err)
	}
	if _, err := f.m.FreeVdom(d); !errors.Is(err, ErrFreedVdom) {
		t.Fatalf("double free returned %v, want ErrFreedVdom", err)
	}
}

func TestReassignAllowedAfterFree(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	d1, base := f.newVdomRegion(t, task, 1, false)
	if _, err := f.m.FreeVdom(d1); err != nil {
		t.Fatal(err)
	}
	d2, _ := f.m.AllocVdom(false)
	if _, err := f.m.Mprotect(task, base, pg, d2); err != nil {
		t.Fatalf("reassign after free rejected: %v", err)
	}
	grant(t, f.m, task, d2, VPermReadWrite)
	if _, err := task.Access(base, true); err != nil {
		t.Fatal(err)
	}
	// The sealed gate pages can never be reassigned, even though their
	// tag is not a live vdom.
	g, err := NewGate(f.m)
	if err != nil {
		t.Fatal(err)
	}
	page, err := g.SealVDRPage(task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Mprotect(task, page, pg, d2); !errors.Is(err, ErrReassign) {
		t.Errorf("sealed page reassign = %v, want ErrReassign", err)
	}
}
