package backend

import (
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// libmpkBackend registers the libmpk baseline (virtual keys over the 16
// hardware keys via disabled-PTE eviction).
type libmpkBackend struct{}

func (libmpkBackend) Name() string             { return "libmpk" }
func (libmpkBackend) Standalone(Spec) bool     { return false }
func (libmpkBackend) Present(i *Instance) bool { return i.Libmpk != nil }
func (libmpkBackend) Section() string          { return "libmpk" }
func (libmpkBackend) ProcScoped() bool         { return true }

func (libmpkBackend) Attach(inst *Instance, spec Spec) error {
	inst.Libmpk = libmpk.Attach(inst.Proc, nil)
	if spec.Huge2M {
		inst.Libmpk.SetPageMode(libmpk.Huge2M)
	}
	return nil
}

func (libmpkBackend) AttachTap(inst *Instance, t tap.Tap)            { inst.Libmpk.SetTap(t) }
func (libmpkBackend) SetMetrics(inst *Instance, r *metrics.Registry) { inst.Libmpk.SetMetrics(r) }

func (libmpkBackend) EmitEnd(inst *Instance, emit func(string, uint64)) {
	inst.Libmpk.Stats.Emit(emit)
}

func (libmpkBackend) Capture(inst *Instance, tableID func(*pagetable.Table) int) any {
	return inst.Libmpk.Snap()
}

func (libmpkBackend) Restore(inst *Instance, decode func(any) error, table func(int) *pagetable.Table, task func(int) *kernel.Task) error {
	var ls libmpk.Snap
	if err := decode(&ls); err != nil {
		return err
	}
	inst.Libmpk.LoadSnap(ls, task)
	return nil
}

func (libmpkBackend) Ops(inst *Instance) DomainOps { return libmpkOps{inst.Libmpk} }

// libmpkOps adapts the libmpk baseline: domains are virtual keys and
// activation is a per-thread pkey register write. Per-thread setup is a
// no-op (the register is architectural state, not allocated).
type libmpkOps struct{ m *libmpk.Manager }

func (o libmpkOps) Alloc(t *kernel.Task) (uint64, cycles.Cost, error) {
	v, cost := o.m.PkeyAlloc()
	return uint64(v), cost, nil
}

func (o libmpkOps) Free(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.PkeyFree(t, libmpk.Vkey(id))
}

func (o libmpkOps) Protect(t *kernel.Task, addr pagetable.VAddr, length uint64, id uint64) (cycles.Cost, error) {
	return o.m.PkeyMprotect(nil, t, addr, length, libmpk.Vkey(id))
}

func (o libmpkOps) PrepareThread(t *kernel.Task, n int) (cycles.Cost, error) {
	return 0, nil
}

func (o libmpkOps) Activate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.PkeySet(nil, t, libmpk.Vkey(id), hw.PermReadWrite)
}

func (o libmpkOps) Deactivate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.PkeySet(nil, t, libmpk.Vkey(id), hw.PermNone)
}
