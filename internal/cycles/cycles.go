// Package cycles defines the per-architecture cycle cost model that the
// simulated hardware, kernel, and domain-virtualization systems charge for
// architectural events.
//
// The model follows the reproduction methodology of the VDom paper (§7.4):
// results are produced by counting architectural events (TLB flushes, PTE
// updates, pgd switches, permission-register writes, faults, IPIs) and
// charging a calibrated per-event cost. The constants below are calibrated
// against the paper's Table 3 so that composite operations (fast/secure
// wrvdr, evictions, VDS switches) land on the measured cycle counts; all
// higher-level results must emerge from event counts, never from
// per-experiment fudge factors.
package cycles

import "fmt"

// Arch identifies a simulated processor architecture.
type Arch int

const (
	// X86 models an Intel Xeon with MPK (user-writable PKRU) and PCID.
	X86 Arch = iota
	// ARM models a 32-bit ARM core with Memory Domains (kernel-written
	// DACR) and ASID-tagged TLBs.
	ARM
	// Power models an IBM POWER9 with Memory Protection Keys (32
	// domains via the kernel-written AMR) — the third primitive the
	// paper's Background surveys.
	Power
	// RISCV models a RISC-V core with sealable protection keys (SealPK,
	// Delshadtehrani et al.): an MPK-style per-page key primitive with a
	// user-writable permission register and sealing support, prototyped
	// on an in-order FPGA core.
	RISCV
)

// String returns the conventional short name of the architecture.
func (a Arch) String() string {
	switch a {
	case X86:
		return "X86"
	case ARM:
		return "ARM"
	case Power:
		return "Power"
	case RISCV:
		return "RISCV"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Cost is a duration measured in CPU cycles of the simulated machine.
type Cost uint64

// Params is the per-architecture cost table. Every field is the cycle cost
// of one architectural event on that architecture.
type Params struct {
	Arch Arch

	// NumPdoms is the number of hardware protection domains (16 on both
	// Intel MPK and ARM Memory Domain).
	NumPdoms int
	// DomainGranularity is the protection granularity in bytes (4 KiB on
	// Intel, 2 MiB sections on ARM; we model ARM at page granularity with
	// a section-sized minimum protected unit).
	DomainGranularity uint64
	// UserWritablePermReg reports whether user space can write the
	// permission register directly (true for Intel PKRU, false for ARM
	// DACR, which requires a kernel entry).
	UserWritablePermReg bool

	// --- Core pipeline events ---

	// CallReturn is an empty user-space call+return pair.
	CallReturn Cost
	// SyscallReturn is an empty syscall+sysret round trip.
	SyscallReturn Cost
	// PermRegWrite is one write of the permission register
	// (wrpkru on Intel, DACR write on ARM; the ARM figure excludes the
	// kernel entry, which is charged separately via SyscallReturn).
	PermRegWrite Cost
	// PermRegRead is one read of the permission register.
	PermRegRead Cost

	// --- Memory system events ---

	// TLBHit is a TLB lookup that hits.
	TLBHit Cost
	// PageWalk is a full page-table walk on a TLB miss (4 levels).
	PageWalk Cost
	// PTEWrite is one page-table-entry update (store + bookkeeping).
	PTEWrite Cost
	// PMDWrite is one page-middle-directory update (disables/remaps 512
	// PTEs at once).
	PMDWrite Cost
	// TLBFlushLocalPage invalidates a single page in the local TLB.
	TLBFlushLocalPage Cost
	// TLBFlushLocalASID invalidates all local entries of one ASID.
	TLBFlushLocalASID Cost
	// TLBFlushLocalAll invalidates the whole local TLB.
	TLBFlushLocalAll Cost
	// IPI is the cost of sending one inter-processor interrupt, charged
	// to the initiator per remote core during a TLB shootdown.
	IPI Cost
	// IPIReceive is the cost charged to a remote core that services a
	// shootdown IPI (interrupt entry + flush + exit).
	IPIReceive Cost

	// --- Kernel events ---

	// FaultEntry is the trap cost of entering the kernel on a fault
	// (protection-key fault on Intel, domain fault on ARM).
	FaultEntry Cost
	// FaultExit is the return-from-fault cost.
	FaultExit Cost
	// PgdSwitch is one page-global-directory switch without a TLB flush
	// (ASID-tagged); the cost covers the CR3/TTBR write.
	PgdSwitch Cost
	// ContextSwitchBase is the architecture's baseline switch_mm cost on
	// an unmodified kernel.
	ContextSwitchBase Cost
	// VDSMetadataSwitch is the extra metadata maintenance VDom adds to a
	// context switch that targets a VDS.
	VDSMetadataSwitch Cost
	// SchedulerPick is the cost of one scheduler decision.
	SchedulerPick Cost

	// --- Virtualization events (EPK baseline) ---

	// VMFUNC is one EPT switch via the VMFUNC instruction (small EPT
	// counts; Intel only).
	VMFUNC Cost
	// VMFUNCLargeEPT is a VMFUNC switch when many EPTs are installed
	// (the paper reports 830 cycles at 64 EPTs).
	VMFUNCLargeEPT Cost

	// --- VDom API components ---

	// GateEntry is the secure call gate entry on Intel: rdpkru+wrpkru to
	// open pdom1, lsl core-number read, secure-page load, stack switch.
	GateEntry Cost
	// GateExit is the secure call gate exit: merged wrpkru, legality
	// check, stack restore.
	GateExit Cost
	// VDRUpdate is the user-space bookkeeping of a VDR permission update
	// (array read-modify-write plus domain-map lookup).
	VDRUpdate Cost
	// VDTWalkPerArea is the kernel cost of finding one memory area
	// through the virtual domain table during eviction.
	VDTWalkPerArea Cost
	// DomainMapUpdate is one (pdom, vdom) domain-map entry update.
	DomainMapUpdate Cost
	// MigrationPerVdom is the per-remapped-vdom cost of a thread
	// migration between VDSes (domain-map + permission-register sync).
	MigrationPerVdom Cost
	// VDSAllocate is the cost of allocating and initializing a new VDS
	// descriptor and its page table top level.
	VDSAllocate Cost
	// EvictBase is the fixed kernel cost of one vdom eviction: taking
	// the mmap lock, scanning the domain map for a victim, and the
	// mprotect-style VMA bookkeeping, excluding per-PTE/PMD and flush
	// costs.
	EvictBase Cost
	// SyncPerPage is the per-page cost of propagating a mapping to one
	// additional VDS page table (eager sync or demand-paging fill).
	SyncPerPage Cost
	// MprotectPerPage is the per-page cost of the generic kernel
	// mprotect path (mmap-lock, VMA split, folio accounting, PTE
	// update) that libmpk's eviction rides on — substantially more
	// expensive than VDom's direct VDT-guided PTE manipulation.
	MprotectPerPage Cost
}

// X86Params returns the calibrated cost table for the simulated Intel Xeon
// (Gold 6230R class) machine.
func X86Params() *Params {
	return &Params{
		Arch:                X86,
		NumPdoms:            16,
		DomainGranularity:   4096,
		UserWritablePermReg: true,

		CallReturn:    7,   // paper: 6.7
		SyscallReturn: 173, // paper: 173.4
		PermRegWrite:  26,  // paper: 25.6
		PermRegRead:   6,

		TLBHit:            1,
		PageWalk:          40,
		PTEWrite:          2,
		PMDWrite:          105,
		TLBFlushLocalPage: 120,
		TLBFlushLocalASID: 170,
		TLBFlushLocalAll:  220,
		IPI:               550,
		IPIReceive:        750,

		FaultEntry:        230,
		FaultExit:         120,
		PgdSwitch:         130,
		ContextSwitchBase: 426, // +6% under VDom = 451.9 (paper §7.5)
		VDSMetadataSwitch: 320, // 451.9 + 320 ≈ 771.7 (paper §7.5)
		SchedulerPick:     90,

		VMFUNC:         169, // paper Table 3 (from [46])
		VMFUNCLargeEPT: 830, // paper §7.4 / Table 4

		GateEntry:        18, // rdpkru+and+wrpkru+lsl+stack switch
		GateExit:         17, // merged wrpkru + legality check
		VDRUpdate:        36, // 7 (call) + 26 (wrpkru) + 36 ≈ 69 fast wrvdr
		VDTWalkPerArea:   60,
		DomainMapUpdate:  14,
		MigrationPerVdom: 90,
		VDSAllocate:      900,
		EvictBase:        1100,
		SyncPerPage:      55,
		MprotectPerPage:  28,
	}
}

// ARMParams returns the calibrated cost table for the simulated Raspberry
// Pi 3 (Cortex-A53, ARMv7l mode) machine. DACR writes are privileged, so
// every wrvdr pays a kernel round trip.
func ARMParams() *Params {
	return &Params{
		Arch:                ARM,
		NumPdoms:            16,
		DomainGranularity:   2 << 20,
		UserWritablePermReg: false,

		CallReturn:    17,  // paper: 16.5
		SyscallReturn: 268, // paper: 268.3
		PermRegWrite:  18,  // paper: 18.1
		PermRegRead:   5,

		TLBHit:            1,
		PageWalk:          60,
		PTEWrite:          3,
		PMDWrite:          140,
		TLBFlushLocalPage: 45,
		TLBFlushLocalASID: 160,
		TLBFlushLocalAll:  280,
		IPI:               700,
		IPIReceive:        900,

		FaultEntry:        310,
		FaultExit:         160,
		PgdSwitch:         150,
		ContextSwitchBase: 1340, // +7.63% under VDom ≈ 1442.1 (paper §7.5)
		VDSMetadataSwitch: 103,  // 1442.1 + 103 ≈ 1545.1 (paper §7.5)
		SchedulerPick:     140,

		VMFUNC:         0, // undefined on ARM
		VMFUNCLargeEPT: 0,

		GateEntry:        0, // no user-space gate: DACR path is in-kernel
		GateExit:         0,
		VDRUpdate:        103, // 17 + 268 + 18 + 103 = 406 wrvdr (paper)
		VDTWalkPerArea:   85,
		DomainMapUpdate:  18,
		MigrationPerVdom: 120,
		VDSAllocate:      1400,
		EvictBase:        1600,
		SyncPerPage:      160,
		MprotectPerPage:  45,
	}
}

// PowerParams returns a plausible cost table for a simulated POWER9
// machine. The paper does not evaluate on Power (its prototype targets
// Intel and ARM); these constants are extrapolated from public POWER9
// latencies so the 32-domain configuration can be studied. Treat Power
// results as projections, not reproductions.
func PowerParams() *Params {
	return &Params{
		Arch:                Power,
		NumPdoms:            32,
		DomainGranularity:   4096,
		UserWritablePermReg: false, // AMR writes are kernel-mediated here

		CallReturn:    8,
		SyscallReturn: 180,
		PermRegWrite:  22, // mtspr AMR
		PermRegRead:   6,

		TLBHit:            1,
		PageWalk:          45,
		PTEWrite:          2,
		PMDWrite:          110,
		TLBFlushLocalPage: 90,
		TLBFlushLocalASID: 180,
		TLBFlushLocalAll:  260,
		IPI:               600,
		IPIReceive:        800,

		FaultEntry:        250,
		FaultExit:         130,
		PgdSwitch:         140,
		ContextSwitchBase: 520,
		VDSMetadataSwitch: 330,
		SchedulerPick:     95,

		VMFUNC:         0, // no VMFUNC analogue
		VMFUNCLargeEPT: 0,

		GateEntry:        0, // kernel-mediated API: no user-space gate
		GateExit:         0,
		VDRUpdate:        60,
		VDTWalkPerArea:   65,
		DomainMapUpdate:  14,
		MigrationPerVdom: 95,
		VDSAllocate:      950,
		EvictBase:        1150,
		SyncPerPage:      60,
		MprotectPerPage:  30,
	}
}

// RISCVParams returns a plausible cost table for a simulated RISC-V core
// with sealable protection keys (SealPK). The paper does not evaluate on
// RISC-V; these constants are extrapolated from the SealPK design — a
// user-writable permission CSR like MPK's PKRU, 16 protection domains,
// SFENCE.VMA-based flushes, and the flat latencies of an in-order core —
// so the fourth ISA can be studied. Treat RISC-V results as projections,
// not reproductions.
func RISCVParams() *Params {
	return &Params{
		Arch:                RISCV,
		NumPdoms:            16,
		DomainGranularity:   4096,
		UserWritablePermReg: true, // SealPK's pkru-analog CSR is CSRRW-able

		CallReturn:    4,
		SyscallReturn: 140,
		PermRegWrite:  14, // CSRRW on an in-order pipeline
		PermRegRead:   4,

		TLBHit:            1,
		PageWalk:          40,
		PTEWrite:          2,
		PMDWrite:          90,
		TLBFlushLocalPage: 70, // sfence.vma vaddr,asid
		TLBFlushLocalASID: 150,
		TLBFlushLocalAll:  220,
		IPI:               500,
		IPIReceive:        650,

		FaultEntry:        180,
		FaultExit:         100,
		PgdSwitch:         95, // satp write + implicit fence
		ContextSwitchBase: 430,
		VDSMetadataSwitch: 260,
		SchedulerPick:     80,

		VMFUNC:         0, // no VMFUNC analogue
		VMFUNCLargeEPT: 0,

		GateEntry:        70, // user-space gate: seal check + CSR swap
		GateExit:         70,
		VDRUpdate:        45,
		VDTWalkPerArea:   55,
		DomainMapUpdate:  12,
		MigrationPerVdom: 85,
		VDSAllocate:      820,
		EvictBase:        1000,
		SyncPerPage:      55,
		MprotectPerPage:  26,
	}
}

// ParamsFor returns the calibrated cost table for arch.
func ParamsFor(arch Arch) *Params {
	switch arch {
	case X86:
		return X86Params()
	case ARM:
		return ARMParams()
	case Power:
		return PowerParams()
	case RISCV:
		return RISCVParams()
	default:
		panic(fmt.Sprintf("cycles: unknown architecture %d", int(arch)))
	}
}

// Counter accumulates cycles, attributed to named accounts so that
// experiments (e.g. the Figure 1 overhead breakdown) can report where time
// went.
type Counter struct {
	total    Cost
	accounts map[string]Cost
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{accounts: make(map[string]Cost)}
}

// Charge adds c cycles to the given account.
func (k *Counter) Charge(account string, c Cost) {
	k.total += c
	k.accounts[account] += c
}

// Total returns all cycles charged so far.
func (k *Counter) Total() Cost { return k.total }

// Account returns the cycles charged to one account.
func (k *Counter) Account(name string) Cost { return k.accounts[name] }

// Accounts returns a copy of the per-account totals.
func (k *Counter) Accounts() map[string]Cost {
	out := make(map[string]Cost, len(k.accounts))
	for n, c := range k.accounts {
		out[n] = c
	}
	return out
}

// Reset zeroes the counter.
func (k *Counter) Reset() {
	k.total = 0
	k.accounts = make(map[string]Cost)
}

// Emit publishes the counter's per-account totals as named metrics
// counters under the cycles/ prefix (see OBSERVABILITY.md for the
// catalogue).
func (k *Counter) Emit(emit func(name string, v uint64)) {
	emit("cycles/total", uint64(k.total))
	for name, c := range k.accounts {
		emit("cycles/"+name, uint64(c))
	}
}

// Well-known accounting buckets used across the repository. Keeping them
// here avoids typo-fragmented accounts in experiment breakdowns.
const (
	AccountBusyWait   = "busy-wait"
	AccountShootdown  = "tlb-shootdown"
	AccountManagement = "memory-metadata-management"
	AccountDomain     = "domain-switch"
	AccountWork       = "application-work"
	AccountFault      = "fault-handling"
	AccountSync       = "vds-sync"
	AccountContext    = "context-switch"
	AccountVM         = "vm-tax"
)
