// Package par is the worker-pool fan-out engine behind the parallel
// experiment harness (vdom-bench -parallel N).
//
// The paper's evaluation is an embarrassingly parallel grid of independent
// deterministic cells: every Table 3/4/5 measurement, every figure row,
// and every chaos-soak shard boots its own isolated simulated machine.
// par schedules those cells across OS threads while keeping the work
// product bit-for-bit identical to a sequential run: jobs are indexed,
// each job writes only to its own result slot, and callers assemble
// results in index order. Worker count therefore affects wall-clock time
// only, never output — the property the bench layer's byte-identical
// output guarantee rests on.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a -parallel flag value: n > 0 is used as-is, while
// n <= 0 selects runtime.GOMAXPROCS(0) (one worker per schedulable CPU).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs job(0), ..., job(n-1) across at most `workers` goroutines and
// returns when all have finished. workers <= 1 (or n <= 1) runs strictly
// sequentially on the calling goroutine, in index order, with no
// goroutines spawned — the reference execution parallel runs must match.
//
// Jobs must be independent: they may not share mutable state, and each
// must confine its writes to its own result slot. A panicking job stops
// the pool and the panic value is re-raised on the calling goroutine once
// every in-flight job has returned, mirroring sequential behaviour.
func Do(workers, n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				stop := func() (stop bool) {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
								// Park the index cursor past the end so
								// idle workers drain instead of starting
								// doomed work.
								next.Store(int64(n))
							}
							panicMu.Unlock()
							stop = true
						}
					}()
					job(i)
					return false
				}()
				if stop {
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs the jobs concurrently on at most `workers` goroutines and
// returns their results in input order, regardless of completion order.
// It is Do with a result slot per job.
func Map[T any](workers int, jobs []func() T) []T {
	out := make([]T, len(jobs))
	Do(workers, len(jobs), func(i int) { out[i] = jobs[i]() })
	return out
}
