package backend

import (
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// epkBackend registers the EPK baseline (VMFUNC-switched EPT groups of
// 15 keys each). With Cores <= 0 it is a standalone cost model needing
// no machine substrate; with cores it rides the vanilla kernel.
type epkBackend struct{}

func (epkBackend) Name() string              { return "epk" }
func (epkBackend) Standalone(spec Spec) bool { return spec.Cores <= 0 }
func (epkBackend) Present(i *Instance) bool  { return i.EPK != nil }
func (epkBackend) Section() string           { return "epk" }
func (epkBackend) ProcScoped() bool          { return false }

func (epkBackend) Attach(inst *Instance, spec Spec) error {
	inst.EPK = epk.New(spec.Domains, epk.DefaultVMTax())
	return nil
}

func (epkBackend) AttachTap(inst *Instance, t tap.Tap)            { inst.EPK.SetTap(t) }
func (epkBackend) SetMetrics(inst *Instance, r *metrics.Registry) {}

func (epkBackend) EmitEnd(inst *Instance, emit func(string, uint64)) {
	inst.EPK.Stats.Emit(emit)
	emit("epk/epts", uint64(inst.EPK.NumEPTs()))
}

func (epkBackend) Capture(inst *Instance, tableID func(*pagetable.Table) int) any {
	return inst.EPK.Snap()
}

func (epkBackend) Restore(inst *Instance, decode func(any) error, table func(int) *pagetable.Table, task func(int) *kernel.Task) error {
	var es epk.Snap
	if err := decode(&es); err != nil {
		return err
	}
	inst.EPK.LoadSnap(es)
	return nil
}

func (epkBackend) Ops(inst *Instance) DomainOps { return &epkOps{s: inst.EPK} }

// epkOps adapts the EPK model: domains are slots in the fixed EPT-group
// space, activation is a domain switch (MPK write or VMFUNC), and the
// page-level operations are no-ops — EPK isolates through per-group
// EPT views, not per-page tags.
type epkOps struct {
	s    *epk.System
	next int
}

func (o *epkOps) Alloc(t *kernel.Task) (uint64, cycles.Cost, error) {
	if o.next >= o.s.NumDomains() {
		return 0, 0, fmt.Errorf("%w: epk holds %d domains", ErrDomainCapacity, o.s.NumDomains())
	}
	id := o.next
	o.next++
	return uint64(id), 0, nil
}

func (o *epkOps) Free(t *kernel.Task, id uint64) (cycles.Cost, error) { return 0, nil }

func (o *epkOps) Protect(t *kernel.Task, addr pagetable.VAddr, length uint64, id uint64) (cycles.Cost, error) {
	return 0, nil
}

func (o *epkOps) PrepareThread(t *kernel.Task, n int) (cycles.Cost, error) { return 0, nil }

func (o *epkOps) Activate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	tid := 0
	if t != nil {
		tid = t.TID()
	}
	return o.s.Switch(tid, int(id)), nil
}

func (o *epkOps) Deactivate(t *kernel.Task, id uint64) (cycles.Cost, error) { return 0, nil }
