package cycles

import "testing"

func TestParamsForReturnsCorrectArch(t *testing.T) {
	for _, arch := range []Arch{X86, ARM} {
		p := ParamsFor(arch)
		if p.Arch != arch {
			t.Errorf("ParamsFor(%v).Arch = %v", arch, p.Arch)
		}
	}
}

func TestParamsForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ParamsFor(99) did not panic")
		}
	}()
	ParamsFor(Arch(99))
}

func TestArchString(t *testing.T) {
	if X86.String() != "X86" || ARM.String() != "ARM" {
		t.Errorf("Arch strings wrong: %q %q", X86.String(), ARM.String())
	}
	if Arch(7).String() != "Arch(7)" {
		t.Errorf("unknown arch string = %q", Arch(7).String())
	}
}

// Table 3 anchors: the composite costs the rest of the repository derives
// must reconstruct the paper's measured single-operation cycles.
func TestTable3AnchorsX86(t *testing.T) {
	p := X86Params()
	if p.CallReturn != 7 {
		t.Errorf("empty API call = %d, paper reports 6.7", p.CallReturn)
	}
	if p.SyscallReturn != 173 {
		t.Errorf("empty syscall = %d, paper reports 173.4", p.SyscallReturn)
	}
	if p.PermRegWrite != 26 {
		t.Errorf("PKRU update = %d, paper reports 25.6", p.PermRegWrite)
	}
	if p.VMFUNC != 169 {
		t.Errorf("VMFUNC = %d, paper reports 169", p.VMFUNC)
	}
	// Fast wrvdr ≈ call + wrpkru + VDR bookkeeping ≈ 68.8.
	fast := p.CallReturn + p.PermRegWrite + p.VDRUpdate
	if fast < 64 || fast > 74 {
		t.Errorf("fast wrvdr composite = %d, paper reports 68.8", fast)
	}
	// Secure wrvdr adds the call gate ≈ 104.
	secure := fast + p.GateEntry + p.GateExit
	if secure < 99 || secure > 109 {
		t.Errorf("secure wrvdr composite = %d, paper reports 104", secure)
	}
}

func TestTable3AnchorsARM(t *testing.T) {
	p := ARMParams()
	if p.CallReturn != 17 {
		t.Errorf("empty API call = %d, paper reports 16.5", p.CallReturn)
	}
	if p.SyscallReturn != 268 {
		t.Errorf("empty syscall = %d, paper reports 268.3", p.SyscallReturn)
	}
	if p.PermRegWrite != 18 {
		t.Errorf("DACR update = %d, paper reports 18.1", p.PermRegWrite)
	}
	if p.UserWritablePermReg {
		t.Error("ARM DACR must not be user-writable")
	}
	// wrvdr on ARM = call + syscall + DACR + bookkeeping ≈ 406.
	wrvdr := p.CallReturn + p.SyscallReturn + p.PermRegWrite + p.VDRUpdate
	if wrvdr < 396 || wrvdr > 416 {
		t.Errorf("ARM wrvdr composite = %d, paper reports 406", wrvdr)
	}
}

func TestContextSwitchAnchors(t *testing.T) {
	// §7.5: VDom slows context switch by 6% (X86) and 7.63% (ARM),
	// reaching 451.9 and 1442.1 cycles.
	x := X86Params()
	vdomX := float64(x.ContextSwitchBase) * 1.06
	if vdomX < 445 || vdomX > 459 {
		t.Errorf("X86 VDom switch_mm = %.1f, paper reports 451.9", vdomX)
	}
	a := ARMParams()
	vdomA := float64(a.ContextSwitchBase) * 1.0763
	if vdomA < 1430 || vdomA > 1455 {
		t.Errorf("ARM VDom switch_mm = %.1f, paper reports 1442.1", vdomA)
	}
}

func TestBothArchesHave16Pdoms(t *testing.T) {
	for _, arch := range []Arch{X86, ARM} {
		if n := ParamsFor(arch).NumPdoms; n != 16 {
			t.Errorf("%v NumPdoms = %d, want 16", arch, n)
		}
	}
}

func TestCounterChargeAndAccounts(t *testing.T) {
	c := NewCounter()
	c.Charge(AccountBusyWait, 100)
	c.Charge(AccountShootdown, 50)
	c.Charge(AccountBusyWait, 25)
	if c.Total() != 175 {
		t.Errorf("Total = %d, want 175", c.Total())
	}
	if c.Account(AccountBusyWait) != 125 {
		t.Errorf("busy-wait = %d, want 125", c.Account(AccountBusyWait))
	}
	if c.Account("nonexistent") != 0 {
		t.Error("missing account should read 0")
	}
	acc := c.Accounts()
	if len(acc) != 2 || acc[AccountShootdown] != 50 {
		t.Errorf("Accounts() = %v", acc)
	}
	// Mutating the copy must not affect the counter.
	acc[AccountShootdown] = 999
	if c.Account(AccountShootdown) != 50 {
		t.Error("Accounts() returned a live reference")
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter()
	c.Charge(AccountWork, 10)
	c.Reset()
	if c.Total() != 0 || c.Account(AccountWork) != 0 {
		t.Error("Reset did not clear counter")
	}
}

func TestPowerParams(t *testing.T) {
	p := PowerParams()
	if p.Arch != Power {
		t.Error("arch wrong")
	}
	if p.NumPdoms != 32 {
		t.Errorf("Power NumPdoms = %d, want 32 (paper §2)", p.NumPdoms)
	}
	if p.UserWritablePermReg {
		t.Error("Power AMR modeled as kernel-mediated")
	}
	if ParamsFor(Power).NumPdoms != 32 {
		t.Error("ParamsFor(Power) wrong")
	}
	if Power.String() != "Power" {
		t.Errorf("String = %q", Power.String())
	}
}
