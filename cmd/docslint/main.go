// Command docslint enforces the repository's documentation floor in CI.
//
// It checks four things, chosen to keep the public surface, the module
// map (DESIGN.md §3), and the top-level documentation set
// self-describing:
//
//  1. Every exported identifier in the root vdom package (the public
//     API) must carry a doc comment.
//  2. Every package under internal/ must have a package comment.
//  3. Every package under internal/ must appear in DESIGN.md's §3
//     module map, so the map cannot silently drift from the tree.
//  4. Every top-level *.md file must be reachable from README.md
//     through the mention graph (file A links to B when A's text names
//     B), so no document becomes an orphan no reader can find.
//     Repo-growth scaffolding (CHANGES.md, ISSUE.md, ROADMAP.md,
//     PAPERS.md, SNIPPETS.md) is exempt.
//
// Usage:
//
//	go run ./cmd/docslint [root]
//
// root defaults to the current directory. Exit status is non-zero if
// any violation is found; each violation is printed as file:line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	problems = append(problems, lintExported(root)...)

	pkgDirs, err := internalPackageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	for _, dir := range pkgDirs {
		problems = append(problems, lintPackageComment(dir)...)
	}
	problems = append(problems, lintModuleMap(root, pkgDirs)...)
	problems = append(problems, lintDocReachability(root)...)

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// parseDir parses the non-test Go files of one directory.
func parseDir(dir string) (*token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return fset, files, nil
}

// lintExported reports exported identifiers without doc comments in the
// package rooted at dir (the public vdom package).
func lintExported(dir string) []string {
	fset, files, err := parseDir(dir)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				// Methods on unexported receivers are not public API.
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Name.Pos(), kind, d.Name.Name)
			case *ast.GenDecl:
				lintGenDecl(d, report)
			}
		}
	}
	return out
}

// lintGenDecl checks const/var/type declarations. A doc comment on the
// grouped declaration covers its members; otherwise each exported spec
// needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok == token.IMPORT {
		return
	}
	kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Name.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// lintPackageComment reports a package under internal/ whose non-test
// files carry no package comment at all.
func lintPackageComment(dir string) []string {
	fset, files, err := parseDir(dir)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	if len(files) == 0 {
		return nil
	}
	for _, f := range files {
		if f.Doc != nil {
			return nil
		}
	}
	p := fset.Position(files[0].Package)
	return []string{fmt.Sprintf("%s:%d: package %s has no package comment", p.Filename, p.Line, files[0].Name.Name)}
}

// lintModuleMap requires every internal/* package to appear (as an
// `internal/<path>` mention) in DESIGN.md's "System inventory (module
// map)" section, keeping the map in lockstep with the package tree.
func lintModuleMap(root string, pkgDirs []string) []string {
	path := filepath.Join(root, "DESIGN.md")
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	section, line := moduleMapSection(string(data))
	if section == "" {
		return []string{fmt.Sprintf("%s:1: no \"module map\" section found", path)}
	}
	var out []string
	for _, dir := range pkgDirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		rel = filepath.ToSlash(rel)
		if !strings.Contains(section, rel) {
			out = append(out, fmt.Sprintf("%s:%d: module map is missing package %s", path, line, rel))
		}
	}
	return out
}

// moduleMapSection returns the body of the DESIGN.md section whose
// heading contains "module map" (case-insensitive), and the heading's
// line number.
func moduleMapSection(doc string) (string, int) {
	lines := strings.Split(doc, "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "#") && strings.Contains(strings.ToLower(l), "module map") {
			start = i
			break
		}
	}
	if start < 0 {
		return "", 0
	}
	end := len(lines)
	for i := start + 1; i < len(lines); i++ {
		if strings.HasPrefix(lines[i], "## ") {
			end = i
			break
		}
	}
	return strings.Join(lines[start:end], "\n"), start + 1
}

// docExempt lists top-level documents that need not be reachable from
// README.md: repo-growth scaffolding a reader is not expected to
// navigate to.
var docExempt = map[string]bool{
	"CHANGES.md":  true,
	"ISSUE.md":    true,
	"ROADMAP.md":  true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
}

// lintDocReachability requires every non-exempt top-level *.md file to
// be reachable from README.md through the mention graph: document A
// links to document B when A's text contains B's filename.
func lintDocReachability(root string) []string {
	entries, err := os.ReadDir(root)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	bodies := map[string]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".md") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			return []string{fmt.Sprintf("docslint: %v", err)}
		}
		bodies[name] = string(data)
	}
	if _, ok := bodies["README.md"]; !ok {
		return []string{fmt.Sprintf("%s: missing README.md", root)}
	}
	reachable := map[string]bool{"README.md": true}
	queue := []string{"README.md"}
	for len(queue) > 0 {
		from := queue[0]
		queue = queue[1:]
		for name := range bodies {
			if !reachable[name] && strings.Contains(bodies[from], name) {
				reachable[name] = true
				queue = append(queue, name)
			}
		}
	}
	var out []string
	for name := range bodies {
		if !reachable[name] && !docExempt[name] {
			out = append(out, fmt.Sprintf("%s:1: not reachable from README.md (no document on the README mention graph names it)", filepath.Join(root, name)))
		}
	}
	return out
}

// internalPackageDirs lists every directory under root/internal that
// contains at least one non-test Go file.
func internalPackageDirs(root string) ([]string, error) {
	var dirs []string
	base := filepath.Join(root, "internal")
	err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
