package vdom

// End-to-end integration tests exercising the public API across every
// layer: multiple threads, multiple architectures, domain lifecycles,
// policy variants, and the interaction between the virtualization
// algorithm and the simulated hardware.

import (
	"errors"
	"fmt"
	"testing"
)

// TestIntegrationServerLifecycle models a small server end to end: worker
// threads handling "requests" that allocate, protect, use, and free
// per-request secrets while a long-lived shared configuration domain is
// consulted read-only.
func TestIntegrationServerLifecycle(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 8})
	p := sys.NewProcess(DefaultPolicy())

	const workers = 6
	threads := make([]*Thread, workers)
	for i := range threads {
		threads[i] = p.NewThread(i % sys.Cores())
		if _, err := threads[i].AllocVDR(4); err != nil {
			t.Fatal(err)
		}
	}

	// Shared read-only configuration domain.
	cfgAddr, err := threads[0].Mmap(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	cfgDom, _ := p.AllocDomain(true)
	if _, err := p.ProtectRange(threads[0], cfgAddr, 2*PageSize, cfgDom); err != nil {
		t.Fatal(err)
	}
	// Initialize it once with write access, then every worker gets RO.
	if _, err := threads[0].WriteVDR(cfgDom, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := threads[0].Store(cfgAddr); err != nil {
		t.Fatal(err)
	}
	for _, th := range threads {
		if _, err := th.WriteVDR(cfgDom, ReadOnly); err != nil {
			t.Fatal(err)
		}
	}

	// Workers process requests.
	const requestsPerWorker = 30
	for r := 0; r < requestsPerWorker; r++ {
		for wi, th := range threads {
			// Read the shared config (allowed).
			if err := th.Load(cfgAddr); err != nil {
				t.Fatalf("worker %d request %d: config read: %v", wi, r, err)
			}
			// Writing it must fail (read-only).
			if err := th.Store(cfgAddr); !errors.Is(err, ErrSigsegv) {
				t.Fatalf("worker %d: config write = %v, want SIGSEGV", wi, err)
			}
			// Per-request secret: allocate, use, free.
			sAddr, err := th.Mmap(PageSize)
			if err != nil {
				t.Fatal(err)
			}
			sDom, _ := p.AllocDomain(false)
			if _, err := p.ProtectRange(th, sAddr, PageSize, sDom); err != nil {
				t.Fatal(err)
			}
			if _, err := th.WriteVDR(sDom, ReadWrite); err != nil {
				t.Fatal(err)
			}
			if err := th.Store(sAddr); err != nil {
				t.Fatalf("worker %d: secret store: %v", wi, err)
			}
			if _, err := th.WriteVDR(sDom, NoAccess); err != nil {
				t.Fatal(err)
			}
			if _, err := p.FreeDomain(sDom); err != nil {
				t.Fatal(err)
			}
		}
	}

	st := p.Stats()
	if st.WrVdrCalls < uint64(workers*requestsPerWorker) {
		t.Errorf("too few wrvdr calls recorded: %d", st.WrVdrCalls)
	}
	// 180 domains were allocated and freed; the process never ran out.
}

// TestIntegrationAllArchitectures runs the same protection scenario on all
// three architecture models.
func TestIntegrationAllArchitectures(t *testing.T) {
	for _, arch := range []Arch{X86, ARM, Power} {
		t.Run(arch.String(), func(t *testing.T) {
			sys := NewSystem(Config{Arch: arch, Cores: 4})
			p := sys.NewProcess(DefaultPolicy())
			th := p.NewThread(0)
			if _, err := th.AllocVDR(3); err != nil {
				t.Fatal(err)
			}
			// Twice the 16-domain hardware capacity everywhere.
			const n = 40
			addrs := make([]Addr, n)
			doms := make([]Domain, n)
			for i := 0; i < n; i++ {
				a, err := th.Mmap(PageSize)
				if err != nil {
					t.Fatal(err)
				}
				addrs[i] = a
				doms[i], _ = p.AllocDomain(false)
				if _, err := p.ProtectRange(th, a, PageSize, doms[i]); err != nil {
					t.Fatal(err)
				}
			}
			for round := 0; round < 3; round++ {
				for i := 0; i < n; i++ {
					if _, err := th.WriteVDR(doms[i], ReadWrite); err != nil {
						t.Fatal(err)
					}
					if err := th.Store(addrs[i]); err != nil {
						t.Fatalf("%v round %d vdom %d: %v", arch, round, doms[i], err)
					}
					if _, err := th.WriteVDR(doms[i], NoAccess); err != nil {
						t.Fatal(err)
					}
					if err := th.Load(addrs[i]); !errors.Is(err, ErrSigsegv) {
						t.Fatalf("%v: closed-domain load = %v", arch, err)
					}
				}
			}
		})
	}
}

// TestIntegrationPowerCapacity shows the 32-domain Power projection holds
// 30 domains per address space without any virtualization machinery.
func TestIntegrationPowerCapacity(t *testing.T) {
	sys := NewSystem(Config{Arch: Power, Cores: 4})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		a, err := th.Mmap(PageSize)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := p.AllocDomain(false)
		if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
			t.Fatal(err)
		}
		if _, err := th.WriteVDR(d, ReadWrite); err != nil {
			t.Fatal(err)
		}
		if err := th.Store(a); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Evictions != 0 || st.VDSSwitches != 0 {
		t.Errorf("Power: machinery engaged below 30 domains: %+v", st)
	}
}

// TestIntegrationPolicyVariants exercises the ablation policies through
// the public API.
func TestIntegrationPolicyVariants(t *testing.T) {
	pols := map[string]Policy{
		"default":   DefaultPolicy(),
		"fast-gate": {SecureGate: false, RangeFlushThresholdPages: 64, DefaultNas: 4},
		"strictLRU": {SecureGate: true, StrictLRU: true, RangeFlushThresholdPages: 64, DefaultNas: 2},
		"noPMD":     {SecureGate: true, NoPMDOpt: true, RangeFlushThresholdPages: 64, DefaultNas: 2},
	}
	for name, pol := range pols {
		t.Run(name, func(t *testing.T) {
			sys := NewSystem(Config{Arch: X86, Cores: 2})
			p := sys.NewProcess(pol)
			th := p.NewThread(0)
			if _, err := th.AllocVDR(0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				a, err := th.Mmap(PageSize)
				if err != nil {
					t.Fatal(err)
				}
				d, _ := p.AllocDomain(false)
				if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
					t.Fatal(err)
				}
				if _, err := th.WriteVDR(d, ReadWrite); err != nil {
					t.Fatal(err)
				}
				if err := th.Store(a); err != nil {
					t.Fatalf("%s: vdom %d: %v", name, d, err)
				}
				if _, err := th.WriteVDR(d, NoAccess); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestIntegrationIsolationMatrix grants a grid of permissions across
// threads and domains and verifies the full access matrix.
func TestIntegrationIsolationMatrix(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 4})
	p := sys.NewProcess(DefaultPolicy())
	const nThreads, nDoms = 3, 6
	threads := make([]*Thread, nThreads)
	for i := range threads {
		threads[i] = p.NewThread(i)
		if _, err := threads[i].AllocVDR(3); err != nil {
			t.Fatal(err)
		}
	}
	addrs := make([]Addr, nDoms)
	doms := make([]Domain, nDoms)
	for j := 0; j < nDoms; j++ {
		a, err := threads[0].Mmap(PageSize)
		if err != nil {
			t.Fatal(err)
		}
		addrs[j] = a
		doms[j], _ = p.AllocDomain(false)
		if _, err := p.ProtectRange(threads[0], a, PageSize, doms[j]); err != nil {
			t.Fatal(err)
		}
	}
	// Permission grid: thread i gets perm (i+j) mod 3 on domain j.
	permOf := func(i, j int) Perm {
		return []Perm{NoAccess, ReadOnly, ReadWrite}[(i+j)%3]
	}
	for i := range threads {
		for j := range doms {
			if _, err := threads[i].WriteVDR(doms[j], permOf(i, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Verify the matrix, twice (second pass hits warm TLB/state).
	for pass := 0; pass < 2; pass++ {
		for i, th := range threads {
			for j := range doms {
				perm := permOf(i, j)
				loadErr := th.Load(addrs[j])
				storeErr := th.Store(addrs[j])
				wantLoad := perm == ReadOnly || perm == ReadWrite
				wantStore := perm == ReadWrite
				if wantLoad != (loadErr == nil) {
					t.Fatalf("pass %d thread %d dom %d perm %v: load err=%v", pass, i, j, perm, loadErr)
				}
				if wantStore != (storeErr == nil) {
					t.Fatalf("pass %d thread %d dom %d perm %v: store err=%v", pass, i, j, perm, storeErr)
				}
				if loadErr != nil && !errors.Is(loadErr, ErrSigsegv) {
					t.Fatalf("unexpected error type: %v", loadErr)
				}
			}
		}
	}
}

// TestIntegrationDeterministicCosts verifies that the same API sequence
// yields identical cycle counts run to run.
func TestIntegrationDeterministicCosts(t *testing.T) {
	run := func() string {
		sys := NewSystem(Config{Arch: X86, Cores: 2})
		p := sys.NewProcess(DefaultPolicy())
		th := p.NewThread(0)
		if _, err := th.AllocVDR(2); err != nil {
			t.Fatal(err)
		}
		var trace string
		for i := 0; i < 20; i++ {
			a, err := th.Mmap(PageSize)
			if err != nil {
				t.Fatal(err)
			}
			d, _ := p.AllocDomain(false)
			if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
				t.Fatal(err)
			}
			c1, err := th.WriteVDR(d, ReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := th.StoreCost(a)
			if err != nil {
				t.Fatal(err)
			}
			trace += fmt.Sprintf("%d/%d,", c1, c2)
		}
		return trace
	}
	if a, b := run(), run(); a != b {
		t.Errorf("cost traces diverged:\n%s\n%s", a, b)
	}
}
