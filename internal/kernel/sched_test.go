package kernel_test

import (
	"testing"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

const pg = pagetable.PageSize

// bootVDom builds a machine + VDom kernel + process + manager for
// scheduler tests that need the core layer (which the in-package kernel
// tests cannot import).
func bootVDom(t *testing.T, cores int) (*kernel.Kernel, *kernel.Process, *core.Manager) {
	t.Helper()
	m := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: cores, TLBCapacity: 256})
	k := kernel.New(kernel.Config{Machine: m, VDomEnabled: true})
	p := k.NewProcess()
	return k, p, core.Attach(p, core.DefaultPolicy())
}

// TestSchedThreadExitWhileResident exercises a thread releasing its VDR
// — leaving its VDS — while it is still the task resident on its core:
// the next dispatch of another thread, and a later re-dispatch of the
// exited thread against the base address space, must both work, and the
// emptied VDS must be reapable.
func TestSchedThreadExitWhileResident(t *testing.T) {
	k, p, mgr := bootVDom(t, 1)
	env := sim.NewEnv()
	sched := kernel.NewSched(env, k)

	t1 := p.NewTask(0)
	t2 := p.NewTask(0)
	const plain = pagetable.VAddr(0x10_0000)
	if _, err := t1.Mmap(plain, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	const guarded = pagetable.VAddr(0x20_0000)
	if _, err := t1.Mmap(guarded, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.VdrAlloc(t1, 2); err != nil {
		t.Fatal(err)
	}
	// Move t1 out of the process's home VDS, so its exit empties a
	// reclaimable one.
	if _, err := mgr.PlaceInNewVDS(t1); err != nil {
		t.Fatal(err)
	}
	if got := len(mgr.VDSes()); got != 2 {
		t.Fatalf("expected 2 VDSes after the spread, have %d", got)
	}
	d, _ := mgr.AllocVdom(false)
	if _, err := mgr.Mprotect(t1, guarded, 4*pg, d); err != nil {
		t.Fatal(err)
	}

	env.Go("t1", func(proc *sim.Proc) {
		// Open the domain and touch it, so t1 is resident in its VDS and
		// is the core's last-dispatched task...
		sched.Run(proc, t1, func() cycles.Cost {
			c, err := mgr.WrVdr(t1, d, core.VPermReadWrite)
			if err != nil {
				t.Errorf("wrvdr: %v", err)
			}
			a, err := t1.Access(guarded, true)
			if err != nil {
				t.Errorf("guarded access: %v", err)
			}
			return c + a
		})
		// ... then exit: the VDR is released while t1 is still resident.
		sched.Run(proc, t1, func() cycles.Cost {
			c, err := mgr.VdrFree(t1)
			if err != nil {
				t.Errorf("vdr_free: %v", err)
			}
			return c
		})
	})
	env.Go("t2", func(proc *sim.Proc) {
		sched.Run(proc, t2, func() cycles.Cost {
			c, err := t2.Access(plain, false)
			if err != nil {
				t.Errorf("t2 access after t1 exit: %v", err)
			}
			return c
		})
	})
	env.Run()

	if got := mgr.VDROf(t1); got != nil {
		t.Fatalf("t1 still has a VDR after exit: %v", got)
	}
	// VdrFree reaps on the way out: only the home VDS remains.
	if got := len(mgr.VDSes()); got != 1 {
		t.Fatalf("the VDS t1 exited from was not reclaimed: %d VDSes remain", got)
	}
	// The exited thread can still run plain bursts on the base address
	// space.
	env2 := sim.NewEnv()
	sched2 := kernel.NewSched(env2, k)
	env2.Go("t1-again", func(proc *sim.Proc) {
		sched2.Run(proc, t1, func() cycles.Cost {
			c, err := t1.Access(plain, true)
			if err != nil {
				t.Errorf("t1 access after its VDS was reaped: %v", err)
			}
			return c
		})
	})
	env2.Run()
}

// TestSchedVDSSwitchUnderContention pins two threads, each in its own
// VDS, onto one capacity-1 core: their bursts serialize (queue wait
// accrues) and every alternation forces the dispatcher to reload the
// other thread's address space, so VDS/pgd switches accumulate.
func TestSchedVDSSwitchUnderContention(t *testing.T) {
	k, p, mgr := bootVDom(t, 1)
	env := sim.NewEnv()
	sched := kernel.NewSched(env, k)

	const rounds = 6
	tasks := make([]*kernel.Task, 2)
	doms := make([]core.VdomID, 2)
	for i := range tasks {
		tasks[i] = p.NewTask(0)
		base := pagetable.VAddr(0x40_0000 + uint64(i)*0x10_0000)
		if _, err := tasks[i].Mmap(base, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.VdrAlloc(tasks[i], 1); err != nil {
			t.Fatal(err)
		}
		doms[i], _ = mgr.AllocVdom(false)
		if _, err := mgr.Mprotect(tasks[i], base, 4*pg, doms[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Separate the threads into distinct VDSes so re-dispatch means a
	// full address-space change, not just a permission update.
	if _, err := mgr.PlaceInNewVDS(tasks[1]); err != nil {
		t.Fatal(err)
	}

	var busy [2]cycles.Cost
	for i := range tasks {
		i := i
		tk := tasks[i]
		base := pagetable.VAddr(0x40_0000 + uint64(i)*0x10_0000)
		env.Go([]string{"a", "b"}[i], func(proc *sim.Proc) {
			for r := 0; r < rounds; r++ {
				busy[i] += sched.Run(proc, tk, func() cycles.Cost {
					c, err := mgr.WrVdr(tk, doms[i], core.VPermReadWrite)
					if err != nil {
						t.Errorf("wrvdr: %v", err)
					}
					a, err := tk.Access(base, true)
					if err != nil {
						t.Errorf("access: %v", err)
					}
					c2, err := mgr.WrVdr(tk, doms[i], core.VPermNone)
					if err != nil {
						t.Errorf("wrvdr close: %v", err)
					}
					return c + a + c2
				})
			}
		})
	}
	makespan := env.Run()

	if sched.QueueWait(0) == 0 {
		t.Error("two threads on one core accrued no queue wait")
	}
	if got := mgr.Stats.VDSSwitches; got == 0 {
		t.Error("alternating threads in distinct VDSes recorded no VDS switches")
	}
	// One core serializes everything: the makespan is exactly the busy
	// cycles, queueing excluded.
	if want := uint64(busy[0] + busy[1]); uint64(makespan) != want {
		t.Errorf("makespan %d != total on-core cycles %d", makespan, want)
	}
	if cur := k.CurrentOn(0); cur != tasks[0] && cur != tasks[1] {
		t.Errorf("core 0 resident task is %v", cur)
	}
}
