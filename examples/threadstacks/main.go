// Threadstacks: the paper's MySQL scenario — a thread-pool server where
// every connection handler's stack lives in a private virtual domain, so a
// compromised handler cannot read or corrupt other handlers' stacks
// (§7.6, MySQL).
package main

import (
	"errors"
	"fmt"
	"log"

	"vdom"
)

const stackPages = 16 // 64 KiB stacks

type handler struct {
	t     *vdom.Thread
	stack vdom.Addr
	dom   vdom.Domain
}

func main() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 8})
	p := sys.NewProcess(vdom.DefaultPolicy())

	// Spin up a pool of connection handlers, each with a protected
	// stack kept open only for its own thread.
	const pool = 24 // more stacks than hardware domains
	handlers := make([]*handler, pool)
	for i := range handlers {
		t := p.NewThread(i % sys.Cores())
		if _, err := t.AllocVDR(4); err != nil {
			log.Fatal(err)
		}
		stack, err := t.Mmap(stackPages * vdom.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		dom, _ := p.AllocDomain(false)
		if _, err := p.ProtectRange(t, stack, stackPages*vdom.PageSize, dom); err != nil {
			log.Fatal(err)
		}
		// The handler keeps full access to its own stack for the whole
		// connection.
		if _, err := t.WriteVDR(dom, vdom.ReadWrite); err != nil {
			log.Fatal(err)
		}
		handlers[i] = &handler{t: t, stack: stack, dom: dom}
	}
	fmt.Printf("%d handlers, each with a private %d-page stack domain\n", pool, stackPages)

	// Every handler works on its own stack without faults...
	for i, h := range handlers {
		if err := h.t.Store(h.stack + vdom.Addr(i%stackPages)*vdom.PageSize); err != nil {
			log.Fatalf("handler %d lost its own stack: %v", i, err)
		}
	}
	fmt.Println("all handlers can use their own stacks")

	// ...but a compromised handler cannot touch a neighbour's stack:
	// return addresses and spilled credentials stay private.
	evil, victim := handlers[3], handlers[17]
	if err := evil.t.Load(victim.stack); errors.Is(err, vdom.ErrSigsegv) {
		fmt.Println("handler 3 reading handler 17's stack: SIGSEGV (blocked)")
	} else {
		log.Fatal("SECURITY HOLE: cross-stack read allowed")
	}
	if err := evil.t.Store(victim.stack + 8*vdom.PageSize); errors.Is(err, vdom.ErrSigsegv) {
		fmt.Println("handler 3 smashing handler 17's stack: SIGSEGV (blocked)")
	} else {
		log.Fatal("SECURITY HOLE: cross-stack write allowed")
	}

	// The in-memory table (MEMORY engine) is a shared domain each
	// handler opens only around engine calls.
	table, err := handlers[0].t.Mmap(64 * vdom.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	tableDom, _ := p.AllocDomain(true) // frequently accessed
	if _, err := p.ProtectRange(handlers[0].t, table, 64*vdom.PageSize, tableDom); err != nil {
		log.Fatal(err)
	}
	h := handlers[5]
	if err := h.t.Load(table); !errors.Is(err, vdom.ErrSigsegv) {
		log.Fatal("engine data readable outside an engine call")
	}
	if _, err := h.t.WriteVDR(tableDom, vdom.ReadWrite); err != nil {
		log.Fatal(err)
	}
	if err := h.t.Store(table); err != nil {
		log.Fatal(err)
	}
	if _, err := h.t.WriteVDR(tableDom, vdom.NoAccess); err != nil {
		log.Fatal(err)
	}
	fmt.Println("MEMORY-engine domain opened only around engine calls")

	st := p.Stats()
	fmt.Printf("stats: %d VDSes for %d threads, %d migrations, %d evictions\n",
		st.VDSAllocs+1, pool, st.Migrations, st.Evictions)
}
