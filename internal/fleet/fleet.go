// Package fleet is the multi-process experiment fleet: a
// coordinator/worker protocol that shards deterministic grid cells
// (experiment table cells, chaos-soak shards) across N worker
// subprocesses over stdin/stdout pipes, and merges their results in
// cell order so every output — rendered tables, metrics snapshots,
// trace bytes — is byte-identical to the in-process pool at any fleet
// width.
//
// The wire format is vdom-fleet/v1: length-prefixed, magic-tagged,
// uvarint-encoded frames (see frame.go and FLEET.md for the spec). The
// coordinator is the robustness headline: a worker that dies mid-cell
// (kill -9, panic, wedge past the per-cell heartbeat timeout) has its
// in-flight cell reassigned to a surviving worker on a deterministic,
// jitter-free exponential backoff schedule with bounded retries; cells
// that fail repeatedly are quarantined and reported in the
// machine-readable fleet report rather than wedging the run. When no
// worker can be spawned at all, the fleet degrades gracefully to the
// in-process pool (internal/par). A seeded transport-fault injector
// (fault.go, modeled on chaos.Pressure) corrupts, truncates,
// duplicates, and delays frames to harden the codec and the recovery
// ladder; the codec answers every malformed input with a typed sentinel,
// never a panic.
//
// The package is deliberately ignorant of what a cell computes: cells
// are opaque (Grid, Index) pairs executed by an Exec callback, so the
// bench layer owns the cell catalog and fleet owns only scheduling,
// transport, and fault tolerance — the orbstack-style control-plane /
// work-plane split ROADMAP item 4 calls for.
package fleet

import (
	"fmt"
	"hash/fnv"

	"vdom/internal/par"
)

// Spec flag bits: the run-wide options a worker must mirror to compute
// a cell bit-identically to the coordinator's in-process pool.
const (
	// FlagQuick selects reduced iteration counts (bench -quick).
	FlagQuick uint32 = 1 << iota
	// FlagMetrics enables the cell's private metrics registry; the
	// result frame then carries its snapshot JSON.
	FlagMetrics
	// FlagTrace enables the cell's private Chrome-trace sink; the result
	// frame then carries its trace JSON.
	FlagTrace
	// FlagRecord enables replayable trace recording inside soak cells
	// (bench -trace-dump).
	FlagRecord
)

// CellSpec identifies one distributable grid cell: which grid, which
// index within it, and the run-wide options the cell's computation
// depends on. Everything a worker needs to reproduce the coordinator's
// in-process execution bit-for-bit travels here — nothing is ambient.
type CellSpec struct {
	// Grid names the cell's grid in the executor's catalog, optionally
	// carrying grid parameters after a colon (e.g. "fig5:X86:65536").
	Grid string
	// Index is the cell's position in the grid; results merge in Index
	// order.
	Index int
	// Seed is the base PRNG seed for seeded grids (chaos soaks).
	Seed uint64
	// Kernel and Arch narrow kernel-parameterized grids; empty means the
	// grid's default.
	Kernel string
	Arch   string
	// Flags carries the run-wide option bits (Flag*).
	Flags uint32
	// Spec is an opaque extension slot (e.g. a scenario spec path);
	// empty today.
	Spec string
}

// Quick reports the FlagQuick bit.
func (s CellSpec) Quick() bool { return s.Flags&FlagQuick != 0 }

// Metrics reports the FlagMetrics bit.
func (s CellSpec) Metrics() bool { return s.Flags&FlagMetrics != 0 }

// Trace reports the FlagTrace bit.
func (s CellSpec) Trace() bool { return s.Flags&FlagTrace != 0 }

// Record reports the FlagRecord bit.
func (s CellSpec) Record() bool { return s.Flags&FlagRecord != 0 }

// CellResult is one computed cell as it travels back to the
// coordinator: the rendered output, the cell's total simulated cycles,
// its observability state as JSON, and an optional grid-specific
// payload (the chaos grids ship their soak outcome and encoded fail
// trace here). Err non-empty means the cell failed in the worker; the
// coordinator retries it like a transport loss.
type CellResult struct {
	// Text is the cell's rendered output.
	Text string
	// Total is the cell's independently measured total simulated cycles
	// (the "bench/total-cycles" contribution).
	Total uint64
	// Metrics is the cell's metrics registry snapshot as JSON (nil when
	// metrics are off).
	Metrics []byte
	// Trace is the cell's Chrome-trace JSON (nil when tracing is off).
	Trace []byte
	// Aux is an opaque grid-specific payload.
	Aux []byte
	// Err is the cell's failure, rendered; empty for a healthy cell.
	Err string
}

// Exec computes one assigned cell. The bench layer implements it over
// its grid catalog; workers run it for assignments, and the coordinator
// runs it directly in degraded (no-subprocess) mode and for quarantined
// cells' best-effort local fill.
type Exec func(spec CellSpec) (CellResult, error)

// digest is the result integrity check carried in every result frame:
// FNV-1a over the cell id and every content field, so a transport fault
// that corrupts a payload byte — yet leaves the frame structurally
// decodable — is still caught and answered with a retry instead of a
// silently wrong merge.
func (r CellResult) digest(id uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(id)
	put(uint64(len(r.Text)))
	h.Write([]byte(r.Text))
	put(r.Total)
	put(uint64(len(r.Metrics)))
	h.Write(r.Metrics)
	put(uint64(len(r.Trace)))
	h.Write(r.Trace)
	put(uint64(len(r.Aux)))
	h.Write(r.Aux)
	put(uint64(len(r.Err)))
	h.Write([]byte(r.Err))
	return h.Sum64()
}

// runGuarded executes one cell with panic isolation: a panicking cell
// becomes a failed CellResult (attributed via par.JobPanic when the
// panic escaped a nested fan-out) instead of a dead worker, so the
// coordinator sees a typed failure and the process lives to take the
// next assignment.
func runGuarded(exec Exec, spec CellSpec) (res CellResult) {
	defer func() {
		if r := recover(); r != nil {
			if jp, ok := r.(par.JobPanic); ok {
				res = CellResult{Err: fmt.Sprintf("cell %s[%d]: panic in job %d: %v", spec.Grid, spec.Index, jp.Index, jp.Value)}
				return
			}
			res = CellResult{Err: fmt.Sprintf("cell %s[%d]: panic: %v", spec.Grid, spec.Index, r)}
		}
	}()
	r, err := exec(spec)
	if err != nil {
		return CellResult{Err: err.Error()}
	}
	return r
}
