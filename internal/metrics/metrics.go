// Package metrics is the unified observability layer: a central registry
// that every simulated-machine layer (hw, tlb, pagetable, mm, kernel,
// core, libmpk, epk, chaos) publishes into, so one experiment run yields
// one machine-readable snapshot instead of five disconnected Stats
// structs.
//
// The registry holds three kinds of data:
//
//   - Named event counters ("tlb/hits", "core/evictions", ...), following
//     the layer/event naming scheme catalogued in OBSERVABILITY.md.
//     Layers either push them live (Add) or are harvested at snapshot
//     time from their existing Stats structs (Set).
//   - Cycle attribution by (layer, operation): every simulated cycle an
//     instrumented code path charges is attributed to exactly one
//     (layer, operation) account, so an experiment's total cycles
//     decompose into a breakdown table — the view the paper argues its
//     case from (§7, Table 3).
//   - Cost histograms (log2 buckets) for domain-activation outcomes
//     (map / evict / switch / migrate, flowchart ①–⑧).
//
// Everything is nil-safe: a nil *Registry (and a nil *Trace, see
// trace.go) no-ops on every method, so instrumented hot paths cost one
// predictable branch and zero allocations when observability is off.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// CycleKey identifies one cycle-attribution account.
type CycleKey struct {
	// Layer is the publishing subsystem (hw, tlb, pagetable, mm, kernel,
	// core, libmpk, epk, chaos, workload).
	Layer string
	// Op is the operation within the layer (e.g. "flush", "wrvdr").
	Op string
}

// histBuckets is the number of log2 histogram buckets: bucket i counts
// observations v with bit length i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 65

type histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [histBuckets]uint64
}

// Registry is the central metrics store. The zero value is not usable;
// call New. A nil *Registry is a valid, free no-op sink.
type Registry struct {
	counters map[string]uint64
	cycles   map[CycleKey]uint64
	total    uint64
	hists    map[string]*histogram
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		cycles:   make(map[CycleKey]uint64),
		hists:    make(map[string]*histogram),
	}
}

// Enabled reports whether the registry collects anything (false on nil).
func (r *Registry) Enabled() bool { return r != nil }

// Add increments the named counter by n.
func (r *Registry) Add(name string, n uint64) {
	if r == nil || n == 0 {
		return
	}
	r.counters[name] += n
}

// Set overwrites the named counter — used when harvesting cumulative
// Stats structs at snapshot time, so repeated snapshots don't double
// count.
func (r *Registry) Set(name string, v uint64) {
	if r == nil {
		return
	}
	r.counters[name] = v
}

// Counter returns the current value of the named counter.
func (r *Registry) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// Attribute charges cyc cycles to the (layer, op) account. The invariant
// instrumented code maintains is that every simulated cycle an experiment
// observes is attributed exactly once, so TotalCycles decomposes without
// residue.
func (r *Registry) Attribute(layer, op string, cyc uint64) {
	if r == nil || cyc == 0 {
		return
	}
	r.cycles[CycleKey{layer, op}] += cyc
	r.total += cyc
}

// TotalCycles returns the sum of all attributed cycles.
func (r *Registry) TotalCycles() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Cycles returns the cycles attributed to one (layer, op) account.
func (r *Registry) Cycles(layer, op string) uint64 {
	if r == nil {
		return 0
	}
	return r.cycles[CycleKey{layer, op}]
}

// LayerCycles returns the cycles attributed to a layer across all of its
// operations.
func (r *Registry) LayerCycles(layer string) uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for k, v := range r.cycles {
		if k.Layer == layer {
			sum += v
		}
	}
	return sum
}

// Observe records one value in the named log2-bucket histogram.
func (r *Registry) Observe(name string, v uint64) {
	if r == nil {
		return
	}
	h := r.hists[name]
	if h == nil {
		h = &histogram{min: ^uint64(0)}
		r.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Reset clears every counter, attribution, and histogram.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.counters = make(map[string]uint64)
	r.cycles = make(map[CycleKey]uint64)
	r.hists = make(map[string]*histogram)
	r.total = 0
}

// Merge folds another registry's counters, cycle attributions, and
// histograms into r with Add semantics. The parallel experiment engine
// uses it to aggregate per-cell registries — each worker publishes into
// its own private registry, and the collector merges them in cell order
// once the fan-out completes, so no registry is ever written from two
// goroutines. Merging is commutative, so the resulting snapshot is
// byte-identical for every worker count. A nil receiver or nil argument
// is a no-op.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for name, v := range o.counters {
		r.counters[name] += v
	}
	for k, v := range o.cycles {
		r.cycles[k] += v
	}
	r.total += o.total
	for name, oh := range o.hists {
		h := r.hists[name]
		if h == nil {
			h = &histogram{min: ^uint64(0)}
			r.hists[name] = h
		}
		h.count += oh.count
		h.sum += oh.sum
		if oh.count > 0 && oh.min < h.min {
			h.min = oh.min
		}
		if oh.max > h.max {
			h.max = oh.max
		}
		for i, c := range oh.buckets {
			h.buckets[i] += c
		}
	}
}

// CycleEntry is one (layer, operation) line of a snapshot's cycle
// breakdown.
type CycleEntry struct {
	Layer  string `json:"layer"`
	Op     string `json:"op"`
	Cycles uint64 `json:"cycles"`
}

// HistBucket is one populated histogram bucket: Count observations were
// at most Le (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistSnapshot summarizes one histogram.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets"`
}

// Snapshot is the stable, diffable export of a registry: counters sorted
// by name (encoding/json sorts map keys), the cycle breakdown sorted by
// (layer, op), and histogram summaries. Two runs of the same seeded
// experiment produce byte-identical snapshots.
type Snapshot struct {
	// Schema identifies the snapshot format.
	Schema string `json:"schema"`
	// TotalCycles is the sum of every attributed cycle; the Cycles
	// entries sum to it exactly.
	TotalCycles uint64 `json:"total_cycles"`
	// Cycles is the (layer, operation) attribution breakdown.
	Cycles []CycleEntry `json:"cycles"`
	// Counters maps metric names to event counts.
	Counters map[string]uint64 `json:"counters"`
	// Histograms maps histogram names to their summaries.
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// SnapshotSchema is the Snapshot.Schema value written by this package.
const SnapshotSchema = "vdom-metrics/v1"

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Schema:     SnapshotSchema,
		Counters:   map[string]uint64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		s.Cycles = []CycleEntry{}
		return s
	}
	s.TotalCycles = r.total
	s.Cycles = make([]CycleEntry, 0, len(r.cycles))
	for k, v := range r.cycles {
		s.Cycles = append(s.Cycles, CycleEntry{Layer: k.Layer, Op: k.Op, Cycles: v})
	}
	sort.Slice(s.Cycles, func(i, j int) bool {
		if s.Cycles[i].Layer != s.Cycles[j].Layer {
			return s.Cycles[i].Layer < s.Cycles[j].Layer
		}
		return s.Cycles[i].Op < s.Cycles[j].Op
	})
	for n, v := range r.counters {
		s.Counters[n] = v
	}
	for n, h := range r.hists {
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count == 0 {
			hs.Min = 0
		}
		le := uint64(0)
		for i, c := range h.buckets {
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			if c > 0 {
				hs.Buckets = append(hs.Buckets, HistBucket{Le: le, Count: c})
			}
		}
		s.Histograms[n] = hs
	}
	return s
}

// LayerTotals sums the snapshot's cycle entries per layer, sorted by
// layer name — the per-layer breakdown experiments report.
func (s *Snapshot) LayerTotals() []CycleEntry {
	sums := map[string]uint64{}
	for _, e := range s.Cycles {
		sums[e.Layer] += e.Cycles
	}
	out := make([]CycleEntry, 0, len(sums))
	for l, v := range sums {
		out = append(out, CycleEntry{Layer: l, Cycles: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}

// WriteJSON renders the snapshot as indented JSON. Output is stable:
// equal snapshots produce identical bytes.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes it as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// DecodeSnapshot parses a snapshot previously rendered by WriteJSON. It
// rejects snapshots of a different schema, so a fleet coordinator never
// silently merges a result frame written by an incompatible worker.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("metrics: decoding snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("metrics: snapshot schema %q, want %q", s.Schema, SnapshotSchema)
	}
	return s, nil
}

// MergeSnapshot folds a decoded snapshot into the registry with the same
// Add semantics as Merge, rebuilding each histogram's log2 buckets from
// their serialized upper bounds. A registry merged from a snapshot is
// indistinguishable from one merged from the live registry the snapshot
// captured — the property the fleet's byte-identical merge rests on: a
// worker process ships its per-cell registry as JSON and the coordinator
// reconstructs it without loss. A nil receiver or nil snapshot no-ops.
func (r *Registry) MergeSnapshot(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for name, v := range s.Counters {
		r.counters[name] += v
	}
	for _, e := range s.Cycles {
		r.cycles[CycleKey{e.Layer, e.Op}] += e.Cycles
	}
	r.total += s.TotalCycles
	for name, hs := range s.Histograms {
		h := r.hists[name]
		if h == nil {
			h = &histogram{min: ^uint64(0)}
			r.hists[name] = h
		}
		h.count += hs.Count
		h.sum += hs.Sum
		if hs.Count > 0 && hs.Min < h.min {
			h.min = hs.Min
		}
		if hs.Max > h.max {
			h.max = hs.Max
		}
		for _, b := range hs.Buckets {
			// The serialized Le of bucket i (i > 0) is 2^i - 1, so the
			// bucket index is the bound's bit length; Le 0 is bucket 0.
			h.buckets[bits.Len64(b.Le)] += b.Count
		}
	}
}

// Source is implemented by layers that can be harvested into a registry.
// The emit callback receives fully-qualified counter names ("layer/event")
// and their cumulative values.
type Source interface {
	EmitMetrics(emit func(name string, v uint64))
}

// Harvest pulls every source's counters into the registry with Set
// semantics (cumulative gauges; safe to call repeatedly).
func (r *Registry) Harvest(sources ...Source) {
	if r == nil {
		return
	}
	for _, src := range sources {
		if src == nil {
			continue
		}
		src.EmitMetrics(r.Set)
	}
}

// Accumulate pulls every source's counters into the registry with Add
// semantics — used when one registry aggregates many short-lived
// sub-experiments (e.g. the Table 4 grid), each with fresh layers.
func (r *Registry) Accumulate(sources ...Source) {
	if r == nil {
		return
	}
	for _, src := range sources {
		if src == nil {
			continue
		}
		src.EmitMetrics(r.Add)
	}
}

// CheckConsistency verifies the snapshot's internal invariants: the cycle
// entries sum to TotalCycles and histogram bucket counts sum to their
// Count. It returns nil when consistent.
func (s *Snapshot) CheckConsistency() error {
	var sum uint64
	for _, e := range s.Cycles {
		sum += e.Cycles
	}
	if sum != s.TotalCycles {
		return fmt.Errorf("metrics: cycle entries sum to %d, total_cycles is %d", sum, s.TotalCycles)
	}
	for n, h := range s.Histograms {
		var c uint64
		for _, b := range h.Buckets {
			c += b.Count
		}
		if c != h.Count {
			return fmt.Errorf("metrics: histogram %q buckets sum to %d, count is %d", n, c, h.Count)
		}
	}
	return nil
}
