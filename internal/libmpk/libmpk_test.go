package libmpk

import (
	"errors"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

const pg = pagetable.PageSize

type fixture struct {
	k    *kernel.Kernel
	proc *kernel.Process
	m    *Manager
	env  *sim.Env
	next pagetable.VAddr
}

func newFixture(t *testing.T, cores int, env *sim.Env) *fixture {
	t.Helper()
	mach := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: cores, TLBCapacity: 4096})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: false})
	proc := k.NewProcess()
	return &fixture{k: k, proc: proc, m: Attach(proc, env), env: env, next: 0x200000000}
}

func (f *fixture) newKeyRegion(t *testing.T, task *kernel.Task, pages int) (Vkey, pagetable.VAddr) {
	t.Helper()
	base := f.next
	f.next += pagetable.VAddr(pages*pg) + 8*pagetable.PMDSize
	if _, err := task.Mmap(base, uint64(pages*pg), true); err != nil {
		t.Fatal(err)
	}
	v, _ := f.m.PkeyAlloc()
	if _, err := f.m.PkeyMprotect(nil, task, base, uint64(pages*pg), v); err != nil {
		t.Fatal(err)
	}
	return v, base
}

func TestProtectGrantRevoke(t *testing.T) {
	f := newFixture(t, 2, nil)
	task := f.proc.NewTask(0)
	v, base := f.newKeyRegion(t, task, 1)

	if _, err := task.Access(base, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("access without grant = %v, want SIGSEGV", err)
	}
	if _, err := f.m.PkeySet(nil, task, v, hw.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(base, false); err != nil {
		t.Fatalf("read failed: %v", err)
	}
	if _, err := task.Access(base, true); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("write with WD = %v, want SIGSEGV", err)
	}
	if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(base, true); err != nil {
		t.Fatalf("write failed: %v", err)
	}
	if _, err := f.m.PkeySet(nil, task, v, hw.PermNone); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(base, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("read after revoke = %v, want SIGSEGV", err)
	}
}

func TestFifteenKeysNoEviction(t *testing.T) {
	f := newFixture(t, 1, nil)
	task := f.proc.NewTask(0)
	for i := 0; i < UsableKeys; i++ {
		v, b := f.newKeyRegion(t, task, 1)
		if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
			t.Fatal(err)
		}
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
	}
	if f.m.Stats.Evictions != 0 {
		t.Errorf("evictions = %d within hardware capacity", f.m.Stats.Evictions)
	}
}

func TestOverflowEvictsLRUReleasedKey(t *testing.T) {
	f := newFixture(t, 1, nil)
	task := f.proc.NewTask(0)
	var keys []Vkey
	var bases []pagetable.VAddr
	for i := 0; i < UsableKeys; i++ {
		v, b := f.newKeyRegion(t, task, 1)
		keys = append(keys, v)
		bases = append(bases, b)
		if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
			t.Fatal(err)
		}
	}
	// Release all; activate one more key: the LRU (first) is evicted.
	for _, v := range keys {
		if _, err := f.m.PkeySet(nil, task, v, hw.PermNone); err != nil {
			t.Fatal(err)
		}
	}
	v, b := f.newKeyRegion(t, task, 1)
	if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", f.m.Stats.Evictions)
	}
	if f.m.Mapped(keys[0]) {
		t.Error("LRU key still mapped after eviction")
	}
	// The evicted key's pages are disabled even if a stale register
	// image would allow them.
	if _, err := task.Access(bases[0], false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("evicted-page access = %v, want SIGSEGV", err)
	}
	// Reactivating the evicted key brings it back (evicting another).
	if _, err := f.m.PkeySet(nil, task, keys[0], hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(bases[0], false); err != nil {
		t.Fatalf("reactivated key unreachable: %v", err)
	}
}

func TestEvictionCostMatchesTable4(t *testing.T) {
	// Table 4: libmpk seq with 2 MiB (512-page) vkeys beyond capacity
	// costs ≈30,600 cycles per activation.
	f := newFixture(t, 1, nil)
	task := f.proc.NewTask(0)
	pmPages := pagetable.PMDSize / pg
	var keys []Vkey
	for i := 0; i < UsableKeys+2; i++ {
		v, _ := f.newKeyRegion(t, task, pmPages)
		keys = append(keys, v)
		if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
			t.Fatal(err)
		}
		if _, err := f.m.PkeySet(nil, task, v, hw.PermNone); err != nil {
			t.Fatal(err)
		}
	}
	// Steady state: every activation evicts a 512-page key and restores
	// another 512-page key.
	c, err := f.m.PkeySet(nil, task, keys[0], hw.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(c)
	if got < 30609*0.75 || got > 30609*1.25 {
		t.Errorf("eviction pkey_set = %.0f cycles, want ≈30609 (Table 4)", got)
	}
}

func TestMappedPkeySetCostMatchesTable4(t *testing.T) {
	// Table 4: libmpk with ≤15 vkeys costs ≈102 cycles per pkey_set.
	f := newFixture(t, 1, nil)
	task := f.proc.NewTask(0)
	v, _ := f.newKeyRegion(t, task, 1)
	if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	c, err := f.m.PkeySet(nil, task, v, hw.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if c < 90 || c > 115 {
		t.Errorf("mapped pkey_set = %d cycles, want ≈102", c)
	}
}

func TestDirectModeErrorsWhenAllKeysHeld(t *testing.T) {
	f := newFixture(t, 1, nil)
	task := f.proc.NewTask(0)
	for i := 0; i < UsableKeys; i++ {
		v, _ := f.newKeyRegion(t, task, 1)
		if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := f.newKeyRegion(t, task, 1)
	if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); !errors.Is(err, ErrNoFreeKey) {
		t.Errorf("err = %v, want ErrNoFreeKey", err)
	}
}

func TestBusyWaitInSimulation(t *testing.T) {
	env := sim.NewEnv()
	f := newFixture(t, 2, env)
	holder := f.proc.NewTask(0)
	waiter := f.proc.NewTask(1)

	var holderKeys []Vkey
	for i := 0; i < UsableKeys; i++ {
		v, _ := f.newKeyRegion(t, holder, 1)
		holderKeys = append(holderKeys, v)
		if _, err := f.m.PkeySet(nil, holder, v, hw.PermReadWrite); err != nil {
			t.Fatal(err)
		}
	}
	newKey, _ := f.newKeyRegion(t, waiter, 1)

	env.Go("holder", func(p *sim.Proc) {
		p.Delay(10_000)
		// Release one key; the waiter can proceed.
		if _, err := f.m.PkeySet(p, holder, holderKeys[0], hw.PermNone); err != nil {
			t.Error(err)
		}
	})
	var waited sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		if _, err := f.m.PkeySet(p, waiter, newKey, hw.PermReadWrite); err != nil {
			t.Error(err)
		}
		waited = p.Now()
	})
	env.Run()
	if waited < 10_000 {
		t.Errorf("waiter proceeded at %d, before any key was released", waited)
	}
	if f.m.Stats.BusyWaits == 0 || f.m.Stats.BusyWaitCycles < 9_000 {
		t.Errorf("busy-wait stats = %+v", f.m.Stats)
	}
}

func TestShootdownHitsAllProcessCores(t *testing.T) {
	f := newFixture(t, 4, nil)
	t0 := f.proc.NewTask(0)
	t3 := f.proc.NewTask(3)
	// Warm t3's TLB on an unprotected page.
	if _, err := t3.Mmap(0x9000000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t3.Access(0x9000000, true); err != nil {
		t.Fatal(err)
	}
	// Drive t0 through an eviction.
	var keys []Vkey
	for i := 0; i < UsableKeys; i++ {
		v, _ := f.newKeyRegion(t, t0, 1)
		keys = append(keys, v)
		if _, err := f.m.PkeySet(nil, t0, v, hw.PermReadWrite); err != nil {
			t.Fatal(err)
		}
		if _, err := f.m.PkeySet(nil, t0, v, hw.PermNone); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := f.newKeyRegion(t, t0, 1)
	if _, err := f.m.PkeySet(nil, t0, v, hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.Shootdowns == 0 {
		t.Fatal("no shootdowns recorded")
	}
	// t3's translations were invalidated by the process-wide flush.
	res := t3.Core().Access(0x9000000, false)
	if res.TLBHit {
		t.Error("remote core's TLB survived the process-wide shootdown")
	}
}

func TestPkeyFree(t *testing.T) {
	f := newFixture(t, 1, nil)
	task := f.proc.NewTask(0)
	v, b := f.newKeyRegion(t, task, 1)
	if _, err := f.m.PkeySet(nil, task, v, hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.PkeyFree(task, v); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.PkeySet(nil, task, v, hw.PermRead); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("pkey_set after free = %v, want ErrUnknownKey", err)
	}
	if _, err := task.Access(b, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("access after free = %v, want SIGSEGV", err)
	}
}

func TestPerThreadPermissionViews(t *testing.T) {
	f := newFixture(t, 2, nil)
	t1, t2 := f.proc.NewTask(0), f.proc.NewTask(1)
	v, b := f.newKeyRegion(t, t1, 1)
	if _, err := f.m.PkeySet(nil, t1, v, hw.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Access(b, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("t2 unpermitted access = %v, want SIGSEGV", err)
	}
	if _, err := f.m.PkeySet(nil, t2, v, hw.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Access(b, false); err != nil {
		t.Errorf("t2 read failed: %v", err)
	}
	if _, err := t2.Access(b, true); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("t2 write with WD = %v, want SIGSEGV", err)
	}
}
