package main

import (
	"flag"
	"io"
	"reflect"
	"testing"
	"time"

	"vdom/internal/fleet"
)

// widthFlagSet mirrors the width-style flags main registers, with the
// same defaults, so the validation sees exactly what flag.Parse builds.
func widthFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("vdom-bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Int("parallel", 8, "")
	fs.Int("shards", 0, "")
	fs.Int("fleet", 0, "")
	fs.Bool("quick", false, "")
	return fs
}

func TestNonpositiveWidthFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"no flags", nil, nil},
		{"positive values", []string{"-parallel", "4", "-shards", "2", "-fleet", "3"}, nil},
		{"defaults untouched", []string{"-quick"}, nil},
		{"explicit zero parallel", []string{"-parallel", "0"}, []string{"parallel"}},
		{"explicit zero shards", []string{"-shards", "0"}, []string{"shards"}},
		{"explicit zero fleet", []string{"-fleet", "0"}, []string{"fleet"}},
		{"negative parallel", []string{"-parallel", "-3"}, []string{"parallel"}},
		{"negative fleet", []string{"-fleet", "-1"}, []string{"fleet"}},
		{"all three nonpositive", []string{"-fleet", "0", "-parallel", "-2", "-shards", "0"},
			[]string{"fleet", "parallel", "shards"}},
		{"mixed good and bad", []string{"-parallel", "4", "-shards", "-1"}, []string{"shards"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fs := widthFlagSet()
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := nonpositiveWidthFlags(fs)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("nonpositiveWidthFlags(%v) = %v, want %v", tc.args, got, tc.want)
			}
		})
	}
}

func TestParseFleetFaults(t *testing.T) {
	cases := []struct {
		in      string
		want    fleet.FaultConfig
		wantErr bool
	}{
		{"", fleet.FaultConfig{}, false},
		{"seed=42,corrupt=0.01,truncate=0.005,duplicate=0.01,delay=0.05",
			fleet.FaultConfig{Seed: 42, Corrupt: 0.01, Truncate: 0.005, Duplicate: 0.01, Delay: 0.05}, false},
		{"delay=0.1,delay-step=5ms",
			fleet.FaultConfig{Delay: 0.1, DelayStep: 5 * time.Millisecond}, false},
		{" seed=7 , corrupt=1 ", fleet.FaultConfig{Seed: 7, Corrupt: 1}, false},
		{"corrupt=1.5", fleet.FaultConfig{}, true},
		{"corrupt=-0.1", fleet.FaultConfig{}, true},
		{"corrupt", fleet.FaultConfig{}, true},
		{"bogus=1", fleet.FaultConfig{}, true},
		{"seed=abc", fleet.FaultConfig{}, true},
		{"delay-step=fast", fleet.FaultConfig{}, true},
	}
	for _, tc := range cases {
		got, err := parseFleetFaults(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseFleetFaults(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFleetFaults(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseFleetFaults(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
