package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Format selects how experiment tables are rendered.
type Format int

const (
	// Text renders aligned human-readable tables (the default).
	Text Format = iota
	// CSV renders machine-readable comma-separated values, one header
	// row per table, with the table title in a leading comment-style
	// row ("# title").
	CSV
)

// ParseFormat converts a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return Text, nil
	case "csv":
		return CSV, nil
	default:
		return Text, fmt.Errorf("bench: unknown format %q (want text or csv)", s)
	}
}

// Table is one experiment's result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Row appends one row; cells beyond the column count are kept (useful for
// free-form notes), missing cells render empty.
func (t *Table) Row(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

// WriteCSV renders the table as CSV with a "# title" prologue row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the table in the options' format.
func (o Options) Render(w io.Writer, t *Table) {
	if o.Format == CSV {
		if err := t.WriteCSV(w); err != nil {
			fmt.Fprintf(w, "# csv error: %v\n", err)
		}
		fmt.Fprintln(w)
		return
	}
	t.WriteText(w)
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// pct formats a ratio as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
