package core

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
)

// SealTag is the reserved VMA tag for memory the trusted API library seals
// with the access-never pdom for the whole process lifetime: VDR pages and
// the API stack (§6.3). It is not a vdom — no VDR permission can ever
// grant access, and only the call gate (kernel-mediated here) reaches it.
const SealTag mm.Tag = ^mm.Tag(0)

// ErrGateViolation reports that the call-gate exit check caught an illegal
// permission-register value (the eax legality check of Figure 4, lines
// 29–31).
var ErrGateViolation = errors.New("core: call gate detected illegal PKRU value")

// Gate models the Intel secure call gate of Figure 4: VDR pages sealed
// under pdom1, the per-core secure sharing page, and the exit-path check
// that defeats control-flow hijacking of wrpkru.
type Gate struct {
	m *Manager
	// vdrPages maps each thread to its sealed VDR page.
	vdrPages map[*kernel.Task]pagetable.VAddr
	nextPage pagetable.VAddr
	// sharePage is the kernel-filled, read-only page holding per-core
	// (cacheline-aligned) pointers to the running thread's VDR.
	sharePage pagetable.VAddr
}

// gateRegion is where the gate's sealed pages live in the simulated
// address space (far away from workload mappings).
const gateRegion = pagetable.VAddr(0x7f0000000000)

// NewGate initializes the gate for the manager's process: it maps the
// secure sharing page and seals it read-only.
func NewGate(m *Manager) (*Gate, error) {
	g := &Gate{
		m:         m,
		vdrPages:  make(map[*kernel.Task]pagetable.VAddr),
		nextPage:  gateRegion + pagetable.PageSize,
		sharePage: gateRegion,
	}
	as := m.proc.AS()
	if _, err := as.Mmap(g.sharePage, pagetable.PageSize, false); err != nil {
		return nil, fmt.Errorf("core: mapping gate share page: %w", err)
	}
	return g, nil
}

// SealVDRPage allocates and seals the thread's VDR page under pdom1. The
// page is locked for the whole process lifetime; untrusted code accessing
// it takes a fatal domain fault.
func (g *Gate) SealVDRPage(task *kernel.Task) (pagetable.VAddr, error) {
	as := g.m.proc.AS()
	page := g.nextPage
	g.nextPage += pagetable.PageSize
	if _, err := as.Mmap(page, pagetable.PageSize, true); err != nil {
		return 0, err
	}
	if _, err := as.SetTag(page, pagetable.PageSize, SealTag); err != nil {
		return 0, err
	}
	g.vdrPages[task] = page
	return page, nil
}

// VDRPage returns the sealed VDR page of the thread.
func (g *Gate) VDRPage(task *kernel.Task) (pagetable.VAddr, bool) {
	p, ok := g.vdrPages[task]
	return p, ok
}

// Enter models lib_entry (Figure 4 lines 1–16): it opens pdom1 in the live
// register — only the trusted library runs with this image — and resolves
// the thread's VDR through the per-core sharing page (lsl + aligned load,
// never a caller-controlled pointer). It returns the saved register value
// the exit path must restore around.
func (g *Gate) Enter(task *kernel.Task) (saved uint64, cost cycles.Cost) {
	core := task.Core()
	saved = core.Perm().Raw()
	var r hw.PermRegister
	r.SetRaw(saved)
	r.Set(uint8(AccessNeverPdom), hw.PermReadWrite)
	core.Perm().SetRaw(r.Raw())
	return saved, g.m.params.GateEntry
}

// Exit models lib_exit (lines 19–32): the caller supplies the eax value to
// load into PKRU (in the benign path, the merged "target vdom bits +
// pdom1 access-disable" value). The gate performs the write and then the
// legality check: if the loaded value leaves pdom1 accessible — the
// signature of a control-flow hijack that skipped the and/or sequence —
// the gate reports ErrGateViolation and the program must terminate.
func (g *Gate) Exit(task *kernel.Task, eax uint64) (cycles.Cost, error) {
	core := task.Core()
	core.Perm().SetRaw(eax)
	cost := g.m.params.GateExit
	var r hw.PermRegister
	r.SetRaw(eax)
	if r.Get(uint8(AccessNeverPdom)) != hw.PermNone {
		return cost, fmt.Errorf("%w: pdom1 left %v", ErrGateViolation,
			r.Get(uint8(AccessNeverPdom)))
	}
	return cost, nil
}

// LegalExitValue builds the correct eax for Exit: the thread's synced
// register image with pdom1 access-disabled.
func (g *Gate) LegalExitValue(task *kernel.Task) uint64 {
	var r hw.PermRegister
	r.SetRaw(task.SavedPerm())
	r.Set(uint8(AccessNeverPdom), hw.PermNone)
	return r.Raw()
}

// ExpectedRegister dynamically constructs the expected PKRU value for a
// sandbox's call-gate check (§7.1): since the domain virtualization
// algorithm does not produce fixed vdom→pdom maps, the sandbox consults
// the shared domain map and rebuilds the legal value from the thread's
// VDR and the current VDS.
func (g *Gate) ExpectedRegister(task *kernel.Task) (uint64, bool) {
	vdr := g.m.vdrs[task]
	if vdr == nil {
		return 0, false
	}
	return task.SavedPerm(), true
}

// ValidateRegister is the sandbox check ❷ of Table 2: it compares a
// proposed register value against the dynamically constructed legal value.
func (g *Gate) ValidateRegister(task *kernel.Task, raw uint64) bool {
	want, ok := g.ExpectedRegister(task)
	return ok && raw == want
}
