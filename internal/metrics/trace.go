package metrics

import (
	"encoding/json"
	"io"
)

// traceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" is a complete span, "i" an instant.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	Ts    uint64            `json:"ts"`
	Dur   uint64            `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// Trace is a timeline sink: it renders the internal/sim event stream and
// core.Tracer decisions as Chrome trace-event JSON, loadable in
// about://tracing or https://ui.perfetto.dev. Timestamps are simulated
// cycles reported as microseconds (1 cycle = 1 µs), so Perfetto's time
// axis reads directly in cycles.
//
// A nil *Trace is a valid no-op sink, mirroring *Registry.
type Trace struct {
	events []traceEvent
}

// NewTrace returns an empty, enabled trace sink.
func NewTrace() *Trace {
	return &Trace{}
}

// Enabled reports whether the trace collects anything (false on nil).
func (t *Trace) Enabled() bool { return t != nil }

// Span records a complete duration event: tid's track shows name from
// start for dur cycles. The signature matches sim.Tracer, so a *Trace
// plugs into sim.Env.SetTracer directly.
func (t *Trace) Span(name string, tid int, start, dur uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: "sim", Ph: "X", Ts: start, Dur: dur, Tid: tid,
	})
}

// Instant records a zero-duration marker on tid's track at ts.
func (t *Trace) Instant(cat, name string, tid int, ts uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", Ts: ts, Tid: tid, Scope: "t",
	})
}

// Decision records a core.Tracer decision (map / evict / switch /
// migrate / vds-alloc / free) as a span of the decision's cost, carrying
// its numeric details (vdom, vds, pdom, cost) as args.
func (t *Trace) Decision(name string, tid int, ts, dur uint64, args map[string]uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: "core", Ph: "X", Ts: ts, Dur: dur, Tid: tid, Args: args,
	})
}

// Append transfers another trace's events to the end of t, preserving
// their order. The parallel experiment engine collects per-cell traces
// (each timestamped on its own cell's cycle clock, exactly as a shared
// sink would record them) and appends them in cell order, so the merged
// trace is byte-identical to a sequential run's. A nil receiver or nil
// argument is a no-op.
func (t *Trace) Append(o *Trace) {
	if t == nil || o == nil {
		return
	}
	t.events = append(t.events, o.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// DecodeTraceJSON parses a trace previously rendered by WriteJSON,
// reconstructing every event in recorded order. Round-tripping a trace
// through WriteJSON and DecodeTraceJSON and appending it to a sink
// yields the same bytes as appending the original — the fleet's result
// frames rely on this to keep merged traces byte-identical.
func DecodeTraceJSON(data []byte) (*Trace, error) {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	return &Trace{events: doc.TraceEvents}, nil
}

// WriteJSON renders the trace as Chrome trace-event JSON. Output is
// stable: two identical seeded runs produce identical bytes.
func (t *Trace) WriteJSON(w io.Writer) error {
	evs := []traceEvent{}
	if t != nil {
		evs = t.events
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
