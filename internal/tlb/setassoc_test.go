package tlb

import (
	"testing"
	"testing/quick"
)

func TestSetAssocBasics(t *testing.T) {
	c := NewSetAssoc(64, 8)
	if c.Capacity() != 512 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	c.Insert(mk(1, 0x40))
	if e, ok := c.Lookup(1, 0x40); !ok || e.Frame != 100 {
		t.Errorf("lookup = (%+v, %v)", e, ok)
	}
	if _, ok := c.Lookup(2, 0x40); ok {
		t.Error("hit under wrong ASID")
	}
	c.FlushPage(1, 0x40)
	if _, ok := c.Lookup(1, 0x40); ok {
		t.Error("flushed entry survives")
	}
}

func TestSetAssocConflictMisses(t *testing.T) {
	// 4 sets × 2 ways: 9 VPNs that all map to set 0 (stride = sets)
	// must thrash despite total capacity 8.
	c := NewSetAssoc(4, 2)
	for i := uint64(0); i < 9; i++ {
		c.Insert(mk(1, i*4)) // all in set 0
	}
	resident := 0
	for i := uint64(0); i < 9; i++ {
		if _, ok := c.Lookup(1, i*4); ok {
			resident++
		}
	}
	if resident != 2 {
		t.Errorf("set-0 residents = %d, want exactly the 2 ways", resident)
	}
	// A fully-associative TLB of the same capacity keeps 8 of them.
	fa := New(8)
	for i := uint64(0); i < 9; i++ {
		fa.Insert(mk(1, i*4))
	}
	if fa.Len() != 8 {
		t.Errorf("fully-associative Len = %d, want 8", fa.Len())
	}
}

func TestSetAssocFlushASIDAndAll(t *testing.T) {
	c := NewSetAssoc(16, 4)
	for vpn := uint64(0); vpn < 30; vpn++ {
		c.Insert(mk(1, vpn))
		c.Insert(mk(2, vpn))
	}
	c.FlushASID(1)
	if c.CountASID(1) != 0 {
		t.Error("ASID 1 survived flush")
	}
	if c.CountASID(2) == 0 {
		t.Error("ASID 2 wiped by ASID 1 flush")
	}
	c.FlushAll()
	if c.Len() != 0 {
		t.Error("entries survived FlushAll")
	}
	c.Insert(mk(3, 7))
	if _, ok := c.Lookup(3, 7); !ok {
		t.Error("insert after FlushAll failed")
	}
}

func TestSetAssocValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {3, 4}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewSetAssoc(bad[0], bad[1])
		}()
	}
}

// Property: the index never exceeds capacity and always agrees with the
// slots under random operations.
func TestSetAssocConsistencyProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		c := NewSetAssoc(8, 2)
		for _, op := range ops {
			asid := ASID(op % 3)
			vpn := uint64(op % 64)
			switch op % 5 {
			case 0, 1:
				c.Insert(mk(asid, vpn))
			case 2:
				if e, ok := c.Lookup(asid, vpn); ok && (e.ASID != asid || e.VPN != vpn) {
					return false
				}
			case 3:
				c.FlushPage(asid, vpn)
			case 4:
				c.FlushASID(asid)
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
