package fleet

import (
	"io"
	"sync"
	"time"

	"vdom/internal/sim"
)

// Transport fault model for the fleet: where chaos.Pressure attacks the
// soak harness's checkpoint IO, FaultConfig attacks the coordinator's
// view of a worker pipe — frames corrupt, truncate, duplicate, and lag
// in flight, the way a loaded host sheds and reorders pipe IO. The
// coordinator must treat every symptom as a torn transport: kill the
// worker, respawn it on the backoff schedule, and reassign its
// in-flight cell, so the merged output stays byte-identical despite
// the noise.
//
// The injector draws from its own seeded PRNG (per worker pipe, fully
// independent of the workload's streams), so enabling faults never
// perturbs what a cell computes — only whether its bytes survive the
// trip.

// faultWindow is the draw granularity: each class is drawn once per
// window of bytes transferred, so a fault schedule depends on how many
// bytes crossed the pipe, never on how the host chunked them into
// reads. Per-read draws would let a stream of tiny heartbeat frames
// multiply the effective fault rate by orders of magnitude whenever a
// cell runs long (each 10-byte heartbeat read rolling the same dice as
// a 4 KiB data chunk), quarantining precisely the slowest cells.
const faultWindow = 4096

// FaultConfig enables the transport fault classes with probabilities
// in [0, 1], each drawn once per 4 KiB transferred. The zero value
// injects nothing.
type FaultConfig struct {
	// Seed drives the PRNG; each worker pipe derives an independent
	// schedule from it, and the same seed replays the same schedule
	// against the same byte stream.
	Seed uint64
	// Corrupt is the probability that the current chunk has one byte
	// flipped, leaving frame structure mostly intact so the digest and
	// structural checks do the catching.
	Corrupt float64
	// Truncate is the probability that the stream shears: half the
	// chunk is delivered, then the pipe reads as closed.
	Truncate float64
	// Duplicate is the probability that a chunk is served twice — the
	// second copy desyncs the frame stream into the magic check.
	Duplicate float64
	// Delay is the probability that delivery stalls briefly (DelayStep
	// per hit), exercising the heartbeat path without real wedges.
	Delay float64
	// DelayStep is the stall per delay hit; zero means 1ms.
	DelayStep time.Duration
}

// enabled reports whether any fault class can fire.
func (c FaultConfig) enabled() bool {
	return c.Corrupt > 0 || c.Truncate > 0 || c.Duplicate > 0 || c.Delay > 0
}

// faultReader wraps one worker pipe's read side with the seeded
// injector. Read runs on a single pump goroutine; only the fired-fault
// counters are shared with the coordinator, so only they take the
// mutex — never across the blocking inner read.
type faultReader struct {
	r       io.Reader
	cfg     FaultConfig
	rng     *sim.Rand
	sheared bool
	pending []byte
	// budget counts transferred bytes toward the next faultWindow
	// crossing (the next draw round).
	budget int
	// mu guards injected, the per-class fired-fault counters the fleet
	// report collects.
	mu       sync.Mutex
	injected map[string]uint64
}

// newFaultReader wraps r; with no fault classes enabled it is a
// transparent passthrough (the PRNG is never drawn).
func newFaultReader(r io.Reader, cfg FaultConfig) *faultReader {
	return &faultReader{
		r:        r,
		cfg:      cfg,
		rng:      sim.NewRand(cfg.Seed),
		injected: make(map[string]uint64),
	}
}

func (f *faultReader) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

func (f *faultReader) fired(class string) {
	f.mu.Lock()
	f.injected[class]++
	f.mu.Unlock()
}

func (f *faultReader) Read(p []byte) (int, error) {
	if f.sheared {
		return 0, io.EOF
	}
	if len(f.pending) > 0 {
		n := copy(p, f.pending)
		f.pending = f.pending[n:]
		return n, nil
	}
	if !f.cfg.enabled() {
		return f.r.Read(p)
	}
	n, err := f.r.Read(p)
	if n > 0 {
		f.budget += n
		for f.budget >= faultWindow {
			f.budget -= faultWindow
			if f.hit(f.cfg.Delay) {
				f.fired("delay")
				step := f.cfg.DelayStep
				if step <= 0 {
					step = time.Millisecond
				}
				time.Sleep(step)
			}
			if f.hit(f.cfg.Truncate) {
				f.fired("truncate")
				f.sheared = true
				half := n / 2
				if half == 0 {
					return 0, io.EOF
				}
				return half, nil
			}
			if f.hit(f.cfg.Corrupt) {
				f.fired("corrupt")
				p[f.rng.Intn(n)] ^= 0x40
			}
			if f.hit(f.cfg.Duplicate) {
				f.fired("duplicate")
				f.pending = append(f.pending, p[:n]...)
			}
		}
	}
	return n, err
}

// counts snapshots the per-class fired-fault counters.
func (f *faultReader) counts() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}
