package replay

import (
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/pagetable"
)

// Recorder captures a domain-op trace by tapping the instrumented layers.
// Attach it to whichever layers the workload uses (a VDom run attaches
// kernel + manager; a libmpk run kernel + libmpk; an EPK run only the EPK
// system), then drive the workload and call Finish.
//
// The simulation is cooperatively scheduled — exactly one simulated
// process runs at a time — so taps fire strictly sequentially and the
// Recorder needs no locking.
type Recorder struct {
	hdr    Header
	events []Event
	clock  uint64

	kern *kernel.Kernel
	mgr  *core.Manager
	lbm  *libmpk.Manager
	esys *epk.System
}

// NewRecorder starts a recording described by hdr (Version is forced to
// FormatVersion).
func NewRecorder(hdr Header) *Recorder {
	hdr.Version = FormatVersion
	// Recordings that attach taps at all tend to collect thousands of
	// events; seeding the buffer skips the first several growth copies.
	return &Recorder{hdr: hdr, events: make([]Event, 0, 1024)}
}

// Len returns the number of events recorded so far.
func (r *Recorder) Len() int { return len(r.events) }

// Clock returns the recording's logical cycle clock: the summed cost of
// every recorded event.
func (r *Recorder) Clock() uint64 { return r.clock }

// add appends one event stamped at the current clock, then advances the
// clock by its cost.
func (r *Recorder) add(e Event) {
	e.Time = r.clock
	r.clock += e.Cost
	r.events = append(r.events, e)
}

// AttachKernel taps the kernel's syscall boundary (mmap/munmap/mprotect,
// accesses, scheduler dispatch).
func (r *Recorder) AttachKernel(k *kernel.Kernel) {
	r.kern = k
	k.SetOpTap(r)
}

// AttachManager taps the VDom core's public API.
func (r *Recorder) AttachManager(m *core.Manager) {
	r.mgr = m
	m.SetAPITap(func(c core.APICall) {
		e := Event{TID: uint64(c.TID), Cost: uint64(c.Cost), Err: CodeOf(c.Err)}
		switch c.Op {
		case core.APIAllocVdom:
			e.Op = OpVdomAlloc
			e.Dom = uint64(c.Vdom)
			if c.Freq {
				e.Flags |= FlagFreq
			}
		case core.APIFreeVdom:
			e.Op = OpVdomFree
			e.Dom = uint64(c.Vdom)
		case core.APIMprotect:
			e.Op = OpVdomMprotect
			e.Addr = uint64(c.Addr)
			e.Len = c.Len
			e.Dom = uint64(c.Vdom)
		case core.APIVdrAlloc:
			e.Op = OpVdrAlloc
			e.Len = uint64(c.Nas)
		case core.APIVdrFree:
			e.Op = OpVdrFree
		case core.APIRdVdr:
			e.Op = OpVdrRead
			e.Dom = uint64(c.Vdom)
			e.Perm = uint8(c.Perm)
		case core.APIWrVdr:
			e.Op = OpVdrWrite
			e.Dom = uint64(c.Vdom)
			e.Perm = uint8(c.Perm)
		case core.APINewVDS:
			e.Op = OpNewVDS
		default:
			return
		}
		r.add(e)
	})
}

// AttachLibmpk taps the libmpk baseline's public API.
func (r *Recorder) AttachLibmpk(m *libmpk.Manager) {
	r.lbm = m
	m.SetTap(func(ev libmpk.TapEvent) {
		e := Event{TID: uint64(ev.TID), Dom: uint64(ev.Vkey), Cost: uint64(ev.Cost), Err: CodeOf(ev.Err)}
		switch ev.Op {
		case libmpk.OpAlloc:
			e.Op = OpPkeyAlloc
		case libmpk.OpFree:
			e.Op = OpPkeyFree
		case libmpk.OpMprotect:
			e.Op = OpPkeyMprotect
			e.Addr = uint64(ev.Addr)
			e.Len = ev.Len
		case libmpk.OpSet:
			e.Op = OpPkeySet
			e.Perm = uint8(ev.Perm)
		default:
			return
		}
		r.add(e)
	})
}

// AttachEPK taps the EPK system's domain switches.
func (r *Recorder) AttachEPK(s *epk.System) {
	r.esys = s
	s.SetTap(func(threadID, domain int, cost cycles.Cost) {
		r.add(Event{Op: OpEpkSwitch, TID: uint64(threadID), Dom: uint64(domain), Cost: uint64(cost)})
	})
}

// TapSyscall implements kernel.OpTap. Only the memory-management calls
// that shape domain state are recorded.
func (r *Recorder) TapSyscall(t *kernel.Task, sc kernel.Syscall, args kernel.SyscallArgs, cost cycles.Cost, err error) {
	e := Event{
		TID:  uint64(t.TID()),
		Addr: uint64(args.Addr),
		Len:  args.Length,
		Cost: uint64(cost),
		Err:  CodeOf(err),
	}
	if args.Write {
		e.Flags |= FlagWrite
	}
	switch sc {
	case kernel.SysMmap:
		e.Op = OpMmap
	case kernel.SysMunmap:
		e.Op = OpMunmap
	case kernel.SysMprotect:
		e.Op = OpMprotect
	default:
		return
	}
	r.add(e)
}

// TapAccess implements kernel.OpTap.
func (r *Recorder) TapAccess(t *kernel.Task, addr pagetable.VAddr, write bool, cost cycles.Cost, err error) {
	e := Event{
		Op:   OpAccess,
		TID:  uint64(t.TID()),
		Addr: uint64(addr),
		Cost: uint64(cost),
		Err:  CodeOf(err),
	}
	if write {
		e.Flags |= FlagWrite
	}
	r.add(e)
}

// TapDispatch implements kernel.OpTap. Zero-cost dispatches are skipped:
// a dispatch costs zero exactly when the task was already current with no
// pending interrupts, i.e. when it mutated nothing.
func (r *Recorder) TapDispatch(t *kernel.Task, cost cycles.Cost) {
	if cost == 0 {
		return
	}
	r.add(Event{Op: OpDispatch, TID: uint64(t.TID()), Cost: uint64(cost)})
}

// Spawn records a task creation. Workloads call it right after NewTask;
// replay re-creates the task and asserts the kernel hands out the same
// tid.
func (r *Recorder) Spawn(t *kernel.Task) {
	r.add(Event{Op: OpSpawn, TID: uint64(t.TID()), Len: uint64(t.CoreID())})
}

// Populate records a demand-paging pre-fault of [addr, addr+length) —
// cost-free address-space setup that replay must repeat to reproduce
// later fault behaviour. vdsTable selects the thread's current VDS table
// over the process shadow table.
func (r *Recorder) Populate(t *kernel.Task, addr pagetable.VAddr, length uint64, vdsTable bool) {
	e := Event{Op: OpPopulate, TID: uint64(t.TID()), Addr: uint64(addr), Len: length}
	if vdsTable {
		e.Flags |= FlagVDSTable
	}
	r.add(e)
}

// Reclaim records a kswapd frame-reclaim call: initiator core, requested
// maximum, frames actually reclaimed, and the charged cycles.
func (r *Recorder) Reclaim(initiatorCore, max, got int, cost cycles.Cost) {
	r.add(Event{Op: OpReclaim, Addr: uint64(initiatorCore), Len: uint64(max), Dom: uint64(got), Cost: uint64(cost)})
}

// Reap records a VDS garbage-collection pass and how many VDSes it freed.
func (r *Recorder) Reap(n int) {
	r.add(Event{Op: OpReap, Dom: uint64(n)})
}

// Finish detaches nothing (taps stay live) but seals the trace: it
// snapshots the end state of every attached layer and returns the
// completed Trace.
func (r *Recorder) Finish() *Trace {
	return &Trace{
		Header: r.hdr,
		Events: r.events,
		End:    EndState(r.clock, r.kern, r.mgr, r.lbm, r.esys),
	}
}

// Partial returns the trace recorded so far truncated to the first n
// events, with no end-state section (replay of a partial trace skips the
// end-state check). The chaos layer uses it to dump the minimal prefix
// that reproduces a soak failure.
func (r *Recorder) Partial(n int) *Trace {
	if n < 0 || n > len(r.events) {
		n = len(r.events)
	}
	return &Trace{Header: r.hdr, Events: r.events[:n:n]}
}
