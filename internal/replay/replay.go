package replay

import (
	"fmt"
	"sort"
	"strings"

	"vdom/internal/backend"
	"vdom/internal/core"
	"vdom/internal/dpti"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
)

// Options configures a replay run.
type Options struct {
	// Metrics, when non-nil, receives the replayed run's full
	// per-(layer, op) cycle attribution, exactly as a live run would.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives Chrome-trace decision spans for the
	// domain-virtualization events of the replayed run.
	Trace *metrics.Trace
	// Setup, when non-nil, runs after the system is booted and before
	// the first event replays. Wrappers use it to attach extra layers
	// the recording had (the chaos package reattaches its injector
	// here).
	Setup func(*System)
}

// System is the freshly booted platform a trace replays against: the
// backend registry's Instance (machine/kernel/process substrate plus the
// kernel kind's domain layer). Fields not used by the trace's kernel
// kind are nil.
type System = backend.Instance

// Divergence describes the first point where a replay stopped matching
// its recording.
type Divergence struct {
	// Index is the position of the mismatching event, or -1 when every
	// event matched but the end state differed.
	Index int
	// Want is the recorded event, Got the replayed one (zero when Index
	// is -1).
	Want, Got Event
	// CycleDelta is the replayed clock minus the recorded clock at the
	// divergence point.
	CycleDelta int64
	// EndDiff lists end-state keys whose values differ, as
	// "key: recorded=X replayed=Y" lines.
	EndDiff []string
}

// String renders the divergence for humans.
func (d *Divergence) String() string {
	if d == nil {
		return "no divergence"
	}
	if d.Index < 0 {
		return fmt.Sprintf("end-state divergence (%d keys): %s",
			len(d.EndDiff), strings.Join(d.EndDiff, "; "))
	}
	return fmt.Sprintf("event %d diverged (cycle delta %+d): recorded {op %s tid %d addr %#x len %d dom %d perm %d flags %#x cost %d err %s} replayed {op %s tid %d addr %#x len %d dom %d perm %d flags %#x cost %d err %s}",
		d.Index, d.CycleDelta,
		d.Want.Op, d.Want.TID, d.Want.Addr, d.Want.Len, d.Want.Dom, d.Want.Perm, d.Want.Flags, d.Want.Cost, d.Want.Err,
		d.Got.Op, d.Got.TID, d.Got.Addr, d.Got.Len, d.Got.Dom, d.Got.Perm, d.Got.Flags, d.Got.Cost, d.Got.Err)
}

// Result is the outcome of one replay.
type Result struct {
	// Header echoes the trace header.
	Header Header
	// Events is the number of events re-executed (the full trace when
	// there was no event divergence).
	Events int
	// Cycles is the replayed run's final cycle clock.
	Cycles uint64
	// End is the replayed system's end state.
	End map[string]uint64
	// Divergence is nil when the replay matched the recording
	// bit-identically.
	Divergence *Divergence
}

// Run boots a system from the trace header, re-executes every event
// against it, and verifies costs, returned ids, permissions, and error
// outcomes event-by-event, then the end state. A structural problem (a
// corrupt trace driving an op at a layer the header's kernel kind does
// not have, or an unknown thread id) returns an error; a well-formed
// trace that behaves differently returns a Result with a Divergence.
func Run(t *Trace, opt Options) (*Result, error) {
	sys, err := Boot(t.Header)
	if err != nil {
		return nil, err
	}
	return replayFrom(t, sys, map[uint64]*kernel.Task{}, 0, 0, opt)
}

// RunTail re-executes t.Events[from:] against an already-running system
// whose clock reads startClock — the tail-recovery path of the crash
// subsystem: after a checkpoint restore, the events recorded since the
// checkpoint are replayed to bring the system back to the crash point.
// tasks maps trace thread ids to the system's live tasks (as returned by
// the snapshot restore). Verification is identical to Run: every tail
// event's cost, ids, and error outcome must match the recording, and the
// trace's end state (when present) must match after the last event.
func RunTail(t *Trace, sys *System, tasks map[uint64]*kernel.Task, startClock uint64, from int, opt Options) (*Result, error) {
	if from < 0 || from > len(t.Events) {
		return nil, fmt.Errorf("%w: tail start %d out of range [0, %d]", ErrBadRecord, from, len(t.Events))
	}
	return replayFrom(t, sys, tasks, startClock, from, opt)
}

// replayFrom is the shared engine of Run and RunTail.
func replayFrom(t *Trace, sys *System, tasks map[uint64]*kernel.Task, startClock uint64, from int, opt Options) (*Result, error) {
	if opt.Setup != nil {
		opt.Setup(sys)
	}
	clock := startClock
	if sys.Kernel != nil {
		sys.Kernel.SetMetrics(opt.Metrics)
	}
	for _, b := range backend.All() {
		if b.Present(sys) {
			b.SetMetrics(sys, opt.Metrics)
		}
	}
	if sys.Manager != nil && opt.Trace != nil {
		tr := opt.Trace
		sys.Manager.SetTracer(func(e core.Event) {
			tr.Decision(e.Kind.String(), e.TID, clock, uint64(e.Cost), map[string]uint64{
				"vdom": uint64(e.Vdom), "vds": uint64(e.VDS), "pdom": uint64(e.Pdom),
			})
		})
	}

	res := &Result{Header: t.Header}
	// task resolves an event's thread id; tid 0 is the nil task some
	// libmpk direct-mode calls legitimately use.
	task := func(e Event, idx int) (*kernel.Task, error) {
		if e.TID == 0 {
			return nil, nil
		}
		tk := tasks[e.TID]
		if tk == nil {
			return nil, fmt.Errorf("%w: event %d: unknown tid %d", ErrBadRecord, idx, e.TID)
		}
		return tk, nil
	}
	for i := from; i < len(t.Events); i++ {
		want := t.Events[i]
		got := Event{TID: want.TID, Op: want.Op, Addr: want.Addr, Len: want.Len, Dom: want.Dom, Perm: want.Perm, Flags: want.Flags}
		var rerr error

		switch want.Op {
		case OpSpawn:
			if sys.Proc == nil {
				return nil, layerErr(i, "kernel", t.Header.Kernel)
			}
			tk := sys.Proc.NewTask(int(want.Len))
			tasks[uint64(tk.TID())] = tk
			got.TID = uint64(tk.TID())
		case OpMmap, OpMunmap, OpMprotect, OpAccess:
			if sys.Proc == nil {
				return nil, layerErr(i, "kernel", t.Header.Kernel)
			}
			tk, err := task(want, i)
			if err != nil {
				return nil, err
			}
			if tk == nil {
				return nil, fmt.Errorf("%w: event %d: %s needs a thread", ErrBadRecord, i, want.Op)
			}
			switch want.Op {
			case OpMmap:
				cost, err := tk.Mmap(pagetable.VAddr(want.Addr), want.Len, want.Flags&FlagWrite != 0)
				got.Cost, rerr = uint64(cost), err
			case OpMunmap:
				cost, err := tk.Munmap(pagetable.VAddr(want.Addr), want.Len)
				got.Cost, rerr = uint64(cost), err
			case OpMprotect:
				cost, err := tk.Mprotect(pagetable.VAddr(want.Addr), want.Len, want.Flags&FlagWrite != 0)
				got.Cost, rerr = uint64(cost), err
			case OpAccess:
				cost, err := tk.Access(pagetable.VAddr(want.Addr), want.Flags&FlagWrite != 0)
				got.Cost, rerr = uint64(cost), err
			}
		case OpDispatch:
			if sys.Kernel == nil {
				return nil, layerErr(i, "kernel", t.Header.Kernel)
			}
			tk, err := task(want, i)
			if err != nil || tk == nil {
				return nil, fmt.Errorf("%w: event %d: dispatch needs a thread (%v)", ErrBadRecord, i, err)
			}
			cost := sys.Kernel.TakePendingInterrupts(tk.CoreID())
			cost += sys.Kernel.Dispatch(tk)
			got.Cost = uint64(cost)
		case OpPopulate:
			if sys.Proc == nil {
				return nil, layerErr(i, "kernel", t.Header.Kernel)
			}
			tk, err := task(want, i)
			if err != nil || tk == nil {
				return nil, fmt.Errorf("%w: event %d: populate needs a thread (%v)", ErrBadRecord, i, err)
			}
			table := sys.Proc.AS().Shadow()
			if want.Flags&FlagVDSTable != 0 {
				if sys.Manager == nil {
					return nil, layerErr(i, "core", t.Header.Kernel)
				}
				vdr := sys.Manager.VDROf(tk)
				if vdr == nil {
					return nil, fmt.Errorf("%w: event %d: populate into VDS table but thread %d has no VDR", ErrBadRecord, i, want.TID)
				}
				table = vdr.Current().Table()
			}
			_, rerr = sys.Proc.AS().Populate(table, pagetable.VAddr(want.Addr), want.Len)
		case OpReclaim:
			if sys.Proc == nil {
				return nil, layerErr(i, "kernel", t.Header.Kernel)
			}
			n, cost := sys.Proc.ReclaimFrames(int(want.Addr), int(want.Len))
			got.Dom, got.Cost = uint64(n), uint64(cost)
		case OpReap:
			if sys.Manager == nil {
				return nil, layerErr(i, "core", t.Header.Kernel)
			}
			got.Dom = uint64(sys.Manager.ReapVDSes())
		case OpVdomAlloc:
			if sys.Manager == nil {
				return nil, layerErr(i, "core", t.Header.Kernel)
			}
			d, cost := sys.Manager.AllocVdom(want.Flags&FlagFreq != 0)
			got.Dom, got.Cost = uint64(d), uint64(cost)
		case OpVdomFree:
			if sys.Manager == nil {
				return nil, layerErr(i, "core", t.Header.Kernel)
			}
			cost, err := sys.Manager.FreeVdom(core.VdomID(want.Dom))
			got.Cost, rerr = uint64(cost), err
		case OpVdomMprotect:
			tk, err := replayTask(sys, tasks, want, i, "core")
			if err != nil {
				return nil, err
			}
			cost, err := sys.Manager.Mprotect(tk, pagetable.VAddr(want.Addr), want.Len, core.VdomID(want.Dom))
			got.Cost, rerr = uint64(cost), err
		case OpVdrAlloc:
			tk, err := replayTask(sys, tasks, want, i, "core")
			if err != nil {
				return nil, err
			}
			cost, err := sys.Manager.VdrAlloc(tk, int(want.Len))
			got.Cost, rerr = uint64(cost), err
		case OpVdrFree:
			tk, err := replayTask(sys, tasks, want, i, "core")
			if err != nil {
				return nil, err
			}
			cost, err := sys.Manager.VdrFree(tk)
			got.Cost, rerr = uint64(cost), err
		case OpVdrRead:
			tk, err := replayTask(sys, tasks, want, i, "core")
			if err != nil {
				return nil, err
			}
			perm, cost, err := sys.Manager.RdVdr(tk, core.VdomID(want.Dom))
			got.Perm, got.Cost, rerr = uint8(perm), uint64(cost), err
		case OpVdrWrite:
			tk, err := replayTask(sys, tasks, want, i, "core")
			if err != nil {
				return nil, err
			}
			cost, err := sys.Manager.WrVdr(tk, core.VdomID(want.Dom), core.VPerm(want.Perm))
			got.Cost, rerr = uint64(cost), err
		case OpNewVDS:
			tk, err := replayTask(sys, tasks, want, i, "core")
			if err != nil {
				return nil, err
			}
			cost, err := sys.Manager.PlaceInNewVDS(tk)
			got.Cost, rerr = uint64(cost), err
		case OpPkeyAlloc:
			if sys.Libmpk == nil {
				return nil, layerErr(i, "libmpk", t.Header.Kernel)
			}
			v, cost := sys.Libmpk.PkeyAlloc()
			got.Dom, got.Cost = uint64(v), uint64(cost)
		case OpPkeyFree:
			tk, err := task(want, i)
			if err != nil {
				return nil, err
			}
			if sys.Libmpk == nil {
				return nil, layerErr(i, "libmpk", t.Header.Kernel)
			}
			cost, err := sys.Libmpk.PkeyFree(tk, libmpk.Vkey(want.Dom))
			got.Cost, rerr = uint64(cost), err
		case OpPkeyMprotect:
			tk, err := task(want, i)
			if err != nil {
				return nil, err
			}
			if sys.Libmpk == nil {
				return nil, layerErr(i, "libmpk", t.Header.Kernel)
			}
			cost, err := sys.Libmpk.PkeyMprotect(nil, tk, pagetable.VAddr(want.Addr), want.Len, libmpk.Vkey(want.Dom))
			got.Cost, rerr = uint64(cost), err
		case OpPkeySet:
			tk, err := task(want, i)
			if err != nil {
				return nil, err
			}
			if sys.Libmpk == nil {
				return nil, layerErr(i, "libmpk", t.Header.Kernel)
			}
			cost, err := sys.Libmpk.PkeySet(nil, tk, libmpk.Vkey(want.Dom), hw.Perm(want.Perm))
			got.Cost, rerr = uint64(cost), err
		case OpEpkSwitch:
			if sys.EPK == nil {
				return nil, layerErr(i, "epk", t.Header.Kernel)
			}
			got.Cost = uint64(sys.EPK.Switch(int(want.TID), int(want.Dom)))
		case OpDptiAlloc:
			if sys.DPTI == nil {
				return nil, layerErr(i, "dpti", t.Header.Kernel)
			}
			d, cost := sys.DPTI.AllocDomain()
			got.Dom, got.Cost = uint64(d), uint64(cost)
		case OpDptiFree:
			tk, err := task(want, i)
			if err != nil {
				return nil, err
			}
			if sys.DPTI == nil {
				return nil, layerErr(i, "dpti", t.Header.Kernel)
			}
			cost, err := sys.DPTI.FreeDomain(tk, dpti.DomainID(want.Dom))
			got.Cost, rerr = uint64(cost), err
		case OpDptiProtect:
			tk, err := task(want, i)
			if err != nil {
				return nil, err
			}
			if sys.DPTI == nil {
				return nil, layerErr(i, "dpti", t.Header.Kernel)
			}
			cost, err := sys.DPTI.Protect(tk, pagetable.VAddr(want.Addr), want.Len, dpti.DomainID(want.Dom))
			got.Cost, rerr = uint64(cost), err
		case OpDptiEnter, OpDptiExit:
			if sys.DPTI == nil {
				return nil, layerErr(i, "dpti", t.Header.Kernel)
			}
			tk, err := task(want, i)
			if err != nil || tk == nil {
				return nil, fmt.Errorf("%w: event %d: %s needs a thread (%v)", ErrBadRecord, i, want.Op, err)
			}
			if want.Op == OpDptiEnter {
				cost, err := sys.DPTI.Enter(tk, dpti.DomainID(want.Dom))
				got.Cost, rerr = uint64(cost), err
			} else {
				cost, err := sys.DPTI.Exit(tk)
				got.Cost, rerr = uint64(cost), err
			}
		default:
			return nil, fmt.Errorf("%w: event %d: op %d", ErrBadRecord, i, want.Op)
		}

		got.Err = CodeOf(rerr)
		got.Time = clock
		clock += got.Cost
		res.Events++
		if got != want {
			res.Cycles = clock
			res.End = EndState(clock, sys)
			res.Divergence = &Divergence{
				Index: i, Want: want, Got: got,
				CycleDelta: int64(got.Time+got.Cost) - int64(want.Time+want.Cost),
			}
			return res, nil
		}
	}

	res.Cycles = clock
	res.End = EndState(clock, sys)
	if t.End != nil {
		if diff := diffEnd(t.End, res.End); len(diff) > 0 {
			res.Divergence = &Divergence{Index: -1, EndDiff: diff}
		}
	}
	return res, nil
}

// replayTask resolves a core-layer event's thread, requiring both the
// manager and a live task.
func replayTask(sys *System, tasks map[uint64]*kernel.Task, e Event, idx int, layer string) (*kernel.Task, error) {
	if sys.Manager == nil {
		return nil, layerErr(idx, layer, "")
	}
	if e.TID == 0 {
		return nil, fmt.Errorf("%w: event %d: %s needs a thread", ErrBadRecord, idx, e.Op)
	}
	tk := tasks[e.TID]
	if tk == nil {
		return nil, fmt.Errorf("%w: event %d: unknown tid %d", ErrBadRecord, idx, e.TID)
	}
	return tk, nil
}

func layerErr(idx int, layer, kind string) error {
	if kind == "" {
		return fmt.Errorf("%w: event %d targets the %s layer, absent in this trace's system", ErrBadRecord, idx, layer)
	}
	return fmt.Errorf("%w: event %d targets the %s layer, absent for kernel kind %q", ErrBadRecord, idx, layer, kind)
}

// Boot builds the platform a header describes: machine, kernel, process,
// and the kernel kind's domain layer, unwired (no metrics, taps, or
// chaos attached). Run uses it internally; the snapshot subsystem uses
// it to rebuild a System skeleton before loading checkpointed state into
// each layer. The kernel kind is resolved through the backend registry,
// so a registered backend replays with no changes here.
func Boot(h Header) (*System, error) {
	b, ok := backend.Get(h.Kernel)
	if !ok {
		return nil, fmt.Errorf("%w: unknown kernel kind %q", ErrBadRecord, h.Kernel)
	}
	spec := SpecFromHeader(h)
	sys := &System{}
	// A standalone cost-model trace (EPK with Cores <= 0) needs no
	// machine; application traces record scheduler dispatches too, so
	// they carry the machine geometry and get the substrate.
	if b.Standalone(spec) {
		if err := b.Attach(sys, spec); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
		return sys, nil
	}
	arch, err := ArchFromName(h.Arch)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	spec.Arch = arch
	if spec.Cores <= 0 {
		return nil, fmt.Errorf("%w: kernel kind %q needs cores > 0", ErrBadRecord, h.Kernel)
	}
	backend.BootSubstrate(sys, spec)
	if err := b.Attach(sys, spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	return sys, nil
}

// SpecFromHeader converts a trace header to the backend boot spec. The
// architecture is left zero — Boot parses it only when a machine is
// actually built, so standalone cost-model traces stay arch-agnostic.
func SpecFromHeader(h Header) backend.Spec {
	return backend.Spec{
		Cores:          h.Cores,
		TLBCap:         h.TLBCap,
		NoASID:         h.Flags&HdrNoASID != 0,
		VDomKernel:     h.Flags&HdrVDomKernel != 0,
		SecureGate:     h.Flags&HdrSecureGate != 0,
		NoPMDOpt:       h.Flags&HdrNoPMDOpt != 0,
		StrictLRU:      h.Flags&HdrStrictLRU != 0,
		FlushThreshold: h.FlushThreshold,
		Nas:            h.Nas,
		Domains:        h.Domains,
		Huge2M:         h.Flags&HdrHugePages != 0,
	}
}

// EndState snapshots the final observable state of a system's attached
// layers: the cycle clock, the kernel's counters, and — through each
// registered backend's EmitEnd hook — the present domain layer's
// counters and digests. Nil layers contribute nothing, so recordings and
// replays of the same kernel kind produce comparable maps.
func EndState(clock uint64, sys *System) map[string]uint64 {
	end := map[string]uint64{"clock": clock}
	emit := func(name string, v uint64) { end[name] = v }
	if sys.Kernel != nil {
		sys.Kernel.EmitMetrics(emit)
	}
	for _, b := range backend.All() {
		if b.Present(sys) {
			b.EmitEnd(sys, emit)
		}
	}
	return end
}

// diffEnd lists keys whose values differ between the recorded and
// replayed end states, in sorted key order.
func diffEnd(want, got map[string]uint64) []string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var out []string
	for _, k := range sortedU64Keys(want) {
		keys[k] = false
		if got[k] != want[k] {
			out = append(out, fmt.Sprintf("%s: recorded=%d replayed=%d", k, want[k], got[k]))
		}
	}
	extra := make([]string, 0)
	for k, pending := range keys {
		if pending {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		out = append(out, fmt.Sprintf("%s: recorded=%d replayed=%d", k, want[k], got[k]))
	}
	return out
}
