// Package tlb models a per-core, ASID-tagged translation lookaside buffer.
//
// ASID tagging is what lets VDom switch page global directories without
// flushing: entries of the previous address space stay resident under their
// own tag and become live again when the core switches back. The model is a
// capacity-bounded cache with clock (second-chance) replacement — enough to
// reproduce the miss behaviour that separates VDom from VM-based and
// shootdown-based approaches, while staying deterministic.
package tlb

import "vdom/internal/pagetable"

// ASID is an address-space identifier (PCID on x86).
type ASID uint16

// Entry is one cached translation.
type Entry struct {
	ASID  ASID
	VPN   uint64
	Frame pagetable.Frame
	// Pdom is the memory-domain tag cached with the translation; the
	// permission-register check happens on every access, even on hits.
	Pdom     pagetable.Pdom
	Writable bool
}

type slot struct {
	entry      Entry
	valid      bool
	referenced bool
}

type key struct {
	asid ASID
	vpn  uint64
}

// Stats counts TLB events since the last ResetStats.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Inserts      uint64
	PageFlushes  uint64
	ASIDFlushes  uint64
	FullFlushes  uint64
	RangeFlushes uint64
	Invalidated  uint64 // entries removed by any flush
}

// Add accumulates another core's stats into s, for machine-wide totals.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.PageFlushes += o.PageFlushes
	s.ASIDFlushes += o.ASIDFlushes
	s.FullFlushes += o.FullFlushes
	s.RangeFlushes += o.RangeFlushes
	s.Invalidated += o.Invalidated
}

// Emit publishes the stats as named metrics counters under the tlb/
// prefix (see OBSERVABILITY.md for the catalogue).
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("tlb/hits", s.Hits)
	emit("tlb/misses", s.Misses)
	emit("tlb/inserts", s.Inserts)
	emit("tlb/flush-page", s.PageFlushes)
	emit("tlb/flush-asid", s.ASIDFlushes)
	emit("tlb/flush-full", s.FullFlushes)
	emit("tlb/flush-range", s.RangeFlushes)
	emit("tlb/invalidated", s.Invalidated)
}

// TLB is one core's translation cache.
type TLB struct {
	slots []slot
	index map[key]int
	hand  int
	stats Stats

	// lastIdx memoizes the slot of the most recent hit (-1 when unset), a
	// host-side fast path that skips the map hash when the same page is hit
	// repeatedly. The memo self-validates against the slot's live content —
	// flushes invalidate the slot and evictions overwrite it, so a stale
	// memo simply fails the content check — and its hit path performs the
	// exact side effects of an indexed hit (reference bit, Hits counter),
	// keeping clock replacement and stats bit-identical.
	lastIdx int
}

// DefaultCapacity approximates a unified second-level TLB.
const DefaultCapacity = 1536

// New returns a TLB with the given entry capacity.
func New(capacity int) *TLB {
	if capacity <= 0 {
		panic("tlb: capacity must be positive")
	}
	return &TLB{
		slots:   make([]slot, capacity),
		index:   make(map[key]int, capacity),
		lastIdx: -1,
	}
}

// Capacity returns the number of entry slots.
func (t *TLB) Capacity() int { return len(t.slots) }

// Len returns the number of valid entries.
func (t *TLB) Len() int { return len(t.index) }

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the event counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Lookup searches for (asid, vpn). A hit refreshes the entry's reference
// bit.
func (t *TLB) Lookup(asid ASID, vpn uint64) (Entry, bool) {
	if i := t.lastIdx; i >= 0 {
		if s := &t.slots[i]; s.valid && s.entry.ASID == asid && s.entry.VPN == vpn {
			s.referenced = true
			t.stats.Hits++
			return s.entry, true
		}
	}
	if i, ok := t.index[key{asid, vpn}]; ok {
		t.slots[i].referenced = true
		t.stats.Hits++
		t.lastIdx = i
		return t.slots[i].entry, true
	}
	t.stats.Misses++
	return Entry{}, false
}

// Insert caches a translation, evicting by clock replacement if full. An
// existing entry for the same (asid, vpn) is overwritten in place.
func (t *TLB) Insert(e Entry) {
	t.stats.Inserts++
	k := key{e.ASID, e.VPN}
	if i, ok := t.index[k]; ok {
		t.slots[i].entry = e
		t.slots[i].referenced = true
		return
	}
	i := t.victim()
	if t.slots[i].valid {
		delete(t.index, key{t.slots[i].entry.ASID, t.slots[i].entry.VPN})
	}
	t.slots[i] = slot{entry: e, valid: true, referenced: true}
	t.index[k] = i
}

// victim finds a free slot or evicts via the clock algorithm.
func (t *TLB) victim() int {
	for {
		s := &t.slots[t.hand]
		i := t.hand
		t.hand = (t.hand + 1) % len(t.slots)
		if !s.valid {
			return i
		}
		if !s.referenced {
			return i
		}
		s.referenced = false
	}
}

// FlushPage invalidates one page of one address space (invlpg/TLBIMVA).
func (t *TLB) FlushPage(asid ASID, vpn uint64) {
	t.stats.PageFlushes++
	if i, ok := t.index[key{asid, vpn}]; ok {
		t.slots[i] = slot{}
		delete(t.index, key{asid, vpn})
		t.stats.Invalidated++
	}
}

// FlushRange invalidates [startVPN, startVPN+pages) of one address space,
// modelling the range-flush instructions §5.5 leans on.
func (t *TLB) FlushRange(asid ASID, startVPN, pages uint64) {
	t.stats.RangeFlushes++
	for vpn := startVPN; vpn < startVPN+pages; vpn++ {
		if i, ok := t.index[key{asid, vpn}]; ok {
			t.slots[i] = slot{}
			delete(t.index, key{asid, vpn})
			t.stats.Invalidated++
		}
	}
}

// FlushASID invalidates every entry of one address space.
func (t *TLB) FlushASID(asid ASID) {
	t.stats.ASIDFlushes++
	for k, i := range t.index {
		if k.asid == asid {
			t.slots[i] = slot{}
			delete(t.index, k)
			t.stats.Invalidated++
		}
	}
}

// FlushAll invalidates the whole TLB.
func (t *TLB) FlushAll() {
	t.stats.FullFlushes++
	t.stats.Invalidated += uint64(len(t.index))
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	t.index = make(map[key]int, len(t.slots))
	t.hand = 0
}

// Each calls fn for every valid entry, in slot order. It is an
// introspection helper for consistency auditors and tests, not a hardware
// operation.
func (t *TLB) Each(fn func(Entry)) {
	for i := range t.slots {
		if t.slots[i].valid {
			fn(t.slots[i].entry)
		}
	}
}

// CountASID returns the number of resident entries tagged with asid.
// It is an introspection helper for tests and experiments, not a hardware
// operation.
func (t *TLB) CountASID(asid ASID) int {
	n := 0
	for k := range t.index {
		if k.asid == asid {
			n++
		}
	}
	return n
}

// Cache is the operation set common to the TLB organizations (fully
// associative with global clock, or set-associative). Hardware cores and
// kernel flush paths operate through it.
type Cache interface {
	Lookup(asid ASID, vpn uint64) (Entry, bool)
	Insert(e Entry)
	FlushPage(asid ASID, vpn uint64)
	FlushRange(asid ASID, startVPN, pages uint64)
	FlushASID(asid ASID)
	FlushAll()
	Len() int
	Capacity() int
	Stats() Stats
	ResetStats()
	CountASID(asid ASID) int
	Each(fn func(Entry))
	// State and LoadState capture and restore the cache image for the
	// checkpoint subsystem (see internal/snapshot). Interposers that
	// embed a Cache inherit them, so snapshots see through wrappers to
	// the underlying hardware state.
	State() CacheState
	LoadState(st CacheState)
}

var (
	_ Cache = (*TLB)(nil)
	_ Cache = (*SetAssoc)(nil)
)
