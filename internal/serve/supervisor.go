package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/par"
	"vdom/internal/sim"
	"vdom/internal/snapshot"
)

// ShardFailure is a worker panic the supervisor isolated: the panic
// value, typed and attributed, instead of a dead process. The shard
// recovers from its checkpoint ring and keeps serving.
type ShardFailure struct {
	// Shard and Op locate the failure.
	Shard int
	Op    int
	// Phase is the supervisor phase that panicked ("step", "drain").
	Phase string
	// Cause is the recovered panic value, unwrapped from par.JobPanic
	// when the panic escaped a parallel fan-out inside the shard.
	Cause any
	// JobIndex is the failing job's index when the panic arrived wrapped
	// as a par.JobPanic, and -1 otherwise.
	JobIndex int
}

// Error renders the failure.
func (f *ShardFailure) Error() string {
	if f.JobIndex >= 0 {
		return fmt.Sprintf("serve: shard %d %s at op %d: panic in job %d: %v", f.Shard, f.Phase, f.Op, f.JobIndex, f.Cause)
	}
	return fmt.Sprintf("serve: shard %d %s at op %d: panic: %v", f.Shard, f.Phase, f.Op, f.Cause)
}

// Supervisor runs one shard of the supervised soak fleet: its own
// SoakRun, checkpoint ring, pressure source, watchdog, and crash
// schedule. All soak stepping happens on the shard's goroutine; the
// health snapshot is the only shared state, guarded by mu so the
// periodic reporter can read it live.
type Supervisor struct {
	cfg   Config
	shard int

	soak     *chaos.SoakRun
	reg      *metrics.Registry // workload metrics (private to the shard)
	serveReg *metrics.Registry // serve-layer metrics (merged after the run)
	ring     *snapshot.Ring
	press    *chaos.Pressure
	wd       *sim.Watchdog
	crashRng *sim.Rand

	nextCrash int
	result    *chaos.SoakResult

	// baseline is the audit of the last known-good state before the
	// current recovery began (see setBaseline). The soak legitimately
	// carries transient staleness between op boundaries — a dropped
	// shootdown IPI leaves TLB entries behind until the next access or
	// flush heals them — and a faithful restore reproduces that in-flight
	// staleness bit-for-bit. The post-recovery audit therefore has to
	// MATCH the pre-crash audit, not be empty: an empty-audit requirement
	// would quarantine a healthy shard whose crash happened to land on a
	// dirty boundary.
	baseline      []string
	baselineValid bool

	mu sync.Mutex
	h  ShardHealth
}

// newSupervisor boots shard `shard`: soak setup, ring, pressure, crash
// schedule, and the pressure-free baseline checkpoint (so the ring
// always holds at least one good entry before any fault can strike).
func newSupervisor(cfg Config, ringDir string, shard int) (*Supervisor, error) {
	s := &Supervisor{
		cfg:      cfg,
		shard:    shard,
		reg:      metrics.New(),
		serveReg: metrics.New(),
	}
	seed := cfg.Seed + uint64(shard)

	soakCfg := cfg.Soak
	soakCfg.Chaos.Seed = seed
	soakCfg.Ops = cfg.OpsPerShard
	soakCfg.Record = true // recovery replays the recorded tail
	soakCfg.Metrics = s.reg
	soakCfg.Trace = nil

	ring, err := snapshot.NewRing(ringDir, fmt.Sprintf("shard%d", shard), cfg.Ring)
	if err != nil {
		return nil, err
	}
	if cfg.RingMaxAge > 0 {
		ring.SetMaxAge(cfg.RingMaxAge)
	}
	s.ring = ring

	pcfg := cfg.Pressure
	if pcfg.Seed == 0 {
		pcfg.Seed = cfg.Seed
	}
	pcfg.Seed += uint64(shard) * 0x9e3779b97f4a7c15
	s.press = chaos.NewPressure(pcfg)

	s.wd = sim.NewWatchdog(cfg.WatchdogThreshold, nil)
	// The crash schedule's PRNG is independent of both the workload's
	// and the injector's streams, so injected crashes never perturb the
	// simulated run — the bit-identity guarantee rests on this.
	s.crashRng = sim.NewRand(seed ^ 0xc2b2ae3d27d4eb4f)
	s.soak = chaos.StartSoak(soakCfg)
	s.h = ShardHealth{Shard: shard, Seed: seed, State: Running, RingCap: cfg.Ring}
	if cfg.CrashEvery > 0 {
		s.nextCrash = s.schedule(0)
	}

	data, err := s.soak.Checkpoint()
	if err != nil {
		return nil, err
	}
	if _, err := s.ring.Append(0, data); err != nil {
		return nil, err
	}
	s.noteAppend(0)
	return s, nil
}

// schedule draws the next crash op: mean CrashEvery ops out, jittered
// within [CrashEvery/2, 3*CrashEvery/2) by the seeded schedule PRNG.
func (s *Supervisor) schedule(op int) int {
	return op + s.cfg.CrashEvery/2 + 1 + s.crashRng.Intn(s.cfg.CrashEvery)
}

// serve is the shard's main loop: step until the op budget, deadline,
// or context ends the run (drain) or quarantine abandons the shard.
func (s *Supervisor) serve(ctx context.Context, deadline time.Time) {
	for tick := 0; ; tick++ {
		if s.state() == Quarantined {
			return
		}
		if ctx.Err() != nil {
			s.drain()
			return
		}
		// The deadline costs a wall-clock read, so poll it every 64 ops.
		if !deadline.IsZero() && tick&63 == 0 && time.Now().After(deadline) {
			s.drain()
			return
		}
		if !s.step(ctx) {
			if s.state() != Quarantined {
				s.drain()
			}
			return
		}
	}
}

// step drives one supervised op: strike a scheduled crash (and recover
// from it) at the op boundary, run the op, feed the watchdog, take the
// cadence checkpoint. A panic anywhere inside is isolated into a
// ShardFailure and answered with a checkpoint recovery.
func (s *Supervisor) step(ctx context.Context) bool {
	op := s.soak.NextOp()
	more := true
	fail := s.guard(op, "step", func() {
		if s.cfg.hook != nil {
			s.cfg.hook(s.shard, op)
		}
		if s.nextCrash > 0 && op == s.nextCrash {
			s.strike(ctx)
			if s.state() == Quarantined {
				return
			}
			s.nextCrash = s.schedule(op)
		}
		more = s.soak.Step()
		if s.wd.Observe(s.soak.ClockCycles()) {
			// Organic stall — no crash was injected, yet the clock froze.
			// Same detector, same recovery path as an injected wedge.
			s.note(func(h *ShardHealth) { h.DetectedByWatchdog++ })
			s.recover(ctx)
		}
		if op%s.cfg.CheckpointEvery == 0 {
			s.checkpoint(op)
		}
	})
	if fail != nil {
		s.serveReg.Add("serve/panic-failures", 1)
		s.note(func(h *ShardHealth) { h.PanicFailures++; h.LastError = fail.Error() })
		s.recover(ctx)
		// Restore + tail replay rewound the shard to the last recorded
		// boundary; a panic at the op boundary (before the op advanced)
		// simply re-runs the op.
		more = s.soak.NextOp() <= s.cfg.OpsPerShard
	}
	s.note(func(h *ShardHealth) { h.Ops = s.soak.NextOp() - 1; h.Clock = s.soak.ClockCycles() })
	return more && s.state() != Quarantined
}

// strike injects the scheduled crash fault, runs detection (watchdog
// for wedging kinds, auditor for silent corruption), and recovers.
func (s *Supervisor) strike(ctx context.Context) {
	kind := s.cfg.CrashKinds[s.crashRng.Intn(len(s.cfg.CrashKinds))]
	// The pre-crash audit is the recovery's yardstick: it must be taken
	// while the system is still healthy, before the fault wrecks it.
	s.setBaseline(s.soak.AuditNow())
	detail := s.soak.Crash(kind)
	s.serveReg.Add("serve/crashes", 1)
	s.serveReg.Add("serve/crash-"+kind.String(), 1)
	if kind == chaos.CrashTornDomainMap {
		// Silent corruption: the cross-layer auditor is the detector.
		// Its findings describe state recovery discards, so they are
		// not folded into the soak result.
		s.soak.AuditNow()
		s.note(func(h *ShardHealth) { h.DetectedByAudit++ })
	} else {
		// The wedged system makes no progress: feed the watchdog the
		// frozen clock until it fires.
		frozen := s.soak.ClockCycles()
		for !s.wd.Fired() {
			s.wd.Observe(frozen)
		}
		s.note(func(h *ShardHealth) { h.DetectedByWatchdog++ })
	}
	s.note(func(h *ShardHealth) { h.Crashes++; h.LastCrash = kind.String() + ": " + detail })
	s.recover(ctx)
}

// setBaseline records the audit of the last known-good state; the
// post-recovery audit must reproduce it exactly (see tryRestore).
func (s *Supervisor) setBaseline(vs []chaos.Violation) {
	s.baseline = auditSet(vs)
	s.baselineValid = true
}

// auditSet renders an audit into a sorted multiset for comparison.
func auditSet(vs []chaos.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

// recover restores the shard from its checkpoint ring, retrying on the
// deterministic backoff schedule and quarantining after MaxRetries
// consecutive failures.
func (s *Supervisor) recover(ctx context.Context) {
	s.setState(Recovering)
	if !s.baselineValid {
		// Panic and organic-stall recoveries reach here without a strike
		// having captured the pre-fault audit. The live system is still
		// standing (the fault was a panic or a wedge, not injected
		// wreckage), so audit it now: for boundary faults this is exactly
		// the state recovery rebuilds; for a mid-op panic it is best
		// effort, like the recovery boundary itself.
		s.setBaseline(s.soak.AuditNow())
	}
	defer func() { s.baselineValid = false }()
	start := time.Now()
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			s.quarantine(fmt.Errorf("%w: shard %d: cancelled mid-recovery: %v", ErrQuarantined, s.shard, ctx.Err()))
			return
		}
		err := s.tryRestore()
		if err == nil {
			ns := uint64(time.Since(start))
			s.wd.Reset()
			s.serveReg.Add("serve/recoveries", 1)
			s.serveReg.Observe("serve/recovery-latency-ns", ns)
			s.note(func(h *ShardHealth) {
				h.Recoveries++
				h.ConsecutiveFailures = 0
				h.LastRecoveryNs = ns
				if ns > h.MaxRecoveryNs {
					h.MaxRecoveryNs = ns
				}
			})
			s.setState(Running)
			return
		}
		s.serveReg.Add("serve/recovery-failures", 1)
		streak := 0
		s.note(func(h *ShardHealth) {
			h.RecoveryFailures++
			h.ConsecutiveFailures++
			h.LastError = err.Error()
			streak = h.ConsecutiveFailures
		})
		if streak >= s.cfg.MaxRetries {
			s.quarantine(fmt.Errorf("%w: shard %d after %d consecutive recovery failures: %v", ErrQuarantined, s.shard, streak, err))
			return
		}
		s.serveReg.Add("serve/retries", 1)
		s.note(func(h *ShardHealth) { h.Retries++ })
		time.Sleep(s.backoff(attempt))
	}
}

// tryRestore performs one recovery attempt: newest decodable ring entry
// (corrupt entries are skipped — the ring fallback), restore + tail
// replay via SoakRun.Recover, then the post-recovery audit. A panic
// inside the attempt is converted to an error so the retry/quarantine
// ladder handles it.
func (s *Supervisor) tryRestore() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: recovery panicked: %v", r)
		}
	}()
	data, entry, skipped, err := s.ring.LatestGood()
	if skipped > 0 {
		s.serveReg.Add("serve/ring-fallbacks", uint64(skipped))
		s.note(func(h *ShardHealth) { h.RingFallbacks += skipped })
	}
	if err != nil {
		return err
	}
	rec, err := s.soak.Recover(data)
	if err != nil {
		return fmt.Errorf("restore from %s: %w", filepath.Base(entry.Path), err)
	}
	// A faithful restore reproduces the pre-crash state exactly —
	// including any transient staleness that was legitimately in flight
	// at the crash boundary (a dropped shootdown IPI's leftovers heal
	// lazily). So the recovered audit must MATCH the pre-crash baseline;
	// any delta in either direction is structural recovery damage.
	got := auditSet(rec.Violations)
	if !slicesEqual(got, s.baseline) {
		return fmt.Errorf("recovered audit diverged from pre-crash baseline: %d violation(s) vs %d expected (first: %s)",
			len(got), len(s.baseline), firstDelta(got, s.baseline))
	}
	if len(got) > 0 {
		s.serveReg.Add("serve/staleness-carried", 1)
	}
	s.note(func(h *ShardHealth) { h.TailEvents += rec.TailEvents; h.RestoredFromOp = entry.Op })
	return nil
}

// slicesEqual compares two sorted string multisets.
func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstDelta names the first element present in exactly one of the two
// sorted multisets, for the failure message.
func firstDelta(got, want []string) string {
	i, j := 0, 0
	for i < len(got) && j < len(want) {
		switch {
		case got[i] == want[j]:
			i++
			j++
		case got[i] < want[j]:
			return "unexpected: " + got[i]
		default:
			return "missing: " + want[j]
		}
	}
	if i < len(got) {
		return "unexpected: " + got[i]
	}
	if j < len(want) {
		return "missing: " + want[j]
	}
	return "none"
}

// backoff is the deterministic, jitter-free retry schedule:
// min(BackoffBase << (attempt-1), BackoffCap).
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt && d < s.cfg.BackoffCap; i++ {
		d <<= 1
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	return d
}

// checkpoint takes the cadence checkpoint through the pressure model:
// a pressure-failed write keeps the ring's older entries; a pressure-
// corrupted write lands on disk to be caught by CRC at recovery time.
func (s *Supervisor) checkpoint(op int) {
	if s.press.FailCheckpointWrite(op) {
		s.serveReg.Add("serve/checkpoint-write-failures", 1)
		s.note(func(h *ShardHealth) { h.CheckpointWriteFails++ })
		return
	}
	data, err := s.soak.Checkpoint()
	if err == nil {
		if s.press.CorruptCheckpoint(op, data) {
			s.serveReg.Add("serve/checkpoint-corruptions", 1)
			s.note(func(h *ShardHealth) { h.CorruptedCheckpoints++ })
		}
		_, err = s.ring.Append(op, data)
	}
	if err != nil {
		s.serveReg.Add("serve/checkpoint-write-failures", 1)
		s.note(func(h *ShardHealth) { h.CheckpointWriteFails++; h.LastError = err.Error() })
		return
	}
	s.noteAppend(op)
}

// noteAppend records a successful ring append in the health snapshot.
func (s *Supervisor) noteAppend(op int) {
	s.serveReg.Add("serve/checkpoint-writes", 1)
	n := s.ring.Len()
	s.note(func(h *ShardHealth) { h.CheckpointWrites++; h.LastCheckpointOp = op; h.RingLen = n })
}

// drain ends the shard gracefully: a final checkpoint (pressure-free —
// it is the entry a restarted service resumes from) and the sealed
// soak result.
func (s *Supervisor) drain() {
	op := s.soak.NextOp() - 1
	fail := s.guard(op, "drain", func() {
		if data, err := s.soak.Checkpoint(); err == nil {
			if _, err := s.ring.Append(op, data); err == nil {
				s.noteAppend(op)
			}
		}
		s.result = s.soak.Finish()
	})
	if fail != nil {
		s.serveReg.Add("serve/panic-failures", 1)
		s.note(func(h *ShardHealth) { h.PanicFailures++; h.LastError = fail.Error() })
	}
	s.setState(Drained)
}

// quarantine abandons the shard, preserving the cause for post-mortem.
func (s *Supervisor) quarantine(err error) {
	s.serveReg.Add("serve/quarantines", 1)
	s.note(func(h *ShardHealth) { h.LastError = err.Error() })
	s.setState(Quarantined)
}

// guard runs f with panic isolation, converting a panic into a typed
// ShardFailure. A par.JobPanic is unwrapped so the failure names the
// exact fan-out index that died, not just the pool that contained it.
func (s *Supervisor) guard(op int, phase string, f func()) (fail *ShardFailure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &ShardFailure{Shard: s.shard, Op: op, Phase: phase, Cause: r, JobIndex: -1}
			if jp, ok := r.(par.JobPanic); ok {
				fail.Cause = jp.Value
				fail.JobIndex = jp.Index
			}
		}
	}()
	f()
	return nil
}

func (s *Supervisor) state() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.State
}

func (s *Supervisor) setState(st State) {
	s.note(func(h *ShardHealth) { h.State = st })
}

// note applies a mutation to the health snapshot under the lock.
func (s *Supervisor) note(f func(*ShardHealth)) {
	s.mu.Lock()
	f(&s.h)
	s.mu.Unlock()
}

// healthSnapshot returns a copy of the shard's live health.
func (s *Supervisor) healthSnapshot() ShardHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h
}
