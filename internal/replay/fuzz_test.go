package replay

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedTrace is a small but representative trace exercising every
// header field, Extra/End maps, and a spread of ops.
func fuzzSeedTrace() *Trace {
	return &Trace{
		Header: Header{
			Version: FormatVersion, Kernel: KernelVDom, Arch: "x86",
			Cores: 4, TLBCap: 64, Seed: 42, Workload: "fuzz",
			ConfigDigest: 7, Flags: HdrVDomKernel | HdrSecureGate,
			FlushThreshold: 64, Nas: 4, Domains: 3,
			Extra: map[string]uint64{"chaos/seed": 9},
		},
		Events: []Event{
			{Time: 0, TID: 1, Op: OpSpawn, Len: 0},
			{Time: 0, TID: 1, Op: OpMmap, Addr: 0x1000, Len: 4096, Flags: FlagWrite, Cost: 900},
			{Time: 900, TID: 1, Op: OpVdomAlloc, Dom: 2, Flags: FlagFreq, Cost: 50},
			{Time: 950, TID: 1, Op: OpVdrWrite, Dom: 2, Perm: 3, Cost: 120, Err: CodeOK},
			{Time: 1070, TID: 1, Op: OpAccess, Addr: 0x1000, Flags: FlagWrite, Cost: 30, Err: CodeSigsegv},
		},
		End: map[string]uint64{"clock": 1100},
	}
}

// FuzzTraceDecode hammers the binary decoder with arbitrary bytes: it
// must never panic (no allocation blow-ups on forged counts, no index
// overruns on truncated records) and must classify every rejection as
// one of the typed format errors. Accepted inputs must re-encode into
// the canonical form, which must decode back to the identical trace.
func FuzzTraceDecode(f *testing.F) {
	f.Add(Encode(fuzzSeedTrace()))
	f.Add(Encode(&Trace{Header: Header{Version: FormatVersion, Kernel: KernelEPK, Arch: "arm", Domains: 2,
		Workload: "tiny"}, Events: []Event{{TID: 3, Op: OpEpkSwitch, Dom: 1, Cost: 400}}}))
	// A partial trace (no end state), as chaos failure dumps are.
	f.Add(Encode(&Trace{Header: Header{Version: FormatVersion, Kernel: KernelLibmpk, Arch: "x86", Cores: 2,
		Workload: "partial"}, Events: []Event{{TID: 1, Op: OpSpawn}}}))
	// Corrupted prefixes of a valid encoding.
	full := Encode(fuzzSeedTrace())
	f.Add(full[:len(full)/2])
	f.Add(full[:4])
	f.Add([]byte("VDTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("Decode returned an untyped error: %v", err)
			}
			return
		}
		// Accepted input: the canonical re-encoding must round-trip.
		enc := Encode(tr)
		tr2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding did not decode: %v", err)
		}
		if !bytes.Equal(enc, Encode(tr2)) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
