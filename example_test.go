package vdom_test

// Runnable godoc examples for the public API; `go doc` and pkg.go.dev
// render these next to the types they illustrate, and `go test` verifies
// their output stays exact (everything in the simulation is
// deterministic).

import (
	"errors"
	"fmt"

	"vdom"
)

// Example shows the library's core loop: protect memory under a virtual
// domain, open it for the duration of one operation, and seal it again.
// Every operation reports its simulated cycle cost; LoadCost/StoreCost
// are the primary access API, with Load/Store as error-only conveniences.
func Example() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 2})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)

	buf, _ := t.Mmap(4 * vdom.PageSize)
	t.AllocVDR(2)

	secret, _ := p.AllocDomain(false)
	p.ProtectRange(t, buf, vdom.PageSize, secret)

	t.WriteVDR(secret, vdom.ReadWrite)
	cost, err := t.StoreCost(buf)
	fmt.Println("open:", err == nil, "charged:", cost > 0)

	t.WriteVDR(secret, vdom.NoAccess)
	_, err = t.LoadCost(buf)
	fmt.Println("sealed:", errors.Is(err, vdom.ErrSigsegv))
	// Output:
	// open: true charged: true
	// sealed: true
}

// ExampleNewSystemWith boots a platform through functional options — the
// error-returning sibling of NewSystem for configs built at run time.
func ExampleNewSystemWith() {
	sys, err := vdom.NewSystemWith(vdom.WithArch(vdom.ARM), vdom.WithCores(8))
	if err != nil {
		panic(err)
	}
	fmt.Println("cores:", sys.Cores())

	_, err = vdom.NewSystemWith(vdom.WithCores(-1))
	fmt.Println("rejected:", err != nil)
	// Output:
	// cores: 8
	// rejected: true
}

// ExampleProcess_NewThreadOn validates thread placement at the API
// boundary, returning a typed error instead of NewThread's panic.
func ExampleProcess_NewThreadOn() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 2})
	p := sys.NewProcess(vdom.DefaultPolicy())

	if _, err := p.NewThreadOn(1); err == nil {
		fmt.Println("core 1: ok")
	}
	var cre *vdom.CoreRangeError
	if _, err := p.NewThreadOn(7); errors.As(err, &cre) {
		fmt.Println("core 7:", cre)
	}
	// Output:
	// core 1: ok
	// core 7: core 7 out of range [0, 2)
}

// ExampleProcess_AllocDomain demonstrates that domains are unlimited: the
// process allocates four times the hardware's 16 domains and uses them all.
func ExampleProcess_AllocDomain() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 2})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)
	t.AllocVDR(4)

	ok := 0
	for i := 0; i < 64; i++ {
		a, _ := t.Mmap(vdom.PageSize)
		d, _ := p.AllocDomain(false)
		p.ProtectRange(t, a, vdom.PageSize, d)
		t.WriteVDR(d, vdom.ReadWrite)
		if t.Store(a) == nil {
			ok++
		}
		t.WriteVDR(d, vdom.NoAccess)
	}
	fmt.Printf("%d/64 domains usable on 16-domain hardware\n", ok)
	// Output:
	// 64/64 domains usable on 16-domain hardware
}

// ExampleThread_WriteVDR shows the permission ladder: no access, read-only
// (write-disable), and full access.
func ExampleThread_WriteVDR() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 1})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)
	t.AllocVDR(2)

	a, _ := t.Mmap(vdom.PageSize)
	d, _ := p.AllocDomain(false)
	p.ProtectRange(t, a, vdom.PageSize, d)

	fmt.Println("AD read :", t.Load(a) == nil)
	t.WriteVDR(d, vdom.ReadOnly)
	fmt.Println("WD read :", t.Load(a) == nil)
	fmt.Println("WD write:", t.Store(a) == nil)
	t.WriteVDR(d, vdom.ReadWrite)
	fmt.Println("FA write:", t.Store(a) == nil)
	// Output:
	// AD read : false
	// WD read : true
	// WD write: false
	// FA write: true
}

// ExampleProcess_Trace streams the domain virtualization algorithm's
// decisions.
func ExampleProcess_Trace() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 1})
	p := sys.NewProcess(vdom.DefaultPolicy())

	var kinds []vdom.EventKind
	p.Trace(func(e vdom.Event) { kinds = append(kinds, e.Kind) })

	t := p.NewThread(0)
	t.AllocVDR(2)
	a, _ := t.Mmap(vdom.PageSize)
	d, _ := p.AllocDomain(false)
	p.ProtectRange(t, a, vdom.PageSize, d)
	t.WriteVDR(d, vdom.ReadWrite)

	for _, k := range kinds {
		fmt.Println(k)
	}
	// Output:
	// vds-alloc
	// map
}

// ExampleSystem_Metrics reads the unified observability layer: per-layer
// cycle attribution that sums exactly to the cycles the system spent.
func ExampleSystem_Metrics() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 2, Metrics: true})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)

	buf, _ := t.Mmap(4 * vdom.PageSize)
	t.AllocVDR(2)
	d, _ := p.AllocDomain(false)
	p.ProtectRange(t, buf, vdom.PageSize, d)
	t.WriteVDR(d, vdom.ReadWrite)
	t.Store(buf)
	t.WriteVDR(d, vdom.NoAccess)

	snap := sys.MetricsSnapshot()
	fmt.Println("consistent:", snap.CheckConsistency() == nil)
	for _, l := range snap.LayerTotals() {
		fmt.Println("layer:", l.Layer)
	}
	// Output:
	// consistent: true
	// layer: core
	// layer: hw
	// layer: kernel
	// layer: pagetable
}
