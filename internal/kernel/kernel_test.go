package kernel

import (
	"errors"
	"fmt"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

const pg = pagetable.PageSize

func boot(t *testing.T, arch cycles.Arch, cores int, vdomOn bool) *Kernel {
	t.Helper()
	m := hw.NewMachine(hw.Config{Arch: arch, NumCores: cores, TLBCapacity: 256})
	return New(Config{Machine: m, VDomEnabled: vdomOn})
}

func TestTaskAccessDemandPaging(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	if _, err := task.Mmap(0x10000, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	cost1, err := task.Access(0x10000, true)
	if err != nil {
		t.Fatal(err)
	}
	cost2, err := task.Access(0x10000, true)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 >= cost1 {
		t.Errorf("warm access %d not cheaper than faulting access %d", cost2, cost1)
	}
}

func TestTaskAccessUnmappedSegfaults(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	task := k.NewProcess().NewTask(0)
	if _, err := task.Access(0xbad000, false); !errors.Is(err, ErrSigsegv) {
		t.Errorf("err = %v, want SIGSEGV", err)
	}
}

func TestTaskWriteToReadOnlySegfaults(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	task := k.NewProcess().NewTask(0)
	if _, err := task.Mmap(0x10000, pg, false); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(0x10000, false); err != nil {
		t.Fatalf("read failed: %v", err)
	}
	if _, err := task.Access(0x10000, true); !errors.Is(err, ErrSigsegv) {
		t.Errorf("write err = %v, want SIGSEGV", err)
	}
}

func TestMprotectUpgradeThenWrite(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	task := k.NewProcess().NewTask(0)
	if _, err := task.Mmap(0x10000, pg, false); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(0x10000, false); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Mprotect(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	// The PTE is still read-only; the write fault must repair it lazily.
	if _, err := task.Access(0x10000, true); err != nil {
		t.Errorf("write after upgrade failed: %v", err)
	}
}

func TestMprotectRevokeStopsOtherThread(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	p := k.NewProcess()
	t1, t2 := p.NewTask(0), p.NewTask(1)
	if _, err := t1.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Access(0x10000, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Mprotect(0x10000, pg, false); err != nil {
		t.Fatal(err)
	}
	// t2's cached translation was shot down; its next write must fault
	// and then SIGSEGV.
	if _, err := t2.Access(0x10000, true); !errors.Is(err, ErrSigsegv) {
		t.Errorf("t2 write after revoke = %v, want SIGSEGV", err)
	}
}

func TestContextSwitchCosts(t *testing.T) {
	// §7.5: the VDom kernel slows switch_mm by 6% on X86 and 7.63% on
	// ARM; a switch to a VDS costs extra metadata maintenance.
	for _, tc := range []struct {
		arch               cycles.Arch
		wantBase, wantVDom float64
	}{
		{cycles.X86, 426, 451.9},
		{cycles.ARM, 1340, 1442.1},
	} {
		vanilla := boot(t, tc.arch, 1, false)
		vk := boot(t, tc.arch, 1, true)
		base := float64(vanilla.SwitchMMCost(nil))
		mod := float64(vk.SwitchMMCost(nil))
		if base < tc.wantBase*0.95 || base > tc.wantBase*1.05 {
			t.Errorf("%v vanilla switch_mm = %.0f, want ≈%.0f", tc.arch, base, tc.wantBase)
		}
		if mod < tc.wantVDom*0.95 || mod > tc.wantVDom*1.05 {
			t.Errorf("%v VDom switch_mm = %.0f, want ≈%.0f", tc.arch, mod, tc.wantVDom)
		}
		// VDS target adds metadata cost (771.7 / 1545.1 in the paper).
		p := vk.NewProcess()
		task := p.NewTask(0)
		task.SetAddressSpace(p.AS().Shadow(), task.ASID(), true)
		vds := float64(vk.SwitchMMCost(task))
		want := map[cycles.Arch]float64{cycles.X86: 771.7, cycles.ARM: 1545.1}[tc.arch]
		if vds < want*0.95 || vds > want*1.05 {
			t.Errorf("%v VDS switch = %.0f, want ≈%.0f", tc.arch, vds, want)
		}
	}
}

func TestDispatchChargesOnlyOnTaskChange(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	t1, t2 := p.NewTask(0), p.NewTask(0)
	if c := k.Dispatch(t1); c == 0 {
		t.Error("first dispatch free")
	}
	if c := k.Dispatch(t1); c != 0 {
		t.Errorf("repeat dispatch cost %d, want 0", c)
	}
	if c := k.Dispatch(t2); c == 0 {
		t.Error("task change dispatch free")
	}
	if k.CurrentOn(0) != t2 {
		t.Error("CurrentOn wrong")
	}
}

func TestSetSavedPermUpdatesLiveRegister(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	k.Dispatch(task)
	task.SetSavedPerm(0x55)
	if got := k.Machine().Core(0).Perm().Raw(); got != 0x55 {
		t.Errorf("live PKRU = %#x, want 0x55", got)
	}
	// A second task's dispatch restores ITS image.
	other := p.NewTask(0)
	other.SetSavedPerm(0xAA) // not current: live register untouched
	if got := k.Machine().Core(0).Perm().Raw(); got != 0x55 {
		t.Errorf("PKRU changed by non-current task: %#x", got)
	}
	k.Dispatch(other)
	if got := k.Machine().Core(0).Perm().Raw(); got != 0xAA&^0 {
		t.Errorf("PKRU after dispatch = %#x, want 0xAA", got)
	}
}

type denyHandler struct{ err error }

func (h denyHandler) HandleDomainFault(*Task, pagetable.VAddr, bool, hw.FaultKind) (cycles.Cost, bool, error) {
	return 10, false, h.err
}

func TestDomainFaultDispatchToHandler(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	if _, err := task.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AS().SetTag(0x10000, pg, 5); err != nil {
		t.Fatal(err)
	}
	// Make the page land in pdom 5 and deny it in the register.
	if _, err := task.Access(0x10000, false); err != nil {
		t.Fatal(err) // resolver defaults tag→pdom0; still accessible
	}
	p.AS().Shadow().SetPdom(0x10000, 5)
	task.Core().TLB().FlushASID(task.ASID())
	task.SetSavedPerm(func() uint64 {
		var r hw.PermRegister
		r.Set(5, hw.PermNone)
		return r.Raw()
	}())

	// Without a handler: SIGSEGV.
	if _, err := task.Access(0x10000, false); !errors.Is(err, ErrSigsegv) {
		t.Fatalf("no-handler fault = %v, want SIGSEGV", err)
	}
	// Handler that declines: SIGSEGV too.
	p.SetFaultHandler(denyHandler{})
	if _, err := task.Access(0x10000, false); !errors.Is(err, ErrSigsegv) {
		t.Errorf("declined fault = %v, want SIGSEGV", err)
	}
	// Handler error propagates.
	boom := fmt.Errorf("boom")
	p.SetFaultHandler(denyHandler{err: boom})
	if _, err := task.Access(0x10000, false); !errors.Is(err, boom) {
		t.Errorf("handler error = %v, want boom", err)
	}
}

type grantHandler struct{ task *Task }

func (h grantHandler) HandleDomainFault(t *Task, addr pagetable.VAddr, write bool, kind hw.FaultKind) (cycles.Cost, bool, error) {
	var r hw.PermRegister
	r.SetRaw(t.SavedPerm())
	r.Set(5, hw.PermReadWrite)
	t.SetSavedPerm(r.Raw())
	return 50, true, nil
}

func TestDomainFaultHandledAndRetried(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	if _, err := task.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(0x10000, false); err != nil {
		t.Fatal(err)
	}
	p.AS().Shadow().SetPdom(0x10000, 5)
	task.Core().TLB().FlushASID(task.ASID())
	task.SetSavedPerm(func() uint64 {
		var r hw.PermRegister
		r.Set(5, hw.PermNone)
		return r.Raw()
	}())
	p.SetFaultHandler(grantHandler{task})
	cost, err := task.Access(0x10000, false)
	if err != nil {
		t.Fatalf("handled fault failed: %v", err)
	}
	if cost < 50 {
		t.Errorf("cost %d does not include handler cost", cost)
	}
}

func TestSyscallFilterBlocks(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	k.RegisterSyscallFilter(func(_ *Task, sc Syscall, _ SyscallArgs) error {
		if sc == SysProcessVMReadv {
			return fmt.Errorf("sandbox: confused deputy")
		}
		return nil
	})
	if _, err := task.Mmap(0x10000, pg, true); err != nil {
		t.Fatalf("unfiltered syscall blocked: %v", err)
	}
	if _, _, err := task.ProcessVMReadv(0x10000); !errors.Is(err, ErrBlocked) {
		t.Errorf("filtered syscall err = %v, want ErrBlocked", err)
	}
}

func TestProcessVMReadvLeaksWithoutFilter(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	if _, err := task.Mmap(0x10000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AS().SetTag(0x10000, pg, 3); err != nil {
		t.Fatal(err)
	}
	// Even with every domain denied in the register, the kernel deputy
	// reads the page — demonstrating the attack Table 2 ❸ must block.
	task.SetSavedPerm(hw.DenyAll())
	if _, _, err := task.ProcessVMReadv(0x10000); err != nil {
		t.Errorf("unfiltered deputy read failed: %v", err)
	}
}

func TestGetTIDCost(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	task := k.NewProcess().NewTask(0)
	tid, cost := task.GetTID()
	if tid != 1 {
		t.Errorf("tid = %d, want 1", tid)
	}
	if cost != k.Params().SyscallReturn {
		t.Errorf("gettid cost = %d, want syscall cost %d", cost, k.Params().SyscallReturn)
	}
}

func TestRunningCores(t *testing.T) {
	k := boot(t, cycles.X86, 4, true)
	p := k.NewProcess()
	p.NewTask(0)
	p.NewTask(2)
	p.NewTask(2)
	s := p.RunningCores()
	if !s.Has(0) || !s.Has(2) || s.Has(1) || s.Has(3) {
		t.Errorf("RunningCores = %b", s)
	}
}

func TestSchedSerializesPerCore(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	p := k.NewProcess()
	env := sim.NewEnv()
	sched := NewSched(env, k)
	// Two tasks on core 0 (serialize), one on core 1 (parallel).
	ta, tb, tc := p.NewTask(0), p.NewTask(0), p.NewTask(1)
	ends := map[*Task]sim.Time{}
	for _, task := range []*Task{ta, tb, tc} {
		task := task
		env.Go("t", func(pr *sim.Proc) {
			sched.Run(pr, task, func() cycles.Cost { return 1000 })
			ends[task] = pr.Now()
		})
	}
	env.Run()
	// Core 1's task finishes with only dispatch overhead; core 0's
	// second task waits for the first.
	if len(ends) != 3 {
		t.Fatalf("ends = %v", ends)
	}
	if ends[tc] >= ends[tb] {
		t.Errorf("parallel task (%d) not faster than queued task (%d)", ends[tc], ends[tb])
	}
	if sched.QueueWait(0) == 0 {
		t.Error("no queueing recorded on oversubscribed core")
	}
	if sched.QueueWait(1) != 0 {
		t.Error("queueing recorded on idle core")
	}
}

func TestSchedRunReturnsCost(t *testing.T) {
	k := boot(t, cycles.X86, 1, true)
	p := k.NewProcess()
	env := sim.NewEnv()
	sched := NewSched(env, k)
	task := p.NewTask(0)
	var got cycles.Cost
	env.Go("t", func(pr *sim.Proc) {
		got = sched.Run(pr, task, func() cycles.Cost { return 500 })
	})
	env.Run()
	if got < 500 {
		t.Errorf("burst cost %d < body cost", got)
	}
}

func TestReclaimFramesRefault(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	p := k.NewProcess()
	task := p.NewTask(0)
	if _, err := task.Mmap(0x10000, 8*pg, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := task.Access(0x10000+pagetable.VAddr(i)*pg, true); err != nil {
			t.Fatal(err)
		}
	}
	if p.AS().Shadow().Present() != 8 {
		t.Fatalf("present = %d", p.AS().Shadow().Present())
	}
	n, cost := p.ReclaimFrames(0, 5)
	if n != 5 || cost == 0 {
		t.Fatalf("Reclaim = (%d, %d), want 5 frames at non-zero cost", n, cost)
	}
	if got := p.AS().Shadow().Present(); got != 3 {
		t.Errorf("present after reclaim = %d, want 3", got)
	}
	// Everything still usable: reclaimed pages demand-fault back in.
	for i := 0; i < 8; i++ {
		if _, err := task.Access(0x10000+pagetable.VAddr(i)*pg, true); err != nil {
			t.Fatalf("refault page %d: %v", i, err)
		}
	}
	// Reclaim on an empty set is a no-op.
	p2 := k.NewProcess()
	p2.NewTask(1)
	if n, c := p2.ReclaimFrames(1, 10); n != 0 || c != 0 {
		t.Errorf("empty reclaim = (%d, %d)", n, c)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	if !k.VDomEnabled() {
		t.Error("VDomEnabled false on VDom kernel")
	}
	p := k.NewProcess()
	if p.PID() == 0 || p.Kernel() != k {
		t.Error("process accessors wrong")
	}
	task := p.NewTask(1)
	if task.TID() != 1 || task.Process() != p || task.Table() != p.AS().Shadow() {
		t.Error("task accessors wrong")
	}
	if len(p.Tasks()) != 1 || p.Tasks()[0] != task {
		t.Error("Tasks() wrong")
	}
	env := sim.NewEnv()
	s := NewSched(env, k)
	if s.Env() != env || s.Kernel() != k {
		t.Error("sched accessors wrong")
	}
	for sc, want := range map[Syscall]string{
		SysMmap: "mmap", SysMunmap: "munmap", SysMprotect: "mprotect",
		SysPkeyMprotect: "pkey_mprotect", SysProcessVMReadv: "process_vm_readv",
		SysGetTID: "gettid", Syscall(99): "Syscall(99)",
	} {
		if sc.String() != want {
			t.Errorf("%d.String() = %q, want %q", sc, sc.String(), want)
		}
	}
}

func TestMunmapSyscall(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	p := k.NewProcess()
	t1, t2 := p.NewTask(0), p.NewTask(1)
	if _, err := t1.Mmap(0x10000, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	// Warm both threads' translations; munmap must shoot them down.
	if _, err := t1.Access(0x10000, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Access(0x10000, true); err != nil {
		t.Fatal(err)
	}
	cost, err := t1.Munmap(0x10000, 4*pg)
	if err != nil {
		t.Fatal(err)
	}
	if cost < k.Params().SyscallReturn {
		t.Errorf("munmap cost %d below a syscall", cost)
	}
	for _, task := range []*Task{t1, t2} {
		if _, err := task.Access(0x10000, false); !errors.Is(err, ErrSigsegv) {
			t.Errorf("task %d access after munmap = %v", task.TID(), err)
		}
	}
	// Filtered munmap is blocked.
	k.RegisterSyscallFilter(func(_ *Task, sc Syscall, _ SyscallArgs) error {
		if sc == SysMunmap {
			return errors.New("sealed")
		}
		return nil
	})
	if _, err := t1.Mmap(0x90000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Munmap(0x90000, pg); !errors.Is(err, ErrBlocked) {
		t.Errorf("filtered munmap = %v, want ErrBlocked", err)
	}
}

func TestNewKernelNilMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(nil machine) did not panic")
		}
	}()
	New(Config{})
}

func TestPendingInterruptsViaSched(t *testing.T) {
	k := boot(t, cycles.X86, 2, true)
	p := k.NewProcess()
	env := sim.NewEnv()
	s := NewSched(env, k)
	task := p.NewTask(1)
	k.AddPendingInterrupt(1, 5_000)
	var burst cycles.Cost
	env.Go("t", func(pr *sim.Proc) {
		burst = s.Run(pr, task, func() cycles.Cost { return 100 })
	})
	env.Run()
	if burst < 5_100 {
		t.Errorf("burst %d did not absorb the pending interrupt", burst)
	}
}
