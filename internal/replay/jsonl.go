package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonHeader is the first JSONL line: the format tag plus the header.
type jsonHeader struct {
	Format         string            `json:"format"`
	Kernel         string            `json:"kernel"`
	Arch           string            `json:"arch"`
	Cores          int               `json:"cores,omitempty"`
	TLBCap         int               `json:"tlb_cap,omitempty"`
	Seed           uint64            `json:"seed"`
	Workload       string            `json:"workload"`
	ConfigDigest   uint64            `json:"config_digest"`
	Flags          uint32            `json:"flags,omitempty"`
	FlushThreshold uint64            `json:"flush_threshold,omitempty"`
	Nas            int               `json:"nas,omitempty"`
	Domains        int               `json:"domains,omitempty"`
	Extra          map[string]uint64 `json:"extra,omitempty"`
}

// jsonEvent is one JSONL event line. Fields are omitted when zero so a
// line diff highlights only the fields an op actually uses.
type jsonEvent struct {
	Time  uint64 `json:"t"`
	TID   uint64 `json:"tid,omitempty"`
	Op    string `json:"op"`
	Addr  uint64 `json:"addr,omitempty"`
	Len   uint64 `json:"len,omitempty"`
	Dom   uint64 `json:"dom,omitempty"`
	Perm  uint8  `json:"perm,omitempty"`
	Flags uint8  `json:"flags,omitempty"`
	Cost  uint64 `json:"cost,omitempty"`
	Err   string `json:"err,omitempty"`
}

// jsonEnd is the final JSONL line carrying the end-state map.
type jsonEnd struct {
	End map[string]uint64 `json:"end"`
}

// WriteJSONL writes the trace in the line-oriented JSON form: one header
// line, one line per event, and (when present) one end-state line. The
// output diffs cleanly line-by-line between two recordings.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := t.Header
	if err := enc.Encode(jsonHeader{
		Format:         FormatName,
		Kernel:         h.Kernel,
		Arch:           h.Arch,
		Cores:          h.Cores,
		TLBCap:         h.TLBCap,
		Seed:           h.Seed,
		Workload:       h.Workload,
		ConfigDigest:   h.ConfigDigest,
		Flags:          h.Flags,
		FlushThreshold: h.FlushThreshold,
		Nas:            h.Nas,
		Domains:        h.Domains,
		Extra:          h.Extra,
	}); err != nil {
		return err
	}
	for _, e := range t.Events {
		je := jsonEvent{
			Time: e.Time, TID: e.TID, Op: e.Op.String(),
			Addr: e.Addr, Len: e.Len, Dom: e.Dom,
			Perm: e.Perm, Flags: e.Flags, Cost: e.Cost,
		}
		if e.Err != CodeOK {
			je.Err = e.Err.String()
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	if t.End != nil {
		if err := enc.Encode(jsonEnd{End: t.End}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses the JSONL form back into a Trace. It accepts exactly
// what WriteJSONL emits; malformed lines yield ErrBadRecord-wrapped
// errors.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, ErrTruncated
	}
	var jh jsonHeader
	if err := json.Unmarshal(sc.Bytes(), &jh); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadRecord, err)
	}
	if jh.Format != FormatName {
		return nil, fmt.Errorf("%w: format %q", ErrBadVersion, jh.Format)
	}
	t := &Trace{Header: Header{
		Version:        FormatVersion,
		Kernel:         jh.Kernel,
		Arch:           jh.Arch,
		Cores:          jh.Cores,
		TLBCap:         jh.TLBCap,
		Seed:           jh.Seed,
		Workload:       jh.Workload,
		ConfigDigest:   jh.ConfigDigest,
		Flags:          jh.Flags,
		FlushThreshold: jh.FlushThreshold,
		Nas:            jh.Nas,
		Domains:        jh.Domains,
		Extra:          jh.Extra,
	}}
	line := 1
	for sc.Scan() {
		line++
		// Peek for the end-state line: it has an "end" key and no "op".
		var je jsonEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadRecord, line, err)
		}
		if je.Op == "" {
			var end jsonEnd
			if err := json.Unmarshal(sc.Bytes(), &end); err != nil || end.End == nil {
				return nil, fmt.Errorf("%w: line %d: neither event nor end state", ErrBadRecord, line)
			}
			t.End = end.End
			if sc.Scan() {
				return nil, fmt.Errorf("%w: line %d: content after end state", ErrBadRecord, line+1)
			}
			break
		}
		op, ok := opFromName(je.Op)
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown op %q", ErrBadRecord, line, je.Op)
		}
		e := Event{
			Time: je.Time, TID: je.TID, Op: op,
			Addr: je.Addr, Len: je.Len, Dom: je.Dom,
			Perm: je.Perm, Flags: je.Flags, Cost: je.Cost,
		}
		if je.Err != "" {
			e.Err = errCodeFromName(je.Err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// errCodeFromName inverts ErrCode.String for the JSONL decoder.
func errCodeFromName(s string) ErrCode {
	for c := CodeOK; c <= codeMax; c++ {
		if c.String() == s {
			return c
		}
	}
	return CodeOther
}
