package kernel_test

import (
	"errors"
	"testing"

	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/mm"
	"vdom/internal/tlb"
)

func bootKernel(t *testing.T) (*kernel.Kernel, *kernel.Task) {
	t.Helper()
	m := hw.NewMachine(hw.Config{NumCores: 2})
	k := kernel.New(kernel.Config{Machine: m, VDomEnabled: true})
	return k, k.NewProcess().NewTask(0)
}

// Every syscall-layer failure must surface a typed sentinel checkable
// with errors.Is, never a bare string error.

func TestMmapOverlapTyped(t *testing.T) {
	_, task := bootKernel(t)
	if _, err := task.Mmap(0x1000_0000, 8*4096, true); err != nil {
		t.Fatal(err)
	}
	_, err := task.Mmap(0x1000_0000+4*4096, 8*4096, true)
	if !errors.Is(err, mm.ErrOverlap) {
		t.Fatalf("overlapping mmap returned %v, want mm.ErrOverlap", err)
	}
}

func TestMunmapBadRangeTyped(t *testing.T) {
	_, task := bootKernel(t)
	_, err := task.Munmap(0x2000_0123, 4096) // misaligned (EINVAL)
	if !errors.Is(err, mm.ErrBadRange) {
		t.Fatalf("misaligned munmap returned %v, want mm.ErrBadRange", err)
	}
	// POSIX munmap of an unmapped-but-valid range succeeds silently.
	if _, err := task.Munmap(0x2000_0000, 4096); err != nil {
		t.Fatalf("munmap of unmapped range returned %v, want nil", err)
	}
}

func TestMprotectUnmappedTyped(t *testing.T) {
	_, task := bootKernel(t)
	_, err := task.Mprotect(0x3000_0000, 4096, false)
	if !errors.Is(err, mm.ErrNoMapping) {
		t.Fatalf("mprotect of unmapped range returned %v, want mm.ErrNoMapping", err)
	}
}

func TestFilteredSyscallTyped(t *testing.T) {
	k, task := bootKernel(t)
	k.RegisterSyscallFilter(func(_ *kernel.Task, sc kernel.Syscall, _ kernel.SyscallArgs) error {
		if sc == kernel.SysMmap {
			return errors.New("nope")
		}
		return nil
	})
	_, err := task.Mmap(0x4000_0000, 4096, true)
	if !errors.Is(err, kernel.ErrBlocked) {
		t.Fatalf("filtered mmap returned %v, want kernel.ErrBlocked", err)
	}
}

// TestASIDExhaustionAndRollover drives the allocator through a shrunken
// ASID space: exhaustion with live holders must fail cleanly (no wrap, no
// reuse), and a rollover after a release must recycle the retired ASID in
// a new generation.
func TestASIDExhaustionAndRollover(t *testing.T) {
	k, _ := bootKernel(t) // the process's base ASID is live
	k.SetASIDLimit(4)
	var got []tlb.ASID
	for {
		a, ok := k.TryAllocASID()
		if !ok {
			break
		}
		got = append(got, a)
		if len(got) > 16 {
			t.Fatal("allocator never reported exhaustion with every ASID live")
		}
	}
	if len(got) == 0 {
		t.Fatal("no ASIDs allocated before exhaustion")
	}
	gen := k.ASIDGeneration()
	if k.ASIDRollovers() == 0 {
		t.Error("exhaustion did not attempt a generation rollover")
	}

	// Release one and allocate again: the rollover path must hand the
	// retired ASID back in a fresh generation instead of failing.
	k.FreeASID(got[0])
	a, ok := k.TryAllocASID()
	if !ok {
		t.Fatal("allocation failed even after an ASID was released")
	}
	if a != got[0] {
		// Any free ASID is acceptable, but with all others live it must
		// be the released one.
		t.Errorf("rollover reallocated ASID %d, want released %d", a, got[0])
	}
	if k.ASIDGeneration() == gen {
		t.Error("recycling a retired ASID did not bump the generation")
	}
}
