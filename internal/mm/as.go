package mm

import (
	"errors"
	"fmt"

	"vdom/internal/hw"
	"vdom/internal/pagetable"
)

// Common errors returned by address-space operations.
var (
	ErrOverlap   = errors.New("mm: mapping overlaps an existing area")
	ErrNoMapping = errors.New("mm: address not mapped")
	ErrSegfault  = errors.New("mm: segmentation fault")
	// ErrBadRange marks a misaligned or empty address range (EINVAL).
	ErrBadRange = errors.New("mm: bad range")
)

// DomainResolver tells the memory manager which hardware domain a tagged
// page should carry in a given page table. The VDom core implements it
// with per-VDS domain maps; untagged pages always resolve to pdom 0.
type DomainResolver interface {
	// PdomFor returns the hardware domain for tag in table t. ok=false
	// means the tag is not mapped in that address space and the page
	// must be installed with the access-never domain.
	PdomFor(t *pagetable.Table, tag Tag) (pdom pagetable.Pdom, ok bool)
	// AccessNever returns the reserved access-never pdom.
	AccessNever() pagetable.Pdom
}

type defaultResolver struct{}

func (defaultResolver) PdomFor(*pagetable.Table, Tag) (pagetable.Pdom, bool) { return 0, true }
func (defaultResolver) AccessNever() pagetable.Pdom                          { return 1 }

// SyncReport aggregates the structural work of an eager synchronization so
// the kernel layer can charge cycles and issue shootdowns.
type SyncReport struct {
	PTEWrites     uint64
	PMDWrites     uint64
	PagesTouched  int
	TablesTouched int
}

func (r *SyncReport) add(o SyncReport) {
	r.PTEWrites += o.PTEWrites
	r.PMDWrites += o.PMDWrites
	r.PagesTouched += o.PagesTouched
	if o.TablesTouched > r.TablesTouched {
		r.TablesTouched = o.TablesTouched
	}
}

// AddressSpace is the process-wide view of virtual memory: one VMA tree and
// one shadow page table shared by every VDS, plus the set of live VDS page
// tables that must be kept consistent (paper: "we decide to use
// [mm_struct] for all VDSes ... only page tables require extra
// synchronization").
type AddressSpace struct {
	machine  *hw.Machine
	vmas     Tree
	shadow   *pagetable.Table
	tables   []*pagetable.Table // VDS tables, excluding the shadow
	resolver DomainResolver

	// lastFind memoizes the most recent VMA lookup. Fault storms and
	// populate loops touch the same area repeatedly, so one containment
	// check usually replaces a tree descent. The memo stays correct
	// without explicit invalidation on splits (the containment check
	// re-reads the live Start/Length); only deletion must forget it.
	lastFind *VMA

	// frameScratch backs Populate's chunked fast path (one 2 MiB run of
	// frames at a time); contents are dead between calls.
	frameScratch [pagetable.PMDSize / pagetable.PageSize]pagetable.Frame
}

// NewAddressSpace creates an empty address space on the machine.
func NewAddressSpace(m *hw.Machine) *AddressSpace {
	return &AddressSpace{
		machine:  m,
		shadow:   pagetable.New(),
		resolver: defaultResolver{},
	}
}

// SetResolver installs the domain resolver (the VDom core).
func (as *AddressSpace) SetResolver(r DomainResolver) { as.resolver = r }

// Shadow returns the per-process shadow page table.
func (as *AddressSpace) Shadow() *pagetable.Table { return as.shadow }

// Tables returns the registered VDS page tables (not the shadow).
func (as *AddressSpace) Tables() []*pagetable.Table { return as.tables }

// NumTables returns the number of registered VDS tables.
func (as *AddressSpace) NumTables() int { return len(as.tables) }

// RegisterTable adds a VDS page table to the synchronization set. New
// tables start empty; demand paging fills them on first touch.
func (as *AddressSpace) RegisterTable(t *pagetable.Table) {
	as.tables = append(as.tables, t)
}

// UnregisterTable removes a VDS page table from the synchronization set.
func (as *AddressSpace) UnregisterTable(t *pagetable.Table) {
	for i, x := range as.tables {
		if x == t {
			as.tables = append(as.tables[:i], as.tables[i+1:]...)
			return
		}
	}
}

// FindVMA returns the area containing a, or nil.
func (as *AddressSpace) FindVMA(a pagetable.VAddr) *VMA {
	if v := as.lastFind; v != nil && v.Contains(a) {
		return v
	}
	v := as.vmas.Find(a)
	if v != nil {
		as.lastFind = v
	}
	return v
}

// forget drops the find memo if it points at v (called before v is
// deleted from the tree).
func (as *AddressSpace) forget(v *VMA) {
	if as.lastFind == v {
		as.lastFind = nil
	}
}

// VMAs calls fn for every area in ascending order.
func (as *AddressSpace) VMAs(fn func(*VMA) bool) { as.vmas.All(fn) }

// NumVMAs returns the number of areas.
func (as *AddressSpace) NumVMAs() int { return as.vmas.Len() }

// EmitMetrics publishes address-space counters: lifetime PTE/PMD writes
// summed over the shadow and every registered VDS table (pagetable/
// prefix) plus area and table population (mm/ prefix). See
// OBSERVABILITY.md for the catalogue.
func (as *AddressSpace) EmitMetrics(emit func(name string, v uint64)) {
	pte := as.shadow.CumulativePTEWrites()
	pmd := as.shadow.CumulativePMDWrites()
	var present uint64
	for _, t := range as.tables {
		pte += t.CumulativePTEWrites()
		pmd += t.CumulativePMDWrites()
		present += uint64(t.Present())
	}
	emit("pagetable/pte-writes", pte)
	emit("pagetable/pmd-writes", pmd)
	emit("mm/vmas", uint64(as.NumVMAs()))
	emit("mm/vds-tables", uint64(as.NumTables()))
	emit("mm/pages-present", present)
}

// Mmap creates a new anonymous area. start and length must be
// page-aligned, and the range must not overlap an existing area. Pages are
// not populated: first touch faults them in (demand paging).
func (as *AddressSpace) Mmap(start pagetable.VAddr, length uint64, writable bool) (*VMA, error) {
	if err := checkRange(start, length); err != nil {
		return nil, err
	}
	overlap := false
	as.vmas.Range(start, start+pagetable.VAddr(length), func(*VMA) bool {
		overlap = true
		return false
	})
	if overlap {
		return nil, ErrOverlap
	}
	v := &VMA{Start: start, Length: length, Writable: writable}
	as.vmas.Insert(v)
	return v, nil
}

// Munmap removes [start, start+length), splitting partially covered areas,
// and eagerly unmaps the pages from the shadow and every VDS table
// (revocation is always eager, §6.2).
func (as *AddressSpace) Munmap(start pagetable.VAddr, length uint64) (SyncReport, error) {
	if err := checkRange(start, length); err != nil {
		return SyncReport{}, err
	}
	end := start + pagetable.VAddr(length)
	as.splitAt(start)
	as.splitAt(end)
	var doomed []*VMA
	as.vmas.Range(start, end, func(v *VMA) bool {
		doomed = append(doomed, v)
		return true
	})
	var rep SyncReport
	for _, v := range doomed {
		as.vmas.Delete(v.Start)
		as.forget(v)
		rep.add(as.eachTable(func(t *pagetable.Table) SyncReport {
			t.ResetCounts()
			n := t.UnmapRange(v.Start, v.Length)
			return SyncReport{PTEWrites: t.PTEWrites, PMDWrites: t.PMDWrites, PagesTouched: n}
		}))
	}
	return rep, nil
}

// Mprotect changes the writability of [start, start+length), splitting
// areas as needed. Downgrades are synchronized eagerly into every table;
// upgrades only touch the VMA (the next write faults and is fixed up
// lazily, as in Linux).
func (as *AddressSpace) Mprotect(start pagetable.VAddr, length uint64, writable bool) (SyncReport, error) {
	if err := checkRange(start, length); err != nil {
		return SyncReport{}, err
	}
	end := start + pagetable.VAddr(length)
	as.splitAt(start)
	as.splitAt(end)
	var rep SyncReport
	found := false
	as.vmas.Range(start, end, func(v *VMA) bool {
		found = true
		if v.Writable == writable {
			return true
		}
		v.Writable = writable
		if !writable { // revocation: eager
			rep.add(as.eachTable(func(t *pagetable.Table) SyncReport {
				t.ResetCounts()
				n := t.SetWritableRange(v.Start, v.Length, false)
				return SyncReport{PTEWrites: t.PTEWrites, PMDWrites: t.PMDWrites, PagesTouched: n}
			}))
		}
		return true
	})
	if !found {
		// Linux mprotect(2) returns ENOMEM when the range contains no
		// mapping; the typed sentinel keeps the failure checkable.
		return rep, ErrNoMapping
	}
	return rep, nil
}

// SetTag labels every page containing any part of [addr, addr+length) with
// the domain tag (vdom_mprotect semantics: the range is expanded to page
// boundaries). Present pages are retagged in the shadow and in every VDS
// table according to the resolver, so already-mapped memory immediately
// falls under the new domain.
func (as *AddressSpace) SetTag(addr pagetable.VAddr, length uint64, tag Tag) (SyncReport, error) {
	if length == 0 {
		return SyncReport{}, fmt.Errorf("%w: empty tag range", ErrBadRange)
	}
	start := addr.PageAlign()
	end := (addr + pagetable.VAddr(length) + pagetable.PageSize - 1).PageAlign()
	as.splitAt(start)
	as.splitAt(end)
	found := false
	var rep SyncReport
	as.vmas.Range(start, end, func(v *VMA) bool {
		found = true
		v.Tag = tag
		rep.add(as.eachTable(func(t *pagetable.Table) SyncReport {
			pdom, ok := as.resolver.PdomFor(t, tag)
			if !ok {
				pdom = as.resolver.AccessNever()
			}
			t.ResetCounts()
			n := t.RetagRange(v.Start, v.Length, pdom)
			return SyncReport{PTEWrites: t.PTEWrites, PMDWrites: t.PMDWrites, PagesTouched: n}
		}))
		return true
	})
	if !found {
		return rep, ErrNoMapping
	}
	return rep, nil
}

// eachTable runs fn over the shadow and every VDS table, summing reports.
func (as *AddressSpace) eachTable(fn func(*pagetable.Table) SyncReport) SyncReport {
	var rep SyncReport
	r := fn(as.shadow)
	rep.PTEWrites += r.PTEWrites
	rep.PMDWrites += r.PMDWrites
	rep.PagesTouched += r.PagesTouched
	touched := 1
	for _, t := range as.tables {
		r := fn(t)
		rep.PTEWrites += r.PTEWrites
		rep.PMDWrites += r.PMDWrites
		rep.PagesTouched += r.PagesTouched
		touched++
	}
	rep.TablesTouched = touched
	return rep
}

// splitAt splits the VMA spanning a (if any) so that a becomes an area
// boundary. a must be page-aligned.
func (as *AddressSpace) splitAt(a pagetable.VAddr) {
	v := as.FindVMA(a)
	if v == nil || v.Start == a {
		return
	}
	tailLen := uint64(v.End() - a)
	v.Length -= tailLen
	as.vmas.Insert(&VMA{Start: a, Length: tailLen, Writable: v.Writable, Tag: v.Tag})
}

// FaultFix describes how a demand-paging fault was repaired.
type FaultFix struct {
	// FreshFrame reports whether a new physical frame was allocated
	// (first touch process-wide) as opposed to copying the shadow PTE.
	FreshFrame bool
	// PTEWrites counts page-table updates performed.
	PTEWrites uint64
	// Pdom is the domain tag the page was installed with in the faulting
	// table.
	Pdom pagetable.Pdom
}

// HandleFault services a not-present fault at addr in table t (which may
// be the shadow). It allocates a frame on first touch, keeps the shadow
// table authoritative, and fills the faulting VDS table from it (lazy
// demand paging, §6.2). Access violations return ErrSegfault.
func (as *AddressSpace) HandleFault(t *pagetable.Table, addr pagetable.VAddr, write bool) (FaultFix, error) {
	v := as.FindVMA(addr)
	if v == nil {
		return FaultFix{}, ErrSegfault
	}
	if write && !v.Writable {
		return FaultFix{}, ErrSegfault
	}
	page := addr.PageAlign()
	var fix FaultFix

	shadowWr := as.shadow.Walk(page)
	var frame pagetable.Frame
	var shadowPdom pagetable.Pdom
	if shadowWr.Present {
		frame = shadowWr.PTE.Frame
		shadowPdom = shadowWr.PTE.Pdom
		// Lazily repair a stale write-protect bit left by a permission
		// upgrade (Mprotect upgrades do not sync eagerly).
		if v.Writable && !shadowWr.PTE.Writable {
			as.shadow.ResetCounts()
			as.shadow.SetWritable(page, true)
			fix.PTEWrites += as.shadow.PTEWrites
		}
	} else {
		frame = as.machine.AllocFrames(1)
		fix.FreshFrame = true
		as.shadow.ResetCounts()
		pdom, ok := as.resolver.PdomFor(as.shadow, v.Tag)
		if !ok {
			pdom = as.resolver.AccessNever()
		}
		shadowPdom = pdom
		as.shadow.Map(page, frame, v.Writable, pdom)
		fix.PTEWrites += as.shadow.PTEWrites
	}
	if t != as.shadow {
		pdom, ok := as.resolver.PdomFor(t, v.Tag)
		if !ok {
			pdom = as.resolver.AccessNever()
		}
		t.ResetCounts()
		t.Map(page, frame, v.Writable, pdom)
		fix.PTEWrites += t.PTEWrites
		fix.Pdom = pdom
	} else {
		// The pdom the just-consulted (or just-installed) shadow PTE
		// carries; re-walking would return exactly shadowPdom.
		fix.Pdom = shadowPdom
	}
	return fix, nil
}

// DisableFastPopulate forces Populate onto the page-at-a-time fault loop.
// It exists so equivalence tests can prove the fused fast path produces
// byte-identical tables, counters, and frame assignments.
var DisableFastPopulate bool

// Populate eagerly faults in every page of [start, start+length) in table
// t, as mmap(MAP_POPULATE) would. It returns the number of fresh frames.
//
// The fast path performs exactly the per-page work HandleFault would —
// the same counter resets, frame allocations, and map calls in the same
// per-page order — but hoists the VMA lookup and domain resolution out
// of the page loop (both are invariant across one area: the resolvers
// are pure lookups and nothing inside the loop can remap a domain) and
// delegates each 2 MiB run to the fused pagetable chunk operations.
func (as *AddressSpace) Populate(t *pagetable.Table, start pagetable.VAddr, length uint64) (int, error) {
	if err := checkRange(start, length); err != nil {
		return 0, err
	}
	if DisableFastPopulate {
		fresh := 0
		for off := uint64(0); off < length; off += pagetable.PageSize {
			fix, err := as.HandleFault(t, start+pagetable.VAddr(off), false)
			if err != nil {
				return fresh, err
			}
			if fix.FreshFrame {
				fresh++
			}
		}
		return fresh, nil
	}
	fresh := 0
	end := start + pagetable.VAddr(length)
	// Pre-size the leaf-node arrays for the 2 MiB chunks the run touches;
	// a capacity hint only, invisible to counters and snapshots.
	if end > start {
		chunks := int((uint64((end-1).PMDAlign())-uint64(start.PMDAlign()))/pagetable.PMDSize) + 1
		as.shadow.Reserve(chunks)
		if t != as.shadow {
			t.Reserve(chunks)
		}
	}
	alloc := as.machine.AllocFrames
	for addr := start; addr < end; {
		v := as.FindVMA(addr)
		if v == nil {
			return fresh, ErrSegfault
		}
		chunkEnd := v.End()
		if chunkEnd > end {
			chunkEnd = end
		}
		shadowPdom, ok := as.resolver.PdomFor(as.shadow, v.Tag)
		if !ok {
			shadowPdom = as.resolver.AccessNever()
		}
		var tPdom pagetable.Pdom
		if t != as.shadow {
			if tPdom, ok = as.resolver.PdomFor(t, v.Tag); !ok {
				tPdom = as.resolver.AccessNever()
			}
		}
		for addr < chunkEnd {
			runEnd := addr.PMDAlign() + pagetable.PMDSize
			if runEnd > chunkEnd {
				runEnd = chunkEnd
			}
			pages := int(uint64(runEnd-addr) / pagetable.PageSize)
			frames := as.frameScratch[:pages]
			fresh += as.shadow.PopulateChunk(addr, pages, v.Writable, shadowPdom, alloc, frames)
			if t != as.shadow {
				t.MapChunk(addr, frames, v.Writable, tPdom)
			}
			addr = runEnd
		}
	}
	return fresh, nil
}

func checkRange(start pagetable.VAddr, length uint64) error {
	if uint64(start)%pagetable.PageSize != 0 || length%pagetable.PageSize != 0 || length == 0 {
		return badRangeErr(start, length)
	}
	return nil
}

// badRangeErr keeps the cold error construction out of checkRange's
// inline budget, so the aligned fast path stays branch-and-return.
//
//go:noinline
func badRangeErr(start pagetable.VAddr, length uint64) error {
	return fmt.Errorf("%w [%#x, +%#x): must be page-aligned and non-empty", ErrBadRange, uint64(start), length)
}

// Reclaim emulates kswapd pressure: it unmaps up to max present pages
// (lowest-addressed first) from the shadow and — eagerly, as §6.2 requires
// for frame reclamation — from every VDS table. The pages demand-fault
// back in on their next touch. It returns the number of frames reclaimed
// and the synchronization work performed.
func (as *AddressSpace) Reclaim(max int) (int, SyncReport) {
	var victims []pagetable.VAddr
	as.shadow.Pages(func(a pagetable.VAddr, _ pagetable.PTE) {
		if len(victims) < max {
			victims = append(victims, a)
		}
	})
	var rep SyncReport
	for _, a := range victims {
		rep.add(as.eachTable(func(t *pagetable.Table) SyncReport {
			t.ResetCounts()
			n := 0
			if t.Unmap(a) {
				n = 1
			}
			return SyncReport{PTEWrites: t.PTEWrites, PMDWrites: t.PMDWrites, PagesTouched: n}
		}))
	}
	return len(victims), rep
}
