package chaos

import (
	"errors"
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
)

// SoakConfig parameterizes a chaos soak run. Zero fields take defaults.
type SoakConfig struct {
	// Chaos selects the fault mix and the seed.
	Chaos Config
	// Ops is the number of API/access operations to drive (default 5000).
	Ops int
	// Cores is the machine size (default 4).
	Cores int
	// Threads is the thread count, round-robin pinned (default 4).
	Threads int
	// Vdoms is the number of protected regions cycling through the
	// working set (default 24).
	Vdoms int
	// AuditEvery runs the cross-layer auditor every N ops (default 64;
	// a final audit always runs).
	AuditEvery int
	// Arch selects the cost table (default X86).
	Arch cycles.Arch

	// Metrics, when non-nil, is attached to the kernel and the VDom
	// manager; the run's per-(layer, op) cycle attribution then sums to
	// exactly SoakResult.Cycles, and the injector's and layers' event
	// counters are harvested when the soak finishes.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives one Chrome-trace decision span per
	// domain-virtualization event, timestamped on the run's cumulative
	// cycle clock.
	Trace *metrics.Trace
	// Record captures the soak's domain-op stream as a replayable trace
	// (SoakResult.Trace); failing runs can then be shrunk to a minimal
	// reproducer with SoakResult.FailTrace. Crash-fault recovery
	// (SoakRun.Checkpoint/Recover) requires it: the trace tail is what
	// replays the system forward from a checkpoint.
	Record bool
}

// SoakResult is the outcome of one soak run.
type SoakResult struct {
	// Ops is the number of operations driven.
	Ops int
	// Cycles is the total cycle cost charged across the run.
	Cycles cycles.Cost
	// Injected and Recovered are the injector's per-kind counters.
	Injected, Recovered map[string]uint64
	// Events is the deterministic fault/recovery log.
	Events []Event
	// Violations collects every auditor finding across all audit passes.
	Violations []Violation
	// Unrecovered lists operations that failed in a way no degradation
	// path absorbed. A healthy run has none.
	Unrecovered []string
	// Audits is the number of auditor passes.
	Audits int
	// ASIDRollovers is the kernel's generation-rollover count.
	ASIDRollovers uint64
	// CoreStats snapshots the VDom manager's operation counters.
	CoreStats core.Stats
	// Trace is the full replayable recording (nil unless
	// SoakConfig.Record was set).
	Trace *replay.Trace
	// FirstFailEvent is the trace position just past the first
	// unrecovered failure, or -1 when the run was healthy. FailTrace
	// truncates the recording there.
	FirstFailEvent int
	// TracePath is where a harness persisted the (fail) trace, when it
	// did; informational only.
	TracePath string
}

// FailTrace returns the minimal replayable reproducer for an unhealthy
// run: the recording truncated just past the first unrecovered failure,
// or the full recording when only audit violations were found. It
// returns nil for healthy or unrecorded runs.
func (r *SoakResult) FailTrace() *replay.Trace {
	if r.Trace == nil || (len(r.Unrecovered) == 0 && len(r.Violations) == 0) {
		return nil
	}
	if r.FirstFailEvent < 0 || r.FirstFailEvent >= len(r.Trace.Events) {
		return r.Trace
	}
	return &replay.Trace{
		Header: r.Trace.Header,
		Events: r.Trace.Events[:r.FirstFailEvent:r.FirstFailEvent],
	}
}

// Merge folds another shard's result into r: counters and cycle totals
// are summed, per-kind maps are added key-wise, and the event, violation,
// and unrecovered listings are appended in call order. Merging shards of
// a sharded soak in shard-index order therefore yields the same aggregate
// regardless of which worker ran which shard.
func (r *SoakResult) Merge(o *SoakResult) {
	if o == nil {
		return
	}
	r.Ops += o.Ops
	r.Cycles += o.Cycles
	r.Audits += o.Audits
	r.ASIDRollovers += o.ASIDRollovers
	if r.Injected == nil {
		r.Injected = map[string]uint64{}
	}
	for k, v := range o.Injected {
		r.Injected[k] += v
	}
	if r.Recovered == nil {
		r.Recovered = map[string]uint64{}
	}
	for k, v := range o.Recovered {
		r.Recovered[k] += v
	}
	r.Events = append(r.Events, o.Events...)
	r.Violations = append(r.Violations, o.Violations...)
	r.Unrecovered = append(r.Unrecovered, o.Unrecovered...)
	r.CoreStats = r.CoreStats.Add(o.CoreStats)
	// Traces do not merge; keep the first shard's recording (shards that
	// need theirs kept dump them before merging).
	if r.Trace == nil {
		r.Trace, r.FirstFailEvent, r.TracePath = o.Trace, o.FirstFailEvent, o.TracePath
	}
}

// regionPages is the size of each protected region in the soak workload.
const regionPages = 4

// SoakRun is a soak in progress, steppable one operation at a time so a
// crash-fault harness can interleave checkpoints, crashes, and recovery
// with the workload. StartSoak boots it; Step drives one op; Finish
// seals the result. Soak composes the three for the plain
// run-to-completion case.
type SoakRun struct {
	cfg SoakConfig

	in      *Injector
	machine *hw.Machine
	kern    *kernel.Kernel
	proc    *kernel.Process
	mgr     *core.Manager
	rec     *replay.Recorder

	res    *SoakResult
	total  cycles.Cost
	tasks  []*kernel.Task
	vdoms  []core.VdomID
	r      *sim.Rand
	nextOp int

	tracedEvents int
	finished     bool
}

// Soak boots a machine with the injector attached and drives a randomized
// (but seed-deterministic) VDom workload through it: grants, accesses,
// revocations, vdom free/realloc cycles, VDS spreading, VDR churn, and
// frame reclaim — auditing cross-layer consistency as it goes. The same
// SoakConfig reproduces the identical event sequence.
func Soak(cfg SoakConfig) *SoakResult {
	s := StartSoak(cfg)
	for s.Step() {
	}
	return s.Finish()
}

// StartSoak boots the soak platform and runs the workload setup (task
// spawns, region mmaps, initial vdom bindings), leaving the run poised
// before op 1.
func StartSoak(cfg SoakConfig) *SoakRun {
	if cfg.Ops <= 0 {
		cfg.Ops = 5000
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Vdoms <= 0 {
		cfg.Vdoms = 24
	}
	if cfg.AuditEvery <= 0 {
		cfg.AuditEvery = 64
	}

	s := &SoakRun{cfg: cfg, nextOp: 1}
	s.in = New(cfg.Chaos)
	s.machine = hw.NewMachine(hw.Config{Arch: cfg.Arch, NumCores: cfg.Cores})
	s.kern = kernel.New(kernel.Config{Machine: s.machine, VDomEnabled: true})
	s.in.AttachMachine(s.machine)
	s.in.AttachKernel(s.kern)
	s.proc = s.kern.NewProcess()
	s.mgr = core.Attach(s.proc, core.DefaultPolicy())
	s.in.AttachManager(s.mgr)
	if cfg.Record {
		s.rec = replay.NewRecorder(soakHeader(cfg))
		s.rec.AttachKernel(s.kern)
		s.rec.AttachManager(s.mgr)
	}

	s.res = &SoakResult{Ops: cfg.Ops, FirstFailEvent: -1}
	s.kern.SetMetrics(cfg.Metrics)
	s.mgr.SetMetrics(cfg.Metrics)
	s.attachTracer()

	s.tasks = make([]*kernel.Task, cfg.Threads)
	for i := range s.tasks {
		s.tasks[i] = s.proc.NewTask(i % cfg.Cores)
		if s.rec != nil {
			s.rec.Spawn(s.tasks[i])
		}
	}

	if c, err := s.tasks[0].Mmap(plainBase, plainPages*pagetable.PageSize, true); err != nil {
		s.fail(0, "setup mmap", err)
	} else {
		s.total += c
	}
	s.vdoms = make([]core.VdomID, cfg.Vdoms)
	for i := range s.vdoms {
		if c, err := s.tasks[0].Mmap(region(i), regionPages*pagetable.PageSize, true); err != nil {
			s.fail(0, "setup mmap", err)
		} else {
			s.total += c
		}
		d, c := s.mgr.AllocVdom(i%4 == 0)
		s.total += c
		if c, err := s.mgr.Mprotect(s.tasks[0], region(i), regionPages*pagetable.PageSize, d); err != nil {
			s.fail(0, "setup mprotect", err)
		} else {
			s.total += c
		}
		s.vdoms[i] = d
	}
	for _, t := range s.tasks {
		c, err := s.mgr.VdrAlloc(t, 0)
		s.total += c
		if err != nil {
			s.fail(0, "setup vdr_alloc", err)
		}
	}

	// The op stream draws from its own PRNG so the fault stream (the
	// injector's) and the workload stream stay independent but both
	// replay from the seed.
	s.r = sim.NewRand(cfg.Chaos.Seed ^ 0x6a09e667f3bcc908)
	return s
}

// Working set: an unprotected scratch region plus one region per vdom.
const (
	plainBase  = pagetable.VAddr(0x1000_0000)
	plainPages = 64
)

func region(i int) pagetable.VAddr {
	return pagetable.VAddr(0x4000_0000 + uint64(i)*0x10_0000)
}

// NextOp returns the 1-based index of the op the next Step will run.
func (s *SoakRun) NextOp() int { return s.nextOp }

// ClockCycles returns the run's cumulative cycle clock.
func (s *SoakRun) ClockCycles() uint64 { return uint64(s.total) }

// attachTracer (re-)wires the Chrome-trace decision tap onto the current
// manager instance; recovery calls it again on the restored one.
func (s *SoakRun) attachTracer() {
	if s.cfg.Trace == nil {
		return
	}
	s.mgr.SetTracer(func(e core.Event) {
		s.cfg.Trace.Decision(e.Kind.String(), e.TID, uint64(s.total), uint64(e.Cost), map[string]uint64{
			"vdom": uint64(e.Vdom), "vds": uint64(e.VDS), "pdom": uint64(e.Pdom),
		})
	})
}

func (s *SoakRun) fail(op int, what string, err error) {
	if s.rec != nil && s.res.FirstFailEvent < 0 {
		// The failing op's events are already recorded (taps fire at
		// completion), so the prefix up to here is the reproducer.
		s.res.FirstFailEvent = s.rec.Len()
	}
	s.res.Unrecovered = append(s.res.Unrecovered, fmt.Sprintf("op %d: %s: %v", op, what, err))
}

func (s *SoakRun) audit() {
	s.res.Audits++
	s.res.Violations = append(s.res.Violations, Audit(s.machine, s.kern, s.mgr)...)
}

// traceEvents turns each injected fault and recovery into a trace
// instant at the cycle position of the op that triggered it.
func (s *SoakRun) traceEvents() {
	if s.cfg.Trace == nil {
		return
	}
	evs := s.in.Events()
	for ; s.tracedEvents < len(evs); s.tracedEvents++ {
		s.cfg.Trace.Instant("chaos", evs[s.tracedEvents].Kind, 0, uint64(s.total))
	}
}

// Step drives one workload op (and the periodic audit that falls on it)
// and reports whether ops remain.
func (s *SoakRun) Step() bool {
	if s.nextOp > s.cfg.Ops {
		return false
	}
	op := s.nextOp
	s.nextOp++

	t := s.tasks[s.r.Intn(len(s.tasks))]
	di := s.r.Intn(len(s.vdoms))
	d := s.vdoms[di]
	switch x := s.r.Intn(100); {
	case x < 50: // grant, then touch a page of the region
		perm := core.VPermReadWrite
		if x < 10 {
			perm = core.VPermRead
		}
		c, err := s.mgr.WrVdr(t, d, perm)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("wrvdr grant vdom %d", d), err)
			break
		}
		addr := region(di) + pagetable.VAddr(uint64(s.r.Intn(regionPages))*pagetable.PageSize)
		write := perm == core.VPermReadWrite && s.r.Intn(2) == 0
		c, err = t.Access(addr, write)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("access vdom %d at %#x", d, uint64(addr)), err)
		}
	case x < 65: // revoke (sometimes pinning)
		perm := core.VPermNone
		if x < 55 {
			perm = core.VPermPinned
		}
		c, err := s.mgr.WrVdr(t, d, perm)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("wrvdr revoke vdom %d", d), err)
		}
	case x < 75: // free the vdom, rebind its region to a fresh one
		c, err := s.mgr.FreeVdom(d)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("free vdom %d", d), err)
			break
		}
		nd, c := s.mgr.AllocVdom(s.r.Intn(4) == 0)
		s.total += c
		c, err = s.mgr.Mprotect(t, region(di), regionPages*pagetable.PageSize, nd)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("mprotect vdom %d", nd), err)
			break
		}
		s.vdoms[di] = nd
	case x < 83: // spread the thread into a fresh VDS
		c, err := s.mgr.PlaceInNewVDS(t)
		s.total += c
		// A typed resource failure here is tolerated: the caller's
		// recovery is simply staying in its current VDS.
		if err != nil && !errors.Is(err, core.ErrNoResources) && !errors.Is(err, core.ErrExhausted) {
			s.fail(op, "place_in_new_vds", err)
		}
	case x < 90: // VDR churn (exercises the base-ASID restore)
		c, err := s.mgr.VdrFree(t)
		s.total += c
		if err != nil {
			s.fail(op, "vdr_free", err)
			break
		}
		c, err = s.mgr.VdrAlloc(t, 0)
		s.total += c
		if err != nil {
			s.fail(op, "vdr_alloc", err)
		}
	case x < 96: // kswapd pressure, plus VDS garbage collection
		max := 1 + s.r.Intn(8)
		n, c := s.proc.ReclaimFrames(t.CoreID(), max)
		s.total += c
		reaped := s.mgr.ReapVDSes()
		if s.rec != nil {
			s.rec.Reclaim(t.CoreID(), max, n, c)
			s.rec.Reap(reaped)
		}
	default: // unprotected access
		addr := plainBase + pagetable.VAddr(uint64(s.r.Intn(plainPages))*pagetable.PageSize)
		c, err := t.Access(addr, s.r.Intn(2) == 0)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("plain access at %#x", uint64(addr)), err)
		}
	}
	s.traceEvents()
	if op%s.cfg.AuditEvery == 0 {
		s.audit()
	}
	return s.nextOp <= s.cfg.Ops
}

// Finish runs the final audit, harvests every counter, and seals the
// result. It is idempotent.
func (s *SoakRun) Finish() *SoakResult {
	if s.finished {
		return s.res
	}
	s.finished = true
	s.audit()

	s.res.Cycles = s.total
	s.res.Injected = s.in.Injected()
	s.res.Recovered = s.in.Recovered()
	s.res.Events = s.in.Events()
	s.res.ASIDRollovers = s.kern.ASIDRollovers()
	s.res.CoreStats = s.mgr.Stats
	if s.rec != nil {
		s.res.Trace = s.rec.Finish()
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Accumulate(s.in, s.machine, s.proc.AS(), s.kern)
	}
	return s.res
}
