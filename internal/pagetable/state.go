package pagetable

// This file implements checkpoint capture and restore for Table
// (vdom-snap/v1). The snapshot must reproduce the table *exactly* — not
// just its present translations but the radix skeleton (empty page
// tables left behind by Unmap still add walk levels, which the hardware
// charges cycles for), the per-PMD disabled marks, the write counters,
// and the mutation generation — so a restored System's cycle accounting
// is bit-identical to an uninterrupted run.

// PageState is one present PTE and its address in a TableState.
type PageState struct {
	Addr uint64
	PTE  PTE
}

// TableState is the serializable image of a Table.
type TableState struct {
	// Pages holds every present PTE in ascending address order.
	Pages []PageState
	// PTs lists the coordinates (virtual address >> PMDShift) of every
	// materialized leaf page table, including empty ones: they decide
	// how many levels a walk of an unmapped address visits.
	PTs []uint64
	// DisabledPMDs lists the coordinates (virtual address >> PMDShift)
	// of PMD entries disabled by the §5.5 eviction fast path.
	DisabledPMDs []uint64

	PTEWrites  uint64
	PMDWrites  uint64
	RetiredPTE uint64
	RetiredPMD uint64
	Gen        uint64
}

// State captures the table's full image for a checkpoint.
func (t *Table) State() TableState {
	st := TableState{
		PTEWrites:  t.PTEWrites,
		PMDWrites:  t.PMDWrites,
		RetiredPTE: t.retiredPTE,
		RetiredPMD: t.retiredPMD,
		Gen:        t.gen,
	}
	for i3, pi := range t.pgd {
		if pi == 0 {
			continue
		}
		pud := &t.puds[pi-1]
		for i2, mi := range pud.pmds {
			if mi == 0 {
				continue
			}
			pmd := &t.pmds[mi-1]
			for i1, ti := range pmd.pts {
				coord := uint64(i3)<<18 | uint64(i2)<<9 | uint64(i1)
				if pmd.isDisabled(i1) {
					st.DisabledPMDs = append(st.DisabledPMDs, coord)
				}
				if ti == 0 {
					continue
				}
				st.PTs = append(st.PTs, coord)
				pt := &t.pts[ti-1]
				for i0 := range pt.ptes {
					if pt.ptes[i0]&pteP == 0 {
						continue
					}
					a := coord<<PMDShift | uint64(i0)<<PageShift
					st.Pages = append(st.Pages, PageState{Addr: a, PTE: pt.ptes[i0].unpack()})
				}
			}
		}
	}
	return st
}

// LoadState overwrites the table in place with a previously captured
// image. The radix is rebuilt directly — not through Map — so the write
// counters and generation land exactly on the checkpointed values.
func (t *Table) LoadState(st TableState) {
	*t = Table{}
	for _, coord := range st.PTs {
		t.materialize(coord)
	}
	for _, coord := range st.DisabledPMDs {
		pmd := t.materializePMD(coord)
		pmd.setDisabled(int(coord&0x1ff), true)
	}
	for _, pg := range st.Pages {
		pt := t.ptOf(VAddr(pg.Addr))
		i0 := int(pg.Addr >> 12 & 0x1ff)
		pt.ptes[i0] = packPTE(pg.PTE)
		pt.present++
		t.present++
	}
	t.PTEWrites = st.PTEWrites
	t.PMDWrites = st.PMDWrites
	t.retiredPTE = st.RetiredPTE
	t.retiredPMD = st.RetiredPMD
	t.gen = st.Gen
}

// materializePMD ensures the pud/pmd path for a pt coordinate exists and
// returns the pmd node, without touching any counter.
func (t *Table) materializePMD(coord uint64) *pmdNode {
	i3 := int(coord >> 18 & 0x1ff)
	i2 := int(coord >> 9 & 0x1ff)
	pi := t.pgd[i3]
	if pi == 0 {
		t.puds = append(t.puds, pudNode{})
		pi = int32(len(t.puds))
		t.pgd[i3] = pi
	}
	mi := t.puds[pi-1].pmds[i2]
	if mi == 0 {
		t.pmds = append(t.pmds, pmdNode{})
		mi = int32(len(t.pmds))
		t.puds[pi-1].pmds[i2] = mi
	}
	return &t.pmds[mi-1]
}

// materialize ensures the full path to the leaf page table at coord
// exists, without touching any counter.
func (t *Table) materialize(coord uint64) {
	pmd := t.materializePMD(coord)
	i1 := int(coord & 0x1ff)
	if pmd.pts[i1] == 0 {
		t.pts = append(t.pts, ptNode{})
		// Re-resolve after append: the pmd pointer may be stale only if
		// pmds moved, which appending to pts cannot cause — but keep the
		// index write on the freshly resolved node for clarity.
		pmd.pts[i1] = int32(len(t.pts))
	}
}
