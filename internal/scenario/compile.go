package scenario

import (
	"fmt"
	"strings"

	"vdom/internal/backend"
	"vdom/internal/chaos"
	"vdom/internal/core"
	"vdom/internal/replay"
)

// WorkloadPrefix marks scenario cells in a trace's Header.Workload;
// replay tooling keys on it to route the trace through ReplayTrace.
const WorkloadPrefix = "scenario/"

// defaultMix is the op mix of a phase that does not declare one.
var defaultMix = Mix{Activate: 8, Churn: 1, Plain: 1}

// capacityHeadroom over-provisions a cell's total domain-slot capacity
// relative to its initial working set, so lifetime churn on
// fixed-capacity kernels (EPK's monotonic slot allocator) can mint fresh
// ids for a while before the driver falls back to slot reuse.
const capacityHeadroom = 4

// Cell is one compiled execution unit: an isolated System driven for Ops
// operations at a fixed client count. Cells are independent — each
// carries its own derived seed — so a plan can run at any parallel
// width with byte-identical results.
type Cell struct {
	// Scenario and Kernel name the run; Phase/PhaseIndex/Step locate
	// the cell in the plan.
	Scenario   string
	Kernel     string
	Phase      string
	PhaseIndex int
	Step       int
	// Clients is the interpolated ramp value; Ops the op budget;
	// Domains the per-client working set.
	Clients int
	Ops     int
	Domains int
	// Arch and Cores describe the platform.
	Arch  string
	Cores int
	// Seed is the cell's private PRNG stream root.
	Seed uint64
	// Capacity is the total domain-slot budget (EPK's epk.New size).
	Capacity int
	// Lifetime, Mix, and Faults are the resolved phase behavior.
	Lifetime Lifetime
	Mix      Mix
	Faults   *FaultSpec
}

// Plan is a compiled scenario for one kernel.
type Plan struct {
	Spec   *Spec
	Kernel string
	Cells  []Cell
}

// Quick quarters every cell's op budget (minimum 1), the scenario
// counterpart of bench's -quick smoke mode.
func (p *Plan) Quick() {
	for i := range p.Cells {
		if ops := (p.Cells[i].Ops + 3) / 4; ops < p.Cells[i].Ops {
			p.Cells[i].Ops = ops
		}
	}
}

// Kernels resolves the kernel axis of a spec: the explicit override if
// given, the spec's declared set otherwise, every registered backend as
// the final default. The override must name a registered backend.
func Kernels(s *Spec, override string) ([]string, error) {
	if override != "" {
		if _, ok := backend.Get(override); !ok {
			return nil, fmt.Errorf("%w: unknown kernel %q (registered: %s)",
				ErrBadRecord, override, strings.Join(backend.Names(), ", "))
		}
		return []string{override}, nil
	}
	if len(s.Kernels) > 0 {
		return s.Kernels, nil
	}
	return backend.Names(), nil
}

// Compile lowers a validated spec to the deterministic plan for one
// kernel: one cell per (phase, ramp step), each with an interpolated
// client count and a seed derived from the spec seed and the cell's
// coordinates. Compiling the same spec twice yields identical plans.
func Compile(s *Spec, kern string) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if _, ok := backend.Get(kern); !ok {
		return nil, fmt.Errorf("%w: unknown kernel %q (registered: %s)",
			ErrBadRecord, kern, strings.Join(backend.Names(), ", "))
	}
	p := &Plan{Spec: s, Kernel: kern}
	for pi := range s.Phases {
		ph := &s.Phases[pi]
		arch := ph.Arch
		if arch == "" {
			arch = s.Arch
		}
		if arch == "" {
			arch = "x86"
		}
		cores := ph.Cores
		if cores == 0 {
			cores = s.Cores
		}
		if cores == 0 {
			cores = 2
		}
		mix := defaultMix
		if ph.Mix != nil {
			mix = *ph.Mix
		}
		for st := 0; st < ph.Clients.steps(); st++ {
			clients := ph.Clients.at(st)
			p.Cells = append(p.Cells, Cell{
				Scenario: s.Name, Kernel: kern,
				Phase: ph.Name, PhaseIndex: pi, Step: st,
				Clients: clients, Ops: ph.Ops, Domains: ph.DomainsPerClient,
				Arch: arch, Cores: cores,
				Seed:     deriveSeed(s.Seed, s.Name, kern, pi, st),
				Capacity: clients * ph.DomainsPerClient * capacityHeadroom,
				Lifetime: ph.Lifetime, Mix: mix, Faults: ph.Faults,
			})
		}
	}
	return p, nil
}

// deriveSeed mixes the spec seed with a cell's coordinates through
// splitmix64, so sibling cells get decorrelated PRNG streams and the
// derivation is stable across runs and platforms.
func deriveSeed(root uint64, name, kern string, phase, step int) uint64 {
	x := root ^ replay.DigestString(fmt.Sprintf("%s|%s|%d|%d", name, kern, phase, step))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// distCode gives each lifetime distribution a stable numeric id for the
// trace-header Extra map.
func distCode(dist string) uint64 {
	switch dist {
	case LifeFixed:
		return 1
	case LifeUniform:
		return 2
	case LifeGeometric:
		return 3
	default:
		return 0
	}
}

// Header forges the vdom-trace/v1 header describing the cell's
// platform: replay.Boot inverts it to the identical System, and the
// Extra map carries the cell geometry plus (for faulted cells) the
// chaos injector configuration ReplayTrace re-arms.
func (c *Cell) Header() replay.Header {
	h := replay.Header{
		Version:  replay.FormatVersion,
		Kernel:   c.Kernel,
		Arch:     c.Arch,
		Cores:    c.Cores,
		Seed:     c.Seed,
		Workload: fmt.Sprintf("%s%s/%s/%d", WorkloadPrefix, c.Scenario, c.Phase, c.Step),
		ConfigDigest: replay.DigestString(fmt.Sprintf(
			"scenario|%s|kernel=%s|phase=%s|step=%d|clients=%d|ops=%d|domains=%d|arch=%s|cores=%d|mix=%d/%d/%d|life=%s/%d|faults=%+v|seed=%#x",
			c.Scenario, c.Kernel, c.Phase, c.Step, c.Clients, c.Ops, c.Domains,
			c.Arch, c.Cores, c.Mix.Activate, c.Mix.Churn, c.Mix.Plain,
			c.Lifetime.Dist, c.Lifetime.MeanOps, c.Faults, c.Seed)),
		Extra: map[string]uint64{
			"scenario/clients":      uint64(c.Clients),
			"scenario/ops":          uint64(c.Ops),
			"scenario/domains":      uint64(c.Domains),
			"scenario/capacity":     uint64(c.Capacity),
			"scenario/mix-activate": uint64(c.Mix.Activate),
			"scenario/mix-churn":    uint64(c.Mix.Churn),
			"scenario/mix-plain":    uint64(c.Mix.Plain),
			"scenario/life-dist":    distCode(c.Lifetime.Dist),
			"scenario/life-mean":    uint64(c.Lifetime.MeanOps),
		},
	}
	switch c.Kernel {
	case replay.KernelVDom:
		pol := core.DefaultPolicy()
		h.Flags |= replay.HdrVDomKernel
		if pol.SecureGate {
			h.Flags |= replay.HdrSecureGate
		}
		h.FlushThreshold = pol.RangeFlushThresholdPages
		h.Nas = pol.DefaultNas
	case replay.KernelEPK:
		h.Domains = c.Capacity
	}
	if c.Faults.Any() {
		for k, v := range chaos.ExtraConfig(c.Faults.Config(c.Seed)) {
			h.Extra[k] = v
		}
	}
	return h
}
