package core

import (
	"fmt"

	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Reserved hardware domains (§5.4, §6.3): pdom 0 is the default domain all
// unprotected memory lives in; pdom 1 is access-never, used for evicted
// pages and for sealing the trusted API library's VDR pages on Intel.
const (
	DefaultPdom     = pagetable.Pdom(0)
	AccessNeverPdom = pagetable.Pdom(1)
	// firstUsablePdom is the first pdom vdoms can map to.
	firstUsablePdom = 2
)

// UsablePdomsPerVDS is the number of hardware domains each VDS can hand
// out to vdoms on the 16-domain architectures (Intel MPK, ARM Memory
// Domain). Use UsablePdoms for an architecture-aware count.
const UsablePdomsPerVDS = 16 - firstUsablePdom

// UsablePdoms returns how many vdoms one VDS can map simultaneously on a
// machine with numPdoms hardware domains (32 on IBM Power).
func UsablePdoms(numPdoms int) int { return numPdoms - firstUsablePdom }

// evictState remembers how a vdom left a VDS, enabling the HLRU remap
// optimization: pages evicted by PMD-disable keep their old domain tags, so
// remapping the vdom to the same pdom later only re-enables the PMDs
// instead of rewriting every PTE (§5.5).
type evictState struct {
	pdom   pagetable.Pdom
	viaPMD bool
}

// mapEntry is one slot of a VDS's domain map, indexed by pdom. Since pdoms
// are fewer than vdoms, the map is indexed by pdom and stores (pdom, vdom)
// pairs to avoid sparsity (§5.3).
type mapEntry struct {
	vdom VdomID
	used bool
	// threads is the number of VDS threads whose VDR holds a live
	// (non-AD) permission on the vdom — the #thread column of Figure 3.
	threads int
	// lastUse is the logical timestamp of the vdom's last activation,
	// driving LRU.
	lastUse uint64
}

// VDS is one virtual domain space: a separate ASID-tagged address space
// with a private domain map (§5.3).
type VDS struct {
	id    int
	table *pagetable.Table
	asid  tlb.ASID

	domainMap []mapEntry                // indexed by pdom, len == numPdoms
	vdomPdom  map[VdomID]pagetable.Pdom // inverse of domainMap
	threads   map[*kernel.Task]bool
	clock     uint64

	// lastMapping and evicted drive the HLRU policy.
	lastMapping map[VdomID]pagetable.Pdom
	evicted     map[VdomID]evictState

	// cachedCores tracks every core whose TLB may hold translations under
	// this VDS's ASID — the cores threads ever entered the VDS on since
	// the last full-set ASID flush (Linux's mm_cpumask analog). It bounds
	// the shootdowns revocation needs: resident threads alone miss cores
	// whose thread has since switched away.
	cachedCores hw.CPUSet

	// One-entry PdomOf memo (see PdomOf).
	memoD   VdomID
	memoP   pagetable.Pdom
	memoOK  bool
	memoSet bool

	numPdoms int
}

func newVDS(id int, asid tlb.ASID, numPdoms int) *VDS {
	return &VDS{
		id:          id,
		table:       pagetable.New(),
		asid:        asid,
		domainMap:   make([]mapEntry, numPdoms),
		vdomPdom:    make(map[VdomID]pagetable.Pdom),
		threads:     make(map[*kernel.Task]bool),
		lastMapping: make(map[VdomID]pagetable.Pdom),
		evicted:     make(map[VdomID]evictState),
		numPdoms:    numPdoms,
	}
}

// ID returns the VDS id.
func (v *VDS) ID() int { return v.id }

// Table returns the VDS's private page table.
func (v *VDS) Table() *pagetable.Table { return v.table }

// ASID returns the VDS's address-space identifier.
func (v *VDS) ASID() tlb.ASID { return v.asid }

// NumThreads returns how many threads currently run in the VDS.
func (v *VDS) NumThreads() int { return len(v.threads) }

// CPUSet returns the cores threads of this VDS are pinned to — the CPU
// bitmap that bounds TLB shootdowns (§5.3).
func (v *VDS) CPUSet() hw.CPUSet {
	var s hw.CPUSet
	for t := range v.threads {
		s = s.Add(t.CoreID())
	}
	return s
}

// noteCore records that a thread entered the VDS on core id, so its TLB
// may cache translations under the VDS's ASID from now on.
func (v *VDS) noteCore(id int) { v.cachedCores = v.cachedCores.Add(id) }

// CachedCores returns the cores whose TLBs may hold translations under
// this VDS's ASID (a superset of CPUSet).
func (v *VDS) CachedCores() hw.CPUSet { return v.cachedCores.Union(v.CPUSet()) }

// PdomOf returns the pdom v is mapped to, if any. A one-entry memo
// absorbs the dense repeat lookups the fault path issues while
// populating a range; install/uninstall (and the checkpoint torn-write
// injector) drop it whenever the mapping changes.
func (v *VDS) PdomOf(d VdomID) (pagetable.Pdom, bool) {
	if v.memoSet && v.memoD == d {
		return v.memoP, v.memoOK
	}
	p, ok := v.vdomPdom[d]
	v.memoD, v.memoP, v.memoOK, v.memoSet = d, p, ok, true
	return p, ok
}

// dropMemo invalidates the PdomOf memo after a domain-map mutation.
func (v *VDS) dropMemo() { v.memoSet = false }

// Mapped reports whether d is mapped in the VDS.
func (v *VDS) Mapped(d VdomID) bool {
	_, ok := v.vdomPdom[d]
	return ok
}

// FreePdoms returns the number of unmapped usable pdoms.
func (v *VDS) FreePdoms() int {
	n := 0
	for p := firstUsablePdom; p < v.numPdoms; p++ {
		if !v.domainMap[p].used {
			n++
		}
	}
	return n
}

// MappedVdoms returns the vdoms currently mapped, in pdom order.
func (v *VDS) MappedVdoms() []VdomID {
	var out []VdomID
	for p := firstUsablePdom; p < v.numPdoms; p++ {
		if v.domainMap[p].used {
			out = append(out, v.domainMap[p].vdom)
		}
	}
	return out
}

// freePdom returns an unmapped usable pdom, preferring the HLRU hint if it
// is free.
func (v *VDS) freePdom(hint pagetable.Pdom, hasHint bool) (pagetable.Pdom, bool) {
	if hasHint && int(hint) >= firstUsablePdom && int(hint) < v.numPdoms && !v.domainMap[hint].used {
		return hint, true
	}
	for p := firstUsablePdom; p < v.numPdoms; p++ {
		if !v.domainMap[p].used {
			return pagetable.Pdom(p), true
		}
	}
	return 0, false
}

// install binds d to pdom p in the domain map.
func (v *VDS) install(d VdomID, p pagetable.Pdom) {
	if v.domainMap[p].used {
		panic(fmt.Sprintf("core: pdom %d already used by vdom %d", p, v.domainMap[p].vdom))
	}
	v.clock++
	v.domainMap[p] = mapEntry{vdom: d, used: true, lastUse: v.clock}
	v.vdomPdom[d] = p
	v.dropMemo()
	v.lastMapping[d] = p
	delete(v.evicted, d)
}

// uninstall unbinds d from its pdom, remembering the eviction state.
func (v *VDS) uninstall(d VdomID, viaPMD bool) pagetable.Pdom {
	p, ok := v.vdomPdom[d]
	if !ok {
		panic(fmt.Sprintf("core: uninstall of unmapped vdom %d", d))
	}
	v.domainMap[p] = mapEntry{}
	delete(v.vdomPdom, d)
	v.dropMemo()
	v.evicted[d] = evictState{pdom: p, viaPMD: viaPMD}
	return p
}

// touch refreshes d's LRU timestamp.
func (v *VDS) touch(d VdomID) {
	if p, ok := v.vdomPdom[d]; ok {
		v.clock++
		v.domainMap[p].lastUse = v.clock
	}
}

// addThreadRef adjusts the #thread counters when a task with the given VDR
// permissions joins (+1) or leaves (-1) the VDS.
func (v *VDS) addThreadRef(perms permSet, delta int) {
	// Walk the (few) mapped pdoms and consult the VDR's permission per
	// slot, rather than walking every held permission and probing the
	// inverse map: the touched counters are the same either way — the
	// domain map's used entries and vdomPdom are inverses — without a map
	// lookup per held vdom.
	for p := firstUsablePdom; p < v.numPdoms; p++ {
		e := &v.domainMap[p]
		if e.used && perms.get(e.vdom).Accessible() {
			e.threads += delta
		}
	}
}

// threadsOn returns the #thread counter for d.
func (v *VDS) threadsOn(d VdomID) int {
	if p, ok := v.vdomPdom[d]; ok {
		return v.domainMap[p].threads
	}
	return 0
}

// adjustRef moves the #thread counter of d by delta (on wrvdr permission
// transitions).
func (v *VDS) adjustRef(d VdomID, delta int) {
	if p, ok := v.vdomPdom[d]; ok {
		v.domainMap[p].threads += delta
		if v.domainMap[p].threads < 0 {
			panic("core: negative thread refcount")
		}
	}
}
