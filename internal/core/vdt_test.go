package core

import (
	"testing"
	"testing/quick"

	"vdom/internal/pagetable"
)

func TestVDTAddAndLookup(t *testing.T) {
	v := NewVDT()
	v.AddArea(5, 0x1000, 2*pg)
	v.AddArea(5, 0x10000, pg)
	v.AddArea(900000, 0x20000, 4*pg) // far id exercises the radix split

	if got := len(v.Areas(5)); got != 2 {
		t.Errorf("areas(5) = %d, want 2", got)
	}
	if got := v.TotalPages(5); got != 3 {
		t.Errorf("TotalPages(5) = %d, want 3", got)
	}
	if got := len(v.Areas(900000)); got != 1 {
		t.Errorf("areas(900000) = %d, want 1", got)
	}
	if got := v.Areas(7); got != nil {
		t.Errorf("areas(7) = %v, want nil", got)
	}
	if v.TotalAreas() != 3 {
		t.Errorf("TotalAreas = %d, want 3", v.TotalAreas())
	}
}

func TestVDTCoalescesAdjacentAreas(t *testing.T) {
	v := NewVDT()
	v.AddArea(1, 0x1000, pg)
	v.AddArea(1, 0x2000, pg) // extends the first
	if got := len(v.Areas(1)); got != 1 {
		t.Fatalf("areas = %d after forward coalesce, want 1", got)
	}
	if a := v.Areas(1)[0]; a.Start != 0x1000 || a.Length != 2*pg {
		t.Errorf("coalesced area = %+v", a)
	}
	v.AddArea(1, 0x800000, pg)
	v.AddArea(1, 0x7ff000, pg) // extends backward
	if got := len(v.Areas(1)); got != 2 {
		t.Fatalf("areas = %d after backward coalesce, want 2", got)
	}
	if got := v.TotalPages(1); got != 4 {
		t.Errorf("TotalPages = %d, want 4", got)
	}
}

func TestVDTRemoveArea(t *testing.T) {
	v := NewVDT()
	v.AddArea(3, 0x1000, pg)
	v.AddArea(3, 0x10000, 2*pg)
	if !v.RemoveArea(3, 0x1000, pg) {
		t.Error("RemoveArea of existing failed")
	}
	if v.RemoveArea(3, 0x1000, pg) {
		t.Error("double remove succeeded")
	}
	if v.RemoveArea(99, 0x1000, pg) {
		t.Error("remove on unknown vdom succeeded")
	}
	if got := len(v.Areas(3)); got != 1 {
		t.Errorf("areas = %d after remove, want 1", got)
	}
	if v.TotalAreas() != 1 {
		t.Errorf("TotalAreas = %d", v.TotalAreas())
	}
}

func TestVDTClear(t *testing.T) {
	v := NewVDT()
	v.AddArea(8, 0x1000, pg)
	v.AddArea(8, 0x10000, pg)
	v.AddArea(9, 0x20000, pg)
	if n := v.Clear(8); n != 2 {
		t.Errorf("Clear(8) = %d, want 2", n)
	}
	if v.Areas(8) != nil && len(v.Areas(8)) != 0 {
		t.Error("areas survive Clear")
	}
	if len(v.Areas(9)) != 1 {
		t.Error("Clear leaked into another vdom")
	}
	if v.Clear(12345) != 0 {
		t.Error("Clear of unknown vdom returned non-zero")
	}
}

func TestAreaHelpers(t *testing.T) {
	a := Area{Start: 0x4000, Length: 3 * pg}
	if a.Pages() != 3 {
		t.Errorf("Pages = %d", a.Pages())
	}
	if a.End() != 0x4000+3*pg {
		t.Errorf("End = %#x", uint64(a.End()))
	}
}

// Property: TotalAreas always equals the sum over vdoms of len(Areas)
// after random non-coalescing add/remove sequences.
func TestVDTAreaCountProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint32) bool {
		v := NewVDT()
		ref := map[VdomID]map[pagetable.VAddr]bool{}
		for _, op := range ops {
			d := VdomID(op % 7)
			// Non-adjacent slots so coalescing never fires.
			start := pagetable.VAddr(uint64(op%32) * 4 * pg)
			if ref[d] == nil {
				ref[d] = map[pagetable.VAddr]bool{}
			}
			if op&0x80000000 == 0 {
				if !ref[d][start] {
					v.AddArea(d, start, pg)
					ref[d][start] = true
				}
			} else {
				had := ref[d][start]
				delete(ref[d], start)
				if v.RemoveArea(d, start, pg) != had {
					return false
				}
			}
		}
		total := 0
		for d, set := range ref {
			if len(v.Areas(d)) != len(set) {
				return false
			}
			total += len(set)
		}
		return v.TotalAreas() == total
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVPermStringAndHardware(t *testing.T) {
	cases := []struct {
		p    VPerm
		s    string
		read bool
	}{
		{VPermNone, "AD", false},
		{VPermRead, "WD", true},
		{VPermReadWrite, "FA", true},
		{VPermPinned, "PIN", false},
	}
	for _, c := range cases {
		if c.p.String() != c.s {
			t.Errorf("%d.String() = %q, want %q", c.p, c.p.String(), c.s)
		}
		if c.p.Allows(false) != c.read {
			t.Errorf("%v.Allows(read) = %v", c.p, c.p.Allows(false))
		}
	}
	if VPermPinned.Accessible() || !VPermRead.Accessible() {
		t.Error("Accessible wrong")
	}
	if VPermReadWrite.Hardware().Allows(true) != true {
		t.Error("FA hardware mapping wrong")
	}
	if VPermPinned.Hardware().Allows(false) {
		t.Error("pinned must be access-disabled at the hardware level")
	}
}

func TestVDSAccessors(t *testing.T) {
	v := newVDS(3, 17, 16)
	if v.ID() != 3 || v.ASID() != 17 || v.Table() == nil {
		t.Error("accessors wrong")
	}
	if v.FreePdoms() != UsablePdomsPerVDS {
		t.Errorf("FreePdoms = %d, want %d", v.FreePdoms(), UsablePdomsPerVDS)
	}
	v.install(41, 5)
	if got, ok := v.PdomOf(41); !ok || got != 5 {
		t.Errorf("PdomOf = (%d, %v)", got, ok)
	}
	if !v.Mapped(41) || v.Mapped(42) {
		t.Error("Mapped wrong")
	}
	if v.FreePdoms() != UsablePdomsPerVDS-1 {
		t.Errorf("FreePdoms after install = %d", v.FreePdoms())
	}
	if vs := v.MappedVdoms(); len(vs) != 1 || vs[0] != 41 {
		t.Errorf("MappedVdoms = %v", vs)
	}
	p := v.uninstall(41, true)
	if p != 5 {
		t.Errorf("uninstall returned pdom %d", p)
	}
	if st, ok := v.evicted[41]; !ok || !st.viaPMD || st.pdom != 5 {
		t.Errorf("evict state = %+v, %v", st, ok)
	}
	// HLRU memory survives the uninstall.
	if v.lastMapping[41] != 5 {
		t.Error("lastMapping lost")
	}
}

func TestVDSDoubleInstallPanics(t *testing.T) {
	v := newVDS(0, 1, 16)
	v.install(1, 4)
	defer func() {
		if recover() == nil {
			t.Error("double install on one pdom did not panic")
		}
	}()
	v.install(2, 4)
}

func TestVDSUninstallUnmappedPanics(t *testing.T) {
	v := newVDS(0, 1, 16)
	defer func() {
		if recover() == nil {
			t.Error("uninstall of unmapped vdom did not panic")
		}
	}()
	v.uninstall(9, false)
}

func TestVDSFreePdomHint(t *testing.T) {
	v := newVDS(0, 1, 16)
	// Hint respected when free.
	if p, ok := v.freePdom(7, true); !ok || p != 7 {
		t.Errorf("freePdom(hint 7) = (%d, %v)", p, ok)
	}
	v.install(1, 7)
	// Occupied hint falls back to the first free pdom.
	if p, ok := v.freePdom(7, true); !ok || p != firstUsablePdom {
		t.Errorf("freePdom(occupied hint) = (%d, %v)", p, ok)
	}
	// Reserved pdoms are never handed out.
	if p, ok := v.freePdom(0, true); !ok || p < firstUsablePdom {
		t.Errorf("freePdom handed out reserved pdom %d (%v)", p, ok)
	}
}
