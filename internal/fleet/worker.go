package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// WorkerConfig shapes one worker process's protocol loop.
type WorkerConfig struct {
	// ID is the worker's fleet slot, echoed in hello and heartbeats.
	ID int
	// HeartbeatEvery is the beacon period while a cell executes; zero
	// means DefaultHeartbeat.
	HeartbeatEvery time.Duration
}

// DefaultHeartbeat is the worker's beacon period while a cell runs.
const DefaultHeartbeat = 100 * time.Millisecond

// frameWriter serializes frame writes from the worker's main loop and
// its heartbeat goroutine onto one pipe.
type frameWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (fw *frameWriter) send(t FrameType, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := WriteFrame(fw.w, t, payload); err != nil {
		return err
	}
	return fw.w.Flush()
}

// Worker runs the worker side of the vdom-fleet/v1 protocol: it sends
// hello, then serves assignments from in — executing each cell via exec
// with panic isolation, beating a heartbeat while the cell runs, and
// writing the result frame — until a shutdown frame or clean EOF ends
// the loop. It returns an error only for protocol violations or a torn
// pipe; a failing or panicking cell is reported in its result frame and
// the loop continues.
func Worker(in io.Reader, out io.Writer, cfg WorkerConfig, exec Exec) error {
	br := bufio.NewReader(in)
	fw := &frameWriter{w: bufio.NewWriter(out)}
	if err := fw.send(FrameHello, EncodeHello(Hello{Version: ProtocolVersion, Worker: cfg.ID})); err != nil {
		return fmt.Errorf("fleet worker %d: hello: %w", cfg.ID, err)
	}
	beat := cfg.HeartbeatEvery
	if beat <= 0 {
		beat = DefaultHeartbeat
	}
	for {
		t, payload, err := ReadFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("fleet worker %d: %w", cfg.ID, err)
		}
		switch t {
		case FrameShutdown:
			return nil
		case FrameAssign:
			a, err := DecodeAssign(payload)
			if err != nil {
				return fmt.Errorf("fleet worker %d: %w", cfg.ID, err)
			}
			res := executeWithHeartbeat(fw, cfg.ID, beat, a, exec)
			if err := fw.send(FrameResult, EncodeResult(Result{ID: a.ID, Cell: res})); err != nil {
				return fmt.Errorf("fleet worker %d: result for cell %d: %w", cfg.ID, a.ID, err)
			}
		default:
			return fmt.Errorf("%w: worker %d got unexpected frame type %d", ErrBadRecord, cfg.ID, t)
		}
	}
}

// executeWithHeartbeat runs one cell while a side goroutine beats the
// liveness beacon; the beacon stops before the result frame is written,
// so result frames never interleave with beats for the same cell.
func executeWithHeartbeat(fw *frameWriter, id int, every time.Duration, a Assign, exec Exec) CellResult {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		var beat uint64
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				beat++
				// A torn pipe surfaces in the main loop's next write;
				// the beacon just stops.
				if fw.send(FrameHeartbeat, EncodeHeartbeat(Heartbeat{Worker: id, Cell: a.ID, Beat: beat})) != nil {
					return
				}
			}
		}
	}()
	res := runGuarded(exec, a.Spec)
	close(done)
	wg.Wait()
	return res
}
