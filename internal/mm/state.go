package mm

import "vdom/internal/pagetable"

// Checkpoint capture and restore for the memory-management layer
// (vdom-snap/v1). The snapshot owns the process's page tables: the
// shadow table plus every registered per-VDS table, identified by a
// stable id (0 = shadow, j >= 1 = Tables()[j-1], -1 = none) that the
// hardware and core-layer snapshots refer to.

// VMASnap is one serialized virtual memory area.
type VMASnap struct {
	Start    pagetable.VAddr
	Length   uint64
	Writable bool
	Tag      Tag
}

// ASSnap is the serializable image of an AddressSpace.
type ASSnap struct {
	// VMAs holds every area in ascending start order.
	VMAs []VMASnap
	// Shadow is the authoritative shadow table's image.
	Shadow pagetable.TableState
	// Tables are the registered per-VDS tables' images, in registration
	// order (table id j+1 corresponds to Tables[j]).
	Tables []pagetable.TableState
}

// Snap captures the address space's image.
func (as *AddressSpace) Snap() ASSnap {
	var s ASSnap
	as.vmas.All(func(v *VMA) bool {
		s.VMAs = append(s.VMAs, VMASnap{Start: v.Start, Length: v.Length, Writable: v.Writable, Tag: v.Tag})
		return true
	})
	s.Shadow = as.shadow.State()
	for _, t := range as.tables {
		s.Tables = append(s.Tables, t.State())
	}
	return s
}

// LoadSnap restores the address space in place: the VMA tree is rebuilt,
// the shadow table reloaded, and one fresh table registered per
// serialized per-VDS table. The address space must be freshly booted (no
// VMAs, no registered tables).
func (as *AddressSpace) LoadSnap(s ASSnap) {
	if as.vmas.Len() != 0 || len(as.tables) != 0 {
		panic("mm: LoadSnap on a non-fresh address space")
	}
	for i := range s.VMAs {
		v := s.VMAs[i]
		as.vmas.Insert(&VMA{Start: v.Start, Length: v.Length, Writable: v.Writable, Tag: v.Tag})
	}
	as.shadow.LoadState(s.Shadow)
	for _, ts := range s.Tables {
		t := pagetable.New()
		t.LoadState(ts)
		as.RegisterTable(t)
	}
}

// TableID maps a live table to its stable snapshot id (-1 = nil,
// 0 = shadow, j+1 = Tables()[j]). It panics on a table the address space
// does not own — a checkpoint must never silently drop a reference.
func (as *AddressSpace) TableID(t *pagetable.Table) int {
	switch {
	case t == nil:
		return -1
	case t == as.shadow:
		return 0
	}
	for j, o := range as.tables {
		if o == t {
			return j + 1
		}
	}
	panic("mm: TableID of an unregistered table")
}

// TableByID is the inverse of TableID.
func (as *AddressSpace) TableByID(id int) *pagetable.Table {
	switch {
	case id == -1:
		return nil
	case id == 0:
		return as.shadow
	case id >= 1 && id <= len(as.tables):
		return as.tables[id-1]
	}
	panic("mm: TableByID out of range")
}
