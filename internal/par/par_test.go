package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int64
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("job ran for n=0") })
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		jobs := make([]func() string, 20)
		for i := range jobs {
			i := i
			jobs[i] = func() string { return fmt.Sprint(i * i) }
		}
		got := Map(workers, jobs)
		for i, v := range got {
			if want := fmt.Sprint(i * i); v != want {
				t.Fatalf("workers=%d: Map[%d] = %q, want %q", workers, i, v, want)
			}
		}
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			Do(workers, 10, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}
