package core

import (
	"strings"
	"testing"

	"vdom/internal/cycles"
)

func TestTracerObservesAlgorithmDecisions(t *testing.T) {
	f := x86Fixture(t)
	var events []Event
	f.m.SetTracer(func(e Event) { events = append(events, e) })

	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	// VdrAlloc creates VDS0.
	if len(events) == 0 || events[0].Kind != EventVDSAlloc {
		t.Fatalf("first event = %v, want vds-alloc", events)
	}

	// Fill the VDS: every activation is a map.
	kinds := func() map[EventKind]int {
		out := map[EventKind]int{}
		for _, e := range events {
			out[e.Kind]++
		}
		return out
	}
	for i := 0; i < usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	if kinds()[EventMap] != usablePdoms {
		t.Errorf("map events = %d, want %d", kinds()[EventMap], usablePdoms)
	}
	if kinds()[EventEvict] != 0 {
		t.Error("evictions below capacity")
	}

	// Overflow: a new VDS + switch appear.
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	k := kinds()
	if k[EventVDSAlloc] != 2 || k[EventSwitch] == 0 {
		t.Errorf("overflow events = %v, want a second vds-alloc and a switch", k)
	}

	// Free emits.
	if _, err := f.m.FreeVdom(d); err != nil {
		t.Fatal(err)
	}
	if kinds()[EventFree] != 1 {
		t.Errorf("free events = %d, want 1", kinds()[EventFree])
	}

	// Event strings are informative.
	s := events[len(events)-1].String()
	if !strings.Contains(s, "free") || !strings.Contains(s, "vdom=") {
		t.Errorf("event string %q malformed", s)
	}
}

func TestTracerEvictionAndMigration(t *testing.T) {
	f := x86Fixture(t)
	var events []Event
	f.m.SetTracer(func(e Event) { events = append(events, e) })

	// nas=1 thread: overflow evicts.
	t1 := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(t1, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= usablePdoms; i++ {
		d, b := f.newVdomRegion(t, t1, 1, false)
		grant(t, f.m, t1, d, VPermReadWrite)
		if _, err := t1.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, t1, d, VPermNone)
	}
	var sawEvict bool
	for _, e := range events {
		if e.Kind == EventEvict {
			sawEvict = true
			if e.TID != t1.TID() {
				t.Errorf("evict attributed to tid %d, want %d", e.TID, t1.TID())
			}
			if e.Cost == 0 {
				t.Error("evict event has zero cost")
			}
		}
	}
	if !sawEvict {
		t.Error("no evict events traced")
	}

	// A second thread sharing the (full) VDS migrates on overflow.
	events = nil
	t2 := f.proc.NewTask(1)
	if _, err := f.m.VdrAlloc(t2, 4); err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, t2, 1, false)
	grant(t, f.m, t2, d, VPermReadWrite)
	if _, err := t2.Access(b, true); err != nil {
		t.Fatal(err)
	}
	var sawMigrate bool
	for _, e := range events {
		if e.Kind == EventMigrate && e.TID == t2.TID() {
			sawMigrate = true
		}
	}
	if !sawMigrate {
		t.Errorf("no migrate event for thread 2; events: %v", events)
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	f := newFixture(t, cycles.X86, 2, DefaultPolicy())
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	// No tracer installed: nothing panics, nothing records.
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	// Install then remove.
	n := 0
	f.m.SetTracer(func(Event) { n++ })
	grant(t, f.m, task, d, VPermNone)
	f.m.SetTracer(nil)
	grant(t, f.m, task, d, VPermReadWrite)
	_ = n
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventMap, EventEvict, EventSwitch, EventMigrate, EventVDSAlloc, EventFree}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d string %q empty or dup", k, s)
		}
		seen[s] = true
	}
}
