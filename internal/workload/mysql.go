package workload

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
)

// MySQLConfig describes one MySQL/sysbench OLTP read-write run (Figure 6):
// one connection-handler thread per client, each handler's stack isolated
// in a private vdom, and the MEMORY storage engine's HP_PTRS structures
// isolated in a shared vdom that handlers open around engine calls.
type MySQLConfig struct {
	Arch    cycles.Arch
	System  System
	Clients int
	// QueriesPerClient defaults to 40.
	QueriesPerClient int
	// Cores defaults to the platform's hardware-thread count.
	Cores int
	// StatementsPerQuery is the sysbench OLTP RW statement count per
	// transaction (default 18); each statement opens the engine vdom.
	StatementsPerQuery int
	// ChurnEvery, when positive, closes and reopens each connection
	// after that many queries — the thread-cache reuse path MySQL takes
	// for incoming connections, which recycles the stack's domain.
	ChurnEvery int
	Seed       uint64
	// Record, when non-nil, captures the run's domain-op stream
	// (internal/replay).
	Record *replay.Recorder
}

func (c *MySQLConfig) defaults() {
	if c.QueriesPerClient == 0 {
		c.QueriesPerClient = 40
	}
	if c.Cores == 0 {
		c.Cores = DefaultCores(c.Arch)
	}
	if c.StatementsPerQuery == 0 {
		c.StatementsPerQuery = 18
	}
	if c.Seed == 0 {
		c.Seed = 0xdb5eed
	}
}

// MySQLResult is one run's outcome.
type MySQLResult struct {
	Config MySQLConfig
	// Supported is false when the system cannot run the configuration
	// at all — libmpk cannot provide per-thread stack protection beyond
	// 14 concurrent clients (one hardware key is taken by the engine
	// data, and stack keys are held for the connection's lifetime).
	Supported   bool
	Queries     int
	Makespan    sim.Time
	QueriesPerS float64
	VDomStats   core.Stats
	LibmpkStats libmpk.Stats
}

// mysqlCosts calibrates per-transaction work to the paper's absolute
// throughputs (≈5.5×10³ q/s on the Xeon at 48 clients, ≈1.8×10³ on the
// Pi at saturation).
type mysqlCosts struct {
	userPerQuery cycles.Cost
	kernPerQuery cycles.Cost
	// lockFrac is the serialized fraction of each query (storage-engine
	// and transaction-log mutexes), which caps scaling.
	lockFrac float64
}

func mysqlCostsFor(arch cycles.Arch) mysqlCosts {
	if arch == cycles.ARM {
		return mysqlCosts{userPerQuery: 1_900_000, kernPerQuery: 500_000, lockFrac: 0.05}
	}
	return mysqlCosts{userPerQuery: 14_000_000, kernPerQuery: 3_400_000, lockFrac: 0.02}
}

// stackPages is each connection handler's protected stack size (64 KiB).
const stackPages = 16

// handler is one connection-handler thread's state.
type handler struct {
	task     *kernel.Task
	id       int
	stack    pagetable.VAddr
	stackDom core.VdomID
	stackKey libmpk.Vkey
}

// engineRegionPages is the MEMORY-engine HP_PTRS region (10 tables).
const engineRegionPages = 10 * 8

// RunMySQL executes one MySQL configuration and reports throughput.
func RunMySQL(cfg MySQLConfig) MySQLResult {
	cfg.defaults()
	res := MySQLResult{Config: cfg, Supported: true}

	// libmpk pins one key per live connection stack plus one for the
	// engine; beyond the hardware's usable keys it busy-waits forever.
	if cfg.System == Libmpk && cfg.Clients > libmpk.UsableKeys-1 {
		res.Supported = false
		return res
	}

	pl := newPlatform(cfg.Arch, cfg.Cores, cfg.System == VDom, cfg.Seed)
	costs := mysqlCostsFor(cfg.Arch)
	totalQueries := cfg.Clients * cfg.QueriesPerClient

	var (
		mgr       *core.Manager
		lbm       *libmpk.Manager
		lbmLock   *sim.Resource
		esys      *epk.System
		engineDom core.VdomID
		engineKey libmpk.Vkey
		engineEPK int
	)
	engineLock := pl.env.NewResource(1)

	switch cfg.System {
	case VDom:
		mgr = core.Attach(pl.proc, core.DefaultPolicy())
	case Libmpk:
		lbm = libmpk.Attach(pl.proc, nil)
		lbmLock = pl.env.NewResource(1)
	case EPK:
		// Domains: one per connection stack + the engine region.
		esys = epk.New(cfg.Clients+1, epk.DefaultVMTax())
		engineEPK = 0
	}
	if rec := cfg.Record; rec != nil {
		rec.AttachKernel(pl.kernel)
		if mgr != nil {
			rec.AttachManager(mgr)
		}
		if lbm != nil {
			rec.AttachLibmpk(lbm)
		}
		if esys != nil {
			rec.AttachEPK(esys)
		}
	}

	setupTask := pl.proc.NewTask(0)
	if cfg.Record != nil {
		cfg.Record.Spawn(setupTask)
	}

	// The engine's in-memory tables.
	engineBase := pl.mustAlloc(setupTask, engineRegionPages*pagetable.PageSize)
	switch cfg.System {
	case VDom:
		if _, err := mgr.VdrAlloc(setupTask, 0); err != nil {
			panic(err)
		}
		engineDom, _ = mgr.AllocVdom(true) // frequently accessed
		if _, err := mgr.Mprotect(setupTask, engineBase, engineRegionPages*pagetable.PageSize, engineDom); err != nil {
			panic(err)
		}
	case Libmpk:
		engineKey, _ = lbm.PkeyAlloc()
		if _, err := lbm.PkeyMprotect(nil, setupTask, engineBase, engineRegionPages*pagetable.PageSize, engineKey); err != nil {
			panic(err)
		}
	}

	handlers := make([]*handler, cfg.Clients)
	for i := range handlers {
		h := &handler{task: pl.proc.NewTask((i + 1) % cfg.Cores), id: i}
		if cfg.Record != nil {
			cfg.Record.Spawn(h.task)
		}
		h.stack = pl.mustAlloc(h.task, stackPages*pagetable.PageSize)
		switch cfg.System {
		case VDom:
			if _, err := mgr.VdrAlloc(h.task, 0); err != nil {
				panic(err)
			}
			h.stackDom, _ = mgr.AllocVdom(false)
			if _, err := mgr.Mprotect(h.task, h.stack, stackPages*pagetable.PageSize, h.stackDom); err != nil {
				panic(err)
			}
			// The stack stays accessible for the connection's life.
			if _, err := mgr.WrVdr(h.task, h.stackDom, core.VPermReadWrite); err != nil {
				panic(err)
			}
		case Libmpk:
			h.stackKey, _ = lbm.PkeyAlloc()
			if _, err := lbm.PkeyMprotect(nil, h.task, h.stack, stackPages*pagetable.PageSize, h.stackKey); err != nil {
				panic(err)
			}
			if _, err := lbm.PkeySet(nil, h.task, h.stackKey, hw.PermReadWrite); err != nil {
				panic(fmt.Sprintf("mysql: stack key for client %d: %v", h.id, err))
			}
		}
		handlers[i] = h
	}

	perStmtUser := costs.userPerQuery / cycles.Cost(cfg.StatementsPerQuery)
	perStmtKern := costs.kernPerQuery / cycles.Cost(cfg.StatementsPerQuery)
	lockCycles := uint64(float64(costs.userPerQuery+costs.kernPerQuery) * costs.lockFrac)

	for _, h := range handlers {
		h := h
		rng := sim.NewRand(cfg.Seed ^ uint64(h.id)<<20)
		pl.env.Go(fmt.Sprintf("mysql-conn-%d", h.id), func(p *sim.Proc) {
			for q := 0; q < cfg.QueriesPerClient; q++ {
				runMySQLQuery(pl, cfg, h.task, h.id, p, rng,
					mgr, lbm, lbmLock, esys,
					engineDom, engineKey, engineEPK,
					engineBase, h.stack,
					perStmtUser, perStmtKern, lockCycles, engineLock)
				if cfg.ChurnEvery > 0 && (q+1)%cfg.ChurnEvery == 0 && q+1 < cfg.QueriesPerClient {
					churnConnection(pl, cfg, h, p, mgr, lbm)
				}
			}
		})
	}
	makespan := pl.env.Run()
	res.Queries = totalQueries
	res.Makespan = makespan
	if makespan > 0 {
		res.QueriesPerS = float64(totalQueries) / (float64(makespan) / ClockHz(cfg.Arch))
	}
	if mgr != nil {
		res.VDomStats = mgr.Stats
	}
	if lbm != nil {
		res.LibmpkStats = lbm.Stats
		res.LibmpkStats.BusyWaitCycles += lbmLock.WaitedCycles
	}
	return res
}

// churnConnection models connection close + thread-cache reuse: the old
// stack domain is released and a fresh one protects the recycled stack.
func churnConnection(pl *platform, cfg MySQLConfig, h *handler, p *sim.Proc,
	mgr *core.Manager, lbm *libmpk.Manager) {
	switch cfg.System {
	case VDom:
		pl.sched.Run(p, h.task, func() cycles.Cost {
			c, err := mgr.FreeVdom(h.stackDom)
			if err != nil {
				panic(err)
			}
			d, c2 := mgr.AllocVdom(false)
			h.stackDom = d
			c3, err := mgr.Mprotect(h.task, h.stack, stackPages*pagetable.PageSize, d)
			if err != nil {
				panic(err)
			}
			c4, err := mgr.WrVdr(h.task, d, core.VPermReadWrite)
			if err != nil {
				panic(err)
			}
			return c + c2 + c3 + c4
		})
	case Libmpk:
		pl.sched.Run(p, h.task, func() cycles.Cost {
			c, err := lbm.PkeyFree(h.task, h.stackKey)
			if err != nil {
				panic(err)
			}
			v, c2 := lbm.PkeyAlloc()
			h.stackKey = v
			c3, err := lbm.PkeyMprotect(nil, h.task, h.stack, stackPages*pagetable.PageSize, v)
			if err != nil {
				panic(err)
			}
			c4, err := lbm.PkeySet(nil, h.task, v, hw.PermReadWrite)
			if err != nil {
				panic(err)
			}
			return c + c2 + c3 + c4
		})
	}
}

// runMySQLQuery models one OLTP read-write transaction: per statement, the
// handler opens the engine vdom, touches table memory and its own stack,
// executes the statement's work, and closes the engine vdom; a serialized
// section models the engine/log mutexes.
func runMySQLQuery(pl *platform, cfg MySQLConfig, task *kernel.Task, tid int, p *sim.Proc, rng *sim.Rand,
	mgr *core.Manager, lbm *libmpk.Manager, lbmLock *sim.Resource, esys *epk.System,
	engineDom core.VdomID, engineKey libmpk.Vkey, engineEPK int,
	engineBase, stack pagetable.VAddr,
	perStmtUser, perStmtKern cycles.Cost, lockCycles uint64, engineLock *sim.Resource) {

	run := func(body func() cycles.Cost) {
		pl.sched.Run(p, task, body)
	}
	work := func(user, kern cycles.Cost) cycles.Cost {
		if cfg.System == EPK {
			return esys.WorkInVM(user, kern)
		}
		return user + kern
	}
	touch := func(addr pagetable.VAddr, write bool) cycles.Cost {
		c, err := task.Access(addr, write)
		if err != nil {
			panic(fmt.Sprintf("mysql: access %#x: %v", uint64(addr), err))
		}
		return c
	}

	for s := 0; s < cfg.StatementsPerQuery; s++ {
		tableOff := pagetable.VAddr(rng.Intn(engineRegionPages)) * pagetable.PageSize
		stackOff := pagetable.VAddr(rng.Intn(stackPages)) * pagetable.PageSize

		// Open the engine structures for this statement.
		switch cfg.System {
		case VDom:
			run(func() cycles.Cost {
				c, err := mgr.WrVdr(task, engineDom, core.VPermReadWrite)
				if err != nil {
					panic(err)
				}
				return c
			})
		case Libmpk:
			libmpkAcquire(pl.sched, p, lbmLock, lbm, task, engineKey, hw.PermReadWrite)
		case EPK:
			run(func() cycles.Cost { return esys.Switch(tid, engineEPK) })
		}

		// Statement body: engine data + own stack + compute.
		run(func() cycles.Cost {
			var c cycles.Cost
			if cfg.System != EPK { // EPK's accesses are inside the VM model
				c += touch(engineBase+tableOff, s%3 != 0)
				c += touch(stack+stackOff, true)
			}
			return c + work(perStmtUser, perStmtKern)
		})

		// Close the engine structures (least privilege). Under EPK the
		// handler returns to its stack domain's EPT group, which is a
		// VMFUNC once connections outgrow one group.
		switch cfg.System {
		case VDom:
			run(func() cycles.Cost {
				c, err := mgr.WrVdr(task, engineDom, core.VPermNone)
				if err != nil {
					panic(err)
				}
				return c
			})
		case Libmpk:
			run(func() cycles.Cost {
				c, err := lbm.PkeySet(nil, task, engineKey, hw.PermNone)
				if err != nil {
					panic(err)
				}
				return c
			})
		case EPK:
			run(func() cycles.Cost { return esys.Switch(tid, tid+1) })
		}
	}

	// Serialized commit section (engine/log mutex).
	engineLock.Acquire(p, 1)
	run(func() cycles.Cost { return work(cycles.Cost(lockCycles), 0) })
	engineLock.Release(1)
}
