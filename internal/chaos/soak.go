package chaos

import (
	"errors"
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
)

// SoakConfig parameterizes a chaos soak run. Zero fields take defaults.
type SoakConfig struct {
	// Chaos selects the fault mix and the seed.
	Chaos Config
	// Ops is the number of API/access operations to drive (default 5000).
	Ops int
	// Cores is the machine size (default 4).
	Cores int
	// Threads is the thread count, round-robin pinned (default 4).
	Threads int
	// Vdoms is the number of protected regions cycling through the
	// working set (default 24).
	Vdoms int
	// AuditEvery runs the cross-layer auditor every N ops (default 64;
	// a final audit always runs).
	AuditEvery int
	// Arch selects the cost table (default X86).
	Arch cycles.Arch

	// Metrics, when non-nil, is attached to the kernel and the VDom
	// manager; the run's per-(layer, op) cycle attribution then sums to
	// exactly SoakResult.Cycles, and the injector's and layers' event
	// counters are harvested when the soak finishes.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives one Chrome-trace decision span per
	// domain-virtualization event, timestamped on the run's cumulative
	// cycle clock.
	Trace *metrics.Trace
	// Record captures the soak's domain-op stream as a replayable trace
	// (SoakResult.Trace); failing runs can then be shrunk to a minimal
	// reproducer with SoakResult.FailTrace.
	Record bool
}

// SoakResult is the outcome of one soak run.
type SoakResult struct {
	// Ops is the number of operations driven.
	Ops int
	// Cycles is the total cycle cost charged across the run.
	Cycles cycles.Cost
	// Injected and Recovered are the injector's per-kind counters.
	Injected, Recovered map[string]uint64
	// Events is the deterministic fault/recovery log.
	Events []Event
	// Violations collects every auditor finding across all audit passes.
	Violations []Violation
	// Unrecovered lists operations that failed in a way no degradation
	// path absorbed. A healthy run has none.
	Unrecovered []string
	// Audits is the number of auditor passes.
	Audits int
	// ASIDRollovers is the kernel's generation-rollover count.
	ASIDRollovers uint64
	// CoreStats snapshots the VDom manager's operation counters.
	CoreStats core.Stats
	// Trace is the full replayable recording (nil unless
	// SoakConfig.Record was set).
	Trace *replay.Trace
	// FirstFailEvent is the trace position just past the first
	// unrecovered failure, or -1 when the run was healthy. FailTrace
	// truncates the recording there.
	FirstFailEvent int
	// TracePath is where a harness persisted the (fail) trace, when it
	// did; informational only.
	TracePath string
}

// FailTrace returns the minimal replayable reproducer for an unhealthy
// run: the recording truncated just past the first unrecovered failure,
// or the full recording when only audit violations were found. It
// returns nil for healthy or unrecorded runs.
func (r *SoakResult) FailTrace() *replay.Trace {
	if r.Trace == nil || (len(r.Unrecovered) == 0 && len(r.Violations) == 0) {
		return nil
	}
	if r.FirstFailEvent < 0 || r.FirstFailEvent >= len(r.Trace.Events) {
		return r.Trace
	}
	return &replay.Trace{
		Header: r.Trace.Header,
		Events: r.Trace.Events[:r.FirstFailEvent:r.FirstFailEvent],
	}
}

// Merge folds another shard's result into r: counters and cycle totals
// are summed, per-kind maps are added key-wise, and the event, violation,
// and unrecovered listings are appended in call order. Merging shards of
// a sharded soak in shard-index order therefore yields the same aggregate
// regardless of which worker ran which shard.
func (r *SoakResult) Merge(o *SoakResult) {
	if o == nil {
		return
	}
	r.Ops += o.Ops
	r.Cycles += o.Cycles
	r.Audits += o.Audits
	r.ASIDRollovers += o.ASIDRollovers
	if r.Injected == nil {
		r.Injected = map[string]uint64{}
	}
	for k, v := range o.Injected {
		r.Injected[k] += v
	}
	if r.Recovered == nil {
		r.Recovered = map[string]uint64{}
	}
	for k, v := range o.Recovered {
		r.Recovered[k] += v
	}
	r.Events = append(r.Events, o.Events...)
	r.Violations = append(r.Violations, o.Violations...)
	r.Unrecovered = append(r.Unrecovered, o.Unrecovered...)
	r.CoreStats = r.CoreStats.Add(o.CoreStats)
	// Traces do not merge; keep the first shard's recording (shards that
	// need theirs kept dump them before merging).
	if r.Trace == nil {
		r.Trace, r.FirstFailEvent, r.TracePath = o.Trace, o.FirstFailEvent, o.TracePath
	}
}

// regionPages is the size of each protected region in the soak workload.
const regionPages = 4

// Soak boots a machine with the injector attached and drives a randomized
// (but seed-deterministic) VDom workload through it: grants, accesses,
// revocations, vdom free/realloc cycles, VDS spreading, VDR churn, and
// frame reclaim — auditing cross-layer consistency as it goes. The same
// SoakConfig reproduces the identical event sequence.
func Soak(cfg SoakConfig) *SoakResult {
	if cfg.Ops <= 0 {
		cfg.Ops = 5000
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Vdoms <= 0 {
		cfg.Vdoms = 24
	}
	if cfg.AuditEvery <= 0 {
		cfg.AuditEvery = 64
	}

	in := New(cfg.Chaos)
	machine := hw.NewMachine(hw.Config{Arch: cfg.Arch, NumCores: cfg.Cores})
	kern := kernel.New(kernel.Config{Machine: machine, VDomEnabled: true})
	in.AttachMachine(machine)
	in.AttachKernel(kern)
	proc := kern.NewProcess()
	mgr := core.Attach(proc, core.DefaultPolicy())
	in.AttachManager(mgr)
	var rec *replay.Recorder
	if cfg.Record {
		rec = replay.NewRecorder(soakHeader(cfg))
		rec.AttachKernel(kern)
		rec.AttachManager(mgr)
	}

	res := &SoakResult{Ops: cfg.Ops, FirstFailEvent: -1}
	var total cycles.Cost
	kern.SetMetrics(cfg.Metrics)
	mgr.SetMetrics(cfg.Metrics)
	if cfg.Trace != nil {
		mgr.SetTracer(func(e core.Event) {
			cfg.Trace.Decision(e.Kind.String(), e.TID, uint64(total), uint64(e.Cost), map[string]uint64{
				"vdom": uint64(e.Vdom), "vds": uint64(e.VDS), "pdom": uint64(e.Pdom),
			})
		})
	}
	fail := func(op int, what string, err error) {
		if rec != nil && res.FirstFailEvent < 0 {
			// The failing op's events are already recorded (taps fire at
			// completion), so the prefix up to here is the reproducer.
			res.FirstFailEvent = rec.Len()
		}
		res.Unrecovered = append(res.Unrecovered, fmt.Sprintf("op %d: %s: %v", op, what, err))
	}

	tasks := make([]*kernel.Task, cfg.Threads)
	for i := range tasks {
		tasks[i] = proc.NewTask(i % cfg.Cores)
		if rec != nil {
			rec.Spawn(tasks[i])
		}
	}

	// Working set: an unprotected scratch region plus one region per vdom.
	const plainBase = pagetable.VAddr(0x1000_0000)
	const plainPages = 64
	region := func(i int) pagetable.VAddr {
		return pagetable.VAddr(0x4000_0000 + uint64(i)*0x10_0000)
	}
	if c, err := tasks[0].Mmap(plainBase, plainPages*pagetable.PageSize, true); err != nil {
		fail(0, "setup mmap", err)
	} else {
		total += c
	}
	vdoms := make([]core.VdomID, cfg.Vdoms)
	for i := range vdoms {
		if c, err := tasks[0].Mmap(region(i), regionPages*pagetable.PageSize, true); err != nil {
			fail(0, "setup mmap", err)
		} else {
			total += c
		}
		d, c := mgr.AllocVdom(i%4 == 0)
		total += c
		if c, err := mgr.Mprotect(tasks[0], region(i), regionPages*pagetable.PageSize, d); err != nil {
			fail(0, "setup mprotect", err)
		} else {
			total += c
		}
		vdoms[i] = d
	}
	for _, t := range tasks {
		c, err := mgr.VdrAlloc(t, 0)
		total += c
		if err != nil {
			fail(0, "setup vdr_alloc", err)
		}
	}

	audit := func() {
		res.Audits++
		res.Violations = append(res.Violations, Audit(machine, kern, mgr)...)
	}

	// Each injected fault and recovery becomes a trace instant at the
	// cycle position of the op that triggered it.
	tracedEvents := 0
	traceEvents := func() {
		if cfg.Trace == nil {
			return
		}
		evs := in.Events()
		for ; tracedEvents < len(evs); tracedEvents++ {
			cfg.Trace.Instant("chaos", evs[tracedEvents].Kind, 0, uint64(total))
		}
	}

	// The op stream draws from its own PRNG so the fault stream (the
	// injector's) and the workload stream stay independent but both
	// replay from the seed.
	r := sim.NewRand(cfg.Chaos.Seed ^ 0x6a09e667f3bcc908)
	for op := 1; op <= cfg.Ops; op++ {
		t := tasks[r.Intn(len(tasks))]
		di := r.Intn(len(vdoms))
		d := vdoms[di]
		switch x := r.Intn(100); {
		case x < 50: // grant, then touch a page of the region
			perm := core.VPermReadWrite
			if x < 10 {
				perm = core.VPermRead
			}
			c, err := mgr.WrVdr(t, d, perm)
			total += c
			if err != nil {
				fail(op, fmt.Sprintf("wrvdr grant vdom %d", d), err)
				break
			}
			addr := region(di) + pagetable.VAddr(uint64(r.Intn(regionPages))*pagetable.PageSize)
			write := perm == core.VPermReadWrite && r.Intn(2) == 0
			c, err = t.Access(addr, write)
			total += c
			if err != nil {
				fail(op, fmt.Sprintf("access vdom %d at %#x", d, uint64(addr)), err)
			}
		case x < 65: // revoke (sometimes pinning)
			perm := core.VPermNone
			if x < 55 {
				perm = core.VPermPinned
			}
			c, err := mgr.WrVdr(t, d, perm)
			total += c
			if err != nil {
				fail(op, fmt.Sprintf("wrvdr revoke vdom %d", d), err)
			}
		case x < 75: // free the vdom, rebind its region to a fresh one
			c, err := mgr.FreeVdom(d)
			total += c
			if err != nil {
				fail(op, fmt.Sprintf("free vdom %d", d), err)
				break
			}
			nd, c := mgr.AllocVdom(r.Intn(4) == 0)
			total += c
			c, err = mgr.Mprotect(t, region(di), regionPages*pagetable.PageSize, nd)
			total += c
			if err != nil {
				fail(op, fmt.Sprintf("mprotect vdom %d", nd), err)
				break
			}
			vdoms[di] = nd
		case x < 83: // spread the thread into a fresh VDS
			c, err := mgr.PlaceInNewVDS(t)
			total += c
			// A typed resource failure here is tolerated: the caller's
			// recovery is simply staying in its current VDS.
			if err != nil && !errors.Is(err, core.ErrNoResources) && !errors.Is(err, core.ErrExhausted) {
				fail(op, "place_in_new_vds", err)
			}
		case x < 90: // VDR churn (exercises the base-ASID restore)
			c, err := mgr.VdrFree(t)
			total += c
			if err != nil {
				fail(op, "vdr_free", err)
				break
			}
			c, err = mgr.VdrAlloc(t, 0)
			total += c
			if err != nil {
				fail(op, "vdr_alloc", err)
			}
		case x < 96: // kswapd pressure, plus VDS garbage collection
			max := 1 + r.Intn(8)
			n, c := proc.ReclaimFrames(t.CoreID(), max)
			total += c
			reaped := mgr.ReapVDSes()
			if rec != nil {
				rec.Reclaim(t.CoreID(), max, n, c)
				rec.Reap(reaped)
			}
		default: // unprotected access
			addr := plainBase + pagetable.VAddr(uint64(r.Intn(plainPages))*pagetable.PageSize)
			c, err := t.Access(addr, r.Intn(2) == 0)
			total += c
			if err != nil {
				fail(op, fmt.Sprintf("plain access at %#x", uint64(addr)), err)
			}
		}
		traceEvents()
		if op%cfg.AuditEvery == 0 {
			audit()
		}
	}
	audit()

	res.Cycles = total
	res.Injected = in.Injected()
	res.Recovered = in.Recovered()
	res.Events = in.Events()
	res.ASIDRollovers = kern.ASIDRollovers()
	res.CoreStats = mgr.Stats
	if rec != nil {
		res.Trace = rec.Finish()
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Accumulate(in, machine, proc.AS(), kern)
	}
	return res
}
