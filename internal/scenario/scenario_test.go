package scenario

import (
	"reflect"
	"testing"

	"vdom/internal/backend"
	"vdom/internal/replay"
)

func TestLibraryValidates(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Library() {
		if err := s.Validate(); err != nil {
			t.Errorf("bundled spec %q does not validate: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate bundled spec name %q", s.Name)
		}
		names[s.Name] = true
	}
}

func TestCompileDeterministic(t *testing.T) {
	for _, s := range Library() {
		for _, kern := range backend.Names() {
			a, err := Compile(s, kern)
			if err != nil {
				t.Fatalf("compile %s × %s: %v", s.Name, kern, err)
			}
			b, err := Compile(s, kern)
			if err != nil {
				t.Fatalf("recompile %s × %s: %v", s.Name, kern, err)
			}
			if !reflect.DeepEqual(a.Cells, b.Cells) {
				t.Fatalf("compile %s × %s is not deterministic", s.Name, kern)
			}
			if len(a.Cells) == 0 {
				t.Fatalf("compile %s × %s produced no cells", s.Name, kern)
			}
		}
	}
}

func TestCompileUnknownKernel(t *testing.T) {
	if _, err := Compile(Library()[0], "xen"); err == nil {
		t.Fatal("compile accepted an unregistered kernel")
	}
	if _, err := Kernels(Library()[0], "xen"); err == nil {
		t.Fatal("kernel resolution accepted an unregistered override")
	}
}

// TestRunCellAllKernels drives the first cell of every bundled scenario
// on every registered kernel twice and requires identical results — the
// in-package core of the determinism guarantee (the bench-level
// regression covers full plans across parallel widths).
func TestRunCellAllKernels(t *testing.T) {
	for _, s := range Library() {
		for _, kern := range backend.Names() {
			plan, err := Compile(s, kern)
			if err != nil {
				t.Fatalf("compile %s × %s: %v", s.Name, kern, err)
			}
			plan.Quick()
			c := plan.Cells[0]
			t.Run(s.Name+"/"+kern, func(t *testing.T) {
				a, err := RunCell(c, CellOptions{})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				b, err := RunCell(c, CellOptions{})
				if err != nil {
					t.Fatalf("rerun: %v", err)
				}
				if a.EndDigest != b.EndDigest || a.Cycles != b.Cycles || a.Ops != b.Ops ||
					a.Activations != b.Activations || a.Churns != b.Churns ||
					a.Faulted != b.Faulted || a.Injected != b.Injected {
					t.Fatalf("rerun diverged: %+v vs %+v", a, b)
				}
				if a.Ops == 0 || a.Cycles == 0 {
					t.Fatalf("cell did no work: %+v", a)
				}
			})
		}
	}
}

// TestCellRecordReplay records one cell per bundled scenario on the VDom
// kernel and replays it bit-identically, including faulted cells (the
// injector configuration rides the trace header).
func TestCellRecordReplay(t *testing.T) {
	for _, s := range Library() {
		plan, err := Compile(s, replay.KernelVDom)
		if err != nil {
			t.Fatalf("compile %s: %v", s.Name, err)
		}
		plan.Quick()
		// The last cell: for mesh-churn that is the faulted "storm" phase.
		c := plan.Cells[len(plan.Cells)-1]
		t.Run(s.Name, func(t *testing.T) {
			res, err := RunCell(c, CellOptions{Record: true})
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			if res.Trace == nil || len(res.Trace.Events) == 0 {
				t.Fatal("recording captured no events")
			}
			rr, err := ReplayTrace(res.Trace, replay.Options{})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rr.Divergence != nil {
				t.Fatalf("replay diverged: %s", rr.Divergence)
			}
			// Recording twice must give byte-identical traces.
			res2, err := RunCell(c, CellOptions{Record: true})
			if err != nil {
				t.Fatalf("re-record: %v", err)
			}
			a := replay.Encode(res.Trace)
			b := replay.Encode(res2.Trace)
			if string(a) != string(b) {
				t.Fatal("recording the same cell twice produced different trace bytes")
			}
		})
	}
}

// TestReplayTraceRejectsForeign checks ReplayTrace refuses traces that
// are not scenario recordings.
func TestReplayTraceRejectsForeign(t *testing.T) {
	tr := &replay.Trace{Header: replay.Header{Workload: "httpd-vdom-x86"}}
	if _, err := ReplayTrace(tr, replay.Options{}); err == nil {
		t.Fatal("ReplayTrace accepted a non-scenario trace")
	}
}
