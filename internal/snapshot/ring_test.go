package snapshot_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vdom/internal/replay"
	"vdom/internal/snapshot"
)

// ringSnap builds a small but valid encoded container, parameterized so
// entries are distinguishable.
func ringSnap(tag byte) []byte {
	st := &snapshot.State{Meta: snapshot.Meta{
		Header: replay.Header{Version: replay.FormatVersion, Kernel: replay.KernelVDom, Arch: "x86", Cores: 1},
		Clock:  uint64(tag),
	}}
	st.AddSection("payload", []byte{tag, tag, tag})
	return snapshot.Encode(st)
}

func TestRingAppendPrunesToCapacity(t *testing.T) {
	dir := t.TempDir()
	r, err := snapshot.NewRing(dir, "shard0", 3)
	if err != nil {
		t.Fatal(err)
	}
	for op := 1; op <= 5; op++ {
		if _, err := r.Append(op*100, ringSnap(byte(op))); err != nil {
			t.Fatalf("Append op %d: %v", op*100, err)
		}
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d, want 3/3", r.Len(), r.Cap())
	}
	ents := r.Entries()
	if ents[0].Op != 300 || ents[2].Op != 500 {
		t.Errorf("pruned ring holds ops %d..%d, want 300..500", ents[0].Op, ents[2].Op)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "shard0-*.snap"))
	if len(files) != 3 {
		t.Errorf("%d entry files on disk, want 3 (pruned entries must be removed)", len(files))
	}
	// No temp files may survive an append.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("stray temp files left behind: %v", tmps)
	}
}

func TestRingRestartAdoptsPersistedEntries(t *testing.T) {
	dir := t.TempDir()
	r, err := snapshot.NewRing(dir, "shard0", 4)
	if err != nil {
		t.Fatal(err)
	}
	for op := 1; op <= 3; op++ {
		if _, err := r.Append(op*10, ringSnap(byte(op))); err != nil {
			t.Fatal(err)
		}
	}

	// A new process opens the same (dir, name): it must adopt the old
	// entries in sequence order and continue the sequence.
	r2, err := snapshot.NewRing(dir, "shard0", 4)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 3 {
		t.Fatalf("restarted ring adopted %d entries, want 3", r2.Len())
	}
	if _, err := r2.Append(40, ringSnap(4)); err != nil {
		t.Fatal(err)
	}
	ents := r2.Entries()
	if ents[3].Op != 40 || ents[3].Seq <= ents[2].Seq {
		t.Errorf("post-restart append out of sequence: %+v", ents)
	}
	// A sibling shard in the same directory is invisible to this ring.
	if _, err := snapshot.NewRing(dir, "shard1", 4); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 4 {
		t.Errorf("sibling ring disturbed shard0's entries")
	}
}

// TestRingAdoptionSkipsForeignAndTornEntries opens a ring over a
// directory a previous process left in a hostile state: foreign files
// that merely resemble ring entries, a stray temp file, and a torn
// half-written entry (a crash on a filesystem that renamed before the
// data hit disk). Adoption must take only genuine entries, LatestGood
// must skip the torn one without error, and pruning must never delete a
// file the ring does not own.
func TestRingAdoptionSkipsForeignAndTornEntries(t *testing.T) {
	dir := t.TempDir()

	// Foreign occupants of the ring's directory: a sibling shard's entry,
	// a same-prefix file outside the naming scheme, an unrelated file,
	// and a stray temp from an interrupted append.
	foreign := []string{
		"other-00000001-op5.snap",
		"shard0-notes.snap",
		"README.txt",
		"shard0-00000009-op900.snap.tmp",
	}
	for _, name := range foreign {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a ring entry"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r, err := snapshot.NewRing(dir, "shard0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("fresh ring adopted %d foreign files as entries: %+v", r.Len(), r.Entries())
	}
	if _, err := r.Append(10, ringSnap(1)); err != nil {
		t.Fatal(err)
	}
	torn, err := r.Append(20, ringSnap(2))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the newest entry: half its bytes reached disk.
	full, err := os.ReadFile(torn.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn.Path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// A new process adopts the two genuine entries — and only them.
	r2, err := snapshot.NewRing(dir, "shard0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("restarted ring adopted %d entries, want 2", r2.Len())
	}

	// The torn newest entry is skipped without error; recovery lands on
	// the older good one.
	data, ent, skipped, err := r2.LatestGood()
	if err != nil {
		t.Fatalf("LatestGood with a torn newest entry: %v", err)
	}
	if skipped != 1 || ent.Op != 10 {
		t.Errorf("LatestGood skipped %d landing on op %d, want 1 and 10", skipped, ent.Op)
	}
	if st, err := snapshot.Decode(data); err != nil || st.Meta.Clock != 1 {
		t.Errorf("recovered entry is not the good checkpoint: %v, %v", st, err)
	}

	// Appending past capacity prunes ring entries only: every foreign
	// file must survive.
	for op := 30; op <= 50; op += 10 {
		if _, err := r2.Append(op, ringSnap(byte(op/10))); err != nil {
			t.Fatal(err)
		}
	}
	if r2.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", r2.Len())
	}
	for _, name := range foreign {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("pruning deleted foreign file %s: %v", name, err)
		}
	}
}

func TestRingLatestGoodFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	r, err := snapshot.NewRing(dir, "shard0", 4)
	if err != nil {
		t.Fatal(err)
	}
	good := ringSnap(1)
	if _, err := r.Append(100, good); err != nil {
		t.Fatal(err)
	}
	bad := ringSnap(2)
	bad[len(bad)-1] ^= 0xFF // corrupt the newest entry's last payload byte
	e2, err := r.Append(200, bad)
	if err != nil {
		t.Fatal(err)
	}

	data, ent, skipped, err := r.LatestGood()
	if err != nil {
		t.Fatalf("LatestGood: %v", err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the corrupt newest entry)", skipped)
	}
	if ent.Op != 100 {
		t.Errorf("fell back to op %d, want 100", ent.Op)
	}
	if st, err := snapshot.Decode(data); err != nil || st.Meta.Clock != 1 {
		t.Errorf("recovered data is not the good entry: clock %v err %v", st, err)
	}

	// With every entry corrupt, the error is typed: the checksum failure
	// must surface through errors.Is.
	os.WriteFile(ents0Path(t, r), bad, 0o644)
	_, _, skipped, err = r.LatestGood()
	if err == nil {
		t.Fatal("LatestGood succeeded with every entry corrupt")
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if !errors.Is(err, snapshot.ErrBadChecksum) {
		t.Errorf("errors.Is(%v, ErrBadChecksum) = false", err)
	}
	_ = e2
}

// ents0Path returns the oldest entry's path.
func ents0Path(t *testing.T, r *snapshot.Ring) string {
	t.Helper()
	ents := r.Entries()
	if len(ents) == 0 {
		t.Fatal("empty ring")
	}
	return ents[0].Path
}

func TestRingEmptyLatestGoodIsTyped(t *testing.T) {
	r, err := snapshot.NewRing(t.TempDir(), "shard0", 2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = r.LatestGood()
	if !errors.Is(err, snapshot.ErrBadRecord) {
		t.Errorf("empty-ring error %v is not ErrBadRecord", err)
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := snapshot.NewRing(t.TempDir(), "shard0", 0); err == nil {
		t.Error("cap 0 accepted")
	}
	if _, err := snapshot.NewRing(t.TempDir(), "a-b", 2); err == nil {
		t.Error("name with '-' accepted (would corrupt the scan format)")
	}
	if _, err := snapshot.NewRing(t.TempDir(), "", 2); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRingMaxAgePrunesOldEntriesButKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	r, err := snapshot.NewRing(dir, "shard0", 8)
	if err != nil {
		t.Fatal(err)
	}
	r.SetMaxAge(50 * time.Millisecond)
	if _, err := r.Append(100, ringSnap(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := r.Append(200, ringSnap(2)); err != nil {
		t.Fatal(err)
	}
	ents := r.Entries()
	if len(ents) != 1 || ents[0].Op != 200 {
		t.Fatalf("age pruning kept %+v, want only op 200", ents)
	}

	// Even when the sole remaining entry is ancient, it survives: the
	// ring never prunes away recovery's last resort.
	time.Sleep(80 * time.Millisecond)
	if _, err := r.Append(300, ringSnap(3)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	r.SetMaxAge(time.Nanosecond)
	if _, err := r.Append(400, ringSnap(4)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1 (newest always kept)", r.Len())
	}
}
