package kernel

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
	"vdom/internal/tlb"
)

// Syscall identifies a system call of the simulated kernel's surface that
// matters to memory-domain systems and their sandboxes.
type Syscall int

const (
	// SysMmap maps anonymous memory.
	SysMmap Syscall = iota
	// SysMunmap unmaps memory.
	SysMunmap
	// SysMprotect changes page protections.
	SysMprotect
	// SysPkeyMprotect assigns a protection domain to pages.
	SysPkeyMprotect
	// SysProcessVMReadv reads another thread's memory through the
	// kernel — the classic confused-deputy vector sandboxes must filter.
	SysProcessVMReadv
	// SysGetTID returns the calling thread id.
	SysGetTID
)

// String names the syscall.
func (s Syscall) String() string {
	switch s {
	case SysMmap:
		return "mmap"
	case SysMunmap:
		return "munmap"
	case SysMprotect:
		return "mprotect"
	case SysPkeyMprotect:
		return "pkey_mprotect"
	case SysProcessVMReadv:
		return "process_vm_readv"
	case SysGetTID:
		return "gettid"
	default:
		return fmt.Sprintf("Syscall(%d)", int(s))
	}
}

// ErrBlocked reports that a syscall filter denied the call.
var ErrBlocked = errors.New("kernel: syscall blocked by filter")

// SyscallArgs carries the arguments of a filtered syscall.
type SyscallArgs struct {
	Addr   pagetable.VAddr
	Length uint64
	Write  bool
	Tag    mm.Tag
}

// SyscallFilter inspects a syscall before it runs; returning a non-nil
// error blocks it. This is the hook memory-domain sandboxes (Hodor, ERIM,
// Cerberus) use to stop kernel-based confused-deputy attacks (Table 2 ❸).
type SyscallFilter func(t *Task, sc Syscall, args SyscallArgs) error

// RegisterSyscallFilter appends a filter applied to every syscall.
func (k *Kernel) RegisterSyscallFilter(f SyscallFilter) {
	k.syscallFilters = append(k.syscallFilters, f)
}

// checkFilters runs all registered filters.
func (k *Kernel) checkFilters(t *Task, sc Syscall, args SyscallArgs) error {
	for _, f := range k.syscallFilters {
		if err := f(t, sc, args); err != nil {
			return fmt.Errorf("%w: %s: %w", ErrBlocked, sc, err)
		}
	}
	return nil
}

// tapSyscall forwards a completed memory-management syscall to the
// attached tap, if any. Only mmap/munmap/mprotect shape domain state and
// are recorded; other syscalls emit nothing.
func (t *Task) tapSyscall(sc Syscall, args SyscallArgs, cost cycles.Cost, err error) {
	ot := t.proc.kernel.opTap
	if ot == nil {
		return
	}
	e := tap.Event{TID: t.tid, Addr: args.Addr, Len: args.Length, Write: args.Write, Cost: cost, Err: err}
	switch sc {
	case SysMmap:
		e.Op = tap.OpMmap
	case SysMunmap:
		e.Op = tap.OpMunmap
	case SysMprotect:
		e.Op = tap.OpMprotect
	default:
		return
	}
	ot(e)
}

// Mmap is the mmap(2) analog. It returns the syscall's cycle cost.
func (t *Task) Mmap(addr pagetable.VAddr, length uint64, writable bool) (cost cycles.Cost, err error) {
	defer func() { t.tapSyscall(SysMmap, SyscallArgs{Addr: addr, Length: length, Write: writable}, cost, err) }()
	k := t.proc.kernel
	cost = k.params.SyscallReturn
	k.metrics.Attribute("kernel", "syscall", uint64(cost))
	if err := k.checkFilters(t, SysMmap, SyscallArgs{Addr: addr, Length: length, Write: writable}); err != nil {
		return cost, err
	}
	if _, err := t.proc.as.Mmap(addr, length, writable); err != nil {
		return cost, err
	}
	return cost, nil
}

// Munmap is the munmap(2) analog. Revocation is eager across every VDS
// table and requires a shootdown on all cores running the process.
func (t *Task) Munmap(addr pagetable.VAddr, length uint64) (cost cycles.Cost, err error) {
	defer func() { t.tapSyscall(SysMunmap, SyscallArgs{Addr: addr, Length: length}, cost, err) }()
	k := t.proc.kernel
	cost = k.params.SyscallReturn
	k.metrics.Attribute("kernel", "syscall", uint64(cost))
	if err := k.checkFilters(t, SysMunmap, SyscallArgs{Addr: addr, Length: length}); err != nil {
		return cost, err
	}
	rep, err := t.proc.as.Munmap(addr, length)
	if err != nil {
		return cost, err
	}
	cost += t.chargeSync(rep, addr, length)
	return cost, nil
}

// Mprotect is the mprotect(2) analog (writability only; domains are
// assigned through PkeyMprotect).
func (t *Task) Mprotect(addr pagetable.VAddr, length uint64, writable bool) (cost cycles.Cost, err error) {
	defer func() { t.tapSyscall(SysMprotect, SyscallArgs{Addr: addr, Length: length, Write: writable}, cost, err) }()
	k := t.proc.kernel
	cost = k.params.SyscallReturn
	k.metrics.Attribute("kernel", "syscall", uint64(cost))
	if err := k.checkFilters(t, SysMprotect, SyscallArgs{Addr: addr, Length: length, Write: writable}); err != nil {
		return cost, err
	}
	rep, err := t.proc.as.Mprotect(addr, length, writable)
	if err != nil {
		return cost, err
	}
	if rep.PagesTouched > 0 { // revocation: flush stale translations
		cost += t.chargeSync(rep, addr, length)
	}
	return cost, nil
}

// chargeSync converts a sync report into cycles and performs the TLB
// shootdown revocation requires: every core that may cache translations of
// this process flushes the affected range under every ASID the process's
// address spaces use. The shootdown is the reliable variant — a dropped
// IPI is retried and, failing that, repaired with a full flush, so
// revocation never leaves a stale translation behind.
func (t *Task) chargeSync(rep mm.SyncReport, addr pagetable.VAddr, length uint64) cycles.Cost {
	k := t.proc.kernel
	cost := cycles.Cost(rep.PTEWrites)*k.params.PTEWrite +
		cycles.Cost(rep.PMDWrites)*k.params.PMDWrite
	targets := t.proc.RunningCores()
	pages := length / pagetable.PageSize
	asids := t.proc.flushASIDs()
	rep2 := k.machine.ShootdownReliable(t.core, targets, func(tb tlb.Cache) {
		for _, a := range asids {
			tb.FlushRange(a, addr.VPN(), pages)
		}
	}, k.params.TLBFlushLocalPage*cycles.Cost(min64(pages, 16)))
	k.metrics.Attribute("pagetable", "sync", uint64(cost))
	k.metrics.Attribute("hw", "ipi", uint64(rep2.InitiatorCycles))
	cost += rep2.InitiatorCycles
	return cost
}

// flushASIDs returns every ASID under which a translation of this process
// may be cached: each task's base (shadow-table) ASID and current ASID,
// plus any extra address spaces a VDom-style fault handler maintains
// (dormant VDSes whose ASIDs no task currently runs under).
func (p *Process) flushASIDs() []tlb.ASID {
	// The handful of ASIDs a process uses makes a linear dedup over the
	// reused scratch slice cheaper than a map, and allocation-free.
	out := p.asidScratch[:0]
	add := func(a tlb.ASID) {
		if a == 0 {
			return
		}
		for _, x := range out {
			if x == a {
				return
			}
		}
		out = append(out, a)
	}
	for _, t := range p.tasks {
		add(t.baseASID)
		add(t.asid)
	}
	if l, ok := p.handler.(ASIDLister); ok {
		for _, a := range l.LiveASIDs() {
			add(a)
		}
	}
	p.asidScratch = out
	return out
}

// RunningCores returns the set of cores any task of the process is
// assigned to (the CPU bitmap that bounds shootdowns, §5.3).
func (p *Process) RunningCores() hw.CPUSet {
	var s hw.CPUSet
	for _, t := range p.tasks {
		s = s.Add(t.core)
	}
	return s
}

// GetTID is the gettid(2) analog; the paper cites its cost as the reason
// VDom shares VDR pointers through per-core pages instead.
func (t *Task) GetTID() (int, cycles.Cost) {
	return t.tid, t.proc.kernel.params.SyscallReturn
}

// ProcessVMReadv models the confused-deputy syscall: the kernel reads
// memory on the caller's behalf, checking only page presence — not the
// caller's domain permission register. Sandboxes must filter it (Table 2
// ❸). It returns the pdom of the page read so tests can confirm the leak.
func (t *Task) ProcessVMReadv(addr pagetable.VAddr) (pagetable.Pdom, cycles.Cost, error) {
	k := t.proc.kernel
	cost := k.params.SyscallReturn
	if err := k.checkFilters(t, SysProcessVMReadv, SyscallArgs{Addr: addr}); err != nil {
		return 0, cost, err
	}
	wr := t.proc.as.Shadow().Walk(addr)
	if !wr.Present {
		// Fault it in through the shadow table as the kernel would.
		if _, err := t.proc.as.HandleFault(t.proc.as.Shadow(), addr, false); err != nil {
			return 0, cost, fmt.Errorf("%w: %w", ErrSigsegv, err)
		}
		wr = t.proc.as.Shadow().Walk(addr)
	}
	return wr.PTE.Pdom, cost, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReclaimFrames emulates kswapd reclaiming up to max page frames from the
// process: the eager multi-table synchronization of §6.2, followed by a
// process-wide shootdown so no stale translations survive. It returns the
// frames reclaimed and the cycles charged to the reclaiming context.
func (p *Process) ReclaimFrames(initiatorCore int, max int) (int, cycles.Cost) {
	k := p.kernel
	n, rep := p.as.Reclaim(max)
	if n == 0 {
		return 0, 0
	}
	cost := cycles.Cost(rep.PTEWrites)*k.params.PTEWrite +
		cycles.Cost(rep.PMDWrites)*k.params.PMDWrite
	targets := p.RunningCores()
	asids := p.flushASIDs()
	sd := k.machine.ShootdownReliable(initiatorCore, targets, func(tb tlb.Cache) {
		for _, a := range asids {
			tb.FlushASID(a)
		}
	}, k.params.TLBFlushLocalAll)
	for id := 0; id < k.machine.NumCores(); id++ {
		if id != initiatorCore && targets.Has(id) {
			k.AddPendingInterrupt(id, sd.ReceiverCycles)
		}
	}
	k.metrics.Attribute("pagetable", "sync", uint64(cost))
	k.metrics.Attribute("hw", "ipi", uint64(sd.InitiatorCycles))
	return n, cost + sd.InitiatorCycles
}
