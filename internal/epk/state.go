package epk

import "sort"

// Checkpoint capture and restore (vdom-snap/v1).

// ThreadGroupSnap is one (thread → current EPT group) binding.
type ThreadGroupSnap struct {
	ThreadID int
	Group    int
}

// Snap is the serializable image of a System.
type Snap struct {
	NumDomains int
	Current    []ThreadGroupSnap // ascending ThreadID
	Stats      Stats
}

// Snap captures the system's image. The VM tax model is configuration,
// not state: it is rebuilt from the boot header on restore.
func (s *System) Snap() Snap {
	st := Snap{NumDomains: s.numDomains, Stats: s.Stats}
	for tid, g := range s.current {
		st.Current = append(st.Current, ThreadGroupSnap{ThreadID: tid, Group: g})
	}
	sort.Slice(st.Current, func(i, j int) bool { return st.Current[i].ThreadID < st.Current[j].ThreadID })
	return st
}

// LoadSnap restores a captured image onto a freshly created System with
// the same domain capacity.
func (s *System) LoadSnap(st Snap) {
	if st.NumDomains != s.numDomains {
		panic("epk: LoadSnap domain capacity mismatch")
	}
	s.current = make(map[int]int, len(st.Current))
	for _, tg := range st.Current {
		s.current[tg.ThreadID] = tg.Group
	}
	s.Stats = st.Stats
}
