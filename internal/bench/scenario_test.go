package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"vdom/internal/metrics"
)

// specPath resolves a committed spec file relative to the repo root
// (tests run from internal/bench).
func specPath(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", "scenarios", name+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed spec %s missing (run `go test -run TestScenarioGolden -update-scenarios .` at the root): %v", name, err)
	}
	return path
}

// runScenario runs one spec × kernel at the given pool width and returns
// the rendered output, the metrics snapshot, and every trace file's
// bytes keyed by filename.
func runScenario(t *testing.T, spec, kern string, workers int) (out, snap []byte, traces map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	o := Options{
		Quick: true, Parallel: workers,
		Kernel: kern, Scenario: specPath(t, spec),
		TraceDir: dir, Metrics: metrics.New(),
	}
	var tb, mb bytes.Buffer
	if err := Scenario(&tb, o); err != nil {
		t.Fatalf("scenario %s × %s: %v", spec, kern, err)
	}
	if err := o.Metrics.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("scenario run recorded no traces")
	}
	traces = make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		traces[filepath.Base(p)] = data
	}
	return tb.Bytes(), mb.Bytes(), traces
}

// TestScenarioByteIdentical is the scenario subsystem's determinism
// regression: for committed specs × kernels, the rendered tables (with
// the fold digest line), the metrics snapshot, and every recorded
// vdom-trace/v1 file must be byte-identical between the sequential
// reference (-parallel 1) and a NumCPU-wide pool. Run under -race this
// also shakes out data races between scenario cells.
func TestScenarioByteIdentical(t *testing.T) {
	wide := runtime.NumCPU()
	if wide < 2 {
		wide = 2
	}
	cases := []struct{ spec, kern string }{
		{"mesh-churn", "vdom"},
		{"mesh-churn", "dpti"},
		{"oltp-phases", "vdom"},
		{"oltp-phases", "dpti"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.spec+"/"+tc.kern, func(t *testing.T) {
			t.Parallel()
			o1, m1, tr1 := runScenario(t, tc.spec, tc.kern, 1)
			oN, mN, trN := runScenario(t, tc.spec, tc.kern, wide)
			if !bytes.Equal(o1, oN) {
				t.Errorf("rendered output differs between -parallel 1 and %d:\n--- p1\n%s\n--- pN\n%s", wide, o1, oN)
			}
			if !bytes.Equal(m1, mN) {
				t.Errorf("metrics snapshots differ between -parallel 1 and %d", wide)
			}
			if len(tr1) != len(trN) {
				t.Fatalf("trace counts differ: %d vs %d", len(tr1), len(trN))
			}
			for name, data := range tr1 {
				if !bytes.Equal(data, trN[name]) {
					t.Errorf("trace %s differs between -parallel 1 and %d", name, wide)
				}
			}
			if len(o1) == 0 {
				t.Error("scenario produced no output")
			}
		})
	}
}

// TestScenarioAllSpecsAllKernels smokes every committed spec across every
// registered kernel through the bench entry point — the same sweep CI
// runs via `vdom-bench scenario`, minus trace recording.
func TestScenarioAllSpecsAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not short")
	}
	for _, name := range []string{"mesh-churn", "serverless-burst", "sandbox-churn", "oltp-phases"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var tb bytes.Buffer
			o := Options{Quick: true, Parallel: 2, Scenario: specPath(t, name)}
			if err := Scenario(&tb, o); err != nil {
				t.Fatalf("scenario %s: %v", name, err)
			}
			if tb.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

// TestScenarioErrors pins the subcommand's failure modes: a missing
// -scenario flag, a nonexistent file, a corrupt spec, and an unregistered
// kernel all fail with a diagnosable error instead of running nothing.
func TestScenarioErrors(t *testing.T) {
	var tb bytes.Buffer
	if err := Scenario(&tb, Options{}); err == nil {
		t.Error("missing -scenario did not error")
	}
	if err := Scenario(&tb, Options{Scenario: filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Error("nonexistent spec file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"format":"vdom-scenario/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Scenario(&tb, Options{Scenario: bad}); err == nil {
		t.Error("corrupt spec did not error")
	}
	if err := Scenario(&tb, Options{Scenario: specPath(t, "mesh-churn"), Kernel: "xen"}); err == nil {
		t.Error("unregistered kernel did not error")
	}
}
