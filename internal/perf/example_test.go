package perf_test

import (
	"fmt"

	"vdom/internal/perf"
)

// ExampleRun executes the fixed suite at its quickest setting and prints
// the report's shape: the schema version and the benchmark catalogue.
// Rates are machine-dependent and so not printed.
func ExampleRun() {
	rep, err := perf.Run(perf.Options{Quick: true, Repeats: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Version)
	for _, b := range rep.Benchmarks {
		fmt.Printf("%s (%s)\n", b.Name, b.Unit)
	}
	// Output:
	// vdom-perf/v1
	// replay (events/sec)
	// table4 (accesses/sec)
	// parallel-grid (cells/sec)
	// checkpoint (bytes/sec)
}
