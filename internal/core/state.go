package core

import (
	"fmt"
	"sort"

	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Checkpoint capture and restore for the VDom core (vdom-snap/v1). The
// manager's VDSes refer to their page tables through the memory
// manager's stable ids, and VDRs/thread sets refer to tasks by TID, so a
// snapshot is free of live pointers.

// MapEntrySnap is one serialized domain-map slot (indexed by pdom).
type MapEntrySnap struct {
	Vdom    VdomID
	Used    bool
	Threads int
	LastUse uint64
}

// VdomPdomSnap is one (vdom → pdom) pair of an HLRU hint map.
type VdomPdomSnap struct {
	Vdom VdomID
	Pdom pagetable.Pdom
}

// EvictSnap is one remembered eviction (vdom → how it left).
type EvictSnap struct {
	Vdom   VdomID
	Pdom   pagetable.Pdom
	ViaPMD bool
}

// VDSSnap is the serializable image of one VDS.
type VDSSnap struct {
	ID          int
	ASID        tlb.ASID
	TableID     int
	DomainMap   []MapEntrySnap // full slice, indexed by pdom
	ThreadTIDs  []int          // ascending
	Clock       uint64
	LastMapping []VdomPdomSnap // ascending vdom
	Evicted     []EvictSnap    // ascending vdom
	CachedCores hw.CPUSet
	NumPdoms    int
}

// VdomAreasSnap is one vdom's VDT area chain.
type VdomAreasSnap struct {
	Vdom  VdomID
	Areas []Area
}

// PermSnap is one VDR permission entry.
type PermSnap struct {
	Vdom VdomID
	Perm VPerm
}

// VDRSnap is the serializable image of one thread's VDR.
type VDRSnap struct {
	TID       int
	Nas       int
	VDSIDs    []int // attach order
	CurrentID int   // -1 = not resident
	Perms     []PermSnap
}

// ManagerSnap is the serializable image of a Manager.
type ManagerSnap struct {
	NextVdom VdomID
	Live     []VdomID // ascending
	Freq     []VdomID // ascending
	VDT      []VdomAreasSnap

	NextVDSID int
	VDSes     []VDSSnap // creation order
	VDRs      []VDRSnap // ascending TID
	Stats     Stats
}

// Snap captures the manager's image. tableID maps each VDS's page table
// to its stable id (see mm.TableID).
func (m *Manager) Snap(tableID func(*pagetable.Table) int) ManagerSnap {
	s := ManagerSnap{
		NextVdom:  m.nextVdom,
		NextVDSID: m.nextVDSID,
		Stats:     m.Stats,
	}
	for d := range m.live {
		s.Live = append(s.Live, d)
	}
	for d := range m.freq {
		s.Freq = append(s.Freq, d)
	}
	sortVdoms(s.Live)
	sortVdoms(s.Freq)
	s.VDT = m.vdt.snap()
	for _, v := range m.vdses {
		s.VDSes = append(s.VDSes, snapVDS(v, tableID))
	}
	for t, r := range m.vdrs {
		rs := VDRSnap{TID: t.TID(), Nas: r.nas, CurrentID: -1}
		for _, v := range r.vdses {
			rs.VDSIDs = append(rs.VDSIDs, v.id)
		}
		if r.current != nil {
			rs.CurrentID = r.current.id
		}
		for d, p := range r.perms {
			if p == VPermNone {
				continue // absent and explicit-None entries are identical
			}
			rs.Perms = append(rs.Perms, PermSnap{Vdom: VdomID(d), Perm: p})
		}
		sort.Slice(rs.Perms, func(i, j int) bool { return rs.Perms[i].Vdom < rs.Perms[j].Vdom })
		s.VDRs = append(s.VDRs, rs)
	}
	sort.Slice(s.VDRs, func(i, j int) bool { return s.VDRs[i].TID < s.VDRs[j].TID })
	return s
}

func snapVDS(v *VDS, tableID func(*pagetable.Table) int) VDSSnap {
	vs := VDSSnap{
		ID:          v.id,
		ASID:        v.asid,
		TableID:     tableID(v.table),
		DomainMap:   make([]MapEntrySnap, len(v.domainMap)),
		Clock:       v.clock,
		CachedCores: v.cachedCores,
		NumPdoms:    v.numPdoms,
	}
	for p, e := range v.domainMap {
		vs.DomainMap[p] = MapEntrySnap{Vdom: e.vdom, Used: e.used, Threads: e.threads, LastUse: e.lastUse}
	}
	for t := range v.threads {
		vs.ThreadTIDs = append(vs.ThreadTIDs, t.TID())
	}
	sort.Ints(vs.ThreadTIDs)
	for d, p := range v.lastMapping {
		vs.LastMapping = append(vs.LastMapping, VdomPdomSnap{Vdom: d, Pdom: p})
	}
	sort.Slice(vs.LastMapping, func(i, j int) bool { return vs.LastMapping[i].Vdom < vs.LastMapping[j].Vdom })
	for d, e := range v.evicted {
		vs.Evicted = append(vs.Evicted, EvictSnap{Vdom: d, Pdom: e.pdom, ViaPMD: e.viaPMD})
	}
	sort.Slice(vs.Evicted, func(i, j int) bool { return vs.Evicted[i].Vdom < vs.Evicted[j].Vdom })
	return vs
}

// LoadSnap restores the manager's image onto a freshly attached manager
// (no vdoms, no VDSes beyond none, no VDRs). table resolves the memory
// manager's stable table ids; task resolves TIDs to restored tasks.
//
// VDSes are rebuilt directly — not through allocVDS, which would draw
// ASIDs and trace events — and VDT chains are reloaded slot-by-slot
// rather than through AddArea, whose adjacent-area coalescing would
// merge chains that the live system kept separate (breaking later
// exact-match RemoveArea calls).
func (m *Manager) LoadSnap(s ManagerSnap, table func(id int) *pagetable.Table, task func(tid int) *kernel.Task) {
	if len(m.vdses) != 0 || len(m.vdrs) != 0 || len(m.live) != 0 {
		panic("core: LoadSnap on a non-fresh manager")
	}
	m.nextVdom = s.NextVdom
	m.live = make(map[VdomID]bool, len(s.Live))
	for _, d := range s.Live {
		m.live[d] = true
	}
	m.freq = make(map[VdomID]bool, len(s.Freq))
	for _, d := range s.Freq {
		m.freq[d] = true
	}
	m.vdt.load(s.VDT)
	m.nextVDSID = s.NextVDSID
	m.Stats = s.Stats

	byID := make(map[int]*VDS, len(s.VDSes))
	for _, vs := range s.VDSes {
		v := loadVDS(vs, table, task)
		m.vdses = append(m.vdses, v)
		m.byTable[v.table] = v
		m.memoTable, m.memoVDS = nil, nil
		byID[v.id] = v
	}
	for _, rs := range s.VDRs {
		t := task(rs.TID)
		if t == nil {
			panic(fmt.Sprintf("core: VDR snapshot references unknown TID %d", rs.TID))
		}
		r := &VDR{task: t, nas: rs.Nas}
		for _, p := range rs.Perms {
			r.perms.set(p.Vdom, p.Perm)
		}
		for _, id := range rs.VDSIDs {
			v, ok := byID[id]
			if !ok {
				panic(fmt.Sprintf("core: VDR snapshot references unknown VDS %d", id))
			}
			r.vdses = append(r.vdses, v)
		}
		if rs.CurrentID != -1 {
			v, ok := byID[rs.CurrentID]
			if !ok {
				panic(fmt.Sprintf("core: VDR snapshot resident in unknown VDS %d", rs.CurrentID))
			}
			r.current = v
		}
		m.vdrs[t] = r
	}
}

func loadVDS(vs VDSSnap, table func(id int) *pagetable.Table, task func(tid int) *kernel.Task) *VDS {
	v := &VDS{
		id:          vs.ID,
		table:       table(vs.TableID),
		asid:        vs.ASID,
		domainMap:   make([]mapEntry, len(vs.DomainMap)),
		vdomPdom:    make(map[VdomID]pagetable.Pdom),
		threads:     make(map[*kernel.Task]bool),
		clock:       vs.Clock,
		lastMapping: make(map[VdomID]pagetable.Pdom, len(vs.LastMapping)),
		evicted:     make(map[VdomID]evictState, len(vs.Evicted)),
		cachedCores: vs.CachedCores,
		numPdoms:    vs.NumPdoms,
	}
	if v.table == nil {
		panic(fmt.Sprintf("core: VDS %d snapshot has no table", vs.ID))
	}
	for p, e := range vs.DomainMap {
		v.domainMap[p] = mapEntry{vdom: e.Vdom, used: e.Used, threads: e.Threads, lastUse: e.LastUse}
		if e.Used {
			v.vdomPdom[e.Vdom] = pagetable.Pdom(p)
		}
	}
	for _, tid := range vs.ThreadTIDs {
		t := task(tid)
		if t == nil {
			panic(fmt.Sprintf("core: VDS %d snapshot references unknown TID %d", vs.ID, tid))
		}
		v.threads[t] = true
	}
	for _, e := range vs.LastMapping {
		v.lastMapping[e.Vdom] = e.Pdom
	}
	for _, e := range vs.Evicted {
		v.evicted[e.Vdom] = evictState{pdom: e.Pdom, viaPMD: e.ViaPMD}
	}
	return v
}

// snap serializes the VDT's chains, per vdom in ascending id order.
func (t *VDT) snap() []VdomAreasSnap {
	var out []VdomAreasSnap
	for hi, leaf := range t.top {
		for lo := range leaf.slots {
			if len(leaf.slots[lo]) == 0 {
				continue
			}
			out = append(out, VdomAreasSnap{
				Vdom:  VdomID(hi*vdtFanout + uint64(lo)),
				Areas: append([]Area(nil), leaf.slots[lo]...),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vdom < out[j].Vdom })
	return out
}

// load rebuilds the VDT from serialized chains, preserving each chain's
// exact segmentation (no coalescing).
func (t *VDT) load(chains []VdomAreasSnap) {
	t.top = make(map[uint64]*vdtLeaf)
	t.areas = 0
	for _, c := range chains {
		leaf, lo := t.leafFor(c.Vdom, true)
		leaf.slots[lo] = append([]Area(nil), c.Areas...)
		t.areas += len(c.Areas)
	}
}

// TearDomainMap deterministically corrupts one VDS's domain map the way
// a crash in the middle of a multi-step map update would: the forward
// entry (domainMap) survives while its inverse (vdomPdom) is lost. The
// cross-layer auditor detects the inconsistency, and recovery discards
// the corrupted instance wholesale. It returns a description of the tear
// and false when no VDS has a mapped vdom to tear.
func (m *Manager) TearDomainMap() (string, bool) {
	for _, v := range m.vdses {
		for p := firstUsablePdom; p < v.numPdoms; p++ {
			e := v.domainMap[p]
			if !e.used {
				continue
			}
			delete(v.vdomPdom, e.vdom)
			v.dropMemo()
			return fmt.Sprintf("vds %d: vdom %d → pdom %d forward entry kept, inverse dropped", v.id, e.vdom, p), true
		}
	}
	return "", false
}

func sortVdoms(v []VdomID) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
