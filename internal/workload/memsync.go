package workload

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

// MemSyncConfig describes one Table 5 measurement: a multi-address-space
// application in which one thread progressively allocates 4 KiB pages and
// threads in the other VDSes immediately access the data. The overhead is
// relative to the same program with every thread in one address space.
type MemSyncConfig struct {
	Arch cycles.Arch
	// VDSes is the total number of address spaces (the allocator's plus
	// readers'); 1 means the baseline single-address-space run.
	VDSes int
	// Readers is the reader-thread count; MemSyncOverhead keeps it equal
	// between the measured and baseline runs.
	Readers int
	// Pages defaults to 1024.
	Pages int
	// Cores defaults to VDSes+1 capped at 64 (the X86 box has enough
	// hardware threads for every configuration; the 4-core ARM box does
	// not, which is why the paper marks >4 VDSes "undefined" there).
	Cores int
	Seed  uint64
}

// MemSyncResult is one run's outcome.
type MemSyncResult struct {
	Config   MemSyncConfig
	Makespan sim.Time
	// Defined is false when the configuration exceeds the platform's
	// cores (ARM beyond 4 VDSes).
	Defined bool
}

// MemSyncOverhead runs the experiment for n VDSes and returns the relative
// overhead versus the single-address-space baseline.
func MemSyncOverhead(arch cycles.Arch, n int) (float64, bool) {
	if n > DefaultCores(arch) {
		return 0, false
	}
	base := RunMemSync(MemSyncConfig{Arch: arch, VDSes: 1, Readers: n - 1, Cores: coresFor(arch, n)})
	multi := RunMemSync(MemSyncConfig{Arch: arch, VDSes: n, Readers: n - 1, Cores: coresFor(arch, n)})
	if !multi.Defined || base.Makespan == 0 {
		return 0, false
	}
	return float64(multi.Makespan)/float64(base.Makespan) - 1, true
}

func coresFor(arch cycles.Arch, n int) int {
	c := DefaultCores(arch)
	if n+1 < c {
		return n + 1
	}
	return c
}

// memsync work constants: the allocator zeroes each fresh page; readers
// scan it.
const (
	memsyncInitCycles = 1600
	memsyncReadCycles = 10500
	memsyncBatch      = 64
)

// jitter returns base ±25%, modelling cache and branch variance that keeps
// reader threads from phase-locking into collision-free schedules.
func jitter(rng *sim.Rand, base cycles.Cost) cycles.Cost {
	span := uint64(base) / 2
	return base - cycles.Cost(span/2) + cycles.Cost(rng.Uint64()%span)
}

// RunMemSync executes one configuration: one allocator thread plus
// `Readers` reader threads. With VDSes > 1, each reader lives in a private
// VDS and its first touch of every page demand-faults through the
// page-table lock; with VDSes == 1 everyone shares the allocator's address
// space and readers only pay TLB misses.
func RunMemSync(cfg MemSyncConfig) MemSyncResult {
	if cfg.Pages == 0 {
		cfg.Pages = 1024
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x3a11
	}
	if cfg.Cores == 0 {
		cfg.Cores = coresFor(cfg.Arch, cfg.VDSes)
	}
	readers := cfg.Readers
	if readers == 0 {
		readers = cfg.VDSes - 1
	}
	if readers < 1 {
		readers = 1
	}
	if cfg.VDSes > cfg.Cores {
		return MemSyncResult{Config: cfg, Defined: false}
	}

	pl := newPlatform(cfg.Arch, cfg.Cores, true, cfg.Seed)
	mgr := core.Attach(pl.proc, core.DefaultPolicy())

	alloc := pl.proc.NewTask(0)
	if _, err := mgr.VdrAlloc(alloc, 2); err != nil {
		panic(err)
	}
	readerTasks := make([]*kernel.Task, readers)
	for i := range readerTasks {
		readerTasks[i] = pl.proc.NewTask((i + 1) % cfg.Cores)
		if _, err := mgr.VdrAlloc(readerTasks[i], 2); err != nil {
			panic(err)
		}
		if cfg.VDSes > 1 {
			if _, err := mgr.PlaceInNewVDS(readerTasks[i]); err != nil {
				panic(err)
			}
		}
	}

	// The shared data region.
	base := pl.mustAlloc(alloc, uint64(cfg.Pages)*pagetable.PageSize)

	// Page-table synchronization serializes on the process's page-table
	// lock; demand-paging faults from distinct VDSes contend on it.
	ptLock := pl.env.NewResource(1)
	batchReady := make([]*sim.Signal, cfg.Pages/memsyncBatch+1)
	for i := range batchReady {
		batchReady[i] = pl.env.NewSignal()
	}
	produced := 0

	pl.env.Go("allocator", func(p *sim.Proc) {
		for pg := 0; pg < cfg.Pages; pg++ {
			addr := base + pagetable.VAddr(pg)*pagetable.PageSize
			pl.sched.Run(p, alloc, func() cycles.Cost {
				c, err := alloc.Access(addr, true)
				if err != nil {
					panic(err)
				}
				return c + memsyncInitCycles
			})
			produced++
			if produced%memsyncBatch == 0 {
				batchReady[produced/memsyncBatch-1].Broadcast()
			}
		}
		if produced%memsyncBatch != 0 {
			batchReady[produced/memsyncBatch].Broadcast()
		}
	})

	for ri, rt := range readerTasks {
		rt := rt
		rng := sim.NewRand(cfg.Seed ^ uint64(ri+1)<<32)
		pl.env.Go(fmt.Sprintf("reader-%d", ri), func(p *sim.Proc) {
			for b := 0; b*memsyncBatch < cfg.Pages; b++ {
				lo := b * memsyncBatch
				hi := lo + memsyncBatch
				if hi > cfg.Pages {
					hi = cfg.Pages
				}
				if produced < hi {
					batchReady[b].Wait(p)
				}
				for pg := lo; pg < hi; pg++ {
					addr := base + pagetable.VAddr(pg)*pagetable.PageSize
					// The first touch in a separate VDS faults and
					// fills the VDS page table from the shadow —
					// serialized on the page-table lock.
					if cfg.VDSes > 1 {
						// The fault's page-table update serializes on
						// the process page-table lock.
						ptLock.Acquire(p, 1)
						pl.sched.Run(p, rt, func() cycles.Cost {
							c, err := rt.Access(addr, false)
							if err != nil {
								panic(err)
							}
							return c
						})
						ptLock.Release(1)
						// Outside the lock: per-address-space TLB
						// generation / metadata maintenance plus the
						// read itself.
						sync := pl.kernel.Params().SyncPerPage *
							cycles.Cost(len(pl.proc.AS().Tables()))
						pl.sched.Run(p, rt, func() cycles.Cost { return sync + jitter(rng, memsyncReadCycles) })
					} else {
						pl.sched.Run(p, rt, func() cycles.Cost {
							c, err := rt.Access(addr, false)
							if err != nil {
								panic(err)
							}
							return c + jitter(rng, memsyncReadCycles)
						})
					}
				}
			}
		})
	}

	makespan := pl.env.Run()
	return MemSyncResult{Config: cfg, Makespan: makespan, Defined: true}
}
