package pagetable

import "testing"

func BenchmarkWalkPresent(b *testing.B) {
	pt := New()
	pt.Map(0x40000000, 1, true, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Walk(0x40000000)
	}
}

func BenchmarkMapNewPages(b *testing.B) {
	pt := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Map(VAddr(uint64(i)<<PageShift), Frame(i), true, 2)
	}
}

func BenchmarkEvictRange2MB(b *testing.B) {
	pt := New()
	base := VAddr(0x40000000)
	for off := uint64(0); off < PMDSize; off += PageSize {
		pt.Map(base+VAddr(off), Frame(off/PageSize), true, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.EvictRange(base, PMDSize, 1)
		pt.RemapRange(base, PMDSize, 4)
	}
}

func BenchmarkRetagRange64Pages(b *testing.B) {
	pt := New()
	base := VAddr(0x40000000)
	for i := 0; i < 64; i++ {
		pt.Map(base+VAddr(i*PageSize), Frame(i), true, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.RetagRange(base, 64*PageSize, Pdom(2+i%2))
	}
}
