package replay_test

import (
	"testing"

	"vdom/internal/replay"
	"vdom/internal/workload"
)

// corpusTrace records one corpus workload by name.
func corpusTrace(b *testing.B, name string) *replay.Trace {
	b.Helper()
	for _, spec := range workload.TraceCorpus() {
		if spec.Name == name {
			return spec.Record()
		}
	}
	b.Fatalf("no corpus spec named %q", name)
	return nil
}

// BenchmarkReplay measures replay throughput — how many recorded
// domain-op events per wall-clock second a fresh system re-executes and
// verifies — over representative corpus traces of each kernel kind.
func BenchmarkReplay(b *testing.B) {
	for _, name := range []string{"table4-vdom-x86", "httpd-libmpk-x86", "pmo-vdom-x86"} {
		name := name
		b.Run(name, func(b *testing.B) {
			tr := corpusTrace(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := replay.Run(tr, replay.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Divergence != nil {
					b.Fatalf("diverged: %s", res.Divergence)
				}
			}
			b.ReportMetric(float64(len(tr.Events)*b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkDecode measures binary decode throughput in events/sec.
func BenchmarkDecode(b *testing.B) {
	tr := corpusTrace(b, "table4-vdom-x86")
	enc := replay.Encode(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)*b.N)/b.Elapsed().Seconds(), "events/sec")
	b.SetBytes(int64(len(enc)))
}
