// Command docslint enforces the repository's documentation floor in CI.
//
// It checks two things, chosen to keep the public surface and the
// module map (DESIGN.md §3) self-describing:
//
//  1. Every exported identifier in the root vdom package (the public
//     API) must carry a doc comment.
//  2. Every package under internal/ must have a package comment.
//
// Usage:
//
//	go run ./cmd/docslint [root]
//
// root defaults to the current directory. Exit status is non-zero if
// any violation is found; each violation is printed as file:line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	problems = append(problems, lintExported(root)...)

	pkgDirs, err := internalPackageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	for _, dir := range pkgDirs {
		problems = append(problems, lintPackageComment(dir)...)
	}

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// parseDir parses the non-test Go files of one directory.
func parseDir(dir string) (*token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return fset, files, nil
}

// lintExported reports exported identifiers without doc comments in the
// package rooted at dir (the public vdom package).
func lintExported(dir string) []string {
	fset, files, err := parseDir(dir)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				// Methods on unexported receivers are not public API.
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Name.Pos(), kind, d.Name.Name)
			case *ast.GenDecl:
				lintGenDecl(d, report)
			}
		}
	}
	return out
}

// lintGenDecl checks const/var/type declarations. A doc comment on the
// grouped declaration covers its members; otherwise each exported spec
// needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok == token.IMPORT {
		return
	}
	kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Name.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// lintPackageComment reports a package under internal/ whose non-test
// files carry no package comment at all.
func lintPackageComment(dir string) []string {
	fset, files, err := parseDir(dir)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	if len(files) == 0 {
		return nil
	}
	for _, f := range files {
		if f.Doc != nil {
			return nil
		}
	}
	p := fset.Position(files[0].Package)
	return []string{fmt.Sprintf("%s:%d: package %s has no package comment", p.Filename, p.Line, files[0].Name.Name)}
}

// internalPackageDirs lists every directory under root/internal that
// contains at least one non-test Go file.
func internalPackageDirs(root string) ([]string, error) {
	var dirs []string
	base := filepath.Join(root, "internal")
	err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
