// Package hw assembles the simulated machine: cores with ASID-tagged TLBs
// and domain permission registers, a physical frame allocator, the MMU
// access path (TLB lookup → page walk → domain check), and IPI-based TLB
// shootdowns.
//
// Every operation returns its cycle cost so callers can either accumulate
// cycles (microbenchmarks) or convert them into virtual-time delays
// (discrete-event workloads).
package hw

import (
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Config describes a machine to build.
type Config struct {
	// Arch selects the cost table and domain model.
	Arch cycles.Arch
	// NumCores is the number of hardware threads.
	NumCores int
	// TLBCapacity is per-core TLB entries; 0 means tlb.DefaultCapacity.
	TLBCapacity int
	// NoASID disables ASID tagging (ablation): every pgd switch must
	// fully flush the local TLB.
	NoASID bool
	// SetAssociative organizes each TLB as 8-way set-associative
	// (modelling conflict misses) instead of fully associative.
	SetAssociative bool
}

// Machine is the simulated hardware platform.
type Machine struct {
	params *cycles.Params
	cores  []*Core
	noASID bool

	nextFrame pagetable.Frame
}

// NewMachine builds a machine from the config.
func NewMachine(cfg Config) *Machine {
	if cfg.NumCores <= 0 {
		panic("hw: NumCores must be positive")
	}
	capacity := cfg.TLBCapacity
	if capacity == 0 {
		capacity = tlb.DefaultCapacity
	}
	m := &Machine{params: cycles.ParamsFor(cfg.Arch), noASID: cfg.NoASID}
	for i := 0; i < cfg.NumCores; i++ {
		var cache tlb.Cache
		if cfg.SetAssociative {
			const ways = 8
			sets := 1
			for sets*ways < capacity {
				sets <<= 1
			}
			cache = tlb.NewSetAssoc(sets, ways)
		} else {
			cache = tlb.New(capacity)
		}
		m.cores = append(m.cores, &Core{
			id:      i,
			machine: m,
			tlb:     cache,
		})
	}
	return m
}

// Params returns the machine's cycle cost table.
func (m *Machine) Params() *cycles.Params { return m.params }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// ASIDSupported reports whether pgd switches preserve TLB contents.
func (m *Machine) ASIDSupported() bool { return !m.noASID }

// AllocFrames reserves n fresh physical frames and returns the first.
func (m *Machine) AllocFrames(n int) pagetable.Frame {
	f := m.nextFrame
	m.nextFrame += pagetable.Frame(n)
	return f
}

// ShootdownReport describes the cost of one TLB shootdown.
type ShootdownReport struct {
	// InitiatorCycles is charged to the core that issued the IPIs
	// (send cost per target plus waiting for acknowledgements).
	InitiatorCycles cycles.Cost
	// ReceiverCycles is charged to EACH remote core that serviced the
	// interrupt.
	ReceiverCycles cycles.Cost
	// RemoteCores is the number of cores that received an IPI.
	RemoteCores int
}

// Shootdown invalidates TLB state on the given remote cores (identified by
// a bitmap of core ids) and on the initiator, using flush to perform the
// invalidation on each core's TLB. It returns the cost split. The initiator
// core's own TLB is flushed locally at localCost.
func (m *Machine) Shootdown(initiator int, targets CPUSet, flush func(tlb.Cache), localCost cycles.Cost) ShootdownReport {
	r := ShootdownReport{}
	for id := range m.cores {
		if id == initiator || !targets.Has(id) {
			continue
		}
		flush(m.cores[id].tlb)
		r.RemoteCores++
	}
	flush(m.cores[initiator].tlb)
	r.InitiatorCycles = localCost + cycles.Cost(r.RemoteCores)*m.params.IPI
	r.ReceiverCycles = m.params.IPIReceive
	return r
}

// CPUSet is a bitmap of core ids.
type CPUSet uint64

// Has reports whether core id is in the set.
func (s CPUSet) Has(id int) bool { return s&(1<<uint(id)) != 0 }

// Add returns the set with core id included.
func (s CPUSet) Add(id int) CPUSet { return s | 1<<uint(id) }

// Remove returns the set without core id.
func (s CPUSet) Remove(id int) CPUSet { return s &^ (1 << uint(id)) }

// Count returns the number of cores in the set.
func (s CPUSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// AllCores returns a set containing cores [0, n).
func AllCores(n int) CPUSet {
	if n >= 64 {
		panic("hw: CPUSet supports at most 64 cores")
	}
	return CPUSet(1<<uint(n) - 1)
}

// FaultKind classifies the outcome of a memory access.
type FaultKind int

const (
	// AccessOK means the access succeeded.
	AccessOK FaultKind = iota
	// FaultNotPresent means no translation exists (demand paging).
	FaultNotPresent
	// FaultPMDDisabled means the walk hit a VDom-disabled PMD entry.
	FaultPMDDisabled
	// FaultDomainPerm means the permission register denied the domain
	// (protection-key fault on Intel, domain fault on ARM).
	FaultDomainPerm
	// FaultWriteProtect means a write hit a read-only page.
	FaultWriteProtect
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case AccessOK:
		return "ok"
	case FaultNotPresent:
		return "not-present"
	case FaultPMDDisabled:
		return "pmd-disabled"
	case FaultDomainPerm:
		return "domain-perm"
	case FaultWriteProtect:
		return "write-protect"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// AccessResult is the outcome of Core.Access.
type AccessResult struct {
	Kind FaultKind
	// Pdom is the domain tag of the page, valid unless the translation
	// was absent.
	Pdom pagetable.Pdom
	// TLBHit reports whether the translation came from the TLB.
	TLBHit bool
	// Cost is the cycle cost of the access attempt itself (not of any
	// fault handling that may follow).
	Cost cycles.Cost
}

// Core is one hardware thread.
type Core struct {
	id      int
	machine *Machine
	tlb     tlb.Cache

	perm  PermRegister
	table *pagetable.Table
	asid  tlb.ASID
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// TLB exposes the core's TLB (for kernel flush operations and tests).
func (c *Core) TLB() tlb.Cache { return c.tlb }

// Perm exposes the core's permission register.
func (c *Core) Perm() *PermRegister { return &c.perm }

// ASID returns the currently loaded address-space identifier.
func (c *Core) ASID() tlb.ASID { return c.asid }

// Table returns the currently loaded page table.
func (c *Core) Table() *pagetable.Table { return c.table }

// SwitchPgd loads a new page table and ASID, returning the cycle cost. With
// ASID support the TLB is preserved; without it (ablation) the switch costs
// a full local flush as well.
func (c *Core) SwitchPgd(t *pagetable.Table, asid tlb.ASID) cycles.Cost {
	c.table = t
	c.asid = asid
	cost := c.machine.params.PgdSwitch
	if c.machine.noASID {
		c.tlb.FlushAll()
		cost += c.machine.params.TLBFlushLocalAll
	}
	return cost
}

// Access performs one load (write=false) or store (write=true) at addr
// against the currently loaded address space: TLB lookup, page walk on
// miss, then the domain permission check. It mirrors the hardware pipeline,
// so a TLB hit still pays the domain check, and a missing translation
// faults before any domain check can happen.
func (c *Core) Access(addr pagetable.VAddr, write bool) AccessResult {
	if c.table == nil {
		panic("hw: Access with no page table loaded")
	}
	p := c.machine.params
	vpn := addr.VPN()
	if e, ok := c.tlb.Lookup(c.asid, vpn); ok {
		res := AccessResult{Pdom: e.Pdom, TLBHit: true, Cost: p.TLBHit}
		res.Kind = c.check(e.Pdom, e.Writable, write)
		return res
	}
	wr := c.table.Walk(addr)
	cost := p.TLBHit + p.PageWalk*cycles.Cost(wr.LevelsVisited)/cycles.Cost(pagetable.Levels)
	switch {
	case wr.PMDDisabled:
		return AccessResult{Kind: FaultPMDDisabled, Cost: cost}
	case !wr.Present:
		return AccessResult{Kind: FaultNotPresent, Cost: cost}
	}
	c.tlb.Insert(tlb.Entry{
		ASID:     c.asid,
		VPN:      vpn,
		Frame:    wr.PTE.Frame,
		Pdom:     wr.PTE.Pdom,
		Writable: wr.PTE.Writable,
	})
	res := AccessResult{Pdom: wr.PTE.Pdom, Cost: cost}
	res.Kind = c.check(wr.PTE.Pdom, wr.PTE.Writable, write)
	return res
}

func (c *Core) check(pdom pagetable.Pdom, writable, write bool) FaultKind {
	if !c.perm.Allows(uint8(pdom), write) {
		return FaultDomainPerm
	}
	if write && !writable {
		return FaultWriteProtect
	}
	return AccessOK
}
