package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/par"
	"vdom/internal/replay"
)

// chaosSoakOps returns the soak length for the chaos report.
func (o Options) chaosSoakOps() int {
	if o.Quick {
		return 2000
	}
	return 10000
}

// chaosShards is the fixed number of independent soak shards the chaos
// experiment runs. It is a property of the experiment, not of the worker
// pool: shard seeds and lengths are derived from (seed, shard index)
// alone, so the aggregated report is byte-identical for every -parallel
// value.
const chaosShards = 8

// Chaos runs the deterministic fault-injection soak and reports the
// injected faults, the recovery paths that absorbed them, and the
// cross-layer audit verdict. The run replays exactly from its seed.
func Chaos(w io.Writer, o Options) error {
	return ChaosSeed(w, o, 42)
}

// ChaosSeed is Chaos with a caller-chosen seed, for replaying a specific
// fault sequence. The soak is split into chaosShards independent shards,
// each a fully isolated machine soaked under its own derived seed; shard
// results are aggregated in shard order.
//
// With Options.TraceDump set, every shard records its domain-op stream
// and any failing shard dumps a minimal replayable trace there; with
// Options.SoakReport set, a machine-readable JSON report of all shards
// is written too. The returned error covers artifact writing only — the
// soak verdict is in the rendered output (and the report).
func ChaosSeed(w io.Writer, o Options, seed uint64) error {
	kern := o.Kernel
	if kern == "" {
		kern = "vdom"
	}
	if kern != "vdom" && kern != "dpti" {
		return fmt.Errorf("chaos: no soak driver for kernel %q (have vdom, dpti)", kern)
	}
	totalOps := o.chaosSoakOps()
	ctx := o.ctx()
	type shard struct {
		res *chaos.SoakResult
		reg *metrics.Registry
		tr  *metrics.Trace
		err error
	}
	jobs := make([]func() shard, chaosShards)
	for i := range jobs {
		i := i
		ops := totalOps / chaosShards
		if i < totalOps%chaosShards {
			ops++
		}
		jobs[i] = func() shard {
			reg, tr := o.newCellSinks()
			fault := chaos.Config{
				Seed:           seed + uint64(i),
				DropIPI:        0.05,
				DelayIPI:       0.05,
				StaleTLB:       0.03,
				ASIDExhaustion: 0.02,
				ASIDLimit:      24,
				VDSAllocFail:   0.10,
				PdomExhaustion: 0.05,
				SpuriousFault:  0.02,
			}
			if kern == "dpti" {
				// DPTI has no manager-level hooks; zero the faults that
				// would never draw so the injected counters stay honest.
				fault.VDSAllocFail = 0
				fault.PdomExhaustion = 0
			}
			scfg := chaos.SoakConfig{
				Chaos:   fault,
				Ops:     ops,
				Metrics: reg,
				Trace:   tr,
				Record:  o.TraceDump != "",
			}
			var s interface {
				NextOp() int
				Step() bool
				Finish() *chaos.SoakResult
			}
			if kern == "dpti" {
				s = chaos.StartSoakDPTI(scfg)
			} else {
				s = chaos.StartSoak(scfg)
			}
			// Step with a periodic wall-clock escape hatch: a -timeout
			// cancels the soak between ops instead of hanging the job.
			for {
				if s.NextOp()%256 == 0 && ctx.Err() != nil {
					return shard{err: fmt.Errorf("chaos shard %d cancelled at op %d: %w", i, s.NextOp(), ctx.Err())}
				}
				if !s.Step() {
					break
				}
			}
			return shard{res: s.Finish(), reg: reg, tr: tr}
		}
	}
	shards := par.Map(o.workers(), jobs)
	for _, s := range shards {
		if s.err != nil {
			return s.err
		}
	}

	// Dump failing shards' minimal reproducer traces before aggregating,
	// so each shard's TracePath lands in the report.
	if o.TraceDump != "" {
		if err := os.MkdirAll(o.TraceDump, 0o755); err != nil {
			return err
		}
		for i, s := range shards {
			ft := s.res.FailTrace()
			if ft == nil {
				continue
			}
			stem := "chaos-soak-shard%d.trace"
			if kern != "vdom" {
				stem = "chaos-soak-" + kern + "-shard%d.trace"
			}
			path := filepath.Join(o.TraceDump, fmt.Sprintf(stem, i))
			if err := os.WriteFile(path, replay.Encode(ft), 0o644); err != nil {
				return err
			}
			s.res.TracePath = path
		}
	}

	// Aggregate in shard order: sums are order-insensitive, but the
	// violation/unrecovered listings below keep shard order for stable
	// replayable output.
	var agg chaos.SoakResult
	for _, s := range shards {
		agg.Merge(s.res)
		o.Metrics.Add("bench/total-cycles", uint64(s.res.Cycles))
		o.Metrics.Merge(s.reg)
		o.Trace.Append(s.tr)
	}

	title := fmt.Sprintf("Chaos soak: %d ops over %d shards, seed %d (replayable), all fault classes enabled",
		agg.Ops, chaosShards, seed)
	if kern != "vdom" {
		title = fmt.Sprintf("Chaos soak (%s kernel): %d ops over %d shards, seed %d (replayable), machine/kernel fault classes enabled",
			kern, agg.Ops, chaosShards, seed)
	}
	t := &Table{
		Title:   title,
		Columns: []string{"event", "count"},
	}
	for _, k := range sortedKeys(agg.Injected) {
		t.Row(k, fmt.Sprintf("%d", agg.Injected[k]))
	}
	for _, k := range sortedKeys(agg.Recovered) {
		t.Row(k, fmt.Sprintf("%d", agg.Recovered[k]))
	}
	t.Row("asid generation rollovers", fmt.Sprintf("%d", agg.ASIDRollovers))
	t.Row("audit passes", fmt.Sprintf("%d", agg.Audits))
	t.Row("audit violations", fmt.Sprintf("%d", len(agg.Violations)))
	t.Row("unrecovered faults", fmt.Sprintf("%d", len(agg.Unrecovered)))
	t.Row("total cycles", fmt.Sprintf("%d", agg.Cycles))
	o.Render(w, t)

	if len(agg.Violations) == 0 && len(agg.Unrecovered) == 0 {
		fmt.Fprintf(w, "\nverdict: COHERENT — every injected fault was absorbed by a degradation path\n")
	} else {
		fmt.Fprintf(w, "\nverdict: INCOHERENT\n")
		for _, v := range agg.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		for _, u := range agg.Unrecovered {
			fmt.Fprintf(w, "  unrecovered: %s\n", u)
		}
	}

	if o.SoakReport != "" {
		srs := make([]chaos.ShardReport, len(shards))
		for i, s := range shards {
			srs[i] = chaos.NewShardReport(i, seed+uint64(i), s.res)
		}
		f, err := os.Create(o.SoakReport)
		if err != nil {
			return err
		}
		if err := chaos.NewReport(seed, srs).WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// sortedKeys returns the map's keys in lexical order for stable output.
func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
