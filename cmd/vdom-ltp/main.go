// Command vdom-ltp runs the LTP-like compatibility suite (§7.1) on both
// the vanilla and the VDom-modified kernels, on both architectures,
// verifying that the kernel modifications do not change the semantics of
// the memory-management, scheduler, and IPC surfaces.
package main

import (
	"fmt"
	"os"

	"vdom/internal/cycles"
	"vdom/internal/workload"
)

func main() {
	failed := 0
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		for _, vdomOn := range []bool{false, true} {
			flavour := "vanilla"
			if vdomOn {
				flavour = "VDom   "
			}
			r := workload.RunLTP(arch, vdomOn)
			fmt.Printf("%v %s kernel: %d passed, %d failed\n", arch, flavour, r.Passed, r.Failed)
			for _, f := range r.Failures {
				fmt.Printf("  FAIL %s\n", f)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
