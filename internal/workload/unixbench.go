package workload

import (
	"math"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

// UnixBenchScore is one test's relative score: VDom-kernel ops/sec divided
// by vanilla-kernel ops/sec, ×100 (§7.3 reports 98.5%–101.8%).
type UnixBenchScore struct {
	Test     string
	Relative float64 // percent
}

// UnixBenchResult is the whole suite.
type UnixBenchResult struct {
	Arch cycles.Arch
	// Parallel is true for the N-copy run (one instance per core).
	Parallel bool
	Scores   []UnixBenchScore
	// Index is the geometric mean of the relative scores.
	Index float64
}

// RunUnixBench runs the UnixBench-like kernel suite on the vanilla and
// VDom-modified kernels and reports per-test relative scores. The suite
// covers the surfaces the kernel modification touches: syscall entry,
// pipe-style data shuffling, context switching, process/task spawning, and
// demand paging; a pure-user Dhrystone-style test anchors the unaffected
// end.
func RunUnixBench(arch cycles.Arch, parallel bool) UnixBenchResult {
	copies := 1
	if parallel {
		copies = DefaultCores(arch)
	}
	tests := []struct {
		name string
		run  func(k *kernel.Kernel) float64 // cycles per op
	}{
		{"dhrystone (register)", ubDhrystone},
		{"syscall overhead", ubSyscall},
		{"pipe throughput", ubPipe},
		{"pipe-based context switching", ubContextSwitch},
		{"process creation", ubSpawn},
		{"execl throughput", ubExec},
		{"demand paging", ubPaging},
	}
	res := UnixBenchResult{Arch: arch, Parallel: parallel}
	prod := 1.0
	for _, tst := range tests {
		vanilla := bootBench(arch, copies, false)
		vdomk := bootBench(arch, copies, true)
		base := tst.run(vanilla)
		mod := tst.run(vdomk)
		rel := base / mod * 100 // ops/sec ratio == inverse cycle ratio
		res.Scores = append(res.Scores, UnixBenchScore{Test: tst.name, Relative: rel})
		prod *= rel
	}
	res.Index = math.Pow(prod, 1/float64(len(tests)))
	return res
}

func bootBench(arch cycles.Arch, cores int, vdomOn bool) *kernel.Kernel {
	m := hw.NewMachine(hw.Config{Arch: arch, NumCores: cores, TLBCapacity: 0})
	return kernel.New(kernel.Config{Machine: m, VDomEnabled: vdomOn})
}

// ubDhrystone: pure user-space integer work — kernel flavour is invisible.
func ubDhrystone(k *kernel.Kernel) float64 {
	return 1_000_000
}

// ubSyscall: empty syscall round trips.
func ubSyscall(k *kernel.Kernel) float64 {
	p := k.NewProcess()
	t := p.NewTask(0)
	var total cycles.Cost
	const n = 256
	for i := 0; i < n; i++ {
		_, c := t.GetTID()
		total += c
	}
	return float64(total) / n
}

// ubPipe: two syscalls plus a 512-byte copy per op.
func ubPipe(k *kernel.Kernel) float64 {
	p := k.NewProcess()
	t := p.NewTask(0)
	var total cycles.Cost
	const n = 256
	for i := 0; i < n; i++ {
		_, c1 := t.GetTID() // write()
		_, c2 := t.GetTID() // read()
		total += c1 + c2 + 512/8
	}
	return float64(total) / n
}

// ubContextSwitch: ping-pong between two tasks on one core, the test most
// sensitive to the VDom kernel's switch_mm slowdown.
func ubContextSwitch(k *kernel.Kernel) float64 {
	p := k.NewProcess()
	t1, t2 := p.NewTask(0), p.NewTask(0)
	var total cycles.Cost
	const n = 256
	for i := 0; i < n; i++ {
		total += k.Dispatch(t1) + k.Params().SyscallReturn
		total += k.Dispatch(t2) + k.Params().SyscallReturn
	}
	return float64(total) / (2 * n)
}

// ubSpawn: create a task, dispatch it once, and let it make one syscall.
func ubSpawn(k *kernel.Kernel) float64 {
	p := k.NewProcess()
	var total cycles.Cost
	const n = 64
	for i := 0; i < n; i++ {
		t := p.NewTask(0)
		total += k.Params().SyscallReturn * 3 // fork-style setup
		total += k.Dispatch(t)
		_, c := t.GetTID()
		total += c
	}
	return float64(total) / n
}

// ubExec: fresh process with an address-space setup (mmap text/data/stack)
// and first faults.
func ubExec(k *kernel.Kernel) float64 {
	var total cycles.Cost
	const n = 16
	for i := 0; i < n; i++ {
		p := k.NewProcess()
		t := p.NewTask(0)
		base := pagetable.VAddr(0x400000)
		for seg := 0; seg < 3; seg++ {
			addr := base + pagetable.VAddr(seg)*0x10000000
			c, err := t.Mmap(addr, 16*pagetable.PageSize, true)
			if err != nil {
				panic(err)
			}
			total += c
			c2, err := t.Access(addr, true)
			if err != nil {
				panic(err)
			}
			total += c2
		}
	}
	return float64(total) / n
}

// ubPaging: mmap a region and fault every page.
func ubPaging(k *kernel.Kernel) float64 {
	p := k.NewProcess()
	t := p.NewTask(0)
	const pages = 128
	c, err := t.Mmap(0x70000000, pages*pagetable.PageSize, true)
	if err != nil {
		panic(err)
	}
	total := c
	for i := 0; i < pages; i++ {
		c, err := t.Access(0x70000000+pagetable.VAddr(i)*pagetable.PageSize, true)
		if err != nil {
			panic(err)
		}
		total += c
	}
	return float64(total) / pages
}
