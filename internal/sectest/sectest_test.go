package sectest

import (
	"testing"

	"vdom/internal/cycles"
)

func TestAllAttacksBlocked(t *testing.T) {
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		results := Run(arch)
		if len(results) < 12 {
			t.Fatalf("%v: only %d tests ran", arch, len(results))
		}
		for _, r := range results {
			if !r.Blocked {
				t.Errorf("%v: %s NOT blocked: %s", arch, r.Name, r.Detail)
			}
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a := Run(cycles.X86)
	b := Run(cycles.X86)
	for i := range a {
		if a[i].Blocked != b[i].Blocked {
			t.Errorf("test %q not deterministic", a[i].Name)
		}
	}
}
