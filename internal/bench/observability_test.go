package bench

import (
	"bytes"
	"io"
	"testing"

	"vdom/internal/metrics"
)

// TestObservabilityDeterminism is the same-seed determinism guarantee of
// OBSERVABILITY.md: running an instrumented experiment twice — Table 4
// and the chaos soak — produces byte-identical table output, metrics
// snapshots, and Chrome traces.
func TestObservabilityDeterminism(t *testing.T) {
	type experiment struct {
		name string
		run  func(w io.Writer, o Options)
	}
	for _, exp := range []experiment{
		{"table4", Table4},
		{"chaos", func(w io.Writer, o Options) { ChaosSeed(w, o, 42) }},
	} {
		run := func() (table, snap, trace []byte) {
			o := Options{Quick: true, Metrics: metrics.New(), Trace: metrics.NewTrace()}
			var tb, mb, jb bytes.Buffer
			exp.run(&tb, o)
			if err := o.Metrics.WriteJSON(&mb); err != nil {
				t.Fatal(err)
			}
			if err := o.Trace.WriteJSON(&jb); err != nil {
				t.Fatal(err)
			}
			return tb.Bytes(), mb.Bytes(), jb.Bytes()
		}
		t1, m1, j1 := run()
		t2, m2, j2 := run()
		if !bytes.Equal(t1, t2) {
			t.Errorf("%s: table output differs between identical runs", exp.name)
		}
		if !bytes.Equal(m1, m2) {
			t.Errorf("%s: metrics snapshots differ between identical runs", exp.name)
		}
		if !bytes.Equal(j1, j2) {
			t.Errorf("%s: traces differ between identical runs", exp.name)
		}
		if len(j1) == 0 || !bytes.Contains(j1, []byte("traceEvents")) {
			t.Errorf("%s: trace output empty or malformed", exp.name)
		}
	}
}

// TestTable4MetricsSumsToBenchTotal checks the acceptance invariant end
// to end at the bench layer: the registry's attributed TotalCycles
// equals the sum of every cell's independently measured grand total
// (the "bench/total-cycles" counter), and the snapshot is internally
// consistent.
func TestTable4MetricsSumsToBenchTotal(t *testing.T) {
	o := Options{Quick: true, Metrics: metrics.New()}
	var tb bytes.Buffer
	Table4(&tb, o)
	snap := o.Metrics.Snapshot()
	if err := snap.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if snap.TotalCycles == 0 {
		t.Fatal("no cycles attributed")
	}
	if got, want := snap.TotalCycles, snap.Counters["bench/total-cycles"]; got != want {
		t.Errorf("attributed %d cycles, cells measured %d (diff %d)",
			got, want, int64(got)-int64(want))
	}
}

// TestTable4OutputUnchangedByMetrics: the -metrics/-trace-out flags are
// observation-only — the rendered table is byte-identical either way.
func TestTable4OutputUnchangedByMetrics(t *testing.T) {
	var off, on bytes.Buffer
	Table4(&off, Options{Quick: true})
	Table4(&on, Options{Quick: true, Metrics: metrics.New(), Trace: metrics.NewTrace()})
	if !bytes.Equal(off.Bytes(), on.Bytes()) {
		t.Error("enabling metrics changed the rendered table")
	}
}
