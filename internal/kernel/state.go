package kernel

import (
	"fmt"
	"sort"

	"vdom/internal/cycles"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Checkpoint capture and restore for the kernel layer (vdom-snap/v1).
// Page tables are referred to by the memory manager's stable ids (see
// mm.TableID); tasks by TID within their process.

// AccountSnap is one named cycle account of a task counter.
type AccountSnap struct {
	Name string
	Cost cycles.Cost
}

// TaskSnap is the serializable image of one Task.
type TaskSnap struct {
	TID       int
	Core      int
	TableID   int
	ASID      tlb.ASID
	BaseASID  tlb.ASID
	SavedPerm uint64
	VDS       bool
	Total     cycles.Cost
	Accounts  []AccountSnap
}

// Snap is the serializable image of a Kernel plus one Process's tasks.
type Snap struct {
	NextASID  tlb.ASID
	MaxASID   tlb.ASID
	ASIDGen   uint64
	Rollovers uint64
	LiveASIDs []tlb.ASID // ascending
	NextPID   int

	// LastTaskTID records, per core, the TID of the task whose state is
	// loaded there (0 = none).
	LastTaskTID []int
	PendingIRQ  []cycles.Cost

	Tasks []TaskSnap // ascending TID
}

// Snap captures the kernel's image together with process p's task list.
// tableID maps each task's live page table to its stable id.
func (k *Kernel) Snap(p *Process, tableID func(*pagetable.Table) int) Snap {
	s := Snap{
		NextASID:    k.nextASID,
		MaxASID:     k.maxASID,
		ASIDGen:     k.asidGen,
		Rollovers:   k.rollovers,
		NextPID:     k.nextPID,
		LastTaskTID: make([]int, len(k.lastTask)),
		PendingIRQ:  append([]cycles.Cost(nil), k.pendingIRQ...),
	}
	for a := range k.liveASIDs {
		s.LiveASIDs = append(s.LiveASIDs, a)
	}
	sort.Slice(s.LiveASIDs, func(i, j int) bool { return s.LiveASIDs[i] < s.LiveASIDs[j] })
	for id, t := range k.lastTask {
		if t != nil {
			s.LastTaskTID[id] = t.tid
		}
	}
	for _, t := range p.tasks {
		ts := TaskSnap{
			TID:       t.tid,
			Core:      t.core,
			TableID:   tableID(t.table),
			ASID:      t.asid,
			BaseASID:  t.baseASID,
			SavedPerm: t.savedPerm,
			VDS:       t.vds,
			Total:     t.Counter.Total(),
		}
		for name, c := range t.Counter.Accounts() {
			ts.Accounts = append(ts.Accounts, AccountSnap{Name: name, Cost: c})
		}
		sort.Slice(ts.Accounts, func(i, j int) bool { return ts.Accounts[i].Name < ts.Accounts[j].Name })
		s.Tasks = append(s.Tasks, ts)
	}
	sort.Slice(s.Tasks, func(i, j int) bool { return s.Tasks[i].TID < s.Tasks[j].TID })
	return s
}

// LoadSnap restores the kernel's image onto a freshly booted kernel and
// recreates process p's tasks from the snapshot. table is the inverse of
// the Snap tableID mapping. It returns the restored tasks keyed by TID.
//
// The process must be fresh (no tasks): LoadSnap constructs each task
// directly — NOT through NewTask, which would draw new ASIDs — so the
// ASID allocator's cursor, generation, and live set land exactly on the
// checkpointed values.
func (k *Kernel) LoadSnap(s Snap, p *Process, table func(id int) *pagetable.Table) map[int]*Task {
	if len(p.tasks) != 0 {
		panic("kernel: LoadSnap on a process with live tasks")
	}
	if len(s.LastTaskTID) != len(k.lastTask) || len(s.PendingIRQ) != len(k.pendingIRQ) {
		panic(fmt.Sprintf("kernel: LoadSnap core count mismatch (snapshot %d, machine %d)",
			len(s.LastTaskTID), len(k.lastTask)))
	}
	k.nextASID = s.NextASID
	k.maxASID = s.MaxASID
	k.asidGen = s.ASIDGen
	k.rollovers = s.Rollovers
	k.nextPID = s.NextPID
	k.liveASIDs = make(map[tlb.ASID]bool, len(s.LiveASIDs))
	for _, a := range s.LiveASIDs {
		k.liveASIDs[a] = true
	}
	copy(k.pendingIRQ, s.PendingIRQ)

	byTID := make(map[int]*Task, len(s.Tasks))
	for _, ts := range s.Tasks {
		t := &Task{
			proc:      p,
			tid:       ts.TID,
			core:      ts.Core,
			table:     table(ts.TableID),
			asid:      ts.ASID,
			baseASID:  ts.BaseASID,
			savedPerm: ts.SavedPerm,
			vds:       ts.VDS,
			Counter:   cycles.NewCounter(),
		}
		for _, a := range ts.Accounts {
			t.Counter.Charge(a.Name, a.Cost)
		}
		if got := t.Counter.Total(); got != ts.Total {
			panic(fmt.Sprintf("kernel: task %d counter total %d != snapshot %d", ts.TID, got, ts.Total))
		}
		p.tasks = append(p.tasks, t)
		byTID[ts.TID] = t
	}
	for id, tid := range s.LastTaskTID {
		if tid == 0 {
			k.lastTask[id] = nil
			continue
		}
		t, ok := byTID[tid]
		if !ok {
			panic(fmt.Sprintf("kernel: LastTask TID %d missing from snapshot tasks", tid))
		}
		k.lastTask[id] = t
	}
	return byTID
}

// ClearResidency models the kernel-level effect of a crash: the per-core
// notion of which task's state is loaded is lost, forcing a full context
// switch on the next dispatch. The recovery path restores a checkpoint
// over this, so the cleared state never reaches post-recovery execution.
func (k *Kernel) ClearResidency() {
	for i := range k.lastTask {
		k.lastTask[i] = nil
	}
}
