package hw

import "fmt"

// Perm is an access right to one protection domain, the common abstraction
// over Intel PKRU bit pairs and ARM DACR field values.
type Perm uint8

const (
	// PermNone denies all access (PKRU access-disable, DACR No Access).
	PermNone Perm = iota
	// PermRead allows reads only (PKRU write-disable).
	PermRead
	// PermReadWrite allows full access.
	PermReadWrite
)

// String returns a short human-readable permission name.
func (p Perm) String() string {
	switch p {
	case PermNone:
		return "NA"
	case PermRead:
		return "RO"
	case PermReadWrite:
		return "RW"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// Allows reports whether the permission admits the access.
func (p Perm) Allows(write bool) bool {
	switch p {
	case PermReadWrite:
		return true
	case PermRead:
		return !write
	default:
		return false
	}
}

// PermRegister is the per-core domain permission register: PKRU on Intel,
// DACR on ARM, AMR on Power. Each domain gets a 2-bit field — 16 fields
// fit a 32-bit PKRU/DACR, and the 64-bit width also accommodates Power's
// 32 domains. The encoding follows PKRU: bit 2k is access-disable (AD),
// bit 2k+1 is write-disable (WD); a zero register grants full access to
// every domain.
type PermRegister struct {
	bits uint64
}

// MaxPdoms is the largest domain count any architecture model uses.
const MaxPdoms = 32

// Get returns the permission for pdom.
func (r *PermRegister) Get(pdom uint8) Perm {
	f := r.bits >> (2 * uint64(pdom)) & 0b11
	switch {
	case f&0b01 != 0:
		return PermNone
	case f&0b10 != 0:
		return PermRead
	default:
		return PermReadWrite
	}
}

// Field returns the permission's 2-bit register field (AD/WD encoding):
// PermNone → 0b01, PermRead → 0b10, PermReadWrite → 0b00. Register-image
// builders that assemble a raw value directly use it to skip per-field
// Set calls.
func (p Perm) Field() uint64 {
	if p > PermReadWrite {
		panic(fmt.Sprintf("hw: invalid permission %d", p))
	}
	// The three fields packed little-endian by permission value.
	return 0b00_10_01 >> (2 * uint64(p)) & 0b11
}

// Set updates the permission for pdom.
func (r *PermRegister) Set(pdom uint8, p Perm) {
	shift := 2 * uint64(pdom)
	r.bits = r.bits&^(0b11<<shift) | p.Field()<<shift
}

// Raw returns the raw register value (rdpkru / mfspr).
func (r *PermRegister) Raw() uint64 { return r.bits }

// SetRaw overwrites the raw register value (wrpkru / mtspr). It is how the
// secure call gate and hijack tests manipulate the register wholesale.
func (r *PermRegister) SetRaw(v uint64) { r.bits = v }

// Allows reports whether the register admits the access to pdom.
func (r *PermRegister) Allows(pdom uint8, write bool) bool {
	return r.Get(pdom).Allows(write)
}

// denyAllBits access-disables fields 1..MaxPdoms-1 (bit 2k set for every
// k ≥ 1) while leaving the default domain fully accessible.
const denyAllBits uint64 = 0x5555555555555554

// DenyAll returns a raw value that access-disables every domain except
// pdom0 (the default domain, which always stays accessible so code can
// run).
func DenyAll() uint64 { return denyAllBits }

// DenyAllBelow returns a raw value that access-disables domains [1, n)
// and leaves every other field (pdom0 and fields ≥ n) fully accessible —
// the starting image for an n-domain architecture before any grants are
// overlaid.
func DenyAllBelow(n int) uint64 {
	if n >= MaxPdoms {
		return denyAllBits
	}
	if n < 1 {
		return 0
	}
	return denyAllBits & (1<<(2*uint64(n)) - 1)
}
