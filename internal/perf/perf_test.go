package perf

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fastOptions keeps suite runs in test time: one repetition of the quick
// iteration counts still executes every benchmark's real workload.
var fastOptions = Options{Quick: true, Repeats: 1}

func TestRunProducesFixedSuite(t *testing.T) {
	rep, err := Run(fastOptions)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != Version {
		t.Errorf("version = %q, want %q", rep.Version, Version)
	}
	if rep.Calibration <= 0 || rep.Scale <= 0 {
		t.Errorf("calibration %v / scale %v not positive", rep.Calibration, rep.Scale)
	}
	want := []string{"replay", "table4", "parallel-grid", "checkpoint"}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(rep.Benchmarks), len(want))
	}
	for i, b := range rep.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
		if b.Raw <= 0 || b.Normalized <= 0 {
			t.Errorf("%s: non-positive rate raw=%v normalized=%v", b.Name, b.Raw, b.Normalized)
		}
		if got := b.Raw * rep.Scale; math.Abs(got-b.Normalized) > 1e-6*b.Normalized {
			t.Errorf("%s: normalized %v != raw*scale %v", b.Name, b.Normalized, got)
		}
		if b.Unit == "" || b.Iters <= 0 || b.Repeats <= 0 {
			t.Errorf("%s: incomplete record %+v", b.Name, b)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, err := Run(fastOptions)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("JSON missing trailing newline")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("round trip mismatch:\n%s\n%s", a, b)
	}
}

func TestReadFileRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version":"vdom-perf/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("wrong-version report accepted")
	}
}

// report builds a synthetic two-benchmark report with the given
// normalized rates.
func report(replayRate, table4Rate float64) *Report {
	return &Report{
		Version: Version,
		Benchmarks: []Benchmark{
			{Name: "replay", Unit: "events/sec", Normalized: replayRate},
			{Name: "table4", Unit: "accesses/sec", Normalized: table4Rate},
		},
	}
}

func TestCompare(t *testing.T) {
	base := report(1000, 500)

	if regs := Compare(base, report(1000, 500), 0.15); len(regs) != 0 {
		t.Errorf("identical reports regressed: %+v", regs)
	}
	// 10% drop passes the 15% threshold; improvements always pass.
	if regs := Compare(base, report(900, 800), 0.15); len(regs) != 0 {
		t.Errorf("within-threshold drop flagged: %+v", regs)
	}
	// 20% drop on one benchmark fails, naming it.
	regs := Compare(base, report(800, 500), 0.15)
	if len(regs) != 1 || regs[0].Name != "replay" {
		t.Fatalf("got %+v, want one replay regression", regs)
	}
	if math.Abs(regs[0].Drop-0.2) > 1e-9 {
		t.Errorf("drop = %v, want 0.2", regs[0].Drop)
	}
	// A benchmark missing from the current run is a full regression.
	missing := &Report{Version: Version, Benchmarks: base.Benchmarks[:1]}
	regs = Compare(base, missing, 0.15)
	if len(regs) != 1 || regs[0].Name != "table4" || regs[0].Drop != 1 {
		t.Fatalf("got %+v, want table4 missing regression", regs)
	}
}

func TestCalibrateIsPositiveAndRepeatable(t *testing.T) {
	a, b := Calibrate(2), Calibrate(2)
	if a <= 0 || b <= 0 {
		t.Fatalf("calibration not positive: %v %v", a, b)
	}
	// Min-of-N calibration on the same machine should agree within a
	// generous factor even on noisy shared hosts.
	if ratio := a / b; ratio < 0.2 || ratio > 5 {
		t.Errorf("calibrations disagree wildly: %v vs %v", a, b)
	}
}
