package core

import (
	"vdom/internal/pagetable"
)

// Area is one contiguous protected memory range assigned to a vdom.
type Area struct {
	Start  pagetable.VAddr
	Length uint64
}

// Pages returns the page count of the area.
func (a Area) Pages() uint64 { return a.Length / pagetable.PageSize }

// End returns the exclusive end address.
func (a Area) End() pagetable.VAddr { return a.Start + pagetable.VAddr(a.Length) }

// vdtFanout is the fan-out of each VDT level.
const vdtFanout = 512

// VDT is the hierarchical virtual domain table of the per-process VDM
// (§5.3): a two-level radix over vdom ids whose last-level entries point to
// the chained memory areas protected by the indexing vdom. It balances
// memory against the O(1) lookups eviction needs — evicting a vdom must
// find all of its areas without scanning the process's VMA tree.
type VDT struct {
	top   map[uint64]*vdtLeaf
	areas int
}

type vdtLeaf struct {
	slots [vdtFanout][]Area
}

// NewVDT returns an empty table.
func NewVDT() *VDT {
	return &VDT{top: make(map[uint64]*vdtLeaf)}
}

// TotalAreas returns the number of areas across all vdoms.
func (t *VDT) TotalAreas() int { return t.areas }

func (t *VDT) leafFor(v VdomID, create bool) (*vdtLeaf, int) {
	hi, lo := uint64(v)/vdtFanout, int(uint64(v)%vdtFanout)
	leaf := t.top[hi]
	if leaf == nil && create {
		leaf = &vdtLeaf{}
		t.top[hi] = leaf
	}
	return leaf, lo
}

// AddArea records that [start, start+length) is protected by v. Adjacent
// areas are coalesced so eviction walks stay short.
func (t *VDT) AddArea(v VdomID, start pagetable.VAddr, length uint64) {
	leaf, lo := t.leafFor(v, true)
	chain := leaf.slots[lo]
	// Coalesce with an adjacent existing area when possible.
	for i := range chain {
		if chain[i].End() == start {
			chain[i].Length += length
			return
		}
		if start+pagetable.VAddr(length) == chain[i].Start {
			chain[i].Start = start
			chain[i].Length += length
			return
		}
	}
	leaf.slots[lo] = append(chain, Area{Start: start, Length: length})
	t.areas++
}

// RemoveArea drops the exact area [start, start+length) from v's chain.
// It reports whether the area was found.
func (t *VDT) RemoveArea(v VdomID, start pagetable.VAddr, length uint64) bool {
	leaf, lo := t.leafFor(v, false)
	if leaf == nil {
		return false
	}
	chain := leaf.slots[lo]
	for i := range chain {
		if chain[i].Start == start && chain[i].Length == length {
			leaf.slots[lo] = append(chain[:i], chain[i+1:]...)
			t.areas--
			return true
		}
	}
	return false
}

// Clear removes every area of v and returns how many were dropped.
func (t *VDT) Clear(v VdomID) int {
	leaf, lo := t.leafFor(v, false)
	if leaf == nil {
		return 0
	}
	n := len(leaf.slots[lo])
	leaf.slots[lo] = nil
	t.areas -= n
	return n
}

// Areas returns the protected areas of v. The returned slice must not be
// mutated.
func (t *VDT) Areas(v VdomID) []Area {
	leaf, lo := t.leafFor(v, false)
	if leaf == nil {
		return nil
	}
	return leaf.slots[lo]
}

// TotalPages returns the number of pages protected by v.
func (t *VDT) TotalPages(v VdomID) uint64 {
	var n uint64
	for _, a := range t.Areas(v) {
		n += a.Pages()
	}
	return n
}
