package hw

import (
	"fmt"

	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Checkpoint capture and restore for the hardware layer (vdom-snap/v1).
// Page tables are owned by the memory-management layer and serialized
// there; a core snapshot refers to its loaded table by an opaque id the
// caller maps in both directions.

// WalkSnap is the per-core page-walk cache image. The cache is a
// host-side memoization, but its hit/miss counters are published as
// metrics, so an exact restore must carry it.
type WalkSnap struct {
	TableID int
	Gen     uint64
	VPN     uint64
	Valid   bool
	Res     pagetable.WalkResult
	Hits    uint64
	Misses  uint64
}

// CoreSnap is the serializable image of one Core.
type CoreSnap struct {
	PermRaw uint64
	ASID    tlb.ASID
	// TableID identifies the loaded page table via the caller's mapping;
	// the caller reserves a value (conventionally -1) for "none loaded".
	TableID int
	Walk    WalkSnap
	TLB     tlb.CacheState
}

// Snap captures the core's image. tableID maps a live *pagetable.Table
// (or nil) to the caller's stable table id.
func (c *Core) Snap(tableID func(*pagetable.Table) int) CoreSnap {
	return CoreSnap{
		PermRaw: c.perm.Raw(),
		ASID:    c.asid,
		TableID: tableID(c.table),
		Walk: WalkSnap{
			TableID: tableID(c.walkTable),
			Gen:     c.walkGen,
			VPN:     c.walkVPN,
			Valid:   c.walkValid,
			Res:     c.walkRes,
			Hits:    c.walkHits,
			Misses:  c.walkMisses,
		},
		TLB: c.tlb.State(),
	}
}

// LoadSnap restores the core from a captured image. table is the inverse
// of the Snap tableID mapping (it must return nil for the "none" id).
func (c *Core) LoadSnap(s CoreSnap, table func(id int) *pagetable.Table) {
	c.perm.SetRaw(s.PermRaw)
	c.asid = s.ASID
	c.table = table(s.TableID)
	c.walkTable = table(s.Walk.TableID)
	c.walkGen = s.Walk.Gen
	c.walkVPN = s.Walk.VPN
	c.walkValid = s.Walk.Valid
	c.walkRes = s.Walk.Res
	c.walkHits = s.Walk.Hits
	c.walkMisses = s.Walk.Misses
	c.tlb.LoadState(s.TLB)
}

// CrashVolatile models the architectural effect of a core crash on the
// chip: the volatile micro-architectural state — TLB contents, the
// permission register, the walk cache — is lost, while memory-resident
// state (page tables) survives. The recovery path restores a checkpoint
// on top, so the wiped state never leaks into post-recovery execution.
func (c *Core) CrashVolatile() {
	c.tlb.FlushAll()
	c.perm.SetRaw(DenyAll())
	c.walkValid = false
	c.walkTable = nil
	c.table = nil
	c.asid = 0
}

// FrameWatermark returns the frame allocator's high-water mark (the next
// frame AllocFrames would hand out).
func (m *Machine) FrameWatermark() pagetable.Frame { return m.nextFrame }

// SetFrameWatermark restores the frame allocator's high-water mark from
// a checkpoint. It refuses to move the watermark backwards past frames
// already handed out on a fresh machine.
func (m *Machine) SetFrameWatermark(f pagetable.Frame) {
	if f < m.nextFrame {
		panic(fmt.Sprintf("hw: frame watermark %d would orphan %d allocated frames", f, m.nextFrame))
	}
	m.nextFrame = f
}
