package core

import (
	"vdom/internal/cycles"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// APIOp identifies one public Manager API call for trace recording.
type APIOp int

// The tapped API operations, one per public syscall-shaped entry point.
const (
	APIAllocVdom APIOp = iota
	APIFreeVdom
	APIMprotect
	APIVdrAlloc
	APIVdrFree
	APIRdVdr
	APIWrVdr
	APINewVDS
)

// APICall describes one completed Manager API call: the identifying
// arguments, the returned cost, and the outcome. Fields an op does not
// use stay zero. It is the core's internal call descriptor; the attached
// tap receives the unified tap.Event form.
type APICall struct {
	// Op is the API entry point.
	Op APIOp
	// TID is the calling thread (0 for process-level ops).
	TID int
	// Vdom is the domain argument, or AllocVdom's returned id.
	Vdom VdomID
	// Addr and Len are Mprotect's range.
	Addr pagetable.VAddr
	Len  uint64
	// Nas is VdrAlloc's requested address-space count, as passed.
	Nas int
	// Freq is AllocVdom's frequently-accessed hint.
	Freq bool
	// Perm is WrVdr's argument or RdVdr's result.
	Perm VPerm
	// Cost is the cycles the call returned.
	Cost cycles.Cost
	// Err is the call's error, nil on success.
	Err error
}

// SetTap attaches a trace recorder to the Manager's public API. Pass nil
// (the default) to detach; when detached each call pays one nil check.
func (m *Manager) SetTap(t tap.Tap) { m.apiTap = t }

// tapAPI converts a completed call to the unified tap.Event shape and
// forwards it to the attached tap, if any. The VDR-alloc event reuses Len
// for the nas count, matching the trace encoding.
func (m *Manager) tapAPI(c APICall) {
	if m.apiTap == nil {
		return
	}
	e := tap.Event{TID: c.TID, Cost: c.Cost, Err: c.Err}
	switch c.Op {
	case APIAllocVdom:
		e.Op = tap.OpVdomAlloc
		e.Dom = uint64(c.Vdom)
		e.Freq = c.Freq
	case APIFreeVdom:
		e.Op = tap.OpVdomFree
		e.Dom = uint64(c.Vdom)
	case APIMprotect:
		e.Op = tap.OpVdomMprotect
		e.Addr = c.Addr
		e.Len = c.Len
		e.Dom = uint64(c.Vdom)
	case APIVdrAlloc:
		e.Op = tap.OpVdrAlloc
		e.Len = uint64(c.Nas)
	case APIVdrFree:
		e.Op = tap.OpVdrFree
	case APIRdVdr:
		e.Op = tap.OpVdrRead
		e.Dom = uint64(c.Vdom)
		e.Perm = uint8(c.Perm)
	case APIWrVdr:
		e.Op = tap.OpVdrWrite
		e.Dom = uint64(c.Vdom)
		e.Perm = uint8(c.Perm)
	case APINewVDS:
		e.Op = tap.OpNewVDS
	default:
		return
	}
	m.apiTap(e)
}

// tapTID extracts the thread id, tolerating process-level (nil-task) ops.
func tapTID(t *kernel.Task) int {
	if t == nil {
		return 0
	}
	return t.TID()
}
