// Command vdom-sectest runs the paper's security evaluation (§7.2): the
// penetration tests on random vdoms, the X86 API-protection attacks, and
// the Table 2 sandbox defenses, on both simulated architectures. It exits
// non-zero if any attack is not blocked.
package main

import (
	"fmt"
	"os"

	"vdom/internal/cycles"
	"vdom/internal/sectest"
)

func main() {
	failed := 0
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		fmt.Printf("=== %v ===\n", arch)
		for _, r := range sectest.Run(arch) {
			status := "BLOCKED"
			switch {
			case r.SetupFailed:
				status = "*** SETUP FAILED ***"
				failed++
			case !r.Blocked:
				status = "*** NOT BLOCKED ***"
				failed++
			}
			fmt.Printf("  %-48s %-20s %s\n", r.Name, status, r.Detail)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d attack(s) succeeded\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall attacks blocked")
}
