// Pmostore: the paper's persistent-memory scenario — a store of 2 MiB
// persistent memory objects (PMOs), each under its own domain, accessed
// with least privilege: read-only while searching, full access only for
// the replacement write (§7.6, String Replace). Demonstrates both of
// VDom's strategies for more domains than the hardware offers: VDS
// switching (nas > 1) and in-place eviction (nas = 1).
package main

import (
	"fmt"
	"log"

	"vdom"
)

const (
	numPMOs  = 64
	pmoBytes = 2 << 20
	ops      = 3000
)

func run(mode string, nas int) {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 4})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)
	if _, err := t.AllocVDR(nas); err != nil {
		log.Fatal(err)
	}

	// Attach the PMOs: one domain per object.
	addrs := make([]vdom.Addr, numPMOs)
	doms := make([]vdom.Domain, numPMOs)
	for i := range addrs {
		a, err := t.Mmap(pmoBytes)
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = a
		doms[i], _ = p.AllocDomain(false)
		if _, err := p.ProtectRange(t, a, pmoBytes, doms[i]); err != nil {
			log.Fatal(err)
		}
	}

	// Random search-and-replace ops, least privilege at every step.
	var totalCycles vdom.Cycles
	rng := uint64(0x9e3779b97f4a7c15)
	for op := 0; op < ops; op++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		i := int(rng % numPMOs)
		off := vdom.Addr(rng % (pmoBytes / 512) * 512).PageAlign()

		c, err := t.WriteVDR(doms[i], vdom.ReadOnly) // search: WD
		if err != nil {
			log.Fatal(err)
		}
		totalCycles += c
		if c, err = t.LoadCost(addrs[i] + off); err != nil {
			log.Fatal(err)
		}
		totalCycles += c
		if c, err = t.WriteVDR(doms[i], vdom.ReadWrite); err != nil { // replace: FA
			log.Fatal(err)
		}
		totalCycles += c
		if c, err = t.StoreCost(addrs[i] + off); err != nil {
			log.Fatal(err)
		}
		totalCycles += c
		if c, err = t.WriteVDR(doms[i], vdom.NoAccess); err != nil { // seal again
			log.Fatal(err)
		}
		totalCycles += c
	}

	st := p.Stats()
	fmt.Printf("%-22s %5.0f cycles/op protection cost | switches=%-5d evictions=%-5d HLRU-fast-remaps=%d\n",
		mode, float64(totalCycles)/ops, st.VDSSwitches, st.Evictions, st.HLRUHits)
}

func main() {
	fmt.Printf("%d PMOs x %d MiB, %d random search-and-replace ops\n\n", numPMOs, pmoBytes>>20, ops)
	run("VDS switching (nas=6)", 6)
	run("eviction only (nas=1)", 1)
}
