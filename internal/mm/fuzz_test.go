package mm

import (
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/pagetable"
)

// FuzzAddressSpaceOps drives mmap/munmap/mprotect/touch tapes and checks
// that the VMA tree stays overlap-free and consistent with access
// behaviour.
func FuzzAddressSpaceOps(f *testing.F) {
	f.Add([]byte{0, 10, 4, 1, 10, 2, 2, 11, 0})
	f.Add([]byte{0, 0, 8, 0, 4, 2, 1, 2, 2, 3, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		m := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: 1, TLBCapacity: 64})
		as := NewAddressSpace(m)
		for i := 0; i+2 < len(tape); i += 3 {
			op := tape[i] % 4
			startPg := uint64(tape[i+1]) % 128
			lenPg := uint64(tape[i+2])%16 + 1
			start := pagetable.VAddr(startPg * pg)
			length := lenPg * pg
			switch op {
			case 0:
				as.Mmap(start, length, true) // may ErrOverlap; fine
			case 1:
				as.Munmap(start, length)
			case 2:
				as.Mprotect(start, length, tape[i+2]&1 == 0)
			case 3:
				as.HandleFault(as.Shadow(), start, false)
			}
			// Invariant: areas never overlap and iterate in order.
			var prevEnd pagetable.VAddr
			ok := true
			as.VMAs(func(v *VMA) bool {
				if v.Start < prevEnd {
					ok = false
					return false
				}
				if v.Length == 0 || v.Length%pg != 0 {
					ok = false
					return false
				}
				prevEnd = v.End()
				return true
			})
			if !ok {
				t.Fatal("VMA tree invariant violated")
			}
		}
		// Every present shadow page must fall inside some VMA.
		bad := false
		as.Shadow().Pages(func(a pagetable.VAddr, _ pagetable.PTE) {
			if as.FindVMA(a) == nil {
				bad = true
			}
		})
		if bad {
			t.Fatal("present page outside any VMA")
		}
	})
}
