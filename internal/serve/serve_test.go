package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/replay"
	"vdom/internal/tlb"
)

// soakTemplate is the shared workload template: every fault class
// enabled, mirroring the crash-soak suite's mix.
func soakTemplate() chaos.SoakConfig {
	return chaos.SoakConfig{
		Chaos: chaos.Config{
			DropIPI:        0.05,
			DelayIPI:       0.05,
			StaleTLB:       0.03,
			ASIDExhaustion: 0.02,
			ASIDLimit:      tlb.ASID(24),
			VDSAllocFail:   0.10,
			PdomExhaustion: 0.05,
			SpuriousFault:  0.02,
		},
	}
}

// reference runs the unsupervised, uninterrupted soak for one shard's
// seed and asserts it is healthy.
func reference(t *testing.T, base Config, shard int) (*chaos.SoakResult, *metrics.Registry) {
	t.Helper()
	cfg := base.Soak
	cfg.Chaos.Seed = base.Seed + uint64(shard)
	cfg.Ops = base.OpsPerShard
	cfg.Record = true
	reg := metrics.New()
	cfg.Metrics = reg
	res := chaos.Soak(cfg)
	if len(res.Unrecovered) != 0 || len(res.Violations) != 0 {
		t.Fatalf("reference shard %d unhealthy: %v %v", shard, res.Unrecovered, res.Violations)
	}
	return res, reg
}

// assertBitIdentical compares one supervised shard outcome against its
// unsupervised reference: trace bytes, end-state map, fault counters,
// and the workload metrics JSON.
func assertBitIdentical(t *testing.T, sh ShardOutcome, ref *chaos.SoakResult, refReg *metrics.Registry) {
	t.Helper()
	if sh.Result == nil {
		t.Fatalf("shard %d: no sealed result (state %v)", sh.Shard, sh.Health.State)
	}
	if len(sh.Result.Unrecovered) != 0 || len(sh.Result.Violations) != 0 {
		t.Fatalf("shard %d unhealthy: %v %v", sh.Shard, sh.Result.Unrecovered, sh.Result.Violations)
	}
	if !bytes.Equal(replay.Encode(sh.Result.Trace), replay.Encode(ref.Trace)) {
		t.Errorf("shard %d: supervised trace differs from unsupervised reference", sh.Shard)
	}
	for k, v := range ref.Trace.End {
		if sh.Result.Trace.End[k] != v {
			t.Errorf("shard %d end state %q: supervised %d, reference %d", sh.Shard, k, sh.Result.Trace.End[k], v)
		}
	}
	if fmt.Sprint(sh.Result.Injected) != fmt.Sprint(ref.Injected) ||
		fmt.Sprint(sh.Result.Recovered) != fmt.Sprint(ref.Recovered) {
		t.Errorf("shard %d: fault counters diverged", sh.Shard)
	}
	var refJSON, gotJSON bytes.Buffer
	if err := refReg.WriteJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	if err := sh.Metrics.WriteJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON.Bytes(), gotJSON.Bytes()) {
		t.Errorf("shard %d: workload metrics diverged across supervision", sh.Shard)
	}
}

// TestServeLongRunCarriesTransientStaleness regression-tests the dirty-
// boundary case: over a long run some crash boundaries land while
// dropped-shootdown staleness is legitimately in flight, so the
// post-recovery audit is non-empty. Recovery must compare it against the
// pre-crash baseline (a faithful restore reproduces the staleness) and
// keep serving — an empty-audit requirement would quarantine a healthy
// shard. The seed/op count here reproduced exactly that quarantine
// before the baseline comparison existed.
func TestServeLongRunCarriesTransientStaleness(t *testing.T) {
	cfg := Config{
		Shards:          1,
		Seed:            42,
		Soak:            soakTemplate(),
		OpsPerShard:     15000,
		CheckpointEvery: 100,
		Ring:            4,
		CrashEvery:      150,
		MaxRetries:      3,
		BackoffBase:     time.Nanosecond,
		BackoffCap:      time.Nanosecond,
		Pressure:        chaos.PressureConfig{SnapWriteFail: 0.2, SnapCorrupt: 0.2},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := rep.Shards[0].Health
	if h.State != Drained {
		t.Fatalf("shard state %v (last error %q), want drained", h.State, h.LastError)
	}
	if h.Recoveries != h.Crashes || h.Crashes < 50 {
		t.Errorf("crashes=%d recoveries=%d: want equal and a long crash history", h.Crashes, h.Recoveries)
	}
	if rep.Metrics.Counter("serve/staleness-carried") == 0 {
		t.Errorf("no recovery carried transient staleness — the dirty-boundary path was not exercised")
	}
	ref, refReg := reference(t, cfg, 0)
	assertBitIdentical(t, rep.Shards[0], ref, refReg)
}

// TestServeSupervisedBitIdentical is the tentpole acceptance check: a
// supervised fleet under injected crashes of every kind AND harness
// pressure (checkpoint-write failures, checkpoint corruption) must end
// with every shard recovered and bit-identical — trace bytes, end
// state, fault counters, workload metrics JSON — to the uninterrupted
// unsupervised run of the same seed.
func TestServeSupervisedBitIdentical(t *testing.T) {
	cfg := Config{
		Shards:          2,
		Seed:            0x5e12e,
		Soak:            soakTemplate(),
		OpsPerShard:     600,
		CheckpointEvery: 100,
		Ring:            8,
		CrashEvery:      150,
		BackoffBase:     time.Nanosecond,
		Pressure:        chaos.PressureConfig{SnapWriteFail: 0.25, SnapCorrupt: 0.25},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := rep.Health
	if h.Quarantined != 0 || h.Drained != cfg.Shards {
		t.Fatalf("fleet not fully drained: %d quarantined, %d drained", h.Quarantined, h.Drained)
	}
	if h.Crashes == 0 {
		t.Fatalf("no crash faults were injected (CrashEvery=%d over %d ops)", cfg.CrashEvery, cfg.OpsPerShard)
	}
	if h.Recoveries < h.Crashes {
		t.Errorf("recoveries (%d) < crashes (%d)", h.Recoveries, h.Crashes)
	}
	if h.Metrics == nil || h.Metrics.Counters["serve/recoveries"] != uint64(h.Recoveries) {
		t.Errorf("serve-layer metrics missing or inconsistent with health rollup")
	}
	for i, sh := range rep.Shards {
		ref, refReg := reference(t, cfg, i)
		assertBitIdentical(t, sh, ref, refReg)
	}
}

// TestServeCorruptRingFallback corrupts EVERY cadence checkpoint on
// disk (SnapCorrupt=1): each recovery must detect the corruption via
// the container CRCs, fall back through the ring, land on the pressure-
// free baseline entry, and still finish bit-identical.
func TestServeCorruptRingFallback(t *testing.T) {
	cfg := Config{
		Shards:          1,
		Seed:            0xfa11,
		Soak:            soakTemplate(),
		OpsPerShard:     600,
		CheckpointEvery: 100,
		Ring:            8,
		CrashEvery:      200,
		BackoffBase:     time.Nanosecond,
		Pressure:        chaos.PressureConfig{SnapCorrupt: 1.0},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := rep.Health
	if h.Quarantined != 0 || h.Drained != 1 {
		t.Fatalf("shard not drained: %+v", rep.Shards[0].Health)
	}
	if h.Crashes == 0 || h.Recoveries == 0 {
		t.Fatalf("expected injected crashes and recoveries, got %d/%d", h.Crashes, h.Recoveries)
	}
	if h.RingFallbacks == 0 {
		t.Errorf("every checkpoint was corrupted yet no ring fallback was counted")
	}
	if h.CorruptedCheckpoints == 0 {
		t.Errorf("pressure corrupted no checkpoints at probability 1")
	}
	ref, refReg := reference(t, cfg, 0)
	assertBitIdentical(t, rep.Shards[0], ref, refReg)
}

// TestServePanicIsolation injects a worker panic at an op boundary via
// the test hook: the panic must become a typed ShardFailure (never
// process death), answered by a checkpoint recovery, and the shard must
// still finish bit-identical to the reference.
func TestServePanicIsolation(t *testing.T) {
	fired := false
	cfg := Config{
		Shards:          1,
		Seed:            0xb00f,
		Soak:            soakTemplate(),
		OpsPerShard:     600,
		CheckpointEvery: 100,
		Ring:            8,
		BackoffBase:     time.Nanosecond,
		hook: func(shard, op int) {
			if op == 151 && !fired {
				fired = true
				panic("injected worker panic")
			}
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sh := rep.Shards[0]
	if sh.Health.PanicFailures != 1 {
		t.Fatalf("PanicFailures = %d, want 1", sh.Health.PanicFailures)
	}
	if sh.Health.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1 (the panic recovery)", sh.Health.Recoveries)
	}
	if sh.Health.State != Drained {
		t.Fatalf("state = %v, want drained", sh.Health.State)
	}
	if !strings.Contains(sh.Health.LastError, "injected worker panic") {
		t.Errorf("LastError does not carry the panic value: %q", sh.Health.LastError)
	}
	ref, refReg := reference(t, cfg, 0)
	assertBitIdentical(t, sh, ref, refReg)
}

// TestServeQuarantineAfterRetries destroys the shard's entire ring from
// inside a panicking hook: every recovery attempt must fail, walk the
// deterministic backoff schedule, and escalate to quarantine after
// MaxRetries consecutive failures — with the failure preserved for
// post-mortem and the process alive.
func TestServeQuarantineAfterRetries(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:          1,
		Seed:            0xdead,
		Soak:            soakTemplate(),
		OpsPerShard:     600,
		CheckpointEvery: 100,
		Ring:            8,
		RingDir:         dir,
		MaxRetries:      3,
		BackoffBase:     time.Nanosecond,
		hook: func(shard, op int) {
			if op == 250 {
				snaps, _ := filepath.Glob(filepath.Join(dir, "shard0-*.snap"))
				for _, p := range snaps {
					os.WriteFile(p, []byte("not a snapshot"), 0o644)
				}
				panic("ring destroyed")
			}
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sh := rep.Shards[0]
	if sh.Health.State != Quarantined {
		t.Fatalf("state = %v, want quarantined", sh.Health.State)
	}
	if sh.Result != nil {
		t.Errorf("quarantined shard sealed a result")
	}
	if sh.Health.RecoveryFailures < cfg.MaxRetries {
		t.Errorf("RecoveryFailures = %d, want >= %d", sh.Health.RecoveryFailures, cfg.MaxRetries)
	}
	if sh.Health.Retries != cfg.MaxRetries-1 {
		t.Errorf("Retries = %d, want %d (backoff sleeps before quarantine)", sh.Health.Retries, cfg.MaxRetries-1)
	}
	if !strings.Contains(sh.Health.LastError, "quarantined") {
		t.Errorf("LastError does not name the quarantine: %q", sh.Health.LastError)
	}
	if rep.Health.Quarantined != 1 {
		t.Errorf("fleet health quarantined = %d, want 1", rep.Health.Quarantined)
	}
	if got := rep.Metrics.Counter("serve/quarantines"); got != 1 {
		t.Errorf("serve/quarantines = %d, want 1", got)
	}
}

// TestServeDrainOnCancel cancels an unbounded run mid-flight: every
// shard must drain gracefully — final checkpoint appended, result
// sealed — exactly as the SIGTERM path does.
func TestServeDrainOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sink := make(chan *Health, 64)
	cfg := Config{
		Shards:      2,
		Seed:        0xca7,
		Soak:        soakTemplate(),
		HealthEvery: 5 * time.Millisecond,
		HealthSink:  func(h *Health) { sink <- h },
	}
	// Cancel once every shard has visibly made progress (a fixed sleep is
	// flaky under -race, where shard boot alone can take tens of ms); the
	// deadline is a backstop so a stuck run cannot hang the test.
	go func() {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case h := <-sink:
				progressed := len(h.Shards) == cfg.Shards
				for _, sh := range h.Shards {
					if sh.Ops == 0 {
						progressed = false
					}
				}
				if progressed {
					cancel()
					return
				}
			case <-deadline:
				cancel()
				return
			}
		}
	}()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Health.Drained != 2 {
		t.Fatalf("drained = %d, want 2: %+v", rep.Health.Drained, rep.Health)
	}
	for _, sh := range rep.Shards {
		if sh.Result == nil {
			t.Errorf("shard %d: cancelled shard sealed no result", sh.Shard)
		}
		if sh.Health.Ops == 0 {
			t.Errorf("shard %d: made no progress before cancel", sh.Shard)
		}
		// Baseline plus the drain checkpoint, at minimum.
		if sh.Health.CheckpointWrites < 2 {
			t.Errorf("shard %d: %d checkpoint writes, want >= 2 (baseline + drain)", sh.Shard, sh.Health.CheckpointWrites)
		}
	}
	if len(sink) == 0 {
		t.Errorf("health sink received no reports")
	}
}

// TestHealthJSON pins the health report's shape: schema tag, state
// names, and stable rendering.
func TestHealthJSON(t *testing.T) {
	h := buildHealth(7, []ShardHealth{
		{Shard: 0, Seed: 7, State: Running},
		{Shard: 1, Seed: 8, State: Quarantined, LastError: "gone"},
	}, metrics.New())
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("health JSON does not parse: %v", err)
	}
	if m["schema"] != HealthSchema {
		t.Errorf("schema = %v, want %q", m["schema"], HealthSchema)
	}
	shards := m["shards"].([]any)
	if st := shards[0].(map[string]any)["state"]; st != "running" {
		t.Errorf("state rendered as %v, want running", st)
	}
	if st := shards[1].(map[string]any)["state"]; st != "quarantined" {
		t.Errorf("state rendered as %v, want quarantined", st)
	}
	if m["quarantined"].(float64) != 1 || m["running"].(float64) != 1 {
		t.Errorf("state rollups wrong: %v", buf.String())
	}
}

// TestBackoffSchedule pins the deterministic, jitter-free retry curve.
func TestBackoffSchedule(t *testing.T) {
	s := &Supervisor{cfg: Config{BackoffBase: 10 * time.Millisecond, BackoffCap: 60 * time.Millisecond}}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		60 * time.Millisecond, 60 * time.Millisecond,
	}
	for i, w := range want {
		if got := s.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}
