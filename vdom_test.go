package vdom

import (
	"errors"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 4})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)

	buf, err := th.Mmap(16 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.AllocVDR(4); err != nil {
		t.Fatal(err)
	}
	secret, _ := p.AllocDomain(false)
	if _, err := p.ProtectRange(th, buf, 4*PageSize, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := th.WriteVDR(secret, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := th.Store(buf); err != nil {
		t.Fatalf("store with FA: %v", err)
	}
	if _, err := th.WriteVDR(secret, NoAccess); err != nil {
		t.Fatal(err)
	}
	if err := th.Load(buf); !errors.Is(err, ErrSigsegv) {
		t.Fatalf("load after close = %v, want ErrSigsegv", err)
	}
	// Unprotected tail of the buffer stays accessible throughout.
	if err := th.Store(buf + 4*PageSize); err != nil {
		t.Fatalf("unprotected store: %v", err)
	}
}

func TestUnlimitedDomainsEndToEnd(t *testing.T) {
	// Far more domains than the hardware's 16, all usable.
	sys := NewSystem(Config{Arch: X86, Cores: 2})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(4); err != nil {
		t.Fatal(err)
	}
	const n = 100
	addrs := make([]Addr, n)
	doms := make([]Domain, n)
	for i := 0; i < n; i++ {
		a, err := th.Mmap(PageSize)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		doms[i], _ = p.AllocDomain(false)
		if _, err := p.ProtectRange(th, a, PageSize, doms[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := th.WriteVDR(doms[i], ReadWrite); err != nil {
			t.Fatal(err)
		}
		if err := th.Store(a); err != nil {
			t.Fatalf("domain %d: %v", i, err)
		}
		if _, err := th.WriteVDR(doms[i], NoAccess); err != nil {
			t.Fatal(err)
		}
	}
	// Revisit everything in reverse order.
	for i := n - 1; i >= 0; i-- {
		if _, err := th.WriteVDR(doms[i], ReadOnly); err != nil {
			t.Fatal(err)
		}
		if err := th.Load(addrs[i]); err != nil {
			t.Fatalf("revisit domain %d: %v", i, err)
		}
		if _, err := th.WriteVDR(doms[i], NoAccess); err != nil {
			t.Fatal(err)
		}
	}
}

func TestARMSystem(t *testing.T) {
	sys := NewSystem(Config{Arch: ARM, Cores: 4})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	a, err := th.Mmap(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := p.AllocDomain(false)
	if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
		t.Fatal(err)
	}
	// ARM wrvdr costs a kernel round trip (≈406 cycles steady-state).
	if _, err := th.WriteVDR(d, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := th.Store(a); err != nil {
		t.Fatal(err)
	}
	c, err := th.WriteVDR(d, ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if c < 350 || c > 460 {
		t.Errorf("ARM steady wrvdr = %d cycles, want ≈406", c)
	}
}

func TestDefaultConfig(t *testing.T) {
	sys := NewSystem(Config{})
	if sys.Cores() != 4 {
		t.Errorf("default cores = %d, want 4", sys.Cores())
	}
}

func TestReadVDR(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 1})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(0); err != nil {
		t.Fatal(err)
	}
	d, _ := p.AllocDomain(false)
	if perm, _, _ := th.ReadVDR(d); perm != NoAccess {
		t.Errorf("fresh domain perm = %v, want NoAccess", perm)
	}
	a, _ := th.Mmap(PageSize)
	if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
		t.Fatal(err)
	}
	if _, err := th.WriteVDR(d, Pinned); err != nil {
		t.Fatal(err)
	}
	if perm, _, _ := th.ReadVDR(d); perm != Pinned {
		t.Errorf("perm = %v, want Pinned", perm)
	}
}

func TestStatsExposed(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 1})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(0); err != nil {
		t.Fatal(err)
	}
	d, _ := p.AllocDomain(false)
	a, _ := th.Mmap(PageSize)
	if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
		t.Fatal(err)
	}
	if _, err := th.WriteVDR(d, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WrVdrCalls == 0 {
		t.Error("stats not recorded")
	}
}

func TestPublicTracer(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 2})
	p := sys.NewProcess(DefaultPolicy())
	var kinds []EventKind
	p.Trace(func(e Event) { kinds = append(kinds, e.Kind) })
	th := p.NewThread(0)
	if _, err := th.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	a, _ := th.Mmap(PageSize)
	d, _ := p.AllocDomain(false)
	if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
		t.Fatal(err)
	}
	if _, err := th.WriteVDR(d, ReadWrite); err != nil {
		t.Fatal(err)
	}
	var sawAlloc, sawMap bool
	for _, k := range kinds {
		if k == EventVDSAlloc {
			sawAlloc = true
		}
		if k == EventMap {
			sawMap = true
		}
	}
	if !sawAlloc || !sawMap {
		t.Errorf("events = %v, want vds-alloc and map", kinds)
	}
	p.Trace(nil) // disabling must not break subsequent ops
	if _, err := th.WriteVDR(d, NoAccess); err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcessesAreIsolated(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 2})
	p1 := sys.NewProcess(DefaultPolicy())
	p2 := sys.NewProcess(DefaultPolicy())
	t1, t2 := p1.NewThread(0), p2.NewThread(1)
	if _, err := t1.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	// Same virtual address in both processes; distinct physical state.
	a1, err := t1.Mmap(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := p1.AllocDomain(false)
	if _, err := p1.ProtectRange(t1, a1, PageSize, d1); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.WriteVDR(d1, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := t1.Store(a1); err != nil {
		t.Fatal(err)
	}
	// Process 2 never mapped that address: SIGSEGV, no cross-talk.
	if err := t2.Load(a1); !errors.Is(err, ErrSigsegv) {
		t.Errorf("cross-process access = %v, want SIGSEGV", err)
	}
	// Process 2's own domains work independently.
	a2, err := t2.Mmap(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := p2.AllocDomain(false)
	if _, err := p2.ProtectRange(t2, a2, PageSize, d2); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.WriteVDR(d2, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := t2.Store(a2); err != nil {
		t.Fatal(err)
	}
}

func TestMmapAtAndCostAPIs(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 1})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if err := th.MmapAt(0x40000000, PageSize, true); err != nil {
		t.Fatal(err)
	}
	if err := th.MmapAt(0x40000000, PageSize, true); err == nil {
		t.Error("overlapping MmapAt succeeded")
	}
	c, err := th.StoreCost(0x40000000)
	if err != nil || c == 0 {
		t.Errorf("StoreCost = (%d, %v)", c, err)
	}
	c2, err := th.LoadCost(0x40000000)
	if err != nil || c2 >= c {
		t.Errorf("warm LoadCost = (%d, %v), want cheaper than cold %d", c2, err, c)
	}
	// Mmap rounds odd lengths up to a page.
	a, err := th.Mmap(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(a + PageSize - 1); err != nil {
		t.Errorf("rounded-up page not mapped: %v", err)
	}
}

func TestSetAssociativeTLBConfig(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 1, TLBEntries: 64, SetAssociativeTLB: true})
	p := sys.NewProcess(DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	a, err := th.Mmap(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(a); err != nil {
		t.Fatal(err)
	}
}

func TestAdvancedAccessors(t *testing.T) {
	sys := NewSystem(Config{Arch: X86, Cores: 1})
	if sys.Kernel() == nil {
		t.Error("Kernel nil")
	}
	p := sys.NewProcess(DefaultPolicy())
	if p.Manager() == nil || p.Underlying() == nil {
		t.Error("process accessors nil")
	}
	th := p.NewThread(0)
	if th.Task() == nil {
		t.Error("Task nil")
	}
	if _, err := th.AllocVDR(2); err != nil {
		t.Fatal(err)
	}
	if _, err := th.FreeVDR(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.FreeVDR(); err == nil {
		t.Error("double FreeVDR succeeded")
	}
}
