// Package sim provides a deterministic discrete-event simulator with a
// virtual clock measured in CPU cycles.
//
// Workloads (httpd worker threads, MySQL connection handlers, PMO benchmark
// threads) run as simulated processes: goroutines that advance virtual time
// with Delay, contend on Resources, and wait on Signals. Exactly one process
// executes at any instant — the environment resumes a process, waits for it
// to block or finish, and only then dispatches the next event — so runs are
// fully deterministic for a fixed spawn order and seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrDeadlock is the sentinel carried by the panic Run raises when
// processes remain blocked with an empty event queue. The panic value is
// an error, so a recover handler can classify it with
// errors.Is(v.(error), ErrDeadlock).
var ErrDeadlock = errors.New("sim: deadlock")

// Time is a point in virtual time, measured in cycles.
type Time uint64

// Tracer receives the simulator's event stream: one span per completed
// Delay, on the track of the delaying process. metrics.Trace satisfies
// this interface, rendering the stream as Chrome trace-event JSON.
type Tracer interface {
	Span(name string, tid int, start, dur uint64)
}

// Env is a discrete-event simulation environment.
type Env struct {
	now     Time
	seq     uint64
	queue   eventQueue
	procs   int // live (spawned, not yet finished) processes
	spawned int // total processes ever spawned (assigns Proc ids)
	blocked int // processes blocked on a resource/signal (no pending event)
	current *Proc
	tracer  Tracer
	wd      *Watchdog
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetTracer installs a sink for the environment's event stream. A nil
// tracer (the default) disables tracing at the cost of one branch per
// Delay.
func (e *Env) SetTracer(t Tracer) { e.tracer = t }

// SetWatchdog attaches a watchdog to the environment. With one attached,
// Run no longer panics on a simulation deadlock: it feeds the watchdog
// repeated observations of the frozen clock until it fires (invoking its
// onStall recovery callback) and then returns, leaving the blocked
// processes parked. Without a watchdog (the default) the historical
// ErrDeadlock panic is unchanged.
func (e *Env) SetWatchdog(w *Watchdog) { e.wd = w }

type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (e *Env) schedule(p *Proc, at Time) {
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, proc: p})
}

// Proc is a simulated process. All Proc methods must be called from within
// the process's own body function.
type Proc struct {
	env    *Env
	name   string
	id     int
	resume chan struct{}
	parked chan struct{} // signaled by the proc when it blocks or finishes
	done   bool
}

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn-order index, used as the thread id on
// trace timelines.
func (p *Proc) ID() int { return p.id }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new simulated process that starts at the current virtual
// time. The body runs in its own goroutine but only while the environment
// has handed it control.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, body)
}

// GoAt spawns a process whose body starts at virtual time `at` (which must
// not be in the past).
func (e *Env) GoAt(at Time, name string, body func(p *Proc)) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: GoAt(%d) in the past (now %d)", at, e.now))
	}
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.spawned,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs++
	e.spawned++
	go func() {
		<-p.resume // wait for first dispatch
		body(p)
		p.done = true
		e.procs--
		p.parked <- struct{}{}
	}()
	e.schedule(p, at)
	return p
}

// Delay advances the process by d cycles of virtual time.
func (p *Proc) Delay(d uint64) {
	if t := p.env.tracer; t != nil {
		t.Span(p.name, p.id, uint64(p.env.now), d)
	}
	p.env.schedule(p, p.env.now+Time(d))
	p.yield()
}

// park blocks the process with no pending event; something else (a Release,
// a Broadcast) must schedule it again.
func (p *Proc) park() {
	p.env.blocked++
	p.yield()
}

// unpark schedules a parked process to resume at the current time.
func (p *Proc) unpark() {
	p.env.blocked--
	p.env.schedule(p, p.env.now)
}

// yield returns control to the environment and blocks until the next event
// for this process fires.
func (p *Proc) yield() {
	p.parked <- struct{}{}
	<-p.resume
}

// Run executes events until the queue is empty. It returns the final
// virtual time. Run panics if processes remain blocked with no pending
// events (a simulation deadlock), since that always indicates a bug in the
// modeled system; the panic value is an error wrapping ErrDeadlock.
func (e *Env) Run() Time {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at < e.now {
			panic("sim: event in the past")
		}
		e.now = ev.at
		e.current = ev.proc
		ev.proc.resume <- struct{}{}
		<-ev.proc.parked
		e.current = nil
	}
	if e.blocked > 0 {
		if e.wd != nil {
			// A deadlock freezes the virtual clock: feed the watchdog
			// the stuck clock until it trips and drives recovery.
			for !e.wd.Fired() {
				e.wd.Observe(uint64(e.now))
			}
			return e.now
		}
		panic(fmt.Errorf("%w: %d process(es) blocked with an empty event queue", ErrDeadlock, e.blocked))
	}
	return e.now
}

// Resource is a counting semaphore with a FIFO wait queue. A Resource with
// capacity 1 is a mutex.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*waiter
	// WaitedCycles accumulates, across all acquirers, the virtual time
	// spent queued for this resource. Experiments use it to attribute
	// contention (e.g. libmpk busy-waiting).
	WaitedCycles uint64
}

type waiter struct {
	proc *Proc
	n    int
	from Time
}

// NewResource creates a resource with the given capacity.
func (e *Env) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: e, capacity: capacity}
}

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// Acquire takes n units, blocking in FIFO order until they are free. It
// returns the cycles this caller spent waiting.
func (r *Resource) Acquire(p *Proc, n int) uint64 {
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return 0
	}
	w := &waiter{proc: p, n: n, from: r.env.now}
	r.waiters = append(r.waiters, w)
	p.park()
	waited := uint64(r.env.now - w.from)
	r.WaitedCycles += waited
	return waited
}

// TryAcquire takes n units if immediately available, without blocking.
func (r *Resource) TryAcquire(n int) bool {
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and wakes as many FIFO waiters as now fit.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: release of units never acquired")
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		w.proc.unpark()
	}
}

// Signal is a broadcast wakeup point: processes Wait on it, and a
// Broadcast wakes all current waiters at once.
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal creates a signal.
func (e *Env) NewSignal() *Signal {
	return &Signal{env: e}
}

// Wait blocks the process until the next Broadcast. It returns the cycles
// spent waiting.
func (s *Signal) Wait(p *Proc) uint64 {
	from := s.env.now
	s.waiters = append(s.waiters, p)
	p.park()
	return uint64(s.env.now - from)
}

// Broadcast wakes every process currently waiting on the signal.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		p.unpark()
	}
}

// NumWaiting returns the number of processes waiting on the signal.
func (s *Signal) NumWaiting() int { return len(s.waiters) }
