package kernel

import (
	"vdom/internal/cycles"
	"vdom/internal/sim"
	"vdom/internal/tap"
)

// Sched bridges tasks into the discrete-event simulator: each hardware
// core becomes a capacity-1 resource, and tasks execute work bursts on
// their assigned core in FIFO order. Because the simulator runs exactly
// one process at a time, bursts that mutate shared machine state (page
// tables, TLBs, domain maps) serialize in virtual-time order, which is
// also what the per-core execution model of the real machine guarantees.
type Sched struct {
	env    *sim.Env
	kernel *Kernel
	cores  []*sim.Resource
}

// NewSched creates a scheduler for the kernel inside env.
func NewSched(env *sim.Env, k *Kernel) *Sched {
	s := &Sched{env: env, kernel: k}
	for i := 0; i < k.machine.NumCores(); i++ {
		s.cores = append(s.cores, env.NewResource(1))
	}
	return s
}

// Env returns the simulation environment.
func (s *Sched) Env() *sim.Env { return s.env }

// Kernel returns the kernel being scheduled.
func (s *Sched) Kernel() *Kernel { return s.kernel }

// Run executes one burst of task t: it waits for t's core, dispatches the
// task (charging any context-switch cost), runs body — which may perform
// accesses and syscalls and must return the additional cycles consumed —
// and advances virtual time by the total. It returns the cycles the burst
// consumed on-core (excluding queueing delay) so callers can attribute
// them.
func (s *Sched) Run(p *sim.Proc, t *Task, body func() cycles.Cost) cycles.Cost {
	core := s.cores[t.CoreID()]
	core.Acquire(p, 1)
	cost := s.kernel.TakePendingInterrupts(t.CoreID())
	cost += s.kernel.Dispatch(t)
	// The prologue is tapped before body so recorded events keep
	// execution order.
	if ot := s.kernel.opTap; ot != nil {
		ot(tap.Event{Op: tap.OpDispatch, TID: t.tid, Cost: cost})
	}
	cost += body()
	p.Delay(uint64(cost))
	core.Release(1)
	return cost
}

// QueueWait returns the total cycles tasks have spent queued for core id.
func (s *Sched) QueueWait(core int) uint64 { return s.cores[core].WaitedCycles }
