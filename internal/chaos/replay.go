package chaos

import (
	"fmt"
	"math"

	"vdom/internal/core"
	"vdom/internal/replay"
	"vdom/internal/tlb"
)

// SoakWorkload is the Header.Workload name of chaos-soak recordings;
// replay tooling keys on it to re-attach the injector before replaying.
const SoakWorkload = "chaos-soak"

// Extra keys carrying the injector configuration in a soak trace header.
// Probabilities are stored as math.Float64bits so the header stays a
// pure uint64 map.
const (
	extraSeed           = "chaos/seed"
	extraDropIPI        = "chaos/drop-ipi"
	extraDelayIPI       = "chaos/delay-ipi"
	extraStaleTLB       = "chaos/stale-tlb"
	extraASIDExhaustion = "chaos/asid-exhaustion"
	extraASIDLimit      = "chaos/asid-limit"
	extraVDSAllocFail   = "chaos/vds-alloc-fail"
	extraPdomExhaustion = "chaos/pdom-exhaustion"
	extraSpuriousFault  = "chaos/spurious-fault"
)

// soakHeader describes a soak run's platform: the standard VDom boot of
// Soak plus the injector configuration in Extra, so ReplayTrace can
// rebuild the identical fault stream.
func soakHeader(cfg SoakConfig) replay.Header {
	pol := core.DefaultPolicy()
	h := replay.Header{
		Kernel:         replay.KernelVDom,
		Arch:           replay.ArchName(cfg.Arch),
		Cores:          cfg.Cores,
		Seed:           cfg.Chaos.Seed,
		Workload:       SoakWorkload,
		Flags:          replay.HdrVDomKernel,
		FlushThreshold: pol.RangeFlushThresholdPages,
		Nas:            pol.DefaultNas,
		ConfigDigest: replay.DigestString(fmt.Sprintf(
			"chaos-soak|arch=%s|cores=%d|threads=%d|vdoms=%d|ops=%d|chaos=%+v",
			replay.ArchName(cfg.Arch), cfg.Cores, cfg.Threads, cfg.Vdoms, cfg.Ops, cfg.Chaos)),
		Extra: injectorExtra(cfg.Chaos),
	}
	if pol.SecureGate {
		h.Flags |= replay.HdrSecureGate
	}
	return h
}

// ExtraConfig encodes an injector configuration into trace-header Extra
// keys; ConfigFromExtra is the inverse. The scenario compiler embeds a
// phase's fault schedule into cell headers through it, so a faulted
// scenario trace replays under the identical fault stream.
func ExtraConfig(cfg Config) map[string]uint64 {
	return injectorExtra(cfg)
}

// ConfigFromExtra rebuilds an injector configuration from trace-header
// Extra keys. The boolean reports whether the map carried a chaos
// configuration at all (headers of fault-free runs do not).
func ConfigFromExtra(extra map[string]uint64) (Config, bool) {
	if _, ok := extra[extraSeed]; !ok {
		return Config{}, false
	}
	return Config{
		Seed:           extra[extraSeed],
		DropIPI:        math.Float64frombits(extra[extraDropIPI]),
		DelayIPI:       math.Float64frombits(extra[extraDelayIPI]),
		StaleTLB:       math.Float64frombits(extra[extraStaleTLB]),
		ASIDExhaustion: math.Float64frombits(extra[extraASIDExhaustion]),
		ASIDLimit:      tlb.ASID(extra[extraASIDLimit]),
		VDSAllocFail:   math.Float64frombits(extra[extraVDSAllocFail]),
		PdomExhaustion: math.Float64frombits(extra[extraPdomExhaustion]),
		SpuriousFault:  math.Float64frombits(extra[extraSpuriousFault]),
	}, true
}

// AttachSystem wires the injector into every layer a booted instance
// carries that has a chaos hook: the machine, the kernel, and (for VDom
// systems) the core manager. Layers the instance lacks are skipped.
func (in *Injector) AttachSystem(sys *replay.System) {
	if sys.Machine != nil {
		in.AttachMachine(sys.Machine)
	}
	if sys.Kernel != nil {
		in.AttachKernel(sys.Kernel)
	}
	if sys.Manager != nil {
		in.AttachManager(sys.Manager)
	}
}

// injectorExtra encodes the injector configuration into trace-header
// Extra keys (configFromHeader is the inverse).
func injectorExtra(cfg Config) map[string]uint64 {
	return map[string]uint64{
		extraSeed:           cfg.Seed,
		extraDropIPI:        math.Float64bits(cfg.DropIPI),
		extraDelayIPI:       math.Float64bits(cfg.DelayIPI),
		extraStaleTLB:       math.Float64bits(cfg.StaleTLB),
		extraASIDExhaustion: math.Float64bits(cfg.ASIDExhaustion),
		extraASIDLimit:      uint64(cfg.ASIDLimit),
		extraVDSAllocFail:   math.Float64bits(cfg.VDSAllocFail),
		extraPdomExhaustion: math.Float64bits(cfg.PdomExhaustion),
		extraSpuriousFault:  math.Float64bits(cfg.SpuriousFault),
	}
}

// configFromHeader rebuilds the injector configuration a soak trace was
// recorded under.
func configFromHeader(h replay.Header) (Config, error) {
	if h.Workload != SoakWorkload {
		return Config{}, fmt.Errorf("%w: workload %q is not a chaos-soak trace", replay.ErrBadRecord, h.Workload)
	}
	if h.Extra == nil {
		return Config{}, fmt.Errorf("%w: chaos-soak trace carries no injector config", replay.ErrBadRecord)
	}
	return Config{
		Seed:           h.Extra[extraSeed],
		DropIPI:        math.Float64frombits(h.Extra[extraDropIPI]),
		DelayIPI:       math.Float64frombits(h.Extra[extraDelayIPI]),
		StaleTLB:       math.Float64frombits(h.Extra[extraStaleTLB]),
		ASIDExhaustion: math.Float64frombits(h.Extra[extraASIDExhaustion]),
		ASIDLimit:      tlb.ASID(h.Extra[extraASIDLimit]),
		VDSAllocFail:   math.Float64frombits(h.Extra[extraVDSAllocFail]),
		PdomExhaustion: math.Float64frombits(h.Extra[extraPdomExhaustion]),
		SpuriousFault:  math.Float64frombits(h.Extra[extraSpuriousFault]),
	}, nil
}

// ReplayTrace replays a chaos-soak recording: it rebuilds the injector
// from the trace header and attaches it to the freshly booted system
// before the first event runs, so the replay experiences the identical
// fault stream the recording did. Any Options.Setup the caller supplied
// runs after the injector is attached.
func ReplayTrace(t *replay.Trace, opt replay.Options) (*replay.Result, error) {
	cfg, err := configFromHeader(t.Header)
	if err != nil {
		return nil, err
	}
	inner := opt.Setup
	opt.Setup = func(sys *replay.System) {
		New(cfg).AttachSystem(sys)
		if inner != nil {
			inner(sys)
		}
	}
	return replay.Run(t, opt)
}
