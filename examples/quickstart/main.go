// Quickstart: allocate unlimited virtual domains, protect memory, and
// watch the simulated hardware enforce the permissions.
package main

import (
	"errors"
	"fmt"
	"log"

	"vdom"
)

func main() {
	// A 4-core Intel-style machine with MPK and PCID.
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 4})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)

	// Map 16 pages and take a permission register (vdr_alloc).
	buf, err := t.Mmap(16 * vdom.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := t.AllocVDR(4); err != nil {
		log.Fatal(err)
	}

	// Protect the first 4 pages with a fresh virtual domain.
	secret, _ := p.AllocDomain(false)
	if _, err := p.ProtectRange(t, buf, 4*vdom.PageSize, secret); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected %d pages under vdom %d\n", 4, secret)

	// Closed domain: the access faults fatally.
	if err := t.Load(buf); errors.Is(err, vdom.ErrSigsegv) {
		fmt.Println("closed domain: load -> SIGSEGV (as it should)")
	}

	// Open it, use it, close it — each transition is one cheap wrvdr.
	c, err := t.WriteVDR(secret, vdom.ReadWrite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrvdr(FA) cost %d cycles\n", c)
	if err := t.Store(buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("open domain: store -> ok")
	if _, err := t.WriteVDR(secret, vdom.NoAccess); err != nil {
		log.Fatal(err)
	}

	// Domains are unlimited: go far past the hardware's 16.
	for i := 0; i < 100; i++ {
		a, err := t.Mmap(vdom.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		d, _ := p.AllocDomain(false)
		if _, err := p.ProtectRange(t, a, vdom.PageSize, d); err != nil {
			log.Fatal(err)
		}
		if _, err := t.WriteVDR(d, vdom.ReadWrite); err != nil {
			log.Fatal(err)
		}
		if err := t.Store(a); err != nil {
			log.Fatalf("vdom %d: %v", d, err)
		}
		if _, err := t.WriteVDR(d, vdom.NoAccess); err != nil {
			log.Fatal(err)
		}
	}
	st := p.Stats()
	fmt.Printf("100 extra domains used: %d wrvdr calls, %d VDS switches, %d evictions, %d VDSes allocated\n",
		st.WrVdrCalls, st.VDSSwitches, st.Evictions, st.VDSAllocs)
}
