// Package hw assembles the simulated machine: cores with ASID-tagged TLBs
// and domain permission registers, a physical frame allocator, the MMU
// access path (TLB lookup → page walk → domain check), and IPI-based TLB
// shootdowns.
//
// Every operation returns its cycle cost so callers can either accumulate
// cycles (microbenchmarks) or convert them into virtual-time delays
// (discrete-event workloads).
package hw

import (
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Config describes a machine to build.
type Config struct {
	// Arch selects the cost table and domain model.
	Arch cycles.Arch
	// NumCores is the number of hardware threads.
	NumCores int
	// TLBCapacity is per-core TLB entries; 0 means tlb.DefaultCapacity.
	TLBCapacity int
	// NoASID disables ASID tagging (ablation): every pgd switch must
	// fully flush the local TLB.
	NoASID bool
	// SetAssociative organizes each TLB as 8-way set-associative
	// (modelling conflict misses) instead of fully associative.
	SetAssociative bool
	// NoWalkCache disables the per-core page-walk cache (ablation and
	// equivalence testing). The cache is a host-side wall-clock
	// optimization only: it is charged zero simulated cycles and never
	// changes an access outcome, so this knob must not affect any
	// simulated result.
	NoWalkCache bool
}

// IPIFate is an injector's verdict on one inter-processor interrupt.
type IPIFate int

const (
	// IPIDelivered means the interrupt arrives and is serviced normally.
	IPIDelivered IPIFate = iota
	// IPIDropped means the interrupt is lost: the target neither flushes
	// nor acknowledges.
	IPIDropped
	// IPIDelayed means the interrupt is serviced late; the initiator
	// stalls for the extra cycles while waiting for the acknowledgement.
	IPIDelayed
)

// Injector lets a fault-injection layer (internal/chaos) perturb the
// machine deterministically. All hooks are consulted only when an injector
// is attached; the nil checks keep the fault paths zero-cost when chaos is
// off.
type Injector interface {
	// IPIFate decides the fate of the shootdown IPI from initiator to
	// target; delay is the extra initiator stall when fate is IPIDelayed.
	IPIFate(initiator, target int) (fate IPIFate, delay cycles.Cost)
	// SpuriousDomainFault reports whether an access that would succeed on
	// core should instead raise a domain-permission fault (a stale
	// micro-architectural permission check).
	SpuriousDomainFault(core int) bool
	// NoteIPIRetry records that the initiator re-sent an IPI to target
	// (attempt counts from 1).
	NoteIPIRetry(target, attempt int)
	// NoteIPIFallback records that the initiator gave up on IPIs to
	// target and fell back to a guaranteed full flush of its TLB.
	NoteIPIFallback(target int)
}

// Machine is the simulated hardware platform.
type Machine struct {
	params      *cycles.Params
	cores       []*Core
	noASID      bool
	noWalkCache bool
	inj         Injector

	nextFrame pagetable.Frame
}

// NewMachine builds a machine from the config.
func NewMachine(cfg Config) *Machine {
	if cfg.NumCores <= 0 {
		panic("hw: NumCores must be positive")
	}
	capacity := cfg.TLBCapacity
	if capacity == 0 {
		capacity = tlb.DefaultCapacity
	}
	m := &Machine{
		params:      cycles.ParamsFor(cfg.Arch),
		noASID:      cfg.NoASID,
		noWalkCache: cfg.NoWalkCache,
	}
	for i := 0; i < cfg.NumCores; i++ {
		var cache tlb.Cache
		if cfg.SetAssociative {
			const ways = 8
			sets := 1
			for sets*ways < capacity {
				sets <<= 1
			}
			cache = tlb.NewSetAssoc(sets, ways)
		} else {
			cache = tlb.New(capacity)
		}
		fast, _ := cache.(*tlb.TLB)
		m.cores = append(m.cores, &Core{
			id:      i,
			machine: m,
			tlb:     cache,
			tlbFast: fast,
		})
	}
	return m
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (m *Machine) SetInjector(inj Injector) { m.inj = inj }

// Injector returns the attached fault injector, or nil.
func (m *Machine) Injector() Injector { return m.inj }

// Params returns the machine's cycle cost table.
func (m *Machine) Params() *cycles.Params { return m.params }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// ASIDSupported reports whether pgd switches preserve TLB contents.
func (m *Machine) ASIDSupported() bool { return !m.noASID }

// AllocFrames reserves n fresh physical frames and returns the first.
func (m *Machine) AllocFrames(n int) pagetable.Frame {
	f := m.nextFrame
	m.nextFrame += pagetable.Frame(n)
	return f
}

// EmitMetrics publishes machine-wide counters: TLB stats summed across
// cores (tlb/ prefix) plus frame allocation (hw/ prefix). See
// OBSERVABILITY.md for the catalogue.
func (m *Machine) EmitMetrics(emit func(name string, v uint64)) {
	var agg tlb.Stats
	var wcHits, wcMisses uint64
	for _, c := range m.cores {
		agg.Add(c.tlb.Stats())
		wcHits += c.walkHits
		wcMisses += c.walkMisses
	}
	agg.Emit(emit)
	emit("hw/frames-allocated", uint64(m.nextFrame))
	emit("hw/walk-cache-hits", wcHits)
	emit("hw/walk-cache-misses", wcMisses)
}

// ShootdownReport describes the cost and delivery outcome of one TLB
// shootdown.
type ShootdownReport struct {
	// InitiatorCycles is charged to the core that issued the IPIs
	// (send cost per target plus waiting for acknowledgements).
	InitiatorCycles cycles.Cost
	// ReceiverCycles is charged to EACH remote core that serviced the
	// interrupt.
	ReceiverCycles cycles.Cost
	// RemoteCores is the number of cores that were sent an IPI.
	RemoteCores int
	// Acked is the set of remote targets that serviced the interrupt and
	// acknowledged. Without a fault injector every target acks.
	Acked CPUSet
	// Dropped is the set of remote targets whose IPI was lost; their TLBs
	// were NOT flushed and the caller must retry or fall back.
	Dropped CPUSet
	// Attempts is the number of IPI rounds sent (1 without faults;
	// ShootdownReliable retries raise it).
	Attempts int
	// FullFlushFallbacks counts targets that never acknowledged and were
	// recovered with a guaranteed broadcast full flush
	// (ShootdownReliable only).
	FullFlushFallbacks int
}

// Delivered reports whether every targeted remote core serviced the IPI.
func (r ShootdownReport) Delivered() bool { return r.Dropped == 0 }

// Shootdown invalidates TLB state on the given remote cores (identified by
// a bitmap of core ids) and on the initiator, using flush to perform the
// invalidation on each core's TLB. It returns the cost split and, per
// remote target, whether its IPI was actually delivered and acknowledged —
// with a fault injector attached IPIs may be dropped or delayed, and
// callers that need guaranteed invalidation must inspect Acked/Dropped (or
// use ShootdownReliable). The initiator core's own TLB is flushed locally
// at localCost.
func (m *Machine) Shootdown(initiator int, targets CPUSet, flush func(tlb.Cache), localCost cycles.Cost) ShootdownReport {
	r := ShootdownReport{Attempts: 1}
	var delayed cycles.Cost
	for id := range m.cores {
		if id == initiator || !targets.Has(id) {
			continue
		}
		r.RemoteCores++
		if m.inj != nil {
			fate, delay := m.inj.IPIFate(initiator, id)
			switch fate {
			case IPIDropped:
				r.Dropped = r.Dropped.Add(id)
				continue
			case IPIDelayed:
				delayed += delay
			}
		}
		flush(m.cores[id].tlb)
		r.Acked = r.Acked.Add(id)
	}
	flush(m.cores[initiator].tlb)
	r.InitiatorCycles = localCost + cycles.Cost(r.RemoteCores)*m.params.IPI + delayed
	r.ReceiverCycles = m.params.IPIReceive
	return r
}

// shootdownMaxRetries bounds the IPI retransmissions of ShootdownReliable
// before it falls back to a guaranteed full flush of the unresponsive
// target.
const shootdownMaxRetries = 3

// ShootdownReliable is Shootdown with acknowledgement tracking and
// recovery: targets that fail to ack are retried with a linear backoff (one
// extra IPI send cost per attempt), and a target that never acks within
// shootdownMaxRetries is recovered with a broadcast full flush of its TLB
// (the INVLPGB-style global invalidation real hardware guarantees), so the
// invalidation ALWAYS completes. Without a fault injector it is
// cycle-identical to Shootdown.
func (m *Machine) ShootdownReliable(initiator int, targets CPUSet, flush func(tlb.Cache), localCost cycles.Cost) ShootdownReport {
	r := m.Shootdown(initiator, targets, flush, localCost)
	for attempt := 1; r.Dropped != 0 && attempt <= shootdownMaxRetries; attempt++ {
		retrying := r.Dropped
		for id := range m.cores {
			if !retrying.Has(id) {
				continue
			}
			if m.inj != nil {
				m.inj.NoteIPIRetry(id, attempt)
			}
			// Resend cost plus linear backoff while waiting again.
			r.InitiatorCycles += m.params.IPI * cycles.Cost(1+attempt)
			fate, delay := IPIDelivered, cycles.Cost(0)
			if m.inj != nil {
				fate, delay = m.inj.IPIFate(initiator, id)
			}
			if fate == IPIDropped {
				continue
			}
			r.InitiatorCycles += delay
			flush(m.cores[id].tlb)
			r.Acked = r.Acked.Add(id)
			r.Dropped = r.Dropped.Remove(id)
		}
		r.Attempts++
	}
	// Full-flush fallback: the target never acked; invalidate its whole
	// TLB through the guaranteed broadcast path.
	for id := range m.cores {
		if !r.Dropped.Has(id) {
			continue
		}
		if m.inj != nil {
			m.inj.NoteIPIFallback(id)
		}
		m.cores[id].tlb.FlushAll()
		r.InitiatorCycles += m.params.TLBFlushLocalAll + m.params.IPI
		r.FullFlushFallbacks++
		r.Acked = r.Acked.Add(id)
		r.Dropped = r.Dropped.Remove(id)
	}
	return r
}

// CPUSet is a bitmap of core ids.
type CPUSet uint64

// Has reports whether core id is in the set.
func (s CPUSet) Has(id int) bool { return s&(1<<uint(id)) != 0 }

// Add returns the set with core id included.
func (s CPUSet) Add(id int) CPUSet { return s | 1<<uint(id) }

// Remove returns the set without core id.
func (s CPUSet) Remove(id int) CPUSet { return s &^ (1 << uint(id)) }

// Union returns the cores present in either set.
func (s CPUSet) Union(o CPUSet) CPUSet { return s | o }

// Lowest returns the smallest core id in the set (-1 when empty).
func (s CPUSet) Lowest() int {
	for id := 0; s != 0; id++ {
		if s.Has(id) {
			return id
		}
	}
	return -1
}

// Count returns the number of cores in the set.
func (s CPUSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// AllCores returns a set containing cores [0, n).
func AllCores(n int) CPUSet {
	if n >= 64 {
		panic("hw: CPUSet supports at most 64 cores")
	}
	return CPUSet(1<<uint(n) - 1)
}

// FaultKind classifies the outcome of a memory access.
type FaultKind int

const (
	// AccessOK means the access succeeded.
	AccessOK FaultKind = iota
	// FaultNotPresent means no translation exists (demand paging).
	FaultNotPresent
	// FaultPMDDisabled means the walk hit a VDom-disabled PMD entry.
	FaultPMDDisabled
	// FaultDomainPerm means the permission register denied the domain
	// (protection-key fault on Intel, domain fault on ARM).
	FaultDomainPerm
	// FaultWriteProtect means a write hit a read-only page.
	FaultWriteProtect
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case AccessOK:
		return "ok"
	case FaultNotPresent:
		return "not-present"
	case FaultPMDDisabled:
		return "pmd-disabled"
	case FaultDomainPerm:
		return "domain-perm"
	case FaultWriteProtect:
		return "write-protect"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// AccessResult is the outcome of Core.Access.
type AccessResult struct {
	Kind FaultKind
	// Pdom is the domain tag of the page, valid unless the translation
	// was absent.
	Pdom pagetable.Pdom
	// TLBHit reports whether the translation came from the TLB.
	TLBHit bool
	// Cost is the cycle cost of the access attempt itself (not of any
	// fault handling that may follow).
	Cost cycles.Cost
}

// Core is one hardware thread.
type Core struct {
	id      int
	machine *Machine
	tlb     tlb.Cache
	// tlbFast is c.tlb when it is the plain fully-associative TLB (nil
	// otherwise): the access hot path calls it directly, skipping the
	// interface dispatch that would otherwise sit on every load and store.
	// Every assignment to tlb must refresh it.
	tlbFast *tlb.TLB

	perm  PermRegister
	table *pagetable.Table
	asid  tlb.ASID

	// Page-walk cache: the last Walk outcome, reusable while the source
	// table's mutation generation is unchanged. Walk is pure, so replaying
	// its memoized result is observationally identical to re-walking; the
	// simulated cost still charges wr.LevelsVisited as if the walker ran.
	// Hits avoid the 4-level radix descent per faulting access in walk-
	// heavy workloads (demand-paging storms, eviction sweeps).
	walkTable *pagetable.Table
	walkGen   uint64
	walkVPN   uint64
	walkValid bool
	walkRes   pagetable.WalkResult

	walkHits   uint64
	walkMisses uint64
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// TLB exposes the core's TLB (for kernel flush operations and tests).
func (c *Core) TLB() tlb.Cache { return c.tlb }

// InterposeTLB replaces the core's TLB with wrap(current). Fault-injection
// layers use it to interpose on invalidation operations; the wrapper must
// preserve Cache semantics apart from the faults it models.
func (c *Core) InterposeTLB(wrap func(tlb.Cache) tlb.Cache) {
	c.tlb = wrap(c.tlb)
	c.tlbFast, _ = c.tlb.(*tlb.TLB)
}

// Perm exposes the core's permission register.
func (c *Core) Perm() *PermRegister { return &c.perm }

// ASID returns the currently loaded address-space identifier.
func (c *Core) ASID() tlb.ASID { return c.asid }

// Table returns the currently loaded page table.
func (c *Core) Table() *pagetable.Table { return c.table }

// SwitchPgd loads a new page table and ASID, returning the cycle cost. With
// ASID support the TLB is preserved; without it (ablation) the switch costs
// a full local flush as well.
func (c *Core) SwitchPgd(t *pagetable.Table, asid tlb.ASID) cycles.Cost {
	c.table = t
	c.asid = asid
	cost := c.machine.params.PgdSwitch
	if c.machine.noASID {
		c.tlb.FlushAll()
		cost += c.machine.params.TLBFlushLocalAll
	}
	return cost
}

// Access performs one load (write=false) or store (write=true) at addr
// against the currently loaded address space: TLB lookup, page walk on
// miss, then the domain permission check. It mirrors the hardware pipeline,
// so a TLB hit still pays the domain check, and a missing translation
// faults before any domain check can happen.
func (c *Core) Access(addr pagetable.VAddr, write bool) AccessResult {
	if c.table == nil {
		panic("hw: Access with no page table loaded")
	}
	p := c.machine.params
	vpn := addr.VPN()
	var e tlb.Entry
	var ok bool
	if f := c.tlbFast; f != nil {
		e, ok = f.Lookup(c.asid, vpn)
	} else {
		e, ok = c.tlb.Lookup(c.asid, vpn)
	}
	if ok {
		res := AccessResult{Pdom: e.Pdom, TLBHit: true, Cost: p.TLBHit}
		res.Kind = c.check(e.Pdom, e.Writable, write)
		if res.Kind == AccessOK && c.machine.inj != nil && c.machine.inj.SpuriousDomainFault(c.id) {
			res.Kind = FaultDomainPerm
		}
		return res
	}
	wr := c.walk(addr, vpn)
	cost := p.TLBHit + p.PageWalk*cycles.Cost(wr.LevelsVisited)/cycles.Cost(pagetable.Levels)
	switch {
	case wr.PMDDisabled:
		return AccessResult{Kind: FaultPMDDisabled, Cost: cost}
	case !wr.Present:
		return AccessResult{Kind: FaultNotPresent, Cost: cost}
	}
	ent := tlb.Entry{
		ASID:     c.asid,
		VPN:      vpn,
		Frame:    wr.PTE.Frame,
		Pdom:     wr.PTE.Pdom,
		Writable: wr.PTE.Writable,
	}
	if f := c.tlbFast; f != nil {
		f.Insert(ent)
	} else {
		c.tlb.Insert(ent)
	}
	res := AccessResult{Pdom: wr.PTE.Pdom, Cost: cost}
	res.Kind = c.check(wr.PTE.Pdom, wr.PTE.Writable, write)
	if res.Kind == AccessOK && c.machine.inj != nil && c.machine.inj.SpuriousDomainFault(c.id) {
		res.Kind = FaultDomainPerm
	}
	return res
}

// walk resolves addr through the page-walk cache: when the loaded table's
// generation matches the memoized walk of the same VPN, the cached result
// is replayed instead of descending the radix tree. Walk outcomes depend
// only on the VPN and the table's contents, so a generation match makes
// the replay exact — same WalkResult, same LevelsVisited, same charged
// cycles. The cache self-invalidates via the generation check; no flush
// hook is needed.
func (c *Core) walk(addr pagetable.VAddr, vpn uint64) pagetable.WalkResult {
	if c.machine.noWalkCache {
		return c.table.Walk(addr)
	}
	gen := c.table.Gen()
	if c.walkValid && c.walkTable == c.table && c.walkGen == gen && c.walkVPN == vpn {
		c.walkHits++
		return c.walkRes
	}
	wr := c.table.Walk(addr)
	c.walkTable, c.walkGen, c.walkVPN, c.walkRes, c.walkValid = c.table, gen, vpn, wr, true
	c.walkMisses++
	return wr
}

func (c *Core) check(pdom pagetable.Pdom, writable, write bool) FaultKind {
	if !c.perm.Allows(uint8(pdom), write) {
		return FaultDomainPerm
	}
	if write && !writable {
		return FaultWriteProtect
	}
	return AccessOK
}
