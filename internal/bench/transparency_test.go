package bench

import (
	"bytes"
	"testing"

	"vdom/internal/metrics"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/workload"
)

// The host-side fast paths — chunked page-table range operations
// (pagetable.DisableFastRange) and batched address-space population
// (mm.DisableFastPopulate) — promise transparency: they change how fast
// the simulator runs, never what it computes. These tests pin the
// promise at its strongest form, byte identity: same-seed runs with the
// fast paths forced off must produce bit-identical rendered tables,
// metrics snapshots, Chrome traces, and recorded domain-op trace bytes.
// They deliberately run without t.Parallel(): they mutate the
// package-level disable flags, and Go runs serial tests one at a time,
// before any paused parallel test resumes.

// slowPaths forces both fast paths off for the duration of fn.
func slowPaths(t *testing.T, fn func()) {
	t.Helper()
	pagetable.DisableFastRange = true
	mm.DisableFastPopulate = true
	defer func() {
		pagetable.DisableFastRange = false
		mm.DisableFastPopulate = false
	}()
	fn()
}

// TestFastPathTransparencyTable4 runs the instrumented Table 4
// experiment — the suite's hottest consumer of the chunk operations —
// with the fast paths on and off, comparing the rendered table, the
// metrics snapshot (counters, cycle attribution, histograms), and the
// Chrome trace byte for byte.
func TestFastPathTransparencyTable4(t *testing.T) {
	run := func() (table, snap, trace []byte) {
		o := Options{Quick: true, Parallel: 1, Metrics: metrics.New(), Trace: metrics.NewTrace()}
		var tb, mb, jb bytes.Buffer
		Table4(&tb, o)
		if err := o.Metrics.WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if err := o.Trace.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes(), jb.Bytes()
	}
	fastT, fastM, fastJ := run()
	var slowT, slowM, slowJ []byte
	slowPaths(t, func() { slowT, slowM, slowJ = run() })
	if !bytes.Equal(fastT, slowT) {
		t.Errorf("rendered Table 4 differs with fast paths off:\n--- fast\n%s\n--- slow\n%s", fastT, slowT)
	}
	if !bytes.Equal(fastM, slowM) {
		t.Error("metrics snapshot differs with fast paths off")
	}
	if !bytes.Equal(fastJ, slowJ) {
		t.Error("Chrome trace differs with fast paths off")
	}
	if len(fastT) == 0 {
		t.Error("experiment produced no output")
	}
}

// TestFastPathTransparencyTraceBytes records every golden-corpus
// workload with the fast paths on and off and compares the encoded
// trace bytes. Trace events carry the page-table generation and write
// counters of every domain op, so byte identity here proves the chunk
// operations' counter accounting — not just their final translations —
// matches the per-page loops exactly.
func TestFastPathTransparencyTraceBytes(t *testing.T) {
	if testing.Short() {
		// The full corpus re-records every paper workload twice; the
		// Table 4 spec alone still exercises every chunk operation.
		spec := workload.TraceCorpus()[0]
		fast := replay.Encode(spec.Record())
		var slow []byte
		slowPaths(t, func() { slow = replay.Encode(spec.Record()) })
		if !bytes.Equal(fast, slow) {
			t.Errorf("%s: recorded trace bytes differ with fast paths off", spec.Name)
		}
		return
	}
	for _, spec := range workload.TraceCorpus() {
		fast := replay.Encode(spec.Record())
		var slow []byte
		slowPaths(t, func() { slow = replay.Encode(spec.Record()) })
		if !bytes.Equal(fast, slow) {
			t.Errorf("%s: recorded trace bytes differ with fast paths off", spec.Name)
		}
	}
}

// TestFastPathTransparencyCrossReplay is the cross-mode check: a trace
// recorded with the fast paths ON must replay divergence-free with them
// OFF, and one recorded OFF must replay ON. Replay verifies every event
// — domain ops, their observed cycle costs, the end-state digest — so a
// clean cross-mode replay proves the two implementations walk through
// bit-identical intermediate states, not just matching final output.
func TestFastPathTransparencyCrossReplay(t *testing.T) {
	verify := func(label string, tr *replay.Trace) {
		res, err := replay.Run(tr, replay.Options{})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Divergence != nil {
			t.Errorf("%s: diverged: %s", label, res.Divergence)
		}
	}
	spec := workload.TraceCorpus()[0]
	fast := spec.Record()
	var slow *replay.Trace
	slowPaths(t, func() {
		slow = spec.Record()
		verify("recorded fast, replayed slow", fast)
	})
	verify("recorded slow, replayed fast", slow)
}
