package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Decode parses and validates one vdom-scenario/v1 document. Errors are
// typed: non-JSON input is ErrBadRecord, input that ends mid-document is
// ErrTruncated, a wrong or missing format field is ErrBadMagic (or
// ErrBadVersion for a future vdom-scenario version), and everything
// structurally invalid past the magic is ErrBadRecord. The decoder
// rejects unknown fields, so typos in hand-written specs fail loudly
// instead of silently configuring nothing.
func Decode(data []byte) (*Spec, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("%w: %d bytes exceed the %d-byte cap", ErrBadRecord, len(data), maxSpecBytes)
	}
	// First pass: sniff the magic leniently, so a spec with unknown
	// fields or a future version still classifies as a version problem
	// rather than a generic parse failure.
	var magic struct {
		Format string `json:"format"`
	}
	if err := decodeJSON(data, &magic, false); err != nil {
		return nil, err
	}
	switch {
	case magic.Format == FormatName:
	case strings.HasPrefix(magic.Format, formatPrefix):
		return nil, fmt.Errorf("%w: %q (this build reads %s)", ErrBadVersion, magic.Format, FormatName)
	default:
		return nil, fmt.Errorf("%w: format %q", ErrBadMagic, magic.Format)
	}
	// Second pass: strict field-checked decode plus structural
	// validation.
	s := new(Spec)
	if err := decodeJSON(data, s, true); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeJSON runs one decode pass, mapping the stdlib's error taxonomy
// onto the format's typed sentinels and rejecting trailing data.
func decodeJSON(data []byte, into any, strict bool) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(into); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		var syn *json.SyntaxError
		if errors.As(err, &syn) && strings.Contains(syn.Error(), "unexpected end") {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("%w: trailing data after the spec document", ErrBadRecord)
	}
	return nil
}

// Encode renders a spec in the canonical form: two-space-indented JSON
// in struct field order with a trailing newline. Decode(Encode(s))
// yields an equal spec, and re-encoding it reproduces the same bytes —
// the fixed point FuzzScenarioDecode checks and the committed library
// files are stored in.
func Encode(s *Spec) []byte {
	// A Spec holds only marshalable fields, so this cannot fail.
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("scenario: encode: " + err.Error())
	}
	return append(out, '\n')
}
