package vdom

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7), plus ablation benches for the design choices DESIGN.md calls out.
// Each benchmark runs a representative configuration of the corresponding
// experiment and reports the figure's headline metric via ReportMetric;
// `cmd/vdom-bench` regenerates the full tables with every row and column.

import (
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/libmpk"
	"vdom/internal/workload"
)

// BenchmarkFig1LibmpkBreakdown reproduces Figure 1: libmpk's overhead
// breakdown on httpd (25 threads, 16 KiB transfers) at high concurrency.
func BenchmarkFig1LibmpkBreakdown(b *testing.B) {
	var busyFrac, overhead float64
	for i := 0; i < b.N; i++ {
		base := workload.RunHttpd(workload.HttpdConfig{
			Arch: cycles.X86, System: workload.Original,
			Clients: 24, RequestsPerClient: 10, FileBytes: 16384, Workers: 25,
		})
		lm := workload.RunHttpd(workload.HttpdConfig{
			Arch: cycles.X86, System: workload.Libmpk,
			Clients: 24, RequestsPerClient: 10, FileBytes: 16384, Workers: 25,
		})
		overhead = float64(lm.Makespan)/float64(base.Makespan) - 1
		st := lm.LibmpkStats
		sum := float64(st.BusyWaitCycles + st.ShootdownCycles + st.MgmtCycles)
		if sum > 0 {
			busyFrac = float64(st.BusyWaitCycles) / sum
		}
	}
	b.ReportMetric(overhead*100, "overhead-%")
	b.ReportMetric(busyFrac*100, "busywait-share-%")
}

// BenchmarkTable3Ops reproduces Table 3: the cycle costs of VDom's common
// operations on both architectures.
func BenchmarkTable3Ops(b *testing.B) {
	var rows []workload.Table3Row
	for i := 0; i < b.N; i++ {
		rows = workload.Table3()
	}
	for _, r := range rows {
		b.ReportMetric(r.X86, "x86:"+metricName(r.Operation))
	}
}

func metricName(op string) string {
	out := make([]rune, 0, len(op))
	for _, c := range op {
		if c == ' ' {
			c = '-'
		}
		out = append(out, c)
	}
	return string(out)
}

// BenchmarkTable4DomainAccess reproduces Table 4's headline comparison:
// VDom's switch-triggering activation cost at 64 vdoms versus libmpk and
// EPK.
func BenchmarkTable4DomainAccess(b *testing.B) {
	var vdomC, libmpkC, epkC float64
	for i := 0; i < b.N; i++ {
		vdomC = workload.RunPattern(workload.PatternConfig{
			Arch: cycles.X86, System: workload.PatternVDomSecure,
			Pattern: workload.SwitchTriggering, NumVdoms: 64, Rounds: 6}).AvgCycles
		libmpkC = workload.RunPattern(workload.PatternConfig{
			Arch: cycles.X86, System: workload.PatternLibmpk,
			Pattern: workload.Sequential, NumVdoms: 64, Rounds: 6}).AvgCycles
		epkC = workload.RunPattern(workload.PatternConfig{
			Arch: cycles.X86, System: workload.PatternEPK,
			Pattern: workload.SwitchTriggering, NumVdoms: 64, Rounds: 6}).AvgCycles
	}
	b.ReportMetric(vdomC, "VDom-cycles")
	b.ReportMetric(libmpkC, "libmpk-cycles")
	b.ReportMetric(epkC, "EPK-cycles")
}

// BenchmarkTable5MemSync reproduces Table 5: the allocation+sync overhead
// with 8 VDSes.
func BenchmarkTable5MemSync(b *testing.B) {
	var ov float64
	for i := 0; i < b.N; i++ {
		ov, _ = workload.MemSyncOverhead(cycles.X86, 8)
	}
	b.ReportMetric(ov*100, "overhead-%")
}

// BenchmarkFig5Httpd reproduces Figure 5's headline: httpd throughput with
// VDom protection versus the original server (X86, 1 KiB responses).
func BenchmarkFig5Httpd(b *testing.B) {
	var orig, prot float64
	for i := 0; i < b.N; i++ {
		orig = workload.RunHttpd(workload.HttpdConfig{
			Arch: cycles.X86, System: workload.Original,
			Clients: 32, RequestsPerClient: 10, FileBytes: 1024}).ReqPerSec
		prot = workload.RunHttpd(workload.HttpdConfig{
			Arch: cycles.X86, System: workload.VDom,
			Clients: 32, RequestsPerClient: 10, FileBytes: 1024}).ReqPerSec
	}
	b.ReportMetric(orig, "original-req/s")
	b.ReportMetric(prot, "VDom-req/s")
	b.ReportMetric((1-prot/orig)*100, "overhead-%")
}

// BenchmarkFig6MySQL reproduces Figure 6's headline: MySQL throughput with
// per-connection stack domains.
func BenchmarkFig6MySQL(b *testing.B) {
	var orig, prot float64
	for i := 0; i < b.N; i++ {
		orig = workload.RunMySQL(workload.MySQLConfig{
			Arch: cycles.X86, System: workload.Original,
			Clients: 32, QueriesPerClient: 8}).QueriesPerS
		prot = workload.RunMySQL(workload.MySQLConfig{
			Arch: cycles.X86, System: workload.VDom,
			Clients: 32, QueriesPerClient: 8}).QueriesPerS
	}
	b.ReportMetric(orig, "original-q/s")
	b.ReportMetric(prot, "VDom-q/s")
	b.ReportMetric((1-prot/orig)*100, "overhead-%")
}

// BenchmarkFig7PMO reproduces Figure 7's headline: String Replace overhead
// under VDom's two strategies and libmpk at 4 threads.
func BenchmarkFig7PMO(b *testing.B) {
	metric := map[string]float64{}
	for i := 0; i < b.N; i++ {
		base := workload.RunPMO(workload.PMOConfig{
			Arch: cycles.X86, System: workload.Original, Threads: 4, OpsPerThread: 1000})
		run := func(name string, cfg workload.PMOConfig) {
			cfg.Threads = 4
			cfg.OpsPerThread = 1000
			r := workload.RunPMO(cfg)
			metric[name] = (float64(r.Makespan)/float64(base.Makespan) - 1) * 100
		}
		run("switch-%", workload.PMOConfig{Arch: cycles.X86, System: workload.VDom, Mode: workload.PMOSwitch})
		run("evict-%", workload.PMOConfig{Arch: cycles.X86, System: workload.VDom, Mode: workload.PMOEvict})
		run("libmpk2M-%", workload.PMOConfig{Arch: cycles.X86, System: workload.Libmpk, LibmpkMode: libmpk.Huge2M})
	}
	for k, v := range metric {
		b.ReportMetric(v, k)
	}
}

// BenchmarkUnixBench reproduces §7.3: the VDom kernel's relative UnixBench
// index.
func BenchmarkUnixBench(b *testing.B) {
	var idx float64
	for i := 0; i < b.N; i++ {
		idx = workload.RunUnixBench(cycles.X86, false).Index
	}
	b.ReportMetric(idx, "index-%")
}

// BenchmarkCtxSwitch reproduces §7.5: context-switch cycle costs.
func BenchmarkCtxSwitch(b *testing.B) {
	var vanilla, vdomProc, vds float64
	for i := 0; i < b.N; i++ {
		vanilla, vdomProc, vds = workload.CtxSwitchCycles(cycles.X86)
	}
	b.ReportMetric(vanilla, "vanilla-cycles")
	b.ReportMetric(vdomProc, "vdom-kernel-cycles")
	b.ReportMetric(vds, "vds-switch-cycles")
}

// --- Ablations (DESIGN.md §6) ---

func ablationCell(b *testing.B, mut func(*workload.PatternConfig)) float64 {
	b.Helper()
	cfg := workload.PatternConfig{
		Arch: cycles.X86, System: workload.PatternVDomEvict,
		Pattern: workload.Sequential, NumVdoms: 29, Rounds: 5,
	}
	if mut != nil {
		mut(&cfg)
	}
	return workload.RunPattern(cfg).AvgCycles
}

// BenchmarkAblationHLRU compares HLRU against strict LRU eviction.
func BenchmarkAblationHLRU(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = ablationCell(b, func(c *workload.PatternConfig) { c.NumVdoms = 16 })
		off = ablationCell(b, func(c *workload.PatternConfig) { c.NumVdoms = 16; c.StrictLRU = true })
	}
	b.ReportMetric(on, "hlru-cycles")
	b.ReportMetric(off, "lru-cycles")
}

// BenchmarkAblationPMD compares the PMD-disable eviction fast path against
// per-PTE retagging.
func BenchmarkAblationPMD(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = ablationCell(b, nil)
		off = ablationCell(b, func(c *workload.PatternConfig) { c.NoPMDOpt = true })
	}
	b.ReportMetric(on, "pmd-cycles")
	b.ReportMetric(off, "no-pmd-cycles")
}

// BenchmarkAblationASID compares ASID-tagged pgd switches against
// flush-on-switch.
func BenchmarkAblationASID(b *testing.B) {
	run := func(noASID bool) float64 {
		r := workload.RunPattern(workload.PatternConfig{
			Arch: cycles.X86, System: workload.PatternVDomSecure,
			Pattern: workload.SwitchTriggering, NumVdoms: 64, Rounds: 5,
			NoASID: noASID,
		})
		return r.AvgCycles + r.AvgTouchCycles
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = run(false)
		off = run(true)
	}
	b.ReportMetric(on, "asid-cycles")
	b.ReportMetric(off, "no-asid-cycles")
}

// BenchmarkAblationFlushThreshold sweeps the range-flush/ASID-flush
// cutoff.
func BenchmarkAblationFlushThreshold(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = ablationCell(b, func(c *workload.PatternConfig) { c.FlushThresholdPages = 64 })
		large = ablationCell(b, func(c *workload.PatternConfig) { c.FlushThresholdPages = 1024 })
	}
	b.ReportMetric(small, "asid-flush-cycles")
	b.ReportMetric(large, "range-flush-cycles")
}

// BenchmarkAblationSwitchVsEvict compares the two overflow strategies on
// the PMO workload.
func BenchmarkAblationSwitchVsEvict(b *testing.B) {
	var sw, ev float64
	for i := 0; i < b.N; i++ {
		base := workload.RunPMO(workload.PMOConfig{
			Arch: cycles.X86, System: workload.Original, Threads: 2, OpsPerThread: 800})
		s := workload.RunPMO(workload.PMOConfig{
			Arch: cycles.X86, System: workload.VDom, Mode: workload.PMOSwitch, Threads: 2, OpsPerThread: 800})
		e := workload.RunPMO(workload.PMOConfig{
			Arch: cycles.X86, System: workload.VDom, Mode: workload.PMOEvict, Threads: 2, OpsPerThread: 800})
		sw = (float64(s.Makespan)/float64(base.Makespan) - 1) * 100
		ev = (float64(e.Makespan)/float64(base.Makespan) - 1) * 100
	}
	b.ReportMetric(sw, "switch-overhead-%")
	b.ReportMetric(ev, "evict-overhead-%")
}

// BenchmarkAblationGate compares the secure call gate against the fast
// API.
func BenchmarkAblationGate(b *testing.B) {
	run := func(sys workload.PatternSystem) float64 {
		return workload.RunPattern(workload.PatternConfig{
			Arch: cycles.X86, System: sys,
			Pattern: workload.Sequential, NumVdoms: 4, Rounds: 5}).AvgCycles
	}
	var secure, fast float64
	for i := 0; i < b.N; i++ {
		secure = run(workload.PatternVDomSecure)
		fast = run(workload.PatternVDomFast)
	}
	b.ReportMetric(secure, "secure-cycles")
	b.ReportMetric(fast, "fast-cycles")
}
