package workload

import (
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
)

// CtxSwitchCycles measures §7.5's context-switch costs on one
// architecture: the vanilla kernel's switch_mm, the VDom kernel's
// switch_mm for processes not using VDom, and the average switch to a task
// running in a VDS (which carries the extra metadata maintenance).
func CtxSwitchCycles(arch cycles.Arch) (vanilla, vdomProc, vdsSwitch float64) {
	measure := func(vdomOn, vds bool) float64 {
		m := hw.NewMachine(hw.Config{Arch: arch, NumCores: 1, TLBCapacity: 0})
		k := kernel.New(kernel.Config{Machine: m, VDomEnabled: vdomOn})
		p := k.NewProcess()
		t1, t2 := p.NewTask(0), p.NewTask(0)
		if vds {
			mgr := core.Attach(p, core.DefaultPolicy())
			if _, err := mgr.VdrAlloc(t1, 2); err != nil {
				panic(err)
			}
			if _, err := mgr.VdrAlloc(t2, 2); err != nil {
				panic(err)
			}
		}
		var total cycles.Cost
		const n = 128
		for i := 0; i < n; i++ {
			total += k.SwitchMMCost(t1)
			total += k.SwitchMMCost(t2)
		}
		return float64(total) / (2 * n)
	}
	vanilla = measure(false, false)
	vdomProc = measure(true, false)
	vdsSwitch = measure(true, true)
	return
}
