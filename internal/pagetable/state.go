package pagetable

// This file implements checkpoint capture and restore for Table
// (vdom-snap/v1). The snapshot must reproduce the table *exactly* — not
// just its present translations but the radix skeleton (empty page
// tables left behind by Unmap still add walk levels, which the hardware
// charges cycles for), the per-PMD disabled marks, the write counters,
// and the mutation generation — so a restored System's cycle accounting
// is bit-identical to an uninterrupted run.

// PageState is one present PTE and its address in a TableState.
type PageState struct {
	Addr uint64
	PTE  PTE
}

// TableState is the serializable image of a Table.
type TableState struct {
	// Pages holds every present PTE in ascending address order.
	Pages []PageState
	// PTs lists the coordinates (virtual address >> PMDShift) of every
	// materialized leaf page table, including empty ones: they decide
	// how many levels a walk of an unmapped address visits.
	PTs []uint64
	// DisabledPMDs lists the coordinates (virtual address >> PMDShift)
	// of PMD entries disabled by the §5.5 eviction fast path.
	DisabledPMDs []uint64

	PTEWrites  uint64
	PMDWrites  uint64
	RetiredPTE uint64
	RetiredPMD uint64
	Gen        uint64
}

// State captures the table's full image for a checkpoint.
func (t *Table) State() TableState {
	st := TableState{
		PTEWrites:  t.PTEWrites,
		PMDWrites:  t.PMDWrites,
		RetiredPTE: t.retiredPTE,
		RetiredPMD: t.retiredPMD,
		Gen:        t.gen,
	}
	for i3, pud := range t.pgd {
		if pud == nil {
			continue
		}
		for i2, pmd := range pud.pmds {
			if pmd == nil {
				continue
			}
			for i1, pt := range pmd.pts {
				coord := uint64(i3)<<18 | uint64(i2)<<9 | uint64(i1)
				if pmd.disabled[i1] {
					st.DisabledPMDs = append(st.DisabledPMDs, coord)
				}
				if pt == nil {
					continue
				}
				st.PTs = append(st.PTs, coord)
				for i0, pte := range pt.ptes {
					if !pte.Present {
						continue
					}
					a := coord<<PMDShift | uint64(i0)<<PageShift
					st.Pages = append(st.Pages, PageState{Addr: a, PTE: pte})
				}
			}
		}
	}
	return st
}

// LoadState overwrites the table in place with a previously captured
// image. The radix is rebuilt directly — not through Map — so the write
// counters and generation land exactly on the checkpointed values.
func (t *Table) LoadState(st TableState) {
	*t = Table{}
	for _, coord := range st.PTs {
		t.materialize(coord)
	}
	for _, coord := range st.DisabledPMDs {
		pmd := t.materializePMD(coord)
		pmd.disabled[coord&0x1ff] = true
	}
	for _, pg := range st.Pages {
		i3, i2, i1, i0 := indices(VAddr(pg.Addr))
		pt := t.pgd[i3].pmds[i2].pts[i1]
		pt.ptes[i0] = pg.PTE
		pt.present++
		t.present++
	}
	t.PTEWrites = st.PTEWrites
	t.PMDWrites = st.PMDWrites
	t.retiredPTE = st.RetiredPTE
	t.retiredPMD = st.RetiredPMD
	t.gen = st.Gen
}

// materializePMD ensures the pud/pmd path for a pt coordinate exists.
func (t *Table) materializePMD(coord uint64) *pmdTable {
	i3 := int(coord >> 18 & 0x1ff)
	i2 := int(coord >> 9 & 0x1ff)
	if t.pgd[i3] == nil {
		t.pgd[i3] = &pudTable{}
	}
	pud := t.pgd[i3]
	if pud.pmds[i2] == nil {
		pud.pmds[i2] = &pmdTable{}
	}
	return pud.pmds[i2]
}

// materialize ensures the full path to the leaf page table at coord
// exists, without touching any counter.
func (t *Table) materialize(coord uint64) {
	pmd := t.materializePMD(coord)
	i1 := int(coord & 0x1ff)
	if pmd.pts[i1] == nil {
		pmd.pts[i1] = &ptTable{}
	}
}
