package bench

import (
	"io"

	"vdom/internal/cycles"
	"vdom/internal/sectest"
)

// Table1 reproduces Table 1: the VDom API surface. The descriptions mirror
// the paper; the mapping column names the implementing function in this
// repository, making the table a live index into the code.
func Table1(w io.Writer, o Options) {
	t := &Table{
		Title:   "Table 1: VDom APIs and description",
		Columns: []string{"API", "Description", "Implementation"},
	}
	t.Row("vdom_init()",
		"Initialize VDom for the process.",
		"core.Attach / vdom.System.NewProcess")
	t.Row("vdom_alloc(freq)",
		"Allocate a frequently-accessed or common vdom.",
		"core.Manager.AllocVdom / vdom.Process.AllocDomain")
	t.Row("vdom_free(vdom)",
		"Free the vdom for the process.",
		"core.Manager.FreeVdom / vdom.Process.FreeDomain")
	t.Row("vdom_mprotect(addr, len, vdom)",
		"Assign the process's memory pages containing any part within [addr, addr+len-1] with the vdom.",
		"core.Manager.Mprotect / vdom.Process.ProtectRange")
	t.Row("vdr_alloc(nas)",
		"Give the thread a permission register, and limit the number of address spaces it can efficiently switch between.",
		"core.Manager.VdrAlloc / vdom.Thread.AllocVDR")
	t.Row("vdr_free()",
		"Free a thread permission register.",
		"core.Manager.VdrFree / vdom.Thread.FreeVDR")
	t.Row("wrvdr(vdom, perm)",
		"Write the calling thread's permission on vdom.",
		"core.Manager.WrVdr / vdom.Thread.WriteVDR")
	t.Row("rdvdr(vdom)",
		"Read the calling thread's permission on vdom.",
		"core.Manager.RdVdr / vdom.Thread.ReadVDR")
	o.Render(w, t)
}

// Table2 reproduces Table 2: one ported example from each type of memory
// domain sandbox defense, with its live verification status from the
// security battery.
func Table2(w io.Writer, o Options) {
	t := &Table{
		Title:   "Table 2: ported memory-domain sandbox defenses",
		Columns: []string{"Example", "Type", "Arch", "Status"},
	}
	status := map[string]string{}
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		for _, r := range sectest.Run(arch) {
			s := "BLOCKED"
			switch {
			case r.SetupFailed:
				s = "SETUP FAILED"
			case !r.Blocked:
				s = "NOT BLOCKED"
			}
			key := r.Name + "/" + arch.String()
			status[key] = s
		}
	}
	t.Row("Insert watchpoint before making code pages with PKRU update instructions executable",
		"binary scan", "X86",
		status["sandbox ❶: binary scan finds unsafe wrpkru/X86"])
	t.Row("Check fixed PKRU permission before switch (dynamic domain-map reconstruction)",
		"call gate", "X86",
		status["sandbox ❷: call-gate register check/X86"])
	t.Row("Block unchecked read on protected memory through process_vm_readv",
		"syscall filter", "X86",
		status["sandbox ❸: process_vm_readv filter/X86"])
	t.Row("Block unchecked read on protected memory through process_vm_readv",
		"syscall filter", "ARM",
		status["sandbox ❸: process_vm_readv filter/ARM"])
	o.Render(w, t)
}
