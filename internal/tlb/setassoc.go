package tlb

// SetAssoc is a set-associative TLB: the VPN selects a set, and a small
// clock sweep replaces within the set's ways. Compared to the
// fully-associative TLB it models conflict misses — pathological strides
// evict hot translations even when capacity remains — which is the
// behaviour real second-level TLBs show under the PMO benchmark's random
// 2 MiB-strided accesses. It implements the same operations as TLB.
type SetAssoc struct {
	sets  [][]slot
	ways  int
	hands []int
	index map[key]int // (asid,vpn) → set*ways+way
	stats Stats
}

// NewSetAssoc builds a TLB with the given number of sets and ways (total
// capacity = sets × ways). Sets must be a power of two.
func NewSetAssoc(sets, ways int) *SetAssoc {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("tlb: sets must be a positive power of two and ways positive")
	}
	t := &SetAssoc{
		ways:  ways,
		sets:  make([][]slot, sets),
		hands: make([]int, sets),
		index: make(map[key]int),
	}
	for i := range t.sets {
		t.sets[i] = make([]slot, ways)
	}
	return t
}

// Capacity returns total entry slots.
func (t *SetAssoc) Capacity() int { return len(t.sets) * t.ways }

// Len returns the number of valid entries.
func (t *SetAssoc) Len() int { return len(t.index) }

// Stats returns a copy of the event counters.
func (t *SetAssoc) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *SetAssoc) ResetStats() { t.stats = Stats{} }

func (t *SetAssoc) setOf(vpn uint64) int { return int(vpn) & (len(t.sets) - 1) }

// Lookup searches for (asid, vpn).
func (t *SetAssoc) Lookup(asid ASID, vpn uint64) (Entry, bool) {
	if i, ok := t.index[key{asid, vpn}]; ok {
		s, w := i/t.ways, i%t.ways
		t.sets[s][w].referenced = true
		t.stats.Hits++
		return t.sets[s][w].entry, true
	}
	t.stats.Misses++
	return Entry{}, false
}

// Insert caches a translation, evicting within the VPN's set if needed.
func (t *SetAssoc) Insert(e Entry) {
	t.stats.Inserts++
	k := key{e.ASID, e.VPN}
	if i, ok := t.index[k]; ok {
		s, w := i/t.ways, i%t.ways
		t.sets[s][w].entry = e
		t.sets[s][w].referenced = true
		return
	}
	s := t.setOf(e.VPN)
	w := t.victimIn(s)
	if t.sets[s][w].valid {
		old := t.sets[s][w].entry
		delete(t.index, key{old.ASID, old.VPN})
	}
	t.sets[s][w] = slot{entry: e, valid: true, referenced: true}
	t.index[k] = s*t.ways + w
}

func (t *SetAssoc) victimIn(s int) int {
	set := t.sets[s]
	for {
		w := t.hands[s]
		t.hands[s] = (t.hands[s] + 1) % t.ways
		if !set[w].valid || !set[w].referenced {
			return w
		}
		set[w].referenced = false
	}
}

// FlushPage invalidates one page of one address space.
func (t *SetAssoc) FlushPage(asid ASID, vpn uint64) {
	t.stats.PageFlushes++
	t.drop(key{asid, vpn})
}

func (t *SetAssoc) drop(k key) {
	if i, ok := t.index[k]; ok {
		t.sets[i/t.ways][i%t.ways] = slot{}
		delete(t.index, k)
		t.stats.Invalidated++
	}
}

// FlushRange invalidates [startVPN, startVPN+pages) of one address space.
func (t *SetAssoc) FlushRange(asid ASID, startVPN, pages uint64) {
	t.stats.RangeFlushes++
	for vpn := startVPN; vpn < startVPN+pages; vpn++ {
		t.drop(key{asid, vpn})
	}
}

// FlushASID invalidates every entry of one address space.
func (t *SetAssoc) FlushASID(asid ASID) {
	t.stats.ASIDFlushes++
	for k := range t.index {
		if k.asid == asid {
			t.drop(k)
		}
	}
}

// FlushAll invalidates the whole TLB.
func (t *SetAssoc) FlushAll() {
	t.stats.FullFlushes++
	t.stats.Invalidated += uint64(len(t.index))
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = slot{}
		}
		t.hands[s] = 0
	}
	t.index = make(map[key]int)
}

// Each calls fn for every valid entry, in set-then-way order
// (introspection for consistency auditors and tests).
func (t *SetAssoc) Each(fn func(Entry)) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid {
				fn(t.sets[s][w].entry)
			}
		}
	}
}

// CountASID returns resident entries tagged asid (introspection).
func (t *SetAssoc) CountASID(asid ASID) int {
	n := 0
	for k := range t.index {
		if k.asid == asid {
			n++
		}
	}
	return n
}
