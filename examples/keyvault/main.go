// Keyvault: the paper's OpenSSL scenario — a server holding thousands of
// private keys, each sealed in its own 4 KiB virtual domain so that a
// compromised request handler can only ever reach the single key it is
// legitimately using (§7.6, httpd/OpenSSL).
package main

import (
	"errors"
	"fmt"
	"log"

	"vdom"
)

// vault is a toy key store: every key lives in a private domain.
type vault struct {
	p    *vdom.Process
	keys map[string]keyEntry
}

type keyEntry struct {
	addr vdom.Addr
	dom  vdom.Domain
}

func newVault(p *vdom.Process) *vault {
	return &vault{p: p, keys: make(map[string]keyEntry)}
}

// store seals key material under a fresh domain.
func (v *vault) store(t *vdom.Thread, name string) error {
	addr, err := t.Mmap(vdom.PageSize)
	if err != nil {
		return err
	}
	dom, _ := v.p.AllocDomain(false)
	if _, err := v.p.ProtectRange(t, addr, vdom.PageSize, dom); err != nil {
		return err
	}
	// Write the key material while the domain is open, then seal.
	if _, err := t.WriteVDR(dom, vdom.ReadWrite); err != nil {
		return err
	}
	if err := t.Store(addr); err != nil {
		return err
	}
	if _, err := t.WriteVDR(dom, vdom.NoAccess); err != nil {
		return err
	}
	v.keys[name] = keyEntry{addr: addr, dom: dom}
	return nil
}

// sign opens exactly one key around the signing operation.
func (v *vault) sign(t *vdom.Thread, name string) error {
	k, ok := v.keys[name]
	if !ok {
		return fmt.Errorf("unknown key %q", name)
	}
	if _, err := t.WriteVDR(k.dom, vdom.ReadOnly); err != nil {
		return err
	}
	defer t.WriteVDR(k.dom, vdom.NoAccess)
	return t.Load(k.addr) // the RSA op reads the key material
}

func main() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 8})
	p := sys.NewProcess(vdom.DefaultPolicy())
	t := p.NewThread(0)
	if _, err := t.AllocVDR(4); err != nil {
		log.Fatal(err)
	}

	v := newVault(p)
	const numKeys = 500 // far beyond the hardware's 16 domains
	for i := 0; i < numKeys; i++ {
		if err := v.store(t, fmt.Sprintf("key-%04d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("sealed %d keys in %d separate domains\n", numKeys, numKeys)

	// A request handler signs with its session's key...
	if err := v.sign(t, "key-0042"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("legitimate sign with key-0042: ok")

	// ...while a compromised handler that guesses another key's address
	// is stopped cold: the domain is closed in this thread's VDR.
	victim := v.keys["key-0137"]
	if err := t.Load(victim.addr); errors.Is(err, vdom.ErrSigsegv) {
		fmt.Println("exploit probing key-0137 directly: SIGSEGV (blocked)")
	} else {
		log.Fatal("SECURITY HOLE: foreign key readable")
	}

	// Even with one key open, all other keys stay sealed.
	if _, err := t.WriteVDR(v.keys["key-0042"].dom, vdom.ReadOnly); err != nil {
		log.Fatal(err)
	}
	if err := t.Load(victim.addr); errors.Is(err, vdom.ErrSigsegv) {
		fmt.Println("with key-0042 open, key-0137 still sealed (least privilege)")
	} else {
		log.Fatal("SECURITY HOLE: open key leaked another domain")
	}

	st := p.Stats()
	fmt.Printf("stats: %d wrvdr, %d maps to free pdoms, %d VDS switches, %d evictions\n",
		st.WrVdrCalls, st.MapsToFree, st.VDSSwitches, st.Evictions)
}
