package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/replay"
)

// goldenDir is the checked-in corpus, relative to this package.
const goldenDir = "../../testdata/traces"

// TestReplayParallelByteIdentical extends the engine guarantee to the
// replay experiment: replaying the golden corpus renders byte-identical
// output — table, metrics snapshot, Chrome trace — at any pool width,
// and reports zero divergences.
func TestReplayParallelByteIdentical(t *testing.T) {
	run := func(workers int) (table, snap, trace []byte) {
		o := Options{Parallel: workers, TraceDir: goldenDir,
			Metrics: metrics.New(), Trace: metrics.NewTrace()}
		var tb, mb, jb bytes.Buffer
		bad, err := Replay(&tb, o)
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("golden corpus reported %d divergences:\n%s", bad, tb.Bytes())
		}
		if err := o.Metrics.WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if err := o.Trace.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes(), jb.Bytes()
	}
	t1, m1, j1 := run(1)
	t3, m3, j3 := run(3)
	if !bytes.Equal(t1, t3) {
		t.Errorf("replay output differs between -parallel 1 and 3:\n--- p1\n%s\n--- p3\n%s", t1, t3)
	}
	if !bytes.Equal(m1, m3) {
		t.Error("replay metrics snapshots differ between -parallel 1 and 3")
	}
	if !bytes.Equal(j1, j3) {
		t.Error("replay traces differ between -parallel 1 and 3")
	}
}

// TestRecordParallelByteIdentical checks that Record writes the same
// trace files and renders the same table at any pool width — and that
// they match the checked-in golden corpus exactly.
func TestRecordParallelByteIdentical(t *testing.T) {
	run := func(workers int) (string, []byte) {
		dir := t.TempDir()
		var tb bytes.Buffer
		if err := Record(&tb, Options{Parallel: workers, TraceDir: dir}); err != nil {
			t.Fatal(err)
		}
		return dir, tb.Bytes()
	}
	d1, t1 := run(1)
	d3, t3 := run(3)
	if !bytes.Equal(t1, t3) {
		t.Errorf("record output differs between -parallel 1 and 3:\n--- p1\n%s\n--- p3\n%s", t1, t3)
	}
	golden, err := filepath.Glob(filepath.Join(goldenDir, "*.trace"))
	if err != nil || len(golden) == 0 {
		t.Fatalf("no golden corpus at %s: %v", goldenDir, err)
	}
	for _, g := range golden {
		want, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range []string{d1, d3} {
			got, err := os.ReadFile(filepath.Join(dir, filepath.Base(g)))
			if err != nil {
				t.Fatalf("Record did not write %s: %v", filepath.Base(g), err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%s: recorded trace differs from the golden corpus", filepath.Base(g))
			}
		}
	}
}

// TestReplayDetectsCorruption corrupts one recorded cost and checks the
// divergence is caught, rendered, counted, and written to the JSON
// divergence report.
func TestReplayDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	data, err := os.ReadFile(filepath.Join(goldenDir, "table4-vdom-x86.trace"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := replay.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	tr.Events[len(tr.Events)/2].Cost += 7
	if err := os.WriteFile(filepath.Join(dir, "corrupt.trace"), replay.Encode(tr), 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "divergence.json")
	var tb bytes.Buffer
	bad, err := Replay(&tb, Options{TraceDir: dir, DivergenceOut: out})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("bad = %d, want 1\n%s", bad, tb.Bytes())
	}
	if !bytes.Contains(tb.Bytes(), []byte("DIVERGED")) {
		t.Errorf("rendered output does not flag the divergence:\n%s", tb.Bytes())
	}
	rep, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(rep, &entries); err != nil {
		t.Fatalf("divergence report is not valid JSON: %v", err)
	}
	if len(entries) != 1 || entries[0]["trace"] != "corrupt" {
		t.Fatalf("divergence report = %s", rep)
	}
}

// TestChaosArtifacts runs the sharded soak with recording on and checks
// the machine-readable report; a healthy run must dump no traces.
func TestChaosArtifacts(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "soak.json")
	dumps := filepath.Join(dir, "dumps")
	var tb bytes.Buffer
	if err := ChaosSeed(&tb, Options{Quick: true, SoakReport: report, TraceDump: dumps}, 42); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep chaos.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("soak report is not valid JSON: %v", err)
	}
	if len(rep.Shards) != chaosShards {
		t.Fatalf("report has %d shards, want %d", len(rep.Shards), chaosShards)
	}
	if !rep.Healthy {
		t.Fatalf("soak unexpectedly unhealthy:\n%s", data)
	}
	for i, s := range rep.Shards {
		if s.TraceEvents == 0 {
			t.Errorf("shard %d recorded no events despite TraceDump", i)
		}
		if s.TracePath != "" {
			t.Errorf("healthy shard %d has a trace dump: %s", i, s.TracePath)
		}
	}
	if files, _ := filepath.Glob(filepath.Join(dumps, "*")); len(files) != 0 {
		t.Errorf("healthy soak dumped traces: %v", files)
	}
}
