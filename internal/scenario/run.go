package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"vdom/internal/backend"
	"vdom/internal/chaos"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
)

// Cell region layout: every client owns Domains+1 regions of regionPages
// pages each — slots [0, Domains) are protected domain memory, the last
// slot is unprotected scratch the "plain" op mix touches.
const (
	regionBase   = pagetable.VAddr(0x4000_0000)
	clientStride = 0x100_0000
	slotStride   = 0x10_0000
	regionPages  = 4
	regionBytes  = regionPages * pagetable.PageSize
)

// regionAddr is the base address of one client's slot.
func regionAddr(client, slot int) pagetable.VAddr {
	return regionBase + pagetable.VAddr(client*clientStride+slot*slotStride)
}

// CellOptions configures one cell execution.
type CellOptions struct {
	// Metrics, when non-nil, receives the run's per-(layer, op) cycle
	// attribution.
	Metrics *metrics.Registry
	// Record captures the run as a vdom-trace/v1 recording in
	// CellResult.Trace.
	Record bool
}

// CellResult is one executed cell's outcome.
type CellResult struct {
	Cell Cell
	// Ops is the number of main-loop operations executed; Activations,
	// Churns, Plain break them down by mix branch. Reuses counts churn
	// reallocations that fell back to the freed slot id because the
	// kernel's fixed domain capacity was exhausted (EPK's monotonic
	// allocator). Faulted counts operations that returned a typed,
	// tolerated error (injected faults, capacity pushback).
	Ops, Activations, Churns, Reuses, Plain, Faulted uint64
	// Cycles is the summed cost of every operation the cell drove.
	Cycles uint64
	// Injected and Recovered echo the chaos injector's totals (zero for
	// fault-free cells).
	Injected, Recovered uint64
	// EndDigest fingerprints the end state (replay.EndState over the
	// final clock), the value the determinism regression compares across
	// parallel widths.
	EndDigest uint64
	// Trace is the recording when CellOptions.Record was set.
	Trace *replay.Trace
}

// RunCell boots the cell's platform from its forged header and drives
// the seeded client/domain schedule through the backend's DomainOps
// adapter. The run is fully deterministic: every random decision comes
// from the cell's private xoshiro stream, and injected faults come from
// the chaos injector's own stream seeded from the cell seed — so the
// same cell produces identical results at any parallel width, and a
// recorded cell replays bit-identically through ReplayTrace.
func RunCell(c Cell, opt CellOptions) (*CellResult, error) {
	h := c.Header()
	sys, err := replay.Boot(h)
	if err != nil {
		return nil, err
	}
	b, ok := backend.Get(c.Kernel)
	if !ok {
		return nil, fmt.Errorf("%w: unknown kernel %q", ErrBadRecord, c.Kernel)
	}

	var in *chaos.Injector
	if c.Faults.Any() {
		in = chaos.New(c.Faults.Config(c.Seed))
		in.AttachSystem(sys)
	}
	var rec *replay.Recorder
	if opt.Record {
		rec = replay.NewRecorder(h)
		rec.AttachSystem(sys)
	}
	if sys.Kernel != nil {
		sys.Kernel.SetMetrics(opt.Metrics)
	}
	for _, bk := range backend.All() {
		if bk.Present(sys) {
			bk.SetMetrics(sys, opt.Metrics)
		}
	}

	res := &CellResult{Cell: c}
	// fault tolerates a typed error (chaos injection, capacity pushback)
	// by counting it; an untyped error aborts the cell.
	fault := func(err error) error {
		if err == nil {
			return nil
		}
		if replay.CodeOf(err) != replay.CodeOther {
			res.Faulted++
			return nil
		}
		return err
	}

	ops := b.Ops(sys)
	rng := sim.NewRand(c.Seed)
	var clock uint64

	// Spawn one task per client, round-robin over cores, and map every
	// client's domain slots plus the scratch region.
	tasks := make([]*kernel.Task, c.Clients)
	for i := range tasks {
		tk := sys.Proc.NewTask(i % c.Cores)
		if rec != nil {
			rec.Spawn(tk)
		}
		tasks[i] = tk
		for s := 0; s <= c.Domains; s++ {
			cost, err := tk.Mmap(regionAddr(i, s), regionBytes, true)
			clock += uint64(cost)
			if err != nil {
				return nil, fmt.Errorf("scenario: cell %s/%s/%d: mmap client %d slot %d: %v",
					c.Scenario, c.Phase, c.Step, i, s, err)
			}
		}
		cost, err := ops.PrepareThread(tk, c.Domains+1)
		clock += uint64(cost)
		if e := fault(err); e != nil {
			return nil, fmt.Errorf("scenario: prepare thread %d: %v", i, e)
		}
	}

	ids := make([][]uint64, c.Clients)
	life := make([][]int, c.Clients)
	for i := range ids {
		ids[i] = make([]uint64, c.Domains)
		life[i] = make([]int, c.Domains)
	}

	// churn releases a slot's domain (unless this is the initial
	// allocation) and reallocates it. A capacity-exhausted reallocation
	// reuses the freed slot id — on EPK, Free is a cost-model no-op, so
	// the id stays switchable and the cell degrades gracefully instead
	// of dying.
	churn := func(cl, s int, first bool) error {
		tk := tasks[cl]
		old := ids[cl][s]
		if !first {
			cost, err := ops.Free(tk, old)
			clock += uint64(cost)
			if e := fault(err); e != nil {
				return e
			}
			res.Churns++
		}
		id, cost, err := ops.Alloc(tk)
		clock += uint64(cost)
		if err != nil {
			if errors.Is(err, backend.ErrDomainCapacity) && !first {
				res.Reuses++
				res.Faulted++
				id = old
			} else if e := fault(err); e != nil {
				return e
			} else {
				id = old
			}
		}
		ids[cl][s] = id
		cost, err = ops.Protect(tk, regionAddr(cl, s), regionBytes, id)
		clock += uint64(cost)
		if e := fault(err); e != nil {
			return e
		}
		life[cl][s] = drawLife(rng, c.Lifetime)
		return nil
	}

	for cl := 0; cl < c.Clients; cl++ {
		for s := 0; s < c.Domains; s++ {
			if err := churn(cl, s, true); err != nil {
				return nil, fmt.Errorf("scenario: initial alloc client %d slot %d: %v", cl, s, err)
			}
		}
	}

	mixTotal := c.Mix.Activate + c.Mix.Churn + c.Mix.Plain
	for op := 0; op < c.Ops; op++ {
		res.Ops++
		cl := rng.Intn(c.Clients)
		w := rng.Intn(mixTotal)
		switch {
		case w < c.Mix.Activate:
			s := rng.Intn(c.Domains)
			tk := tasks[cl]
			res.Activations++
			cost, err := ops.Activate(tk, ids[cl][s])
			clock += uint64(cost)
			if e := fault(err); e != nil {
				return nil, fmt.Errorf("scenario: activate: %v", e)
			} else if err != nil {
				continue // tolerated fault: nothing became active
			}
			page := rng.Intn(regionPages)
			write := rng.Intn(2) == 1
			cost, err = tk.Access(regionAddr(cl, s)+pagetable.VAddr(page*pagetable.PageSize), write)
			clock += uint64(cost)
			if e := fault(err); e != nil {
				return nil, fmt.Errorf("scenario: access: %v", e)
			}
			cost, err = ops.Deactivate(tk, ids[cl][s])
			clock += uint64(cost)
			if e := fault(err); e != nil {
				return nil, fmt.Errorf("scenario: deactivate: %v", e)
			}
			if life[cl][s] > 0 {
				life[cl][s]--
				if life[cl][s] == 0 {
					if err := churn(cl, s, false); err != nil {
						return nil, fmt.Errorf("scenario: lifetime churn: %v", err)
					}
				}
			}
		case w < c.Mix.Activate+c.Mix.Churn:
			s := rng.Intn(c.Domains)
			if err := churn(cl, s, false); err != nil {
				return nil, fmt.Errorf("scenario: churn: %v", err)
			}
		default:
			res.Plain++
			page := rng.Intn(regionPages)
			write := rng.Intn(2) == 1
			cost, err := tasks[cl].Access(regionAddr(cl, c.Domains)+pagetable.VAddr(page*pagetable.PageSize), write)
			clock += uint64(cost)
			if e := fault(err); e != nil {
				return nil, fmt.Errorf("scenario: plain access: %v", e)
			}
		}
	}

	res.Cycles = clock
	if in != nil {
		res.Injected = in.TotalInjected()
		res.Recovered = in.TotalRecovered()
	}
	res.EndDigest = digestEnd(replay.EndState(clock, sys))
	if rec != nil {
		res.Trace = rec.Finish()
	}
	return res, nil
}

// drawLife samples a slot's remaining activation count from the phase's
// lifetime distribution. All sampling is integer-only so the draw is
// bit-stable across platforms; 0 means the slot lives forever.
func drawLife(rng *sim.Rand, l Lifetime) int {
	mean := l.MeanOps
	switch l.Dist {
	case LifeFixed:
		return mean
	case LifeUniform:
		// Uniform over [1, 2*mean-1]: mean activations on average.
		return 1 + rng.Intn(2*mean-1)
	case LifeGeometric:
		// Geometric with success probability 1/mean, capped at 8*mean to
		// bound the tail.
		n := 1
		for n < 8*mean && rng.Intn(mean) != 0 {
			n++
		}
		return n
	default:
		return 0
	}
}

// digestEnd fingerprints an end-state map: FNV-1a over the sorted
// "key=value" lines.
func digestEnd(end map[string]uint64) uint64 {
	keys := make([]string, 0, len(end))
	for k := range end {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d\n", k, end[k])
	}
	return replay.DigestString(sb.String())
}

// ReplayTrace replays a scenario-cell recording: for faulted cells it
// rebuilds the chaos injector from the header's Extra keys and attaches
// it before the first event, so the replay experiences the identical
// fault stream; fault-free cells replay through the plain engine.
func ReplayTrace(t *replay.Trace, opt replay.Options) (*replay.Result, error) {
	if !strings.HasPrefix(t.Header.Workload, WorkloadPrefix) {
		return nil, fmt.Errorf("%w: workload %q is not a scenario trace", replay.ErrBadRecord, t.Header.Workload)
	}
	if cfg, ok := chaos.ConfigFromExtra(t.Header.Extra); ok {
		inner := opt.Setup
		opt.Setup = func(sys *replay.System) {
			chaos.New(cfg).AttachSystem(sys)
			if inner != nil {
				inner(sys)
			}
		}
	}
	return replay.Run(t, opt)
}
