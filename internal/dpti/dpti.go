// Package dpti implements the Domain Page-Table Isolation baseline
// (Canella et al., see PAPERS.md) on the simulated substrate: every
// domain gets its own page table, and activation is a pgd switch into
// that table instead of a permission-register write.
//
// DPTI trades the 16-key register ceiling for page-table pressure: there
// is no bound on the number of domains (each is just another pgd), but
// every activation is a kernel round trip plus an address-space switch,
// and every materialized domain consumes an ASID and TLB reach. That is
// exactly the opposite cost shape from MPK-style keys — cheap switches,
// hard capacity ceiling — which makes it the interesting fourth point in
// the paper's comparison space. The per-domain tables ride the same
// mm.AddressSpace synchronization set as VDom's VDSes (RegisterTable +
// lazy demand fill + eager revocation), so munmap shootdowns, frame
// reclaim, and the snapshot machinery cover them with no special cases.
//
// A capped number of tables stays materialized at once (MaxTables,
// default 64): beyond it the least-recently-entered idle domain is
// evicted — its table dropped from the sync set, its ASID retired, and
// its translations shot down — and re-materialized on next entry. This
// reproduces the kernel-memory ceiling real per-domain-pgd designs hit,
// and stresses the substrate's ASID-generation machinery in a regime the
// key-register kernels never reach.
package dpti

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
	"vdom/internal/tlb"
)

// DomainID is a DPTI domain identifier (unlimited; 0 is the base
// address space and never a domain).
type DomainID uint64

// accessNeverPdom is the reserved domain tag for pages outside the
// active domain's table (modeled as an access-never domain, like
// libmpk's disabled pages).
const accessNeverPdom = pagetable.Pdom(1)

// DefaultMaxTables caps how many domain page tables stay materialized.
const DefaultMaxTables = 64

// Errors.
var (
	// ErrUnknownDomain reports an unallocated or freed domain id.
	ErrUnknownDomain = errors.New("dpti: unknown domain")
	// ErrNoASID is returned when a domain cannot be materialized because
	// every ASID in the architectural space is live.
	ErrNoASID = errors.New("dpti: ASID space exhausted")
)

// Stats breaks DPTI's overhead into its characteristic buckets.
type Stats struct {
	Enters           uint64
	Exits            uint64
	Materializations uint64
	Evictions        uint64
	SwitchCycles     uint64 // enter/exit syscall + pgd bookkeeping
	ShootdownCycles  uint64 // initiator + receiver cycles of evictions
	MgmtCycles       uint64 // alloc/free/protect bookkeeping
}

// Emit publishes the stats as named metrics counters under the dpti/
// prefix (see OBSERVABILITY.md for the catalogue).
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("dpti/enters", s.Enters)
	emit("dpti/exits", s.Exits)
	emit("dpti/materializations", s.Materializations)
	emit("dpti/evictions", s.Evictions)
	emit("dpti/switch-cycles", s.SwitchCycles)
	emit("dpti/shootdown-cycles", s.ShootdownCycles)
	emit("dpti/mgmt-cycles", s.MgmtCycles)
}

type area struct {
	start  pagetable.VAddr
	length uint64
}

type domain struct {
	id      DomainID
	areas   []area
	table   *pagetable.Table // nil until materialized
	asid    tlb.ASID
	live    bool // materialized: table registered, ASID held
	lastUse uint64
}

// Manager is one process's DPTI instance.
type Manager struct {
	proc   *kernel.Process
	kern   *kernel.Kernel
	params *cycles.Params

	// domains is indexed by DomainID (dense: ids are allocated
	// sequentially from 1); freed domains leave a nil slot.
	domains []*domain
	nextID  DomainID
	// current maps each task to the domain it has entered (absent: base).
	current map[*kernel.Task]DomainID

	maxTables int
	numLive   int
	clock     uint64

	metrics *metrics.Registry
	tap     tap.Tap

	// Stats is exported for the experiment harness.
	Stats Stats
}

var _ mm.DomainResolver = (*Manager)(nil)
var _ kernel.FaultHandler = (*Manager)(nil)
var _ kernel.ASIDLister = (*Manager)(nil)

// Attach initializes DPTI for the process: it becomes the address
// space's domain resolver and the process's fault handler (so kernel
// revocation paths include its per-domain ASIDs in shootdowns).
func Attach(proc *kernel.Process) *Manager {
	m := &Manager{
		proc:      proc,
		kern:      proc.Kernel(),
		params:    proc.Kernel().Params(),
		nextID:    1,
		current:   make(map[*kernel.Task]DomainID),
		maxTables: DefaultMaxTables,
	}
	proc.AS().SetResolver(m)
	proc.SetFaultHandler(m)
	return m
}

// SetMaxTables changes the materialized-table cap. Call before entering
// domains.
func (m *Manager) SetMaxTables(n int) {
	if n < 1 {
		panic("dpti: MaxTables must be positive")
	}
	m.maxTables = n
}

// SetMetrics installs (or, with nil, removes) the registry that receives
// per-operation cycle attribution under the "dpti" layer.
func (m *Manager) SetMetrics(r *metrics.Registry) { m.metrics = r }

// SetTap attaches a trace recorder; completed API calls arrive as
// unified tap.Events (OpDptiAlloc/Free/Protect/Enter/Exit). Pass nil
// (the default) to detach.
func (m *Manager) SetTap(t tap.Tap) { m.tap = t }

// tapOp forwards a completed call to the attached tap, if any.
func (m *Manager) tapOp(e tap.Event) {
	if m.tap != nil {
		m.tap(e)
	}
}

// tapTID extracts a task's id, tolerating nil-task direct calls.
func tapTID(t *kernel.Task) int {
	if t == nil {
		return 0
	}
	return t.TID()
}

// domainOf returns the metadata of d, or nil for an unknown or freed id.
func (m *Manager) domainOf(d DomainID) *domain {
	if d >= 1 && int(d) <= len(m.domains) {
		return m.domains[d-1]
	}
	return nil
}

// PdomFor implements mm.DomainResolver: a domain's pages are accessible
// only inside that domain's own table; everywhere else — the shadow
// table and every other domain's table — they are installed access-never.
func (m *Manager) PdomFor(t *pagetable.Table, tag mm.Tag) (pagetable.Pdom, bool) {
	if tag == 0 {
		return 0, true
	}
	if d := m.domainOf(DomainID(tag)); d != nil && d.live && d.table == t {
		return 0, true
	}
	return 0, false
}

// AccessNever implements mm.DomainResolver.
func (m *Manager) AccessNever() pagetable.Pdom { return accessNeverPdom }

// HandleDomainFault implements kernel.FaultHandler. DPTI repairs nothing
// at fault time: an access-never fault is a genuine isolation violation
// (the page belongs to a domain the task has not entered), so the fault
// is left for the kernel's SIGSEGV path.
func (m *Manager) HandleDomainFault(t *kernel.Task, addr pagetable.VAddr, write bool, kind hw.FaultKind) (cycles.Cost, bool, error) {
	return 0, false, nil
}

// LiveASIDs implements kernel.ASIDLister: the ASIDs of every
// materialized domain table, so munmap and frame-reclaim shootdowns
// reach dormant domain address spaces.
func (m *Manager) LiveASIDs() []tlb.ASID {
	var out []tlb.ASID
	for _, d := range m.domains {
		if d != nil && d.live {
			out = append(out, d.asid)
		}
	}
	return out
}

// OwnedASIDs calls fn with each materialized domain's (ASID, table)
// pair — the ownership facts a cross-layer TLB auditor checks cached
// entries against.
func (m *Manager) OwnedASIDs(fn func(tlb.ASID, *pagetable.Table)) {
	for _, d := range m.domains {
		if d != nil && d.live {
			fn(d.asid, d.table)
		}
	}
}

// Current returns the domain the task has entered, or 0 for the base
// address space.
func (m *Manager) Current(task *kernel.Task) DomainID { return m.current[task] }

// NumLiveTables returns how many domain tables are materialized.
func (m *Manager) NumLiveTables() int { return m.numLive }

// apiCost is the entry cost of one DPTI call: every operation is a
// kernel round trip (there is no user-writable register to shortcut
// through).
func (m *Manager) apiCost() cycles.Cost {
	return m.params.CallReturn + m.params.SyscallReturn
}

// AllocDomain allocates a domain id. The page table is not materialized
// until the first Enter, mirroring the lazy pgd allocation of the design.
func (m *Manager) AllocDomain() (d DomainID, cost cycles.Cost) {
	defer func() {
		m.metrics.Attribute("dpti", "alloc", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpDptiAlloc, Dom: uint64(d), Cost: cost})
	}()
	d = m.nextID
	m.nextID++
	m.domains = append(m.domains, &domain{id: d})
	cost = m.apiCost()
	m.Stats.MgmtCycles += uint64(cost)
	return d, cost
}

// FreeDomain releases a domain called by task. Its pages stay tagged and
// therefore resolve access-never everywhere from now on; its table and
// ASID are torn down with a process-wide shootdown.
func (m *Manager) FreeDomain(task *kernel.Task, d DomainID) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("dpti", "free", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpDptiFree, TID: tapTID(task), Dom: uint64(d), Cost: cost, Err: err})
	}()
	dom := m.domainOf(d)
	if dom == nil {
		return m.apiCost(), fmt.Errorf("%w: %d", ErrUnknownDomain, d)
	}
	cost = m.apiCost()
	m.Stats.MgmtCycles += uint64(cost)
	if dom.live {
		cost += m.dematerialize(task, dom)
	}
	// Any task still inside the freed domain is kicked back to the base
	// address space — its table is gone.
	for t, cur := range m.current {
		if cur == d {
			delete(m.current, t)
			t.SetAddressSpace(m.proc.AS().Shadow(), t.BaseASID(), false)
		}
	}
	m.domains[d-1] = nil
	return cost, nil
}

// Protect assigns [addr, addr+length) to domain d (dpti_mprotect
// semantics). The pages become accessible only inside d's table; present
// pages are retagged eagerly in every materialized table.
func (m *Manager) Protect(task *kernel.Task, addr pagetable.VAddr, length uint64, d DomainID) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("dpti", "protect", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpDptiProtect, TID: tapTID(task), Dom: uint64(d), Addr: addr, Len: length, Cost: cost, Err: err})
	}()
	dom := m.domainOf(d)
	if dom == nil {
		return m.apiCost(), fmt.Errorf("%w: %d", ErrUnknownDomain, d)
	}
	cost = m.apiCost()
	start := addr.PageAlign()
	end := (addr + pagetable.VAddr(length) + pagetable.PageSize - 1).PageAlign()
	if _, err := m.proc.AS().SetTag(addr, length, mm.Tag(d)); err != nil {
		return cost, err
	}
	dom.areas = append(dom.areas, area{start: start, length: uint64(end - start)})
	pages := uint64(end-start) / pagetable.PageSize
	c := m.params.MprotectPerPage * cycles.Cost(pages)
	cost += c
	m.Stats.MgmtCycles += uint64(cost)
	return cost, nil
}

// Enter switches the task into domain d: a syscall that points the task
// at d's page table under d's ASID (the pgd switch itself is charged by
// the scheduler's dispatch path, exactly as for VDS switches). The first
// entry materializes the table; beyond the MaxTables cap the
// least-recently-entered idle domain is evicted first.
func (m *Manager) Enter(task *kernel.Task, d DomainID) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("dpti", "enter", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpDptiEnter, TID: tapTID(task), Dom: uint64(d), Cost: cost, Err: err})
	}()
	dom := m.domainOf(d)
	if dom == nil {
		return m.apiCost(), fmt.Errorf("%w: %d", ErrUnknownDomain, d)
	}
	cost = m.apiCost()
	m.Stats.Enters++
	if !dom.live {
		c, err := m.materialize(task, dom)
		cost += c
		if err != nil {
			m.Stats.SwitchCycles += uint64(cost)
			return cost, err
		}
	}
	m.clock++
	dom.lastUse = m.clock
	m.current[task] = d
	task.SetAddressSpace(dom.table, dom.asid, false)
	cost += m.params.PgdSwitch
	m.Stats.SwitchCycles += uint64(cost)
	return cost, nil
}

// Exit switches the task back to the base address space (the process
// shadow table under the task's base ASID).
func (m *Manager) Exit(task *kernel.Task) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("dpti", "exit", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpDptiExit, TID: tapTID(task), Cost: cost, Err: err})
	}()
	cost = m.apiCost()
	m.Stats.Exits++
	delete(m.current, task)
	task.SetAddressSpace(m.proc.AS().Shadow(), task.BaseASID(), false)
	cost += m.params.PgdSwitch
	m.Stats.SwitchCycles += uint64(cost)
	return cost, nil
}

// materialize builds the domain's page table: allocate a table and an
// ASID, register the table in the synchronization set (demand paging
// fills it lazily, with the resolver granting only d's pages), evicting
// the LRU idle domain first when the cap is reached.
func (m *Manager) materialize(task *kernel.Task, dom *domain) (cycles.Cost, error) {
	var cost cycles.Cost
	for m.numLive >= m.maxTables {
		victim := m.chooseVictim()
		if victim == nil {
			break // every table is in active use; run over the cap
		}
		m.Stats.Evictions++
		cost += m.params.EvictBase
		cost += m.dematerialize(task, victim)
	}
	asid, ok := m.kern.TryAllocASID()
	if !ok {
		return cost, fmt.Errorf("%w: domain %d", ErrNoASID, dom.id)
	}
	dom.table = pagetable.New()
	dom.asid = asid
	dom.live = true
	m.numLive++
	m.proc.AS().RegisterTable(dom.table)
	m.Stats.Materializations++
	cost += m.params.VDSAllocate
	return cost, nil
}

// chooseVictim returns the least-recently-entered materialized domain no
// task is currently inside, or nil.
func (m *Manager) chooseVictim() *domain {
	inUse := make(map[DomainID]bool, len(m.current))
	for _, d := range m.current {
		inUse[d] = true
	}
	var best *domain
	for _, d := range m.domains {
		if d == nil || !d.live || inUse[d.id] {
			continue
		}
		if best == nil || d.lastUse < best.lastUse {
			best = d
		}
	}
	return best
}

// dematerialize tears a domain's table down: unregister it, retire its
// ASID, and shoot its translations out of every core running the
// process. task may be nil (direct mode); the shootdown then only
// charges management cycles.
func (m *Manager) dematerialize(task *kernel.Task, dom *domain) cycles.Cost {
	m.proc.AS().UnregisterTable(dom.table)
	m.kern.FreeASID(dom.asid)
	asid := dom.asid
	dom.table = nil
	dom.asid = 0
	dom.live = false
	m.numLive--
	var cost cycles.Cost
	if task != nil {
		mach := m.kern.Machine()
		targets := m.proc.RunningCores()
		rep := mach.Shootdown(task.CoreID(), targets, func(tb tlb.Cache) {
			tb.FlushASID(asid)
		}, m.params.TLBFlushLocalASID)
		for id := 0; id < mach.NumCores(); id++ {
			if id != task.CoreID() && targets.Has(id) {
				m.kern.AddPendingInterrupt(id, rep.ReceiverCycles)
			}
		}
		total := rep.InitiatorCycles + rep.ReceiverCycles*cycles.Cost(rep.RemoteCores)
		m.Stats.ShootdownCycles += uint64(total)
		cost += rep.InitiatorCycles
	}
	return cost
}
