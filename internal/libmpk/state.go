package libmpk

import (
	"fmt"
	"sort"

	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

// Checkpoint capture and restore (vdom-snap/v1).

// AreaSnap is one serialized protected area.
type AreaSnap struct {
	Start  pagetable.VAddr
	Length uint64
}

// TaskPermSnap is one per-thread permission on a key (TID 0 = the nil
// task of direct mode).
type TaskPermSnap struct {
	TID  int
	Perm hw.Perm
}

// KeySnap is the serializable image of one virtual key's metadata.
type KeySnap struct {
	Vkey    Vkey
	Areas   []AreaSnap
	Pkey    pagetable.Pdom
	Mapped  bool
	Perms   []TaskPermSnap // ascending TID
	InUse   int
	LastUse uint64
}

// PkeySlotSnap is one hardware-key cache slot.
type PkeySlotSnap struct {
	Vkey Vkey
	Used bool
}

// Snap is the serializable image of a Manager.
type Snap struct {
	NextVkey Vkey
	Keys     []KeySnap // ascending Vkey
	Pkeys    []PkeySlotSnap
	Clock    uint64
	Mode     PageMode
	Stats    Stats
}

// Snap captures the manager's image. The busy-wait signal and cache lock
// are simulator plumbing, not state: an idle checkpoint has no waiters.
func (m *Manager) Snap() Snap {
	s := Snap{
		NextVkey: m.nextVkey,
		Clock:    m.clock,
		Mode:     m.mode,
		Stats:    m.Stats,
	}
	for vk, km := range m.keys {
		if km == nil {
			continue
		}
		ks := KeySnap{Vkey: Vkey(vk), Pkey: km.pkey, Mapped: km.mapped, InUse: km.inUse, LastUse: km.lastUse}
		for _, a := range km.areas {
			ks.Areas = append(ks.Areas, AreaSnap{Start: a.start, Length: a.length})
		}
		for t, p := range km.perms {
			ks.Perms = append(ks.Perms, TaskPermSnap{TID: tapTID(t), Perm: p})
		}
		sort.Slice(ks.Perms, func(i, j int) bool { return ks.Perms[i].TID < ks.Perms[j].TID })
		s.Keys = append(s.Keys, ks)
	}
	sort.Slice(s.Keys, func(i, j int) bool { return s.Keys[i].Vkey < s.Keys[j].Vkey })
	for _, slot := range m.pkeys {
		s.Pkeys = append(s.Pkeys, PkeySlotSnap{Vkey: slot.vkey, Used: slot.used})
	}
	return s
}

// LoadSnap restores a captured image onto a freshly attached manager.
// task resolves TIDs to restored tasks (TID 0 must resolve to nil).
func (m *Manager) LoadSnap(s Snap, task func(tid int) *kernel.Task) {
	if len(m.keys) != 0 {
		panic("libmpk: LoadSnap on a non-fresh manager")
	}
	if len(s.Pkeys) != numPkeys {
		panic(fmt.Sprintf("libmpk: snapshot has %d pkey slots, want %d", len(s.Pkeys), numPkeys))
	}
	m.nextVkey = s.NextVkey
	m.clock = s.Clock
	m.mode = s.Mode
	m.Stats = s.Stats
	for _, ks := range s.Keys {
		km := &keyMeta{
			pkey:    ks.Pkey,
			mapped:  ks.Mapped,
			inUse:   ks.InUse,
			lastUse: ks.LastUse,
			perms:   make(map[*kernel.Task]hw.Perm, len(ks.Perms)),
		}
		for _, a := range ks.Areas {
			km.areas = append(km.areas, area{start: a.Start, length: a.Length})
		}
		for _, p := range ks.Perms {
			km.perms[task(p.TID)] = p.Perm
		}
		m.setKey(ks.Vkey, km)
	}
	for i, slot := range s.Pkeys {
		m.pkeys[i] = pkeySlot{vkey: slot.Vkey, used: slot.Used}
	}
}
