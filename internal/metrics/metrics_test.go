package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRegistryNoops: every method of a nil registry and a nil trace
// must be a safe no-op — that is the whole disabled-mode contract.
func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Set("x", 1)
	r.Attribute("l", "op", 7)
	r.Observe("h", 9)
	r.Reset()
	r.Harvest()
	r.Accumulate()
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	if r.Counter("x") != 0 || r.TotalCycles() != 0 || r.Cycles("l", "op") != 0 {
		t.Error("nil registry returned non-zero readings")
	}
	s := r.Snapshot()
	if s == nil || s.Schema != SnapshotSchema {
		t.Fatalf("nil registry snapshot: %+v", s)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Errorf("nil snapshot inconsistent: %v", err)
	}

	var tr *Trace
	tr.Span("p", 0, 0, 5)
	tr.Instant("c", "n", 0, 1)
	tr.Decision("map", 1, 2, 3, nil)
	if tr.Enabled() || tr.Len() != 0 {
		t.Error("nil trace reports content")
	}
}

func TestCountersAndAttribution(t *testing.T) {
	r := New()
	r.Add("tlb/hits", 3)
	r.Add("tlb/hits", 4)
	r.Set("tlb/hits", 10)
	if got := r.Counter("tlb/hits"); got != 10 {
		t.Errorf("Set semantics: got %d, want 10", got)
	}
	r.Attribute("core", "wrvdr", 100)
	r.Attribute("core", "wrvdr", 50)
	r.Attribute("tlb", "flush", 25)
	if r.TotalCycles() != 175 {
		t.Errorf("TotalCycles = %d, want 175", r.TotalCycles())
	}
	if r.Cycles("core", "wrvdr") != 150 {
		t.Errorf("Cycles(core,wrvdr) = %d, want 150", r.Cycles("core", "wrvdr"))
	}
	if r.LayerCycles("core") != 150 || r.LayerCycles("tlb") != 25 {
		t.Error("LayerCycles mismatch")
	}

	s := r.Snapshot()
	if err := s.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent snapshot: %v", err)
	}
	lt := s.LayerTotals()
	if len(lt) != 2 || lt[0].Layer != "core" || lt[0].Cycles != 150 {
		t.Errorf("LayerTotals = %+v", lt)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	for _, v := range []uint64{0, 1, 2, 3, 127, 128, 1 << 40} {
		r.Observe("core/activation/map", v)
	}
	s := r.Snapshot()
	h, ok := s.Histograms["core/activation/map"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if h.Count != 7 || h.Min != 0 || h.Max != 1<<40 {
		t.Errorf("hist summary: %+v", h)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Errorf("inconsistent: %v", err)
	}
}

// TestSnapshotJSONDeterministic: equal registries must serialize to
// identical bytes — the foundation of the same-seed determinism tests.
func TestSnapshotJSONDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := New()
		r.Add("b/two", 2)
		r.Add("a/one", 1)
		r.Attribute("tlb", "flush", 5)
		r.Attribute("core", "map", 9)
		r.Observe("h", 3)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("equal registries produced different JSON")
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if s.Schema != SnapshotSchema {
		t.Errorf("schema = %q", s.Schema)
	}
}

type fakeSource map[string]uint64

func (f fakeSource) EmitMetrics(emit func(string, uint64)) {
	emit("fake/n", f["n"])
}

func TestHarvestVsAccumulate(t *testing.T) {
	r := New()
	src := fakeSource{"n": 5}
	r.Harvest(src)
	r.Harvest(src) // Set semantics: repeated harvests don't double count.
	if got := r.Counter("fake/n"); got != 5 {
		t.Errorf("Harvest: got %d, want 5", got)
	}
	r.Accumulate(src) // Add semantics: aggregating a fresh sub-experiment.
	if got := r.Counter("fake/n"); got != 10 {
		t.Errorf("Accumulate: got %d, want 10", got)
	}
	r.Harvest(nil, src) // nil sources are skipped
}

func TestTraceJSON(t *testing.T) {
	tr := NewTrace()
	tr.Span("worker-0", 0, 100, 50)
	tr.Instant("chaos", "inject:drop-ipi", 1, 120)
	tr.Decision("map", 2, 130, 40, map[string]uint64{"vdom": 7})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) != 3 || doc.Unit != "ms" {
		t.Errorf("trace doc: %d events, unit %q", len(doc.TraceEvents), doc.Unit)
	}
	if ph := doc.TraceEvents[0]["ph"]; ph != "X" {
		t.Errorf("span ph = %v", ph)
	}
	if ph := doc.TraceEvents[1]["ph"]; ph != "i" {
		t.Errorf("instant ph = %v", ph)
	}
	if !strings.Contains(b.String(), "inject:drop-ipi") {
		t.Error("instant name missing from JSON")
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Add("x", 1)
	r.Attribute("l", "op", 2)
	r.Observe("h", 3)
	r.Reset()
	if r.Counter("x") != 0 || r.TotalCycles() != 0 {
		t.Error("Reset left data behind")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Cycles) != 0 || len(s.Histograms) != 0 {
		t.Errorf("post-reset snapshot not empty: %+v", s)
	}
}

// TestMerge: merging per-cell registries in any grouping must equal
// publishing everything into one registry — the property the parallel
// experiment engine's byte-identical-output guarantee rests on.
func TestMerge(t *testing.T) {
	build := func(vals []uint64) *Registry {
		r := New()
		for _, v := range vals {
			r.Add("tlb/hits", v)
			r.Attribute("core", "wrvdr", v)
			r.Observe("activation", v)
		}
		return r
	}
	all := []uint64{1, 9, 300, 2, 70000, 5}
	want := build(all)

	merged := New()
	merged.Merge(build(all[:2]))
	merged.Merge(build(all[2:4]))
	merged.Merge(build(all[4:]))
	merged.Merge(New()) // empty registry contributes nothing

	var wb, mb bytes.Buffer
	if err := want.WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if wb.String() != mb.String() {
		t.Errorf("merged snapshot differs from direct snapshot:\n--- direct\n%s\n--- merged\n%s", wb.String(), mb.String())
	}
	if err := merged.Snapshot().CheckConsistency(); err != nil {
		t.Errorf("merged snapshot inconsistent: %v", err)
	}
}

// TestMergeNil: nil receiver and nil argument are no-ops in both
// directions, matching the rest of the nil-safe contract.
func TestMergeNil(t *testing.T) {
	var nilr *Registry
	nilr.Merge(New())
	r := New()
	r.Add("x", 1)
	r.Merge(nil)
	if r.Counter("x") != 1 {
		t.Errorf("Merge(nil) mutated registry: %d", r.Counter("x"))
	}
}

// TestTraceAppend: appending per-cell traces in cell order must yield
// the same JSON as recording the events into one trace sequentially.
func TestTraceAppend(t *testing.T) {
	direct := NewTrace()
	direct.Span("a", 0, 0, 5)
	direct.Instant("cat", "b", 1, 7)
	direct.Decision("map", 2, 9, 3, map[string]uint64{"vdom": 4})

	c1 := NewTrace()
	c1.Span("a", 0, 0, 5)
	c2 := NewTrace()
	c2.Instant("cat", "b", 1, 7)
	c2.Decision("map", 2, 9, 3, map[string]uint64{"vdom": 4})

	merged := NewTrace()
	merged.Append(c1)
	merged.Append(c2)
	merged.Append(nil)
	var nilt *Trace
	nilt.Append(c1) // no-op, must not panic

	var db, mb bytes.Buffer
	if err := direct.WriteJSON(&db); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if db.String() != mb.String() {
		t.Errorf("appended trace differs:\n--- direct\n%s\n--- merged\n%s", db.String(), mb.String())
	}
	if merged.Len() != 3 {
		t.Errorf("merged Len = %d, want 3", merged.Len())
	}
}
