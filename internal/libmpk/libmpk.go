// Package libmpk reimplements the libmpk baseline (Park et al., USENIX ATC
// 2019) on the simulated substrate: a per-process virtual-key cache over
// the 16 hardware protection keys, with disabled-page-table-entry eviction.
//
// libmpk keeps the whole process in ONE address space. When a virtual key
// must be activated and no hardware key is free, it evicts the
// least-recently-used key whose vkey no thread is using — disabling the
// evicted pages with mprotect(PROT_NONE) semantics and flushing the TLBs
// of every core running the process. If every hardware key is in use by
// some thread, the caller busy-waits until one is released. These two
// behaviours — process-wide shootdowns and busy waiting — are the root
// causes of libmpk's slowdown that §3.2 of the VDom paper identifies, and
// they emerge here from the same mechanism.
package libmpk

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
	"vdom/internal/tap"
	"vdom/internal/tlb"
)

// Vkey is a virtual protection key (unlimited).
type Vkey uint64

// Reserved hardware keys: pkey 0 is the default domain; pkey 1 stands in
// for PROT_NONE-disabled pages (the substrate models page disabling as an
// access-never domain tag). Keys 2..15 are allocatable.
const (
	protNonePdom = pagetable.Pdom(1)
	firstPkey    = 2
	numPkeys     = 16
)

// UsableKeys is the number of hardware keys the cache can hand out.
const UsableKeys = numPkeys - firstPkey

// Errors.
var (
	// ErrNoFreeKey is returned in direct (non-simulated) mode when every
	// hardware key is in use and the caller would have to busy-wait.
	ErrNoFreeKey = errors.New("libmpk: all hardware keys in use")
	// ErrUnknownKey reports an unallocated vkey.
	ErrUnknownKey = errors.New("libmpk: unknown vkey")
)

// Stats breaks libmpk's overhead into the Figure 1 buckets.
type Stats struct {
	Evictions       uint64
	Shootdowns      uint64
	BusyWaits       uint64
	BusyWaitCycles  uint64 // virtual time spent waiting for a free key
	ShootdownCycles uint64 // initiator + receiver IPI/flush cycles
	MgmtCycles      uint64 // syscalls, per-page mprotect, cache metadata
}

// Emit publishes the stats as named metrics counters under the libmpk/
// prefix (see OBSERVABILITY.md for the catalogue).
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("libmpk/evictions", s.Evictions)
	emit("libmpk/shootdowns", s.Shootdowns)
	emit("libmpk/busy-waits", s.BusyWaits)
	emit("libmpk/busy-wait-cycles", s.BusyWaitCycles)
	emit("libmpk/shootdown-cycles", s.ShootdownCycles)
	emit("libmpk/mgmt-cycles", s.MgmtCycles)
}

type area struct {
	start  pagetable.VAddr
	length uint64
}

// PageMode selects how keys' memory is backed, matching the paper's
// Figure 7 configurations.
type PageMode int

const (
	// Page4K backs areas with 4 KiB pages: mprotect costs are per page.
	Page4K PageMode = iota
	// Huge2M backs areas with 2 MiB huge pages: mprotect touches one
	// PMD per 2 MiB, so evictions are far cheaper — until shootdowns
	// and serialization dominate.
	Huge2M
)

type keyMeta struct {
	areas   []area
	pkey    pagetable.Pdom
	mapped  bool
	perms   map[*kernel.Task]hw.Perm
	inUse   int // threads holding a non-AD permission
	lastUse uint64
}

type pkeySlot struct {
	vkey Vkey
	used bool
}

// Manager is one process's libmpk instance.
type Manager struct {
	proc   *kernel.Process
	params *cycles.Params

	nextVkey Vkey
	// keys is indexed by Vkey (dense: vkeys are allocated sequentially
	// from 1); freed keys leave a nil slot. The slice layout keeps
	// syncRegister — which scans every key on each pkey_set — off the
	// map iterator and in deterministic ascending-vkey order.
	keys  []*keyMeta
	pkeys [numPkeys]pkeySlot
	clock uint64

	// released wakes busy-waiting threads when a key's inUse count
	// drops to zero. Nil outside the discrete-event simulator.
	released *sim.Signal
	// lock serializes the key cache (libmpk guards its metadata and
	// eviction path with one global mutex). Nil outside the simulator.
	lock *sim.Resource

	mode PageMode

	// metrics, when non-nil, receives cycle attribution for every public
	// operation under the "libmpk" layer.
	metrics *metrics.Registry
	tap     tap.Tap

	// Stats is exported for the experiment harness.
	Stats Stats
}

// SetTap attaches a trace recorder; completed API calls arrive as
// unified tap.Events (OpPkeyAlloc/Free/Mprotect/Set). Pass nil (the
// default) to detach.
func (m *Manager) SetTap(t tap.Tap) { m.tap = t }

// tapOp forwards a completed call to the attached tap, if any.
func (m *Manager) tapOp(e tap.Event) {
	if m.tap != nil {
		m.tap(e)
	}
}

// tapTID extracts a task's id, tolerating the nil task direct mode uses.
func tapTID(t *kernel.Task) int {
	if t == nil {
		return 0
	}
	return t.TID()
}

// SetMetrics installs (or, with nil, removes) the registry that receives
// per-operation cycle attribution. libmpk attributes the full returned
// cost of each public call to ("libmpk", op); none of its costs route
// through the instrumented kernel paths, so there is no double counting.
func (m *Manager) SetMetrics(r *metrics.Registry) { m.metrics = r }

var _ mm.DomainResolver = (*Manager)(nil)

// Attach initializes libmpk for the process. If env is non-nil, PkeySet
// calls made with a sim process busy-wait on key contention instead of
// failing.
func Attach(proc *kernel.Process, env *sim.Env) *Manager {
	m := &Manager{
		proc:     proc,
		params:   proc.Kernel().Params(),
		nextVkey: 1,
	}
	if env != nil {
		m.released = env.NewSignal()
		m.lock = env.NewResource(1)
	}
	proc.AS().SetResolver(m)
	return m
}

// SetPageMode selects 4 KiB or 2 MiB huge-page backing for future cost
// accounting. Call before protecting memory.
func (m *Manager) SetPageMode(mode PageMode) { m.mode = mode }

// key returns the metadata of v, or nil for an unknown or freed vkey.
func (m *Manager) key(v Vkey) *keyMeta {
	if int(v) < len(m.keys) {
		return m.keys[v]
	}
	return nil
}

// setKey stores metadata at index v, growing the dense table as needed.
func (m *Manager) setKey(v Vkey, k *keyMeta) {
	for int(v) >= len(m.keys) {
		m.keys = append(m.keys, nil)
	}
	m.keys[v] = k
}

// LockWaitCycles returns the virtual time threads spent serialized on the
// global cache mutex (simulation mode only).
func (m *Manager) LockWaitCycles() uint64 {
	if m.lock == nil {
		return 0
	}
	return m.lock.WaitedCycles
}

// costUnits returns the number of mprotect-charged units for a byte
// length under the current page mode.
func (m *Manager) costUnits(length uint64) uint64 {
	if m.mode == Huge2M {
		return (length + pagetable.PMDSize - 1) / pagetable.PMDSize
	}
	return length / pagetable.PageSize
}

// PdomFor implements mm.DomainResolver: pages of a mapped vkey carry its
// hardware key; pages of an evicted vkey are disabled.
func (m *Manager) PdomFor(t *pagetable.Table, tag mm.Tag) (pagetable.Pdom, bool) {
	if tag == 0 {
		return 0, true
	}
	if k := m.key(Vkey(tag)); k != nil && k.mapped {
		return k.pkey, true
	}
	return 0, false
}

// AccessNever implements mm.DomainResolver.
func (m *Manager) AccessNever() pagetable.Pdom { return protNonePdom }

// metaCost is libmpk's user-space cache bookkeeping per API call,
// calibrated so a mapped-key pkey_set lands on Table 4's ~102 cycles.
func (m *Manager) metaCost() cycles.Cost { return 70 }

// apiCost is the entry cost of one libmpk call.
func (m *Manager) apiCost() cycles.Cost {
	c := m.params.CallReturn + m.metaCost()
	if !m.params.UserWritablePermReg {
		c += m.params.SyscallReturn
	}
	return c
}

// PkeyAlloc allocates a virtual key.
func (m *Manager) PkeyAlloc() (v Vkey, cost cycles.Cost) {
	defer func() {
		m.metrics.Attribute("libmpk", "pkey-alloc", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpPkeyAlloc, Dom: uint64(v), Cost: cost})
	}()
	v = m.nextVkey
	m.nextVkey++
	m.setKey(v, &keyMeta{perms: make(map[*kernel.Task]hw.Perm)})
	cost = m.apiCost() + m.params.SyscallReturn
	m.Stats.MgmtCycles += uint64(cost)
	return v, cost
}

// PkeyFree releases a virtual key called by task (its pages stay
// disabled).
func (m *Manager) PkeyFree(task *kernel.Task, v Vkey) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("libmpk", "pkey-free", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpPkeyFree, TID: tapTID(task), Dom: uint64(v), Cost: cost, Err: err})
	}()
	k := m.key(v)
	if k == nil {
		return m.apiCost(), ErrUnknownKey
	}
	cost = m.apiCost()
	if k.mapped {
		m.pkeys[k.pkey] = pkeySlot{}
		k.mapped = false
		cost += m.disablePages(task, k)
	}
	m.keys[v] = nil
	m.Stats.MgmtCycles += uint64(m.apiCost())
	return cost, nil
}

// PkeyMprotect assigns [addr, addr+length) to vkey v. The pages stay
// disabled until the vkey is activated by a pkey_set; activation binds the
// vkey to a hardware key, evicting or busy-waiting as needed.
func (m *Manager) PkeyMprotect(p *sim.Proc, task *kernel.Task, addr pagetable.VAddr, length uint64, v Vkey) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("libmpk", "pkey-mprotect", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpPkeyMprotect, TID: tapTID(task), Dom: uint64(v), Addr: addr, Len: length, Cost: cost, Err: err})
	}()
	k := m.key(v)
	if k == nil {
		return m.apiCost(), ErrUnknownKey
	}
	cost = m.apiCost() + m.params.SyscallReturn
	start := addr.PageAlign()
	end := (addr + pagetable.VAddr(length) + pagetable.PageSize - 1).PageAlign()
	if _, err := m.proc.AS().SetTag(addr, length, mm.Tag(v)); err != nil {
		return cost, err
	}
	k.areas = append(k.areas, area{start: start, length: uint64(end - start)})
	c := m.params.MprotectPerPage * cycles.Cost(m.costUnits(uint64(end-start)))
	cost += c
	m.Stats.MgmtCycles += uint64(m.apiCost() + m.params.SyscallReturn + c)
	return cost, nil
}

// PkeySet changes the calling thread's permission on v (pkey_set). If the
// vkey is not resident, the cache maps it, evicting an unused key or
// busy-waiting for one.
func (m *Manager) PkeySet(p *sim.Proc, task *kernel.Task, v Vkey, perm hw.Perm) (cost cycles.Cost, err error) {
	defer func() {
		m.metrics.Attribute("libmpk", "pkey-set", uint64(cost))
		m.tapOp(tap.Event{Op: tap.OpPkeySet, TID: tapTID(task), Dom: uint64(v), Perm: uint8(perm), Cost: cost, Err: err})
	}()
	k := m.key(v)
	if k == nil {
		return m.apiCost(), ErrUnknownKey
	}
	cost = m.apiCost()
	m.Stats.MgmtCycles += uint64(cost)

	old, hadOld := k.perms[task]
	wasAccessible := hadOld && old != hw.PermNone
	nowAccessible := perm != hw.PermNone

	if nowAccessible && !k.mapped {
		if p != nil && m.lock != nil {
			m.lock.Acquire(p, 1)
			c, err := m.mapKey(p, task, v, k)
			m.lock.Release(1)
			cost += c
			if err != nil {
				return cost, err
			}
		} else {
			c, err := m.mapKey(p, task, v, k)
			cost += c
			if err != nil {
				return cost, err
			}
		}
	}
	k.perms[task] = perm
	switch {
	case !wasAccessible && nowAccessible:
		k.inUse++
	case wasAccessible && !nowAccessible:
		k.inUse--
		if k.inUse == 0 && m.released != nil {
			m.released.Broadcast()
		}
	}
	m.clock++
	k.lastUse = m.clock
	m.syncRegister(task)
	cost += m.params.PermRegWrite
	return cost, nil
}

// Perm returns the thread's current permission on v.
func (m *Manager) Perm(task *kernel.Task, v Vkey) hw.Perm {
	if k := m.key(v); k != nil {
		return k.perms[task]
	}
	return hw.PermNone
}

// Mapped reports whether v currently holds a hardware key.
func (m *Manager) Mapped(v Vkey) bool {
	k := m.key(v)
	return k != nil && k.mapped
}

// mapKey binds v to a hardware key: a free one if available, otherwise the
// LRU key not in use by any thread (evicting it), otherwise the caller
// waits. The restore mprotect re-enables v's pages under the new key.
func (m *Manager) mapKey(p *sim.Proc, task *kernel.Task, v Vkey, k *keyMeta) (cycles.Cost, error) {
	var cost cycles.Cost
	for {
		// Free hardware key?
		for pk := firstPkey; pk < numPkeys; pk++ {
			if !m.pkeys[pk].used {
				cost += m.installKey(task, v, k, pagetable.Pdom(pk))
				return cost, nil
			}
		}
		// Evict the LRU key whose vkey no thread holds accessible.
		if victim := m.chooseVictim(); victim != 0 {
			vk := m.key(victim)
			pk := vk.pkey
			m.Stats.Evictions++
			cost += m.disablePages(task, vk)
			vk.mapped = false
			m.pkeys[pk] = pkeySlot{}
			cost += m.installKey(task, v, k, pk)
			return cost, nil
		}
		// Everything is in use: busy-wait for a release.
		if p == nil || m.released == nil {
			return cost, fmt.Errorf("%w: %d keys, all held", ErrNoFreeKey, UsableKeys)
		}
		m.Stats.BusyWaits++
		waited := m.released.Wait(p)
		m.Stats.BusyWaitCycles += waited
	}
}

func (m *Manager) chooseVictim() Vkey {
	var best Vkey
	var bestTS uint64
	for pk := firstPkey; pk < numPkeys; pk++ {
		if !m.pkeys[pk].used {
			continue
		}
		vk := m.key(m.pkeys[pk].vkey)
		if vk.inUse > 0 {
			continue
		}
		if best == 0 || vk.lastUse < bestTS {
			best = m.pkeys[pk].vkey
			bestTS = vk.lastUse
		}
	}
	return best
}

// installKey binds v to hardware key pk and restores its pages with an
// mprotect over every area (the second half of libmpk's eviction cost).
func (m *Manager) installKey(task *kernel.Task, v Vkey, k *keyMeta, pk pagetable.Pdom) cycles.Cost {
	m.pkeys[pk] = pkeySlot{vkey: v, used: true}
	k.pkey = pk
	k.mapped = true
	m.clock++
	k.lastUse = m.clock
	cost := m.retagAreas(k, pk)
	// Threads whose registers referenced the key under an old binding
	// are refreshed lazily on their next pkey_set; the restore mprotect
	// flushed stale translations already.
	if task != nil {
		cost += m.flushProcess(task, k)
	}
	return cost
}

// disablePages applies mprotect(PROT_NONE) to every page of the key and
// shoots down the TLBs of every core running the process.
func (m *Manager) disablePages(task *kernel.Task, k *keyMeta) cycles.Cost {
	cost := m.retagAreas(k, protNonePdom)
	if task != nil {
		cost += m.flushProcess(task, k)
	}
	return cost
}

// retagAreas rewrites the domain tag of every present page of the key in
// the process page table, charging the generic mprotect path.
func (m *Manager) retagAreas(k *keyMeta, pk pagetable.Pdom) cycles.Cost {
	shadow := m.proc.AS().Shadow()
	var units uint64
	for _, a := range k.areas {
		shadow.RetagRange(a.start, a.length, pk)
		units += m.costUnits(a.length)
	}
	c := m.params.SyscallReturn + m.params.MprotectPerPage*cycles.Cost(units)
	m.Stats.MgmtCycles += uint64(c)
	return c
}

// flushProcess performs the process-wide TLB shootdown that follows each
// libmpk mprotect: every core running any thread of the process flushes
// the process's translations.
func (m *Manager) flushProcess(task *kernel.Task, k *keyMeta) cycles.Cost {
	mach := m.proc.Kernel().Machine()
	targets := m.proc.RunningCores()
	asids := make([]tlb.ASID, 0, len(m.proc.Tasks()))
	for _, t := range m.proc.Tasks() {
		asids = append(asids, t.ASID())
	}
	rep := mach.Shootdown(task.CoreID(), targets, func(tb tlb.Cache) {
		for _, a := range asids {
			tb.FlushASID(a)
		}
	}, m.params.TLBFlushLocalAll)
	m.Stats.Shootdowns++
	// Remote cores service the IPI: charge their next scheduled burst.
	kern := m.proc.Kernel()
	for id := 0; id < mach.NumCores(); id++ {
		if id != task.CoreID() && targets.Has(id) {
			kern.AddPendingInterrupt(id, rep.ReceiverCycles)
		}
	}
	total := rep.InitiatorCycles + rep.ReceiverCycles*cycles.Cost(rep.RemoteCores)
	m.Stats.ShootdownCycles += uint64(total)
	return rep.InitiatorCycles
}

// syncRegister rebuilds the thread's permission register from its
// per-vkey permissions and the current key bindings.
func (m *Manager) syncRegister(task *kernel.Task) {
	var r hw.PermRegister
	r.SetRaw(hw.DenyAll())
	for _, k := range m.keys {
		if k == nil || !k.mapped {
			continue
		}
		if p, ok := k.perms[task]; ok {
			r.Set(uint8(k.pkey), p)
		}
	}
	task.SetSavedPerm(r.Raw())
}
