package backend

import (
	"hash/fnv"
	"sort"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// vdomBackend registers the VDom core (unlimited virtual domains over
// the 16 hardware keys via ASID-tagged VDSes, HLRU eviction).
type vdomBackend struct{}

func (vdomBackend) Name() string             { return "vdom" }
func (vdomBackend) Standalone(Spec) bool     { return false }
func (vdomBackend) Present(i *Instance) bool { return i.Manager != nil }
func (vdomBackend) Section() string          { return "core/manager" }
func (vdomBackend) ProcScoped() bool         { return true }

func (vdomBackend) Attach(inst *Instance, spec Spec) error {
	inst.Manager = core.Attach(inst.Proc, core.Policy{
		SecureGate:               spec.SecureGate,
		NoPMDOpt:                 spec.NoPMDOpt,
		StrictLRU:                spec.StrictLRU,
		RangeFlushThresholdPages: spec.FlushThreshold,
		DefaultNas:               spec.Nas,
	})
	return nil
}

func (vdomBackend) AttachTap(inst *Instance, t tap.Tap)            { inst.Manager.SetTap(t) }
func (vdomBackend) SetMetrics(inst *Instance, r *metrics.Registry) { inst.Manager.SetMetrics(r) }

func (vdomBackend) EmitEnd(inst *Instance, emit func(string, uint64)) {
	m := inst.Manager
	m.Stats.Emit(emit)
	emit("core/vdses", uint64(len(m.VDSes())))
	emit("core/domain-digest", domainDigest(m))
}

func (vdomBackend) Capture(inst *Instance, tableID func(*pagetable.Table) int) any {
	return inst.Manager.Snap(tableID)
}

func (vdomBackend) Restore(inst *Instance, decode func(any) error, table func(int) *pagetable.Table, task func(int) *kernel.Task) error {
	var ms core.ManagerSnap
	if err := decode(&ms); err != nil {
		return err
	}
	inst.Manager.LoadSnap(ms, table, task)
	return nil
}

func (vdomBackend) Ops(inst *Instance) DomainOps { return vdomOps{inst.Manager} }

// vdomOps adapts the VDom manager: domains are vdoms, per-thread setup
// is a VDR allocation, and activation is a VDR permission write.
type vdomOps struct{ m *core.Manager }

func (o vdomOps) Alloc(t *kernel.Task) (uint64, cycles.Cost, error) {
	d, cost := o.m.AllocVdom(false)
	return uint64(d), cost, nil
}

func (o vdomOps) Free(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.FreeVdom(core.VdomID(id))
}

func (o vdomOps) Protect(t *kernel.Task, addr pagetable.VAddr, length uint64, id uint64) (cycles.Cost, error) {
	return o.m.Mprotect(t, addr, length, core.VdomID(id))
}

func (o vdomOps) PrepareThread(t *kernel.Task, n int) (cycles.Cost, error) {
	return o.m.VdrAlloc(t, n)
}

func (o vdomOps) Activate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.WrVdr(t, core.VdomID(id), core.VPermReadWrite)
}

func (o vdomOps) Deactivate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.WrVdr(t, core.VdomID(id), core.VPermNone)
}

// domainDigest hashes the manager's live domain map: for each VDS (in id
// order) its id, resident thread count, and sorted vdom→pdom bindings.
// Two runs with identical digests ended with identical domain placement.
func domainDigest(m *core.Manager) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	vdses := append([]*core.VDS(nil), m.VDSes()...)
	sort.Slice(vdses, func(i, j int) bool { return vdses[i].ID() < vdses[j].ID() })
	for _, v := range vdses {
		put(uint64(v.ID()))
		put(uint64(v.NumThreads()))
		doms := v.MappedVdoms()
		sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
		for _, d := range doms {
			pd, _ := v.PdomOf(d)
			put(uint64(d))
			put(uint64(pd))
		}
	}
	return h.Sum64()
}
