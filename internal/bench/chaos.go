package bench

import (
	"fmt"
	"io"
	"sort"

	"vdom/internal/chaos"
)

// chaosSoakOps returns the soak length for the chaos report.
func (o Options) chaosSoakOps() int {
	if o.Quick {
		return 2000
	}
	return 10000
}

// Chaos runs the deterministic fault-injection soak and reports the
// injected faults, the recovery paths that absorbed them, and the
// cross-layer audit verdict. The run replays exactly from its seed.
func Chaos(w io.Writer, o Options) {
	ChaosSeed(w, o, 42)
}

// ChaosSeed is Chaos with a caller-chosen seed, for replaying a specific
// fault sequence.
func ChaosSeed(w io.Writer, o Options, seed uint64) {
	res := chaos.Soak(chaos.SoakConfig{
		Chaos: chaos.Config{
			Seed:           seed,
			DropIPI:        0.05,
			DelayIPI:       0.05,
			StaleTLB:       0.03,
			ASIDExhaustion: 0.02,
			ASIDLimit:      24,
			VDSAllocFail:   0.10,
			PdomExhaustion: 0.05,
			SpuriousFault:  0.02,
		},
		Ops:     o.chaosSoakOps(),
		Metrics: o.Metrics,
		Trace:   o.Trace,
	})
	o.Metrics.Add("bench/total-cycles", uint64(res.Cycles))

	t := &Table{
		Title: fmt.Sprintf("Chaos soak: %d ops, seed %d (replayable), all fault classes enabled",
			res.Ops, seed),
		Columns: []string{"event", "count"},
	}
	for _, k := range sortedKeys(res.Injected) {
		t.Row(k, fmt.Sprintf("%d", res.Injected[k]))
	}
	for _, k := range sortedKeys(res.Recovered) {
		t.Row(k, fmt.Sprintf("%d", res.Recovered[k]))
	}
	t.Row("asid generation rollovers", fmt.Sprintf("%d", res.ASIDRollovers))
	t.Row("audit passes", fmt.Sprintf("%d", res.Audits))
	t.Row("audit violations", fmt.Sprintf("%d", len(res.Violations)))
	t.Row("unrecovered faults", fmt.Sprintf("%d", len(res.Unrecovered)))
	t.Row("total cycles", fmt.Sprintf("%d", res.Cycles))
	o.Render(w, t)

	if len(res.Violations) == 0 && len(res.Unrecovered) == 0 {
		fmt.Fprintf(w, "\nverdict: COHERENT — every injected fault was absorbed by a degradation path\n")
	} else {
		fmt.Fprintf(w, "\nverdict: INCOHERENT\n")
		for _, v := range res.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		for _, u := range res.Unrecovered {
			fmt.Fprintf(w, "  unrecovered: %s\n", u)
		}
	}
}

// sortedKeys returns the map's keys in lexical order for stable output.
func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
