package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpState(t *testing.T) {
	f := x86Fixture(t)
	t1, t2 := f.proc.NewTask(0), f.proc.NewTask(1)
	if _, err := f.m.VdrAlloc(t1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.VdrAlloc(t2, 2); err != nil {
		t.Fatal(err)
	}
	d1, b1 := f.newVdomRegion(t, t1, 1, false)
	d2, b2 := f.newVdomRegion(t, t2, 1, false)
	grant(t, f.m, t1, d1, VPermReadWrite)
	grant(t, f.m, t2, d2, VPermRead)
	if _, err := t1.Access(b1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Access(b2, false); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	f.m.DumpState(&buf)
	out := buf.String()
	for _, want := range []string{
		"VDom state:", "VDS0", "pdom", "#thread",
		"thread 1:", "thread 2:", "FA", "WD", "stats:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Mapped vdoms show their pdom binding.
	if !strings.Contains(out, "@ pdom") {
		t.Errorf("dump missing pdom bindings:\n%s", out)
	}
}
