package hw

import "testing"

// FuzzPermRegister checks that arbitrary Set/SetRaw interleavings keep the
// register's field isolation intact.
func FuzzPermRegister(f *testing.F) {
	f.Add(uint64(0), []byte{1, 2, 3})
	f.Add(^uint64(0), []byte{0, 31, 15, 16})
	f.Fuzz(func(t *testing.T, raw uint64, tape []byte) {
		var r PermRegister
		r.SetRaw(raw)
		want := map[uint8]Perm{}
		for i := 0; i+1 < len(tape); i += 2 {
			d := tape[i] % MaxPdoms
			p := Perm(tape[i+1] % 3)
			r.Set(d, p)
			want[d] = p
		}
		for d, p := range want {
			if got := r.Get(d); got != p {
				t.Fatalf("pdom %d = %v, want %v (raw=%#x)", d, got, p, r.Raw())
			}
		}
		// Fields not in `want` must still decode to a valid Perm
		// consistent with Allows.
		for d := uint8(0); d < MaxPdoms; d++ {
			p := r.Get(d)
			if p.Allows(true) && !p.Allows(false) {
				t.Fatalf("pdom %d allows write but not read", d)
			}
		}
	})
}
