package workload

import (
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/libmpk"
)

func TestSystemString(t *testing.T) {
	names := map[System]string{
		Original: "original", VDom: "VDom", EPK: "EPK",
		Libmpk: "libmpk", VDomLowerbound: "lowerbound",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestClockAndCores(t *testing.T) {
	if ClockHz(cycles.X86) != 2.1e9 || ClockHz(cycles.ARM) != 1.2e9 {
		t.Error("clock rates wrong")
	}
	if DefaultCores(cycles.X86) != 52 || DefaultCores(cycles.ARM) != 4 {
		t.Error("core counts wrong")
	}
}

func TestEPKDomainsReuseFreedIDs(t *testing.T) {
	d := newEPKDomains(nil)
	a := d.alloc()
	b := d.alloc()
	d.release(a)
	if c := d.alloc(); c != a {
		t.Errorf("freed id not reused: got %d, want %d", c, a)
	}
	if b == a {
		t.Error("duplicate ids")
	}
}

// --- httpd (Figures 1 and 5) ---

func httpdRun(t *testing.T, sys System, clients int, bytes uint64) HttpdResult {
	t.Helper()
	return RunHttpd(HttpdConfig{
		Arch: cycles.X86, System: sys, Clients: clients,
		RequestsPerClient: 10, FileBytes: bytes,
	})
}

func TestHttpdVDomOverheadSmall(t *testing.T) {
	base := httpdRun(t, Original, 16, 1024)
	prot := httpdRun(t, VDom, 16, 1024)
	ov := float64(prot.Makespan)/float64(base.Makespan) - 1
	// Paper: ≤2.18% across sizes on X86.
	if ov < 0 || ov > 0.03 {
		t.Errorf("VDom httpd overhead = %.2f%%, want under 3%%", ov*100)
	}
	if prot.VDomStats.WrVdrCalls == 0 {
		t.Error("VDom run made no wrvdr calls")
	}
}

func TestHttpdOrderingMatchesFig5(t *testing.T) {
	base := httpdRun(t, Original, 24, 16384)
	vdom := httpdRun(t, VDom, 24, 16384)
	epk := httpdRun(t, EPK, 24, 16384)
	lm := httpdRun(t, Libmpk, 24, 16384)
	// Figure 5: original ≥ VDom > EPK > libmpk at high concurrency.
	if !(base.ReqPerSec >= vdom.ReqPerSec*0.999) {
		t.Errorf("original (%.0f) slower than VDom (%.0f)", base.ReqPerSec, vdom.ReqPerSec)
	}
	if !(vdom.ReqPerSec > epk.ReqPerSec) {
		t.Errorf("VDom (%.0f) not faster than EPK (%.0f)", vdom.ReqPerSec, epk.ReqPerSec)
	}
	if !(epk.ReqPerSec > lm.ReqPerSec) {
		t.Errorf("EPK (%.0f) not faster than libmpk (%.0f)", epk.ReqPerSec, lm.ReqPerSec)
	}
}

func TestHttpdThroughputScalesWithClients(t *testing.T) {
	lo := httpdRun(t, Original, 4, 1024)
	hi := httpdRun(t, Original, 32, 1024)
	if hi.ReqPerSec < 4*lo.ReqPerSec {
		t.Errorf("throughput did not scale: %.0f → %.0f req/s", lo.ReqPerSec, hi.ReqPerSec)
	}
	// Absolute calibration: ≈1.3×10⁴ req/s near saturation (paper Fig 5).
	sat := httpdRun(t, Original, 40, 1024)
	if sat.ReqPerSec < 8000 || sat.ReqPerSec > 22000 {
		t.Errorf("saturated throughput %.0f req/s, want ≈1.3×10⁴", sat.ReqPerSec)
	}
}

func TestHttpdFig1BreakdownShape(t *testing.T) {
	// Figure 1: libmpk overhead on 25-thread httpd is dominated by busy
	// waiting and TLB shootdowns, and grows with concurrency.
	cfg := func(clients int) HttpdConfig {
		return HttpdConfig{Arch: cycles.X86, System: Libmpk, Clients: clients,
			RequestsPerClient: 15, FileBytes: 16384, Workers: 25}
	}
	low := RunHttpd(cfg(4))
	high := RunHttpd(cfg(28))
	if high.LibmpkStats.BusyWaitCycles <= low.LibmpkStats.BusyWaitCycles {
		t.Error("busy waiting did not grow with concurrency")
	}
	if high.LibmpkStats.BusyWaitCycles < high.LibmpkStats.MgmtCycles {
		t.Error("busy waiting should dominate metadata management at high concurrency")
	}
	base := RunHttpd(HttpdConfig{Arch: cycles.X86, System: Original, Clients: 28,
		RequestsPerClient: 15, FileBytes: 16384, Workers: 25})
	ov := float64(high.Makespan)/float64(base.Makespan) - 1
	if ov < 0.10 {
		t.Errorf("libmpk overhead at 28 clients = %.1f%%, want substantial (paper ≈60%%)", ov*100)
	}
}

func TestHttpdARM(t *testing.T) {
	base := RunHttpd(HttpdConfig{Arch: cycles.ARM, System: Original, Clients: 8, RequestsPerClient: 5, FileBytes: 1024})
	prot := RunHttpd(HttpdConfig{Arch: cycles.ARM, System: VDom, Clients: 8, RequestsPerClient: 5, FileBytes: 1024})
	ov := float64(prot.Makespan)/float64(base.Makespan) - 1
	if ov < 0 || ov > 0.06 {
		t.Errorf("ARM VDom overhead = %.2f%%, want small (paper ≤2.65%%)", ov*100)
	}
	// Absolute calibration: ≈250 req/s at saturation on the Pi.
	sat := RunHttpd(HttpdConfig{Arch: cycles.ARM, System: Original, Clients: 24, RequestsPerClient: 5, FileBytes: 1024})
	if sat.ReqPerSec < 120 || sat.ReqPerSec > 500 {
		t.Errorf("ARM saturated throughput %.0f req/s, want ≈250", sat.ReqPerSec)
	}
}

// --- MySQL (Figure 6) ---

func TestMySQLVDomNearBaseline(t *testing.T) {
	base := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Original, Clients: 24, QueriesPerClient: 8})
	prot := RunMySQL(MySQLConfig{Arch: cycles.X86, System: VDom, Clients: 24, QueriesPerClient: 8})
	ov := float64(prot.Makespan)/float64(base.Makespan) - 1
	if ov < 0 || ov > 0.02 {
		t.Errorf("VDom MySQL overhead = %.2f%%, want well under 2%% (paper 0.47%%)", ov*100)
	}
}

func TestMySQLEPKTax(t *testing.T) {
	base := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Original, Clients: 24, QueriesPerClient: 8})
	epk := RunMySQL(MySQLConfig{Arch: cycles.X86, System: EPK, Clients: 24, QueriesPerClient: 8})
	ov := float64(epk.Makespan)/float64(base.Makespan) - 1
	if ov < 0.04 || ov > 0.11 {
		t.Errorf("EPK MySQL overhead = %.2f%%, want ≈7%% (paper 7.33%%)", ov*100)
	}
}

func TestMySQLLibmpkCapped(t *testing.T) {
	if r := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Libmpk, Clients: 20, QueriesPerClient: 4}); r.Supported {
		t.Error("libmpk claimed to support >14 concurrent clients")
	}
	r := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Libmpk, Clients: 8, QueriesPerClient: 8})
	if !r.Supported || r.QueriesPerS == 0 {
		t.Errorf("libmpk under 14 clients failed: %+v", r)
	}
}

func TestMySQLThroughputSaturates(t *testing.T) {
	r24 := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Original, Clients: 24, QueriesPerClient: 8})
	r48 := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Original, Clients: 48, QueriesPerClient: 8})
	if r48.QueriesPerS <= r24.QueriesPerS {
		t.Errorf("no scaling: %.0f → %.0f q/s", r24.QueriesPerS, r48.QueriesPerS)
	}
	if r48.QueriesPerS > 2.2*r24.QueriesPerS {
		t.Errorf("no saturation visible: %.0f → %.0f q/s", r24.QueriesPerS, r48.QueriesPerS)
	}
	// Absolute calibration: ≈5.5×10³ q/s at 48 clients (paper Fig 6).
	if r48.QueriesPerS < 3500 || r48.QueriesPerS > 8000 {
		t.Errorf("X86 throughput at 48 clients = %.0f q/s, want ≈5.5×10³", r48.QueriesPerS)
	}
}

// --- PMO String Replace (Figure 7) ---

func pmoOverhead(t *testing.T, cfg PMOConfig) float64 {
	t.Helper()
	base := cfg
	base.System = Original
	b := RunPMO(base)
	r := RunPMO(cfg)
	return float64(r.Makespan)/float64(b.Makespan) - 1
}

func TestPMOFig7Orderings(t *testing.T) {
	mk := func(sys System, mode PMOMode, lm libmpk.PageMode, threads int) PMOConfig {
		return PMOConfig{Arch: cycles.X86, System: sys, Mode: mode, LibmpkMode: lm,
			Threads: threads, OpsPerThread: 1200}
	}
	lower := pmoOverhead(t, mk(VDomLowerbound, PMOSwitch, 0, 4))
	swo := pmoOverhead(t, mk(VDom, PMOSwitch, 0, 4))
	ev := pmoOverhead(t, mk(VDom, PMOEvict, 0, 4))
	epk := pmoOverhead(t, mk(EPK, PMOSwitch, 0, 4))
	mpk2 := pmoOverhead(t, mk(Libmpk, PMOSwitch, libmpk.Huge2M, 4))
	mpk4 := pmoOverhead(t, mk(Libmpk, PMOSwitch, libmpk.Page4K, 4))

	// Paper averages: lowerbound 2.06%, VDS switch 7.03%, eviction
	// 16.21%, EPK 8.71%; libmpk far above and growing with threads.
	if lower > swo || swo > ev {
		t.Errorf("ordering broken: lower=%.1f%% switch=%.1f%% evict=%.1f%%",
			lower*100, swo*100, ev*100)
	}
	if swo < 0.04 || swo > 0.12 {
		t.Errorf("VDS switch overhead = %.1f%%, want ≈7%%", swo*100)
	}
	if ev < 0.10 || ev > 0.25 {
		t.Errorf("eviction overhead = %.1f%%, want ≈16%%", ev*100)
	}
	if epk < 0.04 || epk > 0.14 {
		t.Errorf("EPK overhead = %.1f%%, want ≈9%%", epk*100)
	}
	if mpk2 < ev {
		t.Errorf("libmpk 2M (%.1f%%) should exceed VDom eviction (%.1f%%)", mpk2*100, ev*100)
	}
	if mpk4 < 3*mpk2 {
		t.Errorf("libmpk 4K (%.1f%%) should dwarf 2M (%.1f%%)", mpk4*100, mpk2*100)
	}
}

func TestPMOLibmpkGrowsWithThreads(t *testing.T) {
	mk := func(threads int) PMOConfig {
		return PMOConfig{Arch: cycles.X86, System: Libmpk, LibmpkMode: libmpk.Huge2M,
			Threads: threads, OpsPerThread: 1200}
	}
	ov1 := pmoOverhead(t, mk(1))
	ov8 := pmoOverhead(t, mk(8))
	// Paper: 17.73% at 1 thread → 977.77% at 8.
	if ov1 < 0.10 || ov1 > 0.30 {
		t.Errorf("1-thread libmpk 2M overhead = %.1f%%, want ≈18%%", ov1*100)
	}
	if ov8 < 10*ov1 {
		t.Errorf("8-thread overhead (%.0f%%) did not explode vs 1-thread (%.0f%%)", ov8*100, ov1*100)
	}
}

func TestPMOVDomFlatAcrossThreads(t *testing.T) {
	mk := func(threads int) PMOConfig {
		return PMOConfig{Arch: cycles.X86, System: VDom, Mode: PMOSwitch,
			Threads: threads, OpsPerThread: 1200}
	}
	ov1 := pmoOverhead(t, mk(1))
	ov8 := pmoOverhead(t, mk(8))
	if ov8 > 2.5*ov1+0.02 {
		t.Errorf("VDom switch overhead grew with threads: %.1f%% → %.1f%%", ov1*100, ov8*100)
	}
}

func TestPMOARM(t *testing.T) {
	base := RunPMO(PMOConfig{Arch: cycles.ARM, System: Original, Threads: 2, OpsPerThread: 800})
	swo := RunPMO(PMOConfig{Arch: cycles.ARM, System: VDom, Mode: PMOSwitch, Threads: 2, OpsPerThread: 800})
	ev := RunPMO(PMOConfig{Arch: cycles.ARM, System: VDom, Mode: PMOEvict, Threads: 2, OpsPerThread: 800})
	ovS := float64(swo.Makespan)/float64(base.Makespan) - 1
	ovE := float64(ev.Makespan)/float64(base.Makespan) - 1
	// Paper: 6.15% (switch) and 13.31% (eviction) on ARM.
	if ovS > ovE {
		t.Errorf("ARM: switch (%.1f%%) should beat eviction (%.1f%%)", ovS*100, ovE*100)
	}
	if ovS < 0.02 || ovS > 0.15 {
		t.Errorf("ARM switch overhead = %.1f%%, want ≈6%%", ovS*100)
	}
}

// --- Table 4 patterns ---

func TestPatternTable4Shape(t *testing.T) {
	cell := func(sys PatternSystem, pat Pattern, n int) float64 {
		return RunPattern(PatternConfig{Arch: cycles.X86, System: sys, Pattern: pat, NumVdoms: n, Rounds: 5}).AvgCycles
	}
	// Within hardware capacity everything is a register write.
	if c := cell(PatternVDomSecure, Sequential, 3); c < 95 || c > 115 {
		t.Errorf("X86s seq 3 = %.0f, want ≈104", c)
	}
	if c := cell(PatternVDomFast, Sequential, 3); c < 62 || c > 76 {
		t.Errorf("X86f seq 3 = %.0f, want ≈69", c)
	}
	// Beyond capacity, switch-triggering costs a VDS switch per access.
	trig := cell(PatternVDomSecure, SwitchTriggering, 64)
	if trig < 450 || trig > 700 {
		t.Errorf("X86s trig 64 = %.0f, want ≈550-770", trig)
	}
	seq := cell(PatternVDomSecure, Sequential, 64)
	if seq >= trig {
		t.Errorf("seq (%.0f) not cheaper than trig (%.0f)", seq, trig)
	}
	// Eviction mode: thousands of cycles per activation beyond capacity.
	ev := cell(PatternVDomEvict, Sequential, 29)
	if ev < 900 || ev > 2200 {
		t.Errorf("X86e seq 29 = %.0f, want ≈1500", ev)
	}
	// libmpk collapses beyond capacity.
	lm := cell(PatternLibmpk, Sequential, 32)
	if lm < 22000 || lm > 40000 {
		t.Errorf("libmpk seq 32 = %.0f, want ≈30000", lm)
	}
	if fit := cell(PatternLibmpk, Sequential, 3); fit < 90 || fit > 120 {
		t.Errorf("libmpk seq 3 = %.0f, want ≈102", fit)
	}
	// EPK stays cheap sequentially, pays VMFUNC when triggered.
	etrig := cell(PatternEPK, SwitchTriggering, 64)
	eseq := cell(PatternEPK, Sequential, 64)
	if eseq > 250 || etrig < 600 {
		t.Errorf("EPK seq/trig 64 = %.0f/%.0f, want ≈162/830", eseq, etrig)
	}
}

func TestPatternVDomComparableToEPK(t *testing.T) {
	// §7.5: "switching VDS ... is faster than libmpk and comparable to
	// EPK".
	v := RunPattern(PatternConfig{Arch: cycles.X86, System: PatternVDomSecure, Pattern: SwitchTriggering, NumVdoms: 64, Rounds: 5}).AvgCycles
	e := RunPattern(PatternConfig{Arch: cycles.X86, System: PatternEPK, Pattern: SwitchTriggering, NumVdoms: 64, Rounds: 5}).AvgCycles
	l := RunPattern(PatternConfig{Arch: cycles.X86, System: PatternLibmpk, Pattern: SwitchTriggering, NumVdoms: 64, Rounds: 5}).AvgCycles
	if v > 2*e {
		t.Errorf("VDom trig (%.0f) not comparable to EPK (%.0f)", v, e)
	}
	if v > l/10 {
		t.Errorf("VDom trig (%.0f) not ≫ faster than libmpk (%.0f)", v, l)
	}
}

// --- Table 3 ---

func TestTable3Anchors(t *testing.T) {
	rows := Table3()
	want := map[string][2]float64{ // [X86, ARM], ±25%
		"empty API call return":           {6.7, 16.5},
		"empty syscall return":            {173.4, 268.3},
		"update PKRU or DACR":             {25.6, 18.1},
		"fast wrvdr API call return":      {68.8, 406},
		"secure wrvdr API call return":    {104, 406},
		"secure wrvdr with 4KB eviction":  {1639, 2274},
		"secure wrvdr with 64MB eviction": {8097, 11778},
		"secure wrvdr with VDS switch":    {583, 723},
	}
	got := map[string]Table3Row{}
	for _, r := range rows {
		got[r.Operation] = r
	}
	for op, w := range want {
		r, ok := got[op]
		if !ok {
			t.Errorf("missing row %q", op)
			continue
		}
		if r.X86 < w[0]*0.75 || r.X86 > w[0]*1.25 {
			t.Errorf("%s X86 = %.1f, paper %.1f (want ±25%%)", op, r.X86, w[0])
		}
		if r.ARM < w[1]*0.75 || r.ARM > w[1]*1.25 {
			t.Errorf("%s ARM = %.1f, paper %.1f (want ±25%%)", op, r.ARM, w[1])
		}
	}
	// 2MB eviction: the paper's inversion (2MB cheaper than 4KB) is a
	// measurement artefact we do not chase; require same magnitude.
	for _, r := range rows {
		if r.Operation == "secure wrvdr with 2MB eviction" {
			if r.X86 < 1200 || r.X86 > 2600 {
				t.Errorf("2MB eviction X86 = %.1f, want ≈1600-1900", r.X86)
			}
		}
	}
}

// --- Table 5 ---

func TestMemSyncGrowsWithVDSes(t *testing.T) {
	ov2, ok2 := MemSyncOverhead(cycles.X86, 2)
	ov8, ok8 := MemSyncOverhead(cycles.X86, 8)
	ov32, ok32 := MemSyncOverhead(cycles.X86, 32)
	if !ok2 || !ok8 || !ok32 {
		t.Fatal("X86 configurations must all be defined")
	}
	if !(ov2 < ov8 && ov8 < ov32) {
		t.Errorf("overhead not monotone: %.1f%% %.1f%% %.1f%%", ov2*100, ov8*100, ov32*100)
	}
	if ov2 < 0.02 || ov2 > 0.08 {
		t.Errorf("2-VDS overhead = %.1f%%, want ≈3.8%%", ov2*100)
	}
	if ov32 < 0.15 || ov32 > 0.90 {
		t.Errorf("32-VDS overhead = %.1f%%, want tens of percent (paper 56.1%%)", ov32*100)
	}
}

func TestMemSyncARMUndefinedBeyondCores(t *testing.T) {
	if _, ok := MemSyncOverhead(cycles.ARM, 8); ok {
		t.Error("ARM 8-VDS run should be undefined (4 cores)")
	}
	ov, ok := MemSyncOverhead(cycles.ARM, 2)
	if !ok || ov <= 0 {
		t.Errorf("ARM 2-VDS = (%.1f%%, %v)", ov*100, ok)
	}
}

// --- UnixBench (§7.3) ---

func TestUnixBenchNearBaseline(t *testing.T) {
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		for _, parallel := range []bool{false, true} {
			r := RunUnixBench(arch, parallel)
			if r.Index < 97.0 || r.Index > 102.0 {
				t.Errorf("%v parallel=%v index = %.1f%%, paper reports 98.5-101.8%%",
					arch, parallel, r.Index)
			}
			for _, s := range r.Scores {
				if s.Relative < 93 || s.Relative > 102 {
					t.Errorf("%v %s = %.1f%%, implausible", arch, s.Test, s.Relative)
				}
			}
		}
	}
}

// --- LTP (§7.1) ---

func TestLTPPassesOnBothKernels(t *testing.T) {
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		for _, vdomOn := range []bool{false, true} {
			r := RunLTP(arch, vdomOn)
			if r.Failed != 0 {
				t.Errorf("%v vdom=%v: %d failures: %v", arch, vdomOn, r.Failed, r.Failures)
			}
			if r.Passed < 15 {
				t.Errorf("%v vdom=%v: only %d cases ran", arch, vdomOn, r.Passed)
			}
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := RunHttpd(HttpdConfig{Arch: cycles.X86, System: Libmpk, Clients: 12, RequestsPerClient: 5, FileBytes: 16384})
	b := RunHttpd(HttpdConfig{Arch: cycles.X86, System: Libmpk, Clients: 12, RequestsPerClient: 5, FileBytes: 16384})
	if a.Makespan != b.Makespan || a.LibmpkStats != b.LibmpkStats {
		t.Error("httpd run not reproducible")
	}
	p1 := RunPMO(PMOConfig{Arch: cycles.X86, System: VDom, Mode: PMOEvict, Threads: 4, OpsPerThread: 500})
	p2 := RunPMO(PMOConfig{Arch: cycles.X86, System: VDom, Mode: PMOEvict, Threads: 4, OpsPerThread: 500})
	if p1.Makespan != p2.Makespan {
		t.Error("PMO run not reproducible")
	}
}

func TestHttpdKeepAliveAmortizesHandshakes(t *testing.T) {
	mk := func(sys System, keepAlive bool) HttpdResult {
		return RunHttpd(HttpdConfig{Arch: cycles.X86, System: sys, Clients: 8,
			RequestsPerClient: 20, FileBytes: 16384, KeepAlive: keepAlive})
	}
	base := mk(Original, true)
	prot := mk(VDom, true)
	// Keep-alive throughput far exceeds per-request connections (the
	// handshake amortizes over 20 transfers).
	perReq := mk(Original, false)
	if base.ReqPerSec < 4*perReq.ReqPerSec {
		t.Errorf("keep-alive %f req/s not ≫ per-request %f", base.ReqPerSec, perReq.ReqPerSec)
	}
	// VDom's relative overhead stays small under keep-alive too.
	ov := float64(prot.Makespan)/float64(base.Makespan) - 1
	if ov < 0 || ov > 0.05 {
		t.Errorf("VDom keep-alive overhead = %.2f%%", ov*100)
	}
}

func TestPMOShapeStableAcrossSeeds(t *testing.T) {
	// The Figure 7 orderings must not depend on the RNG seed.
	for _, seed := range []uint64{1, 777, 424242} {
		base := RunPMO(PMOConfig{Arch: cycles.X86, System: Original, Threads: 4, OpsPerThread: 800, Seed: seed})
		sw := RunPMO(PMOConfig{Arch: cycles.X86, System: VDom, Mode: PMOSwitch, Threads: 4, OpsPerThread: 800, Seed: seed})
		ev := RunPMO(PMOConfig{Arch: cycles.X86, System: VDom, Mode: PMOEvict, Threads: 4, OpsPerThread: 800, Seed: seed})
		ovS := float64(sw.Makespan)/float64(base.Makespan) - 1
		ovE := float64(ev.Makespan)/float64(base.Makespan) - 1
		if !(ovS < ovE) {
			t.Errorf("seed %d: switch (%.1f%%) not cheaper than evict (%.1f%%)", seed, ovS*100, ovE*100)
		}
		if ovS < 0.03 || ovS > 0.15 || ovE < 0.08 || ovE > 0.30 {
			t.Errorf("seed %d: overheads out of band: %.1f%% / %.1f%%", seed, ovS*100, ovE*100)
		}
	}
}

func TestPMOOnPowerProjection(t *testing.T) {
	// With 30 usable domains per VDS, the 64-PMO working set needs only
	// 3 address spaces; switch-mode overhead drops below the 16-domain
	// hardware's.
	base := RunPMO(PMOConfig{Arch: cycles.Power, System: Original, Threads: 2, OpsPerThread: 800})
	sw := RunPMO(PMOConfig{Arch: cycles.Power, System: VDom, Mode: PMOSwitch, Threads: 2, OpsPerThread: 800})
	ov := float64(sw.Makespan)/float64(base.Makespan) - 1
	if ov < 0 || ov > 0.25 {
		t.Errorf("Power PMO switch overhead = %.1f%%", ov*100)
	}
	x86sw := RunPMO(PMOConfig{Arch: cycles.X86, System: VDom, Mode: PMOSwitch, Threads: 2, OpsPerThread: 800})
	x86base := RunPMO(PMOConfig{Arch: cycles.X86, System: Original, Threads: 2, OpsPerThread: 800})
	x86ov := float64(x86sw.Makespan)/float64(x86base.Makespan) - 1
	// Fewer cross-space misses on Power: switch counts must be lower.
	if sw.VDomStats.VDSSwitches >= x86sw.VDomStats.VDSSwitches {
		t.Errorf("Power switches (%d) not fewer than X86 (%d)",
			sw.VDomStats.VDSSwitches, x86sw.VDomStats.VDSSwitches)
	}
	_ = x86ov
}

func TestMySQLConnectionChurn(t *testing.T) {
	base := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Original, Clients: 8, QueriesPerClient: 12})
	steady := RunMySQL(MySQLConfig{Arch: cycles.X86, System: VDom, Clients: 8, QueriesPerClient: 12})
	churn := RunMySQL(MySQLConfig{Arch: cycles.X86, System: VDom, Clients: 8, QueriesPerClient: 12, ChurnEvery: 3})
	// Churn adds work but must stay a small fraction (the paper's
	// thread-cache path is cheap under VDom: freed vdoms release their
	// pdoms immediately).
	ovSteady := float64(steady.Makespan)/float64(base.Makespan) - 1
	ovChurn := float64(churn.Makespan)/float64(base.Makespan) - 1
	if ovChurn < ovSteady {
		t.Errorf("churn (%f) cheaper than steady (%f)?", ovChurn, ovSteady)
	}
	if ovChurn > 0.02 {
		t.Errorf("churn overhead = %.2f%%, want under 2%%", ovChurn*100)
	}
	// libmpk churns too (under its client cap).
	lm := RunMySQL(MySQLConfig{Arch: cycles.X86, System: Libmpk, Clients: 8, QueriesPerClient: 12, ChurnEvery: 3})
	if !lm.Supported || lm.QueriesPerS == 0 {
		t.Errorf("libmpk churn run failed: %+v", lm)
	}
}

func TestCtxSwitchCyclesMatchPaper(t *testing.T) {
	vanilla, vdomProc, vds := CtxSwitchCycles(cycles.X86)
	if vanilla < 400 || vanilla > 450 {
		t.Errorf("vanilla switch_mm = %.0f, want ≈426", vanilla)
	}
	slow := vdomProc/vanilla - 1
	if slow < 0.05 || slow > 0.07 {
		t.Errorf("VDom slowdown = %.2f%%, want ≈6%%", slow*100)
	}
	if vds < 730 || vds > 820 {
		t.Errorf("VDS switch = %.0f, want ≈771.7", vds)
	}
	va, vp, vv := CtxSwitchCycles(cycles.ARM)
	if vp/va-1 < 0.07 || vp/va-1 > 0.085 {
		t.Errorf("ARM slowdown = %.2f%%, want ≈7.63%%", (vp/va-1)*100)
	}
	if vv < 1460 || vv > 1630 {
		t.Errorf("ARM VDS switch = %.0f, want ≈1545", vv)
	}
}

func TestPatternStrings(t *testing.T) {
	if Sequential.String() != "seq" || SwitchTriggering.String() != "trig" {
		t.Error("Pattern strings wrong")
	}
	names := map[PatternSystem]string{
		PatternVDomSecure: "VDom-secure", PatternVDomFast: "VDom-fast",
		PatternVDomEvict: "VDom-evict", PatternLibmpk: "libmpk", PatternEPK: "EPK",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if PatternSystem(99).String() == "" || System(99).String() == "" {
		t.Error("unknown values must still print")
	}
}
