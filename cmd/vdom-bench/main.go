// Command vdom-bench regenerates the tables and figures of the VDom
// paper's evaluation section on the simulated platform.
//
// Usage:
//
//	vdom-bench [-quick] [-format text|csv] [-seed N] [-parallel N]
//	           [-metrics out.json] [-trace-out out.trace.json]
//	           [-trace-dir DIR] [-divergence-out out.json]
//	           [-soak-report out.json] [-trace-dump DIR]
//	           [-kernel NAME] [-scenario FILE]
//	           [-snap FILE] [-tail FILE] [-timeout D]
//	           [-duration D] [-shards N] [-ops-per-shard N]
//	           [-checkpoint-every N] [-ring N] [-ring-dir DIR]
//	           [-max-retries N] [-crash-every N] [-crash-kind KIND]
//	           [-snap-write-fail P] [-snap-corrupt P]
//	           [-health-out FILE] [-health-every D]
//	           [-require-recoveries N] [-perf-out FILE] [-against FILE]
//	           [-perf-threshold F] [-fleet N] [-fleet-report FILE]
//	           [-fleet-faults SPEC] [-fleet-kill N]
//	           [-fleet-cell-timeout D] [experiment]
//
// Experiments: fig1, table1, table2, table3, table4, table5, tables, fig5,
// fig6, fig7, unixbench, ctxswitch, ablation, matrix, chaos, snapshot,
// serve, recover, record, replay, scenario, perf, compare, all (default).
// The `worker` subcommand is not an experiment: it serves the
// vdom-fleet/v1 worker protocol on stdin/stdout for a coordinating
// vdom-bench process and is normally spawned by -fleet, never by hand.
//
// -fleet N shards every distributable experiment grid across N worker
// subprocesses (this binary re-exec'd as `vdom-bench worker`) instead of
// the in-process pool; rendered output stays byte-identical to any
// -parallel run — worker death (kill -9, panic, heartbeat stall past
// -fleet-cell-timeout) is absorbed by reassignment with bounded retries,
// and cells that fail persistently are quarantined and reported.
// -fleet-report writes the machine-readable vdom-fleet-report/v1 outcome;
// the run exits non-zero only when the quarantine list is non-empty.
// -fleet-faults enables the seeded transport-fault injector (e.g.
// "seed=42,corrupt=0.01,truncate=0.005,duplicate=0.01,delay=0.05") and
// -fleet-kill N SIGKILLs one busy worker after N merged cells — both are
// CI chaos hooks that must not change a byte of output. With -fleet, a
// -require-recoveries N asserts the fleet self-healed at least N times.
// See FLEET.md for the frame spec and the recovery ladder.
//
// `scenario` runs a declared vdom-scenario/v1 workload (see SCENARIOS.md):
// -scenario names the spec file, -kernel narrows the kernel sweep to one
// registered backend (default: the spec's kernel set, else every
// registered backend), and -trace-dir captures each cell's vdom-trace/v1
// recording. `serve -scenario` schedules the spec as a supervised fleet,
// taking the fleet shape from the spec's crash stanza and the fault mix
// from its first faulted phase; explicit serve flags win over the stanza.
//
// `perf` runs the fixed performance suite (internal/perf, PERFORMANCE.md):
// four machine-normalized rates written as a vdom-perf/v1 JSON report to
// -perf-out (stdout when unset). With -against, the normalized rates are
// diffed against a committed baseline (the repository pins BENCH_7.json)
// and the run exits non-zero if any benchmark dropped by more than
// -perf-threshold (default 15%). -quick cuts repetitions for a CI smoke
// run without changing what one iteration measures.
//
// `record` re-records the domain-op trace corpus (one scaled-down run per
// paper workload and kernel kind, see REPLAY.md) into -trace-dir; `replay`
// re-executes every trace there and verifies the runs are bit-identical
// to their recordings, exiting non-zero on divergence. The chaos and
// snapshot experiments accept -soak-report and -trace-dump to archive a
// JSON soak report and failing shards' replayable trace dumps; `snapshot`
// additionally dumps reproducer checkpoints, and `recover` re-runs a
// recovery standalone from a -snap checkpoint plus -tail trace (see
// RECOVERY.md). -timeout bounds chaos, snapshot, and serve by wall
// clock: chaos and snapshot exit non-zero if the budget expires mid-run,
// while serve treats expiry like SIGTERM and drains gracefully.
//
// `serve` runs the supervised soak service (see RECOVERY.md): a fleet of
// crash-soaking shards under continuous supervision, each with a rolling
// on-disk checkpoint ring (-ring entries, one checkpoint every
// -checkpoint-every ops), seeded crash injection (-crash-every,
// -crash-kind), harness pressure (-snap-write-fail, -snap-corrupt),
// automatic watchdog/audit detection, retry/backoff recovery
// (quarantining a shard after -max-retries consecutive failures), and a
// periodic JSON health report (-health-out, -health-every). The run is
// bounded by -duration, -ops-per-shard, or -timeout; SIGTERM/SIGINT
// drains gracefully, checkpointing every shard before exit.
// -require-recoveries N makes CI assert the service actually self-healed
// at least N times.
//
// -parallel N fans the experiment grids out across N worker goroutines,
// one isolated simulated System per cell; it defaults to runtime.NumCPU().
// Output is byte-identical for every -parallel value — the flag trades
// wall-clock time only.
//
// With -metrics, the instrumented experiments (table4, chaos) publish
// their counters, per-(layer, operation) cycle attribution, and
// domain-activation cost histograms into a registry written as JSON when
// the run finishes. With -trace-out, the same experiments emit a Chrome
// trace-event file loadable in Perfetto (https://ui.perfetto.dev). Both
// flags are observation-only: the rendered tables are byte-identical with
// or without them. See OBSERVABILITY.md for the metric catalogue and the
// snapshot schema.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vdom"
	"vdom/internal/bench"
	"vdom/internal/fleet"
	"vdom/internal/metrics"
	"vdom/internal/perf"
)

// registeredKernel reports whether name is a registered kernel backend.
func registeredKernel(name string) bool {
	for _, k := range vdom.Kernels() {
		if k == name {
			return true
		}
	}
	return false
}

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts for a fast run")
	format := flag.String("format", "text", "output format: text or csv")
	seed := flag.Uint64("seed", 42, "PRNG seed for the chaos and snapshot experiments (replayable)")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot (counters, cycle attribution, histograms) to this JSON file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (load at ui.perfetto.dev) to this path")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the experiment grids (output is byte-identical for any value)")
	traceDir := flag.String("trace-dir", "", "trace corpus directory for record/replay (default testdata/traces)")
	divergenceOut := flag.String("divergence-out", "", "replay: write a JSON divergence report to this file")
	soakReport := flag.String("soak-report", "", "chaos/snapshot: write a machine-readable JSON soak report to this file")
	kernelName := flag.String("kernel", "", "kernel backend: narrows the scenario sweep to one registered kernel; selects the chaos soak driver (vdom or dpti, default vdom)")
	scenarioPath := flag.String("scenario", "", "scenario/serve: the vdom-scenario/v1 spec file to run (see SCENARIOS.md)")
	traceDump := flag.String("trace-dump", "", "chaos/snapshot: dump failing shards' replayable traces (and reproducer checkpoints) into this directory")
	snapPath := flag.String("snap", "", "recover: the vdom-snap/v1 checkpoint to restore")
	tailPath := flag.String("tail", "", "recover: the recorded trace whose tail rolls the checkpoint forward")
	timeout := flag.Duration("timeout", 0, "wall-clock budget: expiry cancels chaos/snapshot between ops (non-zero exit) and drains serve gracefully")
	duration := flag.Duration("duration", 0, "serve: run length in wall-clock time (0 with -ops-per-shard 0: until SIGTERM or -timeout)")
	shards := flag.Int("shards", 0, "serve: fleet width (0: default 4)")
	opsPerShard := flag.Int("ops-per-shard", 0, "serve: op budget per shard (0: unbounded)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "serve: rolling-checkpoint cadence in ops (0: default 250)")
	ring := flag.Int("ring", 0, "serve: checkpoint-ring capacity per shard (0: default 4)")
	ringDir := flag.String("ring-dir", "", "serve: directory for the checkpoint rings (default: a temp dir, removed on exit)")
	maxRetries := flag.Int("max-retries", 0, "serve: consecutive recovery failures before a shard is quarantined (0: default 3)")
	crashEvery := flag.Int("crash-every", 0, "serve: mean ops between injected crash faults (0: none)")
	crashKind := flag.String("crash-kind", "all", "serve: injected crash fault: core-crash, kernel-panic, torn-domain-map, or all")
	snapWriteFail := flag.Float64("snap-write-fail", 0, "serve: probability a checkpoint write fails transiently")
	snapCorrupt := flag.Float64("snap-corrupt", 0, "serve: probability a written checkpoint corrupts on disk (caught by CRC at recovery)")
	healthOut := flag.String("health-out", "", "serve: write the JSON health report here (rewritten every -health-every, finalized on exit)")
	healthEvery := flag.Duration("health-every", 5*time.Second, "serve: health report cadence")
	requireRecoveries := flag.Int("require-recoveries", 0, "serve: fail unless at least this many recoveries completed (CI self-healing assertion)")
	fleetN := flag.Int("fleet", 0, "shard experiment grids across N vdom-bench worker subprocesses (0: in-process pool; output stays byte-identical, see FLEET.md)")
	fleetReport := flag.String("fleet-report", "", "fleet: write the machine-readable vdom-fleet-report/v1 JSON to this file")
	fleetFaults := flag.String("fleet-faults", "", "fleet: seeded transport-fault injection spec, e.g. seed=42,corrupt=0.01,truncate=0.005,duplicate=0.01,delay=0.05")
	fleetKill := flag.Int("fleet-kill", 0, "fleet: chaos hook — SIGKILL one busy worker after N merged cells (0: off)")
	fleetCellTimeout := flag.Duration("fleet-cell-timeout", 0, "fleet: reassign a cell whose worker heartbeat stalls this long (0: default 60s)")
	perfOut := flag.String("perf-out", "", "perf: write the vdom-perf/v1 report to this file (default: stdout)")
	against := flag.String("against", "", "perf: compare against this committed vdom-perf/v1 baseline (e.g. BENCH_7.json), exiting non-zero on regression")
	perfThreshold := flag.Float64("perf-threshold", 0.15, "perf: normalized-rate drop beyond which -against fails")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vdom-bench [flags] [experiment]\n\n")
		fmt.Fprintf(os.Stderr, "flags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		fmt.Fprintf(os.Stderr, "  fig1       libmpk overhead breakdown on httpd (Figure 1)\n")
		fmt.Fprintf(os.Stderr, "  table1     the VDom API surface (Table 1)\n")
		fmt.Fprintf(os.Stderr, "  table2     ported sandbox defenses (Table 2)\n")
		fmt.Fprintf(os.Stderr, "  table3     cycles of common operations (Table 3)\n")
		fmt.Fprintf(os.Stderr, "  table4     domain access patterns (Table 4)\n")
		fmt.Fprintf(os.Stderr, "  table5     memory synchronization across VDSes (Table 5)\n")
		fmt.Fprintf(os.Stderr, "  tables     the full table grid: Tables 3, 4, and 5\n")
		fmt.Fprintf(os.Stderr, "  fig5       httpd throughput (Figure 5)\n")
		fmt.Fprintf(os.Stderr, "  fig6       MySQL throughput (Figure 6)\n")
		fmt.Fprintf(os.Stderr, "  fig7       PMO String Replace overheads (Figure 7)\n")
		fmt.Fprintf(os.Stderr, "  unixbench  kernel impact on non-VDom programs (§7.3)\n")
		fmt.Fprintf(os.Stderr, "  ctxswitch  context switch costs (§7.5)\n")
		fmt.Fprintf(os.Stderr, "  ablation   design-choice ablations\n")
		fmt.Fprintf(os.Stderr, "  matrix     kernel x arch activation-cost matrix over every registered backend\n")
		fmt.Fprintf(os.Stderr, "  chaos      seeded fault-injection soak with audit summary (-seed to replay)\n")
		fmt.Fprintf(os.Stderr, "  snapshot   crash-fault soak: checkpoint, crash, restore + tail replay, bit-identity verdict (-seed)\n")
		fmt.Fprintf(os.Stderr, "  serve      supervised soak service: rolling checkpoints, crash injection, self-healing recovery (-duration, -shards, ...)\n")
		fmt.Fprintf(os.Stderr, "  recover    standalone recovery from a -snap checkpoint and -tail trace reproducer\n")
		fmt.Fprintf(os.Stderr, "  record     record the domain-op trace corpus to -trace-dir\n")
		fmt.Fprintf(os.Stderr, "  replay     replay every trace under -trace-dir, verifying bit-identical behaviour\n")
		fmt.Fprintf(os.Stderr, "  scenario   run a declared vdom-scenario/v1 workload (-scenario FILE, -kernel, -trace-dir; see SCENARIOS.md)\n")
		fmt.Fprintf(os.Stderr, "  perf       fixed perf suite: machine-normalized vdom-perf/v1 report, optional -against baseline diff\n")
		fmt.Fprintf(os.Stderr, "  compare    measured-vs-paper deviation report\n")
		fmt.Fprintf(os.Stderr, "  all        everything (default)\n")
		fmt.Fprintf(os.Stderr, "\nsubcommands:\n")
		fmt.Fprintf(os.Stderr, "  worker     serve the vdom-fleet/v1 worker protocol on stdin/stdout (spawned by -fleet)\n")
	}
	flag.Parse()

	if bad := nonpositiveWidthFlags(flag.CommandLine); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "vdom-bench: -%s must be positive when set\n", strings.Join(bad, ", -"))
		flag.Usage()
		os.Exit(2)
	}

	f, err := bench.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdom-bench:", err)
		os.Exit(2)
	}
	if *kernelName != "" && !registeredKernel(*kernelName) {
		fmt.Fprintln(os.Stderr, "vdom-bench:",
			&vdom.UnknownKernelError{Name: *kernelName, Known: vdom.Kernels()})
		os.Exit(2)
	}
	o := bench.Options{
		Quick: *quick, Format: f, Parallel: *parallel,
		TraceDir: *traceDir, DivergenceOut: *divergenceOut,
		SoakReport: *soakReport, TraceDump: *traceDump,
		SnapPath: *snapPath, TailPath: *tailPath,
		Kernel: *kernelName, Scenario: *scenarioPath,
	}
	if *metricsOut != "" {
		o.Metrics = metrics.New()
	}
	if *traceOut != "" {
		o.Trace = metrics.NewTrace()
	}
	o.Serve = bench.ServeOptions{
		Duration: *duration, Shards: *shards, OpsPerShard: *opsPerShard,
		CheckpointEvery: *checkpointEvery, Ring: *ring, RingDir: *ringDir,
		MaxRetries: *maxRetries, CrashEvery: *crashEvery, CrashKind: *crashKind,
		SnapWriteFail: *snapWriteFail, SnapCorrupt: *snapCorrupt,
		HealthOut: *healthOut, HealthEvery: *healthEvery,
		RequireRecoveries: *requireRecoveries,
	}
	exp := "all"
	if flag.NArg() > 0 {
		exp = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		// Catch `vdom-bench chaos -seed 7`: flag parsing stops at the
		// first positional argument, so trailing flags would be silently
		// ignored — fail loudly instead.
		fmt.Fprintf(os.Stderr, "vdom-bench: unexpected arguments after %q: %v (flags go before the experiment: vdom-bench -seed 7 chaos)\n", exp, flag.Args()[1:])
		os.Exit(2)
	}
	// -timeout bounds the long-running experiments by wall clock; serve
	// additionally drains gracefully on SIGTERM/SIGINT, checkpointing
	// every shard before exit.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if exp == "serve" {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	o.Ctx = ctx

	if exp == "worker" {
		// Serve the fleet worker protocol: assignments in on stdin, results
		// out on stdout, everything human on stderr. The worker id arrives
		// in the environment from the coordinator's spawn.
		id := 0
		if s := os.Getenv("VDOM_FLEET_WORKER"); s != "" {
			id, _ = strconv.Atoi(s)
		}
		if err := fleet.Worker(os.Stdin, os.Stdout, fleet.WorkerConfig{ID: id},
			bench.Executor(bench.Options{Ctx: ctx})); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: worker:", err)
			os.Exit(1)
		}
		return
	}

	var fleetRun *bench.FleetRun
	if *fleetN > 0 && exp != "serve" {
		faults, err := parseFleetFaults(*fleetFaults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench:", err)
			os.Exit(2)
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: locating worker binary:", err)
			os.Exit(1)
		}
		fleetRun = &bench.FleetRun{
			Workers:     *fleetN,
			Spawn:       fleet.SpawnProcess([]string{exe, "worker"}),
			Faults:      faults,
			CellTimeout: *fleetCellTimeout,
			KillAfter:   *fleetKill,
			Logf: func(format string, args ...any) {
				// Coordinator lines already carry a "fleet:" prefix.
				fmt.Fprintf(os.Stderr, "vdom-bench: "+format+"\n", args...)
			},
		}
		o.FleetRun = fleetRun
	}

	w := os.Stdout
	switch exp {
	case "fig1":
		bench.Fig1(w, o)
	case "table1":
		bench.Table1(w, o)
	case "table2":
		bench.Table2(w, o)
	case "table3":
		bench.Table3Opts(w, o)
	case "table4":
		bench.Table4(w, o)
	case "table5":
		bench.Table5Opts(w, o)
	case "tables":
		bench.Tables(w, o)
	case "fig5":
		bench.Fig5(w, o)
	case "fig6":
		bench.Fig6(w, o)
	case "fig7":
		bench.Fig7(w, o)
	case "unixbench":
		bench.UnixBenchOpts(w, o)
	case "ctxswitch":
		bench.CtxSwitchOpts(w, o)
	case "ablation":
		bench.Ablations(w, o)
	case "matrix":
		bench.Matrix(w, o)
	case "chaos":
		if err := bench.ChaosSeed(w, o, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: chaos artifacts:", err)
			os.Exit(1)
		}
	case "snapshot":
		if err := bench.SnapshotSoak(w, o, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: snapshot:", err)
			os.Exit(1)
		}
	case "serve":
		if err := bench.Serve(w, o, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: serve:", err)
			os.Exit(1)
		}
	case "recover":
		if err := bench.Recover(w, o); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: recover:", err)
			os.Exit(1)
		}
	case "record":
		if err := bench.Record(w, o); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: record:", err)
			os.Exit(1)
		}
	case "replay":
		diverged, err := bench.Replay(w, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: replay:", err)
			os.Exit(1)
		}
		if diverged > 0 {
			os.Exit(1)
		}
	case "scenario":
		if err := bench.Scenario(w, o); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: scenario:", err)
			os.Exit(1)
		}
	case "perf":
		if err := runPerf(w, *quick, *perfOut, *against, *perfThreshold); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: perf:", err)
			os.Exit(1)
		}
	case "compare":
		bench.Compare(w, o)
	case "all":
		bench.All(w, o)
	default:
		fmt.Fprintf(os.Stderr, "vdom-bench: unknown experiment %q\n", exp)
		flag.Usage()
		os.Exit(2)
	}

	if *metricsOut != "" {
		if err := writeFile(*metricsOut, o.Metrics.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: writing metrics:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, o.Trace.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "vdom-bench: writing trace:", err)
			os.Exit(1)
		}
	}
	if fleetRun != nil {
		rep := fleetRun.Report()
		if *fleetReport != "" {
			if err := writeFile(*fleetReport, rep.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, "vdom-bench: writing fleet report:", err)
				os.Exit(1)
			}
		}
		if rep.Degraded {
			fmt.Fprintln(os.Stderr, "vdom-bench: fleet: degraded to in-process pool (no worker could be spawned)")
		}
		if *requireRecoveries > 0 && rep.Recoveries < *requireRecoveries {
			fmt.Fprintf(os.Stderr, "vdom-bench: fleet: %d recoveries, -require-recoveries %d not met\n",
				rep.Recoveries, *requireRecoveries)
			os.Exit(1)
		}
		if !rep.Healthy() {
			fmt.Fprintf(os.Stderr, "vdom-bench: fleet: %d cell(s) quarantined after exhausting retries\n",
				len(rep.Quarantined))
			os.Exit(1)
		}
	}
}

// nonpositiveWidthFlags returns the width-style flags (-parallel,
// -shards, -fleet) that were explicitly set to a nonpositive value on
// fs, sorted by flag name. Defaults are exempt: only a value the user
// actually passed is rejected, so `-shards 0` stops silently meaning
// "the default" while an untouched default keeps working.
func nonpositiveWidthFlags(fs *flag.FlagSet) []string {
	width := map[string]bool{"parallel": true, "shards": true, "fleet": true}
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if !width[f.Name] {
			return
		}
		g, ok := f.Value.(flag.Getter)
		if !ok {
			return
		}
		if v, ok := g.Get().(int); ok && v <= 0 {
			bad = append(bad, f.Name)
		}
	})
	sort.Strings(bad)
	return bad
}

// parseFleetFaults parses the -fleet-faults spec: a comma-separated
// key=value list with keys seed, corrupt, truncate, duplicate, delay,
// and delay-step (a duration). An empty spec means no injection.
func parseFleetFaults(s string) (fleet.FaultConfig, error) {
	var c fleet.FaultConfig
	if s == "" {
		return c, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("-fleet-faults: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 10, 64)
		case "corrupt":
			c.Corrupt, err = parseProb(v)
		case "truncate":
			c.Truncate, err = parseProb(v)
		case "duplicate":
			c.Duplicate, err = parseProb(v)
		case "delay":
			c.Delay, err = parseProb(v)
		case "delay-step":
			c.DelayStep, err = time.ParseDuration(v)
		default:
			return c, fmt.Errorf("-fleet-faults: unknown key %q (have seed, corrupt, truncate, duplicate, delay, delay-step)", k)
		}
		if err != nil {
			return c, fmt.Errorf("-fleet-faults: bad %s value %q: %v", k, v, err)
		}
	}
	return c, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability out of [0, 1]")
	}
	return p, nil
}

// runPerf runs the fixed perf suite (see internal/perf and
// PERFORMANCE.md): it writes the vdom-perf/v1 report to outPath (stdout
// when empty) and, when a baseline is given, diffs normalized rates
// against it, returning an error if any benchmark regressed beyond
// threshold.
func runPerf(w io.Writer, quick bool, outPath, baselinePath string, threshold float64) error {
	rep, err := perf.Run(perf.Options{Quick: quick})
	if err != nil {
		return err
	}
	if outPath == "" {
		if err := rep.WriteJSON(w); err != nil {
			return err
		}
	} else if err := writeFile(outPath, rep.WriteJSON); err != nil {
		return err
	}
	if baselinePath == "" {
		return nil
	}
	base, err := perf.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "perf: comparing against %s (threshold %.0f%%)\n", baselinePath, threshold*100)
	cur := make(map[string]perf.Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		cur[b.Name] = b
	}
	for _, want := range base.Benchmarks {
		got, ok := cur[want.Name]
		if !ok {
			fmt.Fprintf(w, "  %-14s MISSING (baseline %.4g %s)\n", want.Name, want.Normalized, want.Unit)
			continue
		}
		fmt.Fprintf(w, "  %-14s %.4g -> %.4g %s (%+.1f%%)\n", want.Name,
			want.Normalized, got.Normalized, want.Unit,
			(got.Normalized/want.Normalized-1)*100)
	}
	if regs := perf.Compare(base, rep, threshold); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(w, "  REGRESSION %s: %.4g -> %.4g (-%.1f%% > %.0f%%)\n",
				r.Name, r.Baseline, r.Current, r.Drop*100, threshold*100)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(regs), threshold*100)
	}
	return nil
}

// writeFile streams write(f) into path, creating or truncating it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
