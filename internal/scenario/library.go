package scenario

import (
	"fmt"

	"vdom/internal/replay"
	"vdom/internal/workload"
)

// Library returns the bundled production-shaped scenarios, in the order
// they are committed under testdata/scenarios/ (file stem == Name). The
// specs are constructed here and golden-tested against the committed
// files, so editing either side without the other fails the build.
func Library() []*Spec {
	return []*Spec{
		{
			Format: FormatName,
			Name:   "mesh-churn",
			Notes: "Microservice-mesh per-request domain churn: a sidecar allocates a " +
				"short-lived domain per request (the DPTI regime), ramping clients as " +
				"the mesh scales out, then a request storm under light IPI/TLB fault " +
				"pressure.",
			Seed: 0x6d65_7368, // "mesh"
			Phases: []Phase{
				{
					Name:             "ramp",
					Clients:          Ramp{Start: 2, End: 6, Steps: 3},
					Ops:              140,
					DomainsPerClient: 3,
					Lifetime:         Lifetime{Dist: LifeGeometric, MeanOps: 6},
				},
				{
					Name:             "storm",
					Clients:          Ramp{Start: 8},
					Ops:              200,
					DomainsPerClient: 4,
					Lifetime:         Lifetime{Dist: LifeFixed, MeanOps: 2},
					Mix:              &Mix{Activate: 6, Churn: 3, Plain: 1},
					Faults:           &FaultSpec{DropIPI: 0.02, StaleTLB: 0.02},
				},
			},
		},
		{
			Format: FormatName,
			Name:   "serverless-burst",
			Notes: "Serverless cold-start bursts: a near-idle warm pool, then a burst " +
				"of one-shot function sandboxes (every domain lives for exactly one " +
				"activation), then a cooldown draining the pool.",
			Seed: 0x6c61_6d62_6461, // "lambda"
			Phases: []Phase{
				{
					Name:             "idle",
					Clients:          Ramp{Start: 1},
					Ops:              60,
					DomainsPerClient: 2,
					Lifetime:         Lifetime{Dist: LifeGeometric, MeanOps: 8},
				},
				{
					Name:             "burst",
					Clients:          Ramp{Start: 12},
					Ops:              240,
					DomainsPerClient: 2,
					Lifetime:         Lifetime{Dist: LifeFixed, MeanOps: 1},
					Mix:              &Mix{Activate: 5, Churn: 4, Plain: 1},
					Cores:            4,
				},
				{
					Name:             "cooldown",
					Clients:          Ramp{Start: 3},
					Ops:              80,
					DomainsPerClient: 2,
					Lifetime:         Lifetime{Dist: LifeUniform, MeanOps: 4},
				},
			},
		},
		{
			Format: FormatName,
			Name:   "sandbox-churn",
			Notes: "Multi-tenant sandbox churn: tenants come and go under injected " +
				"allocator pressure (VDS alloc failures, pdom exhaustion, spurious " +
				"faults). The crash stanza schedules it as a supervised fleet with a " +
				"rolling checkpoint ring (vdom-bench serve -scenario).",
			Seed: 0x7465_6e61_6e74, // "tenant"
			Phases: []Phase{
				{
					Name:             "tenants",
					Clients:          Ramp{Start: 4, End: 10, Steps: 2},
					Ops:              160,
					DomainsPerClient: 4,
					Lifetime:         Lifetime{Dist: LifeUniform, MeanOps: 5},
					Faults: &FaultSpec{
						VDSAllocFail:   0.05,
						PdomExhaustion: 0.03,
						SpuriousFault:  0.02,
					},
				},
			},
			Crash: &CrashSpec{
				Shards:          2,
				OpsPerShard:     600,
				CheckpointEvery: 100,
				Ring:            4,
				CrashEvery:      250,
				Kinds:           []string{"kernel-panic"},
				MaxRetries:      3,
				SnapWriteFail:   0.05,
			},
		},
		{
			Format: FormatName,
			Name:   "oltp-phases",
			Notes: "Phase-shifting OLTP: a read-heavy steady state over long-lived " +
				"table domains, a write-heavy batch window with rapid domain " +
				"recycling (on the ARM cost table), then a post-batch read recovery.",
			Seed: 0x6f6c_7470, // "oltp"
			Phases: []Phase{
				{
					Name:             "read-heavy",
					Clients:          Ramp{Start: 4},
					Ops:              150,
					DomainsPerClient: 3,
					Mix:              &Mix{Activate: 9, Churn: 0, Plain: 1},
				},
				{
					Name:             "write-heavy",
					Clients:          Ramp{Start: 6},
					Ops:              180,
					DomainsPerClient: 3,
					Lifetime:         Lifetime{Dist: LifeFixed, MeanOps: 3},
					Mix:              &Mix{Activate: 5, Churn: 4, Plain: 1},
					Arch:             "arm",
				},
				{
					Name:             "recovery-read",
					Clients:          Ramp{Start: 4},
					Ops:              100,
					DomainsPerClient: 3,
					Lifetime:         Lifetime{Dist: LifeGeometric, MeanOps: 4},
				},
			},
		},
	}
}

// LibrarySpec returns the bundled scenario with the given name.
func LibrarySpec(name string) (*Spec, error) {
	for _, s := range Library() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: no bundled scenario %q", ErrBadRecord, name)
}

// TraceCorpus returns the scenario entries of the golden-trace corpus:
// one recorded cell (mesh-churn's first ramp step on the VDom kernel,
// x86) proving scenarios ride the record/replay guarantee. The cell is
// fault-free, so the committed trace replays through the plain engine.
func TraceCorpus() []workload.TraceSpec {
	return []workload.TraceSpec{{
		Name: "scenario-mesh-vdom-x86",
		Record: func() *replay.Trace {
			spec, err := LibrarySpec("mesh-churn")
			if err != nil {
				panic(err)
			}
			plan, err := Compile(spec, replay.KernelVDom)
			if err != nil {
				panic(fmt.Sprintf("scenario: compile bundled mesh-churn: %v", err))
			}
			res, err := RunCell(plan.Cells[0], CellOptions{Record: true})
			if err != nil {
				panic(fmt.Sprintf("scenario: record mesh-churn cell 0: %v", err))
			}
			return res.Trace
		},
	}}
}
