module vdom

go 1.22
