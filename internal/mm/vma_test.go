package mm

import (
	"sort"
	"testing"
	"testing/quick"

	"vdom/internal/pagetable"
)

const pg = pagetable.PageSize

func v(startPage, pages int) *VMA {
	return &VMA{Start: pagetable.VAddr(startPage * pg), Length: uint64(pages * pg), Writable: true}
}

func TestTreeInsertFind(t *testing.T) {
	var tr Tree
	tr.Insert(v(10, 4))
	tr.Insert(v(2, 2))
	tr.Insert(v(30, 1))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if got := tr.Find(11 * pg); got == nil || got.Start != 10*pg {
		t.Errorf("Find(11 pages) = %v", got)
	}
	if got := tr.Find(14 * pg); got != nil {
		t.Errorf("Find in gap = %v, want nil", got)
	}
	if got := tr.Find(0); got != nil {
		t.Errorf("Find before all = %v, want nil", got)
	}
	if got := tr.Find(2 * pg); got == nil || got.Start != 2*pg {
		t.Errorf("Find at exact start = %v", got)
	}
}

func TestTreeDelete(t *testing.T) {
	var tr Tree
	for i := 0; i < 20; i++ {
		tr.Insert(v(i*10, 1))
	}
	if !tr.Delete(50 * pg) {
		t.Fatal("Delete existing returned false")
	}
	if tr.Delete(50 * pg) {
		t.Fatal("double Delete returned true")
	}
	if tr.Len() != 19 {
		t.Errorf("Len = %d, want 19", tr.Len())
	}
	if tr.Find(50*pg) != nil {
		t.Error("deleted VMA still findable")
	}
	if tr.Find(60*pg) == nil || tr.Find(40*pg) == nil {
		t.Error("neighbours of deleted VMA lost")
	}
}

func TestTreeDeleteAll(t *testing.T) {
	var tr Tree
	for i := 0; i < 50; i++ {
		tr.Insert(v(i*2, 1))
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(pagetable.VAddr(i * 2 * pg)) {
			t.Fatalf("Delete #%d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
}

func TestTreeDuplicateInsertPanics(t *testing.T) {
	var tr Tree
	tr.Insert(v(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("duplicate Insert did not panic")
		}
	}()
	tr.Insert(v(1, 2))
}

func TestTreeRange(t *testing.T) {
	var tr Tree
	// Areas: [10,14), [20,22), [30,31) in pages.
	tr.Insert(v(10, 4))
	tr.Insert(v(20, 2))
	tr.Insert(v(30, 1))
	collect := func(s, e int) []int {
		var got []int
		tr.Range(pagetable.VAddr(s*pg), pagetable.VAddr(e*pg), func(m *VMA) bool {
			got = append(got, int(m.Start/pg))
			return true
		})
		return got
	}
	cases := []struct {
		s, e int
		want []int
	}{
		{0, 5, nil},
		{0, 100, []int{10, 20, 30}},
		{12, 21, []int{10, 20}}, // starts inside first, ends inside second
		{14, 20, nil},           // exactly the gap
		{13, 14, []int{10}},
		{30, 31, []int{30}},
		{31, 40, nil},
	}
	for _, c := range cases {
		got := collect(c.s, c.e)
		if len(got) != len(c.want) {
			t.Errorf("Range(%d,%d) = %v, want %v", c.s, c.e, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Range(%d,%d) = %v, want %v", c.s, c.e, got, c.want)
				break
			}
		}
	}
}

func TestTreeRangeEarlyStop(t *testing.T) {
	var tr Tree
	for i := 0; i < 10; i++ {
		tr.Insert(v(i*2, 1))
	}
	n := 0
	tr.Range(0, pagetable.VAddr(100*pg), func(*VMA) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestTreeAllAscending(t *testing.T) {
	var tr Tree
	starts := []int{50, 10, 30, 20, 40, 0, 60}
	for _, s := range starts {
		tr.Insert(v(s, 1))
	}
	var got []int
	tr.All(func(m *VMA) bool {
		got = append(got, int(m.Start/pg))
		return true
	})
	if !sort.IntsAreSorted(got) {
		t.Errorf("All order = %v, not ascending", got)
	}
	if len(got) != len(starts) {
		t.Errorf("All visited %d, want %d", len(got), len(starts))
	}
}

// Property: the tree agrees with a reference map under random insert/delete
// sequences, and Find honours interval containment.
func TestTreeMatchesReferenceProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(ops []uint16) bool {
		var tr Tree
		ref := map[pagetable.VAddr]*VMA{}
		for _, op := range ops {
			// Non-overlapping by construction: each slot is 1 page
			// at a distinct page index.
			start := pagetable.VAddr(uint64(op%512) * pg)
			if op&0x8000 == 0 {
				if _, ok := ref[start]; !ok {
					m := &VMA{Start: start, Length: pg}
					tr.Insert(m)
					ref[start] = m
				}
			} else {
				had := ref[start] != nil
				delete(ref, start)
				if tr.Delete(start) != had {
					return false
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		for start := range ref {
			got := tr.Find(start + pg/2)
			if got == nil || got.Start != start {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestVMAHelpers(t *testing.T) {
	m := &VMA{Start: 0x4000, Length: 2 * pg, Writable: false, Tag: 7}
	if m.End() != 0x4000+2*pg {
		t.Errorf("End = %#x", uint64(m.End()))
	}
	if !m.Contains(0x4000) || !m.Contains(m.End()-1) || m.Contains(m.End()) {
		t.Error("Contains boundary conditions wrong")
	}
	if m.Pages() != 2 {
		t.Errorf("Pages = %d", m.Pages())
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}
