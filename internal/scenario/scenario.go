// Package scenario implements the vdom-scenario/v1 declarative workload
// format: a versioned JSON spec describing phased, production-shaped
// domain workloads — client ramps, vdom-lifetime distributions, op mixes,
// per-phase kernel/arch selection, fault schedules (compiled onto the
// internal/chaos injector), and crash/checkpoint schedules (compiled onto
// the serve fleet's crash model and snapshot ring).
//
// A Spec decodes with the same discipline as vdom-trace/v1 and
// vdom-snap/v1 (magic/version check, typed sentinels, anti-panic caps,
// fuzzable decoder) and encodes canonically, so decode → re-encode is a
// fixed point. Compile lowers a validated spec to a deterministic seeded
// Plan of independent cells — one isolated System per (phase, ramp step)
// — which RunCell drives through the backend registry's generic
// DomainOps adapter, so every scenario runs unchanged on every
// registered kernel (vdom, libmpk, epk, dpti), is byte-identical at any
// -parallel width, and records/replays via vdom-trace/v1. See
// SCENARIOS.md for the spec schema and the bundled library under
// testdata/scenarios/.
package scenario

import (
	"errors"
	"fmt"

	"vdom/internal/chaos"
	"vdom/internal/replay"
	"vdom/internal/tlb"
)

// FormatVersion is the spec format version this package reads and writes.
const FormatVersion = 1

// FormatName is the magic the Format field must carry.
const FormatName = "vdom-scenario/v1"

// formatPrefix is the magic family; a matching prefix with a different
// version suffix is ErrBadVersion rather than ErrBadMagic.
const formatPrefix = "vdom-scenario/v"

// Typed decode errors. The decoder never panics on malformed input; it
// returns one of these (possibly wrapped with positional context).
var (
	// ErrBadMagic reports input whose format field is not a
	// vdom-scenario magic.
	ErrBadMagic = errors.New("scenario: bad spec magic")
	// ErrBadVersion reports a spec written by an unknown format version.
	ErrBadVersion = errors.New("scenario: unsupported spec version")
	// ErrTruncated reports input that ends mid-document.
	ErrTruncated = errors.New("scenario: truncated spec")
	// ErrBadRecord reports a structurally invalid spec (unknown field,
	// missing phase, out-of-range ramp, bad distribution, ...).
	ErrBadRecord = errors.New("scenario: malformed spec")
)

// Anti-panic caps: a hostile spec cannot make the compiler or runner
// allocate unboundedly. Validate enforces them.
const (
	// MaxPhases bounds Spec.Phases.
	MaxPhases = 32
	// MaxSteps bounds one phase's ramp steps.
	MaxSteps = 16
	// MaxCells bounds the compiled plan (sum of every phase's steps).
	MaxCells = 256
	// MaxClients bounds one cell's client count.
	MaxClients = 512
	// MaxOps bounds one cell's op budget.
	MaxOps = 1 << 16
	// MaxDomains bounds one client's domain working set.
	MaxDomains = 64
	// maxSpecBytes bounds the raw input the decoder accepts.
	maxSpecBytes = 1 << 20
	// maxNameLen bounds the scenario and phase names.
	maxNameLen = 100
	// maxNotesLen bounds the free-text notes field.
	maxNotesLen = 4096
)

// Lifetime distribution kinds.
const (
	// LifeInfinite ("") never expires a domain; only the churn mix
	// weight recycles it.
	LifeInfinite = ""
	// LifeFixed expires a domain after exactly MeanOps activations.
	LifeFixed = "fixed"
	// LifeUniform draws a lifetime uniformly from [1, 2*MeanOps-1].
	LifeUniform = "uniform"
	// LifeGeometric draws a geometric lifetime with mean MeanOps
	// (integer sampling, so cross-platform deterministic).
	LifeGeometric = "geometric"
)

// Spec is one vdom-scenario/v1 document.
type Spec struct {
	// Format is the magic: FormatName.
	Format string `json:"format"`
	// Name identifies the scenario; the bundled library uses it as the
	// file stem under testdata/scenarios/.
	Name string `json:"name"`
	// Notes is free-form documentation.
	Notes string `json:"notes,omitempty"`
	// Seed is the scenario's root PRNG seed; every cell derives its own
	// stream from it.
	Seed uint64 `json:"seed"`
	// Kernels is the default kernel set a runner sweeps (empty: every
	// registered backend). An explicit -kernel selection overrides it.
	Kernels []string `json:"kernels,omitempty"`
	// Arch is the default cost architecture (empty: x86); phases may
	// override it.
	Arch string `json:"arch,omitempty"`
	// Cores is the default machine width (0: 2); phases may override it.
	Cores int `json:"cores,omitempty"`
	// Phases is the scenario's timeline, compiled in order.
	Phases []Phase `json:"phases"`
	// Crash, when present, schedules the scenario as a supervised fleet
	// (vdom-bench serve -scenario): checkpoint ring + crash injection.
	Crash *CrashSpec `json:"crash,omitempty"`
}

// Phase is one scenario stage: a client ramp driven for Ops operations
// per step against a per-client domain working set.
type Phase struct {
	// Name identifies the phase (unique within the spec).
	Name string `json:"name"`
	// Clients is the phase's client ramp; each step is one plan cell.
	Clients Ramp `json:"clients"`
	// Ops is the op budget of each cell.
	Ops int `json:"ops"`
	// DomainsPerClient sizes each client's domain working set.
	DomainsPerClient int `json:"domains_per_client"`
	// Lifetime draws how many activations a domain survives before it
	// is freed and reallocated (the churn regime).
	Lifetime Lifetime `json:"lifetime,omitempty"`
	// Arch overrides the spec's cost architecture for this phase.
	Arch string `json:"arch,omitempty"`
	// Cores overrides the spec's machine width for this phase.
	Cores int `json:"cores,omitempty"`
	// Mix weights the op kinds (nil: 8 activate / 1 churn / 1 plain).
	Mix *Mix `json:"mix,omitempty"`
	// Faults, when present, attaches a chaos injector with these
	// probabilities to every cell of the phase.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// Ramp interpolates a client count linearly across Steps cells.
type Ramp struct {
	// Start is the first step's client count.
	Start int `json:"start"`
	// End is the last step's client count (0: flat at Start).
	End int `json:"end,omitempty"`
	// Steps is the number of cells the ramp compiles to (0: 1).
	Steps int `json:"steps,omitempty"`
}

// Lifetime is a vdom-lifetime distribution.
type Lifetime struct {
	// Dist is the distribution kind (Life* constants).
	Dist string `json:"dist,omitempty"`
	// MeanOps is the distribution's mean, in activations.
	MeanOps int `json:"mean_ops,omitempty"`
}

// Mix weights the three op kinds of the cell driver: a protected-domain
// activation round (activate, access, deactivate), a forced domain churn
// (free, realloc, reprotect), and a plain access to an unprotected
// scratch region.
type Mix struct {
	Activate int `json:"activate"`
	Churn    int `json:"churn"`
	Plain    int `json:"plain"`
}

// FaultSpec mirrors chaos.Config: per-op fault probabilities the phase's
// cells run under. See internal/chaos for the semantics of each knob.
type FaultSpec struct {
	DropIPI        float64 `json:"drop_ipi,omitempty"`
	DelayIPI       float64 `json:"delay_ipi,omitempty"`
	StaleTLB       float64 `json:"stale_tlb,omitempty"`
	ASIDExhaustion float64 `json:"asid_exhaustion,omitempty"`
	ASIDLimit      int     `json:"asid_limit,omitempty"`
	VDSAllocFail   float64 `json:"vds_alloc_fail,omitempty"`
	PdomExhaustion float64 `json:"pdom_exhaustion,omitempty"`
	SpuriousFault  float64 `json:"spurious_fault,omitempty"`
}

// Any reports whether the spec injects at all.
func (f *FaultSpec) Any() bool {
	return f != nil && (f.DropIPI > 0 || f.DelayIPI > 0 || f.StaleTLB > 0 ||
		f.ASIDExhaustion > 0 || f.VDSAllocFail > 0 || f.PdomExhaustion > 0 ||
		f.SpuriousFault > 0)
}

// Config lowers the fault schedule onto a chaos injector configuration
// seeded for one cell.
func (f *FaultSpec) Config(seed uint64) chaos.Config {
	if f == nil {
		return chaos.Config{Seed: seed}
	}
	return chaos.Config{
		Seed:           seed,
		DropIPI:        f.DropIPI,
		DelayIPI:       f.DelayIPI,
		StaleTLB:       f.StaleTLB,
		ASIDExhaustion: f.ASIDExhaustion,
		ASIDLimit:      tlb.ASID(f.ASIDLimit),
		VDSAllocFail:   f.VDSAllocFail,
		PdomExhaustion: f.PdomExhaustion,
		SpuriousFault:  f.SpuriousFault,
	}
}

// CrashSpec schedules a scenario as a supervised fleet: it compiles onto
// serve.Config (checkpoint ring + crash model + harness pressure). Zero
// fields keep the serve defaults or the corresponding -flag values.
type CrashSpec struct {
	// Shards is the fleet width.
	Shards int `json:"shards,omitempty"`
	// OpsPerShard bounds each shard's soak.
	OpsPerShard int `json:"ops_per_shard,omitempty"`
	// CheckpointEvery is the rolling-checkpoint cadence in ops.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Ring is the checkpoint-ring capacity per shard.
	Ring int `json:"ring,omitempty"`
	// CrashEvery is the mean ops between injected crash faults.
	CrashEvery int `json:"crash_every,omitempty"`
	// Kinds lists the injected crash kinds ("core-crash",
	// "kernel-panic", "torn-domain-map"; empty: all three).
	Kinds []string `json:"kinds,omitempty"`
	// MaxRetries quarantines a shard after this many consecutive
	// recovery failures.
	MaxRetries int `json:"max_retries,omitempty"`
	// SnapWriteFail and SnapCorrupt are the harness-pressure
	// probabilities.
	SnapWriteFail float64 `json:"snap_write_fail,omitempty"`
	SnapCorrupt   float64 `json:"snap_corrupt,omitempty"`
}

// crashKindNames are the CrashSpec.Kinds vocabulary.
var crashKindNames = map[string]chaos.CrashKind{
	chaos.CrashCore.String():          chaos.CrashCore,
	chaos.CrashKernelPanic.String():   chaos.CrashKernelPanic,
	chaos.CrashTornDomainMap.String(): chaos.CrashTornDomainMap,
}

// CrashKinds resolves CrashSpec.Kinds (nil for "all").
func (c *CrashSpec) CrashKinds() ([]chaos.CrashKind, error) {
	if c == nil || len(c.Kinds) == 0 {
		return nil, nil
	}
	kinds := make([]chaos.CrashKind, 0, len(c.Kinds))
	for _, name := range c.Kinds {
		k, ok := crashKindNames[name]
		if !ok {
			return nil, fmt.Errorf("%w: unknown crash kind %q", ErrBadRecord, name)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// prob validates one probability field.
func prob(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("%w: %s probability %v outside [0, 1]", ErrBadRecord, name, p)
	}
	return nil
}

// Validate checks a spec against the format's structural rules and
// anti-panic caps. Decode calls it; Compile re-checks so hand-built
// specs get the same guarantees.
func (s *Spec) Validate() error {
	switch {
	case s.Format != FormatName:
		return fmt.Errorf("%w: format %q", ErrBadMagic, s.Format)
	case s.Name == "" || len(s.Name) > maxNameLen:
		return fmt.Errorf("%w: scenario name must be 1..%d bytes", ErrBadRecord, maxNameLen)
	case len(s.Notes) > maxNotesLen:
		return fmt.Errorf("%w: notes exceed %d bytes", ErrBadRecord, maxNotesLen)
	case len(s.Phases) == 0:
		return fmt.Errorf("%w: a scenario needs at least one phase", ErrBadRecord)
	case len(s.Phases) > MaxPhases:
		return fmt.Errorf("%w: %d phases exceed the cap of %d", ErrBadRecord, len(s.Phases), MaxPhases)
	case s.Cores < 0 || s.Cores > 64:
		return fmt.Errorf("%w: cores %d outside [0, 64]", ErrBadRecord, s.Cores)
	}
	if s.Arch != "" {
		if _, err := replay.ArchFromName(s.Arch); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
	}
	if len(s.Kernels) > 8 {
		return fmt.Errorf("%w: %d kernels exceed the cap of 8", ErrBadRecord, len(s.Kernels))
	}
	seenKernel := map[string]bool{}
	for _, k := range s.Kernels {
		if k == "" || seenKernel[k] {
			return fmt.Errorf("%w: empty or duplicate kernel %q", ErrBadRecord, k)
		}
		seenKernel[k] = true
	}
	cells := 0
	seenPhase := map[string]bool{}
	for i := range s.Phases {
		p := &s.Phases[i]
		if err := p.validate(); err != nil {
			return fmt.Errorf("phase %d (%q): %w", i, p.Name, err)
		}
		if seenPhase[p.Name] {
			return fmt.Errorf("%w: duplicate phase name %q", ErrBadRecord, p.Name)
		}
		seenPhase[p.Name] = true
		cells += p.Clients.steps()
	}
	if cells > MaxCells {
		return fmt.Errorf("%w: plan would have %d cells, cap is %d", ErrBadRecord, cells, MaxCells)
	}
	if s.Crash != nil {
		if err := s.Crash.validate(); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one phase.
func (p *Phase) validate() error {
	switch {
	case p.Name == "" || len(p.Name) > maxNameLen:
		return fmt.Errorf("%w: phase name must be 1..%d bytes", ErrBadRecord, maxNameLen)
	case p.Ops < 1 || p.Ops > MaxOps:
		return fmt.Errorf("%w: ops %d outside [1, %d]", ErrBadRecord, p.Ops, MaxOps)
	case p.DomainsPerClient < 1 || p.DomainsPerClient > MaxDomains:
		return fmt.Errorf("%w: domains_per_client %d outside [1, %d]", ErrBadRecord, p.DomainsPerClient, MaxDomains)
	case p.Cores < 0 || p.Cores > 64:
		return fmt.Errorf("%w: cores %d outside [0, 64]", ErrBadRecord, p.Cores)
	}
	if err := p.Clients.validate(); err != nil {
		return err
	}
	if err := p.Lifetime.validate(); err != nil {
		return err
	}
	if p.Arch != "" {
		if _, err := replay.ArchFromName(p.Arch); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
	}
	if m := p.Mix; m != nil {
		if m.Activate < 0 || m.Churn < 0 || m.Plain < 0 ||
			m.Activate > 100 || m.Churn > 100 || m.Plain > 100 {
			return fmt.Errorf("%w: mix weights outside [0, 100]", ErrBadRecord)
		}
		if m.Activate+m.Churn+m.Plain == 0 {
			return fmt.Errorf("%w: mix weights sum to zero", ErrBadRecord)
		}
	}
	if f := p.Faults; f != nil {
		for _, pr := range []struct {
			name string
			p    float64
		}{
			{"drop_ipi", f.DropIPI}, {"delay_ipi", f.DelayIPI},
			{"stale_tlb", f.StaleTLB}, {"asid_exhaustion", f.ASIDExhaustion},
			{"vds_alloc_fail", f.VDSAllocFail}, {"pdom_exhaustion", f.PdomExhaustion},
			{"spurious_fault", f.SpuriousFault},
		} {
			if err := prob(pr.name, pr.p); err != nil {
				return err
			}
		}
		if f.ASIDLimit < 0 || f.ASIDLimit > 4096 {
			return fmt.Errorf("%w: asid_limit %d outside [0, 4096]", ErrBadRecord, f.ASIDLimit)
		}
	}
	return nil
}

// validate checks one ramp; Steps beyond MaxSteps is the "overlong ramp"
// rejection.
func (r Ramp) validate() error {
	switch {
	case r.Start < 1 || r.Start > MaxClients:
		return fmt.Errorf("%w: ramp start %d outside [1, %d]", ErrBadRecord, r.Start, MaxClients)
	case r.End < 0 || r.End > MaxClients:
		return fmt.Errorf("%w: ramp end %d outside [0, %d]", ErrBadRecord, r.End, MaxClients)
	case r.Steps < 0 || r.Steps > MaxSteps:
		return fmt.Errorf("%w: ramp steps %d outside [0, %d]", ErrBadRecord, r.Steps, MaxSteps)
	}
	return nil
}

// steps resolves the ramp's cell count.
func (r Ramp) steps() int {
	if r.Steps < 1 {
		return 1
	}
	return r.Steps
}

// at interpolates the client count of step k (0-based) linearly between
// Start and End.
func (r Ramp) at(k int) int {
	end := r.End
	if end == 0 {
		end = r.Start
	}
	n := r.steps()
	if n == 1 {
		return r.Start
	}
	return r.Start + (end-r.Start)*k/(n-1)
}

// validate checks one lifetime distribution.
func (l Lifetime) validate() error {
	switch l.Dist {
	case LifeInfinite:
		if l.MeanOps != 0 {
			return fmt.Errorf("%w: lifetime mean_ops %d without a dist", ErrBadRecord, l.MeanOps)
		}
	case LifeFixed, LifeUniform, LifeGeometric:
		if l.MeanOps < 1 || l.MeanOps > MaxOps {
			return fmt.Errorf("%w: lifetime mean_ops %d outside [1, %d]", ErrBadRecord, l.MeanOps, MaxOps)
		}
	default:
		return fmt.Errorf("%w: unknown lifetime dist %q", ErrBadRecord, l.Dist)
	}
	return nil
}

// validate checks the crash stanza.
func (c *CrashSpec) validate() error {
	for _, n := range []struct {
		name     string
		v, upper int
	}{
		{"shards", c.Shards, 64}, {"ops_per_shard", c.OpsPerShard, 1 << 20},
		{"checkpoint_every", c.CheckpointEvery, 1 << 20}, {"ring", c.Ring, 64},
		{"crash_every", c.CrashEvery, 1 << 20}, {"max_retries", c.MaxRetries, 64},
	} {
		if n.v < 0 || n.v > n.upper {
			return fmt.Errorf("%w: crash %s %d outside [0, %d]", ErrBadRecord, n.name, n.v, n.upper)
		}
	}
	if err := prob("snap_write_fail", c.SnapWriteFail); err != nil {
		return err
	}
	if err := prob("snap_corrupt", c.SnapCorrupt); err != nil {
		return err
	}
	_, err := c.CrashKinds()
	return err
}
