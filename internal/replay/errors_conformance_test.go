package replay_test

// Conformance sweep for the typed error sentinels: every failure a layer
// reports must stay errors.Is-matchable against its sentinel through all
// the fmt.Errorf wrapping between the fault site and the caller, and
// CodeOf must keep classifying the wrapped chains stably — golden traces
// compare codes, so a reclassification here is a regression.

import (
	"errors"
	"testing"

	"vdom/internal/backend"
	"vdom/internal/core"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/scenario"
	"vdom/internal/sim"
	"vdom/internal/snapshot"
	"vdom/internal/tlb"
)

const cpg = pagetable.PageSize

// bootConformance boots a 1-core system of the given kernel kind via the
// same path the replayer and the snapshot restorer use.
func bootConformance(t *testing.T, kind string) *replay.System {
	t.Helper()
	h := replay.Header{
		Version: replay.FormatVersion, Kernel: kind, Arch: "x86",
		Cores: 1, TLBCap: 256, Workload: "conformance",
		Flags: replay.HdrSecureGate, FlushThreshold: 64, Nas: 4,
	}
	if kind == replay.KernelVDom {
		h.Flags |= replay.HdrVDomKernel
	}
	sys, err := replay.Boot(h)
	if err != nil {
		t.Fatalf("boot %s: %v", kind, err)
	}
	return sys
}

// failingChaos makes every VDS allocation fail transiently.
type failingChaos struct{}

func (failingChaos) InjectVDSAllocFailure() bool   { return true }
func (failingChaos) InjectPdomExhaustion() bool    { return false }
func (failingChaos) NoteDegradedFallback(s string) {}

// TestSentinelConformance triggers each typed failure through the public
// API of its layer and checks the returned error chain: sentinel
// matchable with errors.Is, and CodeOf classification stable.
func TestSentinelConformance(t *testing.T) {
	filterErr := errors.New("conformance: filter policy")
	cases := []struct {
		name string
		run  func(t *testing.T) error
		want []error
		code replay.ErrCode
	}{
		{
			name: "mm/bad-range-unaligned-mmap",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				_, err := sys.Proc.NewTask(0).Mmap(0x1001, cpg, true)
				return err
			},
			want: []error{mm.ErrBadRange},
			code: replay.CodeBadRange,
		},
		{
			name: "mm/bad-range-empty-tag",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				_, err := sys.Proc.AS().SetTag(0x1000, 0, mm.Tag(1))
				return err
			},
			want: []error{mm.ErrBadRange},
			code: replay.CodeBadRange,
		},
		{
			name: "mm/no-mapping-mprotect",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				_, err := sys.Proc.NewTask(0).Mprotect(0x9990_0000, 4*cpg, false)
				return err
			},
			want: []error{mm.ErrNoMapping},
			code: replay.CodeNoMapping,
		},
		{
			name: "kernel/sigsegv-keeps-mm-cause",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				_, err := sys.Proc.NewTask(0).Access(0xdead_0000, false)
				return err
			},
			// The kernel's SIGSEGV wrapper must not hide the mm-layer
			// cause of the fault.
			want: []error{kernel.ErrSigsegv, mm.ErrSegfault},
			code: replay.CodeSigsegv,
		},
		{
			name: "kernel/blocked-keeps-filter-cause",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				sys.Kernel.RegisterSyscallFilter(func(*kernel.Task, kernel.Syscall, kernel.SyscallArgs) error {
					return filterErr
				})
				_, err := sys.Proc.NewTask(0).Mmap(0x1000, cpg, true)
				return err
			},
			want: []error{kernel.ErrBlocked, filterErr},
			code: replay.CodeBlocked,
		},
		{
			name: "core/no-vdr",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				_, err := sys.Manager.WrVdr(sys.Proc.NewTask(0), 1, core.VPermReadWrite)
				return err
			},
			want: []error{core.ErrNoVDR},
			code: replay.CodeNoVDR,
		},
		{
			name: "core/freed-vdom",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				tk := sys.Proc.NewTask(0)
				if _, err := tk.Mmap(0x1000, 4*cpg, true); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Manager.VdrAlloc(tk, 2); err != nil {
					t.Fatal(err)
				}
				_, err := sys.Manager.Mprotect(tk, 0x1000, 4*cpg, core.VdomID(77))
				return err
			},
			want: []error{core.ErrFreedVdom},
			code: replay.CodeFreedVdom,
		},
		{
			name: "core/no-resources",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				tk := sys.Proc.NewTask(0)
				if _, err := sys.Manager.VdrAlloc(tk, 2); err != nil {
					t.Fatal(err)
				}
				sys.Manager.SetChaos(failingChaos{})
				_, err := sys.Manager.PlaceInNewVDS(tk)
				return err
			},
			want: []error{core.ErrNoResources},
			code: replay.CodeNoResources,
		},
		{
			name: "core/degraded-keeps-transient-cause",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				sys.Manager.SetChaos(failingChaos{})
				// No VDSes exist yet, so vdr_alloc needs one; the injected
				// failure survives the retry and degrades the call.
				_, err := sys.Manager.VdrAlloc(sys.Proc.NewTask(0), 2)
				return err
			},
			want: []error{core.ErrDegraded, core.ErrNoResources},
			code: replay.CodeDegraded,
		},
		{
			name: "core/exhausted-asid-space",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				tk := sys.Proc.NewTask(0)
				if _, err := sys.Manager.VdrAlloc(tk, 2); err != nil {
					t.Fatal(err)
				}
				// Every ASID is now held by a live holder: the next VDS
				// allocation fails terminally even after a rollover.
				sys.Kernel.SetASIDLimit(tlb.ASID(sys.Kernel.LiveASIDCount()))
				_, err := sys.Manager.PlaceInNewVDS(tk)
				return err
			},
			want: []error{core.ErrExhausted},
			code: replay.CodeExhausted,
		},
		{
			name: "libmpk/no-free-key",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelLibmpk)
				tk := sys.Proc.NewTask(0)
				// Hold every usable hardware key accessible, so there is
				// no victim to evict and (without a sim proc) no waiting.
				for i := 0; i < libmpk.UsableKeys; i++ {
					addr := pagetable.VAddr(0x10_0000 + uint64(i)*0x1_0000)
					if _, err := tk.Mmap(addr, cpg, true); err != nil {
						t.Fatal(err)
					}
					v, _ := sys.Libmpk.PkeyAlloc()
					if _, err := sys.Libmpk.PkeyMprotect(nil, tk, addr, cpg, v); err != nil {
						t.Fatal(err)
					}
					if _, err := sys.Libmpk.PkeySet(nil, tk, v, hw.PermReadWrite); err != nil {
						t.Fatal(err)
					}
				}
				v, _ := sys.Libmpk.PkeyAlloc()
				_, err := sys.Libmpk.PkeySet(nil, tk, v, hw.PermReadWrite)
				return err
			},
			want: []error{libmpk.ErrNoFreeKey},
			code: replay.CodeNoFreeKey,
		},
		{
			name: "libmpk/unknown-key",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelLibmpk)
				_, err := sys.Libmpk.PkeyFree(sys.Proc.NewTask(0), libmpk.Vkey(9999))
				return err
			},
			want: []error{libmpk.ErrUnknownKey},
			code: replay.CodeUnknownKey,
		},
		{
			name: "backend/domain-capacity",
			run: func(t *testing.T) error {
				// EPK's monotonic group allocator is the one backend with a
				// fixed domain capacity; exhausting it must surface the
				// registry-level sentinel through the DomainOps adapter.
				h := replay.Header{
					Version: replay.FormatVersion, Kernel: replay.KernelEPK,
					Arch: "x86", Cores: 1, Workload: "conformance", Domains: 1,
				}
				sys, err := replay.Boot(h)
				if err != nil {
					t.Fatal(err)
				}
				b, ok := backend.Get(replay.KernelEPK)
				if !ok {
					t.Fatal("epk backend not registered")
				}
				ops := b.Ops(sys)
				tk := sys.Proc.NewTask(0)
				if _, _, err := ops.Alloc(tk); err != nil {
					t.Fatal(err)
				}
				_, _, aerr := ops.Alloc(tk)
				return aerr
			},
			want: []error{backend.ErrDomainCapacity},
			code: replay.CodeDomainCapacity,
		},
		{
			name: "scenario/bad-magic",
			run: func(t *testing.T) error {
				_, err := scenario.Decode([]byte(`{"format":"vdom-trace/v1"}`))
				return err
			},
			want: []error{scenario.ErrBadMagic},
			code: replay.CodeOther,
		},
		{
			name: "scenario/bad-version",
			run: func(t *testing.T) error {
				_, err := scenario.Decode([]byte(`{"format":"vdom-scenario/v2"}`))
				return err
			},
			want: []error{scenario.ErrBadVersion},
			code: replay.CodeOther,
		},
		{
			name: "scenario/truncated",
			run: func(t *testing.T) error {
				_, err := scenario.Decode([]byte(`{"format":"vdom-scenario/v1","name":"tr`))
				return err
			},
			want: []error{scenario.ErrTruncated},
			code: replay.CodeOther,
		},
		{
			name: "scenario/bad-record",
			run: func(t *testing.T) error {
				_, err := scenario.Decode([]byte(`{"format":"vdom-scenario/v1","name":"x","phases":[]}`))
				return err
			},
			want: []error{scenario.ErrBadRecord},
			code: replay.CodeOther,
		},
		{
			name: "snapshot/truncated-gob-section",
			run: func(t *testing.T) error {
				// A section that truncates mid-gob while its CRC still
				// verifies (the CRC covers the truncated payload) is
				// Restore's to reject — naming the section and offset.
				sys := bootConformance(t, replay.KernelVDom)
				h := replay.Header{Version: replay.FormatVersion, Kernel: replay.KernelVDom, Arch: "x86", Cores: 1}
				st, err := snapshot.Capture(sys, h, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				for i := range st.Sections {
					if st.Sections[i].Name == "kernel" {
						d := st.Sections[i].Data
						st.Sections[i].Data = d[:len(d)-1]
					}
				}
				cut, err := snapshot.Decode(snapshot.Encode(st))
				if err != nil {
					t.Fatalf("truncated container must still pass CRC: %v", err)
				}
				_, _, rerr := snapshot.Restore(cut)
				return rerr
			},
			want: []error{snapshot.ErrBadRecord},
			code: replay.CodeOther,
		},
		{
			name: "replay/bad-record-tail-start",
			run: func(t *testing.T) error {
				sys := bootConformance(t, replay.KernelVDom)
				_, err := replay.RunTail(&replay.Trace{}, sys, nil, 0, 5, replay.Options{})
				return err
			},
			want: []error{replay.ErrBadRecord},
			code: replay.CodeOther,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("operation unexpectedly succeeded")
			}
			for _, sentinel := range tc.want {
				if !errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false", err, sentinel)
				}
			}
			if got := replay.CodeOf(err); got != tc.code {
				t.Errorf("CodeOf(%v) = %v, want %v", err, got, tc.code)
			}
		})
	}
}

// TestSentinelConformanceDeadlock checks the simulator's deadlock panic
// stays errors.Is-matchable against sim.ErrDeadlock.
func TestSentinelConformanceDeadlock(t *testing.T) {
	env := sim.NewEnv()
	sig := env.NewSignal()
	env.Go("stuck", func(p *sim.Proc) { sig.Wait(p) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked Run did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("deadlock panic value %v is not an error", r)
		}
		if !errors.Is(err, sim.ErrDeadlock) {
			t.Errorf("errors.Is(%v, sim.ErrDeadlock) = false", err)
		}
	}()
	env.Run()
}
