package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// DumpState writes a human-readable snapshot of the whole VDom instance —
// every VDS's domain map (in the layout of Figure 3), every thread's VDR
// and residency, and the event counters — for debugging and for the
// diagnostics the kernel would expose under /proc.
func (m *Manager) DumpState(w io.Writer) {
	fmt.Fprintf(w, "VDom state: %d vdoms live, %d VDSes, %d threads\n",
		len(m.live), len(m.vdses), len(m.vdrs))

	for _, vds := range m.vdses {
		fmt.Fprintf(w, "\nVDS%d (asid %d, %d threads, %d free pdoms, cpus %b)\n",
			vds.id, vds.asid, vds.NumThreads(), vds.FreePdoms(), uint64(vds.CPUSet()))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  pdom\tvdom\t#thread\tlast use")
		for p := firstUsablePdom; p < vds.numPdoms; p++ {
			e := vds.domainMap[p]
			if !e.used {
				fmt.Fprintf(tw, "  %d\t-\t\t\n", p)
				continue
			}
			fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\n", p, e.vdom, e.threads, e.lastUse)
		}
		tw.Flush()
	}

	// Threads in TID order for stable output.
	type row struct {
		tid int
		v   *VDR
	}
	var rows []row
	for task, vdr := range m.vdrs {
		rows = append(rows, row{task.TID(), vdr})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].tid < rows[j].tid })
	for _, r := range rows {
		fmt.Fprintf(w, "\nthread %d: VDS%d (nas %d, %d attached), register %#x\n",
			r.tid, r.v.current.id, r.v.nas, len(r.v.vdses), r.v.task.SavedPerm())
		// Non-AD permissions, in vdom order.
		var ds []VdomID
		for d, p := range r.v.perms {
			if p != VPermNone {
				ds = append(ds, VdomID(d))
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		for _, d := range ds {
			marker := " (unmapped here)"
			if p, ok := r.v.current.PdomOf(d); ok {
				marker = fmt.Sprintf(" @ pdom%d", p)
			}
			fmt.Fprintf(w, "  vdom %d: %v%s\n", d, r.v.perms.get(d), marker)
		}
	}

	fmt.Fprintf(w, "\nstats: %+v\n", m.Stats)
}
