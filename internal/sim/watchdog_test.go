package sim

import (
	"errors"
	"testing"
)

func TestWatchdogFiresAfterThreshold(t *testing.T) {
	var firedAt uint64
	w := NewWatchdog(3, func(clock uint64) { firedAt = clock })

	// Progress keeps it quiet.
	for c := uint64(10); c <= 30; c += 10 {
		if w.Observe(c) {
			t.Fatalf("watchdog fired during progress at clock %d", c)
		}
	}
	// Two stuck observations: still below the threshold of 3.
	if w.Observe(30) || w.Observe(30) {
		t.Fatal("watchdog fired below threshold")
	}
	if !w.Observe(30) {
		t.Fatal("watchdog did not fire at the threshold")
	}
	if firedAt != 30 {
		t.Fatalf("onStall clock = %d, want 30", firedAt)
	}
	if !w.Fired() {
		t.Fatal("Fired() false after firing")
	}
	// Latched: further observations are no-ops.
	if w.Observe(30) {
		t.Fatal("watchdog fired twice without Reset")
	}

	w.Reset()
	if w.Fired() {
		t.Fatal("Fired() true after Reset")
	}
	// Progress resets the stuck count after re-arming too.
	if w.Observe(40) || w.Observe(40) || w.Observe(50) {
		t.Fatal("watchdog fired after mixed progress post-Reset")
	}
}

func TestWatchdogProgressResetsCount(t *testing.T) {
	w := NewWatchdog(2, nil)
	if w.Observe(5) {
		t.Fatal("fired on first observation")
	}
	if w.Observe(5) {
		t.Fatal("fired at stuck=1 with threshold 2")
	}
	if w.Observe(6) {
		t.Fatal("fired on progress")
	}
	if w.Observe(6) {
		t.Fatal("fired at stuck=1 after progress")
	}
	if !w.Observe(6) {
		t.Fatal("did not fire at stuck=2")
	}
}

// TestRunDeadlockWithWatchdog checks that an attached watchdog converts
// the deadlock panic into a fired stall callback and a normal return.
func TestRunDeadlockWithWatchdog(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Delay(7)
		// Never releases: the waiter below deadlocks.
	})
	e.Go("waiter", func(p *Proc) {
		p.Delay(1)
		r.Acquire(p, 1)
	})

	var stalled bool
	wd := NewWatchdog(4, func(clock uint64) {
		stalled = true
		if clock != 7 {
			t.Errorf("stall clock = %d, want 7", clock)
		}
	})
	e.SetWatchdog(wd)
	end := e.Run()
	if !stalled {
		t.Fatal("watchdog did not fire on deadlock")
	}
	if end != 7 {
		t.Fatalf("Run returned clock %d, want 7", end)
	}
}

// TestRunDeadlockWithoutWatchdog pins the historical behavior: no
// watchdog means the ErrDeadlock panic is raised as before.
func TestRunDeadlockWithoutWatchdog(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Delay(3)
	})
	e.Go("waiter", func(p *Proc) {
		p.Delay(1)
		r.Acquire(p, 1)
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected a deadlock panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrDeadlock) {
			t.Fatalf("panic value %v is not ErrDeadlock", v)
		}
	}()
	e.Run()
}

func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(99)
	r.Uint64()
	r.Uint64()
	st := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}

	r2 := NewRand(0)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d after SetState = %d, want %d", i, got, w)
		}
	}
}

// TestWatchdogRejectsNonPositiveThreshold pins the constructor contract:
// a zero or negative threshold is a programming error, not a no-op dog.
func TestWatchdogRejectsNonPositiveThreshold(t *testing.T) {
	for _, th := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWatchdog(%d, nil) did not panic", th)
				}
			}()
			NewWatchdog(th, nil)
		}()
	}
}

// TestWatchdogReArmAfterFire checks the full fire → Reset → fire cycle:
// the callback runs once per armed period, and a re-armed dog needs a
// full fresh streak of stuck observations to fire again.
func TestWatchdogReArmAfterFire(t *testing.T) {
	fires := 0
	w := NewWatchdog(2, func(uint64) { fires++ })
	w.Observe(10)
	w.Observe(10)
	if !w.Observe(10) || fires != 1 {
		t.Fatalf("first firing: fired=%v fires=%d", w.Fired(), fires)
	}
	w.Reset()
	// The pre-fire history is gone: the first post-Reset observation
	// seeds the baseline even at the same stuck clock.
	if w.Observe(10) || w.Observe(10) {
		t.Fatal("re-armed watchdog fired before a full fresh streak")
	}
	if !w.Observe(10) {
		t.Fatal("re-armed watchdog did not fire after a full streak")
	}
	if fires != 2 {
		t.Fatalf("fires = %d, want 2", fires)
	}
}

// TestWatchdogExactFireAtCheckpointBoundary drives the supervisor's
// observation pattern: steady progress up to a checkpoint boundary,
// then a wedge frozen at the boundary clock. The dog must stay quiet
// through threshold-1 stuck observations and fire on exactly the
// threshold-th — no earlier (checkpoint pauses don't advance the
// simulated clock either) and no later.
func TestWatchdogExactFireAtCheckpointBoundary(t *testing.T) {
	const threshold = 8
	w := NewWatchdog(threshold, nil)
	clock := uint64(0)
	for op := 1; op <= 100; op++ {
		clock += 7
		if w.Observe(clock) {
			t.Fatalf("fired during progress at op %d", op)
		}
	}
	for i := 1; i < threshold; i++ {
		if w.Observe(clock) {
			t.Fatalf("fired at stuck=%d, below threshold %d", i, threshold)
		}
	}
	if !w.Observe(clock) {
		t.Fatal("did not fire exactly at the threshold observation")
	}
	if w.Observe(clock) {
		t.Fatal("fired again while latched")
	}
}
