package fleet

import (
	"fmt"
	"os"
	"os/exec"
)

// SpawnProcess returns a Spawn that launches real worker subprocesses:
// argv[0] run with argv[1:], stdin/stdout as the protocol pipes, stderr
// passed through to the coordinator's stderr. Kill delivers SIGKILL —
// the same uncatchable death the chaos tests inject — and is safe to
// call repeatedly or after exit.
func SpawnProcess(argv []string) Spawn {
	return func(id int) (*WorkerProc, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("fleet: empty worker command")
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), fmt.Sprintf("VDOM_FLEET_WORKER=%d", id))
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &WorkerProc{
			In:   in,
			Out:  out,
			Kill: func() { cmd.Process.Kill() },
			Wait: func() error { return cmd.Wait() },
		}, nil
	}
}
