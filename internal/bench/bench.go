// Package bench regenerates every table and figure of the VDom paper's
// evaluation section: Figure 1 (libmpk overhead breakdown), Table 3
// (operation cycles), Table 4 (domain access patterns), Table 5 (memory
// synchronization), Figures 5–7 (httpd, MySQL, PMO), the UnixBench
// comparison (§7.3), and the context-switch measurements (§7.5), plus
// ablation sweeps over VDom's design choices. Results render as aligned
// text or CSV.
//
// It covers the paper's §7 (evaluation) tables and figures and is the
// "Bench harness" row of the DESIGN.md §3 module map. Options.Metrics and
// Options.Trace thread the unified observability layer through the
// instrumented experiments (Table 4, chaos soak); see OBSERVABILITY.md.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"vdom/internal/cycles"
	"vdom/internal/metrics"
	"vdom/internal/par"
	"vdom/internal/workload"
)

// Options control iteration counts and output rendering.
type Options struct {
	// Quick reduces iteration counts for fast smoke runs; results keep
	// their shape but average over fewer operations.
	Quick bool
	// Format selects text (default) or CSV rendering.
	Format Format

	// Metrics, when non-nil, accumulates every instrumented cell's
	// counters and cycle attribution across the run (Table 4 and the
	// chaos soak are instrumented today). The rendered tables are
	// byte-identical with or without it: metrics observe costs, they
	// never change them. The harness also maintains the
	// "bench/total-cycles" counter — the sum of every cell's
	// independently measured grand total — which equals the registry's
	// attributed TotalCycles when attribution is exact.
	Metrics *metrics.Registry
	// Trace, when non-nil, collects Chrome-trace decision spans from
	// instrumented experiments for Perfetto (see OBSERVABILITY.md).
	Trace *metrics.Trace

	// Parallel is the worker-pool width for the experiment grids: every
	// grid cell (one isolated System each) is fanned out across at most
	// this many goroutines, and results are collected in cell order, so
	// the rendered output — including metrics snapshots and traces — is
	// byte-identical for every value. 0 selects runtime.GOMAXPROCS(0);
	// 1 forces the sequential reference execution.
	Parallel int

	// TraceDir is where Record writes and Replay reads the domain-op
	// trace corpus (default testdata/traces, the golden corpus).
	TraceDir string
	// DivergenceOut, when set, makes Replay write a JSON divergence
	// report (empty list for a clean run) to this path.
	DivergenceOut string
	// SoakReport, when set, makes the chaos experiment write a
	// machine-readable JSON soak report to this path.
	SoakReport string
	// Kernel selects which kernel backend the chaos experiment soaks:
	// "vdom" (default) or "dpti". Other registered backends have no
	// chaos driver today.
	Kernel string
	// TraceDump, when set, turns on soak recording and dumps each
	// failing chaos shard's minimal replayable trace into this
	// directory. The snapshot experiment also dumps failing shards'
	// reproducer checkpoints (crash-shardN.snap) there.
	TraceDump string

	// SnapPath and TailPath point the recover subcommand at a crash
	// reproducer: an encoded vdom-snap/v1 checkpoint and the recorded
	// trace whose tail rolls it forward (see RECOVERY.md).
	SnapPath string
	TailPath string

	// Scenario points the scenario experiment (and serve -scenario) at a
	// vdom-scenario/v1 spec file; see SCENARIOS.md.
	Scenario string

	// Ctx, when non-nil, bounds the long-running experiments (chaos,
	// snapshot, serve) by wall clock: cancellation aborts between soak
	// ops with a typed error, so a wedged run can never hang a CI job.
	// The serve experiment also drains on it (the SIGTERM path).
	Ctx context.Context
	// Serve parameterizes the serve subcommand; see ServeOptions.
	Serve ServeOptions

	// FleetRun, when non-nil, shards every distributable experiment
	// grid across a fleet of worker subprocesses instead of the
	// in-process pool; output stays byte-identical (see FLEET.md). The
	// fleet's recovery ladder and its aggregated report live here.
	FleetRun *FleetRun
}

// ctx resolves Options.Ctx, defaulting to the background context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// workers resolves Parallel to a concrete pool width.
func (o Options) workers() int { return par.Workers(o.Parallel) }

// cell is one grid cell's harvested result: its rendered value plus the
// observability state the cell collected privately. Each parallel worker
// fills cells for disjoint indices; the collector merges them in index
// order so worker count never reaches the output. Cells computed by a
// fleet worker subprocess arrive with their registry decoded into snap
// (instead of reg) and any grid-specific payload in aux; fail carries a
// cell-level failure (non-empty only for cells a fleet quarantined or a
// cancelled soak shard).
type cell struct {
	text  string
	total uint64
	reg   *metrics.Registry
	snap  *metrics.Snapshot
	tr    *metrics.Trace
	aux   []byte
	fail  string
}

// newCellSinks returns fresh per-cell observability sinks mirroring which
// of the run-wide sinks are enabled.
func (o Options) newCellSinks() (*metrics.Registry, *metrics.Trace) {
	var reg *metrics.Registry
	var tr *metrics.Trace
	if o.Metrics.Enabled() {
		reg = metrics.New()
	}
	if o.Trace.Enabled() {
		tr = metrics.NewTrace()
	}
	return reg, tr
}

// collect folds one cell's observability state into the run-wide sinks.
// A locally computed cell merges its live registry; a fleet-computed
// cell merges its decoded snapshot — metrics.MergeSnapshot is lossless
// against Merge, so the two paths yield byte-identical run snapshots.
func (o Options) collect(c cell) {
	o.Metrics.Add("bench/total-cycles", c.total)
	o.Metrics.Merge(c.reg)
	o.Metrics.MergeSnapshot(c.snap)
	o.Trace.Append(c.tr)
}

func (o Options) httpdRequests() int {
	if o.Quick {
		return 8
	}
	return 40
}

func (o Options) mysqlQueries() int {
	if o.Quick {
		return 6
	}
	return 25
}

func (o Options) pmoOps() int {
	if o.Quick {
		return 600
	}
	return 3000
}

func (o Options) patternRounds() int {
	if o.Quick {
		return 4
	}
	return 12
}

// Fig1 reproduces Figure 1: the overhead breakdown of libmpk on httpd
// (per-key 4 KiB domains, 25 server threads, 16 KiB transfers) across
// concurrent client counts.
func Fig1(w io.Writer, o Options) {
	t := &Table{
		Title:   "Figure 1: overhead breakdown of libmpk on httpd (25 threads, 16KB)",
		Columns: []string{"clients", "total ovh", "busy waiting", "TLB shootdown", "memory+metadata mgmt"},
	}
	for _, c := range o.mapGrid("fig1", 0) {
		t.Row(strings.Split(c.text, rowSep)...)
	}
	o.Render(w, t)
}

// Table3 reproduces Table 3: average cycles of common operations.
func Table3(w io.Writer) { Table3Opts(w, Options{}) }

// Table3Opts is Table3 with rendering options.
func Table3Opts(w io.Writer, o Options) {
	t := &Table{
		Title:   "Table 3: average cycles of common operations",
		Columns: []string{"Operation", "X86 Cycles", "ARM Cycles"},
	}
	for _, r := range workload.Table3Parallel(o.workers()) {
		arm := "undefined"
		if r.ARMDefined {
			arm = f1(r.ARM)
		}
		t.Row(r.Operation, f1(r.X86), arm)
	}
	o.Render(w, t)
}

// table4Counts are the vdom counts of Table 4's columns.
var table4Counts = []int{3, 4, 15, 16, 29, 32, 64, 70}

// Table4 reproduces Table 4: average cycles of wrvdr (and counterparts) on
// sequential and switch-triggering accesses of 2 MiB vdoms.
func Table4(w io.Writer, o Options) {
	cols := []string{"# of vdoms"}
	for _, n := range table4Counts {
		cols = append(cols, fmt.Sprint(n))
	}
	t := &Table{
		Title:   "Table 4: average cycles per activation, 2MB (512-page) vdoms",
		Columns: cols,
	}
	// One cell per (row, vdom count); every cell builds an isolated
	// System and collects into private sinks, merged below in cell order.
	nc := len(table4Counts)
	results := o.mapGrid("table4", 0)
	for ri, s := range table4Rows {
		row := []string{s.label}
		for ci := range table4Counts {
			c := results[ri*nc+ci]
			o.collect(c)
			row = append(row, c.text)
		}
		t.Row(row...)
	}
	o.Render(w, t)
}

// Table5 reproduces Table 5: 4 KiB allocation+synchronization overhead
// across VDS counts.
func Table5(w io.Writer) { Table5Opts(w, Options{}) }

// Table5Opts is Table5 with rendering options.
func Table5Opts(w io.Writer, o Options) {
	t := &Table{
		Title:   "Table 5: alloc+sync overhead across numbers of VDSes",
		Columns: []string{"# of VDSes", "2", "4", "8", "16", "32"},
	}
	results := o.mapGrid("table5", 0)
	for ai, arch := range table5Arches {
		cells := []string{fmt.Sprintf("%v overhead (%%)", arch)}
		for _, c := range results[ai*len(table5Counts) : (ai+1)*len(table5Counts)] {
			cells = append(cells, c.text)
		}
		t.Row(cells...)
	}
	o.Render(w, t)
}

// fig5Systems are Figure 5's lines, plus the lowerbound configuration the
// paper's §7.6 prose reports (all keys in one domain: 0.86–1.03%).
var fig5Systems = []workload.System{
	workload.Original, workload.VDom, workload.VDomLowerbound,
	workload.EPK, workload.Libmpk,
}

// Fig5 reproduces Figure 5: httpd throughput for original, VDom (plus the
// single-domain lowerbound), EPK, and libmpk across architectures, file
// sizes, and client counts.
func Fig5(w io.Writer, o Options) {
	fmt.Fprintln(w, "Figure 5: httpd throughput (requests/second)")
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		clientCounts := fig5Clients(arch)
		for _, size := range fig5Sizes {
			cols := []string{"clients"}
			for _, s := range fig5Systems {
				cols = append(cols, s.String())
			}
			t := &Table{
				Title:   fmt.Sprintf("%v %dKB", arch, size/1024),
				Columns: cols,
			}
			results := o.mapGrid(fmt.Sprintf("fig5:%v:%d", arch, size), 0)
			for ci, c := range clientCounts {
				cells := []string{fmt.Sprint(c)}
				for _, r := range results[ci*len(fig5Systems) : (ci+1)*len(fig5Systems)] {
					cells = append(cells, r.text)
				}
				t.Row(cells...)
			}
			fmt.Fprintln(w)
			o.Render(w, t)
		}
	}
}

// Fig6 reproduces Figure 6: MySQL throughput for the four systems.
func Fig6(w io.Writer, o Options) {
	fmt.Fprintln(w, "Figure 6: MySQL throughput (queries/second)")
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		clientCounts := fig6Clients(arch)
		cols := []string{"clients"}
		for _, s := range fig6Systems {
			cols = append(cols, s.String())
		}
		t := &Table{Title: arch.String(), Columns: cols}
		results := o.mapGrid(fmt.Sprintf("fig6:%v", arch), 0)
		for ci, c := range clientCounts {
			cells := []string{fmt.Sprint(c)}
			for _, r := range results[ci*len(fig6Systems) : (ci+1)*len(fig6Systems)] {
				cells = append(cells, r.text)
			}
			t.Row(cells...)
		}
		fmt.Fprintln(w)
		o.Render(w, t)
	}
}

// Fig7 reproduces Figure 7: String Replace overheads for the six
// configurations across thread counts.
func Fig7(w io.Writer, o Options) {
	fmt.Fprintln(w, "Figure 7: String Replace overhead (%) on 64 x 2MB PMOs")
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		threads := fig7Threads(arch)
		cols := []string{"threads"}
		for _, th := range threads {
			cols = append(cols, fmt.Sprint(th))
		}
		t := &Table{Title: arch.String(), Columns: cols}
		results := o.mapGrid(fmt.Sprintf("fig7:%v", arch), 0)
		for vi, v := range fig7Variants {
			cells := []string{v.name}
			for _, r := range results[vi*len(threads) : (vi+1)*len(threads)] {
				cells = append(cells, r.text)
			}
			t.Row(cells...)
		}
		fmt.Fprintln(w)
		o.Render(w, t)
	}
}

// UnixBench reproduces §7.3: relative UnixBench scores of the VDom kernel.
func UnixBench(w io.Writer) { UnixBenchOpts(w, Options{}) }

// UnixBenchOpts is UnixBench with rendering options.
func UnixBenchOpts(w io.Writer, o Options) {
	t := &Table{
		Title:   "UnixBench (§7.3): VDom kernel score relative to vanilla (100% = equal)",
		Columns: []string{"arch", "suite", "index", "worst test"},
	}
	for _, c := range o.mapGrid("unixbench", 0) {
		t.Row(strings.Split(c.text, rowSep)...)
	}
	o.Render(w, t)
}

// CtxSwitch reproduces §7.5's context-switch measurements.
func CtxSwitch(w io.Writer) { CtxSwitchOpts(w, Options{}) }

// CtxSwitchOpts is CtxSwitch with rendering options.
func CtxSwitchOpts(w io.Writer, o Options) {
	t := &Table{
		Title: "Context switch (§7.5): switch_mm cycles",
		Columns: []string{"arch", "vanilla kernel", "VDom kernel (non-VDom proc)",
			"slowdown", "switch to a VDS"},
	}
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		vanilla, vdomProc, vds := workload.CtxSwitchCycles(arch)
		t.Row(arch.String(), f1(vanilla), f1(vdomProc),
			fmt.Sprintf("%.2f%%", (vdomProc/vanilla-1)*100), f1(vds))
	}
	o.Render(w, t)
}

// Tables runs the full table grid (Tables 3, 4, and 5) — the workhorse
// experiment the parallel engine targets: ~110 isolated cells fanned out
// across o.Parallel workers with byte-identical output for any width.
func Tables(w io.Writer, o Options) {
	Table3Opts(w, o)
	fmt.Fprintln(w)
	Table4(w, o)
	fmt.Fprintln(w)
	Table5Opts(w, o)
}

// All runs every experiment in order.
func All(w io.Writer, o Options) {
	sections := []func(){
		func() { Fig1(w, o) },
		func() { Table1(w, o) },
		func() { Table2(w, o) },
		func() { Table3Opts(w, o) },
		func() { Table4(w, o) },
		func() { Table5Opts(w, o) },
		func() { Fig5(w, o) },
		func() { Fig6(w, o) },
		func() { Fig7(w, o) },
		func() { UnixBenchOpts(w, o) },
		func() { CtxSwitchOpts(w, o) },
		func() { Ablations(w, o) },
		// Matrix is appended last so the earlier sections' output stays a
		// byte-identical prefix of older releases' `all` output.
		func() { Matrix(w, o) },
	}
	for i, s := range sections {
		if i > 0 {
			fmt.Fprintln(w)
		}
		s()
	}
}
