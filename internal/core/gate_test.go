package core

import (
	"errors"
	"testing"

	"vdom/internal/hw"
	"vdom/internal/kernel"
)

func TestGateSealsVDRPage(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	g, err := NewGate(f.m)
	if err != nil {
		t.Fatal(err)
	}
	page, err := g.SealVDRPage(task)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := g.VDRPage(task); !ok || got != page {
		t.Fatalf("VDRPage = (%#x, %v)", uint64(got), ok)
	}
	// Untrusted code (any normal access) cannot read or write the VDR
	// page, even from its owner thread.
	if _, err := task.Access(page, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("VDR page read = %v, want SIGSEGV", err)
	}
	if _, err := task.Access(page, true); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("VDR page write = %v, want SIGSEGV", err)
	}
	// Attempting to re-tag the sealed page to an attacker vdom is
	// rejected (address-space integrity).
	evil, _ := f.m.AllocVdom(false)
	if _, err := f.m.Mprotect(task, page, pg, evil); !errors.Is(err, ErrReassign) {
		t.Errorf("re-tagging sealed page = %v, want ErrReassign", err)
	}
}

func TestGateEnterOpensExitCloses(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	f.k.Dispatch(task)
	g, err := NewGate(f.m)
	if err != nil {
		t.Fatal(err)
	}
	saved, _ := g.Enter(task)
	core := task.Core()
	if core.Perm().Get(uint8(AccessNeverPdom)) != hw.PermReadWrite {
		t.Error("gate entry did not open pdom1")
	}
	_ = saved
	// Benign exit: legal value restores pdom1 to access-disable.
	if _, err := g.Exit(task, g.LegalExitValue(task)); err != nil {
		t.Fatalf("legal exit rejected: %v", err)
	}
	if core.Perm().Get(uint8(AccessNeverPdom)) != hw.PermNone {
		t.Error("gate exit left pdom1 open")
	}
}

func TestGateDetectsHijackedEAX(t *testing.T) {
	// §7.2: filling PKRU with a hijacked eax that keeps pdom1 accessible
	// must be caught by the exit check.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	f.k.Dispatch(task)
	g, err := NewGate(f.m)
	if err != nil {
		t.Fatal(err)
	}
	g.Enter(task)
	var evil hw.PermRegister // all-RW, including pdom1
	if _, err := g.Exit(task, evil.Raw()); !errors.Is(err, ErrGateViolation) {
		t.Errorf("hijacked exit = %v, want ErrGateViolation", err)
	}
}

func TestValidateRegisterDynamicCheck(t *testing.T) {
	// Table 2 ❷: the sandbox rebuilds the expected PKRU from the shared
	// domain map instead of comparing against fixed values.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	g, err := NewGate(f.m)
	if err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if !g.ValidateRegister(task, task.SavedPerm()) {
		t.Error("legal register rejected")
	}
	if g.ValidateRegister(task, 0) {
		t.Error("all-access register accepted")
	}
	// After the domain map changes (new vdom mapped), the expected value
	// changes with it — the dynamic reconstruction tracks it.
	d2, b2 := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d2, VPermRead)
	if _, err := task.Access(b2, false); err != nil {
		t.Fatal(err)
	}
	if !g.ValidateRegister(task, task.SavedPerm()) {
		t.Error("legal register rejected after domain-map change")
	}
	// A thread with no VDR has no expected value.
	stranger := f.proc.NewTask(1)
	if g.ValidateRegister(stranger, 0) {
		t.Error("validated a thread with no VDR")
	}
}

func TestScanBinaryFindsUnsafeWRPKRU(t *testing.T) {
	// Table 2 ❶: unvetted wrpkru and xrstor occurrences are reported;
	// the gate's own wrpkru (followed by cmp/jne legality check) is not.
	code := []Instr{
		{OpOther},
		{OpWRPKRU}, // unsafe: no check follows
		{OpOther},
		{OpXORECX},
		{OpWRPKRU}, // gated: cmp+jne follow
		{OpCmpEAX},
		{OpJNE},
		{OpXRSTOR}, // always unsafe
		{OpOther},
	}
	fs := ScanBinary(code)
	if len(fs) != 2 {
		t.Fatalf("findings = %v, want 2", fs)
	}
	if fs[0].Index != 1 || fs[0].Op != OpWRPKRU {
		t.Errorf("first finding = %+v", fs[0])
	}
	if fs[1].Index != 7 || fs[1].Op != OpXRSTOR {
		t.Errorf("second finding = %+v", fs[1])
	}
}

func TestScanBinaryCleanGate(t *testing.T) {
	code := []Instr{
		{OpXORECX}, {OpRDPKRU}, {OpOther}, {OpWRPKRU}, {OpOther}, {OpCmpEAX}, {OpJNE},
	}
	if fs := ScanBinary(code); len(fs) != 0 {
		t.Errorf("clean gate flagged: %v", fs)
	}
}
