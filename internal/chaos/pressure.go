package chaos

import (
	"fmt"

	"vdom/internal/sim"
)

// Resource-pressure fault model for the supervised soak service
// (internal/serve): where the Injector attacks the simulated machine,
// Pressure attacks the *harness* — checkpoint writes fail transiently
// and written checkpoints corrupt on disk, the way a loaded host sheds
// IO. The supervisor must degrade gracefully: a failed write keeps the
// older ring entries, and a corrupted entry is detected by the
// container's CRCs at recovery time and skipped in favor of the
// previous one (see RECOVERY.md).
//
// Pressure draws from its own seeded PRNG, fully independent of the
// Injector's and the workload's streams, so enabling it never perturbs
// the simulated run — a supervised run under pressure stays bit-
// identical to an unsupervised run of the same seed whenever every
// fault was recovered.

// PressureConfig enables the harness-side fault classes with per-fault
// probabilities in [0, 1]. The zero value injects nothing.
type PressureConfig struct {
	// Seed drives the PRNG; the same seed replays the same faults.
	Seed uint64
	// SnapWriteFail is the probability that a rolling-checkpoint write
	// fails transiently (the ring keeps its older entries).
	SnapWriteFail float64
	// SnapCorrupt is the probability that a written checkpoint lands
	// corrupted on disk, to be caught by the container CRCs at restore.
	SnapCorrupt float64
}

// Pressure is the seeded harness-fault source. Like the Injector it is
// not safe for concurrent use: each supervised shard owns one.
type Pressure struct {
	cfg      PressureConfig
	rng      *sim.Rand
	seq      uint64
	injected map[string]uint64
	events   []Event
}

// NewPressure builds a pressure source from the config. A nil *Pressure
// is a valid no-op source: every method reports "no fault".
func NewPressure(cfg PressureConfig) *Pressure {
	return &Pressure{
		cfg:      cfg,
		rng:      sim.NewRand(cfg.Seed),
		injected: make(map[string]uint64),
	}
}

// hit draws against probability p; non-positive p never draws, keeping
// disabled fault classes out of the random stream.
func (p *Pressure) hit(p0 float64) bool {
	if p == nil || p0 <= 0 {
		return false
	}
	return p.rng.Float64() < p0
}

func (p *Pressure) log(kind, detail string) {
	p.seq++
	p.injected[kind]++
	if len(p.events) < maxEvents {
		p.events = append(p.events, Event{Seq: p.seq, Kind: "inject:" + kind, Detail: detail})
	}
}

// FailCheckpointWrite reports whether this checkpoint write fails
// transiently, logging the fault when it does.
func (p *Pressure) FailCheckpointWrite(op int) bool {
	if !p.hit(p.cfg.SnapWriteFail) {
		return false
	}
	p.log("snap-write-fail", fmt.Sprintf("checkpoint write at op %d failed", op))
	return true
}

// CorruptCheckpoint decides whether this written checkpoint corrupts on
// disk and, when it does, flips the container's final byte in place —
// inside the last section's payload, so the CRC check at restore time
// rejects the entry. It returns whether the fault struck.
func (p *Pressure) CorruptCheckpoint(op int, data []byte) bool {
	if len(data) == 0 || !p.hit(p.cfg.SnapCorrupt) {
		return false
	}
	data[len(data)-1] ^= 0xFF
	p.log("snap-corrupt", fmt.Sprintf("checkpoint at op %d corrupted on disk", op))
	return true
}

// Injected returns a copy of the per-kind fault counters.
func (p *Pressure) Injected() map[string]uint64 {
	out := make(map[string]uint64)
	if p == nil {
		return out
	}
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

// Events returns the deterministic fault log (shared Event shape with
// the Injector, capped at maxEvents like its log).
func (p *Pressure) Events() []Event {
	if p == nil {
		return nil
	}
	return append([]Event(nil), p.events...)
}
