package hw

import (
	"testing"
	"testing/quick"

	"vdom/internal/cycles"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

func TestPermEncoding(t *testing.T) {
	var r PermRegister
	for d := uint8(0); d < 16; d++ {
		if r.Get(d) != PermReadWrite {
			t.Fatalf("zero register: pdom %d = %v, want RW", d, r.Get(d))
		}
	}
	r.Set(3, PermNone)
	r.Set(7, PermRead)
	if r.Get(3) != PermNone || r.Get(7) != PermRead {
		t.Errorf("Get(3)=%v Get(7)=%v", r.Get(3), r.Get(7))
	}
	if r.Get(2) != PermReadWrite || r.Get(4) != PermReadWrite {
		t.Error("neighbouring fields disturbed")
	}
	r.Set(3, PermReadWrite)
	if r.Get(3) != PermReadWrite {
		t.Error("re-granting full access failed")
	}
}

func TestPermAllows(t *testing.T) {
	cases := []struct {
		p           Perm
		read, write bool
	}{
		{PermNone, false, false},
		{PermRead, true, false},
		{PermReadWrite, true, true},
	}
	for _, c := range cases {
		if c.p.Allows(false) != c.read {
			t.Errorf("%v.Allows(read) = %v", c.p, c.p.Allows(false))
		}
		if c.p.Allows(true) != c.write {
			t.Errorf("%v.Allows(write) = %v", c.p, c.p.Allows(true))
		}
	}
}

func TestPermRegisterRawRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64, d uint8) bool {
		var r PermRegister
		r.SetRaw(v)
		pd := d % MaxPdoms
		// Raw round-trips and Get is consistent with the PKRU bits.
		if r.Raw() != v {
			return false
		}
		f := v >> (2 * uint64(pd)) & 0b11
		got := r.Get(pd)
		switch {
		case f&0b01 != 0:
			return got == PermNone
		case f&0b10 != 0:
			return got == PermRead
		default:
			return got == PermReadWrite
		}
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDenyAllKeepsPdom0(t *testing.T) {
	var r PermRegister
	r.SetRaw(DenyAll())
	if r.Get(0) != PermReadWrite {
		t.Error("DenyAll revoked pdom0")
	}
	for d := uint8(1); d < MaxPdoms; d++ {
		if r.Get(d) != PermNone {
			t.Errorf("DenyAll left pdom %d = %v", d, r.Get(d))
		}
	}
}

func TestCPUSet(t *testing.T) {
	var s CPUSet
	s = s.Add(3).Add(17).Add(3)
	if !s.Has(3) || !s.Has(17) || s.Has(4) {
		t.Errorf("set membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	s = s.Remove(3)
	if s.Has(3) || s.Count() != 1 {
		t.Errorf("Remove failed: %b", s)
	}
	if AllCores(4) != 0b1111 {
		t.Errorf("AllCores(4) = %b", AllCores(4))
	}
}

func newX86(cores int) *Machine {
	return NewMachine(Config{Arch: cycles.X86, NumCores: cores, TLBCapacity: 64})
}

func TestAccessHappyPath(t *testing.T) {
	m := newX86(1)
	c := m.Core(0)
	pt := pagetable.New()
	pt.Map(0x4000, 7, true, 2)
	c.SwitchPgd(pt, 1)

	res := c.Access(0x4000, true)
	if res.Kind != AccessOK {
		t.Fatalf("first access = %v, want ok", res.Kind)
	}
	if res.TLBHit {
		t.Error("first access claimed a TLB hit")
	}
	coldCost := res.Cost

	res = c.Access(0x4000, false)
	if res.Kind != AccessOK || !res.TLBHit {
		t.Fatalf("second access = %+v, want warm hit", res)
	}
	if res.Cost >= coldCost {
		t.Errorf("warm access cost %d not cheaper than cold %d", res.Cost, coldCost)
	}
}

func TestAccessDomainFault(t *testing.T) {
	m := newX86(1)
	c := m.Core(0)
	pt := pagetable.New()
	pt.Map(0x4000, 7, true, 5)
	c.SwitchPgd(pt, 1)

	c.Perm().Set(5, PermNone)
	if res := c.Access(0x4000, false); res.Kind != FaultDomainPerm {
		t.Errorf("read with AD = %v, want domain fault", res.Kind)
	}
	c.Perm().Set(5, PermRead)
	if res := c.Access(0x4000, false); res.Kind != AccessOK {
		t.Errorf("read with WD = %v, want ok", res.Kind)
	}
	if res := c.Access(0x4000, true); res.Kind != FaultDomainPerm {
		t.Errorf("write with WD = %v, want domain fault", res.Kind)
	}
	// The domain check applies on TLB hits too (the tag is cached).
	c.Perm().Set(5, PermNone)
	res := c.Access(0x4000, false)
	if res.Kind != FaultDomainPerm || !res.TLBHit {
		t.Errorf("hit-path domain check = %+v", res)
	}
}

func TestAccessNotPresentAndWriteProtect(t *testing.T) {
	m := newX86(1)
	c := m.Core(0)
	pt := pagetable.New()
	pt.Map(0x4000, 7, false, 0) // read-only page
	c.SwitchPgd(pt, 1)

	if res := c.Access(0x9000, false); res.Kind != FaultNotPresent {
		t.Errorf("unmapped access = %v", res.Kind)
	}
	if res := c.Access(0x4000, true); res.Kind != FaultWriteProtect {
		t.Errorf("write to RO page = %v", res.Kind)
	}
	if res := c.Access(0x4000, false); res.Kind != AccessOK {
		t.Errorf("read of RO page = %v", res.Kind)
	}
}

func TestAccessPMDDisabled(t *testing.T) {
	m := newX86(1)
	c := m.Core(0)
	pt := pagetable.New()
	base := pagetable.VAddr(0x40000000)
	pt.Map(base, 7, true, 2)
	c.SwitchPgd(pt, 1)
	c.Access(base, false) // warm the TLB
	pt.DisablePMD(base)
	// The stale TLB entry still hits — exactly why evictions must flush.
	if res := c.Access(base, false); !res.TLBHit {
		t.Error("expected stale TLB hit before flush")
	}
	c.TLB().FlushPage(1, base.VPN())
	if res := c.Access(base, false); res.Kind != FaultPMDDisabled {
		t.Errorf("after flush = %v, want pmd-disabled fault", res.Kind)
	}
}

func TestSwitchPgdPreservesTLBWithASID(t *testing.T) {
	m := newX86(1)
	c := m.Core(0)
	pt1, pt2 := pagetable.New(), pagetable.New()
	pt1.Map(0x4000, 1, true, 0)
	pt2.Map(0x4000, 2, true, 0)

	c.SwitchPgd(pt1, 1)
	c.Access(0x4000, false)
	c.SwitchPgd(pt2, 2)
	c.Access(0x4000, false)
	c.SwitchPgd(pt1, 1)
	res := c.Access(0x4000, false)
	if !res.TLBHit {
		t.Error("ASID-tagged entry lost across pgd switches")
	}
}

func TestSwitchPgdFlushesWithoutASID(t *testing.T) {
	m := NewMachine(Config{Arch: cycles.X86, NumCores: 1, TLBCapacity: 64, NoASID: true})
	c := m.Core(0)
	pt1 := pagetable.New()
	pt1.Map(0x4000, 1, true, 0)
	c.SwitchPgd(pt1, 1)
	c.Access(0x4000, false)
	costWith := c.SwitchPgd(pt1, 1)
	if res := c.Access(0x4000, false); res.TLBHit {
		t.Error("TLB survived pgd switch despite NoASID")
	}
	// The no-ASID switch must cost more than an ASID-tagged one.
	m2 := newX86(1)
	costASID := m2.Core(0).SwitchPgd(pt1, 1)
	if costWith <= costASID {
		t.Errorf("NoASID switch cost %d <= ASID switch cost %d", costWith, costASID)
	}
}

func TestShootdown(t *testing.T) {
	m := newX86(4)
	pt := pagetable.New()
	pt.Map(0x4000, 1, true, 0)
	for i := 0; i < 4; i++ {
		m.Core(i).SwitchPgd(pt, 1)
		m.Core(i).Access(0x4000, false)
	}
	targets := AllCores(4).Remove(3) // cores 0..2
	rep := m.Shootdown(0, targets, func(tb tlb.Cache) { tb.FlushASID(1) },
		m.Params().TLBFlushLocalASID)
	if rep.RemoteCores != 2 {
		t.Errorf("RemoteCores = %d, want 2 (initiator excluded)", rep.RemoteCores)
	}
	wantInit := m.Params().TLBFlushLocalASID + 2*m.Params().IPI
	if rep.InitiatorCycles != wantInit {
		t.Errorf("InitiatorCycles = %d, want %d", rep.InitiatorCycles, wantInit)
	}
	for i := 0; i < 3; i++ {
		if res := m.Core(i).Access(0x4000, false); res.TLBHit {
			t.Errorf("core %d TLB survived shootdown", i)
		}
	}
	if res := m.Core(3).Access(0x4000, false); !res.TLBHit {
		t.Error("core 3 outside target set was flushed")
	}
}

func TestAllocFrames(t *testing.T) {
	m := newX86(1)
	f1 := m.AllocFrames(10)
	f2 := m.AllocFrames(5)
	if f2 != f1+10 {
		t.Errorf("frames overlap: %d then %d", f1, f2)
	}
}

func TestMachineConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NumCores=0 did not panic")
		}
	}()
	NewMachine(Config{Arch: cycles.X86})
}

func TestAccessWithoutTablePanics(t *testing.T) {
	m := newX86(1)
	defer func() {
		if recover() == nil {
			t.Error("Access with nil table did not panic")
		}
	}()
	m.Core(0).Access(0x1000, false)
}

func TestFaultKindString(t *testing.T) {
	kinds := []FaultKind{AccessOK, FaultNotPresent, FaultPMDDisabled, FaultDomainPerm, FaultWriteProtect}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("FaultKind %d string %q empty or duplicated", k, s)
		}
		seen[s] = true
	}
}

// Property: for any register value and pdom, Access outcome matches
// Perm.Allows on a mapped writable page.
func TestAccessMatchesPermProperty(t *testing.T) {
	if err := quick.Check(func(raw uint64, d, wr uint8) bool {
		m := newX86(1)
		c := m.Core(0)
		pd := pagetable.Pdom(d % 16)
		pt := pagetable.New()
		pt.Map(0x4000, 1, true, pd)
		c.SwitchPgd(pt, 1)
		c.Perm().SetRaw(raw)
		write := wr%2 == 1
		res := c.Access(0x4000, write)
		allowed := c.Perm().Allows(uint8(pd), write)
		if allowed {
			return res.Kind == AccessOK
		}
		return res.Kind == FaultDomainPerm
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAssociativeMachine(t *testing.T) {
	m := NewMachine(Config{Arch: cycles.X86, NumCores: 1, TLBCapacity: 64, SetAssociative: true})
	c := m.Core(0)
	if c.TLB().Capacity() < 64 {
		t.Errorf("set-assoc capacity = %d, want >= 64", c.TLB().Capacity())
	}
	pt := pagetable.New()
	// A stride that maps every page to the same set: with 8 ways, the
	// 9th conflicting page evicts the 1st despite free capacity.
	sets := c.TLB().Capacity() / 8
	for i := 0; i < 9; i++ {
		a := pagetable.VAddr(uint64(i*sets) << 12)
		pt.Map(a, pagetable.Frame(i), true, 0)
	}
	c.SwitchPgd(pt, 1)
	for i := 0; i < 9; i++ {
		a := pagetable.VAddr(uint64(i*sets) << 12)
		if res := c.Access(a, false); res.Kind != AccessOK {
			t.Fatalf("access %d: %v", i, res.Kind)
		}
	}
	if res := c.Access(0, false); res.TLBHit {
		t.Error("conflict-evicted entry still hits (set-associativity not modeled)")
	}
}

// TestWalkCacheTransparent drives the same deterministic access/mutation
// script against a machine with the walk cache enabled and one with it
// disabled: every AccessResult (kind, pdom, hit flag, and cost) must be
// identical, because the cache is a host-side optimization charged zero
// simulated cycles.
func TestWalkCacheTransparent(t *testing.T) {
	script := func(cfg Config) ([]AccessResult, tlb.Stats) {
		m := NewMachine(cfg)
		c := m.Core(0)
		pt := pagetable.New()
		c.SwitchPgd(pt, 1)
		var out []AccessResult
		rnd := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 4000; i++ {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			page := pagetable.VAddr((rnd >> 33) % 64 * pagetable.PageSize)
			switch rnd % 11 {
			case 0:
				pt.Map(page, pagetable.Frame(i), rnd%3 != 0, pagetable.Pdom(rnd%8))
			case 1:
				pt.Unmap(page)
			case 2:
				pt.SetPdom(page, pagetable.Pdom(rnd%8))
			case 3:
				pt.DisablePMD(page)
			case 4:
				pt.EnablePMD(page)
			case 5:
				c.TLB().FlushPage(1, page.VPN())
			default:
				out = append(out, c.Access(page, rnd%2 == 0))
			}
		}
		return out, c.TLB().Stats()
	}
	base := Config{Arch: cycles.X86, NumCores: 1, TLBCapacity: 16}
	on, onStats := script(base)
	offCfg := base
	offCfg.NoWalkCache = true
	off, offStats := script(offCfg)
	if len(on) != len(off) {
		t.Fatalf("result counts differ: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("access %d diverged: cache-on %+v, cache-off %+v", i, on[i], off[i])
		}
	}
	if onStats != offStats {
		t.Errorf("TLB stats diverged: cache-on %+v, cache-off %+v", onStats, offStats)
	}
}

// TestWalkCacheCountsHits verifies the cache actually engages (repeated
// faulting accesses to one unmapped page replay the memoized walk) and
// that its counters reach the metrics catalogue.
func TestWalkCacheCountsHits(t *testing.T) {
	m := newX86(1)
	c := m.Core(0)
	pt := pagetable.New()
	c.SwitchPgd(pt, 1)
	for i := 0; i < 10; i++ {
		if res := c.Access(0x4000, false); res.Kind != FaultNotPresent {
			t.Fatalf("access %d = %v, want not-present", i, res.Kind)
		}
	}
	got := map[string]uint64{}
	m.EmitMetrics(func(name string, v uint64) { got[name] = v })
	if got["hw/walk-cache-hits"] != 9 || got["hw/walk-cache-misses"] != 1 {
		t.Errorf("walk cache counters = hits %d misses %d, want 9/1",
			got["hw/walk-cache-hits"], got["hw/walk-cache-misses"])
	}
	// A table mutation must invalidate the memo via the generation check.
	pt.Map(0x4000, 7, true, 2)
	if res := c.Access(0x4000, false); res.Kind != AccessOK || res.TLBHit {
		t.Fatalf("post-map access = %+v, want cold ok", res)
	}
	m.EmitMetrics(func(name string, v uint64) { got[name] = v })
	if got["hw/walk-cache-misses"] != 2 {
		t.Errorf("post-map misses = %d, want 2", got["hw/walk-cache-misses"])
	}
}
