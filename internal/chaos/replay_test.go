package chaos

import (
	"testing"

	"vdom/internal/replay"
)

func soakCfg(seed uint64) SoakConfig {
	return SoakConfig{
		Chaos: Config{
			Seed: seed, DropIPI: 0.05, DelayIPI: 0.05, StaleTLB: 0.03,
			ASIDExhaustion: 0.02, ASIDLimit: 24, VDSAllocFail: 0.10,
			PdomExhaustion: 0.05, SpuriousFault: 0.02,
		},
		Ops:    800,
		Record: true,
	}
}

// TestSoakRecordReplay drives a fault-heavy soak with recording on and
// replays the trace: the injector rebuilt from the header must produce
// the identical fault stream, so the replay matches cycle-for-cycle.
func TestSoakRecordReplay(t *testing.T) {
	res := Soak(soakCfg(7))
	if res.Trace == nil {
		t.Fatal("Record was set but SoakResult.Trace is nil")
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("recording captured no events")
	}
	if res.Trace.Header.Workload != SoakWorkload {
		t.Fatalf("workload = %q, want %q", res.Trace.Header.Workload, SoakWorkload)
	}

	// The trace must survive the binary codec (this is what gets dumped
	// to disk for CI artifacts).
	dec, err := replay.Decode(replay.Encode(res.Trace))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rr, err := ReplayTrace(dec, replay.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("replay diverged: %s", rr.Divergence)
	}
	if rr.Cycles != res.Trace.End["clock"] {
		t.Fatalf("replayed clock %d != recorded %d", rr.Cycles, res.Trace.End["clock"])
	}
	if rr.Events != len(res.Trace.Events) {
		t.Fatalf("replayed %d of %d events", rr.Events, len(res.Trace.Events))
	}
}

// TestSoakReplayWithoutInjectorDiverges is the negative control: the
// same trace replayed bare (no injector) must not silently pass — the
// faults the recording absorbed are gone, so costs shift.
func TestSoakReplayWithoutInjectorDiverges(t *testing.T) {
	res := Soak(soakCfg(7))
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	rr, err := replay.Run(res.Trace, replay.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Divergence == nil {
		t.Fatal("replay without the injector reported no divergence; the fault stream had no observable effect")
	}
}

// TestFailTrace checks the minimal-reproducer extraction rules.
func TestFailTrace(t *testing.T) {
	res := Soak(soakCfg(7))
	if len(res.Unrecovered) != 0 {
		t.Fatalf("expected a healthy run, got %d unrecovered ops", len(res.Unrecovered))
	}
	if ft := res.FailTrace(); ft != nil {
		t.Fatalf("healthy run produced a fail trace (%d events)", len(ft.Events))
	}

	// Synthesize a failure mid-run: the reproducer is the prefix.
	res.Unrecovered = append(res.Unrecovered, "op 3: synthetic")
	res.FirstFailEvent = 5
	ft := res.FailTrace()
	if ft == nil || len(ft.Events) != 5 {
		t.Fatalf("fail trace = %v, want 5-event prefix", ft)
	}
	if ft.End != nil {
		t.Fatal("truncated fail trace must not carry an end state")
	}
}

// TestConfigFromHeaderRejectsForeign ensures non-soak traces are refused
// rather than replayed with a zero-value injector.
func TestConfigFromHeaderRejectsForeign(t *testing.T) {
	tr := &replay.Trace{Header: replay.Header{Kernel: replay.KernelVDom, Arch: "x86", Cores: 2, Workload: "httpd"}}
	if _, err := ReplayTrace(tr, replay.Options{}); err == nil {
		t.Fatal("ReplayTrace accepted a non-soak trace")
	}
}
