// Package core implements VDom itself: per-process virtual domain metadata
// (VDM) with its hierarchical virtual domain table (VDT), per-address-space
// virtual domain spaces (VDS), per-thread virtual domain registers (VDR),
// and the domain virtualization algorithm of §5.4 with the TLB and page
// table optimizations of §5.5.
//
// It covers the paper's §5 (design) and is the "VDom core" row of the
// DESIGN.md §3 module map. When a metrics.Registry is attached (see
// SetMetrics), every public operation's cycle cost is attributed exactly
// across (layer, operation) accounts, and each map/evict/switch/migrate
// outcome feeds a cost histogram (OBSERVABILITY.md).
package core

import (
	"fmt"

	"vdom/internal/hw"
)

// VdomID is a virtual domain identifier. Vdom 0 is the default domain
// (unprotected memory); real vdoms start at 1 and are unlimited until the
// integer overflows, exactly as the paper promises.
type VdomID uint64

// VPerm is a thread's permission on a vdom as stored in its VDR. On top of
// MPK's full-access / write-disable / access-disable triple, VDom adds the
// pinned type: access-disabled but less likely to be evicted under HLRU
// (§5.2).
type VPerm uint8

const (
	// VPermNone denies all access.
	VPermNone VPerm = iota
	// VPermRead allows reads (write disable).
	VPermRead
	// VPermReadWrite allows full access.
	VPermReadWrite
	// VPermPinned denies access but resists eviction.
	VPermPinned
)

// String names the permission as the paper does.
func (p VPerm) String() string {
	switch p {
	case VPermNone:
		return "AD"
	case VPermRead:
		return "WD"
	case VPermReadWrite:
		return "FA"
	case VPermPinned:
		return "PIN"
	default:
		return fmt.Sprintf("VPerm(%d)", uint8(p))
	}
}

// Hardware translates the virtual permission to the hardware register
// value (pinned is access-disabled at the hardware level).
func (p VPerm) Hardware() hw.Perm {
	switch p {
	case VPermRead:
		return hw.PermRead
	case VPermReadWrite:
		return hw.PermReadWrite
	default:
		return hw.PermNone
	}
}

// Accessible reports whether the permission grants any access.
func (p VPerm) Accessible() bool { return p == VPermRead || p == VPermReadWrite }

// Allows reports whether the permission admits the access.
func (p VPerm) Allows(write bool) bool { return p.Hardware().Allows(write) }
