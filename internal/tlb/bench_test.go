package tlb

import "testing"

func BenchmarkLookupHit(b *testing.B) {
	c := New(DefaultCapacity)
	for vpn := uint64(0); vpn < 512; vpn++ {
		c.Insert(mk(1, vpn))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(1, uint64(i)%512)
	}
}

func BenchmarkInsertWithEviction(b *testing.B) {
	c := New(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(mk(1, uint64(i)))
	}
}

func BenchmarkSetAssocLookupHit(b *testing.B) {
	c := NewSetAssoc(128, 8)
	for vpn := uint64(0); vpn < 512; vpn++ {
		c.Insert(mk(1, vpn))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(1, uint64(i)%512)
	}
}

func BenchmarkFlushASID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := New(1024)
		for vpn := uint64(0); vpn < 512; vpn++ {
			c.Insert(mk(ASID(vpn%4), vpn))
		}
		b.StartTimer()
		c.FlushASID(1)
	}
}
