package bench

import (
	"fmt"
	"io"
	"math"

	"vdom/internal/cycles"
	"vdom/internal/libmpk"
	"vdom/internal/par"
	"vdom/internal/workload"
)

// Compare runs the calibration-critical experiments and prints measured
// values side by side with the paper's published numbers and the relative
// deviation — the quantitative answer to "does the reproduction hold".
func Compare(w io.Writer, o Options) {
	dev := func(ours, paper float64) string {
		if paper == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.0f%%", (ours/paper-1)*100)
	}

	// --- Table 3 ---
	t := &Table{
		Title:   "Compare: Table 3 (cycles)",
		Columns: []string{"operation", "X86 ours", "X86 paper", "dev", "ARM ours", "ARM paper", "dev"},
	}
	var worstT3 float64
	for _, r := range workload.Table3Parallel(o.workers()) {
		ref, ok := PaperTable3[r.Operation]
		if !ok {
			continue
		}
		armOurs, armPaper, armDev := "undefined", "undefined", "-"
		if r.ARMDefined && ref[1] > 0 {
			armOurs, armPaper, armDev = f1(r.ARM), f1(ref[1]), dev(r.ARM, ref[1])
			worstT3 = math.Max(worstT3, math.Abs(r.ARM/ref[1]-1))
		}
		t.Row(r.Operation, f1(r.X86), f1(ref[0]), dev(r.X86, ref[0]), armOurs, armPaper, armDev)
		if ref[0] > 0 {
			worstT3 = math.Max(worstT3, math.Abs(r.X86/ref[0]-1))
		}
	}
	o.Render(w, t)
	fmt.Fprintf(w, "worst Table 3 deviation: %.0f%%\n\n", worstT3*100)

	// --- Table 4, headline cells ---
	t4 := &Table{
		Title:   "Compare: Table 4 headline cells (cycles per activation)",
		Columns: []string{"cell", "ours", "paper", "dev"},
	}
	cell := func(sys workload.PatternSystem, pat workload.Pattern, n int, arch cycles.Arch) func() float64 {
		return func() float64 {
			return workload.RunPattern(workload.PatternConfig{
				Arch: arch, System: sys, Pattern: pat, NumVdoms: n,
				Rounds: o.patternRounds()}).AvgCycles
		}
	}
	t4cases := []struct {
		name  string
		ours  func() float64
		paper float64
	}{
		{"X86s seq, 3 vdoms", cell(workload.PatternVDomSecure, workload.Sequential, 3, cycles.X86), PaperTable4["VDom X86s seq"][0]},
		{"X86s trig, 64 vdoms", cell(workload.PatternVDomSecure, workload.SwitchTriggering, 64, cycles.X86), PaperTable4["VDom X86s trig"][6]},
		{"X86e seq, 32 vdoms", cell(workload.PatternVDomEvict, workload.Sequential, 32, cycles.X86), PaperTable4["VDom X86e seq"][5]},
		{"libmpk seq, 64 vdoms", cell(workload.PatternLibmpk, workload.Sequential, 64, cycles.X86), PaperTable4["libmpk seq"][6]},
		{"EPK trig, 64 vdoms", cell(workload.PatternEPK, workload.SwitchTriggering, 64, cycles.X86), PaperTable4["EPK trig"][6]},
		{"ARMe seq, 32 vdoms", cell(workload.PatternVDomEvict, workload.Sequential, 32, cycles.ARM), PaperTable4["VDom ARMe seq"][5]},
	}
	t4jobs := make([]func() float64, len(t4cases))
	for i := range t4cases {
		t4jobs[i] = t4cases[i].ours
	}
	for i, ours := range par.Map(o.workers(), t4jobs) {
		c := t4cases[i]
		t4.Row(c.name, f0(ours), f0(c.paper), dev(ours, c.paper))
	}
	o.Render(w, t4)
	fmt.Fprintln(w)

	// --- Application headlines ---
	th := &Table{
		Title:   "Compare: application overheads (%)",
		Columns: []string{"claim", "ours", "paper", "dev"},
	}
	httpdOv := func(arch cycles.Arch, bytes uint64) float64 {
		base := workload.RunHttpd(workload.HttpdConfig{Arch: arch, System: workload.Original,
			Clients: 24, RequestsPerClient: o.httpdRequests(), FileBytes: bytes})
		prot := workload.RunHttpd(workload.HttpdConfig{Arch: arch, System: workload.VDom,
			Clients: 24, RequestsPerClient: o.httpdRequests(), FileBytes: bytes})
		return (float64(prot.Makespan)/float64(base.Makespan) - 1) * 100
	}
	mysqlOv := func(sys workload.System) float64 {
		base := workload.RunMySQL(workload.MySQLConfig{Arch: cycles.X86, System: workload.Original,
			Clients: 24, QueriesPerClient: o.mysqlQueries()})
		prot := workload.RunMySQL(workload.MySQLConfig{Arch: cycles.X86, System: sys,
			Clients: 24, QueriesPerClient: o.mysqlQueries()})
		return (float64(prot.Makespan)/float64(base.Makespan) - 1) * 100
	}
	pmoOv := func(sys workload.System, mode workload.PMOMode, lm libmpk.PageMode, threads int) float64 {
		base := workload.RunPMO(workload.PMOConfig{Arch: cycles.X86, System: workload.Original,
			Threads: threads, OpsPerThread: o.pmoOps()})
		r := workload.RunPMO(workload.PMOConfig{Arch: cycles.X86, System: sys, Mode: mode,
			LibmpkMode: lm, Threads: threads, OpsPerThread: o.pmoOps()})
		return (float64(r.Makespan)/float64(base.Makespan) - 1) * 100
	}
	rows := []struct {
		name  string
		ours  func() float64
		paper float64
	}{
		{"httpd VDom X86 128KB", func() float64 { return httpdOv(cycles.X86, 128<<10) }, 2.18},
		{"MySQL VDom X86", func() float64 { return mysqlOv(workload.VDom) }, 0.47},
		{"MySQL EPK X86", func() float64 { return mysqlOv(workload.EPK) }, 7.33},
		{"PMO VDS switch (4 thr)", func() float64 { return pmoOv(workload.VDom, workload.PMOSwitch, libmpk.Page4K, 4) }, 7.03},
		{"PMO eviction (4 thr)", func() float64 { return pmoOv(workload.VDom, workload.PMOEvict, libmpk.Page4K, 4) }, 16.21},
		{"PMO libmpk 2MB (8 thr)", func() float64 { return pmoOv(workload.Libmpk, workload.PMOSwitch, libmpk.Huge2M, 8) }, 977.77},
	}
	appJobs := make([]func() float64, len(rows))
	for i := range rows {
		appJobs[i] = rows[i].ours
	}
	for i, ours := range par.Map(o.workers(), appJobs) {
		r := rows[i]
		th.Row(r.name, f1(ours), f1(r.paper), dev(ours, r.paper))
	}
	o.Render(w, th)
	fmt.Fprintln(w)

	// --- Context switch ---
	tc := &Table{
		Title:   "Compare: context switch (§7.5)",
		Columns: []string{"claim", "ours", "paper", "dev"},
	}
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		vanilla, vdomProc, vds := workload.CtxSwitchCycles(arch)
		slow := (vdomProc/vanilla - 1) * 100
		paperSlow := 6.0
		paperVDS := 771.7
		if arch == cycles.ARM {
			paperSlow, paperVDS = 7.63, 1545.1
		}
		tc.Row(fmt.Sprintf("%v switch_mm slowdown %%", arch), f1(slow), f1(paperSlow), dev(slow, paperSlow))
		tc.Row(fmt.Sprintf("%v VDS switch cycles", arch), f1(vds), f1(paperVDS), dev(vds, paperVDS))
	}
	o.Render(w, tc)
}
