package replay

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := fuzzSeedTrace()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n  got %+v", want, got)
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	full := Encode(fuzzSeedTrace())
	for i := 0; i < len(full); i++ {
		_, err := Decode(full[:i])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", i, len(full))
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadRecord) {
			t.Fatalf("prefix %d: untyped error %v", i, err)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := append(Encode(fuzzSeedTrace()), 0xff)
	if _, err := Decode(data); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("trailing byte: got %v, want ErrBadRecord", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	data := Encode(fuzzSeedTrace())
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	tr := fuzzSeedTrace()
	tr.Header.Version = FormatVersion + 1
	if _, err := Decode(Encode(tr)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
}

func TestDecodeBadOp(t *testing.T) {
	tr := fuzzSeedTrace()
	tr.Events = append(tr.Events, Event{Op: opMax + 1})
	if _, err := Decode(Encode(tr)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("got %v, want ErrBadRecord", err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	for _, want := range []*Trace{
		fuzzSeedTrace(),
		// Partial trace: no end state.
		{Header: Header{Version: FormatVersion, Kernel: KernelEPK, Arch: "arm", Domains: 2, Workload: "p"},
			Events: []Event{{TID: 1, Op: OpEpkSwitch, Dom: 1, Cost: 3}}},
	} {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, want); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		got, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("ReadJSONL: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("jsonl round trip mismatch:\n want %+v\n  got %+v", want, got)
		}
	}
}

func TestJSONLRejectsForeignFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fuzzSeedTrace()); err != nil {
		t.Fatal(err)
	}
	text := strings.Replace(buf.String(), FormatName, "vdom-trace/v9", 1)
	if _, err := ReadJSONL(strings.NewReader(text)); err == nil {
		t.Fatal("accepted a foreign format tag")
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for o := OpSpawn; o <= opMax; o++ {
		name := o.String()
		if name == "" || strings.Contains(name, "invalid") {
			t.Fatalf("op %d has no name", o)
		}
		back, ok := opFromName(name)
		if !ok || back != o {
			t.Fatalf("opFromName(%q) = %v, %v; want %v", name, back, ok, o)
		}
	}
	if _, ok := opFromName("no-such-op"); ok {
		t.Fatal("opFromName accepted a bogus name")
	}
}

func TestErrCodeNamesRoundTrip(t *testing.T) {
	codes := []ErrCode{CodeOK, CodeSigsegv, CodeBlocked, CodeNoVDR, CodeDenied, CodeReassign,
		CodeFreedVdom, CodeNoResources, CodeExhausted, CodeDegraded, CodeNoFreeKey,
		CodeUnknownKey, CodeBadRange, CodeNoMapping, CodeUnknownDomain, CodeNoASID,
		CodeDomainCapacity, CodeOther}
	for _, c := range codes {
		if got := errCodeFromName(c.String()); got != c {
			t.Fatalf("errCodeFromName(%q) = %v, want %v", c.String(), got, c)
		}
	}
}
