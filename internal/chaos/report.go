package chaos

import (
	"encoding/json"
	"fmt"
	"io"
)

// ShardReport is one soak shard's outcome in the machine-readable soak
// report CI archives alongside any trace dumps.
type ShardReport struct {
	Shard int    `json:"shard"`
	Seed  uint64 `json:"seed"`
	Ops   int    `json:"ops"`
	// Cycles is the shard's total simulated cycle cost.
	Cycles uint64 `json:"cycles"`
	// Injected and Recovered are the injector's per-kind counters.
	Injected  map[string]uint64 `json:"injected,omitempty"`
	Recovered map[string]uint64 `json:"recovered,omitempty"`
	// Violations and Unrecovered list the shard's failures verbatim; a
	// healthy shard has neither.
	Violations  []string `json:"violations,omitempty"`
	Unrecovered []string `json:"unrecovered,omitempty"`
	// TraceEvents is the length of the shard's recording (0 when
	// recording was off).
	TraceEvents int `json:"trace_events,omitempty"`
	// TracePath is where the shard's replayable (fail) trace was dumped,
	// when it was.
	TracePath string `json:"trace_path,omitempty"`
	// Crash describes the shard's crash-fault injection and recovery
	// (crash-soak runs only).
	Crash *CrashShard `json:"crash,omitempty"`
}

// CrashShard is the crash-and-recovery slice of a shard report.
type CrashShard struct {
	// Kind names the crash fault (CrashKind.String).
	Kind string `json:"kind"`
	// CheckpointOp and CrashOp locate the recovery checkpoint and the
	// crash on the op stream.
	CheckpointOp int `json:"checkpoint_op"`
	CrashOp      int `json:"crash_op"`
	// DetectedBy is "watchdog" or "audit".
	DetectedBy string `json:"detected_by"`
	// TailEvents is the number of trace events replayed during recovery.
	TailEvents int `json:"tail_events"`
	// Identical reports the recovered run's trace being byte-identical
	// to the uninterrupted reference run.
	Identical bool `json:"identical"`
	// SnapshotPath is where the reproducer checkpoint was dumped, when
	// it was.
	SnapshotPath string `json:"snapshot_path,omitempty"`
}

// NewShardReport summarizes one shard's SoakResult.
func NewShardReport(shard int, seed uint64, res *SoakResult) ShardReport {
	r := ShardReport{
		Shard:     shard,
		Seed:      seed,
		Ops:       res.Ops,
		Cycles:    uint64(res.Cycles),
		Injected:  res.Injected,
		Recovered: res.Recovered,
		TracePath: res.TracePath,
	}
	if res.Trace != nil {
		r.TraceEvents = len(res.Trace.Events)
	}
	for _, v := range res.Violations {
		r.Violations = append(r.Violations, fmt.Sprint(v))
	}
	r.Unrecovered = append(r.Unrecovered, res.Unrecovered...)
	return r
}

// Report is the soak run's machine-readable summary: one entry per
// shard plus the aggregate verdict.
type Report struct {
	// Seed is the run's base seed; shard i soaks under Seed+i.
	Seed   uint64        `json:"seed"`
	Shards []ShardReport `json:"shards"`
	// Healthy is true when no shard had violations or unrecovered ops.
	Healthy bool `json:"healthy"`
	// TotalOps and TotalCycles aggregate across shards.
	TotalOps    int    `json:"total_ops"`
	TotalCycles uint64 `json:"total_cycles"`
}

// NewReport assembles the run report and computes the verdict.
func NewReport(seed uint64, shards []ShardReport) *Report {
	rep := &Report{Seed: seed, Shards: shards, Healthy: true}
	for _, s := range shards {
		rep.TotalOps += s.Ops
		rep.TotalCycles += s.Cycles
		if len(s.Violations) > 0 || len(s.Unrecovered) > 0 {
			rep.Healthy = false
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
