package workload

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
)

// PMOMode selects which VDom strategy the String Replace benchmark uses
// when a PMO's vdom is not reachable (Figure 7 compares both).
type PMOMode int

const (
	// PMOSwitch lets threads own several VDSes and switch pgd between
	// them (nas sized to hold all PMOs).
	PMOSwitch PMOMode = iota
	// PMOEvict pins each thread to one VDS (nas=1), forcing HLRU
	// evictions.
	PMOEvict
)

// PMOConfig describes one String Replace run (Figure 7): 64 persistent
// memory objects of 2 MiB, each protected by its own domain, with threads
// doing random substring search-and-replace operations.
type PMOConfig struct {
	Arch    cycles.Arch
	System  System
	Threads int
	// OpsPerThread defaults to 4000 (the paper runs 4,000,000; scaled
	// down, steady state is unchanged).
	OpsPerThread int
	// NumPMOs defaults to 64.
	NumPMOs int
	// Mode selects VDS-switch vs eviction for System == VDom.
	Mode PMOMode
	// LibmpkMode selects 4 KiB pages or 2 MiB huge pages for libmpk.
	LibmpkMode libmpk.PageMode
	// Cores defaults to the platform's hardware-thread count.
	Cores int
	Seed  uint64
	// Record, when non-nil, captures the run's domain-op stream
	// (internal/replay).
	Record *replay.Recorder
}

func (c *PMOConfig) defaults() {
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 4000
	}
	if c.NumPMOs == 0 {
		c.NumPMOs = 64
	}
	if c.Cores == 0 {
		c.Cores = DefaultCores(c.Arch)
	}
	if c.Seed == 0 {
		c.Seed = 0x9e0
	}
}

// PMOResult is one run's outcome.
type PMOResult struct {
	Config    PMOConfig
	Ops       int
	Makespan  sim.Time
	VDomStats core.Stats
}

// pmoCosts: one operation is ≈10,000 cycles on the Xeon (§7.6): a 512 B
// substring search plus the replacement write-back.
type pmoCosts struct {
	searchUser  cycles.Cost
	replaceUser cycles.Cost
}

func pmoCostsFor(arch cycles.Arch) pmoCosts {
	switch arch {
	case cycles.ARM:
		return pmoCosts{searchUser: 22_000, replaceUser: 8_000}
	case cycles.Power:
		return pmoCosts{searchUser: 6_000, replaceUser: 2_000}
	default:
		return pmoCosts{searchUser: 7_200, replaceUser: 2_400}
	}
}

const pmoBytes = 2 << 20 // 2 MiB per PMO

// RunPMO executes one String Replace configuration.
func RunPMO(cfg PMOConfig) PMOResult {
	cfg.defaults()
	pl := newPlatform(cfg.Arch, cfg.Cores, cfg.System == VDom || cfg.System == VDomLowerbound, cfg.Seed)
	costs := pmoCostsFor(cfg.Arch)

	var (
		mgr     *core.Manager
		lbm     *libmpk.Manager
		lbmLock *sim.Resource
		esys    *epk.System
	)
	switch cfg.System {
	case VDom, VDomLowerbound:
		mgr = core.Attach(pl.proc, core.DefaultPolicy())
	case Libmpk:
		lbm = libmpk.Attach(pl.proc, nil)
		lbm.SetPageMode(cfg.LibmpkMode)
		lbmLock = pl.env.NewResource(1)
	case EPK:
		esys = epk.New(cfg.NumPMOs, epk.DefaultVMTax())
	}
	if rec := cfg.Record; rec != nil {
		rec.AttachKernel(pl.kernel)
		if mgr != nil {
			rec.AttachManager(mgr)
		}
		if lbm != nil {
			rec.AttachLibmpk(lbm)
		}
		if esys != nil {
			rec.AttachEPK(esys)
		}
	}

	// Map and protect the PMOs.
	setup := pl.proc.NewTask(0)
	if cfg.Record != nil {
		cfg.Record.Spawn(setup)
	}
	bases := make([]pagetable.VAddr, cfg.NumPMOs)
	doms := make([]core.VdomID, cfg.NumPMOs)
	keys := make([]libmpk.Vkey, cfg.NumPMOs)
	var lowDom core.VdomID
	if cfg.System == VDomLowerbound {
		if _, err := mgr.VdrAlloc(setup, 0); err != nil {
			panic(err)
		}
		lowDom, _ = mgr.AllocVdom(true)
	}
	for i := range bases {
		bases[i] = pl.mustAlloc(setup, pmoBytes)
		switch cfg.System {
		case VDom:
			doms[i], _ = mgr.AllocVdom(false)
			if _, err := mgr.Mprotect(setup, bases[i], pmoBytes, doms[i]); err != nil {
				panic(err)
			}
		case VDomLowerbound:
			doms[i] = lowDom
			if _, err := mgr.Mprotect(setup, bases[i], pmoBytes, lowDom); err != nil {
				panic(err)
			}
		case Libmpk:
			keys[i], _ = lbm.PkeyAlloc()
			if _, err := lbm.PkeyMprotect(nil, setup, bases[i], pmoBytes, keys[i]); err != nil {
				panic(err)
			}
		}
	}

	// Worker threads.
	nasFor := func() int {
		if cfg.Mode == PMOEvict {
			return 1
		}
		// Enough address spaces to hold every PMO domain at once.
		return (cfg.NumPMOs+core.UsablePdomsPerVDS-1)/core.UsablePdomsPerVDS + 1
	}
	type worker struct {
		task *kernel.Task
		id   int
	}
	workers := make([]*worker, cfg.Threads)
	for i := range workers {
		workers[i] = &worker{task: pl.proc.NewTask((i + 1) % cfg.Cores), id: i}
		if cfg.Record != nil {
			cfg.Record.Spawn(workers[i].task)
		}
		if cfg.System == VDom || cfg.System == VDomLowerbound {
			if _, err := mgr.VdrAlloc(workers[i].task, nasFor()); err != nil {
				panic(err)
			}
		}
	}

	totalOps := cfg.Threads * cfg.OpsPerThread
	for _, w := range workers {
		w := w
		rng := sim.NewRand(cfg.Seed ^ uint64(w.id)<<24)
		pl.env.Go(fmt.Sprintf("pmo-worker-%d", w.id), func(p *sim.Proc) {
			for op := 0; op < cfg.OpsPerThread; op++ {
				pmoIdx := rng.Intn(cfg.NumPMOs)
				strOff := pagetable.VAddr(rng.Intn(pmoBytes/512)) * 512
				runPMOOp(pl, cfg, costs, w.task, w.id, p,
					mgr, lbm, lbmLock, esys,
					doms, keys, bases, pmoIdx, strOff)
			}
		})
	}
	makespan := pl.env.Run()
	res := PMOResult{Config: cfg, Ops: totalOps, Makespan: makespan}
	if mgr != nil {
		res.VDomStats = mgr.Stats
	}
	return res
}

// runPMOOp models one search-and-replace: grant write-disable on the PMO,
// search the string, upgrade to full access, replace, revoke.
func runPMOOp(pl *platform, cfg PMOConfig, costs pmoCosts, task *kernel.Task, tid int, p *sim.Proc,
	mgr *core.Manager, lbm *libmpk.Manager, lbmLock *sim.Resource, esys *epk.System,
	doms []core.VdomID, keys []libmpk.Vkey, bases []pagetable.VAddr, pmoIdx int, strOff pagetable.VAddr) {

	run := func(body func() cycles.Cost) {
		pl.sched.Run(p, task, body)
	}
	addr := bases[pmoIdx] + strOff
	touch := func(write bool) cycles.Cost {
		c, err := task.Access(addr, write)
		if err != nil {
			panic(fmt.Sprintf("pmo: access PMO %d at %#x: %v", pmoIdx, uint64(addr), err))
		}
		return c
	}

	switch cfg.System {
	case Original:
		run(func() cycles.Cost { return touch(false) + costs.searchUser })
		run(func() cycles.Cost { return touch(true) + costs.replaceUser })

	case VDom, VDomLowerbound:
		d := doms[pmoIdx]
		run(func() cycles.Cost {
			c, err := mgr.WrVdr(task, d, core.VPermRead)
			if err != nil {
				panic(err)
			}
			return c + touch(false) + costs.searchUser
		})
		run(func() cycles.Cost {
			c, err := mgr.WrVdr(task, d, core.VPermReadWrite)
			if err != nil {
				panic(err)
			}
			c += touch(true) + costs.replaceUser
			c2, err := mgr.WrVdr(task, d, core.VPermNone)
			if err != nil {
				panic(err)
			}
			return c + c2
		})

	case Libmpk:
		libmpkAcquire(pl.sched, p, lbmLock, lbm, task, keys[pmoIdx], hw.PermRead)
		run(func() cycles.Cost { return touch(false) + costs.searchUser })
		// Upgrade (key already resident: cheap) and revoke.
		run(func() cycles.Cost {
			c, err := lbm.PkeySet(nil, task, keys[pmoIdx], hw.PermReadWrite)
			if err != nil {
				panic(err)
			}
			c2 := touch(true) + costs.replaceUser
			c3, err := lbm.PkeySet(nil, task, keys[pmoIdx], hw.PermNone)
			if err != nil {
				panic(err)
			}
			return c + c2 + c3
		})

	case EPK:
		run(func() cycles.Cost {
			c := esys.Switch(tid, pmoIdx)
			return c + esys.WorkInVM(costs.searchUser, 0)
		})
		run(func() cycles.Cost {
			// Upgrade and revoke are in-group register writes.
			return 2*epk.MPKSwitchCycles + esys.WorkInVM(costs.replaceUser, 0)
		})
	}
}
