package core

import (
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/pagetable"
)

// TestPowerThirtyDomainsInOneVDS verifies the projected IBM Power model:
// with 32 hardware domains, one VDS holds 30 simultaneously mapped vdoms —
// double what MPK-class hardware offers — with no virtualization machinery
// engaged.
func TestPowerThirtyDomainsInOneVDS(t *testing.T) {
	f := newFixture(t, cycles.Power, 4, DefaultPolicy())
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	usable := UsablePdoms(cycles.PowerParams().NumPdoms)
	if usable != 30 {
		t.Fatalf("usable pdoms on Power = %d, want 30", usable)
	}
	for i := 0; i < usable; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatalf("vdom #%d: %v", i, err)
		}
	}
	if len(f.m.VDSes()) != 1 {
		t.Errorf("VDSes = %d, want 1 (30 domains fit)", len(f.m.VDSes()))
	}
	if f.m.Stats.Evictions != 0 || f.m.Stats.VDSSwitches != 0 || f.m.Stats.Migrations != 0 {
		t.Errorf("virtualization machinery engaged below capacity: %+v", f.m.Stats)
	}
	// The 31st spills over, as on any architecture.
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if len(f.m.VDSes()) < 2 && f.m.Stats.Evictions == 0 {
		t.Error("31st domain did not trigger the virtualization algorithm")
	}
}

// TestPowerKernelMediatedAPI verifies that Power's wrvdr pays a kernel
// round trip like ARM (the AMR is written in the kernel here).
func TestPowerKernelMediatedAPI(t *testing.T) {
	f := newFixture(t, cycles.Power, 2, DefaultPolicy())
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	c := grant(t, f.m, task, d, VPermRead)
	p := cycles.PowerParams()
	want := float64(p.CallReturn + p.SyscallReturn + p.PermRegWrite + p.VDRUpdate)
	if float64(c) < want*0.9 || float64(c) > want*1.1 {
		t.Errorf("Power steady wrvdr = %d, want ≈%.0f (kernel-mediated)", c, want)
	}
}

// TestPowerInvariantsUnderLoad reuses the invariant checker on the
// 32-domain model.
func TestPowerInvariantsUnderLoad(t *testing.T) {
	f := newFixture(t, cycles.Power, 4, DefaultPolicy())
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	type entry struct {
		d VdomID
		b pagetable.VAddr
	}
	var all []entry
	for i := 0; i < 70; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		all = append(all, entry{d, b})
	}
	for step := 0; step < 300; step++ {
		e := all[step%len(all)]
		grant(t, f.m, task, e.d, VPermReadWrite)
		if _, err := task.Access(e.b, true); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		grant(t, f.m, task, e.d, VPermNone)
		if step%60 == 0 {
			checkInvariants(t, f.m)
		}
	}
	checkInvariants(t, f.m)
}
