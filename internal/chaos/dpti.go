package chaos

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
	"vdom/internal/tlb"
)

// This file is the DPTI flavour of the chaos soak: the same injector,
// audit cadence, and result shape as SoakRun, but driving the
// per-domain-page-table baseline instead of the VDom manager. The
// injector attaches to the machine and the kernel only — DPTI has no
// manager-level fault hooks — so the fault mix is the hardware/kernel
// subset (IPI drops and delays, stale TLB entries, ASID exhaustion,
// spurious faults). ASID exhaustion is DPTI's characteristic failure:
// materializing a domain table needs a free ASID, and when the injector
// withholds them the degradation path is simply staying in the base
// address space.

// DPTISoakRun is a DPTI soak in progress, steppable like SoakRun.
type DPTISoakRun struct {
	cfg SoakConfig

	in      *Injector
	machine *hw.Machine
	kern    *kernel.Kernel
	proc    *kernel.Process
	mgr     *dpti.Manager
	rec     *replay.Recorder

	res    *SoakResult
	total  cycles.Cost
	tasks  []*kernel.Task
	doms   []dpti.DomainID
	r      *sim.Rand
	nextOp int

	tracedEvents int
	finished     bool
}

// dptiSoakHeader describes a DPTI soak run's platform. The workload name
// stays SoakWorkload — the Kernel field is what selects the DPTI boot —
// so ReplayTrace rebuilds the injector for either soak flavour.
func dptiSoakHeader(cfg SoakConfig) replay.Header {
	return replay.Header{
		Kernel:   replay.KernelDPTI,
		Arch:     replay.ArchName(cfg.Arch),
		Cores:    cfg.Cores,
		Seed:     cfg.Chaos.Seed,
		Workload: SoakWorkload,
		ConfigDigest: replay.DigestString(fmt.Sprintf(
			"dpti-chaos-soak|arch=%s|cores=%d|threads=%d|doms=%d|ops=%d|chaos=%+v",
			replay.ArchName(cfg.Arch), cfg.Cores, cfg.Threads, cfg.Vdoms, cfg.Ops, cfg.Chaos)),
		Extra: injectorExtra(cfg.Chaos),
	}
}

// SoakDPTI runs a DPTI soak to completion (the DPTI analogue of Soak).
func SoakDPTI(cfg SoakConfig) *SoakResult {
	s := StartSoakDPTI(cfg)
	for s.Step() {
	}
	return s.Finish()
}

// StartSoakDPTI boots the DPTI soak platform and runs the workload setup
// (task spawns, region mmaps, initial domain allocations), leaving the
// run poised before op 1.
func StartSoakDPTI(cfg SoakConfig) *DPTISoakRun {
	if cfg.Ops <= 0 {
		cfg.Ops = 5000
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Vdoms <= 0 {
		cfg.Vdoms = 24
	}
	if cfg.AuditEvery <= 0 {
		cfg.AuditEvery = 64
	}

	s := &DPTISoakRun{cfg: cfg, nextOp: 1}
	s.in = New(cfg.Chaos)
	s.machine = hw.NewMachine(hw.Config{Arch: cfg.Arch, NumCores: cfg.Cores})
	s.kern = kernel.New(kernel.Config{Machine: s.machine, VDomEnabled: false})
	s.in.AttachMachine(s.machine)
	s.in.AttachKernel(s.kern)
	s.proc = s.kern.NewProcess()
	s.mgr = dpti.Attach(s.proc)
	if cfg.Record {
		s.rec = replay.NewRecorder(dptiSoakHeader(cfg))
		s.rec.AttachKernel(s.kern)
		s.rec.AttachDPTI(s.mgr)
	}

	s.res = &SoakResult{Ops: cfg.Ops, FirstFailEvent: -1}
	s.kern.SetMetrics(cfg.Metrics)
	s.mgr.SetMetrics(cfg.Metrics)

	s.tasks = make([]*kernel.Task, cfg.Threads)
	for i := range s.tasks {
		s.tasks[i] = s.proc.NewTask(i % cfg.Cores)
		if s.rec != nil {
			s.rec.Spawn(s.tasks[i])
		}
	}

	if c, err := s.tasks[0].Mmap(plainBase, plainPages*pagetable.PageSize, true); err != nil {
		s.fail(0, "setup mmap", err)
	} else {
		s.total += c
	}
	s.doms = make([]dpti.DomainID, cfg.Vdoms)
	for i := range s.doms {
		if c, err := s.tasks[0].Mmap(region(i), regionPages*pagetable.PageSize, true); err != nil {
			s.fail(0, "setup mmap", err)
		} else {
			s.total += c
		}
		d, c := s.mgr.AllocDomain()
		s.total += c
		if c, err := s.mgr.Protect(s.tasks[0], region(i), regionPages*pagetable.PageSize, d); err != nil {
			s.fail(0, "setup protect", err)
		} else {
			s.total += c
		}
		s.doms[i] = d
	}

	// Same stream split as StartSoak: the workload PRNG is derived from
	// the seed independently of the injector's.
	s.r = sim.NewRand(cfg.Chaos.Seed ^ 0x6a09e667f3bcc908)
	return s
}

// NextOp returns the 1-based index of the op the next Step will run.
func (s *DPTISoakRun) NextOp() int { return s.nextOp }

// ClockCycles returns the run's cumulative cycle clock.
func (s *DPTISoakRun) ClockCycles() uint64 { return uint64(s.total) }

func (s *DPTISoakRun) fail(op int, what string, err error) {
	if s.rec != nil && s.res.FirstFailEvent < 0 {
		s.res.FirstFailEvent = s.rec.Len()
	}
	s.res.Unrecovered = append(s.res.Unrecovered, fmt.Sprintf("op %d: %s: %v", op, what, err))
}

func (s *DPTISoakRun) audit() {
	s.res.Audits++
	owners := make(map[tlb.ASID]*pagetable.Table)
	for _, t := range s.proc.Tasks() {
		owners[t.BaseASID()] = s.proc.AS().Shadow()
	}
	s.mgr.OwnedASIDs(func(a tlb.ASID, tb *pagetable.Table) { owners[a] = tb })
	s.res.Violations = append(s.res.Violations, AuditOwners(s.machine, s.kern, owners)...)
}

func (s *DPTISoakRun) traceEvents() {
	if s.cfg.Trace == nil {
		return
	}
	evs := s.in.Events()
	for ; s.tracedEvents < len(evs); s.tracedEvents++ {
		s.cfg.Trace.Instant("chaos", evs[s.tracedEvents].Kind, 0, uint64(s.total))
	}
}

// enter switches t into d, tolerating ASID exhaustion: when the injector
// has drained the ASID pool the task simply stays in the base address
// space (DPTI's only degradation path). Reports whether the task is
// inside d afterwards.
func (s *DPTISoakRun) enter(op int, t *kernel.Task, d dpti.DomainID) bool {
	c, err := s.mgr.Enter(t, d)
	s.total += c
	if err == nil {
		return true
	}
	if !errors.Is(err, dpti.ErrNoASID) {
		s.fail(op, fmt.Sprintf("enter domain %d", d), err)
	}
	return false
}

// Step drives one workload op (and the periodic audit that falls on it)
// and reports whether ops remain.
func (s *DPTISoakRun) Step() bool {
	if s.nextOp > s.cfg.Ops {
		return false
	}
	op := s.nextOp
	s.nextOp++

	t := s.tasks[s.r.Intn(len(s.tasks))]
	di := s.r.Intn(len(s.doms))
	d := s.doms[di]
	switch x := s.r.Intn(100); {
	case x < 45: // enter, then touch a page of the region
		if !s.enter(op, t, d) {
			break
		}
		addr := region(di) + pagetable.VAddr(uint64(s.r.Intn(regionPages))*pagetable.PageSize)
		c, err := t.Access(addr, s.r.Intn(2) == 0)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("access domain %d at %#x", d, uint64(addr)), err)
		}
	case x < 58: // exit back to the base address space
		c, err := s.mgr.Exit(t)
		s.total += c
		if err != nil {
			s.fail(op, "exit", err)
		}
	case x < 70: // free the domain, rebind its region to a fresh one
		c, err := s.mgr.FreeDomain(t, d)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("free domain %d", d), err)
			break
		}
		nd, c := s.mgr.AllocDomain()
		s.total += c
		c, err = s.mgr.Protect(t, region(di), regionPages*pagetable.PageSize, nd)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("protect domain %d", nd), err)
			break
		}
		s.doms[di] = nd
	case x < 80: // retag one page (exercises the eager-revocation walk)
		addr := region(di) + pagetable.VAddr(uint64(s.r.Intn(regionPages))*pagetable.PageSize)
		c, err := s.mgr.Protect(t, addr, pagetable.PageSize, d)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("retag domain %d", d), err)
		}
	case x < 88: // unprotected access (valid inside or outside a domain)
		addr := plainBase + pagetable.VAddr(uint64(s.r.Intn(plainPages))*pagetable.PageSize)
		c, err := t.Access(addr, s.r.Intn(2) == 0)
		s.total += c
		if err != nil {
			s.fail(op, fmt.Sprintf("plain access at %#x", uint64(addr)), err)
		}
	case x < 95: // kswapd pressure
		max := 1 + s.r.Intn(8)
		n, c := s.proc.ReclaimFrames(t.CoreID(), max)
		s.total += c
		if s.rec != nil {
			s.rec.Reclaim(t.CoreID(), max, n, c)
		}
	default: // direct domain-to-domain switch, then exit
		if s.enter(op, t, s.doms[(di+1)%len(s.doms)]) {
			c, err := s.mgr.Exit(t)
			s.total += c
			if err != nil {
				s.fail(op, "exit", err)
			}
		}
	}
	s.traceEvents()
	if op%s.cfg.AuditEvery == 0 {
		s.audit()
	}
	return s.nextOp <= s.cfg.Ops
}

// Finish runs the final audit, harvests every counter, and seals the
// result. It is idempotent.
func (s *DPTISoakRun) Finish() *SoakResult {
	if s.finished {
		return s.res
	}
	s.finished = true
	s.audit()

	s.res.Cycles = s.total
	s.res.Injected = s.in.Injected()
	s.res.Recovered = s.in.Recovered()
	s.res.Events = s.in.Events()
	s.res.ASIDRollovers = s.kern.ASIDRollovers()
	if s.rec != nil {
		s.res.Trace = s.rec.Finish()
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Accumulate(s.in, s.machine, s.proc.AS(), s.kern)
		s.mgr.Stats.Emit(s.cfg.Metrics.Add)
	}
	return s.res
}
