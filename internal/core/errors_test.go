package core

import (
	"errors"
	"testing"

	"vdom/internal/pagetable"
)

func TestVdrAllocTwiceFails(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.VdrAlloc(task, 2); err == nil {
		t.Error("second VdrAlloc succeeded")
	}
}

func TestMprotectUnmappedRegionFails(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	d, _ := f.m.AllocVdom(false)
	if _, err := f.m.Mprotect(task, 0xdead0000, pg, d); err == nil {
		t.Error("Mprotect on unmapped memory succeeded")
	}
}

func TestMprotectDeadVdomFails(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Mmap(0x100000000, pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Mprotect(task, 0x100000000, pg, 9999); !errors.Is(err, ErrFreedVdom) {
		t.Errorf("Mprotect with unallocated vdom = %v, want ErrFreedVdom", err)
	}
}

func TestAPIsWithoutVDR(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	d, _ := f.m.AllocVdom(false)
	if _, err := f.m.WrVdr(task, d, VPermRead); !errors.Is(err, ErrNoVDR) {
		t.Errorf("WrVdr without VDR = %v", err)
	}
	if _, _, err := f.m.RdVdr(task, d); !errors.Is(err, ErrNoVDR) {
		t.Errorf("RdVdr without VDR = %v", err)
	}
	if _, err := f.m.VdrFree(task); !errors.Is(err, ErrNoVDR) {
		t.Errorf("VdrFree without VDR = %v", err)
	}
	if _, err := f.m.PlaceInNewVDS(task); !errors.Is(err, ErrNoVDR) {
		t.Errorf("PlaceInNewVDS without VDR = %v", err)
	}
}

func TestVDROfUnknownTaskNil(t *testing.T) {
	f := x86Fixture(t)
	if f.m.VDROf(f.proc.NewTask(0)) != nil {
		t.Error("VDROf unknown task non-nil")
	}
}

func TestFaultOnForeignNonVdomMemoryUnhandled(t *testing.T) {
	// A domain fault on memory with no vdom tag is not VDom's to handle:
	// the kernel delivers SIGSEGV.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Mmap(0x100000000, pg, true); err != nil {
		t.Fatal(err)
	}
	// Manually poison the PTE with a denied pdom, no VMA tag.
	if _, err := task.Access(0x100000000, true); err != nil {
		t.Fatal(err)
	}
	tbl := f.m.VDROf(task).Current().Table()
	tbl.SetPdom(0x100000000, 9)
	task.Core().TLB().FlushASID(task.ASID())
	var r regImage
	r.set(1, false, true)
	r.set(9, false, true)
	task.SetSavedPerm(r.bits)
	_, err := task.Access(pagetable.VAddr(0x100000000), false)
	if err == nil {
		t.Error("poisoned access succeeded")
	}
}

func TestReassignAllowedAfterFree(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	d1, base := f.newVdomRegion(t, task, 1, false)
	if _, err := f.m.FreeVdom(d1); err != nil {
		t.Fatal(err)
	}
	d2, _ := f.m.AllocVdom(false)
	if _, err := f.m.Mprotect(task, base, pg, d2); err != nil {
		t.Fatalf("reassign after free rejected: %v", err)
	}
	grant(t, f.m, task, d2, VPermReadWrite)
	if _, err := task.Access(base, true); err != nil {
		t.Fatal(err)
	}
	// The sealed gate pages can never be reassigned, even though their
	// tag is not a live vdom.
	g, err := NewGate(f.m)
	if err != nil {
		t.Fatal(err)
	}
	page, err := g.SealVDRPage(task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Mprotect(task, page, pg, d2); !errors.Is(err, ErrReassign) {
		t.Errorf("sealed page reassign = %v, want ErrReassign", err)
	}
}
