// Package apisurface extracts the exported API surface of a Go package as
// a stable, printer-normalized text form. cmd/apilint diffs it against a
// committed golden file (testdata/api/vdom.golden) so accidental breaks of
// the public API — removed identifiers, changed signatures, renamed struct
// fields — fail CI instead of reaching users.
package apisurface

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Surface parses the Go package in dir (tests excluded) and returns one
// entry per exported declaration: functions and methods with bodies
// stripped, types with unexported fields and methods filtered out, and
// exported consts and vars. Entries are sorted, so the output is a stable
// fingerprint of the package's API.
func Surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var entries []string
	emit := func(node any) error {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			return err
		}
		entries = append(entries, buf.String())
		return nil
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !exportedFunc(d) {
						continue
					}
					fn := *d
					fn.Body = nil
					fn.Doc = nil
					if err := emit(&fn); err != nil {
						return nil, err
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						entry, ok := exportedSpec(d.Tok, spec)
						if !ok {
							continue
						}
						if err := emit(entry); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	sort.Strings(entries)
	return entries, nil
}

// Render joins a surface into the golden-file text form.
func Render(entries []string) string {
	return strings.Join(entries, "\n\n") + "\n"
}

// exportedFunc reports whether the function or method is part of the
// exported API: exported name, and for methods an exported receiver type.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverTypeName(d.Recv.List[0].Type))
}

// receiverTypeName unwraps a receiver type expression to its base type
// name ("*Thread" → "Thread").
func receiverTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// exportedSpec filters one spec of a const/var/type declaration down to
// its exported parts, returning a standalone single-spec declaration for
// printing (so "const X = 1" keeps its keyword) and whether anything
// exported remains.
func exportedSpec(tok token.Token, spec ast.Spec) (ast.Node, bool) {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if !s.Name.IsExported() {
			return nil, false
		}
		ts := *s
		ts.Doc, ts.Comment = nil, nil
		ts.Type = filterType(s.Type)
		return &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&ts}}, true
	case *ast.ValueSpec:
		exported := false
		for _, n := range s.Names {
			if n.IsExported() {
				exported = true
			}
		}
		if !exported {
			return nil, false
		}
		vs := *s
		vs.Doc, vs.Comment = nil, nil
		return &ast.GenDecl{Tok: tok, Specs: []ast.Spec{&vs}}, true
	}
	return nil, false
}

// filterType removes unexported members from struct and interface types;
// other type expressions pass through unchanged.
func filterType(expr ast.Expr) ast.Expr {
	switch t := expr.(type) {
	case *ast.StructType:
		st := *t
		st.Fields = filterFields(t.Fields)
		return &st
	case *ast.InterfaceType:
		it := *t
		it.Methods = filterFields(t.Methods)
		return &it
	}
	return expr
}

// filterFields keeps exported named fields/methods and exported embedded
// types; unexported members are dropped (internal layout is not API).
func filterFields(fields *ast.FieldList) *ast.FieldList {
	if fields == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fields.List {
		if len(f.Names) == 0 {
			if ast.IsExported(receiverTypeName(f.Type)) {
				out.List = append(out.List, f)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			nf := *f
			nf.Doc, nf.Comment = nil, nil
			nf.Names = names
			out.List = append(out.List, &nf)
		}
	}
	return out
}
