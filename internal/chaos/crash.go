package chaos

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sort"

	"vdom/internal/kernel"
	"vdom/internal/replay"
	"vdom/internal/sim"
	"vdom/internal/snapshot"
)

// Crash-fault model on top of the steppable soak: the harness
// checkpoints the full System periodically (internal/snapshot), strikes
// a crash fault at a chosen op boundary, detects it — via the sim
// watchdog for wedging faults, via the cross-layer auditor for silent
// corruption — and recovers by restoring the latest checkpoint and
// replaying the recorded trace tail up to the crash point, after which
// the workload continues as if nothing happened. A recovered run's
// trace, end state, and counters are bit-identical to an uninterrupted
// run of the same seed (see RECOVERY.md).

// CrashKind selects the injected crash fault.
type CrashKind int

const (
	// CrashCore wipes one core's volatile state (TLB, permission
	// register, loaded table, walk cache), wedging the machine.
	CrashCore CrashKind = iota
	// CrashKernelPanic models a kernel panic mid-syscall: every core's
	// residency bookkeeping is lost.
	CrashKernelPanic
	// CrashTornDomainMap models a crash in the middle of a multi-step
	// domain-map update: the forward entry survives, its inverse is
	// lost. The system keeps running on corrupt metadata until the
	// auditor catches it.
	CrashTornDomainMap
)

// String names the crash kind for reports.
func (k CrashKind) String() string {
	switch k {
	case CrashCore:
		return "core-crash"
	case CrashKernelPanic:
		return "kernel-panic"
	case CrashTornDomainMap:
		return "torn-domain-map"
	default:
		return fmt.Sprintf("crash-kind-%d", int(k))
	}
}

// InjectorSection is the snapshot section carrying the injector's image;
// recovery rebuilds the fault stream from it so the trace tail replays
// under the identical faults.
const InjectorSection = "chaos/injector"

// CounterSnap is one (kind → count) entry of an injector counter map.
type CounterSnap struct {
	Kind string
	N    uint64
}

// InjectorSnap is the serializable image of an Injector.
type InjectorSnap struct {
	Cfg       Config
	Rng       [4]uint64
	Seq       uint64
	Injected  []CounterSnap // ascending kind
	Recovered []CounterSnap // ascending kind
	Events    []Event
}

// Snap captures the injector's image, PRNG state included.
func (in *Injector) Snap() InjectorSnap {
	s := InjectorSnap{
		Cfg:    in.cfg,
		Rng:    in.rng.State(),
		Seq:    in.seq,
		Events: append([]Event(nil), in.events...),
	}
	s.Injected = counterSnaps(in.injected)
	s.Recovered = counterSnaps(in.recovered)
	return s
}

// NewFromSnap rebuilds an injector from its image: same config, same
// PRNG position, same counters and event log.
func NewFromSnap(s InjectorSnap) *Injector {
	in := New(s.Cfg)
	in.rng.SetState(s.Rng)
	in.seq = s.Seq
	for _, c := range s.Injected {
		in.injected[c.Kind] = c.N
	}
	for _, c := range s.Recovered {
		in.recovered[c.Kind] = c.N
	}
	in.events = append([]Event(nil), s.Events...)
	return in
}

func counterSnaps(m map[string]uint64) []CounterSnap {
	out := make([]CounterSnap, 0, len(m))
	for k, v := range m {
		out = append(out, CounterSnap{Kind: k, N: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

func gobBytes(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(fmt.Sprintf("chaos: gob encode: %v", err))
	}
	return b.Bytes()
}

// Checkpoint captures the full System — every layer plus the injector —
// as an encoded vdom-snap/v1 snapshot. It requires SoakConfig.Record:
// recovery replays the recorded tail from the checkpoint's event index.
func (s *SoakRun) Checkpoint() ([]byte, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("chaos: Checkpoint requires SoakConfig.Record")
	}
	h := soakHeader(s.cfg)
	h.Version = replay.FormatVersion
	sys := &replay.System{Machine: s.machine, Kernel: s.kern, Proc: s.proc, Manager: s.mgr}
	st, err := snapshot.Capture(sys, h, s.rec.Clock(), s.rec.Len())
	if err != nil {
		return nil, err
	}
	st.AddSection(InjectorSection, gobBytes(s.in.Snap()))
	return snapshot.Encode(st), nil
}

// Crash strikes the crash fault against the live system and returns a
// description of the damage. The system is left wedged (CrashCore,
// CrashKernelPanic) or silently corrupt (CrashTornDomainMap); only
// Recover brings it back.
func (s *SoakRun) Crash(kind CrashKind) string {
	switch kind {
	case CrashCore:
		id := s.nextOp % s.cfg.Cores
		s.machine.Core(id).CrashVolatile()
		return fmt.Sprintf("core %d volatile state wiped", id)
	case CrashKernelPanic:
		s.kern.ClearResidency()
		return "kernel panic: per-core residency lost"
	case CrashTornDomainMap:
		detail, ok := s.mgr.TearDomainMap()
		if !ok {
			// No mapped vdom to tear; fall back to a residency wipe so
			// the fault still strikes deterministically.
			s.kern.ClearResidency()
			return "no mapped vdom to tear; kernel residency wiped instead"
		}
		return "torn domain map: " + detail
	default:
		panic(fmt.Sprintf("chaos: unknown crash kind %d", int(kind)))
	}
}

// AuditNow runs the cross-layer auditor against the live (possibly
// crashed) system without folding the findings into the soak result —
// crash detection findings describe state that recovery discards.
func (s *SoakRun) AuditNow() []Violation {
	return Audit(s.machine, s.kern, s.mgr)
}

// Recovery describes one completed checkpoint-restore-tail-replay pass.
type Recovery struct {
	// TailEvents is the number of trace events replayed to roll the
	// restored checkpoint forward to the crash point.
	TailEvents int
	// Violations is the auditor's findings on the recovered system; a
	// sound recovery has none.
	Violations []Violation
}

// recoverFromCheckpoint is the shared recovery engine: decode the
// checkpoint, restore every layer, rebuild the injector from its
// section, replay the trace tail from the checkpoint's event index
// (under the restored fault stream, with no metrics attribution — a
// live run's registry already saw these ops), and audit the result.
func recoverFromCheckpoint(snap []byte, tail *replay.Trace) (*replay.System, map[uint64]*kernel.Task, *Injector, *Recovery, error) {
	st, err := snapshot.Decode(snap)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if st.Meta.Header.ConfigDigest != tail.Header.ConfigDigest {
		return nil, nil, nil, nil, fmt.Errorf("%w: checkpoint config digest %#x does not match trace %#x",
			snapshot.ErrBadRecord, st.Meta.Header.ConfigDigest, tail.Header.ConfigDigest)
	}
	data, ok := st.Section(InjectorSection)
	if !ok {
		return nil, nil, nil, nil, fmt.Errorf("%w: missing section %q", snapshot.ErrBadRecord, InjectorSection)
	}
	var isnap InjectorSnap
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&isnap); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("%w: section %q: %v", snapshot.ErrBadRecord, InjectorSection, err)
	}

	sys, tasks, err := snapshot.Restore(st)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	in := NewFromSnap(isnap)

	res, err := replay.RunTail(tail, sys, tasks, st.Meta.Clock, st.Meta.EventIndex, replay.Options{
		Setup: func(sys *replay.System) {
			in.AttachMachine(sys.Machine)
			in.AttachKernel(sys.Kernel)
			in.AttachManager(sys.Manager)
		},
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if res.Divergence != nil {
		return nil, nil, nil, nil, fmt.Errorf("chaos: tail replay diverged at event %d (cycle delta %d)",
			res.Divergence.Index, res.Divergence.CycleDelta)
	}
	rec := &Recovery{TailEvents: res.Events, Violations: Audit(sys.Machine, sys.Kernel, sys.Manager)}
	return sys, tasks, in, rec, nil
}

// RecoverFromArtifacts re-runs a crash recovery from its persisted
// reproducer artifacts — an encoded checkpoint plus the crashed run's
// recorded trace — standalone, with no live soak. It returns the tail
// replay and audit outcome; the recovered System is discarded.
func RecoverFromArtifacts(snap []byte, tail *replay.Trace) (*Recovery, error) {
	_, _, _, rec, err := recoverFromCheckpoint(snap, tail)
	return rec, err
}

// Recover rebuilds the soak's live system from an encoded checkpoint:
// restore, tail replay up to the crash point, audit, and swap the
// recovered instances in. The workload then continues from the op the
// crash interrupted. The recorder's taps stay on the wrecked instances
// while the tail replays, so replayed ops are not re-recorded.
func (s *SoakRun) Recover(snap []byte) (*Recovery, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("chaos: Recover requires SoakConfig.Record")
	}
	sys, tasks, in, rec, err := recoverFromCheckpoint(snap, s.rec.Partial(s.rec.Len()))
	if err != nil {
		return nil, err
	}

	// Swap the recovered instances in and re-wire the host-side taps.
	s.machine, s.kern, s.proc, s.mgr, s.in = sys.Machine, sys.Kernel, sys.Proc, sys.Manager, in
	for i, t := range s.tasks {
		nt, ok := tasks[uint64(t.TID())]
		if !ok {
			return nil, fmt.Errorf("chaos: task %d lost across recovery", t.TID())
		}
		s.tasks[i] = nt
	}
	s.rec.AttachKernel(s.kern)
	s.rec.AttachManager(s.mgr)
	s.kern.SetMetrics(s.cfg.Metrics)
	s.mgr.SetMetrics(s.cfg.Metrics)
	s.attachTracer()
	s.tracedEvents = len(s.in.Events())
	return rec, nil
}

// CrashConfig parameterizes one crash-and-recover soak. Zero fields take
// defaults.
type CrashConfig struct {
	// Kind is the crash fault to strike.
	Kind CrashKind
	// Ctx, when non-nil, cancels the soak between ops: CrashSoak returns
	// the context's error so a wall-clock -timeout can never hang a CI
	// job on a wedged run.
	Ctx context.Context
	// AtOp is the op boundary the crash strikes at — before the op runs
	// (default: halfway through the run).
	AtOp int
	// CheckpointEvery is the checkpoint cadence in ops (default 300; a
	// checkpoint is always taken right after setup).
	CheckpointEvery int
	// WatchdogThreshold is how many stalled observations arm the
	// watchdog (default 8).
	WatchdogThreshold int
}

// CrashOutcome is the report of one crash-and-recover soak.
type CrashOutcome struct {
	// Kind names the crash fault.
	Kind string
	// CheckpointOp is the op the recovery checkpoint was taken after.
	CheckpointOp int
	// CrashOp is the op boundary the crash struck at.
	CrashOp int
	// Detail describes the damage.
	Detail string
	// WatchdogFired reports the watchdog detecting the wedge (wedging
	// kinds only; torn-map crashes are caught by the auditor instead).
	WatchdogFired bool
	// DetectedBy is "watchdog" or "audit".
	DetectedBy string
	// TailEvents is the number of trace events replayed during recovery.
	TailEvents int
	// PostViolations is the auditor's findings on the recovered system.
	PostViolations []Violation
	// Snapshot is the encoded checkpoint recovery restored from — the
	// standalone reproducer artifact.
	Snapshot []byte
	// Result is the completed soak result (crash and recovery included).
	Result *SoakResult
}

// CrashSoak runs a soak with a crash fault struck at the configured op:
// periodic checkpoints, the crash, detection (watchdog or auditor),
// restore + tail replay, and the remainder of the workload on the
// recovered system. The returned result's trace and end state are
// bit-identical to an uninterrupted Soak of the same SoakConfig (with
// Record set).
func CrashSoak(cfg SoakConfig, crash CrashConfig) (*CrashOutcome, error) {
	cfg.Record = true
	if cfg.Ops <= 0 {
		cfg.Ops = 5000
	}
	if crash.AtOp <= 0 {
		crash.AtOp = cfg.Ops/2 + 1
	}
	if crash.AtOp > cfg.Ops {
		crash.AtOp = cfg.Ops
	}
	if crash.CheckpointEvery <= 0 {
		crash.CheckpointEvery = 300
	}
	if crash.WatchdogThreshold <= 0 {
		crash.WatchdogThreshold = 8
	}

	s := StartSoak(cfg)
	out := &CrashOutcome{Kind: crash.Kind.String(), CrashOp: crash.AtOp}
	latest, err := s.Checkpoint()
	if err != nil {
		return nil, err
	}
	for op := 1; op <= cfg.Ops; op++ {
		if crash.Ctx != nil && crash.Ctx.Err() != nil {
			return nil, fmt.Errorf("chaos: crash soak cancelled at op %d: %w", op, crash.Ctx.Err())
		}
		if op == crash.AtOp {
			out.Detail = s.Crash(crash.Kind)
			if crash.Kind == CrashTornDomainMap {
				out.DetectedBy = "audit"
				if v := s.AuditNow(); len(v) == 0 {
					return nil, fmt.Errorf("chaos: torn domain map escaped the auditor")
				}
			} else {
				// The wedged system makes no progress: feed the watchdog
				// the frozen clock until it fires.
				out.DetectedBy = "watchdog"
				wd := sim.NewWatchdog(crash.WatchdogThreshold, func(uint64) { out.WatchdogFired = true })
				frozen := s.ClockCycles()
				for !wd.Fired() {
					wd.Observe(frozen)
				}
			}
			rec, err := s.Recover(latest)
			if err != nil {
				out.Snapshot = latest
				return out, err
			}
			out.TailEvents = rec.TailEvents
			out.PostViolations = rec.Violations
			if len(rec.Violations) > 0 {
				out.Snapshot = latest
				return out, fmt.Errorf("chaos: recovered system failed audit with %d violation(s)", len(rec.Violations))
			}
		}
		s.Step()
		if op%crash.CheckpointEvery == 0 && op < crash.AtOp {
			if latest, err = s.Checkpoint(); err != nil {
				return nil, err
			}
			out.CheckpointOp = op
		}
	}
	out.Snapshot = latest
	out.Result = s.Finish()
	return out, nil
}
