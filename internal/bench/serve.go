package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"vdom/internal/chaos"
	"vdom/internal/scenario"
	"vdom/internal/serve"
)

// ServeOptions parameterizes the supervised soak service (the serve
// subcommand); see internal/serve for the semantics of each knob.
type ServeOptions struct {
	// Duration bounds the run in wall-clock time (0: run to the op
	// budget).
	Duration time.Duration
	// Shards is the fleet width (0: serve default).
	Shards int
	// OpsPerShard bounds each shard (0: unbounded — Duration or a
	// -timeout then ends the run).
	OpsPerShard int
	// CheckpointEvery, Ring, RingDir, and MaxRetries configure the
	// rolling checkpoint ring and the retry/quarantine ladder.
	CheckpointEvery int
	Ring            int
	RingDir         string
	MaxRetries      int
	// CrashEvery is the mean ops between injected crash faults (0:
	// none); CrashKind selects "core-crash", "kernel-panic",
	// "torn-domain-map", or "all".
	CrashEvery int
	CrashKind  string
	// SnapWriteFail and SnapCorrupt are the harness-pressure
	// probabilities (checkpoint-write failure / on-disk corruption).
	SnapWriteFail float64
	SnapCorrupt   float64
	// HealthOut, when set, receives the health report as JSON —
	// rewritten on every HealthEvery tick and finalized (with the
	// serve-layer metrics snapshot) when the run ends.
	HealthOut   string
	HealthEvery time.Duration
	// RequireRecoveries, when positive, fails the run unless at least
	// that many recoveries completed — CI's self-healing assertion.
	RequireRecoveries int
}

// serveCrashKinds resolves the -crash-kind flag.
func serveCrashKinds(name string) ([]chaos.CrashKind, error) {
	switch name {
	case "", "all":
		return nil, nil // serve's default: all three kinds
	case chaos.CrashCore.String():
		return []chaos.CrashKind{chaos.CrashCore}, nil
	case chaos.CrashKernelPanic.String():
		return []chaos.CrashKind{chaos.CrashKernelPanic}, nil
	case chaos.CrashTornDomainMap.String():
		return []chaos.CrashKind{chaos.CrashTornDomainMap}, nil
	default:
		return nil, fmt.Errorf("unknown crash kind %q (want core-crash, kernel-panic, torn-domain-map, or all)", name)
	}
}

// scenarioServeConfig lowers a spec's crash stanza and fault schedule
// onto the serve fleet configuration. Explicit -flags win: a stanza
// value applies only where the corresponding ServeOptions field is still
// zero. The fault mix comes from the spec's first faulted phase (the
// crash-soak default otherwise), and a nonzero spec seed replaces the
// -seed default so the fleet is reproducible from the spec alone.
func scenarioServeConfig(w io.Writer, spec *scenario.Spec, kinds []chaos.CrashKind, seed uint64, so ServeOptions) (chaos.Config, []chaos.CrashKind, uint64, ServeOptions) {
	if spec.Seed != 0 {
		seed = spec.Seed
	}
	mix := snapshotChaosConfig(0)
	faultPhase := ""
	for i := range spec.Phases {
		if f := spec.Phases[i].Faults; f.Any() {
			mix = f.Config(0)
			faultPhase = spec.Phases[i].Name
			break
		}
	}
	if c := spec.Crash; c != nil {
		applyIfZero := func(dst *int, v int) {
			if *dst == 0 {
				*dst = v
			}
		}
		applyIfZero(&so.Shards, c.Shards)
		applyIfZero(&so.OpsPerShard, c.OpsPerShard)
		applyIfZero(&so.CheckpointEvery, c.CheckpointEvery)
		applyIfZero(&so.Ring, c.Ring)
		applyIfZero(&so.CrashEvery, c.CrashEvery)
		applyIfZero(&so.MaxRetries, c.MaxRetries)
		if so.SnapWriteFail == 0 {
			so.SnapWriteFail = c.SnapWriteFail
		}
		if so.SnapCorrupt == 0 {
			so.SnapCorrupt = c.SnapCorrupt
		}
		if (so.CrashKind == "" || so.CrashKind == "all") && len(c.Kinds) > 0 {
			// Stanza kinds are validated at decode time; the error path is
			// unreachable for a decoded spec.
			if ks, err := c.CrashKinds(); err == nil {
				kinds = ks
			}
		}
	}
	if faultPhase != "" {
		fmt.Fprintf(w, "scenario %q: fault mix from phase %q, fleet config from crash stanza\n", spec.Name, faultPhase)
	} else {
		fmt.Fprintf(w, "scenario %q: crash-soak default fault mix, fleet config from crash stanza\n", spec.Name)
	}
	return mix, kinds, seed, so
}

// writeHealth writes one health report to path (best-effort on the
// periodic ticks; the final report returns its error).
func writeHealth(path string, h *serve.Health) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Serve runs the supervised soak service: a fleet of crash-soaking
// shards under continuous supervision — rolling checkpoints, watchdog
// and audit detection, retry/backoff recovery, quarantine escalation —
// with periodic health reports. The fault mix is the crash soak's; the
// run is bounded by ServeOptions.Duration, OpsPerShard, or Options.Ctx
// (the SIGTERM/-timeout path), whichever ends it first. It fails if any
// shard ends quarantined, or if fewer than RequireRecoveries recoveries
// completed.
func Serve(w io.Writer, o Options, seed uint64) error {
	so := o.Serve
	kinds, err := serveCrashKinds(so.CrashKind)
	if err != nil {
		return err
	}
	soak := chaos.SoakConfig{Chaos: snapshotChaosConfig(0)}
	if o.Scenario != "" {
		spec, err := loadScenario(o.Scenario)
		if err != nil {
			return err
		}
		soak.Chaos, kinds, seed, so = scenarioServeConfig(w, spec, kinds, seed, so)
	}
	cfg := serve.Config{
		Shards:          so.Shards,
		Seed:            seed,
		Soak:            soak,
		Pressure:        chaos.PressureConfig{SnapWriteFail: so.SnapWriteFail, SnapCorrupt: so.SnapCorrupt},
		OpsPerShard:     so.OpsPerShard,
		Duration:        so.Duration,
		CheckpointEvery: so.CheckpointEvery,
		Ring:            so.Ring,
		RingDir:         so.RingDir,
		MaxRetries:      so.MaxRetries,
		CrashEvery:      so.CrashEvery,
		CrashKinds:      kinds,
		HealthEvery:     so.HealthEvery,
	}
	if o.Metrics.Enabled() {
		cfg.Metrics = o.Metrics
	}
	if so.HealthEvery > 0 {
		cfg.HealthSink = func(h *serve.Health) {
			if so.HealthOut != "" {
				writeHealth(so.HealthOut, h)
			}
			fmt.Fprintf(w, "health: %d running, %d recovering, %d quarantined, %d drained | %d ops, %d crashes, %d recoveries, %d ring fallbacks\n",
				h.Running, h.Recovering, h.Quarantined, h.Drained, h.Ops, h.Crashes, h.Recoveries, h.RingFallbacks)
		}
	}

	rep, err := serve.Run(o.Ctx, cfg)
	if err != nil {
		return err
	}
	for _, sh := range rep.Shards {
		o.Metrics.Merge(sh.Metrics)
	}

	t := &Table{
		Title: fmt.Sprintf("Supervised soak: %d shards, seed %d: rolling checkpoints (ring %d) + self-healing recovery",
			len(rep.Shards), seed, rep.Shards[0].Health.RingCap),
		Columns: []string{"shard", "state", "ops", "crashes", "recoveries", "retries", "fallbacks", "ring", "max rec ms"},
	}
	for _, sh := range rep.Shards {
		h := sh.Health
		t.Row(fmt.Sprint(h.Shard), h.State.String(), fmt.Sprint(h.Ops),
			fmt.Sprint(h.Crashes), fmt.Sprint(h.Recoveries), fmt.Sprint(h.Retries),
			fmt.Sprint(h.RingFallbacks), fmt.Sprintf("%d/%d", h.RingLen, h.RingCap),
			fmt.Sprintf("%.2f", float64(h.MaxRecoveryNs)/1e6))
	}
	o.Render(w, t)

	h := rep.Health
	if so.HealthOut != "" {
		if err := writeHealth(so.HealthOut, h); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nhealth report: %s\n", so.HealthOut)
	}
	if h.Quarantined > 0 {
		for _, sh := range rep.Shards {
			if sh.Health.State == serve.Quarantined {
				fmt.Fprintf(w, "quarantined shard %d: %s\n", sh.Shard, sh.Health.LastError)
			}
		}
		return fmt.Errorf("serve: %d of %d shards quarantined", h.Quarantined, len(rep.Shards))
	}
	fmt.Fprintf(w, "\nverdict: HEALTHY — %d crashes and %d harness faults absorbed, %d recoveries, 0 quarantined\n",
		h.Crashes, h.CheckpointWriteFails+h.CorruptedCheckpoints, h.Recoveries)
	if so.RequireRecoveries > 0 && h.Recoveries < so.RequireRecoveries {
		return fmt.Errorf("serve: %d recoveries, required at least %d", h.Recoveries, so.RequireRecoveries)
	}
	return nil
}
