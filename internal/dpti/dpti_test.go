package dpti_test

import (
	"errors"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

const pg = pagetable.PageSize

func boot(t *testing.T) (*kernel.Kernel, *kernel.Process, *dpti.Manager, *kernel.Task) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: 2})
	k := kernel.New(kernel.Config{Machine: machine})
	proc := k.NewProcess()
	m := dpti.Attach(proc)
	task := proc.NewTask(0)
	if _, err := task.Mmap(0x1000_0000, 8*pg, true); err != nil {
		t.Fatalf("mmap: %v", err)
	}
	return k, proc, m, task
}

func TestEnterExitSwitchesAddressSpace(t *testing.T) {
	_, proc, m, task := boot(t)
	d, _ := m.AllocDomain()
	if _, err := m.Protect(task, 0x1000_0000, 4*pg, d); err != nil {
		t.Fatalf("protect: %v", err)
	}

	if _, err := m.Enter(task, d); err != nil {
		t.Fatalf("enter: %v", err)
	}
	if m.Current(task) != d {
		t.Fatalf("current = %d, want %d", m.Current(task), d)
	}
	if task.Table() == proc.AS().Shadow() {
		t.Fatal("task still on the shadow table inside the domain")
	}
	if task.ASID() == task.BaseASID() {
		t.Fatal("domain entry kept the base ASID")
	}
	if _, err := task.Access(0x1000_0000, true); err != nil {
		t.Fatalf("access inside the domain: %v", err)
	}

	if _, err := m.Exit(task); err != nil {
		t.Fatalf("exit: %v", err)
	}
	if m.Current(task) != 0 {
		t.Fatalf("current after exit = %d, want 0", m.Current(task))
	}
	if task.Table() != proc.AS().Shadow() || task.ASID() != task.BaseASID() {
		t.Fatal("exit did not restore the base address space")
	}
}

// TestFreeDomainKicksResidentTask pins the teardown hazard: freeing a
// domain a task is currently inside must move that task back to the
// base address space, never leave it on the torn-down table.
func TestFreeDomainKicksResidentTask(t *testing.T) {
	_, proc, m, task := boot(t)
	d, _ := m.AllocDomain()
	if _, err := m.Protect(task, 0x1000_0000, 4*pg, d); err != nil {
		t.Fatalf("protect: %v", err)
	}
	if _, err := m.Enter(task, d); err != nil {
		t.Fatalf("enter: %v", err)
	}

	other := proc.NewTask(1)
	if _, err := m.FreeDomain(other, d); err != nil {
		t.Fatalf("free: %v", err)
	}
	if m.Current(task) != 0 {
		t.Fatalf("task still current in freed domain %d", d)
	}
	if task.Table() != proc.AS().Shadow() || task.ASID() != task.BaseASID() {
		t.Fatal("freed domain left the task on a dangling table")
	}
	// The freed domain's pages resolve access-never from now on.
	if _, err := task.Access(0x1000_0000, false); err == nil {
		t.Fatal("access to a freed domain's pages succeeded")
	}
}

func TestLRUEvictionUnderTableCap(t *testing.T) {
	_, _, m, task := boot(t)
	m.SetMaxTables(2)

	var doms []dpti.DomainID
	for i := 0; i < 3; i++ {
		d, _ := m.AllocDomain()
		doms = append(doms, d)
		if _, err := m.Enter(task, d); err != nil {
			t.Fatalf("enter %d: %v", d, err)
		}
		if _, err := m.Exit(task); err != nil {
			t.Fatalf("exit %d: %v", d, err)
		}
	}
	if n := m.NumLiveTables(); n != 2 {
		t.Fatalf("live tables = %d, want cap 2", n)
	}
	if m.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", m.Stats.Evictions)
	}
	// Re-entering the evicted (least recently used) domain rematerializes.
	before := m.Stats.Materializations
	if _, err := m.Enter(task, doms[0]); err != nil {
		t.Fatalf("re-enter evicted domain: %v", err)
	}
	if m.Stats.Materializations != before+1 {
		t.Fatal("re-entering the evicted domain did not rematerialize its table")
	}
}

func TestSentinels(t *testing.T) {
	k, _, m, task := boot(t)

	if _, err := m.Enter(task, 999); !errors.Is(err, dpti.ErrUnknownDomain) {
		t.Fatalf("enter unknown: %v, want ErrUnknownDomain", err)
	}
	if _, err := m.FreeDomain(task, 999); !errors.Is(err, dpti.ErrUnknownDomain) {
		t.Fatalf("free unknown: %v, want ErrUnknownDomain", err)
	}
	if _, err := m.Protect(task, 0x1000_0000, pg, 999); !errors.Is(err, dpti.ErrUnknownDomain) {
		t.Fatalf("protect unknown: %v, want ErrUnknownDomain", err)
	}

	// Shrink the ASID space until only the live base ASIDs fit; the next
	// materialization must surface ErrNoASID rather than wedge.
	k.SetASIDLimit(1)
	d, _ := m.AllocDomain()
	if _, err := m.Enter(task, d); !errors.Is(err, dpti.ErrNoASID) {
		t.Fatalf("enter with exhausted ASID space: %v, want ErrNoASID", err)
	}
}
