package vdom

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vdom/internal/replay"
	"vdom/internal/scenario"
	"vdom/internal/workload"
)

// updateTraces re-records the golden corpus under testdata/traces/.
// Run `go test -run TestReplayGolden -update-traces .` after a change
// that intentionally shifts cycle costs or event streams.
var updateTraces = flag.Bool("update-traces", false, "rewrite testdata/traces golden corpus")

const traceDir = "testdata/traces"

// goldenCorpus is the full golden-trace corpus: the paper workloads plus
// the scenario subsystem's recorded cell.
func goldenCorpus() []workload.TraceSpec {
	return append(workload.TraceCorpus(), scenario.TraceCorpus()...)
}

// replayGolden re-executes a golden trace through the engine that
// recorded it: scenario traces go through scenario.ReplayTrace (which
// rebuilds any fault injector from the header), everything else through
// the plain replay engine.
func replayGolden(tr *replay.Trace) (*replay.Result, error) {
	if strings.HasPrefix(tr.Header.Workload, scenario.WorkloadPrefix) {
		return scenario.ReplayTrace(tr, replay.Options{})
	}
	return replay.Run(tr, replay.Options{})
}

// TestReplayGolden is the golden-trace regression: every corpus workload
// is re-recorded and must match its checked-in trace byte-for-byte, and
// replaying the checked-in trace must reproduce the recorded cycle
// clock, event stream, and end state with zero divergence.
func TestReplayGolden(t *testing.T) {
	for _, spec := range goldenCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			path := filepath.Join(traceDir, spec.Name+".trace")
			fresh := spec.Record()
			enc := replay.Encode(fresh)

			if *updateTraces {
				if err := os.MkdirAll(traceDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				var jsonl bytes.Buffer
				if err := replay.WriteJSONL(&jsonl, fresh); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(traceDir, spec.Name+".jsonl"), jsonl.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events, %d bytes)", path, len(fresh.Events), len(enc))
				return
			}

			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update-traces): %v", err)
			}
			if !bytes.Equal(enc, golden) {
				t.Fatalf("re-recording %s no longer matches its golden trace (%d vs %d bytes); run with -update-traces if the change is intentional",
					spec.Name, len(enc), len(golden))
			}

			tr, err := replay.Decode(golden)
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			res, err := replayGolden(tr)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Divergence != nil {
				t.Fatalf("replay diverged: %s", res.Divergence)
			}
			if res.Events != len(tr.Events) {
				t.Fatalf("replayed %d of %d events", res.Events, len(tr.Events))
			}
			if res.Cycles != tr.End["clock"] {
				t.Fatalf("replayed clock %d != recorded clock %d", res.Cycles, tr.End["clock"])
			}
		})
	}
}

// TestReplayRoundTrip checks the record→replay property independently of
// the checked-in corpus: a fresh recording of each workload replays with
// zero divergence, and both encodings round-trip through the binary and
// JSONL codecs.
func TestReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus re-record is not short")
	}
	for _, spec := range goldenCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := spec.Record()
			if len(tr.Events) == 0 {
				t.Fatal("recording captured no events")
			}

			dec, err := replay.Decode(replay.Encode(tr))
			if err != nil {
				t.Fatalf("binary round-trip: %v", err)
			}
			assertTraceEqual(t, "binary", tr, dec)

			var buf bytes.Buffer
			if err := replay.WriteJSONL(&buf, tr); err != nil {
				t.Fatalf("jsonl encode: %v", err)
			}
			jdec, err := replay.ReadJSONL(&buf)
			if err != nil {
				t.Fatalf("jsonl round-trip: %v", err)
			}
			assertTraceEqual(t, "jsonl", tr, jdec)

			res, err := replayGolden(dec)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Divergence != nil {
				t.Fatalf("replay diverged: %s", res.Divergence)
			}
			if res.Cycles != tr.End["clock"] {
				t.Fatalf("replayed clock %d != recorded clock %d", res.Cycles, tr.End["clock"])
			}
		})
	}
}

func assertTraceEqual(t *testing.T, codec string, want, got *replay.Trace) {
	t.Helper()
	if fmt.Sprintf("%+v", want.Header) != fmt.Sprintf("%+v", got.Header) {
		t.Fatalf("%s: header mismatch:\n want %+v\n  got %+v", codec, want.Header, got.Header)
	}
	if len(want.Events) != len(got.Events) {
		t.Fatalf("%s: %d events decoded, want %d", codec, len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if want.Events[i] != got.Events[i] {
			t.Fatalf("%s: event %d mismatch:\n want %+v\n  got %+v", codec, i, want.Events[i], got.Events[i])
		}
	}
	if len(want.End) != len(got.End) {
		t.Fatalf("%s: end-state size %d, want %d", codec, len(got.End), len(want.End))
	}
	for k, v := range want.End {
		if got.End[k] != v {
			t.Fatalf("%s: end[%q] = %d, want %d", codec, k, got.End[k], v)
		}
	}
}
