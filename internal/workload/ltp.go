package workload

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// LTPCase is one compatibility check run against a kernel flavour, in the
// spirit of the Linux Test Project suites the paper passes on both the
// original and the VDom-modified kernel (§7.1).
type LTPCase struct {
	Suite string
	Name  string
	Run   func(k *kernel.Kernel) error
}

// LTPResult is the outcome of a full suite run on one kernel flavour.
type LTPResult struct {
	Arch        cycles.Arch
	VDomEnabled bool
	Passed      int
	Failed      int
	Failures    []string
}

// RunLTP runs every case against a freshly booted kernel of the given
// flavour.
func RunLTP(arch cycles.Arch, vdomEnabled bool) LTPResult {
	res := LTPResult{Arch: arch, VDomEnabled: vdomEnabled}
	for _, tc := range LTPCases() {
		k := bootBench(arch, 4, vdomEnabled)
		if err := tc.Run(k); err != nil {
			res.Failed++
			res.Failures = append(res.Failures, fmt.Sprintf("%s/%s: %v", tc.Suite, tc.Name, err))
		} else {
			res.Passed++
		}
	}
	return res
}

const ltpPage = pagetable.PageSize

// LTPCases returns the full compatibility suite: memory management,
// scheduler, and IPC-surface checks (the paper's file-system and disk-IO
// suites exercise subsystems the simulated kernel intentionally omits; see
// DESIGN.md).
func LTPCases() []LTPCase {
	return []LTPCase{
		// --- mm suite ---
		{"mm", "mmap01-basic-map-and-touch", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 4*ltpPage, true); err != nil {
				return err
			}
			_, err := t.Access(0x10000+2*ltpPage, true)
			return err
		}},
		{"mm", "mmap02-overlap-rejected", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 4*ltpPage, true); err != nil {
				return err
			}
			if _, err := t.Mmap(0x11000, ltpPage, true); err == nil {
				return errors.New("overlapping mmap succeeded")
			}
			return nil
		}},
		{"mm", "mmap03-unaligned-rejected", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10001, ltpPage, true); err == nil {
				return errors.New("unaligned mmap succeeded")
			}
			return nil
		}},
		{"mm", "munmap01-basic", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 4*ltpPage, true); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, true); err != nil {
				return err
			}
			if _, err := t.Munmap(0x10000, 4*ltpPage); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, false); !errors.Is(err, kernel.ErrSigsegv) {
				return fmt.Errorf("access after munmap = %v", err)
			}
			return nil
		}},
		{"mm", "munmap02-partial-hole", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 8*ltpPage, true); err != nil {
				return err
			}
			if _, err := t.Munmap(0x10000+2*ltpPage, 2*ltpPage); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, true); err != nil {
				return fmt.Errorf("head lost: %v", err)
			}
			if _, err := t.Access(0x10000+2*ltpPage, false); !errors.Is(err, kernel.ErrSigsegv) {
				return errors.New("hole still mapped")
			}
			if _, err := t.Access(0x10000+5*ltpPage, true); err != nil {
				return fmt.Errorf("tail lost: %v", err)
			}
			return nil
		}},
		{"mm", "mprotect01-revoke-write", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, ltpPage, true); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, true); err != nil {
				return err
			}
			if _, err := t.Mprotect(0x10000, ltpPage, false); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, true); !errors.Is(err, kernel.ErrSigsegv) {
				return errors.New("write after revoke succeeded")
			}
			_, err := t.Access(0x10000, false)
			return err
		}},
		{"mm", "mprotect02-grant-write", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, ltpPage, false); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, false); err != nil {
				return err
			}
			if _, err := t.Mprotect(0x10000, ltpPage, true); err != nil {
				return err
			}
			_, err := t.Access(0x10000, true)
			return err
		}},
		{"mm", "pagefault01-demand-zero", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 64*ltpPage, true); err != nil {
				return err
			}
			for i := 0; i < 64; i++ {
				if _, err := t.Access(0x10000+pagetable.VAddr(i)*ltpPage, true); err != nil {
					return fmt.Errorf("page %d: %v", i, err)
				}
			}
			if n := t.Process().AS().Shadow().Present(); n != 64 {
				return fmt.Errorf("present pages = %d, want 64", n)
			}
			return nil
		}},
		{"mm", "segv01-wild-pointer", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Access(0xdead0000, true); !errors.Is(err, kernel.ErrSigsegv) {
				return fmt.Errorf("wild access = %v", err)
			}
			return nil
		}},
		{"mm", "shm01-two-threads-share", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t1, t2 := p.NewTask(0), p.NewTask(1)
			if _, err := t1.Mmap(0x10000, ltpPage, true); err != nil {
				return err
			}
			if _, err := t1.Access(0x10000, true); err != nil {
				return err
			}
			_, err := t2.Access(0x10000, true)
			return err
		}},

		// --- sched suite ---
		{"sched", "switch01-dispatch-restores-state", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t1, t2 := p.NewTask(0), p.NewTask(0)
			t1.SetSavedPerm(0x11)
			t2.SetSavedPerm(0x22)
			k.Dispatch(t1)
			if got := k.Machine().Core(0).Perm().Raw(); got != 0x11 {
				return fmt.Errorf("t1 register = %#x", got)
			}
			k.Dispatch(t2)
			if got := k.Machine().Core(0).Perm().Raw(); got != 0x22 {
				return fmt.Errorf("t2 register = %#x", got)
			}
			return nil
		}},
		{"sched", "affinity01-tasks-stay-on-core", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t := p.NewTask(2)
			if t.CoreID() != 2 || t.Core() != k.Machine().Core(2) {
				return errors.New("task not pinned to its core")
			}
			return nil
		}},
		{"sched", "switch02-asid-preserves-tlb", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t1, t2 := p.NewTask(0), p.NewTask(0)
			if _, err := t1.Mmap(0x10000, ltpPage, true); err != nil {
				return err
			}
			if _, err := t1.Access(0x10000, true); err != nil {
				return err
			}
			if _, err := t2.Access(0x10000, true); err != nil {
				return err
			}
			// Back to t1: its translation must still be warm.
			k.Dispatch(t1)
			res := t1.Core().Access(0x10000, false)
			if !res.TLBHit {
				return errors.New("ASID-tagged translation lost across context switch")
			}
			return nil
		}},

		// --- ipc/syscall suite ---
		{"ipc", "filter01-blocks-configured-call", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t := p.NewTask(0)
			k.RegisterSyscallFilter(func(_ *kernel.Task, sc kernel.Syscall, _ kernel.SyscallArgs) error {
				if sc == kernel.SysProcessVMReadv {
					return errors.New("blocked")
				}
				return nil
			})
			if _, err := t.Mmap(0x10000, ltpPage, true); err != nil {
				return fmt.Errorf("unrelated call filtered: %v", err)
			}
			if _, _, err := t.ProcessVMReadv(0x10000); !errors.Is(err, kernel.ErrBlocked) {
				return fmt.Errorf("filtered call = %v", err)
			}
			return nil
		}},
		{"ipc", "shootdown01-revocation-visible-cross-core", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t1, t2 := p.NewTask(0), p.NewTask(1)
			if _, err := t1.Mmap(0x10000, ltpPage, true); err != nil {
				return err
			}
			if _, err := t2.Access(0x10000, true); err != nil {
				return err
			}
			if _, err := t1.Mprotect(0x10000, ltpPage, false); err != nil {
				return err
			}
			if _, err := t2.Access(0x10000, true); !errors.Is(err, kernel.ErrSigsegv) {
				return errors.New("stale writable translation survived revocation")
			}
			return nil
		}},
		{"ipc", "gettid01", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t1, t2 := p.NewTask(0), p.NewTask(1)
			a, _ := t1.GetTID()
			b, _ := t2.GetTID()
			if a == b {
				return errors.New("duplicate TIDs")
			}
			return nil
		}},

		// --- mm suite (part 2) ---
		{"mm", "reclaim01-refault-after-kswapd", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t := p.NewTask(0)
			if _, err := t.Mmap(0x10000, 16*ltpPage, true); err != nil {
				return err
			}
			for i := 0; i < 16; i++ {
				if _, err := t.Access(0x10000+pagetable.VAddr(i)*ltpPage, true); err != nil {
					return err
				}
			}
			n, _ := p.ReclaimFrames(0, 10)
			if n != 10 {
				return fmt.Errorf("reclaimed %d, want 10", n)
			}
			for i := 0; i < 16; i++ {
				if _, err := t.Access(0x10000+pagetable.VAddr(i)*ltpPage, true); err != nil {
					return fmt.Errorf("refault page %d: %v", i, err)
				}
			}
			return nil
		}},
		{"mm", "mprotect03-split-boundaries", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 8*ltpPage, true); err != nil {
				return err
			}
			// Revoke the middle; head and tail stay writable.
			if _, err := t.Mprotect(0x10000+3*ltpPage, 2*ltpPage, false); err != nil {
				return err
			}
			if _, err := t.Access(0x10000, true); err != nil {
				return fmt.Errorf("head: %v", err)
			}
			if _, err := t.Access(0x10000+3*ltpPage, true); !errors.Is(err, kernel.ErrSigsegv) {
				return fmt.Errorf("middle write = %v", err)
			}
			if _, err := t.Access(0x10000+7*ltpPage, true); err != nil {
				return fmt.Errorf("tail: %v", err)
			}
			if got := t.Process().AS().NumVMAs(); got != 3 {
				return fmt.Errorf("VMAs = %d, want 3 after split", got)
			}
			return nil
		}},
		{"mm", "mmap04-remap-freed-range", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, 4*ltpPage, true); err != nil {
				return err
			}
			if _, err := t.Munmap(0x10000, 4*ltpPage); err != nil {
				return err
			}
			if _, err := t.Mmap(0x10000, 2*ltpPage, true); err != nil {
				return fmt.Errorf("remap freed range: %v", err)
			}
			_, err := t.Access(0x10000, true)
			return err
		}},
		{"mm", "settag01-empty-range-rejected", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t := p.NewTask(0)
			if _, err := t.Mmap(0x10000, ltpPage, true); err != nil {
				return err
			}
			if _, err := p.AS().SetTag(0x10000, 0, 3); err == nil {
				return errors.New("empty SetTag succeeded")
			}
			return nil
		}},
		{"mm", "fault02-costs-decrease-warm", func(k *kernel.Kernel) error {
			t := k.NewProcess().NewTask(0)
			if _, err := t.Mmap(0x10000, ltpPage, true); err != nil {
				return err
			}
			cold, err := t.Access(0x10000, true)
			if err != nil {
				return err
			}
			warm, err := t.Access(0x10000, true)
			if err != nil {
				return err
			}
			if warm >= cold {
				return fmt.Errorf("warm %d not cheaper than cold %d", warm, cold)
			}
			return nil
		}},

		// --- sched suite (part 2) ---
		{"sched", "asid01-unique-per-task", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			seen := map[tlb.ASID]bool{}
			for i := 0; i < 8; i++ {
				t := p.NewTask(i % 4)
				if seen[t.ASID()] {
					return fmt.Errorf("duplicate ASID %d", t.ASID())
				}
				seen[t.ASID()] = true
			}
			return nil
		}},
		{"sched", "irq01-pending-interrupts-drain", func(k *kernel.Kernel) error {
			k.AddPendingInterrupt(1, 500)
			if got := k.TakePendingInterrupts(1); got != 500 {
				return fmt.Errorf("drained %d, want 500", got)
			}
			if got := k.TakePendingInterrupts(1); got != 0 {
				return fmt.Errorf("second drain %d, want 0", got)
			}
			return nil
		}},

		// --- hardware-conformance suite ---
		{"hw", "pkru01-default-deny", func(k *kernel.Kernel) error {
			var r hw.PermRegister
			r.SetRaw(hw.DenyAll())
			if r.Get(0) != hw.PermReadWrite {
				return errors.New("pdom0 not accessible")
			}
			for d := uint8(1); d < 16; d++ {
				if r.Get(d) != hw.PermNone {
					return fmt.Errorf("pdom %d accessible by default", d)
				}
			}
			return nil
		}},
		{"hw", "pgtable01-vma-tagging", func(k *kernel.Kernel) error {
			p := k.NewProcess()
			t := p.NewTask(0)
			if _, err := t.Mmap(0x10000, 2*ltpPage, true); err != nil {
				return err
			}
			if _, err := p.AS().SetTag(0x10000, ltpPage, mm.Tag(7)); err != nil {
				return err
			}
			v := p.AS().FindVMA(0x10000)
			if v == nil || v.Tag != 7 {
				return fmt.Errorf("tag lost: %v", v)
			}
			if v2 := p.AS().FindVMA(0x10000 + ltpPage); v2 == nil || v2.Tag != 0 {
				return errors.New("tag bled into the neighbour page")
			}
			return nil
		}},
	}
}
