// Sandbox: the three memory-domain sandbox defenses of the paper's Table 2,
// ported onto VDom and demonstrated end to end — binary inspection for
// unsafe wrpkru, the dynamic call-gate register check, and the syscall
// filter that stops kernel confused-deputy reads.
package main

import (
	"errors"
	"fmt"
	"log"

	"vdom"
	"vdom/internal/core"
	"vdom/internal/kernel"
)

func main() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 2})
	p := sys.NewProcess(vdom.DefaultPolicy())
	th := p.NewThread(0)
	if _, err := th.AllocVDR(2); err != nil {
		log.Fatal(err)
	}

	// A protected secret for the attacks to aim at.
	secret, err := th.Mmap(vdom.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	dom, _ := p.AllocDomain(false)
	if _, err := p.ProtectRange(th, secret, vdom.PageSize, dom); err != nil {
		log.Fatal(err)
	}
	if _, err := th.WriteVDR(dom, vdom.ReadWrite); err != nil {
		log.Fatal(err)
	}
	if err := th.Store(secret); err != nil {
		log.Fatal(err)
	}

	// Defense 1: binary scan. A loader refuses to make pages executable
	// when they contain unvetted wrpkru/xrstor occurrences.
	fmt.Println("defense 1: binary inspection")
	binary := []core.Instr{
		{Op: core.OpOther},
		{Op: core.OpWRPKRU}, // smuggled, no legality check after it
		{Op: core.OpXORECX},
		{Op: core.OpWRPKRU}, {Op: core.OpCmpEAX}, {Op: core.OpJNE}, // vetted gate
		{Op: core.OpXRSTOR}, // can restore PKRU from memory: always flagged
	}
	findings := core.ScanBinary(binary)
	for _, f := range findings {
		fmt.Printf("  flagged %s at instruction %d -> watchpoint inserted\n", f.Op, f.Index)
	}
	if len(findings) != 2 {
		log.Fatalf("scanner missed occurrences: %v", findings)
	}

	// Defense 2: call-gate register check. The sandbox rebuilds the
	// expected PKRU dynamically from the shared domain map (VDom's maps
	// are not fixed), so a hijacked value stands out.
	fmt.Println("defense 2: dynamic call-gate register check")
	gate, err := core.NewGate(p.Manager())
	if err != nil {
		log.Fatal(err)
	}
	task := th.Task()
	if !gate.ValidateRegister(task, task.SavedPerm()) {
		log.Fatal("legal register rejected")
	}
	fmt.Println("  legal PKRU accepted")
	if gate.ValidateRegister(task, 0) {
		log.Fatal("all-access register accepted!")
	}
	fmt.Println("  hijacked all-access PKRU rejected")
	// And the gate's own exit check catches a controlled eax directly:
	sys.Kernel().Dispatch(task)
	gate.Enter(task)
	if _, err := gate.Exit(task, 0); !errors.Is(err, core.ErrGateViolation) {
		log.Fatalf("gate exit accepted hijacked eax: %v", err)
	}
	fmt.Println("  gate exit legality check caught the hijacked eax")

	// Defense 3: syscall filter. Without it, process_vm_readv acts as a
	// confused deputy and reads domain-protected memory.
	fmt.Println("defense 3: confused-deputy syscall filter")
	if _, _, err := task.ProcessVMReadv(secret); err != nil {
		log.Fatalf("baseline deputy read failed: %v", err)
	}
	fmt.Println("  without the filter: the kernel read the protected page (!)")
	sys.Kernel().RegisterSyscallFilter(func(t *kernel.Task, sc kernel.Syscall, args kernel.SyscallArgs) error {
		if sc != kernel.SysProcessVMReadv {
			return nil
		}
		if v := p.Underlying().AS().FindVMA(args.Addr); v != nil && v.Tag != 0 {
			return errors.New("target is domain-protected")
		}
		return nil
	})
	if _, _, err := task.ProcessVMReadv(secret); errors.Is(err, kernel.ErrBlocked) {
		fmt.Println("  with the filter: blocked")
	} else {
		log.Fatalf("filter did not block: %v", err)
	}
}
