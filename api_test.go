package vdom_test

// Exported-API conformance test: the root package's exported surface must
// match the committed golden file, so an accidental API break (removed
// identifier, changed signature, renamed field) fails `go test` as well as
// the standalone `go run ./cmd/apilint` CI step. After an intentional API
// change, regenerate with `go run ./cmd/apilint -write`.

import (
	"os"
	"testing"

	"vdom/internal/apisurface"
)

func TestExportedAPISurfaceMatchesGolden(t *testing.T) {
	entries, err := apisurface.Surface(".")
	if err != nil {
		t.Fatal(err)
	}
	got := apisurface.Render(entries)

	want, err := os.ReadFile("testdata/api/vdom.golden")
	if err != nil {
		t.Fatalf("%v (regenerate with `go run ./cmd/apilint -write`)", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface drifted from testdata/api/vdom.golden (%d declarations extracted);\n"+
			"run `go run ./cmd/apilint` for a diff, or `go run ./cmd/apilint -write` if the change is intentional",
			len(entries))
	}
}
