package backend

import (
	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// dptiBackend registers the DPTI baseline (one page table per domain,
// pgd-switch activation, no key-register ceiling).
type dptiBackend struct{}

func (dptiBackend) Name() string             { return "dpti" }
func (dptiBackend) Standalone(Spec) bool     { return false }
func (dptiBackend) Present(i *Instance) bool { return i.DPTI != nil }
func (dptiBackend) Section() string          { return "dpti" }
func (dptiBackend) ProcScoped() bool         { return true }

func (dptiBackend) Attach(inst *Instance, spec Spec) error {
	inst.DPTI = dpti.Attach(inst.Proc)
	return nil
}

func (dptiBackend) AttachTap(inst *Instance, t tap.Tap)            { inst.DPTI.SetTap(t) }
func (dptiBackend) SetMetrics(inst *Instance, r *metrics.Registry) { inst.DPTI.SetMetrics(r) }

func (dptiBackend) EmitEnd(inst *Instance, emit func(string, uint64)) {
	inst.DPTI.Stats.Emit(emit)
	emit("dpti/live-tables", uint64(inst.DPTI.NumLiveTables()))
}

func (dptiBackend) Capture(inst *Instance, tableID func(*pagetable.Table) int) any {
	return inst.DPTI.Snap(tableID)
}

func (dptiBackend) Restore(inst *Instance, decode func(any) error, table func(int) *pagetable.Table, task func(int) *kernel.Task) error {
	var ds dpti.Snap
	if err := decode(&ds); err != nil {
		return err
	}
	inst.DPTI.LoadSnap(ds, table, task)
	return nil
}

func (dptiBackend) Ops(inst *Instance) DomainOps { return dptiOps{inst.DPTI} }

// dptiOps adapts DPTI: domains map 1:1, activation is an Enter (pgd
// switch into the domain's table) and deactivation an Exit back to the
// base table.
type dptiOps struct{ m *dpti.Manager }

func (o dptiOps) Alloc(t *kernel.Task) (uint64, cycles.Cost, error) {
	d, cost := o.m.AllocDomain()
	return uint64(d), cost, nil
}

func (o dptiOps) Free(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.FreeDomain(t, dpti.DomainID(id))
}

func (o dptiOps) Protect(t *kernel.Task, addr pagetable.VAddr, length uint64, id uint64) (cycles.Cost, error) {
	return o.m.Protect(t, addr, length, dpti.DomainID(id))
}

func (o dptiOps) PrepareThread(t *kernel.Task, n int) (cycles.Cost, error) { return 0, nil }

func (o dptiOps) Activate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.Enter(t, dpti.DomainID(id))
}

func (o dptiOps) Deactivate(t *kernel.Task, id uint64) (cycles.Cost, error) {
	return o.m.Exit(t)
}
