// Tracing: watch the domain virtualization algorithm make its decisions in
// real time — which vdoms map to free pdoms, when threads switch or
// migrate between VDSes, and when HLRU evicts.
package main

import (
	"fmt"
	"log"

	"vdom"
)

func main() {
	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 4})
	p := sys.NewProcess(vdom.DefaultPolicy())

	counts := map[vdom.EventKind]int{}
	p.Trace(func(e vdom.Event) {
		counts[e.Kind]++
		// Print the first few of each kind so the output stays short.
		if counts[e.Kind] <= 3 {
			fmt.Printf("  %v\n", e)
		} else if counts[e.Kind] == 4 {
			fmt.Printf("  (%v: further events elided)\n", e.Kind)
		}
	})

	t1 := p.NewThread(0)
	t2 := p.NewThread(1)
	for _, th := range []*vdom.Thread{t1, t2} {
		if _, err := th.AllocVDR(3); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("two threads fill the first address space:")
	mk := func(th *vdom.Thread) (vdom.Domain, vdom.Addr) {
		a, err := th.Mmap(vdom.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		d, _ := p.AllocDomain(false)
		if _, err := p.ProtectRange(th, a, vdom.PageSize, d); err != nil {
			log.Fatal(err)
		}
		if _, err := th.WriteVDR(d, vdom.ReadWrite); err != nil {
			log.Fatal(err)
		}
		if err := th.Store(a); err != nil {
			log.Fatal(err)
		}
		return d, a
	}
	for i := 0; i < 7; i++ {
		mk(t1)
		mk(t2)
	}

	fmt.Println("\nthread 2 overflows the shared VDS (watch it migrate):")
	mk(t2)

	fmt.Println("\nthread 1 cycles through many more domains (switches/evictions):")
	var doms []vdom.Domain
	for i := 0; i < 40; i++ {
		d, _ := mk(t1)
		if _, err := t1.WriteVDR(d, vdom.NoAccess); err != nil {
			log.Fatal(err)
		}
		doms = append(doms, d)
	}
	for _, d := range doms[:10] {
		if _, err := t1.WriteVDR(d, vdom.ReadOnly); err != nil {
			log.Fatal(err)
		}
		if _, err := t1.WriteVDR(d, vdom.NoAccess); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nevent totals:")
	for _, k := range []vdom.EventKind{vdom.EventVDSAlloc, vdom.EventMap, vdom.EventSwitch, vdom.EventMigrate, vdom.EventEvict, vdom.EventFree} {
		fmt.Printf("  %-10v %d\n", k, counts[k])
	}
}
