package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int64
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("job ran for n=0") })
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		jobs := make([]func() string, 20)
		for i := range jobs {
			i := i
			jobs[i] = func() string { return fmt.Sprint(i * i) }
		}
		got := Map(workers, jobs)
		for i, v := range got {
			if want := fmt.Sprint(i * i); v != want {
				t.Fatalf("workers=%d: Map[%d] = %q, want %q", workers, i, v, want)
			}
		}
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				jp, ok := recover().(JobPanic)
				if !ok || jp.Value != "boom" || jp.Index != 3 {
					t.Errorf("workers=%d: recovered %#v, want JobPanic{Index: 3, Value: boom}", workers, jp)
				}
			}()
			Do(workers, 10, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// TestJobPanicIndex pins the failure-attribution contract: Do and Map
// re-raise a job panic as a JobPanic carrying the exact failing index —
// at every pool width, including the sequential reference execution —
// so fleet and serve supervisors can name the cell that died.
func TestJobPanicIndex(t *testing.T) {
	const fail = 7
	catch := func(run func()) JobPanic {
		t.Helper()
		var jp JobPanic
		func() {
			defer func() {
				r := recover()
				var ok bool
				if jp, ok = r.(JobPanic); !ok {
					t.Fatalf("recovered %#v, want a JobPanic", r)
				}
			}()
			run()
		}()
		return jp
	}
	for _, workers := range []int{1, 2, 16} {
		jp := catch(func() {
			Do(workers, 12, func(i int) {
				if i == fail {
					panic("do-boom")
				}
			})
		})
		if jp.Index != fail || jp.Value != "do-boom" {
			t.Errorf("Do workers=%d: got JobPanic{%d, %v}, want {%d, do-boom}", workers, jp.Index, jp.Value, fail)
		}
		jobs := make([]func() int, 12)
		for i := range jobs {
			i := i
			jobs[i] = func() int {
				if i == fail {
					panic("map-boom")
				}
				return i
			}
		}
		jp = catch(func() { Map(workers, jobs) })
		if jp.Index != fail || jp.Value != "map-boom" {
			t.Errorf("Map workers=%d: got JobPanic{%d, %v}, want {%d, map-boom}", workers, jp.Index, jp.Value, fail)
		}
	}
}

// TestJobPanicNoDoubleWrap re-raises an already-wrapped panic unchanged
// through a nested pool, preserving the innermost attribution.
func TestJobPanicNoDoubleWrap(t *testing.T) {
	defer func() {
		jp, ok := recover().(JobPanic)
		if !ok || jp.Index != 2 || jp.Value != "inner" {
			t.Errorf("recovered %#v, want the inner JobPanic{2, inner}", jp)
		}
	}()
	Do(1, 1, func(int) {
		Do(4, 5, func(i int) {
			if i == 2 {
				panic("inner")
			}
		})
	})
}
