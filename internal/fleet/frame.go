package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The vdom-fleet/v1 wire format. Every frame is:
//
//	magic "VDFL" (4 bytes) | type (1 byte) | payload length (uvarint) | payload
//
// and every payload field is uvarint- or length-prefixed, exactly like
// the repository's other binary formats (vdom-trace/v1, vdom-snap/v1).
// The per-frame magic buys cheap desync detection: a transport fault
// that shears the stream mid-frame makes the next read fail ErrBadMagic
// immediately instead of misparsing tail bytes as a frame header.

// ProtocolVersion is the vdom-fleet protocol generation; a hello frame
// carrying any other version is rejected with ErrBadVersion.
const ProtocolVersion = 1

// frameMagic opens every frame on the pipe.
var frameMagic = [4]byte{'V', 'D', 'F', 'L'}

// FrameType discriminates the protocol's frames.
type FrameType uint8

// The vdom-fleet/v1 frame types.
const (
	// FrameHello is the worker's first frame: protocol version + worker id.
	FrameHello FrameType = 1
	// FrameAssign carries one CellSpec from coordinator to worker.
	FrameAssign FrameType = 2
	// FrameResult carries one CellResult (with integrity digest) back.
	FrameResult FrameType = 3
	// FrameHeartbeat is the worker's liveness beacon while a cell runs.
	FrameHeartbeat FrameType = 4
	// FrameShutdown asks the worker to drain and exit.
	FrameShutdown FrameType = 5
)

// Typed decode sentinels: every malformed input maps to exactly one of
// these (wrapped with context), and none of them is ever a panic.
var (
	// ErrBadMagic means the stream position does not open a frame.
	ErrBadMagic = errors.New("fleet: bad frame magic")
	// ErrBadVersion means the peer speaks a different protocol generation.
	ErrBadVersion = errors.New("fleet: unsupported protocol version")
	// ErrTruncated means the input ended inside a frame or field.
	ErrTruncated = errors.New("fleet: truncated frame")
	// ErrBadRecord means a structurally invalid frame or field.
	ErrBadRecord = errors.New("fleet: malformed frame")
	// ErrBadDigest means a result frame's content failed its integrity
	// digest — the payload decoded but was corrupted in flight.
	ErrBadDigest = errors.New("fleet: result digest mismatch")
)

// Anti-panic caps: a well-formed frame never exceeds these, so anything
// beyond them is rejected as malformed rather than allocated. The frame
// cap bounds a forged length prefix; the string cap bounds any single
// rendered-text or error field; cells and indices are bounded far below
// any real grid.
const (
	maxFramePayload = 64 << 20
	maxStringLen    = 1 << 20
	maxCellIndex    = 1 << 20
)

// WriteFrame writes one frame: magic, type, length-prefixed payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, frameMagic[:]...)
	hdr = append(hdr, byte(t))
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Skip the empty write: io.Pipe blocks zero-length writes
		// until a reader shows up, and a shutdown frame's recipient
		// may already be gone.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from the buffered stream. io.EOF is
// returned bare only at a clean frame boundary; any mid-frame end of
// input is ErrTruncated, and a bad opening is ErrBadMagic — the caller
// treats both as a torn transport.
func ReadFrame(br *bufio.Reader) (FrameType, []byte, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if magic != frameMagic {
		return 0, nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	tb, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: reading frame type", ErrTruncated)
	}
	t := FrameType(tb)
	if t < FrameHello || t > FrameShutdown {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrBadRecord, tb)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: reading payload length", ErrTruncated)
	}
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrBadRecord, n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload ended after %v", ErrTruncated, err)
	}
	return t, payload, nil
}

// Hello is the worker's opening frame.
type Hello struct {
	// Version is the worker's ProtocolVersion.
	Version int
	// Worker is the worker's fleet slot id.
	Worker int
}

// EncodeHello serializes a hello payload.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 0, 8)
	b = binary.AppendUvarint(b, uint64(h.Version))
	b = binary.AppendUvarint(b, uint64(h.Worker))
	return b
}

// DecodeHello parses a hello payload, rejecting version skew.
func DecodeHello(data []byte) (Hello, error) {
	d := &payloadDecoder{buf: data}
	v, err := d.uvarint()
	if err != nil {
		return Hello{}, err
	}
	if v != ProtocolVersion {
		return Hello{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, ProtocolVersion)
	}
	w, err := d.smallInt("worker")
	if err != nil {
		return Hello{}, err
	}
	if err := d.done(); err != nil {
		return Hello{}, err
	}
	return Hello{Version: int(v), Worker: w}, nil
}

// Assign is one cell assignment: the run-unique cell id plus the spec.
type Assign struct {
	// ID is the coordinator's run-unique cell id; the matching result
	// frame echoes it.
	ID   uint64
	Spec CellSpec
}

// EncodeAssign serializes an assignment payload.
func EncodeAssign(a Assign) []byte {
	b := make([]byte, 0, 64)
	b = binary.AppendUvarint(b, a.ID)
	b = putString(b, a.Spec.Grid)
	b = binary.AppendUvarint(b, uint64(a.Spec.Index))
	b = binary.AppendUvarint(b, a.Spec.Seed)
	b = putString(b, a.Spec.Kernel)
	b = putString(b, a.Spec.Arch)
	b = binary.AppendUvarint(b, uint64(a.Spec.Flags))
	b = putString(b, a.Spec.Spec)
	return b
}

// DecodeAssign parses an assignment payload.
func DecodeAssign(data []byte) (Assign, error) {
	d := &payloadDecoder{buf: data}
	var a Assign
	var err error
	if a.ID, err = d.uvarint(); err != nil {
		return a, err
	}
	if a.Spec.Grid, err = d.string(); err != nil {
		return a, err
	}
	idx, err := d.uvarint()
	if err != nil {
		return a, err
	}
	if idx > maxCellIndex {
		return a, fmt.Errorf("%w: cell index %d exceeds cap %d", ErrBadRecord, idx, maxCellIndex)
	}
	a.Spec.Index = int(idx)
	if a.Spec.Seed, err = d.uvarint(); err != nil {
		return a, err
	}
	if a.Spec.Kernel, err = d.string(); err != nil {
		return a, err
	}
	if a.Spec.Arch, err = d.string(); err != nil {
		return a, err
	}
	flags, err := d.uvarint()
	if err != nil {
		return a, err
	}
	if flags > 1<<32-1 {
		return a, fmt.Errorf("%w: spec flags %#x out of range", ErrBadRecord, flags)
	}
	a.Spec.Flags = uint32(flags)
	if a.Spec.Spec, err = d.string(); err != nil {
		return a, err
	}
	if err := d.done(); err != nil {
		return a, err
	}
	return a, nil
}

// Result is one computed cell travelling back to the coordinator.
type Result struct {
	// ID echoes the assignment's cell id.
	ID   uint64
	Cell CellResult
}

// EncodeResult serializes a result payload, appending the integrity
// digest over the content fields.
func EncodeResult(r Result) []byte {
	b := make([]byte, 0, 128+len(r.Cell.Text)+len(r.Cell.Metrics)+len(r.Cell.Trace)+len(r.Cell.Aux))
	b = binary.AppendUvarint(b, r.ID)
	b = putString(b, r.Cell.Err)
	b = putString(b, r.Cell.Text)
	b = binary.AppendUvarint(b, r.Cell.Total)
	b = putBytes(b, r.Cell.Metrics)
	b = putBytes(b, r.Cell.Trace)
	b = putBytes(b, r.Cell.Aux)
	b = binary.AppendUvarint(b, r.Cell.digest(r.ID))
	return b
}

// DecodeResult parses a result payload and verifies its digest; a
// payload whose content was corrupted in flight fails with ErrBadDigest
// even when it decodes structurally.
func DecodeResult(data []byte) (Result, error) {
	d := &payloadDecoder{buf: data}
	var r Result
	var err error
	if r.ID, err = d.uvarint(); err != nil {
		return r, err
	}
	if r.Cell.Err, err = d.string(); err != nil {
		return r, err
	}
	if r.Cell.Text, err = d.longString(); err != nil {
		return r, err
	}
	if r.Cell.Total, err = d.uvarint(); err != nil {
		return r, err
	}
	if r.Cell.Metrics, err = d.bytes(); err != nil {
		return r, err
	}
	if r.Cell.Trace, err = d.bytes(); err != nil {
		return r, err
	}
	if r.Cell.Aux, err = d.bytes(); err != nil {
		return r, err
	}
	sum, err := d.uvarint()
	if err != nil {
		return r, err
	}
	if err := d.done(); err != nil {
		return r, err
	}
	if sum != r.Cell.digest(r.ID) {
		return r, fmt.Errorf("%w: cell %d", ErrBadDigest, r.ID)
	}
	return r, nil
}

// Heartbeat is the worker's liveness beacon while a cell executes.
type Heartbeat struct {
	// Worker is the sender's fleet slot id.
	Worker int
	// Cell is the in-flight cell id.
	Cell uint64
	// Beat is the per-cell beat sequence number, monotonic from 1.
	Beat uint64
}

// EncodeHeartbeat serializes a heartbeat payload.
func EncodeHeartbeat(h Heartbeat) []byte {
	b := make([]byte, 0, 16)
	b = binary.AppendUvarint(b, uint64(h.Worker))
	b = binary.AppendUvarint(b, h.Cell)
	b = binary.AppendUvarint(b, h.Beat)
	return b
}

// DecodeHeartbeat parses a heartbeat payload.
func DecodeHeartbeat(data []byte) (Heartbeat, error) {
	d := &payloadDecoder{buf: data}
	w, err := d.smallInt("worker")
	if err != nil {
		return Heartbeat{}, err
	}
	cell, err := d.uvarint()
	if err != nil {
		return Heartbeat{}, err
	}
	beat, err := d.uvarint()
	if err != nil {
		return Heartbeat{}, err
	}
	if err := d.done(); err != nil {
		return Heartbeat{}, err
	}
	return Heartbeat{Worker: w, Cell: cell, Beat: beat}, nil
}

// payloadDecoder walks a payload with bounds checking; every failure is
// a typed sentinel, never a panic, whatever the bytes.
type payloadDecoder struct {
	buf []byte
	off int
}

func (d *payloadDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow at offset %d", ErrBadRecord, d.off)
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) stringCapped(cap uint64) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > cap || n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("%w: string length %d at offset %d", ErrBadRecord, n, d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *payloadDecoder) string() (string, error) { return d.stringCapped(maxStringLen) }

// longString admits rendered-output fields up to the frame cap (a full
// chaos shard's rendering exceeds the small-string cap).
func (d *payloadDecoder) longString() (string, error) { return d.stringCapped(maxFramePayload) }

// bytes decodes a length-prefixed byte field, bounded by the remaining
// input so a forged length cannot drive a huge allocation. Empty
// decodes as nil, keeping round-trips exact.
func (d *payloadDecoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) {
		return nil, fmt.Errorf("%w: byte field length %d exceeds remaining input", ErrBadRecord, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out, nil
}

// smallInt decodes a field that must be small (worker slots).
func (d *payloadDecoder) smallInt(name string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<16 {
		return 0, fmt.Errorf("%w: %s %d out of range", ErrBadRecord, name, v)
	}
	return int(v), nil
}

// done rejects trailing bytes, so a frame is exactly its fields.
func (d *payloadDecoder) done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrBadRecord, len(d.buf)-d.off)
	}
	return nil
}

func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}
