package core

import (
	"errors"
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
	"vdom/internal/tlb"
)

// Errors returned by the VDom core.
var (
	// ErrNoVDR means the calling thread never called VdrAlloc.
	ErrNoVDR = errors.New("core: thread has no VDR")
	// ErrDenied reports an access the calling thread's VDR does not
	// permit; the kernel turns it into SIGSEGV.
	ErrDenied = errors.New("core: vdom permission denied")
	// ErrReassign reports an attempt to assign a second vdom to memory
	// already protected by another vdom (forbidden for address-space
	// integrity, §7.2).
	ErrReassign = errors.New("core: area already assigned to another vdom")
	// ErrFreedVdom reports use of a vdom id that was freed or never
	// allocated.
	ErrFreedVdom = errors.New("core: vdom not allocated")
	// ErrNoResources reports that a required resource (a free pdom, an
	// evictable vdom, a VDS) could not be obtained; callers with a
	// degradation path retry or fall back before surfacing it.
	ErrNoResources = errors.New("core: no resources")
	// ErrExhausted reports that a resource space is exhausted and every
	// degradation path failed — the terminal form of ErrNoResources.
	ErrExhausted = errors.New("core: resources exhausted")
	// ErrDegraded reports that an operation failed even after its degraded
	// fallback (e.g. a retried allocation failing twice).
	ErrDegraded = errors.New("core: degraded operation failed")
)

// Chaos lets a fault-injection layer (internal/chaos) perturb the
// manager's resource allocation and observe its degradation paths. Hooks
// are consulted only when a layer is attached, keeping the paths
// zero-cost when chaos is off.
type Chaos interface {
	// InjectVDSAllocFailure reports whether the next VDS allocation should
	// fail transiently.
	InjectVDSAllocFailure() bool
	// InjectPdomExhaustion reports whether the next activation should
	// behave as if its current VDS had no free pdom, forcing the slow
	// paths (migrate / switch / evict).
	InjectPdomExhaustion() bool
	// NoteDegradedFallback records that a degradation path ran; what names
	// the path (e.g. "activate:evict-fallback").
	NoteDegradedFallback(what string)
}

// Policy selects the optional behaviours of the VDom implementation; the
// defaults match the paper's system, and the switches exist for the
// ablation benchmarks called out in DESIGN.md.
type Policy struct {
	// SecureGate uses the Intel secure call gate (pdom1-sealed VDRs,
	// stack switch) for API calls; false selects the fast API (Table 3
	// X86f). Ignored on ARM, where the DACR syscall path is always
	// taken.
	SecureGate bool
	// NoPMDOpt disables the §5.5 PMD-disable fast path for evictions.
	NoPMDOpt bool
	// StrictLRU disables the HLRU last-pdom heuristic (ablation).
	StrictLRU bool
	// RangeFlushThresholdPages is the eviction size above which VDom
	// invalidates the whole ASID instead of issuing range flushes.
	RangeFlushThresholdPages uint64
	// DefaultNas is the address-space budget given to threads whose
	// VdrAlloc passes nas <= 0.
	DefaultNas int
}

// DefaultPolicy returns the paper-faithful configuration.
func DefaultPolicy() Policy {
	return Policy{
		SecureGate:               true,
		RangeFlushThresholdPages: 64,
		DefaultNas:               4,
	}
}

// Stats counts domain-virtualization events for the experiment harness.
type Stats struct {
	WrVdrCalls    uint64
	MapsToFree    uint64 // flowchart ❸
	Migrations    uint64 // ❼/❽ thread migrations
	VDSAllocs     uint64
	VDSSwitches   uint64 // ❺ pgd switches
	Evictions     uint64 // ❺ vdom evictions
	EvictedPages  uint64
	PMDFastEvicts uint64 // evictions that used the PMD-disable path
	RangeFlushes  uint64
	ASIDFlushes   uint64
	Shootdowns    uint64
	DomainFaults  uint64
	RegisterSyncs uint64
	HLRUHits      uint64 // remaps that reused the last pdom cheaply
}

// Emit publishes the stats as named metrics counters under the core/
// prefix (see OBSERVABILITY.md for the catalogue).
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("core/wrvdr-calls", s.WrVdrCalls)
	emit("core/maps-to-free", s.MapsToFree)
	emit("core/migrations", s.Migrations)
	emit("core/vds-allocs", s.VDSAllocs)
	emit("core/vds-switches", s.VDSSwitches)
	emit("core/evictions", s.Evictions)
	emit("core/evicted-pages", s.EvictedPages)
	emit("core/pmd-fast-evicts", s.PMDFastEvicts)
	emit("core/range-flushes", s.RangeFlushes)
	emit("core/asid-flushes", s.ASIDFlushes)
	emit("core/shootdowns", s.Shootdowns)
	emit("core/domain-faults", s.DomainFaults)
	emit("core/register-syncs", s.RegisterSyncs)
	emit("core/hlru-hits", s.HLRUHits)
}

// Add returns the field-wise sum of two stats snapshots, for aggregating
// counters across independent machines (e.g. chaos soak shards).
func (s Stats) Add(o Stats) Stats {
	s.WrVdrCalls += o.WrVdrCalls
	s.MapsToFree += o.MapsToFree
	s.Migrations += o.Migrations
	s.VDSAllocs += o.VDSAllocs
	s.VDSSwitches += o.VDSSwitches
	s.Evictions += o.Evictions
	s.EvictedPages += o.EvictedPages
	s.PMDFastEvicts += o.PMDFastEvicts
	s.RangeFlushes += o.RangeFlushes
	s.ASIDFlushes += o.ASIDFlushes
	s.Shootdowns += o.Shootdowns
	s.DomainFaults += o.DomainFaults
	s.RegisterSyncs += o.RegisterSyncs
	s.HLRUHits += o.HLRUHits
	return s
}

// permSet is a dense VdomID-indexed permission table. Vdom ids are
// allocated sequentially per process, so a slice replaces the former
// map: reads beyond the backing array mean VPermNone (exactly as a map
// miss did), and the VDS-switch hot path iterates a flat byte array
// instead of a map. An explicit VPermNone entry and an absent one are
// indistinguishable everywhere (every consumer filters on VPermNone),
// which is what makes the representations equivalent.
type permSet []VPerm

// get returns the permission on d (VPermNone when never set).
func (s permSet) get(d VdomID) VPerm {
	if int(d) < len(s) {
		return s[d]
	}
	return VPermNone
}

// set stores the permission on d, growing the table as needed.
func (s *permSet) set(d VdomID, p VPerm) {
	for int(d) >= len(*s) {
		*s = append(*s, VPermNone)
	}
	(*s)[d] = p
}

// clear resets the permission on d to VPermNone.
func (s permSet) clear(d VdomID) {
	if int(d) < len(s) {
		s[d] = VPermNone
	}
}

// VDR is a thread's virtual domain register: its permissions on every vdom
// plus its address-space attachments (§5.2).
type VDR struct {
	task    *kernel.Task
	perms   permSet
	nas     int
	vdses   []*VDS // attached address spaces, in attach order
	current *VDS
}

// Current returns the VDS the thread is resident in.
func (r *VDR) Current() *VDS { return r.current }

// Attached returns the VDSes the thread can efficiently switch between.
func (r *VDR) Attached() []*VDS { return r.vdses }

// Perm returns the thread's permission on d.
func (r *VDR) Perm(d VdomID) VPerm { return r.perms.get(d) }

// Manager is the per-process VDom instance: the VDM of §5.3 plus the
// domain virtualization algorithm of §5.4. It implements both
// kernel.FaultHandler (domain faults) and mm.DomainResolver (per-VDS page
// domain tags for demand paging).
type Manager struct {
	proc   *kernel.Process
	params *cycles.Params
	policy Policy

	vdt      *VDT
	nextVdom VdomID
	live     map[VdomID]bool
	freq     map[VdomID]bool

	vdses     []*VDS
	nextVDSID int
	byTable   map[*pagetable.Table]*VDS
	vdrs      map[*kernel.Task]*VDR

	// One-entry byTable memo for the PdomFor fault path; dropped on any
	// byTable mutation (attach, destroy, checkpoint restore).
	memoTable *pagetable.Table
	memoVDS   *VDS

	// Stats is exported for the experiment harness; reading it while
	// tasks run is fine in the single-threaded simulation.
	Stats Stats

	tracer Tracer
	chaos  Chaos
	apiTap tap.Tap

	metrics *metrics.Registry
	// charged accumulates, within one public API call, the cycles inner
	// helpers already attributed to specific (layer, op) accounts; endOp
	// attributes only the uncovered remainder, so the registry's total
	// always equals the sum of the costs returned to callers.
	charged uint64
}

// SetChaos attaches a fault-injection layer. Pass nil to detach.
func (m *Manager) SetChaos(c Chaos) { m.chaos = c }

// SetMetrics attaches a metrics registry; the manager then attributes
// every cycle its API returns by (layer, operation) and feeds the
// domain-activation histograms. Pass nil (the default) to detach.
func (m *Manager) SetMetrics(r *metrics.Registry) { m.metrics = r }

// Metrics returns the attached registry, or nil.
func (m *Manager) Metrics() *metrics.Registry { return m.metrics }

// attr charges c cycles to the (layer, op) account and records them as
// covered for the public call in flight.
func (m *Manager) attr(layer, op string, c cycles.Cost) {
	if m.metrics == nil {
		return
	}
	m.metrics.Attribute(layer, op, uint64(c))
	m.charged += uint64(c)
}

// endOp closes a public API call by attributing the portion of its
// returned cost that no inner helper claimed to ("core", op). Deferred
// with a named cost return, it makes attribution self-correcting: the
// per-layer breakdown sums to the exact cost the caller was charged.
func (m *Manager) endOp(op string, cost *cycles.Cost) {
	if m.metrics == nil {
		return
	}
	if total := uint64(*cost); total >= m.charged {
		m.metrics.Attribute("core", op, total-m.charged)
	}
	m.charged = 0
}

// noteDegraded records a degradation-path activation with the chaos layer.
func (m *Manager) noteDegraded(what string) {
	if m.chaos != nil {
		m.chaos.NoteDegradedFallback(what)
	}
}

var (
	_ kernel.FaultHandler = (*Manager)(nil)
	_ mm.DomainResolver   = (*Manager)(nil)
	_ kernel.ASIDLister   = (*Manager)(nil)
)

// Attach initializes VDom for the process (vdom_init): it installs the
// fault handler and domain resolver and returns the manager.
func Attach(proc *kernel.Process, policy Policy) *Manager {
	if policy.DefaultNas <= 0 {
		policy.DefaultNas = DefaultPolicy().DefaultNas
	}
	if policy.RangeFlushThresholdPages == 0 {
		policy.RangeFlushThresholdPages = DefaultPolicy().RangeFlushThresholdPages
	}
	m := &Manager{
		proc:     proc,
		params:   proc.Kernel().Params(),
		policy:   policy,
		vdt:      NewVDT(),
		nextVdom: 1,
		live:     make(map[VdomID]bool),
		freq:     make(map[VdomID]bool),
		byTable:  make(map[*pagetable.Table]*VDS),
		vdrs:     make(map[*kernel.Task]*VDR),
	}
	proc.SetFaultHandler(m)
	proc.AS().SetResolver(m)
	return m
}

// Process returns the process this manager protects.
func (m *Manager) Process() *kernel.Process { return m.proc }

// Policy returns the active policy.
func (m *Manager) Policy() Policy { return m.policy }

// VDSes returns the live virtual domain spaces.
func (m *Manager) VDSes() []*VDS { return m.vdses }

// VDT exposes the virtual domain table (for tests and diagnostics).
func (m *Manager) VDT() *VDT { return m.vdt }

// VDROf returns the thread's VDR, or nil.
func (m *Manager) VDROf(t *kernel.Task) *VDR { return m.vdrs[t] }

// --- mm.DomainResolver ---

// PdomFor resolves a VMA tag to the hardware domain it carries in table t:
// the mapped pdom if t is a VDS that maps the vdom, access-never
// otherwise. The process shadow table always sees protected memory as
// access-never, so threads without a VDR can never touch it.
func (m *Manager) PdomFor(t *pagetable.Table, tag mm.Tag) (pagetable.Pdom, bool) {
	if tag == 0 {
		return DefaultPdom, true
	}
	vds := m.memoVDS
	if t != m.memoTable {
		vds = m.byTable[t]
		m.memoTable, m.memoVDS = t, vds
	}
	if vds != nil {
		if p, ok := vds.PdomOf(VdomID(tag)); ok {
			return p, true
		}
	}
	return 0, false
}

// AccessNever returns the reserved access-never pdom.
func (m *Manager) AccessNever() pagetable.Pdom { return AccessNeverPdom }

// --- VDom API (§5.2) ---

// apiCost is the user-space entry/exit cost of one VDom API call: the
// plain call on the fast X86 profile, the pdom1 call gate on the secure
// profile, and a kernel round trip on ARM (DACR is privileged).
func (m *Manager) apiCost() cycles.Cost {
	c := m.params.CallReturn
	if !m.params.UserWritablePermReg {
		return c + m.params.SyscallReturn
	}
	if m.policy.SecureGate {
		c += m.params.GateEntry + m.params.GateExit
	}
	return c
}

// AllocVdom allocates a fresh vdom (vdom_alloc). freq marks the domain as
// frequently-accessed, biasing the algorithm toward eviction-in-place over
// VDS switches when it must be activated (§5.4).
func (m *Manager) AllocVdom(freqAccessed bool) (d VdomID, cost cycles.Cost) {
	defer func() { m.tapAPI(APICall{Op: APIAllocVdom, Vdom: d, Freq: freqAccessed, Cost: cost}) }()
	defer m.endOp("vdom-alloc", &cost)
	d = m.nextVdom
	m.nextVdom++
	m.live[d] = true
	if freqAccessed {
		m.freq[d] = true
	}
	cost = m.apiCost() + m.params.SyscallReturn
	return d, cost
}

// FreeVdom releases a vdom (vdom_free): it unbinds the vdom from every VDS
// (freeing the pdoms), clears its VDT chain, and forgets per-thread
// permissions lazily.
func (m *Manager) FreeVdom(d VdomID) (cost cycles.Cost, err error) {
	defer func() { m.tapAPI(APICall{Op: APIFreeVdom, Vdom: d, Cost: cost, Err: err}) }()
	defer m.endOp("vdom-free", &cost)
	if !m.live[d] {
		return m.apiCost(), ErrFreedVdom
	}
	cost = m.apiCost() + m.params.SyscallReturn
	for _, vds := range m.vdses {
		if !vds.Mapped(d) {
			continue
		}
		// Disable the vdom's present pages before releasing the pdom:
		// the hardware domain will be reused by a different trust
		// domain, and pages still tagged with it would silently fall
		// under the new owner's permissions.
		var pteWrites, pmdWrites uint64
		for _, area := range m.vdt.Areas(d) {
			cost += m.params.VDTWalkPerArea
			vds.table.ResetCounts()
			vds.table.EvictRange(area.Start, area.Length, AccessNeverPdom)
			pteWrites += vds.table.PTEWrites
			pmdWrites += vds.table.PMDWrites
		}
		cost += cycles.Cost(pteWrites)*m.params.PTEWrite +
			cycles.Cost(pmdWrites)*m.params.PMDWrite
		m.attr("pagetable", "pte-write", cycles.Cost(pteWrites)*m.params.PTEWrite)
		m.attr("pagetable", "pmd-write", cycles.Cost(pmdWrites)*m.params.PMDWrite)
		cost += m.flushVdomLocal(vds, d)
		vds.uninstall(d, false)
		delete(vds.evicted, d)
		delete(vds.lastMapping, d)
		cost += m.params.DomainMapUpdate
		m.resyncVDSThreads(vds)
	}
	delete(m.live, d)
	delete(m.freq, d)
	m.vdt.Clear(d)
	// Drop the freed vdom from every VDR eagerly: vdom ids are never
	// reused so stale bits cannot alias, but clearing them here keeps the
	// VDR state auditable (no permission may reference a dead vdom).
	for _, vdr := range m.vdrs {
		vdr.perms.clear(d)
	}
	m.trace(Event{Kind: EventFree, Vdom: d, Cost: cost})
	return cost, nil
}

// Mprotect assigns the pages containing [addr, addr+length) to vdom d
// (vdom_mprotect). Reassigning memory that already belongs to a different
// vdom is rejected to preserve address-space integrity.
func (m *Manager) Mprotect(task *kernel.Task, addr pagetable.VAddr, length uint64, d VdomID) (cost cycles.Cost, err error) {
	defer func() {
		m.tapAPI(APICall{Op: APIMprotect, TID: tapTID(task), Vdom: d, Addr: addr, Len: length, Cost: cost, Err: err})
	}()
	defer m.endOp("mprotect", &cost)
	cost = m.apiCost() + m.params.SyscallReturn
	if !m.live[d] {
		return cost, ErrFreedVdom
	}
	start := addr.PageAlign()
	end := (addr + pagetable.VAddr(length) + pagetable.PageSize - 1).PageAlign()
	var conflict error
	m.proc.AS().VMAs(func(v *mm.VMA) bool {
		if v.Start >= end || v.End() <= start || v.Tag == 0 || VdomID(v.Tag) == d {
			return true
		}
		// Areas owned by a LIVE vdom (or permanently sealed memory)
		// can never be re-assigned — the address-space integrity rule
		// of §7.2. Once the owning vdom is freed, the binding is
		// released and the memory can serve a new trust domain.
		if v.Tag == SealTag || m.live[VdomID(v.Tag)] {
			conflict = fmt.Errorf("%w: vdom %d owns %v", ErrReassign, v.Tag, v)
			return false
		}
		return true
	})
	if conflict != nil {
		return cost, conflict
	}
	rep, err := m.proc.AS().SetTag(addr, length, mm.Tag(d))
	if err != nil {
		return cost, err
	}
	cost += cycles.Cost(rep.PTEWrites)*m.params.PTEWrite +
		cycles.Cost(rep.PMDWrites)*m.params.PMDWrite
	m.attr("pagetable", "pte-write", cycles.Cost(rep.PTEWrites)*m.params.PTEWrite)
	m.attr("pagetable", "pmd-write", cycles.Cost(rep.PMDWrites)*m.params.PMDWrite)
	if rep.PagesTouched > 0 {
		// Already-present pages changed their domain tag: translations
		// cached under the old tag must not survive, or the old owner
		// keeps access until an incidental flush.
		cost += m.flushRetagged(task, start, uint64(end-start))
	}
	m.vdt.AddArea(d, start, uint64(end-start))
	return cost, nil
}

// flushRetagged invalidates the translations of pages whose domain tag
// just changed, under every ASID of the process (shadow ASIDs and VDS
// ASIDs) on every core that may cache them.
func (m *Manager) flushRetagged(task *kernel.Task, start pagetable.VAddr, length uint64) cycles.Cost {
	machine := m.proc.Kernel().Machine()
	pages := length / pagetable.PageSize
	seen := make(map[tlb.ASID]bool)
	var asids []tlb.ASID
	add := func(a tlb.ASID) {
		if !seen[a] {
			seen[a] = true
			asids = append(asids, a)
		}
	}
	set := hw.CPUSet(0).Add(task.CoreID())
	for _, t := range m.proc.Tasks() {
		add(t.BaseASID())
		add(t.ASID())
		set = set.Add(t.CoreID())
	}
	for _, vds := range m.vdses {
		add(vds.asid)
		set = set.Union(vds.cachedCores)
	}
	local := m.params.TLBFlushLocalPage * cycles.Cost(minU64(pages, 8))
	rep := machine.ShootdownReliable(task.CoreID(), set, func(tb tlb.Cache) {
		for _, a := range asids {
			tb.FlushRange(a, start.VPN(), pages)
		}
	}, local)
	if rep.RemoteCores > 0 {
		m.Stats.Shootdowns++
	}
	m.attr("tlb", "flush", local)
	m.attr("hw", "ipi", rep.InitiatorCycles-local)
	return rep.InitiatorCycles
}

// VdrAlloc gives the thread a permission register and limits the number of
// address spaces it can efficiently switch between (vdr_alloc). The thread
// joins the process's first VDS (created on demand).
func (m *Manager) VdrAlloc(task *kernel.Task, nas int) (cost cycles.Cost, err error) {
	// The defer captures the caller's nas before the default is applied
	// below, so the trace records the argument as passed.
	defer func(argNas int) {
		m.tapAPI(APICall{Op: APIVdrAlloc, TID: tapTID(task), Nas: argNas, Cost: cost, Err: err})
	}(nas)
	defer m.endOp("vdr-alloc", &cost)
	if m.vdrs[task] != nil {
		return m.apiCost(), fmt.Errorf("core: thread %d already has a VDR", task.TID())
	}
	if nas <= 0 {
		nas = m.policy.DefaultNas
	}
	cost = m.apiCost() + m.params.SyscallReturn
	var home *VDS
	if len(m.vdses) == 0 {
		home, err = m.allocVDS()
		if err != nil {
			// Degraded path: a transient allocation failure is retried
			// once before the call fails.
			m.noteDegraded("vdr_alloc:vds-retry")
			home, err = m.allocVDS()
			if err != nil {
				return cost, fmt.Errorf("core: vdr_alloc failed after retry: %w: %w", ErrDegraded, err)
			}
		}
		cost += m.params.VDSAllocate
		m.attr("core", "vds-alloc", m.params.VDSAllocate)
	} else {
		home = m.vdses[0]
	}
	vdr := &VDR{
		task:    task,
		perms:   nil,
		nas:     nas,
		vdses:   []*VDS{home},
		current: home,
	}
	m.vdrs[task] = vdr
	home.threads[task] = true
	home.noteCore(task.CoreID())
	task.SetAddressSpace(home.table, home.asid, true)
	m.syncRegister(vdr)
	cost += m.params.PgdSwitch
	m.attr("hw", "pgd-switch", m.params.PgdSwitch)
	return cost, nil
}

// PlaceInNewVDS moves the thread into a freshly allocated, initially
// empty VDS. Multi-address-space applications (and the Table 5 memory
// synchronization experiment) use it to pin threads to distinct address
// spaces explicitly instead of waiting for the algorithm to spread them.
func (m *Manager) PlaceInNewVDS(task *kernel.Task) (cost cycles.Cost, err error) {
	defer func() { m.tapAPI(APICall{Op: APINewVDS, TID: tapTID(task), Cost: cost, Err: err}) }()
	defer m.endOp("place-in-new-vds", &cost)
	vdr := m.vdrs[task]
	if vdr == nil {
		return 0, ErrNoVDR
	}
	nv, err := m.allocVDS()
	if err != nil {
		return 0, fmt.Errorf("core: place_in_new_vds: %w", err)
	}
	m.Stats.VDSAllocs++
	vdr.vdses = append(vdr.vdses, nv)
	cost = m.params.VDSAllocate
	m.attr("core", "vds-alloc", m.params.VDSAllocate)
	c, err := m.switchVDS(task, vdr, nv, 0)
	cost += c
	if err != nil {
		return cost, err
	}
	if len(vdr.vdses) > vdr.nas {
		vdr.detach(vdr.vdses[0])
	}
	return cost, nil
}

// VdrFree releases the thread's VDR (vdr_free).
func (m *Manager) VdrFree(task *kernel.Task) (cost cycles.Cost, err error) {
	defer func() { m.tapAPI(APICall{Op: APIVdrFree, TID: tapTID(task), Cost: cost, Err: err}) }()
	defer m.endOp("vdr-free", &cost)
	vdr := m.vdrs[task]
	if vdr == nil {
		return m.apiCost(), ErrNoVDR
	}
	vdr.current.addThreadRef(vdr.perms, -1)
	delete(vdr.current.threads, task)
	delete(m.vdrs, task)
	// Restore the task's own base ASID: keeping the VDS ASID would pair
	// it with the shadow table and alias the VDS's cached translations.
	task.SetAddressSpace(m.proc.AS().Shadow(), task.BaseASID(), false)
	task.SetSavedPerm(hw.DenyAll())
	m.ReapVDSes()
	return m.apiCost() + m.params.SyscallReturn, nil
}

// RdVdr reads the calling thread's permission on d (rdvdr).
func (m *Manager) RdVdr(task *kernel.Task, d VdomID) (perm VPerm, cost cycles.Cost, err error) {
	defer func() { m.tapAPI(APICall{Op: APIRdVdr, TID: tapTID(task), Vdom: d, Perm: perm, Cost: cost, Err: err}) }()
	defer m.endOp("rdvdr", &cost)
	vdr := m.vdrs[task]
	if vdr == nil {
		return VPermNone, m.apiCost(), ErrNoVDR
	}
	return vdr.perms.get(d), m.apiCost() + m.params.PermRegRead, nil
}

// WrVdr writes the calling thread's permission on d (wrvdr). Granting an
// accessible permission activates the vdom: if it is not mapped in the
// thread's current VDS, the domain virtualization algorithm runs — mapping
// a free pdom, migrating the thread, switching VDSes, or evicting an old
// vdom, whichever is cheapest under §5.4's rules. The returned cost covers
// the whole operation.
func (m *Manager) WrVdr(task *kernel.Task, d VdomID, perm VPerm) (cost cycles.Cost, err error) {
	defer func() { m.tapAPI(APICall{Op: APIWrVdr, TID: tapTID(task), Vdom: d, Perm: perm, Cost: cost, Err: err}) }()
	defer m.endOp("wrvdr", &cost)
	vdr := m.vdrs[task]
	if vdr == nil {
		return m.apiCost(), ErrNoVDR
	}
	if !m.live[d] {
		return m.apiCost(), ErrFreedVdom
	}
	m.Stats.WrVdrCalls++
	cost = m.apiCost() + m.params.VDRUpdate

	old := vdr.perms.get(d)
	vdr.perms.set(d, perm)
	// Maintain the #thread counters of the current VDS on
	// accessible/inaccessible transitions.
	switch {
	case !old.Accessible() && perm.Accessible():
		vdr.current.adjustRef(d, +1)
	case old.Accessible() && !perm.Accessible():
		vdr.current.adjustRef(d, -1)
	}

	if perm.Accessible() && !vdr.current.Mapped(d) {
		c, err := m.activate(task, vdr, d)
		cost += c
		if err != nil {
			return cost, err
		}
	} else {
		vdr.current.touch(d)
		// Fold the new permission into the live register image (the
		// merged wrpkru of the call gate).
		m.syncRegister(vdr)
		cost += m.params.PermRegWrite
		m.attr("hw", "perm-reg-write", m.params.PermRegWrite)
	}
	return cost, nil
}

// --- kernel.FaultHandler ---

// HandleDomainFault services protection-key/domain faults: it checks the
// thread's VDR for the vdom protecting the faulting page and, if the
// permission allows the access, runs the domain virtualization algorithm
// to make the vdom reachable, then lets the kernel retry.
func (m *Manager) HandleDomainFault(task *kernel.Task, addr pagetable.VAddr, write bool, kind hw.FaultKind) (cost cycles.Cost, handled bool, err error) {
	defer m.endOp("fault", &cost)
	m.Stats.DomainFaults++
	vma := m.proc.AS().FindVMA(addr)
	if vma == nil || vma.Tag == 0 {
		return 0, false, nil // not VDom-protected: default SIGSEGV
	}
	d := VdomID(vma.Tag)
	if !m.live[d] {
		// The owning vdom was freed: stale VDR bits must not
		// resurrect it through the fault path.
		return 0, false, fmt.Errorf("%w: vdom %d was freed: %v",
			kernel.ErrSigsegv, d, ErrFreedVdom)
	}
	vdr := m.vdrs[task]
	if vdr == nil {
		return 0, false, fmt.Errorf("%w: thread %d has no VDR for vdom %d",
			kernel.ErrSigsegv, task.TID(), d)
	}
	perm := vdr.perms.get(d)
	if !perm.Allows(write) {
		op := "read"
		if write {
			op = "write"
		}
		return 0, false, fmt.Errorf("%w: %v of vdom %d denied (VDR=%v): %v",
			kernel.ErrSigsegv, op, d, perm, ErrDenied)
	}
	if !vdr.current.Mapped(d) {
		c, aerr := m.activate(task, vdr, d)
		cost += c
		if aerr != nil {
			return cost, false, aerr
		}
	} else {
		// Mapped but the access faulted: a stale translation (old tag)
		// survived in the TLB, or the register image was stale.
		m.syncRegister(vdr)
		cost += m.params.PermRegWrite
		m.attr("hw", "perm-reg-write", m.params.PermRegWrite)
	}
	task.Core().TLB().FlushPage(vdr.current.asid, addr.VPN())
	cost += m.params.TLBFlushLocalPage
	m.attr("tlb", "flush", m.params.TLBFlushLocalPage)
	return cost, true, nil
}

// --- The domain virtualization algorithm (§5.4, Figure 3) ---

// activate makes vdom d reachable for the task, following the flowchart:
//
//	❶ d unmapped in current VDS (guaranteed by callers)
//	❷ free pdom in current VDS → ❸ map it
//	❹ VDS has other threads → ❻/❼ migrate to an accommodating VDS or
//	  ❽ a freshly allocated one
//	❺ single-thread VDS → evict in place, switch to another attached
//	  VDS, attach a new one, or evict — balancing as §5.4 prescribes
func (m *Manager) activate(task *kernel.Task, vdr *VDR, d VdomID) (cycles.Cost, error) {
	vds := vdr.current

	// A pgd switch to an attached VDS that already maps d costs a few
	// hundred cycles; remapping d here would retag every present page.
	// Prefer the switch (the balance §5.4 prescribes).
	for _, o := range vdr.vdses {
		if o != vds && o.Mapped(d) {
			return m.switchVDS(task, vdr, o, d)
		}
	}

	// ❷→❸: free pdom available. An injected pdom exhaustion skips the
	// fast path, steering the activation through the slow paths (migrate,
	// switch, evict) as if the VDS were full.
	if m.chaos == nil || !m.chaos.InjectPdomExhaustion() {
		hint, hasHint := vds.lastMapping[d]
		if m.policy.StrictLRU {
			hasHint = false
		}
		if p, ok := vds.freePdom(hint, hasHint); ok {
			cost := m.mapVdom(vds, d, p)
			m.Stats.MapsToFree++
			m.resyncVDSThreads(vds)
			return cost, nil
		}
	}

	// ❹: shared VDS → migrate the thread away (❻❼❽).
	if vds.NumThreads() > 1 {
		return m.migrateThread(task, vdr, d)
	}

	// ❺: single-thread VDS: balance eviction against VDS switching.
	// Evict in place when d is frequently accessed or other mapped vdoms
	// are still accessible through the register (switching would lose
	// them).
	if m.freq[d] || m.anyAccessibleMapped(vdr, vds, d) {
		return m.evictAndMap(task, vdr, vds, d)
	}
	// Otherwise prefer a pgd switch: first to an attached VDS that
	// already maps d, then to one with a free pdom.
	for _, o := range vdr.vdses {
		if o != vds && o.Mapped(d) {
			return m.switchVDS(task, vdr, o, d)
		}
	}
	for _, o := range vdr.vdses {
		if o != vds && o.FreePdoms() > 0 {
			cost, err := m.switchVDS(task, vdr, o, d)
			if err != nil {
				return cost, err
			}
			cost += m.mapVdom(o, d, mustFree(o))
			m.resyncVDSThreads(o)
			return cost, nil
		}
	}
	// Attach a new VDS if the thread's nas budget allows. A failed
	// allocation degrades to eviction in the current VDS instead of
	// surfacing the transient failure.
	if len(vdr.vdses) < vdr.nas {
		nv, err := m.allocVDS()
		if err != nil {
			m.noteDegraded("activate:evict-fallback")
			return m.evictAndMap(task, vdr, vds, d)
		}
		m.Stats.VDSAllocs++
		vdr.vdses = append(vdr.vdses, nv)
		cost := m.params.VDSAllocate
		m.attr("core", "vds-alloc", m.params.VDSAllocate)
		c, err := m.switchVDS(task, vdr, nv, d)
		cost += c
		if err != nil {
			return cost, err
		}
		cost += m.mapVdom(nv, d, mustFree(nv))
		m.resyncVDSThreads(nv)
		return cost, nil
	}
	// Budget exhausted: evict in the current VDS.
	return m.evictAndMap(task, vdr, vds, d)
}

func mustFree(v *VDS) pagetable.Pdom {
	p, ok := v.freePdom(0, false)
	if !ok {
		panic("core: expected a free pdom")
	}
	return p
}

// anyAccessibleMapped reports whether any mapped vdom other than d is
// accessible per the thread's VDR.
func (m *Manager) anyAccessibleMapped(vdr *VDR, vds *VDS, d VdomID) bool {
	for p := firstUsablePdom; p < vds.numPdoms; p++ {
		e := vds.domainMap[p]
		if e.used && e.vdom != d && vdr.perms.get(e.vdom).Accessible() {
			return true
		}
	}
	return false
}

// allocVDS creates and registers a new VDS. It fails transiently when the
// chaos layer injects an allocation failure, and terminally when the ASID
// space is exhausted even after a generation rollover.
func (m *Manager) allocVDS() (*VDS, error) {
	if m.chaos != nil && m.chaos.InjectVDSAllocFailure() {
		return nil, fmt.Errorf("core: transient VDS allocation failure: %w", ErrNoResources)
	}
	asid, ok := m.proc.Kernel().TryAllocASID()
	if !ok {
		return nil, fmt.Errorf("core: VDS allocation: ASID space full: %w", ErrExhausted)
	}
	vds := newVDS(m.nextVDSID, asid, m.params.NumPdoms)
	m.nextVDSID++
	m.vdses = append(m.vdses, vds)
	m.byTable[vds.table] = vds
	m.memoTable, m.memoVDS = nil, nil
	m.proc.AS().RegisterTable(vds.table)
	m.trace(Event{Kind: EventVDSAlloc, VDS: vds.id})
	return vds, nil
}

// LiveASIDs implements kernel.ASIDLister: the ASIDs of every live VDS, so
// kernel revocation paths flush dormant address spaces too.
func (m *Manager) LiveASIDs() []tlb.ASID {
	out := make([]tlb.ASID, len(m.vdses))
	for i, v := range m.vdses {
		out[i] = v.asid
	}
	return out
}

// mapVdom binds d to pdom p in the VDS and retags d's present pages in the
// VDS's page table. If the vdom previously left this VDS through the
// PMD-disable path and returns to the same pdom, the remap only re-enables
// the PMD entries (the HLRU fast remap, §5.5). Stale translations of the
// retagged pages are flushed locally.
func (m *Manager) mapVdom(vds *VDS, d VdomID, p pagetable.Pdom) cycles.Cost {
	prev, wasEvicted := vds.evicted[d]
	vds.install(d, p)
	// Rebuild the #thread counter from the resident threads' VDRs:
	// permissions granted while the vdom was unmapped become countable
	// only now.
	for t := range vds.threads {
		if vdr := m.vdrs[t]; vdr != nil && vdr.perms.get(d).Accessible() {
			vds.adjustRef(d, +1)
		}
	}
	cost := m.params.DomainMapUpdate
	walk := cycles.Cost(0)

	var pteWrites, pmdWrites uint64
	pagesTouched := uint64(0)
	fastRemap := wasEvicted && prev.viaPMD && prev.pdom == p && !m.policy.NoPMDOpt
	if fastRemap {
		m.Stats.HLRUHits++
	}
	for _, area := range m.vdt.Areas(d) {
		walk += m.params.VDTWalkPerArea
		vds.table.ResetCounts()
		if fastRemap {
			// Full chunks come back via PMD enables; only the
			// partial head/tail pages (retagged to access-never at
			// eviction) need per-PTE restores.
			_, ptes := vds.table.RemapRange(area.Start, area.Length, p)
			pagesTouched += uint64(ptes)
		} else {
			pagesTouched += uint64(vds.table.RetagRange(area.Start, area.Length, p))
		}
		pteWrites += vds.table.PTEWrites
		pmdWrites += vds.table.PMDWrites
	}
	cost += walk
	cost += cycles.Cost(pteWrites)*m.params.PTEWrite + cycles.Cost(pmdWrites)*m.params.PMDWrite
	m.attr("core", "map", m.params.DomainMapUpdate+walk)
	m.attr("pagetable", "pte-write", cycles.Cost(pteWrites)*m.params.PTEWrite)
	m.attr("pagetable", "pmd-write", cycles.Cost(pmdWrites)*m.params.PMDWrite)

	// Pages that were present under the access-never tag may be cached;
	// flush them for this ASID on the local core.
	if pagesTouched > 0 || fastRemap {
		cost += m.flushVdomLocal(vds, d)
	}
	m.trace(Event{Kind: EventMap, Vdom: d, VDS: vds.id, Pdom: p, Cost: cost})
	return cost
}

// flushVdomLocal invalidates d's pages under the VDS's ASID, using range
// flushes below the threshold and an ASID flush above it (§5.5). The flush
// covers every core whose TLB may cache the ASID — the resident threads'
// cores plus the cachedCores history (the mm_cpumask analog), so entries
// left behind by departed threads cannot outlive a revocation. With a
// single resident thread and no history this is local-only (the paper's
// key win). Delivery goes through the reliable shootdown path, so injected
// IPI loss is retried and, failing that, repaired with a full flush.
func (m *Manager) flushVdomLocal(vds *VDS, d VdomID) cycles.Cost {
	pages := m.vdt.TotalPages(d)
	machine := m.proc.Kernel().Machine()
	set := vds.CPUSet().Union(vds.cachedCores)
	useRange := pages <= m.policy.RangeFlushThresholdPages
	flushOne := func(tb tlb.Cache) {
		if useRange {
			for _, area := range m.vdt.Areas(d) {
				tb.FlushRange(vds.asid, area.Start.VPN(), area.Pages())
			}
		} else {
			tb.FlushASID(vds.asid)
		}
	}
	var cost cycles.Cost
	if useRange {
		m.Stats.RangeFlushes++
		cost = m.params.TLBFlushLocalPage * cycles.Cost(minU64(pages, 8))
	} else {
		m.Stats.ASIDFlushes++
		cost = m.params.TLBFlushLocalASID
	}
	initiator := set.Lowest()
	if initiator < 0 {
		// No core can cache the ASID; charge the local flush as before.
		m.attr("tlb", "flush", cost)
		return cost
	}
	rep := machine.ShootdownReliable(initiator, set, flushOne, cost)
	if rep.RemoteCores > 0 {
		m.Stats.Shootdowns++
	}
	if !useRange {
		// A full-ASID flush on every caching core clears the history down
		// to the cores still running in the VDS.
		vds.cachedCores = vds.CPUSet()
	}
	m.attr("tlb", "flush", cost)
	m.attr("hw", "ipi", rep.InitiatorCycles-cost)
	return rep.InitiatorCycles
}

// evictAndMap chooses a victim vdom in the VDS (HLRU), evicts it, and maps
// d into the freed pdom.
func (m *Manager) evictAndMap(task *kernel.Task, vdr *VDR, vds *VDS, d VdomID) (cycles.Cost, error) {
	victim, ok := m.chooseVictim(vdr, vds, d)
	if !ok {
		// Under injected pdom pressure the eviction path can be entered
		// while free pdoms remain: map into one rather than failing.
		hint, hasHint := vds.lastMapping[d]
		if m.policy.StrictLRU {
			hasHint = false
		}
		if p, ok := vds.freePdom(hint, hasHint); ok {
			m.noteDegraded("evict:free-pdom-fallback")
			cost := m.mapVdom(vds, d, p)
			m.Stats.MapsToFree++
			m.resyncVDSThreads(vds)
			return cost, nil
		}
		return 0, fmt.Errorf("core: vdom %d: no evictable vdom in VDS %d (all %d pdoms accessible): %w",
			d, vds.id, vds.numPdoms-firstUsablePdom, ErrNoResources)
	}
	cost := m.params.EvictBase
	walk := cycles.Cost(0)
	m.Stats.Evictions++

	// Disable the victim's pages: PMD fast path for 2 MiB-spanning
	// chunks, per-PTE access-never retag otherwise.
	var pteWrites, pmdWrites uint64
	totalPMDs, totalPTEs := 0, 0
	for _, area := range m.vdt.Areas(victim) {
		walk += m.params.VDTWalkPerArea
		vds.table.ResetCounts()
		if m.policy.NoPMDOpt {
			totalPTEs += vds.table.RetagRange(area.Start, area.Length, AccessNeverPdom)
		} else {
			pmds, ptes := vds.table.EvictRange(area.Start, area.Length, AccessNeverPdom)
			totalPMDs += pmds
			totalPTEs += ptes
		}
		pteWrites += vds.table.PTEWrites
		pmdWrites += vds.table.PMDWrites
	}
	cost += walk
	cost += cycles.Cost(pteWrites)*m.params.PTEWrite + cycles.Cost(pmdWrites)*m.params.PMDWrite
	m.attr("core", "evict", m.params.EvictBase+walk)
	m.attr("pagetable", "pte-write", cycles.Cost(pteWrites)*m.params.PTEWrite)
	m.attr("pagetable", "pmd-write", cycles.Cost(pmdWrites)*m.params.PMDWrite)
	viaPMD := totalPMDs > 0 && totalPTEs == 0
	if totalPMDs > 0 {
		m.Stats.PMDFastEvicts++
	}
	p := vds.uninstall(victim, viaPMD)
	m.Stats.EvictedPages += m.vdt.TotalPages(victim)
	m.trace(Event{Kind: EventEvict, TID: task.TID(), Vdom: victim, VDS: vds.id, Pdom: p, Cost: cost})

	// Invalidate the victim's translations — local-only when the thread
	// exclusively owns the address space.
	cost += m.flushVictim(vds, victim)

	// Map d into the freed pdom and resynchronize every resident
	// thread's register with the new domain map.
	cost += m.mapVdom(vds, d, p)
	m.resyncVDSThreads(vds)
	return cost, nil
}

// flushVictim invalidates an evicted vdom's translations on the cores of
// the VDS.
func (m *Manager) flushVictim(vds *VDS, victim VdomID) cycles.Cost {
	return m.flushVdomLocal(vds, victim)
}

// chooseVictim implements HLRU (§5.5): prefer the vdom occupying d's
// last-time pdom if it is inaccessible and unpinned; otherwise the
// least-recently-used inaccessible unpinned vdom; pinned vdoms are spared
// unless every candidate is pinned, in which case strict LRU applies.
func (m *Manager) chooseVictim(vdr *VDR, vds *VDS, d VdomID) (VdomID, bool) {
	evictable := func(v VdomID) (candidate, pinned bool) {
		if vds.threadsOn(v) > 0 {
			return false, false // some resident thread still accesses it
		}
		perm := vdr.perms.get(v)
		if perm.Accessible() {
			return false, false
		}
		return true, perm == VPermPinned
	}
	if !m.policy.StrictLRU {
		if hint, ok := vds.lastMapping[d]; ok && vds.domainMap[hint].used {
			occ := vds.domainMap[hint].vdom
			if cand, pinned := evictable(occ); cand && !pinned {
				return occ, true
			}
		}
	}
	var (
		bestUnpinned, bestPinned, bestLast       VdomID
		bestUnpinnedTS, bestPinnedTS, bestLastTS uint64
		haveUnpinned, havePinned, haveLast       bool
	)
	for p := firstUsablePdom; p < vds.numPdoms; p++ {
		e := vds.domainMap[p]
		if !e.used || e.vdom == d {
			continue
		}
		cand, pinned := evictable(e.vdom)
		switch {
		case cand && !pinned:
			if !haveUnpinned || e.lastUse < bestUnpinnedTS {
				bestUnpinned, bestUnpinnedTS, haveUnpinned = e.vdom, e.lastUse, true
			}
		case cand && pinned:
			if !havePinned || e.lastUse < bestPinnedTS {
				bestPinned, bestPinnedTS, havePinned = e.vdom, e.lastUse, true
			}
		default:
			// Still accessible to some resident thread: last resort
			// only. The evicted vdom's permissions survive in the
			// VDRs, so a later access simply refaults and remaps it.
			if !haveLast || e.lastUse < bestLastTS {
				bestLast, bestLastTS, haveLast = e.vdom, e.lastUse, true
			}
		}
	}
	if haveUnpinned {
		return bestUnpinned, true
	}
	if havePinned {
		return bestPinned, true
	}
	if haveLast {
		return bestLast, true
	}
	return 0, false
}

// switchVDS moves the task's residency to another attached VDS via a pgd
// switch — no TLB flush thanks to ASIDs (§5.5).
func (m *Manager) switchVDS(task *kernel.Task, vdr *VDR, to *VDS, d VdomID) (cycles.Cost, error) {
	from := vdr.current
	from.addThreadRef(vdr.perms, -1)
	delete(from.threads, task)
	to.threads[task] = true
	to.noteCore(task.CoreID())
	to.addThreadRef(vdr.perms, +1)
	vdr.current = to
	to.touch(d)
	task.SetAddressSpace(to.table, to.asid, true)
	m.syncRegister(vdr)
	m.Stats.VDSSwitches++
	cost := m.params.PgdSwitch + m.params.VDSMetadataSwitch + m.params.PermRegWrite
	m.attr("hw", "pgd-switch", m.params.PgdSwitch)
	m.attr("core", "switch", m.params.VDSMetadataSwitch)
	m.attr("hw", "perm-reg-write", m.params.PermRegWrite)
	m.trace(Event{Kind: EventSwitch, TID: task.TID(), Vdom: d, VDS: to.id, Cost: cost})
	return cost, nil
}

// migrateThread implements ❻❼❽: find (or allocate) a VDS that can
// accommodate the thread's active vdoms plus d, map the missing vdoms
// there, move the thread, and resynchronize its register (Figure 3 right).
func (m *Manager) migrateThread(task *kernel.Task, vdr *VDR, d VdomID) (cycles.Cost, error) {
	needed := m.activeVdoms(vdr, d)
	var target *VDS
	var cost cycles.Cost
	for _, o := range m.vdses {
		if o == vdr.current {
			continue
		}
		if missingIn(o, needed) <= o.FreePdoms() {
			target = o
			break
		}
	}
	if target == nil { // ❽: allocate a fresh VDS
		nv, err := m.allocVDS()
		if err != nil {
			return m.migrateFallback(task, vdr, d, cost, err)
		}
		target = nv
		m.Stats.VDSAllocs++
		cost += m.params.VDSAllocate
		m.attr("core", "vds-alloc", m.params.VDSAllocate)
		vdr.vdses = append(vdr.vdses, target)
	} else if !contains(vdr.vdses, target) {
		vdr.vdses = append(vdr.vdses, target)
	}
	// Map the missing vdoms into the target.
	for _, v := range needed {
		if target.Mapped(v) {
			target.touch(v)
			continue
		}
		p, ok := target.freePdom(lookupHint(target, v, m.policy.StrictLRU))
		if !ok {
			if v != d {
				// A non-essential active vdom is shed rather than
				// failing the migration: it refaults lazily after the
				// move, exactly like the LRU tail activeVdoms drops.
				m.noteDegraded("migrate:shed-vdom")
				continue
			}
			return cost, fmt.Errorf("core: migration target VDS %d ran out of pdoms: %w",
				target.id, ErrNoResources)
		}
		cost += m.mapVdom(target, v, p)
		cost += m.params.MigrationPerVdom
		m.attr("core", "migrate", m.params.MigrationPerVdom)
	}
	// Move the thread.
	from := vdr.current
	from.addThreadRef(vdr.perms, -1)
	delete(from.threads, task)
	target.threads[task] = true
	target.noteCore(task.CoreID())
	target.addThreadRef(vdr.perms, +1)
	vdr.current = target
	task.SetAddressSpace(target.table, target.asid, true)
	m.syncRegister(vdr)
	m.resyncVDSThreads(target)
	m.Stats.Migrations++
	cost += m.params.PgdSwitch + m.params.VDSMetadataSwitch
	m.attr("hw", "pgd-switch", m.params.PgdSwitch)
	m.attr("core", "migrate", m.params.VDSMetadataSwitch)
	// Honour the thread's nas budget: a migration may not leave the
	// thread attached to more address spaces than vdr_alloc allowed, so
	// the departed VDS is dropped first.
	if len(vdr.vdses) > vdr.nas {
		vdr.detach(from)
		m.ReapVDSes()
	}
	m.trace(Event{Kind: EventMigrate, TID: task.TID(), Vdom: d, VDS: target.id, Cost: cost})
	return cost, nil
}

// migrateFallback is the degraded path when a migration cannot obtain a
// target VDS: the thread falls back to a plain VDS switch — to an attached
// space that already maps d, then to one with a free pdom — and finally
// to eviction in place. ErrExhausted surfaces only when every path fails.
func (m *Manager) migrateFallback(task *kernel.Task, vdr *VDR, d VdomID, cost cycles.Cost, cause error) (cycles.Cost, error) {
	m.noteDegraded("migrate:switch-fallback")
	for _, o := range vdr.vdses {
		if o != vdr.current && o.Mapped(d) {
			c, err := m.switchVDS(task, vdr, o, d)
			return cost + c, err
		}
	}
	for _, o := range vdr.vdses {
		if o != vdr.current && o.FreePdoms() > 0 {
			c, err := m.switchVDS(task, vdr, o, d)
			cost += c
			if err != nil {
				return cost, err
			}
			cost += m.mapVdom(o, d, mustFree(o))
			m.resyncVDSThreads(o)
			return cost, nil
		}
	}
	c, err := m.evictAndMap(task, vdr, vdr.current, d)
	cost += c
	if err != nil {
		return cost, fmt.Errorf("core: migration of thread %d for vdom %d: every fallback failed (%v): %w",
			task.TID(), d, cause, ErrExhausted)
	}
	return cost, nil
}

// detach removes a VDS from the thread's attachment list.
func (r *VDR) detach(v *VDS) {
	for i, x := range r.vdses {
		if x == v {
			r.vdses = append(r.vdses[:i], r.vdses[i+1:]...)
			return
		}
	}
}

// ReapVDSes frees every VDS with no resident thread and no attachment —
// orphans left behind by migrations and nas-budget detaches. Reaping
// removes their page tables from the eager-synchronization set, so
// revocations stop paying for dead address spaces. It returns the number
// of VDSes reaped. The kernel would run this from its housekeeping path;
// here it also runs automatically after migrations and VdrFree.
func (m *Manager) ReapVDSes() int {
	attached := make(map[*VDS]bool, len(m.vdses))
	for _, vdr := range m.vdrs {
		for _, v := range vdr.vdses {
			attached[v] = true
		}
	}
	n := 0
	kept := m.vdses[:0]
	for _, vds := range m.vdses {
		// VDS0 is the process's home space and stays (fresh VDRs join
		// it); everything else without users goes.
		if vds.id == 0 || vds.NumThreads() > 0 || attached[vds] {
			kept = append(kept, vds)
			continue
		}
		delete(m.byTable, vds.table)
		m.memoTable, m.memoVDS = nil, nil
		m.proc.AS().UnregisterTable(vds.table)
		// The ASID is retired but stays unreusable until the next
		// generation rollover flushes every TLB, so translations still
		// cached under it can never alias a new address space.
		m.proc.Kernel().FreeASID(vds.asid)
		n++
	}
	m.vdses = kept
	return n
}

func lookupHint(v *VDS, d VdomID, strict bool) (pagetable.Pdom, bool) {
	if strict {
		return 0, false
	}
	h, ok := v.lastMapping[d]
	return h, ok
}

// activeVdoms returns the vdoms a migration must remap in the target: d
// plus the vdoms that are both mapped in the thread's current VDS and held
// with a non-AD permission — the contents of its physical permission
// register, exactly what Figure 3 moves. Grants on unmapped vdoms are
// virtual-only and refault lazily after the move. If everything is live at
// once the least-recently-used entries are shed (they, too, refault).
func (m *Manager) activeVdoms(vdr *VDR, d VdomID) []VdomID {
	out := []VdomID{d}
	vds := vdr.current
	type ent struct {
		v  VdomID
		ts uint64
	}
	var es []ent
	for p := firstUsablePdom; p < vds.numPdoms; p++ {
		e := vds.domainMap[p]
		if !e.used || e.vdom == d || !m.live[e.vdom] {
			continue
		}
		if vdr.perms.get(e.vdom) == VPermNone {
			continue
		}
		es = append(es, ent{e.vdom, e.lastUse})
	}
	// Most recently used first; shed the tail if d plus the active set
	// exceed one address space.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].ts > es[j-1].ts; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	if max := UsablePdomsPerVDS - 1; len(es) > max {
		es = es[:max]
	}
	for _, e := range es {
		out = append(out, e.v)
	}
	return out
}

func missingIn(vds *VDS, needed []VdomID) int {
	n := 0
	for _, v := range needed {
		if !vds.Mapped(v) {
			n++
		}
	}
	return n
}

func contains(list []*VDS, v *VDS) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// registerImage synthesizes the hardware permission-register image a
// thread's VDR implies under its current VDS's domain map. The auditor
// compares it against the saved image syncRegister maintains.
func (m *Manager) registerImage(vdr *VDR) uint64 {
	vds := vdr.current
	// Start from the all-denied image for this architecture's domain
	// count (access-never and every unmapped pdom read identically), then
	// overlay a field per mapped vdom — assembling the raw value directly
	// instead of one Set call per field.
	bits := hw.DenyAllBelow(vds.numPdoms)
	for p := firstUsablePdom; p < vds.numPdoms; p++ {
		e := vds.domainMap[p]
		if !e.used {
			continue
		}
		shift := 2 * uint64(p)
		bits = bits&^(0b11<<shift) | vdr.perms.get(e.vdom).Hardware().Field()<<shift
	}
	return bits
}

// syncRegister rebuilds the thread's hardware permission-register image
// from its VDR and its current VDS's domain map.
func (m *Manager) syncRegister(vdr *VDR) {
	vdr.task.SetSavedPerm(m.registerImage(vdr))
	m.Stats.RegisterSyncs++
}

// resyncVDSThreads refreshes the register image of every thread resident
// in the VDS after its domain map changed.
func (m *Manager) resyncVDSThreads(vds *VDS) {
	for t := range vds.threads {
		if vdr := m.vdrs[t]; vdr != nil {
			m.syncRegister(vdr)
		}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
