package vdom

import (
	"fmt"
	"strings"

	"vdom/internal/backend"
)

// maxCores is the most hardware threads one System supports; the machine
// addresses cores through a 64-bit CPU bitmap.
const maxCores = 64

// Validate reports whether the config describes a buildable platform.
// Zero values are valid — they select documented defaults (X86, 4 cores,
// 1536 TLB entries) — but nonsense is rejected: negative Cores or
// TLBEntries, more than 64 cores (the CPU-bitmap limit), or an unknown
// Arch. NewSystem panics on exactly the errors returned here;
// NewSystemWith returns them.
func (cfg Config) Validate() error {
	if cfg.Arch < X86 || cfg.Arch > RISCV {
		return fmt.Errorf("unknown architecture %d", int(cfg.Arch))
	}
	if cfg.Kernel != "" {
		if _, ok := backend.Get(cfg.Kernel); !ok {
			return &UnknownKernelError{Name: cfg.Kernel, Known: Kernels()}
		}
	}
	if cfg.Cores < 0 {
		return fmt.Errorf("negative core count %d", cfg.Cores)
	}
	if cfg.Cores > maxCores {
		return fmt.Errorf("core count %d exceeds the %d-core limit", cfg.Cores, maxCores)
	}
	if cfg.TLBEntries < 0 {
		return fmt.Errorf("negative TLB capacity %d", cfg.TLBEntries)
	}
	return nil
}

// Option is a functional configuration knob for NewSystemWith, layered
// over Config: each option sets one field, and unset fields keep their
// documented defaults.
type Option func(*Config)

// WithArch selects the simulated architecture (default X86).
func WithArch(a Arch) Option { return func(c *Config) { c.Arch = a } }

// WithKernel selects the protection-kernel backend processes attach to
// (default "vdom"; see Kernels for the registered set). An unregistered
// name surfaces as an *UnknownKernelError from NewSystemWith.
func WithKernel(name string) Option { return func(c *Config) { c.Kernel = name } }

// WithCores sets the number of hardware threads (default 4, max 64).
func WithCores(n int) Option { return func(c *Config) { c.Cores = n } }

// WithTLBEntries sets the per-core TLB capacity (default 1536).
func WithTLBEntries(n int) Option { return func(c *Config) { c.TLBEntries = n } }

// WithNoASID disables ASID tagging, forcing a full TLB flush on every
// address-space switch (ablation only).
func WithNoASID() Option { return func(c *Config) { c.NoASID = true } }

// WithSetAssociativeTLB models 8-way set-associative TLBs (conflict
// misses) instead of fully associative ones.
func WithSetAssociativeTLB() Option { return func(c *Config) { c.SetAssociativeTLB = true } }

// WithVanillaKernel boots the kernel without the VDom patches (baseline
// measurements only).
func WithVanillaKernel() Option { return func(c *Config) { c.VanillaKernel = true } }

// WithChaos attaches the deterministic fault-injection layer.
func WithChaos(cc ChaosConfig) Option { return func(c *Config) { c.Chaos = &cc } }

// WithMetrics enables the unified observability layer (System.Metrics,
// System.MetricsSnapshot).
func WithMetrics() Option { return func(c *Config) { c.Metrics = true } }

// NewSystemWith boots a simulated machine configured by options, the
// error-returning sibling of NewSystem:
//
//	sys, err := vdom.NewSystemWith(vdom.WithArch(vdom.ARM), vdom.WithCores(8))
//
// With no options it boots the default platform (X86, 4 cores). The error
// is non-nil exactly when Config.Validate rejects the assembled config.
func NewSystemWith(opts ...Option) (*System, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vdom: %w", err)
	}
	return newSystem(cfg), nil
}

// Kernels lists the registered kernel backends in registration order:
// "vdom" plus the comparison baselines ("libmpk", "epk", "dpti"). Every
// entry is a valid Config.Kernel / WithKernel argument.
func Kernels() []string { return backend.Names() }

// UnknownKernelError reports a Config.Kernel naming no registered
// backend; match it with errors.As.
type UnknownKernelError struct {
	// Name is the requested kernel.
	Name string
	// Known lists the registered kernels.
	Known []string
}

// Error implements the error interface.
func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("unknown kernel %q (registered: %s)", e.Name, strings.Join(e.Known, ", "))
}

// CoreRangeError reports a thread-placement request naming a core the
// system does not have.
type CoreRangeError struct {
	// Core is the requested core id.
	Core int
	// Cores is the system's core count; valid ids are [0, Cores).
	Cores int
}

// Error implements the error interface.
func (e *CoreRangeError) Error() string {
	return fmt.Sprintf("core %d out of range [0, %d)", e.Core, e.Cores)
}
