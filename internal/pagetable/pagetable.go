// Package pagetable implements the 4-level radix page tables of the
// simulated machine, including the per-PTE memory-domain tags that Intel
// MPK and ARM Memory Domain attach to translations, and the PMD-disable
// fast path VDom uses to evict 2 MiB-spanning domains cheaply.
//
// The package is purely structural: operations return *counts* of PTE/PMD
// writes and walk depths; charging cycles for them is the caller's job
// (internal/hw and internal/kernel), keeping the cost model in one place.
//
// # Representation
//
// The radix levels are stored as index-addressed node arrays rather than
// pointer-linked tables: every directory entry is an int32 index+1 into a
// per-level node slice (0 means absent). The layout is pointer-free, so
// the garbage collector never scans a table, installing an entry needs no
// write barrier, and a walk is three array indexations. Nodes are never
// freed — matching real hardware, where an unmapped-but-materialized page
// table still adds a walk level — so indices stay stable for a table's
// lifetime.
//
// Range operations (RetagRange, EvictRange, RemapRange, UnmapRange,
// SetWritableRange) descend the radix once per leaf table instead of once
// per page, but keep counter and generation accounting identical to the
// equivalent per-page loop; DisableFastRange forces the per-page loop so
// tests can prove the equivalence byte-for-byte.
package pagetable

import "fmt"

// Virtual address geometry (x86-64-style 4-level, 4 KiB pages). The ARM
// model reuses the same geometry; its 2 MiB domain granularity is enforced
// a level up, in the kernel.
const (
	PageShift = 12
	// PageSize is the size of one page in bytes.
	PageSize = 1 << PageShift
	// EntriesPerTable is the fan-out of every table level.
	EntriesPerTable = 512
	// PMDShift is the shift of one page-middle-directory entry (2 MiB).
	PMDShift = PageShift + 9
	// PMDSize is the bytes covered by one PMD entry.
	PMDSize = 1 << PMDShift
	// Levels is the number of radix levels (pgd, pud, pmd, pt).
	Levels = 4
	// AddrBits is the number of meaningful virtual-address bits.
	AddrBits = PageShift + 9*Levels
)

// DisableFastRange forces every range operation through the per-page
// slow path (one full radix descent per page, exactly the loops the
// batched fast paths replace). It exists for equivalence testing only:
// transparency tests run the same seeded experiment with the flag on and
// off and require byte-identical output. Set it only from test setup,
// never while simulations run.
var DisableFastRange bool

// VAddr is a virtual address in the simulated machine.
type VAddr uint64

// Frame is a physical frame number.
type Frame uint64

// Pdom is a hardware protection-domain identifier (0..15).
type Pdom uint8

// VPN returns the virtual page number of the address.
func (a VAddr) VPN() uint64 { return uint64(a) >> PageShift }

// PageAlign rounds the address down to a page boundary.
func (a VAddr) PageAlign() VAddr { return a &^ (PageSize - 1) }

// PMDAlign rounds the address down to a 2 MiB boundary.
func (a VAddr) PMDAlign() VAddr { return a &^ (PMDSize - 1) }

// PTE is one page-table entry: a translation plus its domain tag.
type PTE struct {
	Frame    Frame
	Present  bool
	Writable bool
	Pdom     Pdom
}

// indices splits a virtual address into its four radix indices
// (pgd, pud, pmd, pt).
func indices(a VAddr) (i3, i2, i1, i0 int) {
	v := uint64(a)
	i3 = int(v >> 39 & 0x1ff)
	i2 = int(v >> 30 & 0x1ff)
	i1 = int(v >> 21 & 0x1ff)
	i0 = int(v >> 12 & 0x1ff)
	return
}

// pudNode is one page-upper-directory: 512 pmd references.
type pudNode struct {
	pmds [EntriesPerTable]int32 // index+1 into Table.pmds; 0 = absent
}

// pmdNode is one page-middle-directory: 512 leaf-table references plus
// the per-entry disabled bitmap of VDom's §5.5 eviction fast path.
type pmdNode struct {
	pts [EntriesPerTable]int32 // index+1 into Table.pts; 0 = absent
	// disabled marks PMD entries VDom has made access-never without
	// touching the 512 PTEs underneath (§5.5 page-table optimization).
	disabled [EntriesPerTable / 64]uint64
}

func (p *pmdNode) isDisabled(i1 int) bool {
	return p.disabled[i1>>6]&(1<<(uint(i1)&63)) != 0
}

func (p *pmdNode) setDisabled(i1 int, v bool) {
	if v {
		p.disabled[i1>>6] |= 1 << (uint(i1) & 63)
	} else {
		p.disabled[i1>>6] &^= 1 << (uint(i1) & 63)
	}
}

// ptNode is one leaf page table. Entries are stored packed (one machine
// word each, see packedPTE) so a leaf costs 4 KiB instead of 8: half the
// zeroing when nodes materialize and half the bytes the allocator and
// copier move as tables grow.
type ptNode struct {
	ptes    [EntriesPerTable]packedPTE
	present int32
}

// packedPTE is the in-node encoding of a PTE: bit 0 present, bit 1
// writable, bits 2..9 the pdom, bits 10..63 the frame number. The zero
// value is the absent entry, exactly like the zero PTE.
type packedPTE uint64

const (
	pteP        packedPTE = 1 << 0
	pteW        packedPTE = 1 << 1
	ptePdomMask packedPTE = 0xff << 2
)

// setWritable flips the packed writable bit.
func (p *packedPTE) setWritable(w bool) {
	if w {
		*p |= pteW
	} else {
		*p &^= pteW
	}
}

// packPTE encodes e into its storage form.
func packPTE(e PTE) packedPTE {
	v := packedPTE(e.Frame)<<10 | packedPTE(e.Pdom)<<2
	if e.Present {
		v |= pteP
	}
	if e.Writable {
		v |= pteW
	}
	return v
}

// unpack decodes the storage form back into the public PTE view.
func (p packedPTE) unpack() PTE {
	return PTE{
		Frame:    Frame(p >> 10),
		Present:  p&pteP != 0,
		Writable: p&pteW != 0,
		Pdom:     Pdom(p >> 2),
	}
}

// Table is one address space's page table, rooted at a pgd. The radix is
// index-addressed: pgd/pud/pmd entries hold int32 indices (offset by one,
// zero meaning absent) into the node slices, so the whole structure is
// pointer-free and walks touch only dense arrays.
type Table struct {
	pgd  [EntriesPerTable]int32 // index+1 into puds; 0 = absent
	puds []pudNode
	pmds []pmdNode
	pts  []ptNode

	present int

	// PTEWrites and PMDWrites count structural updates since the last
	// ResetCounts. The memory-management layer converts them to cycles.
	PTEWrites uint64
	PMDWrites uint64

	// retiredPTE/retiredPMD accumulate counts cleared by ResetCounts, so
	// cumulative totals survive the per-operation reset protocol.
	retiredPTE uint64
	retiredPMD uint64

	// gen increments on every structural mutation (Map, Unmap, SetPdom,
	// SetWritable, DisablePMD, EnablePMD, and the range operations built
	// on them). Translation caches key their validity on it: a cached
	// Walk result is reusable iff the table's generation is unchanged.
	gen uint64

	// curCoord/curPT/curPMD memoize the leaf resolved by the last
	// ensurePT so dense same-2MiB mutation runs (populate, retag) skip
	// the radix descent. curPT == 0 means no memo. Links from pmd to pt
	// are never severed (Unmap keeps the skeleton), and every caller
	// rechecks the disabled bit through the returned pmd, so the memo
	// needs no invalidation; LoadState's full reset clears it.
	curCoord uint64
	curPT    int32
	curPMD   int32
}

// Gen returns the table's mutation generation. It changes whenever any
// operation that could alter a Walk outcome runs, so callers may reuse a
// cached WalkResult as long as Gen is unchanged.
func (t *Table) Gen() uint64 { return t.gen }

// New returns an empty page table.
func New() *Table {
	return &Table{}
}

// Present returns the number of present PTEs.
func (t *Table) Present() int { return t.present }

// ResetCounts zeroes the PTE/PMD write counters.
func (t *Table) ResetCounts() {
	t.retiredPTE += t.PTEWrites
	t.retiredPMD += t.PMDWrites
	t.PTEWrites = 0
	t.PMDWrites = 0
}

// CumulativePTEWrites returns the table's lifetime PTE write count,
// unaffected by ResetCounts.
func (t *Table) CumulativePTEWrites() uint64 { return t.retiredPTE + t.PTEWrites }

// CumulativePMDWrites returns the table's lifetime PMD write count,
// unaffected by ResetCounts.
func (t *Table) CumulativePMDWrites() uint64 { return t.retiredPMD + t.PMDWrites }

// WalkResult describes the outcome of a page walk.
type WalkResult struct {
	// PTE is the entry found; only meaningful when Present.
	PTE PTE
	// Present reports whether a present translation exists.
	Present bool
	// PMDDisabled reports that the walk hit a PMD entry VDom disabled;
	// the access must fault even though PTEs may exist underneath.
	PMDDisabled bool
	// LevelsVisited is the number of table levels the walker touched
	// (1..4); hardware charges walk cost proportionally.
	LevelsVisited int
}

// Walk performs a page-table walk for the address.
func (t *Table) Walk(a VAddr) WalkResult {
	v := uint64(a)
	pi := t.pgd[v>>39&0x1ff]
	if pi == 0 {
		return WalkResult{LevelsVisited: 1}
	}
	mi := t.puds[pi-1].pmds[v>>30&0x1ff]
	if mi == 0 {
		return WalkResult{LevelsVisited: 2}
	}
	pmd := &t.pmds[mi-1]
	i1 := int(v >> 21 & 0x1ff)
	if pmd.isDisabled(i1) {
		return WalkResult{LevelsVisited: 3, PMDDisabled: true}
	}
	ti := pmd.pts[i1]
	if ti == 0 {
		return WalkResult{LevelsVisited: 3}
	}
	pte := t.pts[ti-1].ptes[v>>12&0x1ff]
	return WalkResult{PTE: pte.unpack(), Present: pte&pteP != 0, LevelsVisited: 4}
}

// pmdOf resolves the pmd node covering a, or nil.
func (t *Table) pmdOf(a VAddr) *pmdNode {
	v := uint64(a)
	pi := t.pgd[v>>39&0x1ff]
	if pi == 0 {
		return nil
	}
	mi := t.puds[pi-1].pmds[v>>30&0x1ff]
	if mi == 0 {
		return nil
	}
	return &t.pmds[mi-1]
}

// ptOf resolves the leaf page table covering a, or nil.
func (t *Table) ptOf(a VAddr) *ptNode {
	pmd := t.pmdOf(a)
	if pmd == nil {
		return nil
	}
	ti := pmd.pts[uint64(a)>>21&0x1ff]
	if ti == 0 {
		return nil
	}
	return &t.pts[ti-1]
}

// appendNode appends one zero node to a directory-node array, growing the
// backing array fourfold when full. Nodes are ~4 KiB each, so the default
// doubling-one-at-a-time policy spends a surprising share of
// table-construction time in growslice copies; a steeper curve trades a
// little slack for far fewer moves. Within capacity it extends the length
// without writing: nodes are only ever appended, never removed (LoadState
// replaces the arrays wholesale), so the slack beyond len is still the
// pristine zero memory the allocator handed out. Callers must not hold
// node pointers across a call — indices stay stable, pointers do not.
func appendNode[N any](nodes []N) []N {
	if len(nodes) == cap(nodes) {
		c := cap(nodes) * 4
		if c == 0 {
			c = 1
		}
		grown := make([]N, len(nodes), c)
		copy(grown, nodes)
		nodes = grown
	}
	return nodes[: len(nodes)+1 : cap(nodes)]
}

// Reserve grows the leaf page-table node array's capacity so that the
// next n installs allocate nothing. It is a host-side hint with no
// architectural effect: no entry is written, no counter moves, and a
// snapshot of the table is unchanged. Bulk-populate paths that know how
// many 2 MiB chunks they are about to touch use it to replace the growth
// curve's repeated allocate-and-copy with one exact allocation.
func (t *Table) Reserve(n int) {
	if cap(t.pts)-len(t.pts) >= n {
		return
	}
	c := len(t.pts) + n
	if q := cap(t.pts) * 4; q > c {
		// Keep the geometric curve: repeated small reservations on a
		// growing table must not degrade to one copy per call.
		c = q
	}
	grown := make([]ptNode, len(t.pts), c)
	copy(grown, t.pts)
	t.pts = grown
}

// ensurePT materializes the path to the page table covering a and returns
// it together with the owning pmd node and the pmd index. Each directory
// install counts one PTE write, as before the flattening.
func (t *Table) ensurePT(a VAddr) (*ptNode, *pmdNode, int) {
	i3, i2, i1, _ := indices(a)
	if coord := uint64(a) >> PMDShift; t.curPT != 0 && t.curCoord == coord {
		return &t.pts[t.curPT-1], &t.pmds[t.curPMD-1], i1
	}
	pi := t.pgd[i3]
	if pi == 0 {
		t.puds = appendNode(t.puds)
		pi = int32(len(t.puds))
		t.pgd[i3] = pi
		t.PTEWrites++ // directory entry install
	}
	mi := t.puds[pi-1].pmds[i2]
	if mi == 0 {
		t.pmds = appendNode(t.pmds)
		mi = int32(len(t.pmds))
		t.puds[pi-1].pmds[i2] = mi
		t.PTEWrites++
	}
	pmd := &t.pmds[mi-1]
	ti := pmd.pts[i1]
	if ti == 0 {
		t.pts = appendNode(t.pts)
		ti = int32(len(t.pts))
		// Appending to t.pts may move the backing array; re-resolve the
		// pmd through its index, which is stable.
		pmd = &t.pmds[mi-1]
		pmd.pts[i1] = ti
		t.PTEWrites++
	}
	t.curCoord = uint64(a) >> PMDShift
	t.curPT = ti
	t.curPMD = mi
	return &t.pts[ti-1], pmd, i1
}

// Map installs a translation for the page containing a. Mapping a page
// under a disabled PMD re-enables that PMD entry (one PMD write), matching
// the remap path of VDom's HLRU policy.
func (t *Table) Map(a VAddr, f Frame, writable bool, d Pdom) {
	t.gen++
	pt, pmd, i1 := t.ensurePT(a)
	if pmd.isDisabled(i1) {
		pmd.setDisabled(i1, false)
		t.PMDWrites++
	}
	i0 := int(uint64(a) >> 12 & 0x1ff)
	if pt.ptes[i0]&pteP == 0 {
		pt.present++
		t.present++
	}
	pt.ptes[i0] = packPTE(PTE{Frame: f, Present: true, Writable: writable, Pdom: d})
	t.PTEWrites++
}

// Unmap removes the translation for the page containing a. It reports
// whether a present mapping existed. Unlike Walk, Unmap reaches PTEs under
// a disabled PMD entry (revocation must not be maskable by an eviction).
func (t *Table) Unmap(a VAddr) bool {
	t.gen++
	pt := t.ptOf(a)
	if pt == nil {
		return false
	}
	i0 := int(uint64(a) >> 12 & 0x1ff)
	if pt.ptes[i0]&pteP == 0 {
		return false
	}
	pt.ptes[i0] = 0
	pt.present--
	t.present--
	t.PTEWrites++
	return true
}

// SetPdom retags the page containing a with domain d. It reports whether a
// present mapping existed. Retagging a page under a disabled PMD re-enables
// the PMD entry.
func (t *Table) SetPdom(a VAddr, d Pdom) bool {
	t.gen++
	pmd := t.pmdOf(a)
	if pmd == nil {
		return false
	}
	i1 := int(uint64(a) >> 21 & 0x1ff)
	ti := pmd.pts[i1]
	if ti == 0 {
		return false
	}
	pt := &t.pts[ti-1]
	i0 := int(uint64(a) >> 12 & 0x1ff)
	if pt.ptes[i0]&pteP == 0 {
		return false
	}
	if pmd.isDisabled(i1) {
		pmd.setDisabled(i1, false)
		t.PMDWrites++
	}
	pt.ptes[i0] = pt.ptes[i0]&^ptePdomMask | packedPTE(d)<<2
	t.PTEWrites++
	return true
}

// SetWritable flips the writable bit of the page containing a. A page
// whose PMD entry is disabled walks as not-present and is left untouched.
func (t *Table) SetWritable(a VAddr, w bool) bool {
	t.gen++
	wr := t.Walk(a)
	if !wr.Present {
		return false
	}
	pt := t.ptOf(a)
	pt.ptes[uint64(a)>>12&0x1ff].setWritable(w)
	t.PTEWrites++
	return true
}

// DisablePMD marks the 2 MiB PMD entry covering a as access-never without
// touching its PTEs. It reports whether the entry existed and was enabled.
func (t *Table) DisablePMD(a VAddr) bool {
	t.gen++
	pmd := t.pmdOf(a)
	i1 := int(uint64(a) >> 21 & 0x1ff)
	if pmd == nil || pmd.pts[i1] == 0 || pmd.isDisabled(i1) {
		return false
	}
	pmd.setDisabled(i1, true)
	t.PMDWrites++
	return true
}

// EnablePMD clears the disabled mark on the PMD entry covering a.
func (t *Table) EnablePMD(a VAddr) bool {
	t.gen++
	pmd := t.pmdOf(a)
	i1 := int(uint64(a) >> 21 & 0x1ff)
	if pmd == nil || !pmd.isDisabled(i1) {
		return false
	}
	pmd.setDisabled(i1, false)
	t.PMDWrites++
	return true
}

// PMDDisabled reports whether the PMD entry covering a is disabled.
func (t *Table) PMDDisabled(a VAddr) bool {
	pmd := t.pmdOf(a)
	return pmd != nil && pmd.isDisabled(int(uint64(a)>>21&0x1ff))
}

// RetagRange retags every present page in [start, start+length) with d and
// returns the number of pages retagged. length must be page-aligned.
//
// The fast path descends the radix once per 2 MiB leaf instead of once per
// page; its counter and generation accounting is exactly that of the
// per-page loop (one generation bump per page scanned, one PTE write per
// present page, one PMD write when the first present page under a disabled
// PMD entry re-enables it).
func (t *Table) RetagRange(start VAddr, length uint64, d Pdom) int {
	checkAligned(start, length)
	if DisableFastRange {
		n := 0
		for off := uint64(0); off < length; off += PageSize {
			if t.SetPdom(start+VAddr(off), d) {
				n++
			}
		}
		return n
	}
	n := 0
	end := start + VAddr(length)
	for a := start; a < end; {
		chunk := a.PMDAlign() + PMDSize
		if chunk > end {
			chunk = end
		}
		pages := uint64(chunk-a) / PageSize
		t.gen += pages // one SetPdom call per page in the slow path
		pmd := t.pmdOf(a)
		if pmd == nil {
			a = chunk
			continue
		}
		i1 := int(uint64(a) >> 21 & 0x1ff)
		ti := pmd.pts[i1]
		if ti == 0 {
			a = chunk
			continue
		}
		pt := &t.pts[ti-1]
		i0 := int(uint64(a) >> 12 & 0x1ff)
		disabled := pmd.isDisabled(i1) // loop-invariant until first present page
		pp := pt.ptes[i0 : i0+int(pages)]
		cnt := 0
		tag := packedPTE(d) << 2
		for j := range pp {
			if pp[j]&pteP == 0 {
				continue
			}
			if disabled {
				pmd.setDisabled(i1, false)
				t.PMDWrites++
				disabled = false
			}
			pp[j] = pp[j]&^ptePdomMask | tag
			cnt++
		}
		t.PTEWrites += uint64(cnt)
		n += cnt
		a = chunk
	}
	return n
}

// PopulateChunk eagerly maps every non-present page of the aligned run
// [a, a+pages*PageSize), which must not cross a 2 MiB boundary. Fresh
// frames come from a single alloc(n) call — frames for absent pages are
// assigned in ascending page order, exactly as one allocation per fault
// would. frames[i] receives the frame backing page i afterwards, present
// pages included. writable pages whose PTE carries a stale write-protect
// bit are repaired in place. It returns the number of pages freshly
// mapped.
//
// The operation is the fused equivalent of the demand-fault loop: for
// each page it performs exactly the counter-reset, map, and repair
// sequence HandleFault would, so generations, write counters (current
// and cumulative), and frame assignment are bit-identical to pages
// faulted one at a time. The per-page counter windows are tracked in
// locals (curP/curM are the live window, retP/retM the windows already
// retired by later pages' resets) and written back once at the end;
// nothing can observe the table mid-operation, so only the final counter
// state matters.
func (t *Table) PopulateChunk(a VAddr, pages int, writable bool, d Pdom, alloc func(n int) Frame, frames []Frame) int {
	i1 := int(uint64(a) >> 21 & 0x1ff)
	i0 := int(uint64(a) >> 12 & 0x1ff)
	pmd := t.pmdOf(a)
	var pt *ptNode
	disabled := false
	if pmd != nil {
		disabled = pmd.isDisabled(i1)
		if ti := pmd.pts[i1]; ti != 0 {
			pt = &t.pts[ti-1]
		}
	}
	// Count the pages that will fault fresh frames, then allocate them in
	// one call. A disabled PMD entry makes the first page remap fresh
	// regardless of its PTE (it walks as not-present); the pages after it
	// see the entry re-enabled.
	fresh := 0
	switch {
	case pt == nil:
		fresh = pages
	case disabled:
		fresh = 1
		for j := 1; j < pages; j++ {
			if pt.ptes[i0+j]&pteP == 0 {
				fresh++
			}
		}
	default:
		for j := 0; j < pages; j++ {
			if pt.ptes[i0+j]&pteP == 0 {
				fresh++
			}
		}
	}
	var next Frame
	if fresh > 0 {
		next = alloc(fresh)
	}
	tmpl := packPTE(PTE{Present: true, Writable: writable, Pdom: d})
	if pt == nil && pages > 0 {
		// Whole chunk faults fresh pages into a just-materialized page
		// table — the dominant case when populating new areas. The
		// counter evolution is deterministic here, so compute it in
		// closed form and reduce the loop to pure PTE stores: page 0's
		// window holds the directory installs and its own write; every
		// later page's reset retires exactly one write.
		retP, retM := t.PTEWrites, t.PMDWrites // pre-op window, retired by page 0's reset
		t.PTEWrites, t.PMDWrites = 0, 0
		pt, pmd, _ = t.ensurePT(a)
		e := t.PTEWrites // directory installs charged by ensurePT
		var m uint64
		if pmd.isDisabled(i1) {
			pmd.setDisabled(i1, false)
			m = 1
		}
		v := tmpl | packedPTE(next)<<10
		pp := pt.ptes[i0 : i0+pages]
		for j := range pp {
			pp[j] = v
			v += 1 << 10
			frames[j] = next
			next++
		}
		if pages == 1 {
			t.PTEWrites, t.PMDWrites = e+1, m
		} else {
			t.PTEWrites, t.PMDWrites = 1, 0
			retP += e + uint64(pages-1)
			retM += m
		}
		t.retiredPTE += retP
		t.retiredPMD += retM
		t.gen += uint64(pages)
		pt.present += int32(pages)
		t.present += pages
		return fresh
	}
	curP, curM := t.PTEWrites, t.PMDWrites
	var retP, retM, gen uint64
	newPresent := 0
	for j := 0; j < pages; j++ {
		if pt != nil && !disabled {
			if pte := &pt.ptes[i0+j]; *pte&pteP != 0 {
				frames[j] = Frame(*pte >> 10)
				if writable && *pte&pteW == 0 {
					// SetWritable, inlined: reset, bump, repair.
					retP += curP
					retM += curM
					curM = 0
					gen++
					*pte |= pteW
					curP = 1
				}
				continue
			}
		}
		// Absent (or shadowed by a disabled PMD entry): map the next
		// fresh frame, exactly as a ResetCounts+Map pair would — the
		// leaf page table materializes inside the first absent page's
		// counter window, where Map's ensurePT would charge it.
		frames[j] = next
		retP += curP
		retM += curM
		curP, curM = 0, 0
		gen++
		if pt == nil {
			// ensurePT charges directory installs to the table's live
			// counters; sync the local window across the call.
			t.PTEWrites, t.PMDWrites = curP, curM
			pt, pmd, _ = t.ensurePT(a)
			curP, curM = t.PTEWrites, t.PMDWrites
			disabled = pmd.isDisabled(i1)
		}
		if disabled {
			pmd.setDisabled(i1, false)
			curM++
			disabled = false
		}
		pte := &pt.ptes[i0+j]
		if *pte&pteP == 0 {
			newPresent++
		}
		*pte = tmpl | packedPTE(next)<<10
		next++
		curP++
	}
	t.PTEWrites, t.PMDWrites = curP, curM
	t.retiredPTE += retP
	t.retiredPMD += retM
	t.gen += gen
	if newPresent != 0 {
		pt.present += int32(newPresent)
		t.present += newPresent
	}
	return fresh
}

// MapChunk installs frames[j] for every page of the aligned run
// [a, a+len(frames)*PageSize), which must not cross a 2 MiB boundary. It
// is the fused equivalent of a ResetCounts+Map call per page, with
// identical generation and counter accounting: directory nodes (and any
// PMD re-enable) are charged inside the first page's window, where Map
// would put them, and each later page's reset retires exactly one PTE
// write — a deterministic evolution the method applies in closed form
// around a pure store loop.
func (t *Table) MapChunk(a VAddr, frames []Frame, writable bool, d Pdom) {
	n := len(frames)
	if n == 0 {
		return
	}
	i1 := int(uint64(a) >> 21 & 0x1ff)
	i0 := int(uint64(a) >> 12 & 0x1ff)
	hadPT := false
	if pmd := t.pmdOf(a); pmd != nil && pmd.pts[i1] != 0 {
		hadPT = true
	}
	retP, retM := t.PTEWrites, t.PMDWrites // pre-op window, retired by page 0's reset
	t.PTEWrites, t.PMDWrites = 0, 0
	pt, pmd, _ := t.ensurePT(a)
	e := t.PTEWrites // directory installs charged by ensurePT
	var m uint64
	if pmd.isDisabled(i1) {
		pmd.setDisabled(i1, false)
		m = 1
	}
	tmpl := packPTE(PTE{Present: true, Writable: writable, Pdom: d})
	pp := pt.ptes[i0 : i0+n]
	newPresent := 0
	if !hadPT {
		// Freshly materialized page table: every entry is absent.
		for j := range pp {
			pp[j] = tmpl | packedPTE(frames[j])<<10
		}
		newPresent = n
	} else {
		for j := range pp {
			if pp[j]&pteP == 0 {
				newPresent++
			}
			pp[j] = tmpl | packedPTE(frames[j])<<10
		}
	}
	if n == 1 {
		t.PTEWrites, t.PMDWrites = e+1, m
	} else {
		t.PTEWrites, t.PMDWrites = 1, 0
		retP += e + uint64(n-1)
		retM += m
	}
	t.retiredPTE += retP
	t.retiredPMD += retM
	t.gen += uint64(n)
	pt.present += int32(newPresent)
	t.present += newPresent
}

// UnmapRange removes every present translation in [start, start+length)
// and returns the number of pages unmapped. length must be page-aligned.
// Equivalent to calling Unmap on each page (PTEs under disabled PMD
// entries are unmapped too), with one radix descent per leaf.
func (t *Table) UnmapRange(start VAddr, length uint64) int {
	checkAligned(start, length)
	if DisableFastRange {
		n := 0
		for off := uint64(0); off < length; off += PageSize {
			if t.Unmap(start + VAddr(off)) {
				n++
			}
		}
		return n
	}
	n := 0
	end := start + VAddr(length)
	for a := start; a < end; {
		chunk := a.PMDAlign() + PMDSize
		if chunk > end {
			chunk = end
		}
		pages := uint64(chunk-a) / PageSize
		t.gen += pages
		pt := t.ptOf(a)
		if pt == nil {
			a = chunk
			continue
		}
		i0 := int(uint64(a) >> 12 & 0x1ff)
		for ; a < chunk; a, i0 = a+PageSize, i0+1 {
			if pt.ptes[i0]&pteP == 0 {
				continue
			}
			pt.ptes[i0] = 0
			pt.present--
			t.present--
			t.PTEWrites++
			n++
		}
	}
	return n
}

// SetWritableRange flips the writable bit of every present page in
// [start, start+length) and returns the number of pages updated. length
// must be page-aligned. Equivalent to calling SetWritable on each page:
// pages under a disabled PMD entry walk as not-present and are skipped.
func (t *Table) SetWritableRange(start VAddr, length uint64, w bool) int {
	checkAligned(start, length)
	if DisableFastRange {
		n := 0
		for off := uint64(0); off < length; off += PageSize {
			if t.SetWritable(start+VAddr(off), w) {
				n++
			}
		}
		return n
	}
	n := 0
	end := start + VAddr(length)
	for a := start; a < end; {
		chunk := a.PMDAlign() + PMDSize
		if chunk > end {
			chunk = end
		}
		pages := uint64(chunk-a) / PageSize
		t.gen += pages
		pmd := t.pmdOf(a)
		if pmd == nil {
			a = chunk
			continue
		}
		i1 := int(uint64(a) >> 21 & 0x1ff)
		if pmd.isDisabled(i1) { // walks as not-present: skipped
			a = chunk
			continue
		}
		ti := pmd.pts[i1]
		if ti == 0 {
			a = chunk
			continue
		}
		pt := &t.pts[ti-1]
		i0 := int(uint64(a) >> 12 & 0x1ff)
		for ; a < chunk; a, i0 = a+PageSize, i0+1 {
			if pt.ptes[i0]&pteP == 0 {
				continue
			}
			pt.ptes[i0].setWritable(w)
			t.PTEWrites++
			n++
		}
	}
	return n
}

// EvictRange makes [start, start+length) inaccessible for a domain
// eviction. Full 2 MiB-aligned chunks are disabled at the PMD level (one
// PMD write per 2 MiB, the §5.5 optimization); partial chunks fall back to
// per-PTE retagging with the access-never domain. It returns the number of
// PMD entries disabled and PTEs retagged.
func (t *Table) EvictRange(start VAddr, length uint64, accessNever Pdom) (pmds, ptes int) {
	checkAligned(start, length)
	end := start + VAddr(length)
	a := start
	for a < end {
		if a == a.PMDAlign() && uint64(end-a) >= PMDSize {
			if t.DisablePMD(a) {
				pmds++
			} else {
				// No live PT under this PMD (or already
				// disabled): nothing to evict here.
			}
			a += PMDSize
			continue
		}
		// Partial chunk: per-PTE retag up to the next 2 MiB boundary or
		// the end of the range.
		chunk := a.PMDAlign() + PMDSize
		if chunk > end {
			chunk = end
		}
		ptes += t.RetagRange(a, uint64(chunk-a), accessNever)
		a = chunk
	}
	return pmds, ptes
}

// RemapRange is the inverse of EvictRange for the HLRU fast-remap path
// (§5.5): full 2 MiB-aligned chunks whose PTEs still carry the target
// domain tag are brought back by re-enabling their PMD entries (one PMD
// write each); partial chunks are retagged per PTE. It returns the number
// of PMD entries enabled and PTEs retagged.
func (t *Table) RemapRange(start VAddr, length uint64, d Pdom) (pmds, ptes int) {
	checkAligned(start, length)
	end := start + VAddr(length)
	a := start
	for a < end {
		if a == a.PMDAlign() && uint64(end-a) >= PMDSize {
			if t.EnablePMD(a) {
				pmds++
			}
			a += PMDSize
			continue
		}
		chunk := a.PMDAlign() + PMDSize
		if chunk > end {
			chunk = end
		}
		ptes += t.RetagRange(a, uint64(chunk-a), d)
		a = chunk
	}
	return pmds, ptes
}

// Pages calls fn for every present PTE, in ascending address order. fn may
// not mutate the table.
func (t *Table) Pages(fn func(a VAddr, pte PTE)) {
	for i3, pi := range t.pgd {
		if pi == 0 {
			continue
		}
		pud := &t.puds[pi-1]
		for i2, mi := range pud.pmds {
			if mi == 0 {
				continue
			}
			pmd := &t.pmds[mi-1]
			for i1, ti := range pmd.pts {
				if ti == 0 || t.pts[ti-1].present == 0 {
					continue
				}
				pt := &t.pts[ti-1]
				for i0 := range pt.ptes {
					if pt.ptes[i0]&pteP == 0 {
						continue
					}
					a := VAddr(uint64(i3)<<39 | uint64(i2)<<30 |
						uint64(i1)<<21 | uint64(i0)<<12)
					fn(a, pt.ptes[i0].unpack())
				}
			}
		}
	}
}

func checkAligned(start VAddr, length uint64) {
	if uint64(start)%PageSize != 0 || length%PageSize != 0 {
		panicUnaligned(start, length)
	}
}

// panicUnaligned keeps the cold panic construction out of the aligned-path
// inline budget of checkAligned's callers.
//
//go:noinline
func panicUnaligned(start VAddr, length uint64) {
	panic(fmt.Sprintf("pagetable: unaligned range [%#x, +%#x)", uint64(start), length))
}
