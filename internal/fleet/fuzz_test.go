package fleet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFleetDecode hammers every vdom-fleet/v1 decoder with arbitrary
// bytes: whatever a faulted transport delivers, decoding must return a
// typed sentinel — never panic, never allocate unboundedly.
func FuzzFleetDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeHello(Hello{Version: ProtocolVersion, Worker: 1}))
	f.Add(EncodeAssign(Assign{ID: 9, Spec: CellSpec{Grid: "fig5:X86:1024", Index: 3, Seed: 7, Kernel: "dpti", Flags: 5}}))
	f.Add(EncodeResult(Result{ID: 9, Cell: CellResult{Text: "row\n", Total: 42, Metrics: []byte(`{}`), Aux: []byte{1}}}))
	f.Add(EncodeHeartbeat(Heartbeat{Worker: 1, Cell: 9, Beat: 3}))
	var framed bytes.Buffer
	WriteFrame(&framed, FrameAssign, EncodeAssign(Assign{ID: 1, Spec: CellSpec{Grid: "table4"}}))
	WriteFrame(&framed, FrameShutdown, nil)
	f.Add(framed.Bytes())
	f.Add([]byte("VDFL\x03\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	typed := func(t *testing.T, err error) {
		t.Helper()
		if err == nil || err == io.EOF {
			return
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadRecord) &&
			!errors.Is(err, ErrBadDigest) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := DecodeHello(data)
		typed(t, err)
		_, err = DecodeAssign(data)
		typed(t, err)
		_, err = DecodeResult(data)
		typed(t, err)
		_, err = DecodeHeartbeat(data)
		typed(t, err)

		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			ft, payload, err := ReadFrame(br)
			if err != nil {
				typed(t, err)
				break
			}
			switch ft {
			case FrameHello:
				_, err = DecodeHello(payload)
			case FrameAssign:
				_, err = DecodeAssign(payload)
			case FrameResult:
				_, err = DecodeResult(payload)
			case FrameHeartbeat:
				_, err = DecodeHeartbeat(payload)
			}
			typed(t, err)
		}
	})
}
