package sim

import "testing"

// BenchmarkProcessHandoff measures the simulator's per-event cost: one
// Delay = one heap push/pop plus two channel handoffs.
func BenchmarkProcessHandoff(b *testing.B) {
	env := NewEnv()
	env.Go("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

func BenchmarkResourceAcquireRelease(b *testing.B) {
	env := NewEnv()
	r := env.NewResource(1)
	env.Go("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			r.Acquire(p, 1)
			r.Release(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
